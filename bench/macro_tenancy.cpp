/// Multi-tenant scheduling-plane scale study (ISSUE 8).
///
/// Four scenarios over the DES overlay:
///
///  - "tenancy": the flagship 10k-worker x 100-project study. Ten edge
///    servers each front 1000 single-core workers; one project server
///    hosts 100 equal-weight tenants submitting equal-duration echo
///    commands. While every tenant is backlogged a mid-run probe
///    snapshots per-tenant completions, from which the Jain fairness
///    index is computed (DRR should keep it ~1.0); workers report the
///    request->assignment claim latency, giving p50/p99 across the whole
///    fleet; edge servers exercise the HeartbeatSummary aggregation path
///    towards the remote project server.
///
///  - "weighted": three tenants with weights 1:2:4 contending for 8-core
///    worker offers. DRR splits each multi-core offer in weight
///    proportion, so mid-run completion shares must track 1/7:2/7:4/7.
///    (Single-core offers degrade to round-robin by design — the deficit
///    top-up is per service visit — so this scenario uses 8-core offers.)
///
///  - "admission": one tenant with a 32-command pending quota and a
///    controller that submits through the admission-checked path,
///    topping the backlog up after every completion. The backlog sits at
///    the quota between claim waves, so client control commands sent
///    mid-run are load-shed with a retry-after while an early ping (sent
///    before the first completion refills the backlog) is accepted.
///
///  - "single": a byte-for-byte clone of macro_overlay's batched hot
///    run through the sharded scheduler. One tenant takes the DRR
///    bypass, so sim_commands_per_sec must land within 5% of the
///    baseline read from BENCH_macro_overlay.json. (Against the
///    pre-shard tree this came out 12.7% FASTER — 80.85 -> 91.09 sim
///    cps — because heartbeat aggregation unloads the relay; the
///    committed overlay baseline was refreshed to match, so the gate
///    now guards clone fidelity and future single-tenant regressions.)
///
/// Results go to BENCH_macro_tenancy.json. `--smoke` runs a fault-free
/// ~1k-worker x 16-project tenancy config and exits nonzero unless every
/// command completed with zero dead letters and Jain fairness >= 0.9
/// (the CI gate).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/copernicus.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace cop;

namespace {

core::ExecutableRegistry echoRegistry(double duration) {
    core::ExecutableRegistry reg;
    reg.add("echo", [duration](const core::CommandSpec& cmd, int) {
        core::Execution e;
        e.result.commandId = cmd.id;
        e.result.projectId = cmd.projectId;
        e.result.trajectoryId = cmd.trajectoryId;
        e.result.generation = cmd.generation;
        e.result.success = true;
        e.result.output.assign(128, std::uint8_t(cmd.trajectoryId));
        e.simSeconds = duration;
        e.checkpoints.emplace_back(0.5,
                                   std::vector<std::uint8_t>(256, 0xcc));
        return e;
    });
    return reg;
}

/// FixedController with a readable completion counter (the fairness
/// probes snapshot per-tenant progress mid-run).
class CountingController : public core::Controller {
public:
    explicit CountingController(int n) : n_(n) {}
    void onProjectStart(core::ProjectContext& ctx) override {
        for (int i = 0; i < n_; ++i) {
            core::CommandSpec spec;
            spec.executable = "echo";
            spec.steps = 10;
            spec.trajectoryId = i;
            ctx.submitCommand(std::move(spec));
        }
    }
    void onCommandFinished(core::ProjectContext&,
                           const core::CommandResult&) override {
        ++finished_;
    }
    bool isDone(const core::ProjectContext& ctx) const override {
        return finished_ >= n_ && ctx.outstandingCommands() == 0;
    }
    int finished() const { return finished_; }

private:
    int n_ = 0;
    int finished_ = 0;
};

/// Submits through the admission-checked path and tops the backlog back
/// up after every completion, counting rejections. Never schedules its
/// own retries: completions are the natural re-pump edge, so the
/// controller cannot deadlock on its quota.
class GreedyController : public core::Controller {
public:
    explicit GreedyController(int total) : total_(total) {}
    void onProjectStart(core::ProjectContext& ctx) override { pump(ctx); }
    void onCommandFinished(core::ProjectContext& ctx,
                           const core::CommandResult&) override {
        ++finished_;
        pump(ctx);
    }
    bool isDone(const core::ProjectContext& ctx) const override {
        return finished_ >= total_ && ctx.outstandingCommands() == 0;
    }
    int finished() const { return finished_; }
    int rejections() const { return rejections_; }
    double lastRetryAfter() const { return lastRetryAfter_; }

private:
    void pump(core::ProjectContext& ctx) {
        while (submitted_ < total_) {
            core::CommandSpec spec;
            spec.executable = "echo";
            spec.steps = 10;
            spec.trajectoryId = submitted_;
            const auto r = ctx.trySubmitCommand(std::move(spec));
            if (!r.admitted) {
                ++rejections_;
                lastRetryAfter_ = r.retryAfter;
                return;
            }
            ++submitted_;
        }
    }

    int total_ = 0;
    int submitted_ = 0;
    int finished_ = 0;
    int rejections_ = 0;
    double lastRetryAfter_ = 0.0;
};

double percentile(std::vector<double>& samples, double q) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = std::size_t(q * double(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

/// Jain fairness index over per-tenant progress: (sum x)^2 / (n sum x^2),
/// 1.0 = perfectly even, 1/n = one tenant took everything.
double jainIndex(const std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    double sum = 0.0, sumSq = 0.0;
    for (double x : xs) {
        sum += x;
        sumSq += x * x;
    }
    if (sumSq <= 0.0) return 0.0;
    return (sum * sum) / (double(xs.size()) * sumSq);
}

// ---- "tenancy": the flagship equal-weight scale study ------------------

struct TenancyConfig {
    int edges = 10;
    int workersPerEdge = 1000;
    int projects = 100;
    int commandsPerProject = 300;
    double commandSeconds = 30.0;
    double probeAt = 45.0; ///< mid-wave-2: every tenant still backlogged
    bool faults = true;
};

struct TenancyMetrics {
    bool completedAll = false;
    std::uint64_t commandsCompleted = 0;
    double wallSeconds = 0.0;
    double simSeconds = 0.0;
    double simCommandsPerSec = 0.0;
    double wallCommandsPerSec = 0.0;
    double claimP50 = 0.0;
    double claimP99 = 0.0;
    std::size_t claimSamples = 0;
    double jainMidrun = 0.0;
    double tenantCpsMin = 0.0;
    double tenantCpsMax = 0.0;
    double tenantCpsMean = 0.0;
    std::uint64_t deadLetters = 0;
    std::uint64_t heartbeatSummariesSent = 0;
    std::uint64_t heartbeatSummariesReceived = 0;
    std::uint64_t leaseRenewalsAggregated = 0;
    std::uint64_t parkedRequestsDropped = 0;
    std::uint64_t parkRejections = 0;
    std::uint64_t walRecords = 0;
    std::uint64_t walSyncs = 0;
};

/// `walDir` non-empty enables the durability plane (group-commit WAL +
/// capped store) on the multi-tenant project server — the WAL-on leg of
/// the <5% hot-path-tax A/B (ISSUE 9).
TenancyMetrics runTenancy(const TenancyConfig& tc,
                          const std::string& walDir = {}) {
    core::Deployment dep(11);
    core::ServerConfig sc;
    sc.heartbeatInterval = 60.0;
    sc.batch.maxEnvelopes = 64;
    sc.batch.maxBytes = 1 << 20;
    core::ServerConfig psc = sc;
    if (!walDir.empty()) {
        psc.durability.walEnabled = true;
        psc.durability.walDir = walDir;
        // 120 sim-s group-commit window; see the matching comment in
        // macro_overlay.cpp (sim/wall compression makes per-burst fdatasync
        // unrepresentatively expensive).
        psc.durability.walFlushDelay = 120.0;
        psc.durability.snapshotEveryRecords = 50000;
        psc.durability.storeRamBytes = std::size_t(256) << 10;
        psc.durability.storeDir = walDir + "/store";
    }
    auto& project = dep.addServer("project", psc);

    std::vector<core::Server*> edges;
    for (int e = 0; e < tc.edges; ++e) {
        auto& edge = dep.addServer("edge" + std::to_string(e), sc);
        dep.connectServers(project, edge, core::links::dataCenter());
        edges.push_back(&edge);
    }

    std::vector<double> claimLatencies;
    core::WorkerConfig wc;
    wc.cores = 1;
    wc.heartbeatInterval = 60.0;
    wc.batch.maxEnvelopes = 64;
    wc.batch.maxBytes = 1 << 20;
    for (int e = 0; e < tc.edges; ++e) {
        for (int w = 0; w < tc.workersPerEdge; ++w) {
            auto& worker = dep.addWorker(
                "w" + std::to_string(e) + "_" + std::to_string(w), *edges[e],
                wc, echoRegistry(tc.commandSeconds),
                core::links::intraCluster());
            worker.onAssignLatency([&claimLatencies](double seconds) {
                claimLatencies.push_back(seconds);
            });
        }
    }

    if (tc.faults) {
        net::FaultPlan plan;
        plan.seed = 20110617;
        plan.defaultProfile.dropProbability = 0.02;
        plan.defaultProfile.duplicateProbability = 0.02;
        plan.defaultProfile.reorderProbability = 0.02;
        dep.setFaultPlan(plan);
    }

    std::vector<CountingController*> controllers;
    for (int p = 0; p < tc.projects; ++p) {
        auto ctrl =
            std::make_unique<CountingController>(tc.commandsPerProject);
        controllers.push_back(ctrl.get());
        core::ProjectSpec spec;
        spec.name = "tenant" + std::to_string(p);
        project.createProject(std::move(spec), std::move(ctrl));
    }

    // Snapshot per-tenant completions while every shard is still
    // backlogged; run-to-completion counts are equal by construction, so
    // only the mid-run snapshot can distinguish fair from starved.
    std::vector<double> midrun(controllers.size(), 0.0);
    dep.loop().schedule(tc.probeAt, [&] {
        for (std::size_t i = 0; i < controllers.size(); ++i)
            midrun[i] = double(controllers[i]->finished());
    });

    const auto t0 = std::chrono::steady_clock::now();
    const bool done = dep.runUntilDone(1e9);
    const auto t1 = std::chrono::steady_clock::now();

    TenancyMetrics m;
    m.completedAll = done;
    m.commandsCompleted = project.stats().commandsCompleted;
    m.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    m.simSeconds = dep.loop().now();
    m.simCommandsPerSec =
        m.simSeconds > 0.0 ? double(m.commandsCompleted) / m.simSeconds : 0.0;
    m.wallCommandsPerSec =
        m.wallSeconds > 0.0 ? double(m.commandsCompleted) / m.wallSeconds
                            : 0.0;
    m.claimSamples = claimLatencies.size();
    m.claimP50 = percentile(claimLatencies, 0.50);
    m.claimP99 = percentile(claimLatencies, 0.99);
    m.jainMidrun = jainIndex(midrun);
    double cpsMin = 1e300, cpsMax = 0.0, cpsSum = 0.0;
    for (double c : midrun) {
        const double cps = c / tc.probeAt;
        cpsMin = std::min(cpsMin, cps);
        cpsMax = std::max(cpsMax, cps);
        cpsSum += cps;
    }
    m.tenantCpsMin = midrun.empty() ? 0.0 : cpsMin;
    m.tenantCpsMax = cpsMax;
    m.tenantCpsMean = midrun.empty() ? 0.0 : cpsSum / double(midrun.size());
    m.deadLetters = dep.network().faultStats().deadLetters;
    m.parkedRequestsDropped = project.stats().parkedRequestsDropped;
    m.parkRejections = project.stats().parkRejections;
    m.heartbeatSummariesReceived = project.stats().heartbeatSummariesReceived;
    for (const auto* edge : edges) {
        m.heartbeatSummariesSent += edge->stats().heartbeatSummariesSent;
        m.leaseRenewalsAggregated += edge->stats().leaseRenewalsAggregated;
    }
    if (project.wal()) {
        m.walRecords = project.wal()->stats().records;
        m.walSyncs = project.wal()->stats().syncs;
    }
    return m;
}

// ---- "weighted": 1:2:4 shares over multi-core offers -------------------

struct WeightedMetrics {
    bool completedAll = false;
    std::vector<double> weights;
    std::vector<double> midrunShares;
    std::vector<double> expectedShares;
    double maxShareError = 0.0;
    double simSeconds = 0.0;
};

WeightedMetrics runWeighted() {
    core::Deployment dep(17);
    core::ServerConfig sc;
    sc.heartbeatInterval = 60.0;
    auto& server = dep.addServer("s0", sc);

    core::WorkerConfig wc;
    wc.cores = 8;
    wc.heartbeatInterval = 60.0;
    for (int w = 0; w < 60; ++w)
        dep.addWorker("w" + std::to_string(w), server, wc,
                      echoRegistry(30.0), core::links::intraCluster());

    const std::vector<double> weights = {1.0, 2.0, 4.0};
    const int commandsEach = 1200;
    std::vector<CountingController*> controllers;
    for (std::size_t p = 0; p < weights.size(); ++p) {
        auto ctrl = std::make_unique<CountingController>(commandsEach);
        controllers.push_back(ctrl.get());
        core::ProjectSpec spec;
        spec.name = "tenant" + std::to_string(p);
        spec.weight = weights[p];
        server.createProject(std::move(spec), std::move(ctrl));
    }

    // Probe after ~3 full waves: all tenants still backlogged (the light
    // tenant has drained <20% of its shard), so shares reflect pure DRR.
    std::vector<double> midrun(controllers.size(), 0.0);
    dep.loop().schedule(100.0, [&] {
        for (std::size_t i = 0; i < controllers.size(); ++i)
            midrun[i] = double(controllers[i]->finished());
    });

    const bool done = dep.runUntilDone(1e9);

    WeightedMetrics m;
    m.completedAll = done;
    m.weights = weights;
    m.simSeconds = dep.loop().now();
    double total = 0.0, weightSum = 0.0;
    for (double c : midrun) total += c;
    for (double w : weights) weightSum += w;
    for (std::size_t i = 0; i < midrun.size(); ++i) {
        const double share = total > 0.0 ? midrun[i] / total : 0.0;
        const double expected = weights[i] / weightSum;
        m.midrunShares.push_back(share);
        m.expectedShares.push_back(expected);
        m.maxShareError = std::max(
            m.maxShareError, std::abs(share - expected) / expected);
    }
    return m;
}

// ---- "admission": quota backpressure end to end ------------------------

struct AdmissionMetrics {
    bool completedAll = false;
    int commands = 0;
    int controllerRejections = 0;
    double retryAfterSeen = 0.0;
    std::uint64_t schedulerRejections = 0;
    std::size_t pendingPeak = 0;
    std::uint64_t clientRequestsShed = 0;
    std::size_t clientShedSeen = 0;
    std::size_t clientAccepted = 0;
    double clientRetryAfter = 0.0;
};

AdmissionMetrics runAdmission() {
    core::Deployment dep(29);
    core::ServerConfig sc;
    sc.heartbeatInterval = 60.0;
    auto& server = dep.addServer("s0", sc);

    core::WorkerConfig wc;
    wc.cores = 1;
    wc.heartbeatInterval = 60.0;
    for (int w = 0; w < 8; ++w)
        dep.addWorker("w" + std::to_string(w), server, wc,
                      echoRegistry(30.0), core::links::intraCluster());

    const int total = 256;
    auto ctrl = std::make_unique<GreedyController>(total);
    auto* greedy = ctrl.get();
    core::ProjectSpec spec;
    spec.name = "quota";
    spec.maxPendingCommands = 32;
    spec.admissionRetryAfter = 7.5;
    const auto pid = server.createProject(std::move(spec), std::move(ctrl));

    auto& client = dep.addClient("cli", server, core::links::wideArea());

    // Before the first completions (t=30) the initial claims have pulled
    // the backlog under quota, so this ping is admitted; after every
    // wave the controller refills the backlog to the quota in the same
    // tick the claims drain it, so later pings are load-shed.
    std::size_t accepted = 0, shed = 0;
    double shedRetryAfter = 0.0;
    auto ping = [&](double at) {
        dep.loop().schedule(at, [&, at] {
            client.sendCommand(server.id(), pid, "poke");
        });
        // Sample the outcome once the wide-area round trip is over.
        dep.loop().schedule(at + 2.0, [&] {
            if (client.lastAccepted())
                ++accepted;
            else {
                ++shed;
                shedRetryAfter = client.lastRetryAfter();
            }
        });
    };
    ping(15.0);
    ping(45.0);
    ping(75.0);
    ping(105.0);

    const bool done = dep.runUntilDone(1e9);

    AdmissionMetrics m;
    m.completedAll = done;
    m.commands = greedy->finished();
    m.controllerRejections = greedy->rejections();
    m.retryAfterSeen = greedy->lastRetryAfter();
    const auto metrics = server.metricsSnapshot();
    for (const auto& t : metrics.tenants) {
        if (t.id != pid) continue;
        m.schedulerRejections = t.counters.admissionRejections;
        m.pendingPeak = t.counters.pendingPeak;
    }
    m.clientRequestsShed = metrics.server.clientRequestsShed;
    m.clientShedSeen = shed;
    m.clientAccepted = accepted;
    m.clientRetryAfter = shedRetryAfter;
    return m;
}

// ---- "single": DRR-bypass parity with the pre-shard scheduler ----------

struct SingleMetrics {
    bool completedAll = false;
    std::uint64_t commandsCompleted = 0;
    double simSeconds = 0.0;
    double simCommandsPerSec = 0.0;
    double baseline = 0.0; ///< macro_overlay hot/batched sim cps
    double ratio = 0.0;
    std::uint64_t deadLetters = 0;
};

/// Pulls hot.batched.sim_commands_per_sec out of BENCH_macro_overlay.json
/// (its first "sim_commands_per_sec" key — hot/batched leads the file).
/// Returns 0 when the baseline has not been generated yet.
double readOverlayBaseline() {
    std::ifstream in("BENCH_macro_overlay.json");
    if (!in) return 0.0;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const auto key = text.find("\"sim_commands_per_sec\":");
    if (key == std::string::npos) return 0.0;
    return std::strtod(text.c_str() + key + std::strlen("\"sim_commands_per_sec\":"),
                       nullptr);
}

SingleMetrics runSingle() {
    // Mirrors macro_overlay's batched hot run: same seed, topology,
    // fleet, command count and fault plan, so the only variable is the
    // scheduler behind the server.
    core::Deployment dep(11);
    core::ServerConfig sc;
    sc.heartbeatInterval = 60.0;
    sc.batch.maxEnvelopes = 64;
    sc.batch.maxBytes = 1 << 20;
    auto& project = dep.addServer("project", sc);
    auto& relay = dep.addServer("relay", sc);
    dep.connectServers(project, relay, core::links::dataCenter());

    core::WorkerConfig wc;
    wc.cores = 8;
    wc.heartbeatInterval = 60.0;
    wc.batch.maxEnvelopes = 64;
    wc.batch.maxBytes = 1 << 20;
    for (int w = 0; w < 384; ++w)
        dep.addWorker("w" + std::to_string(w), relay, wc,
                      echoRegistry(30.0), core::links::intraCluster());

    net::FaultPlan plan;
    plan.seed = 20110617;
    plan.defaultProfile.dropProbability = 0.02;
    plan.defaultProfile.duplicateProbability = 0.02;
    plan.defaultProfile.reorderProbability = 0.02;
    dep.setFaultPlan(plan);

    project.createProject("mill",
                          std::make_unique<CountingController>(30720));

    const bool done = dep.runUntilDone(1e9);

    SingleMetrics m;
    m.completedAll = done;
    m.commandsCompleted = project.stats().commandsCompleted;
    m.simSeconds = dep.loop().now();
    m.simCommandsPerSec =
        m.simSeconds > 0.0 ? double(m.commandsCompleted) / m.simSeconds : 0.0;
    m.baseline = readOverlayBaseline();
    m.ratio = m.baseline > 0.0 ? m.simCommandsPerSec / m.baseline : 0.0;
    m.deadLetters = dep.network().faultStats().deadLetters;
    return m;
}

void appendTenancy(std::string& json, const TenancyConfig& tc,
                   const TenancyMetrics& m) {
    char buf[2048];
    std::snprintf(
        buf, sizeof buf,
        "    \"workers\": %d,\n"
        "    \"projects\": %d,\n"
        "    \"commands\": %d,\n"
        "    \"completed_all\": %s,\n"
        "    \"commands_completed\": %llu,\n"
        "    \"wall_seconds\": %.6f,\n"
        "    \"sim_seconds\": %.3f,\n"
        "    \"sim_commands_per_sec\": %.4f,\n"
        "    \"wall_commands_per_sec\": %.1f,\n"
        "    \"claim_latency_p50_s\": %.6f,\n"
        "    \"claim_latency_p99_s\": %.6f,\n"
        "    \"claim_samples\": %zu,\n"
        "    \"jain_fairness_midrun\": %.6f,\n"
        "    \"tenant_cps_min\": %.4f,\n"
        "    \"tenant_cps_max\": %.4f,\n"
        "    \"tenant_cps_mean\": %.4f,\n"
        "    \"dead_letters\": %llu,\n"
        "    \"heartbeat_summaries_sent\": %llu,\n"
        "    \"heartbeat_summaries_received\": %llu,\n"
        "    \"lease_renewals_aggregated\": %llu,\n"
        "    \"parked_requests_dropped\": %llu,\n"
        "    \"park_rejections\": %llu\n",
        tc.edges * tc.workersPerEdge, tc.projects,
        tc.projects * tc.commandsPerProject,
        m.completedAll ? "true" : "false",
        (unsigned long long)m.commandsCompleted, m.wallSeconds, m.simSeconds,
        m.simCommandsPerSec, m.wallCommandsPerSec, m.claimP50, m.claimP99,
        m.claimSamples, m.jainMidrun, m.tenantCpsMin, m.tenantCpsMax,
        m.tenantCpsMean, (unsigned long long)m.deadLetters,
        (unsigned long long)m.heartbeatSummariesSent,
        (unsigned long long)m.heartbeatSummariesReceived,
        (unsigned long long)m.leaseRenewalsAggregated,
        (unsigned long long)m.parkedRequestsDropped,
        (unsigned long long)m.parkRejections);
    json += buf;
}

std::string jsonArray(const std::vector<double>& xs) {
    std::string out = "[";
    char buf[64];
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%s%.6f", i ? ", " : "", xs[i]);
        out += buf;
    }
    out += "]";
    return out;
}

} // namespace

int main(int argc, char** argv) {
    Logger::instance().setLevel(LogLevel::Warn);
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    if (smoke) {
        // CI gate: fault-free ~1k x 16 tenancy run; everything must
        // complete with zero dead letters and near-even fair shares.
        TenancyConfig tc;
        tc.edges = 4;
        tc.workersPerEdge = 250;
        tc.projects = 16;
        tc.commandsPerProject = 125;
        tc.faults = false;
        const auto m = runTenancy(tc);
        std::printf("smoke: completed=%llu/%d jain=%.4f claim_p99=%.4fs "
                    "dead_letters=%llu summaries=%llu\n",
                    (unsigned long long)m.commandsCompleted,
                    tc.projects * tc.commandsPerProject, m.jainMidrun,
                    m.claimP99, (unsigned long long)m.deadLetters,
                    (unsigned long long)m.heartbeatSummariesSent);
        if (!m.completedAll ||
            m.commandsCompleted !=
                std::uint64_t(tc.projects * tc.commandsPerProject)) {
            std::printf("smoke FAILED: not all commands completed\n");
            return 1;
        }
        if (m.deadLetters != 0) {
            std::printf("smoke FAILED: dead letters under no-fault plan\n");
            return 1;
        }
        if (m.jainMidrun < 0.9) {
            std::printf("smoke FAILED: Jain fairness %.4f < 0.9\n",
                        m.jainMidrun);
            return 1;
        }
        if (m.heartbeatSummariesSent == 0) {
            std::printf("smoke FAILED: edge servers never aggregated "
                        "heartbeats\n");
            return 1;
        }
        std::printf("smoke OK\n");
        return 0;
    }

    std::printf("=== macro_tenancy: multi-tenant scheduling plane ===\n\n");

    TenancyConfig tc;
    const auto ten = runTenancy(tc);
    const auto wgt = runWeighted();
    const auto adm = runAdmission();
    const auto sgl = runSingle();

    // WAL A/B: a mid-size tenancy plane with the durability plane off vs
    // on; the multi-tenant scheduler is the hottest WAL producer (one
    // claim record per service visit), so this is the adversarial leg of
    // the <5% tax contract.
    TenancyConfig ab;
    ab.edges = 4;
    ab.workersPerEdge = 250;
    ab.projects = 20;
    ab.commandsPerProject = 100;
    const auto walTmp =
        (std::filesystem::temp_directory_path() /
         ("cop_tenancy_wal_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(walTmp);
    // Best-of-2 per leg: fdatasync latency noise exceeds the tax being
    // measured (see the matching comment in macro_overlay.cpp).
    auto bestLeg = [&](const std::string& dir) {
        auto best = runTenancy(ab, dir);
        std::filesystem::remove_all(walTmp);
        const auto again = runTenancy(ab, dir);
        if (again.wallCommandsPerSec > best.wallCommandsPerSec) best = again;
        std::filesystem::remove_all(walTmp);
        return best;
    };
    const auto walOff = bestLeg({});
    const auto walOn = bestLeg(walTmp);
    const double walTax = walOff.wallCommandsPerSec > 0.0
                              ? walOn.wallCommandsPerSec /
                                    walOff.wallCommandsPerSec
                              : 0.0;

    Table t({"scenario", "result"});
    t.addRow({"tenancy",
              formatFixed(ten.jainMidrun, 4) + " Jain, p99 claim " +
                  formatFixed(ten.claimP99, 4) + "s, " +
                  std::to_string(ten.commandsCompleted) + " cmds"});
    t.addRow({"weighted", "shares " + jsonArray(wgt.midrunShares) +
                              " (max err " +
                              formatFixed(wgt.maxShareError, 3) + ")"});
    t.addRow({"admission",
              std::to_string(adm.controllerRejections) + " rejections, " +
                  std::to_string(adm.clientShedSeen) + " client sheds"});
    t.addRow({"single", formatFixed(sgl.simCommandsPerSec, 2) +
                            " sim cps vs baseline " +
                            formatFixed(sgl.baseline, 2) + " (ratio " +
                            formatFixed(sgl.ratio, 3) + ")"});
    t.addRow({"wal A/B", formatFixed(walOn.wallCommandsPerSec, 0) +
                             " cps on / " +
                             formatFixed(walOff.wallCommandsPerSec, 0) +
                             " off = " + formatFixed(walTax, 3) +
                             "x (gate >= 0.95)"});
    std::printf("%s\n", t.render().c_str());

    std::printf("tenancy: %d workers x %d tenants, claim p50/p99 "
                "%.4fs/%.4fs, %llu renewals aggregated into %llu "
                "summaries\n",
                tc.edges * tc.workersPerEdge, tc.projects, ten.claimP50,
                ten.claimP99,
                (unsigned long long)ten.leaseRenewalsAggregated,
                (unsigned long long)ten.heartbeatSummariesSent);

    std::string json = "{\n  \"bench\": \"macro_tenancy\",\n";
    json += "  \"tenancy\": {\n";
    appendTenancy(json, tc, ten);
    json += "  },\n";

    json += "  \"wal_ab\": {\n    \"wal_on\": {\n";
    appendTenancy(json, ab, walOn);
    json += "    },\n    \"wal_off\": {\n";
    appendTenancy(json, ab, walOff);
    char buf[1024];
    std::snprintf(buf, sizeof buf,
                  "    },\n    \"wal_records\": %llu,\n"
                  "    \"wal_syncs\": %llu,\n"
                  "    \"wal_tax_cps_ratio\": %.4f,\n"
                  "    \"wal_tax_gate\": 0.95\n  },\n",
                  (unsigned long long)walOn.walRecords,
                  (unsigned long long)walOn.walSyncs, walTax);
    json += buf;
    std::snprintf(buf, sizeof buf,
                  "  \"weighted\": {\n"
                  "    \"weights\": %s,\n"
                  "    \"midrun_shares\": %s,\n"
                  "    \"expected_shares\": %s,\n"
                  "    \"max_share_error\": %.6f,\n"
                  "    \"completed_all\": %s,\n"
                  "    \"sim_seconds\": %.3f\n  },\n",
                  jsonArray(wgt.weights).c_str(),
                  jsonArray(wgt.midrunShares).c_str(),
                  jsonArray(wgt.expectedShares).c_str(), wgt.maxShareError,
                  wgt.completedAll ? "true" : "false", wgt.simSeconds);
    json += buf;

    std::snprintf(buf, sizeof buf,
                  "  \"admission\": {\n"
                  "    \"commands\": %d,\n"
                  "    \"controller_rejections\": %d,\n"
                  "    \"retry_after_s\": %.3f,\n"
                  "    \"scheduler_rejections\": %llu,\n"
                  "    \"pending_peak\": %zu,\n"
                  "    \"client_requests_shed\": %llu,\n"
                  "    \"client_sheds_observed\": %zu,\n"
                  "    \"client_accepted\": %zu,\n"
                  "    \"client_retry_after_s\": %.3f,\n"
                  "    \"completed_all\": %s\n  },\n",
                  adm.commands, adm.controllerRejections, adm.retryAfterSeen,
                  (unsigned long long)adm.schedulerRejections,
                  adm.pendingPeak,
                  (unsigned long long)adm.clientRequestsShed,
                  adm.clientShedSeen, adm.clientAccepted,
                  adm.clientRetryAfter,
                  adm.completedAll ? "true" : "false");
    json += buf;

    std::snprintf(buf, sizeof buf,
                  "  \"single_tenant\": {\n"
                  "    \"completed_all\": %s,\n"
                  "    \"commands_completed\": %llu,\n"
                  "    \"sim_seconds\": %.3f,\n"
                  "    \"sim_commands_per_sec\": %.4f,\n"
                  "    \"baseline_sim_commands_per_sec\": %.4f,\n"
                  "    \"ratio_vs_macro_overlay\": %.4f,\n"
                  "    \"within_5pct\": %s,\n"
                  "    \"dead_letters\": %llu\n  }\n}\n",
                  sgl.completedAll ? "true" : "false",
                  (unsigned long long)sgl.commandsCompleted, sgl.simSeconds,
                  sgl.simCommandsPerSec, sgl.baseline, sgl.ratio,
                  sgl.baseline > 0.0 && sgl.ratio > 0.95 && sgl.ratio < 1.05
                      ? "true"
                      : "false",
                  (unsigned long long)sgl.deadLetters);
    json += buf;

    std::ofstream out("BENCH_macro_tenancy.json");
    out << json;
    std::printf("\nwrote BENCH_macro_tenancy.json\n");
    return 0;
}
