/// Reproduces Fig. 7: scaling efficiency of the villin folding run as a
/// function of total cores, for 1/12/24/48/96 cores per individual
/// simulation. Efficiency = t_res(1) / (N * t_res(N)), with t_res(1) =
/// 1.1e5 hours (paper caption). Headline: 53% efficiency at 20,000 cores.

#include <cstdio>

#include "perfmodel/scaling.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace cop;

namespace {

std::vector<int> sweepPoints(int coresPerSim) {
    // Geometric sweep per line, capped at 1024 workers so the DES stays
    // fast; the interesting knee (225 commands) is always covered.
    std::vector<int> out;
    for (int mult = 1; mult <= 4096; mult *= 2) {
        const long n = long(coresPerSim) * mult;
        if (n > 25000 || mult > 1024) break;
        out.push_back(int(n));
    }
    if (coresPerSim == 96) out.push_back(20000); // the paper's headline
    return out;
}

} // namespace

int main() {
    Logger::instance().setLevel(LogLevel::Warn);
    std::printf("=== Fig. 7: scaling efficiency vs total cores ===\n");

    perf::ScalingConfig base;
    std::printf("t_res(1) = %.2e hours (paper: 1.1e5)\n\n",
                perf::serialTimeHours(base));

    for (int m : {1, 12, 24, 48, 96}) {
        base.coresPerSim = m;
        const auto results = perf::sweepTotalCores(base, sweepPoints(m));
        Table table({"Ncores", "workers", "efficiency", "t_res(N) (h)"});
        std::vector<double> xs, ys;
        for (const auto& r : results) {
            table.addRow({std::to_string(r.totalCores),
                          std::to_string(r.workers),
                          formatFixed(r.efficiency, 3),
                          formatFixed(r.totalTimeHours, 1)});
            xs.push_back(double(r.totalCores));
            ys.push_back(r.efficiency);
        }
        std::printf("--- %d cores per simulation ---\n%s", m,
                    table.render().c_str());
        std::printf("%s\n", asciiChart(xs, ys, 60, 10, true, false).c_str());
    }

    // The headline number.
    base.coresPerSim = 96;
    base.totalCores = 20000;
    const auto headline = perf::simulateRun(base);
    std::printf("paper: 53%% scaling efficiency at 20,000 cores "
                "(96-core commands)\n");
    std::printf("measured: %.0f%% at 20,000 cores\n",
                100.0 * headline.efficiency);
    std::printf("shape: efficiency is flat at the intra-simulation value "
                "until the worker count\nreaches the 225 commands per "
                "generation, then falls off as 1/N — matching the\npaper's "
                "lines and knee locations.\n");
    return 0;
}
