/// Reproduces Fig. 9 (average ensemble-level bandwidth vs total cores)
/// and the Fig. 6 multi-level parallelism tiers. Paper numbers: ensemble
/// traffic 0.001-0.1 MB/s (average 0.04 MB/s); intra-simulation traffic
/// 500-2900 MB/s for 24-96 cores; heartbeats < 200 bytes every 120 s;
/// worker workload-wait under 30 s per day of running.

#include <cstdio>

#include "mdlib/proteins.hpp"
#include "mdlib/simulation.hpp"
#include "perfmodel/scaling.hpp"
#include "util/codec.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace cop;

namespace {

/// Measured compression ratio of the tiered store's codec (delta/XOR
/// pre-filter + LZ) on a real MD checkpoint — the blob the server
/// actually spills per generation (ISSUE 9). The "MB/gen stored" column
/// scales the ensemble traffic by this ratio.
double measuredCheckpointRatio() {
    const auto model = md::hairpinGoModel();
    auto sim = md::Simulation::forGoModel(
        model, model.native, md::villinSimulationConfig(7));
    sim.initializeVelocities();
    sim.run(500);
    const auto blob = sim.checkpoint();
    const auto enc = util::encode(blob);
    return enc.frame.empty()
               ? 1.0
               : double(blob.size()) / double(enc.frame.size());
}

std::vector<int> sweepPoints(int coresPerSim) {
    std::vector<int> out;
    for (int mult = 1; mult <= 4096; mult *= 2) {
        const long n = long(coresPerSim) * mult;
        if (n > 25000 || mult > 1024) break;
        out.push_back(int(n));
    }
    return out;
}

} // namespace

int main() {
    Logger::instance().setLevel(LogLevel::Warn);
    std::printf("=== Fig. 6 tiers + Fig. 9: communication hierarchy ===\n\n");

    // Fig. 6: the bandwidth/latency hierarchy, with the intra-simulation
    // tier from the calibrated performance model.
    perf::MdPerfModel perfModel;
    Table tiers({"level", "mechanism", "bandwidth", "latency"});
    tiers.addRow({"ensemble (servers)", "SSL overlay",
                  "~0.04 MB/s avg", "> 100 ms (WAN)"});
    tiers.addRow({"simulation (nodes)", "MPI / Infiniband",
                  formatFixed(perfModel.intraSimBandwidth(24) / 1e6, 0) +
                      "-" +
                      formatFixed(perfModel.intraSimBandwidth(96) / 1e6, 0) +
                      " MB/s",
                  "1-10 us"});
    tiers.addRow({"node (threads)", "shared memory", "~25 GB/s peak",
                  "< 100 ns"});
    tiers.addRow({"core", "SIMD kernels", "register bandwidth", "-"});
    std::printf("%s\n", tiers.render().c_str());

    std::printf("=== Fig. 9: ensemble-level bandwidth vs total cores ===\n\n");
    const double ratio = measuredCheckpointRatio();
    std::printf("checkpoint codec ratio (measured on a Go-model hairpin "
                "checkpoint): %.2fx\n\n",
                ratio);
    perf::ScalingConfig base;
    for (int m : {12, 24, 48, 96}) {
        base.coresPerSim = m;
        base.batching = true;
        const auto results = perf::sweepTotalCores(base, sweepPoints(m));
        // Same sweep with envelope coalescing off: the protocol outcome is
        // identical, so the delta is pure framing overhead (one ~96-byte
        // header per envelope vs per batch).
        perf::ScalingConfig flat = base;
        flat.batching = false;
        const auto unbatched = perf::sweepTotalCores(flat, sweepPoints(m));
        Table table({"Ncores", "bandwidth (MB/s)", "MB/gen batched",
                     "MB/gen unbatched", "MB/gen stored", "ratio",
                     "frames saved"});
        std::vector<double> xs, ys;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            const auto& u = unbatched[i];
            const double framesSaved =
                u.totalFrames > 0.0
                    ? 1.0 - r.totalFrames / u.totalFrames
                    : 0.0;
            table.addRow({std::to_string(r.totalCores),
                          formatFixed(r.ensembleBandwidth / 1e6, 4),
                          formatFixed(r.bytesPerGeneration / 1e6, 2),
                          formatFixed(u.bytesPerGeneration / 1e6, 2),
                          formatFixed(r.bytesPerGeneration / ratio / 1e6,
                                      2),
                          formatFixed(ratio, 2) + "x",
                          formatFixed(framesSaved * 100.0, 1) + "%"});
            xs.push_back(double(r.totalCores));
            ys.push_back(r.ensembleBandwidth / 1e6);
        }
        std::printf("--- %d cores per simulation ---\n%s", m,
                    table.render().c_str());
        std::printf("%s\n", asciiChart(xs, ys, 60, 10, true, true).c_str());
    }

    base.coresPerSim = 24;
    base.totalCores = 5000;
    const auto typical = perf::simulateRun(base);
    std::printf("paper: 0.001-0.1 MB/s across the sweep, ~0.04 MB/s for "
                "the actual project;\n       heartbeats < 200 B / 120 s; "
                "intra-simulation 500-2900 MB/s (24-96 cores)\n");
    std::printf("measured: %.4f MB/s at the paper's 5,000-core "
                "configuration; intra-simulation\n          model gives "
                "%.0f MB/s at 24 and %.0f MB/s at 96 cores\n",
                typical.ensembleBandwidth / 1e6,
                perfModel.intraSimBandwidth(24) / 1e6,
                perfModel.intraSimBandwidth(96) / 1e6);
    return 0;
}
