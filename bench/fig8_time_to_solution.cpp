/// Reproduces Fig. 8: total time-to-solution for folding villin as a
/// function of total cores, one line per cores-per-simulation setting.
/// Stop criterion: observation of the first folded conformation (~3
/// generations); the blind prediction costs "roughly a factor 2.5 more"
/// (8 generations). Paper: the run used 5,000 cores; with 20,000 cores the
/// time to solution "would have been just over 10 h"; the curve plateaus
/// once the number of workers exceeds the commands per generation.

#include <cstdio>

#include "perfmodel/scaling.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace cop;

namespace {

std::vector<int> sweepPoints(int coresPerSim) {
    std::vector<int> out;
    for (int mult = 1; mult <= 4096; mult *= 2) {
        const long n = long(coresPerSim) * mult;
        if (n > 25000 || mult > 1024) break;
        out.push_back(int(n));
    }
    if (coresPerSim == 24) out.push_back(5000);  // the paper's actual run
    if (coresPerSim == 96) out.push_back(20000); // the projected point
    return out;
}

} // namespace

int main() {
    Logger::instance().setLevel(LogLevel::Warn);
    std::printf("=== Fig. 8: time to solution vs total cores ===\n\n");

    perf::ScalingConfig base;
    for (int m : {1, 12, 24, 48, 96}) {
        base.coresPerSim = m;
        const auto results = perf::sweepTotalCores(base, sweepPoints(m));
        Table table({"Ncores", "workers", "t first-fold (h)",
                     "t blind x2.5 (h)", "utilization"});
        std::vector<double> xs, ys;
        for (const auto& r : results) {
            table.addRow({std::to_string(r.totalCores),
                          std::to_string(r.workers),
                          formatFixed(r.timeToSolutionHours, 1),
                          formatFixed(r.totalTimeHours, 1),
                          formatFixed(r.utilization, 2)});
            xs.push_back(double(r.totalCores));
            ys.push_back(r.timeToSolutionHours);
        }
        std::printf("--- %d cores per simulation ---\n%s", m,
                    table.render().c_str());
        std::printf("%s\n", asciiChart(xs, ys, 60, 10, true, true).c_str());
    }

    base.coresPerSim = 96;
    base.totalCores = 20000;
    const auto at20k = perf::simulateRun(base);
    base.coresPerSim = 24;
    base.totalCores = 5000;
    const auto at5k = perf::simulateRun(base);
    std::printf("paper: first folded conformation ~30 h at 5,000 cores; "
                "just over 10 h at 20,000\n");
    std::printf("measured: %.1f h at 5,000 cores (24-core commands); "
                "%.1f h at 20,000 (96-core)\n",
                at5k.timeToSolutionHours, at20k.timeToSolutionHours);
    std::printf("shape: time falls with cores until workers exceed the "
                "225 commands per\ngeneration, then plateaus; larger "
                "commands extend the scaling range at a small\nefficiency "
                "cost — the paper's crossover behaviour.\n");
    return 0;
}
