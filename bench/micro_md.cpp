/// Engineering microbenchmarks for the MD engine: force kernels (scalar /
/// 4-wide blocked / SoA — the paper's SIMD tier), threaded force reduction
/// (the thread tier), neighbour-list builds, integrator steps and RMSD
/// evaluation. tools/run_bench.sh captures this binary's JSON output as
/// BENCH_micro_md.json to track the perf trajectory across PRs.

#include <benchmark/benchmark.h>

#include <optional>

#include "mdlib/observables.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/simulation.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

using namespace cop;
using namespace cop::md;

namespace {

struct LjFixture {
    Topology top;
    Box box;
    std::vector<Vec3> positions;

    explicit LjFixture(std::size_t n, bool charges = false)
        : box(Box::cubic(std::cbrt(double(n)) * 1.2)) {
        for (std::size_t i = 0; i < n; ++i)
            top.addParticle(1.0, charges ? (i % 2 ? 0.2 : -0.2) : 0.0);
        top.finalize();
        Rng rng(7);
        const int side = int(std::ceil(std::cbrt(double(n))));
        const double a = box.lengths.x / side;
        std::size_t placed = 0;
        for (int x = 0; x < side && placed < n; ++x)
            for (int y = 0; y < side && placed < n; ++y)
                for (int z = 0; z < side && placed < n; ++z, ++placed)
                    positions.push_back({x * a + rng.uniform(-0.05, 0.05),
                                         y * a + rng.uniform(-0.05, 0.05),
                                         z * a + rng.uniform(-0.05, 0.05)});
    }
};

KernelFlavor flavorArg(std::int64_t v) {
    switch (v) {
    case 0: return KernelFlavor::Scalar;
    case 1: return KernelFlavor::Blocked4;
    default: return KernelFlavor::Soa;
    }
}

/// Kernel-flavor x thread-count sweep over the full nonbonded evaluation
/// (neighbour-list check + kernel + reduction), uncharged LJ fluid.
void BM_NonbondedKernel(benchmark::State& state) {
    LjFixture fix(std::size_t(state.range(0)));
    ForceFieldParams p;
    p.kind = NonbondedKind::LennardJonesRF;
    p.cutoff = 2.5;
    p.flavor = flavorArg(state.range(1));
    const auto nThreads = std::size_t(state.range(2));
    std::optional<ThreadPool> pool;
    if (nThreads > 1) pool.emplace(nThreads);
    ForceField ff(fix.top, fix.box, p, pool ? &*pool : nullptr);
    std::vector<Vec3> forces;
    for (auto _ : state) {
        auto e = ff.compute(fix.positions, forces);
        benchmark::DoNotOptimize(e.nonbonded);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(ff.neighborList().pairs().size()));
}
BENCHMARK(BM_NonbondedKernel)
    ->ArgsProduct({{1000, 10000}, {0, 1, 2}, {1, 2, 4}})
    ->ArgNames({"atoms", "flavor", "threads"});

/// Same sweep with reaction-field Coulomb on (exercises the charged
/// bucket's precomputed qq path).
void BM_NonbondedKernelCharged(benchmark::State& state) {
    LjFixture fix(std::size_t(state.range(0)), /*charges=*/true);
    ForceFieldParams p;
    p.kind = NonbondedKind::LennardJonesRF;
    p.cutoff = 2.5;
    p.useCoulombRF = true;
    p.flavor = flavorArg(state.range(1));
    ForceField ff(fix.top, fix.box, p);
    std::vector<Vec3> forces;
    for (auto _ : state) {
        auto e = ff.compute(fix.positions, forces);
        benchmark::DoNotOptimize(e.coulomb);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(ff.neighborList().pairs().size()));
}
BENCHMARK(BM_NonbondedKernelCharged)
    ->ArgsProduct({{10000}, {0, 1, 2}})
    ->ArgNames({"atoms", "flavor"});

void BM_NeighborListBuild(benchmark::State& state) {
    LjFixture fix(std::size_t(state.range(0)));
    NeighborList nl(2.5, 0.3);
    for (auto _ : state) {
        nl.build(fix.top, fix.box, fix.positions);
        benchmark::DoNotOptimize(nl.pairs().size());
    }
}
BENCHMARK(BM_NeighborListBuild)->Arg(216)->Arg(1000)->ArgNames({"atoms"});

void BM_GoModelStep(benchmark::State& state) {
    const auto model = villinGoModel();
    auto sim = Simulation::forGoModel(model, model.native,
                                      villinSimulationConfig(5));
    sim.initializeVelocities();
    for (auto _ : state) sim.run(100);
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_GoModelStep);

void BM_Rmsd(benchmark::State& state) {
    const auto model = villinGoModel();
    Rng rng(9);
    auto other = model.native;
    for (auto& p : other) p += rng.gaussianVec3(0.3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rmsd(model.native, other));
    }
}
BENCHMARK(BM_Rmsd);

void BM_Checkpoint(benchmark::State& state) {
    const auto model = villinGoModel();
    auto sim = Simulation::forGoModel(model, model.native,
                                      villinSimulationConfig(5));
    sim.initializeVelocities();
    sim.run(1000);
    for (auto _ : state) {
        auto blob = sim.checkpoint();
        benchmark::DoNotOptimize(blob.size());
    }
}
BENCHMARK(BM_Checkpoint);

} // namespace

BENCHMARK_MAIN();
