/// Engineering microbenchmarks for the MD engine: force kernels (scalar /
/// 4-wide blocked / SoA / runtime-dispatched SIMD — the paper's SIMD
/// tier), threaded force reduction (the thread tier), neighbour-list
/// builds, integrator steps and RMSD evaluation. tools/run_bench.sh
/// captures this binary's JSON output as BENCH_micro_md.json to track the
/// perf trajectory across PRs.
///
/// Beyond google-benchmark's items_per_second (pairs/s), the nonbonded
/// benchmarks report two derived counters so numbers stay comparable
/// across hosts and clock speeds:
///   gflops          — nominal FLOPs/pair (documented constants below)
///                     times the pair rate, in 1e9/s
///   pairs_per_cycle — pair rate divided by the CPU's nominal frequency
///
/// Extra flags on top of google-benchmark's:
///   --print-simd-isa  print the detected widest runnable ISA and exit
///   --smoke           quick flavor x ISA correctness/throughput sweep
///                     (filters to the nonbonded benchmarks, ~10 ms per
///                     measurement) — used by CI and tools/run_bench.sh
///
/// The emitted JSON context carries cop_build_type (CMake build type the
/// library was compiled with), simd_isa_detected and simd_isas_compiled,
/// so a stray debug-build result is self-incriminating.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "mdlib/observables.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/simd_dispatch.hpp"
#include "mdlib/simulation.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

#ifndef COP_BUILD_TYPE
#define COP_BUILD_TYPE "unknown"
#endif

using namespace cop;
using namespace cop::md;

namespace {

/// Nominal FLOPs per neighbour-list pair for the cell-list (shifted-run)
/// kernels, counting adds/subs/muls/divs/sqrts as one each: distance
/// vector + r^2 (8), cutoff select (2), LJ inv/s6/s12/energy/force (13),
/// virial (2), force scatter (10) = 35; reaction-field Coulomb adds
/// sqrt + 1/r + energy + force terms (13) = 48. These are bookkeeping
/// constants for cross-host comparability, not measurements.
constexpr double kFlopsPerPairLj = 35.0;
constexpr double kFlopsPerPairLjCoul = 48.0;

struct LjFixture {
    Topology top;
    Box box;
    std::vector<Vec3> positions;

    explicit LjFixture(std::size_t n, bool charges = false)
        : box(Box::cubic(std::cbrt(double(n)) * 1.2)) {
        for (std::size_t i = 0; i < n; ++i)
            top.addParticle(1.0, charges ? (i % 2 ? 0.2 : -0.2) : 0.0);
        top.finalize();
        Rng rng(7);
        const int side = int(std::ceil(std::cbrt(double(n))));
        const double a = box.lengths.x / side;
        std::size_t placed = 0;
        for (int x = 0; x < side && placed < n; ++x)
            for (int y = 0; y < side && placed < n; ++y)
                for (int z = 0; z < side && placed < n; ++z, ++placed)
                    positions.push_back({x * a + rng.uniform(-0.05, 0.05),
                                         y * a + rng.uniform(-0.05, 0.05),
                                         z * a + rng.uniform(-0.05, 0.05)});
    }
};

KernelFlavor flavorArg(std::int64_t v) {
    switch (v) {
    case 0: return KernelFlavor::Scalar;
    case 1: return KernelFlavor::Blocked4;
    case 2: return KernelFlavor::Soa;
    default: return KernelFlavor::SimdAuto;
    }
}

/// items_per_second (pairs/s) plus the derived gflops and
/// pairs_per_cycle counters; every nonbonded benchmark funnels through
/// here so the three rates stay consistently defined.
void addPairCounters(benchmark::State& state, std::size_t pairsPerIter,
                     double flopsPerPair) {
    const double total =
        double(state.iterations()) * double(pairsPerIter);
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(pairsPerIter));
    state.counters["gflops"] =
        benchmark::Counter(total * flopsPerPair * 1e-9,
                           benchmark::Counter::kIsRate);
    const double cps = benchmark::CPUInfo::Get().cycles_per_second;
    if (cps > 0.0)
        state.counters["pairs_per_cycle"] =
            benchmark::Counter(total / cps, benchmark::Counter::kIsRate);
}

/// Kernel-flavor x thread-count sweep over the full nonbonded evaluation
/// (neighbour-list check + kernel + reduction), uncharged LJ fluid.
void BM_NonbondedKernel(benchmark::State& state) {
    LjFixture fix(std::size_t(state.range(0)));
    ForceFieldParams p;
    p.kind = NonbondedKind::LennardJonesRF;
    p.cutoff = 2.5;
    p.flavor = flavorArg(state.range(1));
    const auto nThreads = std::size_t(state.range(2));
    std::optional<ThreadPool> pool;
    if (nThreads > 1) pool.emplace(nThreads);
    ForceField ff(fix.top, fix.box, p, pool ? &*pool : nullptr);
    std::vector<Vec3> forces;
    for (auto _ : state) {
        auto e = ff.compute(fix.positions, forces);
        benchmark::DoNotOptimize(e.nonbonded);
    }
    addPairCounters(state, ff.neighborList().pairs().size(),
                    kFlopsPerPairLj);
}
BENCHMARK(BM_NonbondedKernel)
    ->ArgsProduct({{1000, 10000}, {0, 1, 2, 3}, {1, 2, 4}})
    ->ArgNames({"atoms", "flavor", "threads"});

/// Same sweep with reaction-field Coulomb on (exercises the charged
/// bucket's precomputed qq path).
void BM_NonbondedKernelCharged(benchmark::State& state) {
    LjFixture fix(std::size_t(state.range(0)), /*charges=*/true);
    ForceFieldParams p;
    p.kind = NonbondedKind::LennardJonesRF;
    p.cutoff = 2.5;
    p.useCoulombRF = true;
    p.flavor = flavorArg(state.range(1));
    ForceField ff(fix.top, fix.box, p);
    std::vector<Vec3> forces;
    for (auto _ : state) {
        auto e = ff.compute(fix.positions, forces);
        benchmark::DoNotOptimize(e.coulomb);
    }
    addPairCounters(state, ff.neighborList().pairs().size(),
                    kFlopsPerPairLjCoul);
}
BENCHMARK(BM_NonbondedKernelCharged)
    ->ArgsProduct({{10000}, {0, 1, 2, 3}})
    ->ArgNames({"atoms", "flavor"});

/// Single-thread ISA sweep registered at startup for every compiled-in,
/// runnable kernel set, plus the width-1 "soa" baseline — the headline
/// SIMD-vs-Soa comparison lives here. Pinning params.simdIsa (rather
/// than COPERNICUS_SIMD) means the sweep is immune to the environment.
void runNonbondedIsa(benchmark::State& state, SimdIsa isa,
                     bool soaBaseline) {
    const bool charged = state.range(1) != 0;
    LjFixture fix(std::size_t(state.range(0)), charged);
    ForceFieldParams p;
    p.kind = NonbondedKind::LennardJonesRF;
    p.cutoff = 2.5;
    p.useCoulombRF = charged;
    if (soaBaseline) {
        p.flavor = KernelFlavor::Soa;
    } else {
        p.flavor = KernelFlavor::SimdAuto;
        p.simdIsa = isa;
    }
    ForceField ff(fix.top, fix.box, p);
    std::vector<Vec3> forces;
    for (auto _ : state) {
        auto e = ff.compute(fix.positions, forces);
        benchmark::DoNotOptimize(e.nonbonded);
    }
    addPairCounters(state, ff.neighborList().pairs().size(),
                    charged ? kFlopsPerPairLjCoul : kFlopsPerPairLj);
}

void registerIsaSweep() {
    auto reg = [](const std::string& label, SimdIsa isa, bool soa) {
        benchmark::RegisterBenchmark(
            ("BM_NonbondedIsa/isa:" + label).c_str(),
            [isa, soa](benchmark::State& st) {
                runNonbondedIsa(st, isa, soa);
            })
            ->ArgsProduct({{1000, 10000}, {0, 1}})
            ->ArgNames({"atoms", "charged"});
    };
    reg("soa", SimdIsa::Auto, /*soa=*/true);
    for (SimdIsa isa : compiledSimdIsas())
        if (simdIsaRunnable(isa)) reg(simdIsaName(isa), isa, false);
}

void BM_NeighborListBuild(benchmark::State& state) {
    LjFixture fix(std::size_t(state.range(0)));
    NeighborList nl(2.5, 0.3);
    for (auto _ : state) {
        nl.build(fix.top, fix.box, fix.positions);
        benchmark::DoNotOptimize(nl.pairs().size());
    }
}
BENCHMARK(BM_NeighborListBuild)->Arg(216)->Arg(1000)->ArgNames({"atoms"});

void BM_GoModelStep(benchmark::State& state) {
    const auto model = villinGoModel();
    auto sim = Simulation::forGoModel(model, model.native,
                                      villinSimulationConfig(5));
    sim.initializeVelocities();
    for (auto _ : state) sim.run(100);
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_GoModelStep);

void BM_Rmsd(benchmark::State& state) {
    const auto model = villinGoModel();
    Rng rng(9);
    auto other = model.native;
    for (auto& p : other) p += rng.gaussianVec3(0.3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rmsd(model.native, other));
    }
}
BENCHMARK(BM_Rmsd);

void BM_Checkpoint(benchmark::State& state) {
    const auto model = villinGoModel();
    auto sim = Simulation::forGoModel(model, model.native,
                                      villinSimulationConfig(5));
    sim.initializeVelocities();
    sim.run(1000);
    for (auto _ : state) {
        auto blob = sim.checkpoint();
        benchmark::DoNotOptimize(blob.size());
    }
}
BENCHMARK(BM_Checkpoint);

std::string compiledIsaList() {
    std::string out;
    for (SimdIsa isa : compiledSimdIsas()) {
        if (!out.empty()) out += ",";
        out += simdIsaName(isa);
    }
    return out;
}

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--print-simd-isa") == 0) {
            std::printf("%s\n", simdIsaName(detectSimdIsa()));
            return 0;
        }
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            continue;
        }
        args.push_back(argv[i]);
    }
    // Smoke mode: the full flavor x ISA nonbonded sweep at ~10 ms per
    // measurement. Enough to catch a wrong-answer or crashing kernel in
    // CI; useless for performance claims (run_bench.sh refuses to emit
    // JSON from it).
    static char filterFlag[] = "--benchmark_filter=BM_Nonbonded";
    static char minTimeFlag[] = "--benchmark_min_time=0.01";
    if (smoke) {
        args.push_back(filterFlag);
        args.push_back(minTimeFlag);
    }
    args.push_back(nullptr);

    registerIsaSweep();

    int newArgc = int(args.size()) - 1;
    benchmark::Initialize(&newArgc, args.data());
    if (benchmark::ReportUnrecognizedArguments(newArgc, args.data()))
        return 1;
    benchmark::AddCustomContext("cop_build_type", COP_BUILD_TYPE);
    benchmark::AddCustomContext("simd_isa_detected",
                                simdIsaName(detectSimdIsa()));
    benchmark::AddCustomContext("simd_isas_compiled", compiledIsaList());
    benchmark::AddCustomContext("smoke", smoke ? "true" : "false");
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
