/// Engineering microbenchmarks for the MD engine: force kernels (scalar
/// vs 4-wide blocked — the paper's SIMD tier), neighbour-list builds,
/// integrator steps and RMSD evaluation.

#include <benchmark/benchmark.h>

#include "mdlib/observables.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/simulation.hpp"
#include "util/random.hpp"

using namespace cop;
using namespace cop::md;

namespace {

struct LjFixture {
    Topology top;
    Box box;
    std::vector<Vec3> positions;

    explicit LjFixture(std::size_t n) : box(Box::cubic(std::cbrt(double(n)) * 1.2)) {
        for (std::size_t i = 0; i < n; ++i) top.addParticle(1.0);
        top.finalize();
        Rng rng(7);
        const int side = int(std::ceil(std::cbrt(double(n))));
        const double a = box.lengths.x / side;
        std::size_t placed = 0;
        for (int x = 0; x < side && placed < n; ++x)
            for (int y = 0; y < side && placed < n; ++y)
                for (int z = 0; z < side && placed < n; ++z, ++placed)
                    positions.push_back({x * a + rng.uniform(-0.05, 0.05),
                                         y * a + rng.uniform(-0.05, 0.05),
                                         z * a + rng.uniform(-0.05, 0.05)});
    }
};

void BM_NonbondedKernel(benchmark::State& state) {
    LjFixture fix(std::size_t(state.range(0)));
    ForceFieldParams p;
    p.kind = NonbondedKind::LennardJonesRF;
    p.cutoff = 2.5;
    p.flavor = state.range(1) == 0 ? KernelFlavor::Scalar
                                   : KernelFlavor::Blocked4;
    ForceField ff(fix.top, fix.box, p);
    std::vector<Vec3> forces;
    for (auto _ : state) {
        auto e = ff.compute(fix.positions, forces);
        benchmark::DoNotOptimize(e.nonbonded);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(ff.neighborList().pairs().size()));
}
BENCHMARK(BM_NonbondedKernel)
    ->ArgsProduct({{216, 1000}, {0, 1}})
    ->ArgNames({"atoms", "blocked"});

void BM_NeighborListBuild(benchmark::State& state) {
    LjFixture fix(std::size_t(state.range(0)));
    NeighborList nl(2.5, 0.3);
    for (auto _ : state) {
        nl.build(fix.top, fix.box, fix.positions);
        benchmark::DoNotOptimize(nl.pairs().size());
    }
}
BENCHMARK(BM_NeighborListBuild)->Arg(216)->Arg(1000)->ArgNames({"atoms"});

void BM_GoModelStep(benchmark::State& state) {
    const auto model = villinGoModel();
    auto sim = Simulation::forGoModel(model, model.native,
                                      villinSimulationConfig(5));
    sim.initializeVelocities();
    for (auto _ : state) sim.run(100);
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_GoModelStep);

void BM_Rmsd(benchmark::State& state) {
    const auto model = villinGoModel();
    Rng rng(9);
    auto other = model.native;
    for (auto& p : other) p += rng.gaussianVec3(0.3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rmsd(model.native, other));
    }
}
BENCHMARK(BM_Rmsd);

void BM_Checkpoint(benchmark::State& state) {
    const auto model = villinGoModel();
    auto sim = Simulation::forGoModel(model, model.native,
                                      villinSimulationConfig(5));
    sim.initializeVelocities();
    sim.run(1000);
    for (auto _ : state) {
        auto blob = sim.checkpoint();
        benchmark::DoNotOptimize(blob.size());
    }
}
BENCHMARK(BM_Checkpoint);

} // namespace

BENCHMARK_MAIN();
