/// Reproduces Fig. 3: the first observed folded villin structure. The
/// paper superimposes a simulation frame on the experimental native state
/// at 0.7 A Calpha RMSD, reached ~30 h into the run (3 generations).

#include <cstdio>

#include "mdlib/observables.hpp"
#include "mdlib/units.hpp"
#include "util/string_util.hpp"
#include "villin_study.hpp"

using namespace cop;

int main() {
    std::printf("=== Fig. 3: first observed folded conformation ===\n\n");

    bench::VillinStudyConfig cfg;
    const auto study = bench::runVillinStudy(cfg);
    const auto& ctrl = *study.controller;
    const auto& native = ctrl.params().model.native;

    // Locate the best frame and the first folded frame.
    double best = 1e30;
    int bestTraj = -1;
    std::int64_t bestStep = 0;
    double firstFoldedTime = -1.0;
    for (const auto& [id, traj] : ctrl.trajectories()) {
        for (std::size_t f = 0; f < traj.numFrames(); ++f) {
            const double r = md::toAngstrom(
                md::rmsd(native, traj.frame(f).positions));
            if (r < best) {
                best = r;
                bestTraj = id;
                bestStep = traj.frame(f).step;
            }
        }
    }
    firstFoldedTime = ctrl.firstFoldedTime();

    std::printf("best frame: trajectory %d, step %lld (%.1f mapped ns)\n",
                bestTraj, (long long)bestStep,
                md::stepsToNs(double(bestStep)));
    std::printf("Calpha RMSD to native: %.2f A\n", best);
    std::printf("first frame within %.1f A: virtual wall-clock %s "
                "(generation %d)\n",
                md::kFoldedRmsdAngstrom,
                formatHours(firstFoldedTime / 3600.0).c_str(),
                ctrl.firstFoldedGeneration());

    // Superposition quality check, mirroring the figure itself.
    const auto& traj = ctrl.trajectories().at(bestTraj);
    for (std::size_t f = 0; f < traj.numFrames(); ++f) {
        if (traj.frame(f).step == bestStep) {
            auto mobile = traj.frame(f).positions;
            md::superimpose(native, mobile);
            double maxDev = 0.0;
            for (std::size_t i = 0; i < native.size(); ++i)
                maxDev = std::max(maxDev,
                                  md::toAngstrom(distance(native[i],
                                                          mobile[i])));
            std::printf("after superposition: max per-residue deviation "
                        "%.2f A over %zu residues\n",
                        maxDev, native.size());
            break;
        }
    }

    std::printf("\npaper: 0.7 A Calpha RMSD, first observed ~30 h into the "
                "run\nmeasured: %.2f A, first folded after %s of simulated "
                "project time\n",
                best, formatHours(firstFoldedTime / 3600.0).c_str());
    std::printf("bench wall time: %.1f s\n", study.wallSeconds);
    return 0;
}
