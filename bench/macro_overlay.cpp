/// Closed-loop macro load harness for the overlay transport (ISSUE 6).
///
/// Two scenarios, each run with envelope coalescing on and off:
///
///  - "hot": a closed-loop command mill. A project server feeds a relay
///    server whose cluster of multi-core workers runs equal-duration echo
///    commands, so whole waves of CommandOutput envelopes (plus the
///    follow-up WorkloadRequest) complete in the same event-loop tick and
///    coalesce into single Batch frames. A mild seeded fault plan keeps
///    the reliability machinery honest. The headline is sustained
///    wall-clock commands/sec: every wire frame pays host-side routing
///    (per-hop Dijkstra), scheduling and allocation, so cutting frames
///    ~5x shows up directly as throughput.
///
///  - "sparse": an open-loop trickle. Long commands on single-core
///    workers plus a wide-area client pinging project status every few
///    seconds. Nothing to coalesce with -> every flush is a singleton and
///    every ack rides the zero-delay ack timer, so ack-latency p50/p99
///    must match the unbatched run (the "no regression on sparse load"
///    gate).
///
/// Results go to BENCH_macro_overlay.json. `--smoke` runs a small no-fault
/// hot config and exits nonzero unless every command completed with zero
/// dead letters and nonzero throughput (the CI gate).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/copernicus.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace cop;

namespace {

core::ExecutableRegistry echoRegistry(double duration) {
    core::ExecutableRegistry reg;
    reg.add("echo", [duration](const core::CommandSpec& cmd, int) {
        core::Execution e;
        e.result.commandId = cmd.id;
        e.result.projectId = cmd.projectId;
        e.result.trajectoryId = cmd.trajectoryId;
        e.result.generation = cmd.generation;
        e.result.success = true;
        e.result.output.assign(128, std::uint8_t(cmd.trajectoryId));
        e.simSeconds = duration;
        // One mid-run checkpoint: adds unreliable traffic in the same
        // burst-aligned waves as the results.
        e.checkpoints.emplace_back(0.5,
                                   std::vector<std::uint8_t>(256, 0xcc));
        return e;
    });
    return reg;
}

class FixedController : public core::Controller {
public:
    explicit FixedController(int n) : n_(n) {}
    void onProjectStart(core::ProjectContext& ctx) override {
        for (int i = 0; i < n_; ++i) {
            core::CommandSpec spec;
            spec.executable = "echo";
            spec.steps = 10;
            spec.trajectoryId = i;
            ctx.submitCommand(std::move(spec));
        }
    }
    void onCommandFinished(core::ProjectContext&,
                           const core::CommandResult&) override {
        ++finished_;
    }
    bool isDone(const core::ProjectContext& ctx) const override {
        return finished_ >= n_ && ctx.outstandingCommands() == 0;
    }

private:
    int n_ = 0;
    int finished_ = 0;
};

double percentile(std::vector<double>& samples, double q) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = std::size_t(q * double(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

struct RunMetrics {
    bool batched = false;
    bool completedAll = false;
    std::uint64_t commandsCompleted = 0;
    double wallSeconds = 0.0;
    double simSeconds = 0.0;
    double wallCommandsPerSec = 0.0;
    double simCommandsPerSec = 0.0;
    std::uint64_t wireFrames = 0;      ///< net::Message sends (hop 0 counts)
    std::uint64_t wireBytes = 0;
    std::uint64_t singletonFrames = 0;
    std::uint64_t batchFrames = 0;
    std::uint64_t batchedEnvelopes = 0;
    double envelopesPerFrame = 0.0;
    double framesPerCommand = 0.0;
    std::uint64_t acksPiggybacked = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t deliveriesFailed = 0;
    std::uint64_t deadLetters = 0;
    std::uint64_t flushOnCount = 0;
    std::uint64_t flushOnBytes = 0;
    std::uint64_t flushOnTimer = 0;
    std::uint64_t flushOnAckTimer = 0;
    double ackP50 = 0.0;
    double ackP99 = 0.0;
    // Durability plane (ISSUE 9): zeros when the WAL is off.
    std::uint64_t walRecords = 0;
    std::uint64_t walSyncs = 0;
    std::uint64_t walBytes = 0;
    std::uint64_t walSnapshots = 0;
    std::uint64_t storeSpills = 0;
    std::uint64_t storeSpilledRawBytes = 0;
    std::uint64_t storeSpilledCompressedBytes = 0;
    double storeCompressionRatio = 0.0;
    double compressedBytesPerGeneration = 0.0;
};

struct HotConfig {
    int workers = 384;
    int coresPerWorker = 8;
    int commands = 30720;
    double commandSeconds = 30.0;
    bool faults = true;
};

/// Attaches the ack-latency sampler to every endpoint in the deployment
/// and aggregates the wire-level counters afterwards.
struct EndpointProbe {
    std::vector<double> ackLatencies;

    void attach(core::wire::Endpoint& ep) {
        ep.onAckLatency(
            [this](double seconds) { ackLatencies.push_back(seconds); });
        endpoints.push_back(&ep);
    }

    void fill(RunMetrics& m) {
        for (const auto* ep : endpoints) {
            const auto& s = ep->stats();
            m.acksPiggybacked += s.acksPiggybacked;
            m.retransmits += s.retransmits;
            m.deliveriesFailed += s.deliveriesFailed;
            m.flushOnCount += s.flushOnCount;
            m.flushOnBytes += s.flushOnBytes;
            m.flushOnTimer += s.flushOnTimer;
            m.flushOnAckTimer += s.flushOnAckTimer;
        }
        m.ackP50 = percentile(ackLatencies, 0.50);
        m.ackP99 = percentile(ackLatencies, 0.99);
    }

    std::vector<core::wire::Endpoint*> endpoints;
};

/// `walDir` non-empty enables the full durability plane (group-commit
/// WAL + capped tiered store) on both servers — the WAL-on leg of the
/// <5% hot-path-tax A/B (ISSUE 9). Each server logs into its own subdir.
RunMetrics runHot(const HotConfig& hc, bool batched,
                  const std::string& walDir = {}) {
    core::Deployment dep(11);
    core::ServerConfig sc;
    sc.heartbeatInterval = 60.0;
    sc.batch.enabled = batched;
    // The relay aggregates whole worker waves; a wider window keeps one
    // wave in one frame instead of splitting it at the default count cap.
    sc.batch.maxEnvelopes = 64;
    sc.batch.maxBytes = 1 << 20;
    auto durable = [&](const char* name) {
        core::ServerConfig s = sc;
        if (!walDir.empty()) {
            s.durability.walEnabled = true;
            s.durability.walDir = walDir + "/" + name;
            // Group-commit window. The bench replays ~1000 sim-seconds per
            // wall-second, so a 120 sim-s window is ~120 ms of wall time — the
            // classic group-commit cadence. With the default zero-delay
            // (synchronous-equivalent) window every event-loop burst pays a
            // real fdatasync (~1 ms on this host) and the sim/wall time
            // compression turns that into a 3x wall slowdown that no real
            // deployment would see.
            s.durability.walFlushDelay = 120.0;
            s.durability.snapshotEveryRecords = 50000;
            // Cap the RAM tier well below the checkpoint-cache footprint
            // so spill + compression run inside the measured loop.
            s.durability.storeRamBytes = std::size_t(256) << 10;
            s.durability.storeDir = walDir + "/" + name + "_store";
        }
        return s;
    };
    auto& project = dep.addServer("project", durable("project"));
    auto& relay = dep.addServer("relay", durable("relay"));
    dep.connectServers(project, relay, core::links::dataCenter());

    EndpointProbe probe;
    probe.attach(project.endpoint());
    probe.attach(relay.endpoint());

    core::WorkerConfig wc;
    wc.cores = hc.coresPerWorker;
    wc.heartbeatInterval = 60.0;
    wc.batch.enabled = batched;
    wc.batch.maxEnvelopes = 64;
    wc.batch.maxBytes = 1 << 20;
    for (int w = 0; w < hc.workers; ++w) {
        auto& worker = dep.addWorker("w" + std::to_string(w), relay, wc,
                                     echoRegistry(hc.commandSeconds),
                                     core::links::intraCluster());
        probe.attach(worker.endpoint());
    }

    if (hc.faults) {
        net::FaultPlan plan;
        plan.seed = 20110617; // SC11 submission vintage
        plan.defaultProfile.dropProbability = 0.02;
        plan.defaultProfile.duplicateProbability = 0.02;
        plan.defaultProfile.reorderProbability = 0.02;
        dep.setFaultPlan(plan);
    }

    project.createProject("mill",
                          std::make_unique<FixedController>(hc.commands));

    const auto t0 = std::chrono::steady_clock::now();
    const bool done = dep.runUntilDone(1e9);
    const auto t1 = std::chrono::steady_clock::now();

    RunMetrics m;
    m.batched = batched;
    m.completedAll = done;
    m.commandsCompleted = project.stats().commandsCompleted;
    m.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    m.simSeconds = dep.loop().now();
    m.wallCommandsPerSec =
        m.wallSeconds > 0.0 ? double(m.commandsCompleted) / m.wallSeconds
                            : 0.0;
    m.simCommandsPerSec =
        m.simSeconds > 0.0 ? double(m.commandsCompleted) / m.simSeconds : 0.0;
    const auto wire = dep.network().totalStats();
    m.wireFrames = wire.messages;
    m.wireBytes = wire.bytes;
    m.singletonFrames = wire.singletons;
    m.batchFrames = wire.batches;
    m.batchedEnvelopes = wire.batchedEnvelopes;
    m.envelopesPerFrame =
        wire.messages > 0
            ? double(wire.singletons + wire.batchedEnvelopes) /
                  double(wire.messages)
            : 0.0;
    m.framesPerCommand =
        m.commandsCompleted > 0
            ? double(wire.messages) / double(m.commandsCompleted)
            : 0.0;
    m.deadLetters = dep.network().faultStats().deadLetters;
    probe.fill(m);
    for (const auto* srv : {&project, &relay}) {
        const auto ms = srv->metricsSnapshot();
        if (srv->wal()) {
            m.walRecords += srv->wal()->stats().records;
            m.walSyncs += srv->wal()->stats().syncs;
            m.walBytes += srv->wal()->stats().bytesWritten;
            m.walSnapshots += srv->wal()->stats().snapshots;
        }
        m.storeSpills += ms.store.spills;
        m.storeSpilledRawBytes += ms.store.spilledRawBytes;
        m.storeSpilledCompressedBytes += ms.store.spilledCompressedBytes;
    }
    m.storeCompressionRatio =
        m.storeSpilledCompressedBytes > 0
            ? double(m.storeSpilledRawBytes) /
                  double(m.storeSpilledCompressedBytes)
            : 0.0;
    // A "generation" of the mill = one wave of commands across the whole
    // worker fleet (the closed loop refills each wave in one tick).
    const double fleet = double(hc.workers) * double(hc.coresPerWorker);
    const double generations =
        fleet > 0.0 ? std::max(1.0, double(hc.commands) / fleet) : 1.0;
    m.compressedBytesPerGeneration =
        double(m.storeSpilledCompressedBytes) / generations;
    return m;
}

RunMetrics runSparse(bool batched) {
    core::Deployment dep(23);
    core::ServerConfig sc;
    sc.heartbeatInterval = 120.0;
    sc.batch.enabled = batched;
    auto& server = dep.addServer("s0", sc);

    EndpointProbe probe;
    probe.attach(server.endpoint());

    core::WorkerConfig wc;
    wc.cores = 1;
    wc.batch.enabled = batched;
    for (int w = 0; w < 2; ++w) {
        auto& worker = dep.addWorker("w" + std::to_string(w), server, wc,
                                     echoRegistry(240.0),
                                     core::links::intraCluster());
        probe.attach(worker.endpoint());
    }

    auto& client = dep.addClient("cli", server, core::links::wideArea());
    probe.attach(client.endpoint());

    const auto pid = server.createProject(
        "trickle", std::make_unique<FixedController>(8));
    // Open-loop status pings: one reliable round-trip every ~7 s on an
    // otherwise idle wide-area link. Each ack is standalone by
    // construction -- exactly the path the ack-flush bound protects.
    for (int i = 0; i < 100; ++i) {
        dep.loop().schedule(5.0 + 7.3 * i, [&client, &server, pid] {
            client.requestStatus(server.id(), pid);
        });
    }

    const auto t0 = std::chrono::steady_clock::now();
    const bool done = dep.runUntilDone(1e9);
    const auto t1 = std::chrono::steady_clock::now();

    RunMetrics m;
    m.batched = batched;
    m.completedAll = done;
    m.commandsCompleted = server.stats().commandsCompleted;
    m.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    m.simSeconds = dep.loop().now();
    m.wallCommandsPerSec =
        m.wallSeconds > 0.0 ? double(m.commandsCompleted) / m.wallSeconds
                            : 0.0;
    m.simCommandsPerSec =
        m.simSeconds > 0.0 ? double(m.commandsCompleted) / m.simSeconds : 0.0;
    const auto wire = dep.network().totalStats();
    m.wireFrames = wire.messages;
    m.wireBytes = wire.bytes;
    m.singletonFrames = wire.singletons;
    m.batchFrames = wire.batches;
    m.batchedEnvelopes = wire.batchedEnvelopes;
    m.envelopesPerFrame =
        wire.messages > 0
            ? double(wire.singletons + wire.batchedEnvelopes) /
                  double(wire.messages)
            : 0.0;
    m.deadLetters = dep.network().faultStats().deadLetters;
    probe.fill(m);
    return m;
}

void appendMetrics(std::string& json, const char* indent,
                   const RunMetrics& m) {
    char buf[4096];
    std::snprintf(
        buf, sizeof buf,
        "%s\"completed_all\": %s,\n"
        "%s\"commands_completed\": %llu,\n"
        "%s\"wall_seconds\": %.6f,\n"
        "%s\"sim_seconds\": %.3f,\n"
        "%s\"wall_commands_per_sec\": %.1f,\n"
        "%s\"sim_commands_per_sec\": %.4f,\n"
        "%s\"wire_frames\": %llu,\n"
        "%s\"wire_bytes\": %llu,\n"
        "%s\"singleton_frames\": %llu,\n"
        "%s\"batch_frames\": %llu,\n"
        "%s\"batched_envelopes\": %llu,\n"
        "%s\"envelopes_per_frame\": %.3f,\n"
        "%s\"frames_per_command\": %.3f,\n"
        "%s\"acks_piggybacked\": %llu,\n"
        "%s\"retransmits\": %llu,\n"
        "%s\"deliveries_failed\": %llu,\n"
        "%s\"dead_letters\": %llu,\n"
        "%s\"flush_on_count\": %llu,\n"
        "%s\"flush_on_bytes\": %llu,\n"
        "%s\"flush_on_timer\": %llu,\n"
        "%s\"flush_on_ack_timer\": %llu,\n"
        "%s\"ack_latency_p50_s\": %.6f,\n"
        "%s\"ack_latency_p99_s\": %.6f,\n"
        "%s\"wal_records\": %llu,\n"
        "%s\"wal_syncs\": %llu,\n"
        "%s\"wal_bytes\": %llu,\n"
        "%s\"wal_snapshots\": %llu,\n"
        "%s\"store_spills\": %llu,\n"
        "%s\"store_spilled_raw_bytes\": %llu,\n"
        "%s\"store_spilled_compressed_bytes\": %llu,\n"
        "%s\"store_compression_ratio\": %.3f,\n"
        "%s\"compressed_bytes_per_generation\": %.1f\n",
        indent, m.completedAll ? "true" : "false", indent,
        (unsigned long long)m.commandsCompleted, indent, m.wallSeconds,
        indent, m.simSeconds, indent, m.wallCommandsPerSec, indent,
        m.simCommandsPerSec, indent, (unsigned long long)m.wireFrames,
        indent, (unsigned long long)m.wireBytes, indent,
        (unsigned long long)m.singletonFrames, indent,
        (unsigned long long)m.batchFrames, indent,
        (unsigned long long)m.batchedEnvelopes, indent, m.envelopesPerFrame,
        indent, m.framesPerCommand, indent,
        (unsigned long long)m.acksPiggybacked, indent,
        (unsigned long long)m.retransmits, indent,
        (unsigned long long)m.deliveriesFailed, indent,
        (unsigned long long)m.deadLetters, indent,
        (unsigned long long)m.flushOnCount, indent,
        (unsigned long long)m.flushOnBytes, indent,
        (unsigned long long)m.flushOnTimer, indent,
        (unsigned long long)m.flushOnAckTimer, indent, m.ackP50, indent,
        m.ackP99, indent, (unsigned long long)m.walRecords, indent,
        (unsigned long long)m.walSyncs, indent,
        (unsigned long long)m.walBytes, indent,
        (unsigned long long)m.walSnapshots, indent,
        (unsigned long long)m.storeSpills, indent,
        (unsigned long long)m.storeSpilledRawBytes, indent,
        (unsigned long long)m.storeSpilledCompressedBytes, indent,
        m.storeCompressionRatio, indent,
        m.compressedBytesPerGeneration);
    json += buf;
}

void printRow(Table& t, const char* name, const RunMetrics& on,
              const RunMetrics& off) {
    t.addRow({name, formatFixed(on.wallCommandsPerSec, 0),
              formatFixed(off.wallCommandsPerSec, 0),
              formatFixed(off.wallCommandsPerSec > 0.0
                              ? on.wallCommandsPerSec /
                                    off.wallCommandsPerSec
                              : 0.0,
                          2) +
                  "x",
              formatFixed(on.envelopesPerFrame, 2),
              std::to_string(on.wireBytes / 1000) + "k/" +
                  std::to_string(off.wireBytes / 1000) + "k"});
}

} // namespace

struct WalAb {
    RunMetrics off;
    RunMetrics on;
    double tax = 0.0;
};

/// The WAL-on/off A/B at a mid-size hot config (the <5% hot-path-tax
/// contract of ISSUE 9). Also reachable standalone via `--wal-ab` so the
/// tax can be re-measured without the full scaling sweep.
///
/// Estimator: the host's effective CPU speed drifts on multi-second
/// timescales (shared vCPU), so a single long off leg followed by a
/// single long on leg mostly measures that drift, not the WAL. Instead
/// run several short back-to-back off/on pairs — the two legs of a pair
/// share the frequency state — and take the *median* of the per-pair
/// ratios. The reported legs are the ones from the median pair.
WalAb runWalAb() {
    HotConfig ab;
    ab.workers = 128;
    ab.commands = 10240;
    const auto walTmp =
        (std::filesystem::temp_directory_path() /
         ("cop_overlay_wal_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(walTmp);
    constexpr int kPairs = 7;
    std::vector<WalAb> pairs;
    for (int i = 0; i < kPairs; ++i) {
        // Alternate which leg runs first: effective CPU speed also
        // drifts *within* a pair, and a fixed order would fold that
        // drift into the ratio as a systematic bias.
        WalAb p;
        if (i % 2 == 0) {
            p.off = runHot(ab, /*batched=*/true, {});
            p.on = runHot(ab, /*batched=*/true, walTmp);
        } else {
            p.on = runHot(ab, /*batched=*/true, walTmp);
            p.off = runHot(ab, /*batched=*/true, {});
        }
        std::filesystem::remove_all(walTmp);
        p.tax = p.off.wallCommandsPerSec > 0.0
                    ? p.on.wallCommandsPerSec / p.off.wallCommandsPerSec
                    : 0.0;
        pairs.push_back(std::move(p));
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const WalAb& a, const WalAb& b) { return a.tax < b.tax; });
    return pairs[kPairs / 2];
}

void printWalAb(const WalAb& ab) {
    std::printf("wal A/B (mid-size hot): %.0f cps on vs %.0f cps off "
                "= %.3fx (gate >= 0.95); %llu records / %llu syncs "
                "(%.0f rec/sync); spill ratio %.2fx; "
                "%.1f kB compressed/generation\n",
                ab.on.wallCommandsPerSec, ab.off.wallCommandsPerSec,
                ab.tax, (unsigned long long)ab.on.walRecords,
                (unsigned long long)ab.on.walSyncs,
                ab.on.walSyncs > 0
                    ? double(ab.on.walRecords) / double(ab.on.walSyncs)
                    : 0.0,
                ab.on.storeCompressionRatio,
                ab.on.compressedBytesPerGeneration / 1e3);
}

int main(int argc, char** argv) {
    Logger::instance().setLevel(LogLevel::Warn);
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    if (argc > 1 && std::strcmp(argv[1], "--wal-ab") == 0) {
        const auto ab = runWalAb();
        printWalAb(ab);
        return ab.tax >= 0.95 ? 0 : 1;
    }

    if (smoke) {
        // CI gate: small, fault-free, must complete everything with zero
        // dead letters and nonzero throughput.
        HotConfig hc;
        hc.workers = 4;
        hc.coresPerWorker = 4;
        hc.commands = 64;
        hc.faults = false;
        const auto m = runHot(hc, /*batched=*/true);
        std::printf("smoke: completed=%llu/%d wall_cps=%.0f "
                    "dead_letters=%llu batches=%llu\n",
                    (unsigned long long)m.commandsCompleted, hc.commands,
                    m.wallCommandsPerSec,
                    (unsigned long long)m.deadLetters,
                    (unsigned long long)m.batchFrames);
        if (!m.completedAll || m.commandsCompleted != std::uint64_t(hc.commands)) {
            std::printf("smoke FAILED: not all commands completed\n");
            return 1;
        }
        if (m.deadLetters != 0) {
            std::printf("smoke FAILED: dead letters under no-fault plan\n");
            return 1;
        }
        if (m.wallCommandsPerSec <= 0.0) {
            std::printf("smoke FAILED: zero throughput\n");
            return 1;
        }
        std::printf("smoke OK\n");
        return 0;
    }

    std::printf("=== macro_overlay: closed-loop overlay throughput ===\n\n");

    HotConfig hc;
    const auto hotOn = runHot(hc, /*batched=*/true);
    const auto hotOff = runHot(hc, /*batched=*/false);
    auto sparseOn = runSparse(/*batched=*/true);
    auto sparseOff = runSparse(/*batched=*/false);

    // WAL A/B: the same closed loop at a mid-size config, durability
    // plane off vs on. The contract (ISSUE 9) is a <5% hot-path tax, so
    // both legs share one config and only durability differs.
    const auto [walOff, walOn, walTax] = runWalAb();

    Table t({"scenario", "cps batched", "cps unbatched", "speedup",
             "env/frame", "bytes on/off"});
    printRow(t, "hot", hotOn, hotOff);
    printRow(t, "sparse", sparseOn, sparseOff);
    std::printf("%s\n", t.render().c_str());

    printWalAb({walOff, walOn, walTax});

    std::printf("hot: %llu frames batched vs %llu unbatched "
                "(%.1f%% fewer); %llu acks piggybacked; "
                "dead letters %llu/%llu\n",
                (unsigned long long)hotOn.wireFrames,
                (unsigned long long)hotOff.wireFrames,
                hotOff.wireFrames > 0
                    ? 100.0 * (1.0 - double(hotOn.wireFrames) /
                                         double(hotOff.wireFrames))
                    : 0.0,
                (unsigned long long)hotOn.acksPiggybacked,
                (unsigned long long)hotOn.deadLetters,
                (unsigned long long)hotOff.deadLetters);
    std::printf("sparse ack latency: p50 %.4fs/%.4fs  p99 %.4fs/%.4fs "
                "(batched/unbatched; must match)\n",
                sparseOn.ackP50, sparseOff.ackP50, sparseOn.ackP99,
                sparseOff.ackP99);

    std::string json = "{\n  \"bench\": \"macro_overlay\",\n";
    json += "  \"hot\": {\n    \"batched\": {\n";
    appendMetrics(json, "      ", hotOn);
    json += "    },\n    \"unbatched\": {\n";
    appendMetrics(json, "      ", hotOff);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    },\n    \"wall_speedup\": %.2f,\n"
                  "    \"frame_reduction\": %.3f\n  },\n",
                  hotOff.wallCommandsPerSec > 0.0
                      ? hotOn.wallCommandsPerSec / hotOff.wallCommandsPerSec
                      : 0.0,
                  hotOff.wireFrames > 0
                      ? 1.0 - double(hotOn.wireFrames) /
                                  double(hotOff.wireFrames)
                      : 0.0);
    json += buf;
    json += "  \"wal_ab\": {\n    \"wal_on\": {\n";
    appendMetrics(json, "      ", walOn);
    json += "    },\n    \"wal_off\": {\n";
    appendMetrics(json, "      ", walOff);
    std::snprintf(buf, sizeof buf,
                  "    },\n    \"wal_tax_cps_ratio\": %.4f,\n"
                  "    \"wal_tax_gate\": 0.95\n  },\n",
                  walTax);
    json += buf;
    json += "  \"sparse\": {\n    \"batched\": {\n";
    appendMetrics(json, "      ", sparseOn);
    json += "    },\n    \"unbatched\": {\n";
    appendMetrics(json, "      ", sparseOff);
    std::snprintf(buf, sizeof buf,
                  "    },\n    \"ack_p99_regression\": %.6f\n  }\n}\n",
                  sparseOn.ackP99 - sparseOff.ackP99);
    json += buf;

    std::ofstream out("BENCH_macro_overlay.json");
    out << json;
    std::printf("\nwrote BENCH_macro_overlay.json\n");
    return 0;
}
