/// Reproduces Fig. 5: time evolution of the ensemble-average Calpha RMSD
/// from native for the villin ensemble, with standard-deviation error
/// bars, over the paper's full 2 us window. The paper's curve relaxes from
/// ~6-7 A towards ~4 A as a growing subpopulation folds; the error bars
/// stay wide because the ensemble remains a folded/unfolded mixture.

#include <cstdio>

#include "mdlib/observables.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/simulation.hpp"
#include "mdlib/units.hpp"
#include "util/statistics.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace cop;

int main() {
    std::printf("=== Fig. 5: ensemble-average RMSD vs time ===\n\n");

    const auto model = md::villinGoModel();
    const int nTrajectories = 30;
    const double horizonNs = 2000.0;
    const auto steps = std::int64_t(md::nsToSteps(horizonNs));
    const double binNs = 100.0;

    const auto starts = md::makeUnfoldedConformations(model, 9, 7919);

    Timer timer;
    std::vector<RunningStats> bins(std::size_t(horizonNs / binNs) + 1);
    std::vector<double> finalRmsds;
    for (int t = 0; t < nTrajectories; ++t) {
        auto cfg = md::villinSimulationConfig(1000 + std::uint64_t(t));
        cfg.sampleInterval = 200; // one frame per 5 mapped ns is plenty
        auto sim = md::Simulation::forGoModel(
            model, starts[std::size_t(t) % starts.size()], cfg);
        sim.initializeVelocities();
        sim.run(steps);
        for (const auto& frame : sim.trajectory().frames()) {
            const double tNs = md::stepsToNs(double(frame.step));
            const auto bin = std::size_t(tNs / binNs);
            if (bin < bins.size())
                bins[bin].add(md::toAngstrom(
                    md::rmsd(model.native, frame.positions)));
        }
        finalRmsds.push_back(md::toAngstrom(
            md::rmsd(model.native, sim.state().positions)));
    }

    Table table({"time (ns)", "n", "<RMSD> (A)", "std dev (A)",
                 "std err (A)"});
    std::vector<double> ts, means;
    for (std::size_t b = 0; b < bins.size(); ++b) {
        if (bins[b].count() < 3) continue;
        const double t = (double(b) + 0.5) * binNs;
        ts.push_back(t);
        means.push_back(bins[b].mean());
        table.addRow({formatFixed(t, 0), std::to_string(bins[b].count()),
                      formatFixed(bins[b].mean(), 2),
                      formatFixed(bins[b].stddev(), 2),
                      formatFixed(bins[b].standardError(), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("ensemble <RMSD> vs time:\n%s\n",
                asciiChart(ts, means, 64, 12).c_str());

    std::size_t folded = 0;
    for (double r : finalRmsds)
        if (r < md::kFoldedRmsdAngstrom) ++folded;

    std::printf("paper: average relaxes from ~6-7 A towards ~4 A over 2 us "
                "as the folded\n       subpopulation grows; error bars "
                "stay wide (mixed ensemble)\n");
    if (!means.empty())
        std::printf("measured: %.1f A at %.0f ns -> %.1f A at %.0f ns; "
                    "%zu/%d trajectories folded at 2 us\n",
                    means.front(), ts.front(), means.back(), ts.back(),
                    folded, nTrajectories);
    std::printf("bench wall time: %.1f s\n", timer.elapsedSeconds());
    return 0;
}
