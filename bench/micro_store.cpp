/// Data-plane microbenchmarks for the tiered segment store, the blob
/// codec, and the group-commit WAL (ISSUE 9).
///
/// Three experiments:
///
///  - "codec": encode/decode a *real* MD checkpoint (Gō-model hairpin
///    after a short run) and report the compression ratio and both
///    directions' throughput. The delta/XOR pre-filter targets exactly
///    this payload: slowly-varying doubles.
///
///  - "store": the headline RSS experiment. Push one checkpoint-sized
///    blob per simulated command — 1M commands by default — through a
///    SegmentStore whose RAM tier is capped far below the raw total, and
///    read VmRSS/VmHWM from /proc/self/status before and after. The
///    bounded-RAM contract holds when resident growth tracks the cap (plus
///    O(entries) index metadata), not the multi-GB raw payload.
///
///  - "wal": group-commit append throughput (records/s, MB/s, syncs) and
///    cold replay throughput over the same log.
///
/// Results go to BENCH_micro_store.json. `--smoke` runs scaled-down
/// versions of all three and exits nonzero unless the RSS stays bounded,
/// the codec round-trips with ratio > 1 on checkpoint bytes, and WAL
/// replay returns every appended record (the CI gate).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/segment_store.hpp"
#include "core/wal.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/simulation.hpp"
#include "net/event_loop.hpp"
#include "util/codec.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace cop;

namespace {

namespace fs = std::filesystem;

double nowSeconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// VmRSS / VmHWM in bytes from /proc/self/status (0 when unavailable,
/// e.g. non-Linux hosts — the gate degrades to the stats-based checks).
struct MemUsage {
    std::size_t rssBytes = 0;
    std::size_t peakBytes = 0;
};

MemUsage readMemUsage() {
    MemUsage m;
    std::ifstream f("/proc/self/status");
    std::string line;
    while (std::getline(f, line)) {
        const auto parse = [&](const char* key) -> std::size_t {
            if (line.rfind(key, 0) != 0) return 0;
            return std::size_t(
                       std::strtoull(line.c_str() + std::strlen(key),
                                     nullptr, 10)) *
                   1024;
        };
        if (auto v = parse("VmRSS:")) m.rssBytes = v;
        if (auto v = parse("VmHWM:")) m.peakBytes = v;
    }
    return m;
}

struct TempDir {
    fs::path path;
    explicit TempDir(const char* tag) {
        path = fs::temp_directory_path() /
               (std::string("cop_micro_store_") + tag + "_" +
                std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

/// A real checkpoint payload: hairpin Gō model advanced far enough to
/// have velocities, trajectory frames and non-trivial positions.
std::vector<std::uint8_t> realCheckpointBytes() {
    const auto model = md::hairpinGoModel();
    auto sim =
        md::Simulation::forGoModel(model, model.native,
                                   md::villinSimulationConfig(7));
    sim.initializeVelocities();
    sim.run(500);
    return sim.checkpoint();
}

// ---- codec -------------------------------------------------------------

struct CodecMetrics {
    std::size_t rawBytes = 0;
    std::size_t frameBytes = 0;
    double ratio = 0.0; ///< raw / compressed
    double encodeMBps = 0.0;
    double decodeMBps = 0.0;
    bool roundTripOk = false;
    const char* filter = "none";
    const char* method = "stored";
};

CodecMetrics runCodec(const std::vector<std::uint8_t>& checkpoint,
                      int reps) {
    CodecMetrics m;
    m.rawBytes = checkpoint.size();

    const auto first = util::encode(checkpoint);
    m.frameBytes = first.frame.size();
    m.ratio = m.frameBytes > 0
                  ? double(m.rawBytes) / double(m.frameBytes)
                  : 0.0;
    m.filter = first.filter == util::CodecFilter::DeltaXor24 ? "deltaxor24"
               : first.filter == util::CodecFilter::DeltaXor8
                   ? "deltaxor8"
                   : "none";
    m.method =
        first.method == util::CodecMethod::Lz ? "lz" : "stored";
    const auto decoded = util::decode(first.frame, std::size_t(1) << 30);
    m.roundTripOk = decoded == checkpoint;

    double t0 = nowSeconds();
    for (int i = 0; i < reps; ++i) {
        const auto r = util::encode(checkpoint);
        if (r.frame.empty()) return m; // unreachable; defeats DCE
    }
    double dt = nowSeconds() - t0;
    m.encodeMBps =
        dt > 0.0 ? double(m.rawBytes) * reps / dt / 1e6 : 0.0;

    t0 = nowSeconds();
    for (int i = 0; i < reps; ++i) {
        const auto r = util::decode(first.frame, std::size_t(1) << 30);
        if (r.empty()) return m;
    }
    dt = nowSeconds() - t0;
    m.decodeMBps =
        dt > 0.0 ? double(m.rawBytes) * reps / dt / 1e6 : 0.0;
    return m;
}

// ---- store: bounded-RSS under 1M commands ------------------------------

struct StoreMetrics {
    std::uint64_t commands = 0;
    std::size_t blobBytes = 0;
    std::size_t ramCapBytes = 0;
    double rawTotalMb = 0.0;
    double rssBeforeMb = 0.0;
    double rssAfterMb = 0.0;
    double rssDeltaMb = 0.0;
    double peakMb = 0.0;
    double putsPerSec = 0.0;
    double wallSeconds = 0.0;
    std::uint64_t spills = 0;
    std::uint64_t segmentsCreated = 0;
    double ramTierMb = 0.0;
    double coldTierMb = 0.0;
    double storeRatio = 0.0; ///< spilled raw / spilled compressed
    bool bounded = false;
    double boundMb = 0.0;
};

StoreMetrics runStore(const std::vector<std::uint8_t>& checkpoint,
                      std::uint64_t commands, std::size_t ramCap) {
    TempDir tmp("store");
    core::StoreConfig cfg;
    cfg.ramBytes = ramCap;
    cfg.dir = tmp.path.string();

    // One checkpoint-sized payload per command: tile the real checkpoint
    // to a fixed 4 KiB record and vary the head per key so frames are not
    // all byte-identical.
    std::vector<std::uint8_t> blob(4096);
    for (std::size_t i = 0; i < blob.size(); ++i)
        blob[i] = checkpoint[i % checkpoint.size()];

    StoreMetrics m;
    m.commands = commands;
    m.blobBytes = blob.size();
    m.ramCapBytes = ramCap;
    m.rawTotalMb = double(commands) * double(blob.size()) / 1e6;

    const auto before = readMemUsage();
    m.rssBeforeMb = double(before.rssBytes) / 1e6;

    const double t0 = nowSeconds();
    {
        core::SegmentStore store(cfg);
        for (std::uint64_t k = 0; k < commands; ++k) {
            std::memcpy(blob.data(), &k, sizeof k);
            store.put(k, core::SharedBytes(
                             std::vector<std::uint8_t>(blob)));
        }
        m.wallSeconds = nowSeconds() - t0;
        const auto after = readMemUsage();
        m.rssAfterMb = double(after.rssBytes) / 1e6;
        m.peakMb = double(after.peakBytes) / 1e6;
        m.rssDeltaMb = m.rssAfterMb - m.rssBeforeMb;
        const auto& s = store.stats();
        m.spills = s.spills;
        m.segmentsCreated = s.segmentsCreated;
        m.ramTierMb = double(s.ramBytesUsed) / 1e6;
        m.coldTierMb = double(s.coldBytesLive) / 1e6;
        m.storeRatio = s.spilledCompressedBytes > 0
                           ? double(s.spilledRawBytes) /
                                 double(s.spilledCompressedBytes)
                           : 0.0;
    }
    m.putsPerSec =
        m.wallSeconds > 0.0 ? double(commands) / m.wallSeconds : 0.0;

    // Bounded-RAM contract: resident growth is the hot-tier cap plus
    // O(entries) index metadata — never the raw payload. 512 B/entry
    // covers the std::map node + Entry + allocator overhead; the flat
    // 64 MB absorbs allocator arenas and the transient encode buffers.
    m.boundMb = double(ramCap) / 1e6 +
                double(commands) * 512.0 / 1e6 + 64.0;
    m.bounded = before.rssBytes == 0 /* no /proc: trust tier stats */
                    ? m.ramTierMb <= double(ramCap) / 1e6 + 1.0
                    : m.rssDeltaMb <= m.boundMb;
    return m;
}

// ---- wal: group-commit append + replay throughput ----------------------

struct WalMetrics {
    std::uint64_t records = 0;
    std::size_t bodyBytes = 0;
    double appendsPerSec = 0.0;
    double appendMBps = 0.0;
    std::uint64_t flushes = 0;
    std::uint64_t syncs = 0;
    double recordsPerSync = 0.0;
    double replayPerSec = 0.0;
    std::uint64_t replayed = 0;
    double logMb = 0.0;
};

WalMetrics runWal(std::uint64_t records, int flushEvery) {
    TempDir tmp("wal");
    net::EventLoop loop;
    core::WalConfig cfg;
    cfg.dir = tmp.path.string();
    cfg.loop = &loop;

    WalMetrics m;
    m.records = records;
    std::vector<std::uint8_t> body(64);
    m.bodyBytes = body.size();

    {
        core::Wal wal(cfg);
        const double t0 = nowSeconds();
        for (std::uint64_t i = 0; i < records; ++i) {
            std::memcpy(body.data(), &i, sizeof i);
            wal.append(core::WalRecordType::Push, body);
            // Group commit: one write+fdatasync per flush window, exactly
            // what the zero-delay timer does per event-loop tick.
            if ((i + 1) % std::uint64_t(flushEvery) == 0) wal.flush();
        }
        wal.flush();
        const double dt = nowSeconds() - t0;
        m.appendsPerSec = dt > 0.0 ? double(records) / dt : 0.0;
        m.appendMBps =
            dt > 0.0 ? double(wal.stats().bytesWritten) / dt / 1e6 : 0.0;
        m.flushes = wal.stats().flushes;
        m.syncs = wal.stats().syncs;
        m.recordsPerSync =
            m.syncs > 0 ? double(records) / double(m.syncs) : 0.0;
        m.logMb = double(wal.stats().bytesWritten) / 1e6;
    }
    {
        core::Wal wal(cfg);
        const double t0 = nowSeconds();
        std::uint64_t n = 0;
        wal.replay([&](core::WalRecordType,
                       std::span<const std::uint8_t>) { ++n; });
        const double dt = nowSeconds() - t0;
        m.replayed = n;
        m.replayPerSec = dt > 0.0 ? double(n) / dt : 0.0;
    }
    return m;
}

// ---- output ------------------------------------------------------------

void writeJson(const CodecMetrics& c, const StoreMetrics& s,
               const WalMetrics& w) {
    char buf[4096];
    std::snprintf(
        buf, sizeof buf,
        "{\n  \"bench\": \"micro_store\",\n"
        "  \"codec\": {\n"
        "    \"raw_bytes\": %zu,\n"
        "    \"frame_bytes\": %zu,\n"
        "    \"compression_ratio\": %.3f,\n"
        "    \"filter\": \"%s\",\n"
        "    \"method\": \"%s\",\n"
        "    \"encode_mb_per_sec\": %.1f,\n"
        "    \"decode_mb_per_sec\": %.1f,\n"
        "    \"round_trip_ok\": %s\n  },\n"
        "  \"store\": {\n"
        "    \"commands\": %llu,\n"
        "    \"blob_bytes\": %zu,\n"
        "    \"ram_cap_mb\": %.1f,\n"
        "    \"raw_total_mb\": %.1f,\n"
        "    \"rss_before_mb\": %.1f,\n"
        "    \"rss_after_mb\": %.1f,\n"
        "    \"rss_delta_mb\": %.1f,\n"
        "    \"rss_bound_mb\": %.1f,\n"
        "    \"vm_hwm_mb\": %.1f,\n"
        "    \"ram_tier_mb\": %.2f,\n"
        "    \"cold_tier_mb\": %.1f,\n"
        "    \"spills\": %llu,\n"
        "    \"segments_created\": %llu,\n"
        "    \"spill_compression_ratio\": %.3f,\n"
        "    \"puts_per_sec\": %.0f,\n"
        "    \"rss_bounded\": %s\n  },\n"
        "  \"wal\": {\n"
        "    \"records\": %llu,\n"
        "    \"body_bytes\": %zu,\n"
        "    \"appends_per_sec\": %.0f,\n"
        "    \"append_mb_per_sec\": %.1f,\n"
        "    \"syncs\": %llu,\n"
        "    \"records_per_sync\": %.1f,\n"
        "    \"log_mb\": %.2f,\n"
        "    \"replayed\": %llu,\n"
        "    \"replays_per_sec\": %.0f\n  }\n}\n",
        c.rawBytes, c.frameBytes, c.ratio, c.filter, c.method,
        c.encodeMBps, c.decodeMBps, c.roundTripOk ? "true" : "false",
        (unsigned long long)s.commands, s.blobBytes,
        double(s.ramCapBytes) / 1e6, s.rawTotalMb, s.rssBeforeMb,
        s.rssAfterMb, s.rssDeltaMb, s.boundMb, s.peakMb, s.ramTierMb,
        s.coldTierMb, (unsigned long long)s.spills,
        (unsigned long long)s.segmentsCreated, s.storeRatio,
        s.putsPerSec, s.bounded ? "true" : "false",
        (unsigned long long)w.records, w.bodyBytes, w.appendsPerSec,
        w.appendMBps, (unsigned long long)w.syncs, w.recordsPerSync,
        w.logMb, (unsigned long long)w.replayed, w.replayPerSec);
    std::ofstream out("BENCH_micro_store.json");
    out << buf;
    std::printf("\nwrote BENCH_micro_store.json\n");
}

int gate(const CodecMetrics& c, const StoreMetrics& s,
         const WalMetrics& w) {
    int failures = 0;
    if (!c.roundTripOk) {
        std::printf("FAILED: codec round-trip mismatch\n");
        ++failures;
    }
    if (c.ratio <= 1.0) {
        std::printf("FAILED: no compression on checkpoint bytes "
                    "(ratio %.3f)\n",
                    c.ratio);
        ++failures;
    }
    if (!s.bounded) {
        std::printf("FAILED: RSS not bounded by the RAM cap "
                    "(delta %.1f MB > bound %.1f MB for %.1f MB raw)\n",
                    s.rssDeltaMb, s.boundMb, s.rawTotalMb);
        ++failures;
    }
    if (s.spills == 0) {
        std::printf("FAILED: cap never engaged (no spills)\n");
        ++failures;
    }
    if (w.replayed != w.records) {
        std::printf("FAILED: WAL replay returned %llu of %llu records\n",
                    (unsigned long long)w.replayed,
                    (unsigned long long)w.records);
        ++failures;
    }
    return failures;
}

} // namespace

int main(int argc, char** argv) {
    Logger::instance().setLevel(LogLevel::Warn);
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    const auto checkpoint = realCheckpointBytes();

    const auto codec = runCodec(checkpoint, smoke ? 20 : 200);
    const auto store = runStore(checkpoint,
                                smoke ? 50'000 : 1'000'000,
                                smoke ? std::size_t(16) << 20
                                      : std::size_t(128) << 20);
    const auto wal =
        runWal(smoke ? 20'000 : 500'000, /*flushEvery=*/512);

    std::printf("=== micro_store: tiered store + codec + WAL ===\n\n");
    Table t({"experiment", "metric", "value"});
    t.addRow({"codec", "checkpoint bytes",
              std::to_string(codec.rawBytes)});
    t.addRow({"codec", "ratio (filter=" + std::string(codec.filter) + ")",
              formatFixed(codec.ratio, 2) + "x"});
    t.addRow({"codec", "encode / decode MB/s",
              formatFixed(codec.encodeMBps, 0) + " / " +
                  formatFixed(codec.decodeMBps, 0)});
    t.addRow({"store", "commands", std::to_string(store.commands)});
    t.addRow({"store", "raw / cap MB",
              formatFixed(store.rawTotalMb, 0) + " / " +
                  formatFixed(double(store.ramCapBytes) / 1e6, 0)});
    t.addRow({"store", "RSS delta (bound) MB",
              formatFixed(store.rssDeltaMb, 1) + " (" +
                  formatFixed(store.boundMb, 1) + ")"});
    t.addRow({"store", "spill ratio",
              formatFixed(store.storeRatio, 2) + "x"});
    t.addRow({"store", "puts/s", formatFixed(store.putsPerSec, 0)});
    t.addRow({"wal", "appends/s", formatFixed(wal.appendsPerSec, 0)});
    t.addRow({"wal", "records/sync",
              formatFixed(wal.recordsPerSync, 0)});
    t.addRow({"wal", "replay/s", formatFixed(wal.replayPerSec, 0)});
    std::printf("%s\n", t.render().c_str());

    writeJson(codec, store, wal);

    const int failures = gate(codec, store, wal);
    if (failures == 0)
        std::printf(smoke ? "smoke OK\n" : "all gates OK\n");
    return failures == 0 ? 0 : 1;
}
