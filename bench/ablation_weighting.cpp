/// Ablation for the paper's §3.2 claim: once state definitions stabilize,
/// adaptive (uncertainty) weighting "can boost sampling efficiency twofold
/// compared to even weighting". We run matched villin studies under each
/// scheme and compare exploration metrics at an equal command budget.

#include <cstdio>

#include "mdlib/observables.hpp"
#include "msm/spectral.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "villin_study.hpp"

using namespace cop;

namespace {

struct AblationResult {
    std::size_t statesDiscovered = 0;
    /// The adaptive objective: total row-wise sampling variance proxy
    /// sum_i 1/(outCounts_i + 1) over observed states (lower = better
    /// constrained transition rows).
    double uncertaintyProxy = 0.0;
    /// Bayesian posterior stddev of the equilibrium folded fraction,
    /// from Dirichlet sampling of the count matrix.
    double foldedPosteriorStd = 0.0;
    double minRmsd = 0.0;
};

AblationResult runScheme(msm::WeightingScheme scheme, std::uint64_t seed) {
    // Bypass the shared driver so the weighting scheme can be set.
    Logger::instance().setLevel(LogLevel::Warn);
    core::Deployment dep(seed);
    auto& server = dep.addServer("s0");
    const double secondsPerStep = 0.1;
    for (int w = 0; w < 6; ++w) {
        core::ExecutableRegistry reg;
        reg.add("mdrun", core::makeMdrunExecutable(
                             core::linearDurationModel(secondsPerStep)));
        dep.addWorker("w" + std::to_string(w), server, core::WorkerConfig{},
                      std::move(reg), core::links::intraCluster());
    }
    auto model = md::villinGoModel();
    core::MsmControllerParams mp;
    mp.model = model;
    mp.startingConformations =
        md::makeUnfoldedConformations(model, 6, seed + 17);
    mp.tasksPerStart = 4;
    mp.segmentSteps = 3000;
    mp.maxGenerations = 5;
    mp.pipeline.numClusters = 80;
    mp.pipeline.snapshotStride = 3;
    mp.pipeline.medoidSweeps = 1;
    mp.weighting = scheme;
    // Scheme under test applies from generation 2 onward; generation 1 is
    // always Even (as in the paper's protocol).
    mp.evenGenerations = 1;
    mp.simulation = md::villinSimulationConfig();
    mp.seed = seed;
    auto ctrl = std::make_unique<core::MsmController>(mp);
    auto* c = ctrl.get();
    server.createProject("ablation", std::move(ctrl));
    dep.runUntilDone(1e12);

    AblationResult res;
    const auto& msmResult = *c->lastMsm();
    const auto& counts = msmResult.counts;
    for (std::size_t i = 0; i < msmResult.populations.size(); ++i) {
        if (msmResult.populations[i] == 0) continue;
        ++res.statesDiscovered;
        double out = 0.0;
        for (std::size_t j = 0; j < counts.cols(); ++j) out += counts(i, j);
        res.uncertaintyProxy += 1.0 / (out + 1.0);
    }

    // Posterior spread of the equilibrium folded fraction over the
    // active-set count matrix.
    const auto& msmModel = msmResult.model;
    std::vector<bool> folded(msmModel.numStates(), false);
    for (std::size_t a = 0; a < msmModel.numStates(); ++a) {
        const int micro = msmModel.activeState(a);
        folded[a] = md::toAngstrom(md::rmsd(
                        mp.model.native,
                        msmResult.centers[std::size_t(micro)])) <
                    md::kFoldedRmsdAngstrom;
    }
    cop::Rng postRng(seed + 31);
    const auto posterior = msm::transitionMatrixUncertainty(
        msmModel.countMatrix(),
        [&](const msm::DenseMatrix& t) {
            const auto pi = msm::stationaryOf(t, 20000, 1e-10);
            double f = 0.0;
            for (std::size_t a = 0; a < pi.size(); ++a)
                if (folded[a]) f += pi[a];
            return f;
        },
        60, postRng);
    res.foldedPosteriorStd = posterior.stddev;
    res.minRmsd = c->minRmsdAngstrom();
    return res;
}

} // namespace

int main() {
    std::printf("=== Ablation: even vs adaptive weighting (§3.2) ===\n\n");

    Table table({"scheme", "seed", "states", "sum 1/(counts+1)",
                 "folded posterior std", "min RMSD (A)"});
    double evenU = 0.0, adaptiveU = 0.0, evenP = 0.0, adaptiveP = 0.0;
    int n = 0;
    for (std::uint64_t seed : {101, 202}) {
        const auto even = runScheme(msm::WeightingScheme::Even, seed);
        const auto adaptive =
            runScheme(msm::WeightingScheme::Adaptive, seed);
        table.addRow({"even", std::to_string(seed),
                      std::to_string(even.statesDiscovered),
                      formatFixed(even.uncertaintyProxy, 2),
                      formatFixed(even.foldedPosteriorStd, 4),
                      formatFixed(even.minRmsd, 2)});
        table.addRow({"adaptive", std::to_string(seed),
                      std::to_string(adaptive.statesDiscovered),
                      formatFixed(adaptive.uncertaintyProxy, 2),
                      formatFixed(adaptive.foldedPosteriorStd, 4),
                      formatFixed(adaptive.minRmsd, 2)});
        evenU += even.uncertaintyProxy;
        adaptiveU += adaptive.uncertaintyProxy;
        evenP += even.foldedPosteriorStd;
        adaptiveP += adaptive.foldedPosteriorStd;
        ++n;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper claim: adaptive weighting optimizes convergence of "
                "kinetic properties,\nup to ~2x sampling efficiency.\n"
                "measured (avg over seeds, equal command budget):\n"
                "  row-uncertainty proxy sum 1/(counts+1): even %.2f vs "
                "adaptive %.2f (%.2fx)\n"
                "  posterior std of folded fraction:       even %.4f vs "
                "adaptive %.4f\n",
                evenU / n, adaptiveU / n,
                adaptiveU > 0 ? (evenU / adaptiveU) : 0.0, evenP / n,
                adaptiveP / n);
    return 0;
}
