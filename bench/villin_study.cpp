#include "villin_study.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace cop::bench {

VillinStudy runVillinStudy(const VillinStudyConfig& config) {
    Logger::instance().setLevel(LogLevel::Warn);

    VillinStudy study;
    study.deployment = std::make_unique<core::Deployment>(config.seed);
    auto& dep = *study.deployment;

    // Two-server overlay like the paper's Fig. 1: a project server and a
    // relay on a second "cluster"; half of the workers attach to each.
    auto& projectServer = dep.addServer("project-server");
    auto& relay = dep.addServer("cluster1-head");
    dep.connectServers(projectServer, relay, core::links::dataCenter());
    study.server = &projectServer;

    // The virtual duration of a command follows the paper-calibrated MD
    // performance model at 24 cores per simulation.
    const perf::MdPerfModel perfModel;
    const double cmdSeconds =
        perfModel.commandSeconds(md::stepsToNs(double(config.segmentSteps)),
                                 24);
    const double secondsPerStep = cmdSeconds / double(config.segmentSteps);

    for (int w = 0; w < config.workers; ++w) {
        core::ExecutableRegistry reg;
        reg.add("mdrun", core::makeMdrunExecutable(
                             core::linearDurationModel(secondsPerStep)));
        core::WorkerConfig wc;
        wc.platform = "OpenMPI";
        wc.cores = 1; // one command at a time per worker
        dep.addWorker("worker" + std::to_string(w),
                      (w % 2 == 0) ? projectServer : relay, wc,
                      std::move(reg), core::links::intraCluster());
    }

    auto model = md::villinGoModel();
    core::MsmControllerParams mp;
    mp.model = model;
    mp.startingConformations = md::makeUnfoldedConformations(
        model, std::size_t(config.starts), config.seed * 7919 + 1);
    mp.tasksPerStart = config.tasksPerStart;
    mp.segmentSteps = config.segmentSteps;
    mp.maxGenerations = config.generations;
    mp.pipeline.numClusters = config.numClusters;
    // Paper: clustering snapshots every 1.5 ns = 60 steps = 3 frames at
    // the 20-step sampling interval.
    mp.pipeline.snapshotStride = 3;
    mp.pipeline.lag = 1;
    mp.pipeline.medoidSweeps = 1;
    mp.weighting = msm::WeightingScheme::Adaptive;
    mp.evenGenerations = 1;
    mp.simulation = md::villinSimulationConfig();
    mp.seed = config.seed;

    auto controller = std::make_unique<core::MsmController>(mp);
    study.controller = controller.get();
    study.projectId =
        projectServer.createProject("msm_villin", std::move(controller));

    Timer timer;
    const bool done = dep.runUntilDone(1e12);
    study.wallSeconds = timer.elapsedSeconds();
    COP_ENSURE(done, "villin study did not complete");
    return study;
}

} // namespace cop::bench
