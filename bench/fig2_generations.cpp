/// Reproduces Fig. 2: per-generation evolution of selected villin
/// trajectories' RMSD to native. The paper shows starting-conformation
/// trajectories staying unfolded, an adaptively spawned trajectory
/// reaching the first folded conformation (0.7 A), and a generation-4
/// respawn that underlies the blind native-state prediction.

#include <algorithm>
#include <cstdio>
#include <map>

#include "mdlib/observables.hpp"
#include "mdlib/units.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "villin_study.hpp"

using namespace cop;

int main() {
    std::printf("=== Fig. 2: per-generation trajectory RMSD evolution ===\n");
    std::printf("(paper: first folded conformation from a gen-1 respawn at "
                "0.7 A; blind-\n prediction trajectory spawned in gen 4; "
                "starting trajectories stay high)\n\n");

    bench::VillinStudyConfig cfg;
    const auto study = bench::runVillinStudy(cfg);
    const auto& ctrl = *study.controller;
    const auto& native = ctrl.params().model.native;

    // Per-trajectory, per-segment minimum RMSD (a segment is one 50 ns
    // command; the paper's x-axis "generation number" advances one unit
    // per 50 ns of trajectory time).
    const auto segFrames =
        std::size_t(cfg.segmentSteps /
                    ctrl.params().simulation.sampleInterval);
    std::map<int, std::vector<double>> perSegmentMin;
    for (const auto& [id, traj] : ctrl.trajectories()) {
        auto& mins = perSegmentMin[id];
        for (std::size_t f = 0; f < traj.numFrames(); ++f) {
            const std::size_t seg = f / segFrames;
            if (seg >= mins.size()) mins.resize(seg + 1, 1e30);
            mins[seg] = std::min(
                mins[seg],
                md::toAngstrom(md::rmsd(native, traj.frame(f).positions)));
        }
    }

    // Select the paper's cast: three starting trajectories, the
    // best-folding trajectory, and the longest-lived late respawn.
    int bestTraj = -1;
    double bestRmsd = 1e30;
    for (const auto& [id, mins] : perSegmentMin) {
        for (double m : mins) {
            if (m < bestRmsd) {
                bestRmsd = m;
                bestTraj = id;
            }
        }
    }
    const int initialCount = cfg.starts * cfg.tasksPerStart;
    int lateTraj = -1;
    std::size_t lateLen = 0;
    for (const auto& [id, mins] : perSegmentMin)
        if (id >= initialCount && mins.size() >= lateLen && id != bestTraj) {
            lateLen = mins.size();
            lateTraj = id;
        }

    std::vector<int> cast{0, 1, 2};
    if (bestTraj >= 0) cast.push_back(bestTraj);
    if (lateTraj >= 0) cast.push_back(lateTraj);

    std::size_t maxSegs = 0;
    for (int id : cast)
        maxSegs = std::max(maxSegs, perSegmentMin[id].size());

    std::vector<std::string> headers{"trajectory", "role"};
    for (std::size_t s = 0; s < maxSegs; ++s)
        headers.push_back("seg" + std::to_string(s));
    Table table(headers);
    for (int id : cast) {
        std::vector<std::string> row;
        row.push_back("traj " + std::to_string(id));
        row.push_back(id == bestTraj      ? "best fold"
                      : id == lateTraj    ? "late respawn"
                      : id < initialCount ? "initial start"
                                          : "respawn");
        const auto& mins = perSegmentMin[id];
        for (std::size_t s = 0; s < maxSegs; ++s)
            row.push_back(s < mins.size() ? formatFixed(mins[s], 2) : "-");
        table.addRow(std::move(row));
    }
    std::printf("Minimum RMSD to native (Angstrom) per 50 ns segment:\n%s\n",
                table.render().c_str());

    std::printf("Generation summary:\n");
    Table gen({"gen", "snapshots", "clusters", "min RMSD (A)",
               "mean RMSD (A)", "folded frac", "blind pred (A)"});
    for (const auto& rec : ctrl.history()) {
        gen.addRow({std::to_string(rec.generation),
                    std::to_string(rec.totalSnapshots),
                    std::to_string(rec.numClusters),
                    formatFixed(rec.minRmsdAngstrom, 2),
                    formatFixed(rec.meanRmsdAngstrom, 2),
                    formatFixed(rec.foldedFraction, 3),
                    formatFixed(rec.predictedRmsdAngstrom, 2)});
    }
    std::printf("%s\n", gen.render().c_str());

    std::printf("paper: conformations 0.6-0.7 A from native after ~3 "
                "generations;\n");
    std::printf("measured: best %.2f A (trajectory %d), first folded in "
                "generation %d\n",
                bestRmsd, bestTraj, ctrl.firstFoldedGeneration());
    std::printf("bench wall time: %.1f s\n", study.wallSeconds);
    return 0;
}
