/// Engineering microbenchmarks for the MSM layer: clustering, transition
/// counting, estimation and propagation at the scales the controller uses.

#include <benchmark/benchmark.h>

#include <optional>

#include "msm/clustering.hpp"
#include "msm/markov_model.hpp"
#include "msm/pipeline.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

using namespace cop;
using namespace cop::msm;

namespace {

ConformationSet randomConformations(std::size_t count, std::size_t atoms,
                                    std::uint64_t seed) {
    Rng rng(seed);
    ConformationSet set;
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<Vec3> conf;
        for (std::size_t a = 0; a < atoms; ++a)
            conf.push_back(rng.gaussianVec3(2.0));
        set.add(std::move(conf));
    }
    return set;
}

void BM_KCenters(benchmark::State& state) {
    const auto data =
        randomConformations(std::size_t(state.range(0)), 35, 3);
    KCentersParams p;
    p.numClusters = std::size_t(state.range(1));
    const auto nThreads = std::size_t(state.range(2));
    std::optional<ThreadPool> pool;
    if (nThreads > 1) pool.emplace(nThreads);
    for (auto _ : state) {
        auto r = kCenters(data, p, pool ? &*pool : nullptr);
        benchmark::DoNotOptimize(r.centers.size());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            state.range(0) * state.range(1));
}
BENCHMARK(BM_KCenters)
    ->ArgsProduct({{500, 2000}, {50, 100}, {1, 4}})
    ->ArgNames({"snapshots", "k", "threads"});

std::vector<DiscreteTrajectory> randomDiscrete(std::size_t trajs,
                                               std::size_t len,
                                               std::size_t states,
                                               std::uint64_t seed) {
    Rng rng(seed);
    std::vector<DiscreteTrajectory> out(trajs);
    for (auto& t : out) {
        int s = int(rng.uniformInt(states));
        for (std::size_t i = 0; i < len; ++i) {
            if (rng.uniform() < 0.2) s = int(rng.uniformInt(states));
            t.push_back(s);
        }
    }
    return out;
}

void BM_CountTransitions(benchmark::State& state) {
    const auto trajs = randomDiscrete(225, 200, 200, 5);
    for (auto _ : state) {
        auto c = countTransitions(trajs, 200, 1);
        benchmark::DoNotOptimize(c(0, 0));
    }
}
BENCHMARK(BM_CountTransitions);

void BM_EstimateModel(benchmark::State& state) {
    const auto trajs = randomDiscrete(50, 200, std::size_t(state.range(0)), 7);
    const auto counts =
        countTransitions(trajs, std::size_t(state.range(0)), 1);
    MarkovModelParams p;
    for (auto _ : state) {
        auto m = MarkovStateModel::fromCounts(counts, p);
        benchmark::DoNotOptimize(m.numStates());
    }
}
BENCHMARK(BM_EstimateModel)->Arg(100)->Arg(300)->ArgNames({"states"});

void BM_StationaryDistribution(benchmark::State& state) {
    const auto trajs = randomDiscrete(50, 500, 200, 9);
    const auto m = MarkovStateModel::fromTrajectories(trajs, 200, {});
    for (auto _ : state) {
        // Propagation dominates an MSM analysis pass; stationary caches,
        // so benchmark propagate instead.
        std::vector<double> p(m.numStates(), 1.0 / double(m.numStates()));
        p = m.propagate(p, 50);
        benchmark::DoNotOptimize(p[0]);
    }
}
BENCHMARK(BM_StationaryDistribution);

void BM_ImpliedTimescales(benchmark::State& state) {
    const auto trajs = randomDiscrete(50, 500, 100, 11);
    const auto m = MarkovStateModel::fromTrajectories(trajs, 100, {});
    for (auto _ : state) {
        auto ts = m.impliedTimescales(5);
        benchmark::DoNotOptimize(ts.size());
    }
}
BENCHMARK(BM_ImpliedTimescales);

} // namespace

BENCHMARK_MAIN();
