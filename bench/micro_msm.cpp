/// Engineering microbenchmarks for the MSM layer: clustering, transition
/// counting, estimation and propagation at the scales the controller uses.

#include <benchmark/benchmark.h>

#include <chrono>
#include <optional>

#include "msm/clustering.hpp"
#include "msm/markov_model.hpp"
#include "msm/pipeline.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

using namespace cop;
using namespace cop::msm;

namespace {

ConformationSet randomConformations(std::size_t count, std::size_t atoms,
                                    std::uint64_t seed) {
    Rng rng(seed);
    ConformationSet set;
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<Vec3> conf;
        for (std::size_t a = 0; a < atoms; ++a)
            conf.push_back(rng.gaussianVec3(2.0));
        set.add(std::move(conf));
    }
    return set;
}

void BM_KCenters(benchmark::State& state) {
    const auto data =
        randomConformations(std::size_t(state.range(0)), 35, 3);
    KCentersParams p;
    p.numClusters = std::size_t(state.range(1));
    const auto nThreads = std::size_t(state.range(2));
    std::optional<ThreadPool> pool;
    if (nThreads > 1) pool.emplace(nThreads);
    for (auto _ : state) {
        auto r = kCenters(data, p, pool ? &*pool : nullptr);
        benchmark::DoNotOptimize(r.centers.size());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            state.range(0) * state.range(1));
}
BENCHMARK(BM_KCenters)
    ->ArgsProduct({{500, 2000}, {50, 100}, {1, 4}})
    ->ArgNames({"snapshots", "k", "threads"});

std::vector<DiscreteTrajectory> randomDiscrete(std::size_t trajs,
                                               std::size_t len,
                                               std::size_t states,
                                               std::uint64_t seed) {
    Rng rng(seed);
    std::vector<DiscreteTrajectory> out(trajs);
    for (auto& t : out) {
        int s = int(rng.uniformInt(states));
        for (std::size_t i = 0; i < len; ++i) {
            if (rng.uniform() < 0.2) s = int(rng.uniformInt(states));
            t.push_back(s);
        }
    }
    return out;
}

void BM_CountTransitions(benchmark::State& state) {
    const auto trajs = randomDiscrete(225, 200, 200, 5);
    for (auto _ : state) {
        auto c = countTransitions(trajs, 200, 1);
        benchmark::DoNotOptimize(c(0, 0));
    }
}
BENCHMARK(BM_CountTransitions);

void BM_EstimateModel(benchmark::State& state) {
    const auto trajs = randomDiscrete(50, 200, std::size_t(state.range(0)), 7);
    const auto counts =
        countTransitions(trajs, std::size_t(state.range(0)), 1);
    MarkovModelParams p;
    for (auto _ : state) {
        auto m = MarkovStateModel::fromCounts(counts, p);
        benchmark::DoNotOptimize(m.numStates());
    }
}
BENCHMARK(BM_EstimateModel)->Arg(100)->Arg(300)->ArgNames({"states"});

void BM_StationaryDistribution(benchmark::State& state) {
    const auto trajs = randomDiscrete(50, 500, 200, 9);
    const auto m = MarkovStateModel::fromTrajectories(trajs, 200, {});
    for (auto _ : state) {
        // Propagation dominates an MSM analysis pass; stationary caches,
        // so benchmark propagate instead.
        std::vector<double> p(m.numStates(), 1.0 / double(m.numStates()));
        p = m.propagate(p, 50);
        benchmark::DoNotOptimize(p[0]);
    }
}
BENCHMARK(BM_StationaryDistribution);

void BM_ImpliedTimescales(benchmark::State& state) {
    const auto trajs = randomDiscrete(50, 500, 100, 11);
    const auto m = MarkovStateModel::fromTrajectories(trajs, 100, {});
    for (auto _ : state) {
        auto ts = m.impliedTimescales(5);
        benchmark::DoNotOptimize(ts.size());
    }
}
BENCHMARK(BM_ImpliedTimescales);

// --- Adaptive-generation sweep: full rebuild vs incremental update -------
//
// Models the MSM controller's workload: every generation spawns
// kTrajsPerGen new trajectories of kSnapsPerTraj snapshots, and the MSM is
// re-built over everything accumulated so far. BM_MsmFullGeneration pays
// the from-scratch pipeline at generation g; BM_MsmIncrementalGeneration
// replays generations 1..g-1 untimed and measures only the g-th update.
// Compare the two at gen:8 for the headline speedup.

constexpr int kTrajsPerGen = 30;
constexpr std::size_t kSnapsPerTraj = 30;
constexpr std::size_t kBenchAtoms = 35;
constexpr int kMaxGenerations = 8;

const std::vector<md::Trajectory>& generationTrajectories() {
    static const std::vector<md::Trajectory> all = [] {
        Rng rng(21);
        // Basin-structured shapes (RMSD is superposition-invariant, so the
        // basins differ in shape): incremental assignment stays within the
        // frozen centers' coverage and the builder never falls back.
        std::vector<std::vector<Vec3>> basins;
        for (int b = 0; b < 10; ++b) {
            std::vector<Vec3> proto;
            for (std::size_t a = 0; a < kBenchAtoms; ++a)
                proto.push_back(rng.gaussianVec3(2.0));
            basins.push_back(std::move(proto));
        }
        std::vector<md::Trajectory> trajs;
        for (int g = 0; g < kMaxGenerations; ++g) {
            for (int t = 0; t < kTrajsPerGen; ++t) {
                md::Trajectory traj;
                for (std::size_t f = 0; f < kSnapsPerTraj; ++f) {
                    auto conf = basins[rng.uniformInt(basins.size())];
                    for (auto& v : conf) v += rng.gaussianVec3(0.05);
                    traj.append(std::int64_t(f), double(f), std::move(conf));
                }
                trajs.push_back(std::move(traj));
            }
        }
        return trajs;
    }();
    return all;
}

MsmPipelineParams generationPipelineParams() {
    MsmPipelineParams p;
    p.numClusters = 100;
    p.snapshotStride = 1;
    p.lag = 1;
    // Row-normalized estimator: the estimation tail is shared by both
    // variants, so keep it cheap to expose the rebuild cost difference.
    p.estimator = EstimatorKind::RowNormalized;
    p.medoidSweeps = 1;
    p.seed = 13;
    return p;
}

std::vector<std::pair<int, const md::Trajectory*>> generationRefs(int gen) {
    const auto& all = generationTrajectories();
    std::vector<std::pair<int, const md::Trajectory*>> refs;
    for (int t = 0; t < gen * kTrajsPerGen; ++t)
        refs.emplace_back(t, &all[std::size_t(t)]);
    return refs;
}

void recordMsmCounters(benchmark::State& state, const MsmStats& stats) {
    state.counters["snapshots"] = double(stats.snapshotsTotal);
    state.counters["rmsd_calls"] = double(stats.rmsd.calls);
    state.counters["rmsd_pruned"] = double(stats.rmsd.pruned);
    state.counters["prune_rate"] = stats.rmsd.pruneFraction();
    state.counters["full_rebuild"] = stats.fullRebuild ? 1.0 : 0.0;
}

void BM_MsmFullGeneration(benchmark::State& state) {
    const int gen = int(state.range(0));
    const auto refs = generationRefs(gen);
    TrajectoryRefs trajs;
    for (const auto& [id, traj] : refs) trajs.push_back(traj);
    const auto params = generationPipelineParams();
    MsmStats last;
    for (auto _ : state) {
        auto r = buildMsm(trajs, params);
        benchmark::DoNotOptimize(r.model.numStates());
        last = r.stats;
    }
    recordMsmCounters(state, last);
}
BENCHMARK(BM_MsmFullGeneration)
    ->DenseRange(1, kMaxGenerations)
    ->ArgNames({"gen"})
    ->Unit(benchmark::kMillisecond);

void BM_MsmIncrementalGeneration(benchmark::State& state) {
    const int gen = int(state.range(0));
    IncrementalMsmParams ip;
    ip.pipeline = generationPipelineParams();
    ip.rebuildRadiusFactor = 1.5;
    MsmStats last;
    for (auto _ : state) {
        // Replay history untimed; measure only the generation under test.
        IncrementalMsmBuilder builder(ip);
        for (int g = 1; g < gen; ++g) (void)builder.update(generationRefs(g));
        const auto refs = generationRefs(gen);
        const auto t0 = std::chrono::steady_clock::now();
        auto r = builder.update(refs);
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        state.SetIterationTime(dt.count());
        benchmark::DoNotOptimize(r.model.numStates());
        last = r.stats;
    }
    recordMsmCounters(state, last);
}
BENCHMARK(BM_MsmIncrementalGeneration)
    ->DenseRange(1, kMaxGenerations)
    ->ArgNames({"gen"})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
