/// Ablation: transition-matrix estimator choice under adaptive sampling.
/// Adaptive sampling deliberately distorts the sampling distribution, so
/// the naive symmetrized estimator (pi tied to sampling volume) gives a
/// badly biased equilibrium, while the reversible MLE recovers it. This
/// is the estimation-layer decision that makes the paper's Fig. 4
/// (population dynamics and blind native-state prediction) work at all.

#include <cstdio>

#include "mdlib/observables.hpp"
#include "mdlib/units.hpp"
#include "msm/spectral.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "villin_study.hpp"

using namespace cop;

int main() {
    Logger::instance().setLevel(LogLevel::Warn);
    std::printf("=== Ablation: MSM estimator under adaptive sampling ===\n\n");

    // One adaptive villin study provides the (biased-sampling) data.
    bench::VillinStudyConfig cfg;
    cfg.generations = 5;
    const auto study = bench::runVillinStudy(cfg);
    const auto& ctrl = *study.controller;
    const auto& msmResult = *ctrl.lastMsm();
    const auto& native = ctrl.params().model.native;

    // Reference equilibrium: fraction of direct long unbiased
    // trajectories that are folded at their end (ground truth for the Gō
    // model at this temperature, measured in Fig. 5's bench: ~0.8).
    auto foldedFractionOf = [&](const msm::MarkovStateModel& m) {
        const auto& pi = m.stationaryDistribution();
        double f = 0.0;
        for (std::size_t a = 0; a < m.numStates(); ++a) {
            const int micro = m.activeState(a);
            if (md::toAngstrom(md::rmsd(
                    native, msmResult.centers[std::size_t(micro)])) <
                md::kFoldedRmsdAngstrom)
                f += pi[a];
        }
        return f;
    };

    Table table({"estimator", "folded fraction", "detailed balance",
                 "slowest timescale (ns)"});
    const double nsPerSnapshot = md::stepsToNs(
        double(ctrl.params().pipeline.snapshotStride *
               ctrl.params().simulation.sampleInterval));
    for (auto kind : {msm::EstimatorKind::RowNormalized,
                      msm::EstimatorKind::Symmetrized,
                      msm::EstimatorKind::ReversibleMle}) {
        msm::MarkovModelParams mp;
        mp.lag = ctrl.params().pipeline.lag;
        mp.estimator = kind;
        const auto m =
            msm::MarkovStateModel::fromCounts(msmResult.counts, mp);
        // Detailed-balance residual max |pi_i T_ij - pi_j T_ji|.
        const auto& pi = m.stationaryDistribution();
        double db = 0.0;
        for (std::size_t i = 0; i < m.numStates(); ++i)
            for (std::size_t j = 0; j < m.numStates(); ++j)
                db = std::max(db,
                              std::abs(pi[i] * m.transitionMatrix()(i, j) -
                                       pi[j] * m.transitionMatrix()(j, i)));
        const auto ts = m.impliedTimescales(1);
        const char* name = kind == msm::EstimatorKind::RowNormalized
                               ? "row-normalized"
                               : kind == msm::EstimatorKind::Symmetrized
                                     ? "symmetrized"
                                     : "reversible MLE";
        table.addRow({name, formatFixed(foldedFractionOf(m), 3),
                      formatFixed(db, 6),
                      ts.empty() ? "-"
                                 : formatFixed(ts[0] * nsPerSnapshot, 0)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("reference: direct unbiased 2 us simulations fold ~80%% "
                "of trajectories\n(fig5 bench). The symmetrized estimator "
                "drags the folded population towards\nthe adaptive "
                "sampling distribution; the reversible MLE decouples "
                "them while\nkeeping detailed balance exact.\n");
    return 0;
}
