/// Reproduces Fig. 4: time evolution of microstate-MSM cluster populations
/// via p(t + tau) = p(t) T(tau) (paper Eq. 1), starting from the nine
/// unfolded states. The paper reports 66% of the population folded (within
/// 3.5 A of native) by 2 us and a folding t1/2 of ~500-600 ns, against an
/// experimental folding time of ~700 ns; it also validates Markovianity
/// (lag >= 20 ns) on the largest connected subset.

#include <cstdio>

#include "mdlib/observables.hpp"
#include "mdlib/units.hpp"
#include "msm/pipeline.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "villin_study.hpp"

using namespace cop;

int main() {
    std::printf("=== Fig. 4: MSM population dynamics ===\n\n");

    bench::VillinStudyConfig cfg;
    const auto study = bench::runVillinStudy(cfg);
    const auto& ctrl = *study.controller;
    const auto& msmResult = *ctrl.lastMsm();
    const auto& model = msmResult.model;
    const auto& native = ctrl.params().model.native;

    // Folded microstates: centers within 3.5 A of native.
    std::vector<int> foldedActive;
    for (std::size_t a = 0; a < model.numStates(); ++a) {
        const int micro = model.activeState(a);
        if (md::toAngstrom(md::rmsd(native,
                                    msmResult.centers[std::size_t(micro)])) <
            md::kFoldedRmsdAngstrom)
            foldedActive.push_back(int(a));
    }
    std::printf("microstates: %zu total, %zu in the largest connected "
                "subset, %zu folded\n",
                msmResult.clustering.numClusters(), model.numStates(),
                foldedActive.size());

    // Initial distribution: the nine unfolded starting conformations,
    // assigned to their nearest microstate.
    std::vector<double> p0(model.numStates(), 0.0);
    {
        // Rebuild a small conformation set of centers for assignment.
        msm::ConformationSet centers;
        for (const auto& c : msmResult.centers) centers.add(c);
        std::vector<std::size_t> centerIdx(centers.size());
        for (std::size_t i = 0; i < centers.size(); ++i) centerIdx[i] = i;
        const auto assigned = msm::assignToCenters(
            centers, centerIdx, ctrl.params().startingConformations);
        double assignedWeight = 0.0;
        for (int micro : assigned) {
            const int a = model.toActiveIndex(micro);
            if (a >= 0) {
                p0[std::size_t(a)] += 1.0;
                assignedWeight += 1.0;
            }
        }
        if (assignedWeight > 0.0)
            for (double& v : p0) v /= assignedWeight;
    }

    // Propagate. One MSM step = lag * snapshotStride * sampleInterval
    // engine steps.
    const double nsPerMsmStep = md::stepsToNs(
        double(ctrl.params().pipeline.lag *
               ctrl.params().pipeline.snapshotStride *
               ctrl.params().simulation.sampleInterval));
    const double horizonNs = 2000.0;
    const auto nSteps = std::size_t(horizonNs / nsPerMsmStep);

    Table table({"time (ns)", "fraction folded", "largest population"});
    std::vector<double> times, folded;
    auto p = p0;
    double tHalfNs = -1.0;
    double foldedAtEnd = 0.0;
    double plateau = 0.0;
    // Estimate the plateau from the stationary distribution.
    for (int a : foldedActive)
        plateau += model.stationaryDistribution()[std::size_t(a)];
    for (std::size_t s = 0; s <= nSteps; ++s) {
        const double t = double(s) * nsPerMsmStep;
        double f = 0.0;
        for (int a : foldedActive) f += p[std::size_t(a)];
        double maxPop = 0.0;
        for (double v : p) maxPop = std::max(maxPop, v);
        times.push_back(t);
        folded.push_back(f);
        if (tHalfNs < 0.0 && f >= 0.5 * plateau) tHalfNs = t;
        if (s % std::max<std::size_t>(1, nSteps / 16) == 0)
            table.addRow({formatFixed(t, 0), formatFixed(f, 3),
                          formatFixed(maxPop, 3)});
        foldedAtEnd = f;
        p = model.propagate(p);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("fraction folded vs time:\n%s\n",
                asciiChart(times, folded, 64, 12).c_str());

    // Markovianity check (paper: lag >= 20 ns; our snapshots are 1.5 ns).
    std::printf("implied-timescale lag sensitivity (slowest timescale, in "
                "ns):\n");
    Table lagTable({"lag (ns)", "t1 (ns)", "CK error"});
    for (std::size_t lag : {1, 2, 4, 8}) {
        msm::MarkovModelParams mp;
        mp.lag = lag;
        const auto m = msm::MarkovStateModel::fromTrajectories(
            msmResult.discrete, msmResult.clustering.numClusters(), mp);
        const auto ts = m.impliedTimescales(1);
        const double ck = msm::chapmanKolmogorovError(
            msmResult.discrete, msmResult.clustering.numClusters(), lag, 2,
            mp);
        lagTable.addRow(
            {formatFixed(double(lag) * nsPerMsmStep, 1),
             ts.empty() ? "-" : formatFixed(ts[0] * nsPerMsmStep, 0),
             formatFixed(ck, 3)});
    }
    std::printf("%s\n", lagTable.render().c_str());

    std::printf("paper: 66%% folded at 2000 ns; t1/2 ~ 500-600 ns "
                "(experiment ~700 ns)\n");
    std::printf("measured: %.0f%% folded at %.0f ns; t1/2 = %.0f ns; "
                "stationary folded fraction %.0f%%\n",
                100.0 * foldedAtEnd, horizonNs, tHalfNs, 100.0 * plateau);
    std::printf("bench wall time: %.1f s\n", study.wallSeconds);
    return 0;
}
