#pragma once

/// \file villin_study.hpp
/// Shared driver for the villin folding reproductions (Figs. 2-5): runs
/// the full Copernicus pipeline — overlay network, servers, workers, MSM
/// adaptive-sampling controller over the Gō-model villin — at a
/// laptop-scale version of the paper's setup and returns the controller
/// for analysis.
///
/// Paper setup -> bench setup (scaled for a single machine; see
/// EXPERIMENTS.md):
///   9 unfolded starts            -> 9 unfolded starts
///   25 tasks/start (225 total)   -> `tasksPerStart` tasks/start
///   50 ns segments (2000 steps)  -> same
///   10,000 clusters              -> `numClusters`
///   ~8 generations               -> `generations`

#include <memory>

#include "core/backends.hpp"
#include "core/copernicus.hpp"
#include "core/msm_controller.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/units.hpp"
#include "perfmodel/mdperf.hpp"

namespace cop::bench {

struct VillinStudyConfig {
    int starts = 9;
    int tasksPerStart = 5;
    int generations = 6;
    std::size_t numClusters = 100;
    std::int64_t segmentSteps = md::kSegmentSteps;
    int workers = 8;
    std::uint64_t seed = 2011;
};

struct VillinStudy {
    std::unique_ptr<core::Deployment> deployment;
    core::Server* server = nullptr;
    core::MsmController* controller = nullptr;
    core::ProjectId projectId = 0;
    double wallSeconds = 0.0; ///< real time the study took to run
};

/// Runs the study to completion. Deterministic in config.seed.
VillinStudy runVillinStudy(const VillinStudyConfig& config = {});

} // namespace cop::bench
