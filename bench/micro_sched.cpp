/// Scheduler microbenchmarks: the indexed CommandQueue against the
/// preserved linear-scan LegacyCommandQueue, in one binary so the
/// speedups recorded in BENCH_micro_sched.json compare like with like.
/// Sweeps pending-queue depth x executable diversity for the four hot
/// operations: push, claim, requeue-on-failure and checkpoint update.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/queue.hpp"
#include "core/queue_legacy.hpp"
#include "util/random.hpp"

using namespace cop;
using namespace cop::core;

namespace {

constexpr std::int64_t kBatch = 64;     ///< pushes per timed iteration
constexpr int kClaimCores = 64;         ///< worker core offer for claims
constexpr std::size_t kBlobBytes = 1 << 16; ///< checkpoint payload size

std::string exeName(std::size_t i) { return "exe" + std::to_string(i); }

std::vector<std::string> exePool(std::size_t exes) {
    std::vector<std::string> pool;
    for (std::size_t e = 0; e < exes; ++e) pool.push_back(exeName(e));
    return pool;
}

CommandSpec makeCmd(CommandId id, std::size_t exes, Rng& rng) {
    CommandSpec c;
    c.id = id;
    c.projectId = 1;
    c.executable = exeName(rng.uniformInt(exes));
    c.steps = 100;
    c.priority = int(rng.uniformInt(4));
    c.preferredCores = 1 + int(rng.uniformInt(4));
    return c;
}

/// Prebuilt queues, one per (pending, exes) shape. Filling the legacy
/// queue is itself O(pending^2) in total, so each shape is built once and
/// benchmark runs start from a cheap copy.
template <typename Q>
const Q& cachedQueue(std::size_t pending, std::size_t exes) {
    static std::map<std::pair<std::size_t, std::size_t>, Q> cache;
    auto [it, inserted] = cache.try_emplace({pending, exes});
    if (inserted) {
        Rng rng(pending * 31 + exes);
        for (CommandId id = 1; id <= pending; ++id)
            it->second.push(makeCmd(id, exes, rng));
    }
    return it->second;
}

/// Steady-state push: each timed iteration pushes a batch of fresh
/// commands; the pause drains the same number back out so queue depth
/// stays at `pending`.
template <typename Q>
void pushBench(benchmark::State& state) {
    const auto pending = std::size_t(state.range(0));
    const auto exes = std::size_t(state.range(1));
    Q q = cachedQueue<Q>(pending, exes);
    const auto pool = exePool(exes);
    Rng rng(17);
    CommandId next = pending + 1;
    for (auto _ : state) {
        for (std::int64_t i = 0; i < kBatch; ++i)
            q.push(makeCmd(next++, exes, rng));
        state.PauseTiming();
        std::int64_t removed = 0;
        while (removed < kBatch) {
            const auto claimed = q.claim(pool, int(kBatch), 1);
            if (claimed.empty()) break;
            removed += std::int64_t(claimed.size());
            for (const auto& c : claimed) q.complete(c.id);
        }
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

/// Like cachedQueue, but the first executable's commands all carry the
/// lowest priority while every other executable's work sits above them.
/// A claim offering exe0 then finds its matching commands at the tail of
/// the global priority order — the busy-server shape where one project's
/// workers poll while other projects' urgent work fills the queue head,
/// and exactly the case the per-executable index exists for: the legacy
/// scan wades through every higher-priority non-matching command first.
template <typename Q>
const Q& cachedSkewedQueue(std::size_t pending, std::size_t exes) {
    static std::map<std::pair<std::size_t, std::size_t>, Q> cache;
    auto [it, inserted] = cache.try_emplace({pending, exes});
    if (inserted) {
        Rng rng(pending * 37 + exes);
        for (CommandId id = 1; id <= pending; ++id) {
            CommandSpec c = makeCmd(id, exes, rng);
            c.executable = exeName(rng.uniformInt(exes));
            c.priority = c.executable == exeName(0)
                             ? 0
                             : 1 + int(rng.uniformInt(3));
            it->second.push(std::move(c));
        }
    }
    return it->second;
}

/// Steady-state claim: a worker offering one executable and kClaimCores
/// cores assembles a workload; the pause hands the claimed commands back
/// (worker failure) so the next iteration sees the same queue.
template <typename Q>
void claimBench(benchmark::State& state) {
    const auto pending = std::size_t(state.range(0));
    const auto exes = std::size_t(state.range(1));
    Q q = cachedSkewedQueue<Q>(pending, exes);
    const std::vector<std::string> offer{exeName(0)};
    std::int64_t claimed = 0;
    for (auto _ : state) {
        const auto workload = q.claim(offer, kClaimCores, 1);
        claimed += std::int64_t(workload.size());
        benchmark::DoNotOptimize(workload.size());
        state.PauseTiming();
        q.requeueWorker(1);
        state.ResumeTiming();
    }
    state.SetItemsProcessed(claimed);
}

/// Steady-state requeue: the inverse pairing — the claim is untimed, the
/// failure handoff (requeue of every command the worker held) is timed.
template <typename Q>
void requeueBench(benchmark::State& state) {
    const auto pending = std::size_t(state.range(0));
    const auto exes = std::size_t(state.range(1));
    Q q = cachedSkewedQueue<Q>(pending, exes);
    const std::vector<std::string> offer{exeName(0)};
    std::int64_t requeued = 0;
    for (auto _ : state) {
        state.PauseTiming();
        q.claim(offer, kClaimCores, 1);
        state.ResumeTiming();
        requeued += std::int64_t(q.requeueWorker(1).size());
    }
    state.SetItemsProcessed(requeued);
}

/// hasWorkFor probe for an executable nobody queued: the legacy scan has
/// to visit every pending command to say no; the index probes one bucket.
template <typename Q>
void hasWorkBench(benchmark::State& state) {
    const auto pending = std::size_t(state.range(0));
    const auto exes = std::size_t(state.range(1));
    Q q = cachedQueue<Q>(pending, exes);
    const std::vector<std::string> probe{"absent_executable"};
    for (auto _ : state) {
        benchmark::DoNotOptimize(q.hasWorkFor(probe));
    }
    state.SetItemsProcessed(state.iterations());
}

/// Checkpoint update for in-flight commands. The legacy plane copies the
/// blob into the in-flight record on every update; the SharedBytes plane
/// bumps a refcount.
template <typename Q>
void checkpointBench(benchmark::State& state) {
    const auto pending = std::size_t(state.range(0));
    const auto exes = std::size_t(state.range(1));
    Q q = cachedQueue<Q>(pending, exes);
    const auto pool = exePool(exes);
    std::vector<CommandId> inFlight;
    for (;;) {
        const auto claimed = q.claim(pool, 1 << 30, 1);
        if (claimed.empty()) break;
        for (const auto& c : claimed) inFlight.push_back(c.id);
    }
    const std::vector<std::uint8_t> blobVec(kBlobBytes, 0xCD);
    const SharedBytes blobShared{std::vector<std::uint8_t>(blobVec)};
    std::size_t i = 0;
    for (auto _ : state) {
        const CommandId id = inFlight[i++ % inFlight.size()];
        if constexpr (std::is_same_v<Q, CommandQueue>)
            q.updateCheckpoint(id, blobShared); // refcount bump
        else
            q.updateCheckpoint(id, blobVec); // by-value deep copy
    }
    state.SetBytesProcessed(state.iterations() * std::int64_t(kBlobBytes));
}

void BM_SchedPushIndexed(benchmark::State& s) { pushBench<CommandQueue>(s); }
void BM_SchedPushLegacy(benchmark::State& s) {
    pushBench<LegacyCommandQueue>(s);
}
void BM_SchedClaimIndexed(benchmark::State& s) { claimBench<CommandQueue>(s); }
void BM_SchedClaimLegacy(benchmark::State& s) {
    claimBench<LegacyCommandQueue>(s);
}
void BM_SchedRequeueIndexed(benchmark::State& s) {
    requeueBench<CommandQueue>(s);
}
void BM_SchedRequeueLegacy(benchmark::State& s) {
    requeueBench<LegacyCommandQueue>(s);
}
void BM_SchedHasWorkIndexed(benchmark::State& s) {
    hasWorkBench<CommandQueue>(s);
}
void BM_SchedHasWorkLegacy(benchmark::State& s) {
    hasWorkBench<LegacyCommandQueue>(s);
}
void BM_SchedCheckpointIndexed(benchmark::State& s) {
    checkpointBench<CommandQueue>(s);
}
void BM_SchedCheckpointLegacy(benchmark::State& s) {
    checkpointBench<LegacyCommandQueue>(s);
}

const std::vector<std::vector<std::int64_t>> kSweep{
    {100, 1000, 10000, 100000}, {1, 4, 16}};

#define COP_SCHED_BENCH(fn)                                                  \
    BENCHMARK(fn)->ArgsProduct(kSweep)->ArgNames({"pending", "exes"})

COP_SCHED_BENCH(BM_SchedPushIndexed);
COP_SCHED_BENCH(BM_SchedPushLegacy);
COP_SCHED_BENCH(BM_SchedClaimIndexed);
COP_SCHED_BENCH(BM_SchedClaimLegacy);
COP_SCHED_BENCH(BM_SchedRequeueIndexed);
COP_SCHED_BENCH(BM_SchedRequeueLegacy);
COP_SCHED_BENCH(BM_SchedHasWorkIndexed);
COP_SCHED_BENCH(BM_SchedHasWorkLegacy);
COP_SCHED_BENCH(BM_SchedCheckpointIndexed);
COP_SCHED_BENCH(BM_SchedCheckpointLegacy);

} // namespace

BENCHMARK_MAIN();
