/// Exercises the Bennett-acceptance-ratio free-energy controller — the
/// second plugin the paper ships with Copernicus (§5) — through the full
/// framework, and validates against the analytic result. Also demonstrates
/// the paper's §2 stop criterion: sampling continues until the standard
/// error of the output reaches a user-specified target.

#include <cstdio>

#include "core/backends.hpp"
#include "core/bar_controller.hpp"
#include "core/copernicus.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace cop;
using namespace cop::core;

int main() {
    Logger::instance().setLevel(LogLevel::Warn);
    std::printf("=== BAR free-energy controller (paper §5) ===\n\n");

    Table table({"target err (kT)", "rounds", "deltaF (kT)", "err (kT)",
                 "exact (kT)", "|bias|/err"});
    for (double target : {0.05, 0.02, 0.01}) {
        Deployment dep(1976);
        auto& server = dep.addServer("fe-server");
        for (int w = 0; w < 4; ++w) {
            ExecutableRegistry reg;
            reg.add("fe_sample",
                    makeFeSampleExecutable(linearDurationModel(0.01)));
            dep.addWorker("worker" + std::to_string(w), server,
                          WorkerConfig{}, std::move(reg),
                          links::intraCluster());
        }
        BarControllerParams bp;
        bp.first = {1.0, 0.0};
        bp.last = {6.0, 1.5};
        bp.numWindows = 5;
        bp.targetError = target;
        bp.maxRounds = 60;
        auto ctrl = std::make_unique<BarController>(bp);
        auto* c = ctrl.get();
        server.createProject("free_energy", std::move(ctrl));
        const bool done = dep.runUntilDone(1e12);
        const auto& est = *c->estimate();
        const double exact = c->analyticDeltaF();
        table.addRow(
            {formatFixed(target, 3), std::to_string(c->rounds()),
             formatFixed(est.totalDeltaF, 4),
             formatFixed(est.totalError, 4), formatFixed(exact, 4),
             formatFixed(std::abs(est.totalDeltaF - exact) /
                             std::max(est.totalError, 1e-12),
                         2)});
        if (!done) std::printf("WARNING: run did not converge\n");
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("expectation: the estimate stays within a few reported "
                "standard errors of the\nanalytic value, and tighter "
                "targets require more adaptive sampling rounds\n(commands "
                "are allocated to the windows with the largest error "
                "contribution,\nmirroring the MSM controller's adaptive "
                "weighting).\n");
    return 0;
}
