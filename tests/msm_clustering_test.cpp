#include "msm/clustering.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace cop::msm {
namespace {

/// Three blobs of 5-point conformations that differ in *shape* (RMSD is
/// invariant to rigid transforms, so translated copies would all look
/// identical): lines with per-blob spacing 1, 5 and 12, plus small noise.
ConformationSet threeBlobs(std::size_t perBlob, std::uint64_t seed) {
    cop::Rng rng(seed);
    ConformationSet set;
    const double spacing[3] = {1.0, 5.0, 12.0};
    for (int b = 0; b < 3; ++b) {
        for (std::size_t i = 0; i < perBlob; ++i) {
            std::vector<Vec3> conf;
            for (int p = 0; p < 5; ++p)
                conf.push_back(Vec3{double(p) * spacing[b], 0, 0} +
                               rng.gaussianVec3(0.1));
            set.add(std::move(conf));
        }
    }
    return set;
}

TEST(ConformationSet, DistanceIsRmsd) {
    ConformationSet set;
    set.add({{0, 0, 0}, {1, 0, 0}});
    set.add({{0, 0, 0}, {2, 0, 0}});
    EXPECT_NEAR(set.distance(0, 1), 0.5, 1e-12);
    EXPECT_NEAR(set.distance(0, 0), 0.0, 1e-9);
    EXPECT_NEAR(set.distanceTo(0, {{5, 5, 5}, {6, 5, 5}}), 0.0, 1e-9);
}

TEST(ConformationSet, RejectsMismatchedSizes) {
    ConformationSet set;
    set.add({{0, 0, 0}});
    EXPECT_THROW(set.add({{0, 0, 0}, {1, 1, 1}}), cop::InvalidArgument);
}

TEST(KCenters, RecoversWellSeparatedBlobs) {
    const auto data = threeBlobs(20, 1);
    KCentersParams p;
    p.numClusters = 3;
    const auto result = kCenters(data, p);
    EXPECT_EQ(result.numClusters(), 3u);
    // All members of a blob share one cluster, and the three blobs use
    // three distinct clusters.
    std::set<int> blobClusters;
    for (int b = 0; b < 3; ++b) {
        const int c = result.assignments[std::size_t(b * 20)];
        blobClusters.insert(c);
        for (int i = 0; i < 20; ++i)
            EXPECT_EQ(result.assignments[std::size_t(b * 20 + i)], c);
    }
    EXPECT_EQ(blobClusters.size(), 3u);
}

TEST(KCenters, DistancesAreToAssignedCenter) {
    const auto data = threeBlobs(10, 2);
    KCentersParams p;
    p.numClusters = 5;
    const auto result = kCenters(data, p);
    for (std::size_t i = 0; i < data.size(); ++i) {
        const auto c = result.centers[std::size_t(result.assignments[i])];
        EXPECT_NEAR(result.distances[i], data.distance(i, c), 1e-12);
    }
}

TEST(KCenters, StopRadiusLimitsClusterCount) {
    const auto data = threeBlobs(15, 3);
    KCentersParams p;
    p.numClusters = 40;
    p.stopRadius = 3.0; // blobs have radius << 3, separation >> 3
    const auto result = kCenters(data, p);
    EXPECT_LE(result.numClusters(), 4u);
    EXPECT_GE(result.numClusters(), 3u);
}

TEST(KCenters, MoreClustersThanPointsIsClamped) {
    const auto data = threeBlobs(2, 4);
    KCentersParams p;
    p.numClusters = 100;
    const auto result = kCenters(data, p);
    EXPECT_LE(result.numClusters(), data.size());
}

TEST(KCenters, TwoXRadiusGuarantee) {
    // Gonzalez guarantee: max point-center distance <= 2x optimal radius.
    // For k = data size, the radius must be 0.
    const auto data = threeBlobs(4, 5);
    KCentersParams p;
    p.numClusters = data.size();
    const auto result = kCenters(data, p);
    // Tolerance is the RMSD floating-point floor, not a clustering error.
    for (double d : result.distances) EXPECT_NEAR(d, 0.0, 1e-6);
}

TEST(KMedoids, RefinementNeverIncreasesCost) {
    const auto data = threeBlobs(12, 6);
    KCentersParams p;
    p.numClusters = 6;
    p.seed = 9;
    auto initial = kCenters(data, p);
    auto cost = [&](const ClusteringResult& r) {
        double s = 0.0;
        for (std::size_t i = 0; i < data.size(); ++i)
            s += data.distance(i,
                               r.centers[std::size_t(r.assignments[i])]);
        return s;
    };
    const double before = cost(initial);
    const auto refined = kMedoidsRefine(data, std::move(initial), 3, 10);
    EXPECT_LE(cost(refined), before + 1e-9);
}

TEST(AssignToCenters, NearestCenterWins) {
    const auto data = threeBlobs(5, 7);
    KCentersParams p;
    p.numClusters = 3;
    const auto result = kCenters(data, p);
    // Assign shifted copies of blob members; they must map to the blob's
    // cluster (RMSD removes the shift, so use a *different* blob's shape).
    std::vector<std::vector<Vec3>> probes;
    std::vector<Vec3> nearBlob0;
    for (int q = 0; q < 5; ++q)
        nearBlob0.push_back(Vec3{double(q), 0, 0});
    probes.push_back(nearBlob0);
    const auto assigned = assignToCenters(data, result.centers, probes);
    ASSERT_EQ(assigned.size(), 1u);
    // All blobs have the same internal shape, so any cluster is "nearest";
    // just require a valid cluster id.
    EXPECT_GE(assigned[0], 0);
    EXPECT_LT(assigned[0], 3);
}

TEST(ClusteringResult, ClusterSizesSumToData) {
    const auto data = threeBlobs(8, 8);
    KCentersParams p;
    p.numClusters = 4;
    const auto result = kCenters(data, p);
    const auto sizes = result.clusterSizes();
    std::size_t total = 0;
    for (auto s : sizes) total += s;
    EXPECT_EQ(total, data.size());
}

TEST(KCenters, PooledSweepMatchesSerialExactly) {
    // The threaded per-center RMSD sweep must reproduce the serial result
    // bit-for-bit: same centers, same assignments, same distances.
    const auto data = threeBlobs(40, 5); // 120 points >= parallel threshold
    KCentersParams p;
    p.numClusters = 7;
    p.seed = 3;
    const auto serial = kCenters(data, p);
    cop::ThreadPool pool(4);
    const auto pooled = kCenters(data, p, &pool);
    EXPECT_EQ(pooled.centers, serial.centers);
    EXPECT_EQ(pooled.assignments, serial.assignments);
    for (std::size_t i = 0; i < serial.distances.size(); ++i)
        EXPECT_EQ(pooled.distances[i], serial.distances[i]);
}

TEST(KCenters, PooledStopRadiusMatchesSerial) {
    const auto data = threeBlobs(30, 9);
    KCentersParams p;
    p.numClusters = 50;
    p.stopRadius = 1.0;
    cop::ThreadPool pool(3);
    const auto serial = kCenters(data, p);
    const auto pooled = kCenters(data, p, &pool);
    EXPECT_EQ(pooled.centers, serial.centers);
}

TEST(KCenters, DeterministicForFixedSeed) {
    const auto data = threeBlobs(10, 9);
    KCentersParams p;
    p.numClusters = 5;
    p.seed = 123;
    const auto a = kCenters(data, p);
    const auto b = kCenters(data, p);
    EXPECT_EQ(a.centers, b.centers);
    EXPECT_EQ(a.assignments, b.assignments);
}

} // namespace
} // namespace cop::msm
