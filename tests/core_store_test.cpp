// Tiered segment store: LRU spill to disk, cold promotion, replacement
// invalidation, and bounded RAM under sustained load.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>

#include "core/segment_store.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cop::core {
namespace {

namespace fs = std::filesystem;

SharedBytes blobOf(std::size_t n, std::uint8_t fill) {
    std::vector<std::uint8_t> v(n, fill);
    return SharedBytes(std::move(v));
}

std::vector<std::uint8_t> randomBytes(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) b = std::uint8_t(rng.next());
    return out;
}

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("cop_store_test_" + std::to_string(Rng(
                                        std::uint64_t(::getpid()))
                                        .next()));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

TEST(SegmentStore, UnboundedStoreNeverSpills) {
    SegmentStore store; // ramBytes = 0: the seed behavior
    for (std::uint64_t k = 0; k < 100; ++k) store.put(k, blobOf(4096, k));
    for (std::uint64_t k = 0; k < 100; ++k) {
        auto b = store.get(k);
        ASSERT_TRUE(b.has_value());
        EXPECT_EQ(b->size(), 4096u);
    }
    EXPECT_EQ(store.stats().spills, 0u);
    EXPECT_EQ(store.stats().misses, 0u);
}

TEST(SegmentStore, HotHitsAreZeroCopy) {
    SegmentStore store;
    auto blob = blobOf(1000, 7);
    store.put(1, blob);
    auto fetched = store.get(1);
    ASSERT_TRUE(fetched.has_value());
    EXPECT_TRUE(fetched->sharesBufferWith(blob));
    EXPECT_EQ(store.stats().hits, 1u);
}

TEST(SegmentStore, SpillsColdBlobsAndPromotesBack) {
    TempDir tmp;
    StoreConfig cfg;
    cfg.ramBytes = 16 * 1024; // room for ~4 hot blobs
    cfg.dir = tmp.path.string();
    SegmentStore store(cfg);

    std::vector<std::vector<std::uint8_t>> originals;
    for (std::uint64_t k = 0; k < 32; ++k) {
        std::vector<std::uint8_t> v(4096);
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = std::uint8_t(k * 31 + i);
        originals.push_back(v);
        store.put(k, SharedBytes(std::move(v)));
    }
    EXPECT_LE(store.stats().ramBytesUsed, cfg.ramBytes);
    EXPECT_GT(store.stats().spills, 0u);
    EXPECT_EQ(store.size(), 32u);

    // Every blob — hot or spilled — reads back byte-identical.
    for (std::uint64_t k = 0; k < 32; ++k) {
        auto b = store.get(k);
        ASSERT_TRUE(b.has_value()) << "key " << k;
        ASSERT_EQ(b->size(), originals[k].size());
        EXPECT_EQ(0, std::memcmp(b->bytes().data(), originals[k].data(),
                                 b->size()))
            << "key " << k;
    }
    EXPECT_GT(store.stats().misses, 0u); // some came off disk
    EXPECT_LE(store.stats().ramBytesUsed, cfg.ramBytes);
}

TEST(SegmentStore, CleanReEvictionDoesNotRecompress) {
    TempDir tmp;
    StoreConfig cfg;
    cfg.ramBytes = 8 * 1024;
    cfg.dir = tmp.path.string();
    SegmentStore store(cfg);
    // Fill past the cap, then fetch an evicted blob (promote) and push it
    // back out: the cold copy is still valid, no second spill needed.
    for (std::uint64_t k = 0; k < 8; ++k) store.put(k, blobOf(4096, k));
    const auto spillsBefore = store.stats().spills;
    ASSERT_TRUE(store.get(0).has_value()); // promote key 0
    for (std::uint64_t k = 8; k < 12; ++k) store.put(k, blobOf(4096, k));
    EXPECT_GT(store.stats().evictions, 0u);
    // Key 0's re-eviction was clean: total spills grew only for the new
    // keys, not for 0 again.
    EXPECT_LE(store.stats().spills - spillsBefore, 4u);
    auto b = store.get(0);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ((*b).bytes()[0], 0);
}

TEST(SegmentStore, ReplaceInvalidatesColdCopy) {
    TempDir tmp;
    StoreConfig cfg;
    cfg.ramBytes = 4 * 1024;
    cfg.dir = tmp.path.string();
    SegmentStore store(cfg);
    store.put(1, blobOf(4096, 1));
    store.put(2, blobOf(4096, 2)); // evicts 1 to disk
    store.put(1, blobOf(4096, 99)); // replace: the cold copy is stale now
    store.put(3, blobOf(4096, 3));  // evict 1 again -> recompression
    auto b = store.get(1);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ((*b).bytes()[0], 99);
    EXPECT_GT(store.stats().recompressions, 0u);
}

TEST(SegmentStore, EraseDropsBothTiersAndUnlinksDeadSegments) {
    TempDir tmp;
    StoreConfig cfg;
    cfg.ramBytes = 4 * 1024;
    cfg.dir = tmp.path.string();
    cfg.maxSegmentBytes = 16 * 1024;
    {
        SegmentStore store(cfg);
        // Incompressible blobs: stored-frame spills at full size roll the
        // segment file several times.
        for (std::uint64_t k = 0; k < 16; ++k)
            store.put(k, SharedBytes(randomBytes(4096, k)));
        EXPECT_GT(store.stats().segmentsCreated, 1u);
        for (std::uint64_t k = 0; k < 16; ++k)
            EXPECT_TRUE(store.erase(k));
        EXPECT_FALSE(store.erase(0)); // already gone
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.stats().coldBytesLive, 0u);
        // Each drained rolled-over segment was unlinked; only the open
        // active segment may remain (reused by future spills).
        EXPECT_GE(store.stats().segmentsUnlinked,
                  store.stats().segmentsCreated - 1);
    }
    // Destructor leaves the directory empty (RAM-relief tier, not
    // durability).
    EXPECT_TRUE(fs::is_empty(tmp.path));
}

TEST(SegmentStore, SizeOfAndContainsSeeBothTiers) {
    TempDir tmp;
    StoreConfig cfg;
    cfg.ramBytes = 4 * 1024;
    cfg.dir = tmp.path.string();
    SegmentStore store(cfg);
    store.put(1, blobOf(3000, 1));
    store.put(2, blobOf(4096, 2)); // spills 1
    EXPECT_TRUE(store.contains(1));
    EXPECT_TRUE(store.contains(2));
    EXPECT_FALSE(store.contains(3));
    EXPECT_EQ(store.sizeOf(1), 3000u);
    EXPECT_EQ(store.sizeOf(2), 4096u);
    EXPECT_EQ(store.sizeOf(3), 0u);
    EXPECT_FALSE(store.get(3).has_value());
}

TEST(SegmentStore, ClearWipesEverything) {
    TempDir tmp;
    StoreConfig cfg;
    cfg.ramBytes = 4 * 1024;
    cfg.dir = tmp.path.string();
    SegmentStore store(cfg);
    for (std::uint64_t k = 0; k < 8; ++k) store.put(k, blobOf(4096, k));
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.stats().ramBytesUsed, 0u);
    EXPECT_EQ(store.stats().coldBytesLive, 0u);
    EXPECT_FALSE(store.get(0).has_value());
    store.put(5, blobOf(100, 5)); // still usable after clear
    EXPECT_TRUE(store.get(5).has_value());
}

TEST(SegmentStore, CompressionShrinksSpilledTrajectoryBytes) {
    TempDir tmp;
    StoreConfig cfg;
    cfg.ramBytes = 1024;
    cfg.dir = tmp.path.string();
    SegmentStore store(cfg);
    // Slowly-varying doubles, the checkpoint workload.
    Rng rng(3);
    std::vector<double> vals(3000);
    double base = 1.0;
    for (auto& v : vals) {
        base += 1e-4 * (rng.uniform() - 0.5);
        v = base;
    }
    std::vector<std::uint8_t> bytes(vals.size() * sizeof(double));
    std::memcpy(bytes.data(), vals.data(), bytes.size());
    store.put(1, SharedBytes(std::move(bytes)));
    store.put(2, blobOf(2048, 0)); // force the spill of key 1
    EXPECT_GT(store.stats().spilledRawBytes, 0u);
    EXPECT_LT(store.stats().spilledCompressedBytes,
              store.stats().spilledRawBytes);
}

} // namespace
} // namespace cop::core
