/// Steady-state allocation behaviour of the force engine. The workspace
/// pattern promises: after the first evaluation warmed every buffer, a
/// compute() with no neighbour-list rebuild performs zero heap
/// allocations. Verified with replacement global operator new/delete that
/// count every allocation in the binary (they only count — behaviour is
/// otherwise malloc/free, so the rest of the test binary is unaffected).

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "mdlib/forcefield.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace {
std::atomic<std::size_t> g_allocCount{0};
}

void* operator new(std::size_t size) {
    ++g_allocCount;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
    ++g_allocCount;
    void* p = nullptr;
    if (posix_memalign(&p, std::size_t(align), size ? size : 1) != 0)
        throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace cop::md {
namespace {

struct LjSystem {
    Topology top;
    Box box;
    ForceFieldParams params;
    std::vector<Vec3> positions;
};

LjSystem makeLj(std::size_t n, double boxLen, std::uint64_t seed) {
    LjSystem sys;
    cop::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        sys.top.addParticle(1.0, i % 2 ? 0.2 : -0.2);
    sys.top.finalize();
    sys.box = Box::cubic(boxLen);
    sys.params.kind = NonbondedKind::LennardJonesRF;
    sys.params.cutoff = 2.5;
    sys.params.useCoulombRF = true;
    const int side = int(std::ceil(std::cbrt(double(n))));
    const double a = boxLen / side;
    std::size_t placed = 0;
    for (int x = 0; x < side && placed < n; ++x)
        for (int y = 0; y < side && placed < n; ++y)
            for (int z = 0; z < side && placed < n; ++z, ++placed)
                sys.positions.push_back({x * a + rng.uniform(-0.05, 0.05),
                                         y * a + rng.uniform(-0.05, 0.05),
                                         z * a + rng.uniform(-0.05, 0.05)});
    return sys;
}

class SteadyStateAllocations
    : public ::testing::TestWithParam<KernelFlavor> {};

TEST_P(SteadyStateAllocations, SerialComputeIsAllocationFree) {
    auto sys = makeLj(216, 8.0, 41);
    sys.params.flavor = GetParam();
    ForceField ff(sys.top, sys.box, sys.params);
    std::vector<Vec3> forces;
    // Warm up: neighbour list build, workspace sizing, bucket split,
    // caller force-vector capacity.
    ff.compute(sys.positions, forces);
    ff.compute(sys.positions, forces);

    const std::size_t before = g_allocCount.load();
    for (int s = 0; s < 10; ++s) ff.compute(sys.positions, forces);
    EXPECT_EQ(g_allocCount.load(), before)
        << "steady-state compute() must not touch the allocator";
}

INSTANTIATE_TEST_SUITE_P(Flavors, SteadyStateAllocations,
                         ::testing::Values(KernelFlavor::Scalar,
                                           KernelFlavor::Blocked4,
                                           KernelFlavor::Soa,
                                           KernelFlavor::SimdAuto));

TEST(ForceWorkspace, ThreadedBuffersAreReusedAcrossSteps) {
    auto sys = makeLj(343, 12.0, 43);
    sys.params.flavor = KernelFlavor::Soa;
    cop::ThreadPool pool(4);
    ForceField ff(sys.top, sys.box, sys.params, &pool);
    std::vector<Vec3> forces;
    ff.compute(sys.positions, forces);

    const auto& ws = ff.workspace();
    const double* sf3 = ws.sf3.data();
    const double* pos3 = ws.pos3.data();
    const std::size_t stride = ws.stride;

    for (int s = 0; s < 5; ++s) ff.compute(sys.positions, forces);
    // Same buffers, same geometry: nothing was reallocated.
    EXPECT_EQ(ws.sf3.data(), sf3);
    EXPECT_EQ(ws.pos3.data(), pos3);
    EXPECT_EQ(ws.stride, stride);
}

TEST(ForceWorkspace, EnsureGrowsButNeverShrinks) {
    ForceWorkspace ws;
    ws.ensure(100, 2);
    const std::size_t stride100 = ws.stride;
    EXPECT_GE(stride100, 100u);
    EXPECT_EQ(ws.sf3.size(), 2 * 3 * stride100);
    ws.ensure(50, 1); // smaller request: no change
    EXPECT_EQ(ws.stride, stride100);
    EXPECT_EQ(ws.sf3.size(), 2 * 3 * stride100);
    ws.ensure(200, 4); // larger: grows
    EXPECT_GE(ws.stride, 200u);
    EXPECT_EQ(ws.sf3.size(), 4 * 3 * ws.stride);
    EXPECT_EQ(ws.aosBuffers.size(), 4u);
}

} // namespace
} // namespace cop::md
