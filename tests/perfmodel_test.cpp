// Performance model calibration and the Fig. 7-9 scaling DES.

#include <gtest/gtest.h>

#include "perfmodel/scaling.hpp"
#include "util/error.hpp"

namespace cop::perf {
namespace {

TEST(MdPerf, EfficiencyIsMonotoneDecreasing) {
    MdPerfModel m;
    EXPECT_NEAR(m.efficiency(1), 1.0, 0.01);
    double prev = 1.1;
    for (int c : {1, 12, 24, 48, 96, 192}) {
        const double e = m.efficiency(c);
        EXPECT_LT(e, prev);
        EXPECT_GT(e, 0.0);
        prev = e;
    }
}

TEST(MdPerf, CalibrationMatchesPaperAnchors) {
    MdPerfModel m;
    // ~53% intra-simulation efficiency at 96 cores (paper: 53% total
    // scaling efficiency at 20k cores with 96-core commands).
    EXPECT_NEAR(m.efficiency(96), 0.53, 0.04);
    // Intra-simulation bandwidth 500 MB/s at 24 cores, ~2900 MB/s at 96.
    EXPECT_NEAR(m.intraSimBandwidth(24) / 1e6, 500.0, 1.0);
    EXPECT_NEAR(m.intraSimBandwidth(96) / 1e6, 2900.0, 200.0);
    EXPECT_EQ(m.intraSimBandwidth(1), 0.0);
}

TEST(MdPerf, CommandSecondsScalesInversely) {
    MdPerfModel m;
    const double t1 = m.commandSeconds(50.0, 1);
    const double t2 = m.commandSeconds(100.0, 1);
    EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
    EXPECT_LT(m.commandSeconds(50.0, 24), t1);
}

TEST(MdPerf, SerialProjectTimeMatchesPaper) {
    // Fig. 7 caption: t_res(1) = 1.1e5 hours.
    ScalingConfig cfg;
    EXPECT_NEAR(serialTimeHours(cfg), 1.1e5, 0.1e5);
}

TEST(Scaling, PerfectEfficiencyBelowCommandKnee) {
    ScalingConfig cfg;
    cfg.coresPerSim = 1;
    cfg.totalCores = 100; // well below 225 commands
    const auto r = simulateRun(cfg);
    EXPECT_NEAR(r.efficiency, 1.0, 0.02);
}

TEST(Scaling, EfficiencyPlateausAtIntraSimValue) {
    ScalingConfig cfg;
    cfg.coresPerSim = 24;
    cfg.totalCores = 2400; // 100 workers < 225 commands
    const auto r = simulateRun(cfg);
    EXPECT_NEAR(r.efficiency, cfg.perf.efficiency(24), 0.05);
}

TEST(Scaling, PaperHeadline53PercentAt20kCores) {
    ScalingConfig cfg;
    cfg.coresPerSim = 96;
    cfg.totalCores = 20000;
    const auto r = simulateRun(cfg);
    EXPECT_NEAR(r.efficiency, 0.53, 0.05);
    // "using 20,000 cores the time to solution would have been just over
    // 10h" — same order of magnitude here.
    EXPECT_GT(r.timeToSolutionHours, 2.0);
    EXPECT_LT(r.timeToSolutionHours, 20.0);
}

TEST(Scaling, TimeToSolutionPlateausWhenCommandsExhausted) {
    // Beyond 225 workers, extra cores cannot help (paper Fig. 8).
    ScalingConfig cfg;
    cfg.coresPerSim = 1;
    cfg.generations = 4;
    cfg.stopGeneration = 2;
    cfg.totalCores = 300;
    const auto rA = simulateRun(cfg);
    cfg.totalCores = 3000;
    const auto rB = simulateRun(cfg);
    EXPECT_NEAR(rA.timeToSolutionHours, rB.timeToSolutionHours,
                0.05 * rA.timeToSolutionHours);
}

TEST(Scaling, MoreCoresNeverSlower) {
    ScalingConfig cfg;
    cfg.coresPerSim = 24;
    cfg.generations = 4;
    cfg.stopGeneration = 2;
    double prev = 1e18;
    for (int n : {240, 1200, 4800}) {
        cfg.totalCores = n;
        const auto r = simulateRun(cfg);
        EXPECT_LE(r.totalTimeHours, prev * 1.001);
        prev = r.totalTimeHours;
    }
}

TEST(Scaling, EnsembleBandwidthInPaperRange) {
    // Fig. 9: 0.001 - 0.1 MB/s across the sweep.
    ScalingConfig cfg;
    cfg.coresPerSim = 24;
    cfg.totalCores = 5000;
    const auto r = simulateRun(cfg);
    EXPECT_GT(r.ensembleBandwidth / 1e6, 0.001);
    EXPECT_LT(r.ensembleBandwidth / 1e6, 0.2);
}

TEST(Scaling, SweepSkipsInfeasiblePoints) {
    ScalingConfig cfg;
    cfg.coresPerSim = 96;
    cfg.generations = 2;
    cfg.stopGeneration = 1;
    const auto results = sweepTotalCores(cfg, {12, 96, 960});
    ASSERT_EQ(results.size(), 2u); // 12 < 96 dropped
    EXPECT_EQ(results[0].totalCores, 96);
}

TEST(Scaling, RejectsBadConfig) {
    ScalingConfig cfg;
    cfg.totalCores = 10;
    cfg.coresPerSim = 24;
    EXPECT_THROW(simulateRun(cfg), cop::InvalidArgument);
    cfg.totalCores = 240;
    cfg.stopGeneration = 99;
    EXPECT_THROW(simulateRun(cfg), cop::InvalidArgument);
}

} // namespace
} // namespace cop::perf
