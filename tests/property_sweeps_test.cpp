// Parameterized property sweeps: invariants that must hold across broad
// parameter ranges, not just a single configuration.

#include <gtest/gtest.h>

#include "fe/bar.hpp"
#include "fe/harmonic.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/simulation.hpp"
#include "msm/clustering.hpp"
#include "msm/markov_model.hpp"
#include "util/statistics.hpp"

namespace cop {
namespace {

// --- Integrator order: velocity-Verlet energy drift shrinks ~dt^2 -------

class TimestepSweep : public ::testing::TestWithParam<double> {};

TEST_P(TimestepSweep, NveDriftBoundedByTimestep) {
    const double dt = GetParam();
    const auto model = md::hairpinGoModel();
    md::ForceField ff(model.topology, md::Box::open(),
                      model.forceFieldParams());
    md::State state;
    state.resize(model.numResidues());
    state.positions = model.native;
    Rng rng(11);
    md::assignVelocities(model.topology, state, 0.4, rng);

    md::IntegratorParams p;
    p.kind = md::IntegratorKind::VelocityVerlet;
    p.dt = dt;
    md::Integrator integrator(ff, p, Rng(3));
    integrator.run(state, 1);
    const double e0 = integrator.conservedQuantity(state);
    // Equal simulated time for every dt.
    integrator.run(state, std::int64_t(10.0 / dt));
    const double drift = std::abs(integrator.conservedQuantity(state) - e0);
    // Measured drift/dt^2 is ~230 across this sweep (clean second-order
    // behaviour); the bound catches any order regression.
    EXPECT_LT(drift, 500.0 * dt * dt)
        << "dt = " << dt << " drift = " << drift;
}

INSTANTIATE_TEST_SUITE_P(Dts, TimestepSweep,
                         ::testing::Values(0.001, 0.002, 0.004, 0.008));

// --- Langevin thermostat across target temperatures ---------------------

class TemperatureSweep : public ::testing::TestWithParam<double> {};

TEST_P(TemperatureSweep, LangevinHitsTarget) {
    const double target = GetParam();
    const auto model = md::hairpinGoModel();
    md::ForceField ff(model.topology, md::Box::open(),
                      model.forceFieldParams());
    md::State state;
    state.resize(model.numResidues());
    state.positions = model.native;
    md::IntegratorParams p;
    p.kind = md::IntegratorKind::LangevinBAOAB;
    p.dt = 0.004;
    p.temperature = target;
    p.friction = 2.0;
    md::Integrator integrator(ff, p, Rng(7));
    Rng rng(8);
    md::assignVelocities(model.topology, state, target, rng);
    integrator.run(state, 2000);
    RunningStats t;
    for (int i = 0; i < 300; ++i) {
        integrator.run(state, 10);
        t.add(md::instantaneousTemperature(model.topology, state, 0));
    }
    EXPECT_NEAR(t.mean(), target, 0.12 * target + 0.01) << target;
}

INSTANTIATE_TEST_SUITE_P(Temps, TemperatureSweep,
                         ::testing::Values(0.2, 0.5, 1.0, 2.0));

// --- Checkpoint round-trip across integrator kinds ----------------------

class IntegratorKindSweep
    : public ::testing::TestWithParam<md::IntegratorKind> {};

TEST_P(IntegratorKindSweep, CheckpointContinuationIsExact) {
    const auto model = md::hairpinGoModel();
    md::SimulationConfig cfg;
    cfg.integrator.kind = GetParam();
    cfg.integrator.dt = 0.004;
    cfg.integrator.temperature = 0.4;
    cfg.sampleInterval = 25;
    cfg.seed = 17;
    auto sim = md::Simulation::forGoModel(model, model.native, cfg);
    sim.initializeVelocities();
    sim.run(100);
    auto copy = md::Simulation::restore(sim.checkpoint());
    sim.run(200);
    copy.run(200);
    for (std::size_t i = 0; i < model.numResidues(); ++i)
        EXPECT_EQ(sim.state().positions[i], copy.state().positions[i]);
}

INSTANTIATE_TEST_SUITE_P(Kinds, IntegratorKindSweep,
                         ::testing::Values(md::IntegratorKind::VelocityVerlet,
                                           md::IntegratorKind::Leapfrog,
                                           md::IntegratorKind::LangevinBAOAB));

// --- k-centers radius is monotone in k ----------------------------------

class ClusterCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClusterCountSweep, MaxRadiusShrinksWithMoreClusters) {
    const std::size_t k = GetParam();
    Rng rng(5);
    msm::ConformationSet data;
    for (int i = 0; i < 150; ++i) {
        std::vector<Vec3> conf;
        for (int p = 0; p < 8; ++p) conf.push_back(rng.gaussianVec3(2.0));
        data.add(std::move(conf));
    }
    auto radiusAt = [&](std::size_t kk) {
        msm::KCentersParams p;
        p.numClusters = kk;
        const auto r = msm::kCenters(data, p);
        double maxR = 0.0;
        for (double d : r.distances) maxR = std::max(maxR, d);
        return maxR;
    };
    EXPECT_LE(radiusAt(k), radiusAt(k / 2) + 1e-12) << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, ClusterCountSweep,
                         ::testing::Values(4, 8, 16, 64));

// --- All estimators produce valid stochastic matrices across seeds ------

struct EstimatorSeed {
    msm::EstimatorKind kind;
    std::uint64_t seed;
};

class EstimatorSweep : public ::testing::TestWithParam<EstimatorSeed> {};

TEST_P(EstimatorSweep, RowsStochasticOnRandomData) {
    const auto [kind, seed] = GetParam();
    Rng rng(seed);
    std::vector<msm::DiscreteTrajectory> trajs;
    for (int t = 0; t < 20; ++t) {
        msm::DiscreteTrajectory traj;
        int s = int(rng.uniformInt(12));
        for (int i = 0; i < 100; ++i) {
            if (rng.uniform() < 0.3) s = int(rng.uniformInt(12));
            traj.push_back(s);
        }
        trajs.push_back(std::move(traj));
    }
    msm::MarkovModelParams p;
    p.estimator = kind;
    const auto m = msm::MarkovStateModel::fromTrajectories(trajs, 12, p);
    for (std::size_t i = 0; i < m.numStates(); ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < m.numStates(); ++j) {
            EXPECT_GE(m.transitionMatrix()(i, j), 0.0);
            row += m.transitionMatrix()(i, j);
        }
        EXPECT_NEAR(row, 1.0, 1e-9);
    }
    // Stationary distribution sums to one.
    double total = 0.0;
    for (double v : m.stationaryDistribution()) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Estimators, EstimatorSweep,
    ::testing::Values(
        EstimatorSeed{msm::EstimatorKind::RowNormalized, 1},
        EstimatorSeed{msm::EstimatorKind::RowNormalized, 2},
        EstimatorSeed{msm::EstimatorKind::Symmetrized, 1},
        EstimatorSeed{msm::EstimatorKind::Symmetrized, 2},
        EstimatorSeed{msm::EstimatorKind::ReversibleMle, 1},
        EstimatorSeed{msm::EstimatorKind::ReversibleMle, 2}));

// --- BAR accuracy across overlap regimes --------------------------------

class BarOverlapSweep : public ::testing::TestWithParam<double> {};

TEST_P(BarOverlapSweep, StaysWithinErrorBars) {
    const double kRatio = GetParam();
    const fe::HarmonicState s0{1.0, 0.0}, s1{kRatio, 0.2};
    Rng rng(std::uint64_t(kRatio * 100));
    const auto fwd = fe::harmonicWorkSamples(s0, s1, 8000, 1.0, rng);
    const auto rev = fe::harmonicWorkSamples(s1, s0, 8000, 1.0, rng);
    const auto r = fe::bar(fwd, rev);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.deltaF, fe::harmonicDeltaF(s0, s1, 1.0),
                5.0 * r.standardError + 0.01)
        << "k ratio " << kRatio;
}

INSTANTIATE_TEST_SUITE_P(Ratios, BarOverlapSweep,
                         ::testing::Values(1.5, 4.0, 16.0, 64.0));

} // namespace
} // namespace cop
