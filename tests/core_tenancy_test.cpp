// Multi-tenant scheduling plane: weighted DRR claim shares, admission
// control end to end (controller, client and worker backpressure), park
// queue hygiene across worker death, the consolidated metrics surface,
// and a chaos-seed sweep over a multi-tenant deployment.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/copernicus.hpp"
#include "core/scheduler.hpp"

namespace cop::core {
namespace {

// ---- ShardedScheduler unit level ---------------------------------------

CommandSpec specFor(ProjectId tenant, CommandId id, std::size_t bytes = 0) {
    CommandSpec spec;
    spec.id = id;
    spec.projectId = tenant;
    spec.executable = "echo";
    spec.steps = 10;
    if (bytes > 0)
        spec.input = SharedBytes(std::vector<std::uint8_t>(bytes, 0xAB));
    return spec;
}

/// Fills `sched` with `perTenant` one-core commands on every tenant.
void backlog(ShardedScheduler& sched, const std::vector<ProjectId>& tenants,
             int perTenant, CommandId& nextId) {
    for (ProjectId t : tenants)
        for (int i = 0; i < perTenant; ++i)
            EXPECT_TRUE(sched.push(t, specFor(t, nextId++)).admitted);
}

TEST(ShardedScheduler, WeightedDrrSplitsMultiCoreOffers) {
    // Three backlogged tenants, weights 1:2:4, repeatedly offered 8-core
    // workloads: granted cores must converge to weight proportion.
    ShardedScheduler sched;
    sched.addTenant(1, TenantConfig{1.0});
    sched.addTenant(2, TenantConfig{2.0});
    sched.addTenant(3, TenantConfig{4.0});
    CommandId next = 1;
    backlog(sched, {1, 2, 3}, 400, next);

    // Offer exactly the weight sum per call so each claim tiles a whole
    // DRR round; remainder cores would otherwise skew small samples.
    const std::vector<std::string> execs = {"echo"};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sched.claim(execs, 7, net::NodeId(1)).size(), 7u);

    const double total = 700.0;
    const double weightSum = 7.0;
    for (ProjectId t : {1, 2, 3}) {
        const double got = double(sched.tenantStats(t).coresGranted);
        const double expected =
            total * sched.tenantConfig(t).weight / weightSum;
        EXPECT_GT(got, 0.85 * expected) << "tenant " << t;
        EXPECT_LT(got, 1.15 * expected) << "tenant " << t;
    }
}

TEST(ShardedScheduler, EqualWeightSingleCoreOffersStayEven) {
    ShardedScheduler sched;
    for (ProjectId t = 1; t <= 4; ++t) sched.addTenant(t, TenantConfig{});
    CommandId next = 1;
    backlog(sched, {1, 2, 3, 4}, 200, next);

    const std::vector<std::string> execs = {"echo"};
    for (int i = 0; i < 400; ++i)
        EXPECT_EQ(sched.claim(execs, 1, net::NodeId(1)).size(), 1u);

    for (ProjectId t = 1; t <= 4; ++t) {
        const auto claimed = sched.tenantStats(t).commandsClaimed;
        EXPECT_GE(claimed, 90u) << "tenant " << t;
        EXPECT_LE(claimed, 110u) << "tenant " << t;
    }
}

TEST(ShardedScheduler, ExtremeWeightRatioCannotStarveLightTenant) {
    // Weight 100 vs 1: the light tenant's share shrinks but its deficit
    // still accrues every service round, so it keeps making progress.
    ShardedScheduler sched;
    sched.addTenant(1, TenantConfig{100.0});
    sched.addTenant(2, TenantConfig{1.0});
    CommandId next = 1;
    backlog(sched, {1, 2}, 300, next);

    const std::vector<std::string> execs = {"echo"};
    for (int i = 0; i < 40; ++i) sched.claim(execs, 8, net::NodeId(1));

    const auto heavy = sched.tenantStats(1).commandsClaimed;
    const auto light = sched.tenantStats(2).commandsClaimed;
    EXPECT_GT(light, 0u);
    EXPECT_GT(heavy, light);
}

TEST(ShardedScheduler, IdleTenantCannotBankDeficit) {
    // A tenant whose shard drained forfeits its deficit: after sitting
    // idle through many service rounds it must not burst ahead of a
    // steadily backlogged tenant once it has work again.
    ShardedScheduler sched;
    sched.addTenant(1, TenantConfig{});
    sched.addTenant(2, TenantConfig{});
    CommandId next = 1;
    backlog(sched, {1}, 400, next); // tenant 2 idle

    const std::vector<std::string> execs = {"echo"};
    for (int i = 0; i < 30; ++i) sched.claim(execs, 8, net::NodeId(1));

    backlog(sched, {2}, 100, next);
    const auto before1 = sched.tenantStats(1).commandsClaimed;
    for (int i = 0; i < 10; ++i) sched.claim(execs, 8, net::NodeId(1));
    const auto gained1 = sched.tenantStats(1).commandsClaimed - before1;
    const auto gained2 = sched.tenantStats(2).commandsClaimed;
    // Equal weights from here on: roughly half the 80 offered cores each,
    // not an 80-core make-up burst for tenant 2.
    EXPECT_GE(gained1, 30u);
    EXPECT_GE(gained2, 30u);
}

TEST(ShardedScheduler, AdmissionQuotaRejectsWithRetryAfter) {
    ShardedScheduler sched;
    TenantConfig cfg;
    cfg.maxPendingCommands = 2;
    cfg.admissionRetryAfter = 12.5;
    sched.addTenant(1, cfg);

    EXPECT_TRUE(sched.push(1, specFor(1, 1)).admitted);
    EXPECT_TRUE(sched.push(1, specFor(1, 2)).admitted);
    const auto rejected = sched.push(1, specFor(1, 3));
    EXPECT_FALSE(rejected.admitted);
    EXPECT_DOUBLE_EQ(rejected.retryAfter, 12.5);
    EXPECT_EQ(sched.pendingOf(1), 2u);
    EXPECT_EQ(sched.tenantStats(1).admissionRejections, 1u);

    // Forced pushes (requeues, trusted controller paths) bypass the quota.
    EXPECT_TRUE(sched.push(1, specFor(1, 4), /*force=*/true).admitted);
    EXPECT_EQ(sched.pendingOf(1), 3u);
}

TEST(ShardedScheduler, ByteQuotaCountsPendingPayloadBytes) {
    ShardedScheduler sched;
    TenantConfig cfg;
    cfg.maxPendingBytes = 1000;
    sched.addTenant(1, cfg);

    EXPECT_TRUE(sched.push(1, specFor(1, 1, 600)).admitted);
    EXPECT_EQ(sched.pendingBytesOf(1), 600u);
    EXPECT_FALSE(sched.push(1, specFor(1, 2, 600)).admitted);

    // Claiming the pending command frees its bytes for new submissions.
    EXPECT_EQ(sched.claim({"echo"}, 1, net::NodeId(1)).size(), 1u);
    EXPECT_EQ(sched.pendingBytesOf(1), 0u);
    EXPECT_TRUE(sched.push(1, specFor(1, 3, 600)).admitted);
}

TEST(ShardedScheduler, RequeueBypassesAdmission) {
    // Recovery must never be load-shed: a worker death may push a tenant
    // past its pending quota and that has to succeed.
    ShardedScheduler sched;
    TenantConfig cfg;
    cfg.maxPendingCommands = 2;
    sched.addTenant(1, cfg);
    EXPECT_TRUE(sched.push(1, specFor(1, 1)).admitted);
    EXPECT_TRUE(sched.push(1, specFor(1, 2)).admitted);
    EXPECT_EQ(sched.claim({"echo"}, 2, net::NodeId(7)).size(), 2u);

    EXPECT_TRUE(sched.push(1, specFor(1, 3)).admitted);
    EXPECT_TRUE(sched.push(1, specFor(1, 4)).admitted);
    EXPECT_EQ(sched.pendingOf(1), 2u); // at quota

    EXPECT_EQ(sched.requeueWorker(net::NodeId(7)).size(), 2u);
    EXPECT_EQ(sched.pendingOf(1), 4u); // over quota, by design
    EXPECT_EQ(sched.tenantStats(1).commandsRequeued, 2u);
}

// ---- Deployment level ---------------------------------------------------

ExecutableRegistry echoRegistry(double duration = 10.0) {
    ExecutableRegistry reg;
    reg.add("echo", [duration](const CommandSpec& cmd, int) {
        Execution e;
        e.result.commandId = cmd.id;
        e.result.projectId = cmd.projectId;
        e.result.trajectoryId = cmd.trajectoryId;
        e.result.generation = cmd.generation;
        e.result.success = true;
        e.simSeconds = duration;
        return e;
    });
    return reg;
}

/// Submits `total` commands through the admission-checked path, topping
/// the backlog back up after every completion.
class GreedyController : public Controller {
public:
    explicit GreedyController(int total) : total_(total) {}
    void onProjectStart(ProjectContext& ctx) override { pump(ctx); }
    void onCommandFinished(ProjectContext& ctx,
                           const CommandResult&) override {
        ++finished_;
        pump(ctx);
    }
    bool isDone(const ProjectContext& ctx) const override {
        return finished_ >= total_ && ctx.outstandingCommands() == 0;
    }

    int finished() const { return finished_; }
    int rejections() const { return rejections_; }
    double lastRetryAfter() const { return lastRetryAfter_; }

private:
    void pump(ProjectContext& ctx) {
        while (submitted_ < total_) {
            CommandSpec spec;
            spec.executable = "echo";
            spec.steps = 10;
            spec.trajectoryId = submitted_;
            const auto r = ctx.trySubmitCommand(std::move(spec));
            if (!r.admitted) {
                ++rejections_;
                lastRetryAfter_ = r.retryAfter;
                return;
            }
            ++submitted_;
        }
    }

    int total_ = 0;
    int submitted_ = 0;
    int finished_ = 0;
    int rejections_ = 0;
    double lastRetryAfter_ = 0.0;
};

/// Submits `first` commands up front, then `onTrigger` more for every
/// client "go" command — work arriving long after workers went idle.
class TriggerController : public Controller {
public:
    TriggerController(int first, int onTrigger)
        : first_(first), onTrigger_(onTrigger), total_(first + onTrigger) {}
    void onProjectStart(ProjectContext& ctx) override {
        for (int i = 0; i < first_; ++i) submit(ctx);
    }
    void onCommandFinished(ProjectContext&, const CommandResult&) override {
        ++finished_;
    }
    std::string handleClientCommand(ProjectContext& ctx,
                                    const std::string& command) override {
        if (command != "go") return "unknown";
        for (int i = 0; i < onTrigger_; ++i) submit(ctx);
        return "ok";
    }
    bool isDone(const ProjectContext& ctx) const override {
        // Wait for the triggered batch too — the project must stay live
        // across the idle gap or the run ends before the client fires.
        return finished_ >= total_ && ctx.outstandingCommands() == 0;
    }
    int finished() const { return finished_; }

private:
    void submit(ProjectContext& ctx) {
        CommandSpec spec;
        spec.executable = "echo";
        spec.steps = 10;
        spec.trajectoryId = submitted_++;
        ctx.submitCommand(std::move(spec));
    }

    int first_ = 0;
    int onTrigger_ = 0;
    int total_ = 0;
    int submitted_ = 0;
    int finished_ = 0;
};

TEST(Tenancy, ProjectSpecControlsShardConfigAndOldOverloadKeepsDefaults) {
    Deployment dep(3);
    ServerConfig sc;
    sc.claimPolicy = ClaimPolicy::LargestFit;
    auto& server = dep.addServer("s0", sc);

    const auto legacy =
        server.createProject("legacy", std::make_unique<GreedyController>(0));
    ProjectSpec spec;
    spec.name = "tuned";
    spec.weight = 3.0;
    spec.claimPolicy = ClaimPolicy::FirstFit;
    spec.maxPendingCommands = 5;
    spec.maxPendingBytes = 1 << 20;
    spec.admissionRetryAfter = 9.0;
    const auto tuned = server.createProject(
        std::move(spec), std::make_unique<GreedyController>(0));

    const auto& legacyCfg = server.scheduler().tenantConfig(legacy);
    EXPECT_DOUBLE_EQ(legacyCfg.weight, 1.0);
    EXPECT_EQ(legacyCfg.claimPolicy, ClaimPolicy::LargestFit); // server default
    EXPECT_EQ(legacyCfg.maxPendingCommands, 0u);

    const auto& tunedCfg = server.scheduler().tenantConfig(tuned);
    EXPECT_DOUBLE_EQ(tunedCfg.weight, 3.0);
    EXPECT_EQ(tunedCfg.claimPolicy, ClaimPolicy::FirstFit); // explicit override
    EXPECT_EQ(tunedCfg.maxPendingCommands, 5u);
    EXPECT_DOUBLE_EQ(tunedCfg.admissionRetryAfter, 9.0);
}

TEST(Tenancy, AdmissionRejectionsResolveThroughCompletions) {
    // Quota 4, 24 commands, 2 single-core workers: the controller is
    // rejected at the quota, re-pumps on completions, and still lands
    // every command.
    Deployment dep(5);
    auto& server = dep.addServer("s0");
    for (int w = 0; w < 2; ++w)
        dep.addWorker("w" + std::to_string(w), server, WorkerConfig{},
                      echoRegistry(10.0), links::intraCluster());

    auto ctrl = std::make_unique<GreedyController>(24);
    auto* greedy = ctrl.get();
    ProjectSpec spec;
    spec.name = "quota";
    spec.maxPendingCommands = 4;
    spec.admissionRetryAfter = 7.5;
    const auto pid = server.createProject(std::move(spec), std::move(ctrl));

    EXPECT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(greedy->finished(), 24);
    EXPECT_GT(greedy->rejections(), 0);
    EXPECT_DOUBLE_EQ(greedy->lastRetryAfter(), 7.5);

    const auto metrics = server.metricsSnapshot();
    ASSERT_EQ(metrics.tenants.size(), 1u);
    EXPECT_EQ(metrics.tenants[0].id, pid);
    EXPECT_EQ(metrics.tenants[0].counters.pendingPeak, 4u);
    EXPECT_EQ(metrics.tenants[0].counters.admissionRejections,
              std::uint64_t(greedy->rejections()));
    EXPECT_TRUE(metrics.tenants[0].done);
}

TEST(Tenancy, ClientControlCommandShedWithRetryAfterWhileOverQuota) {
    // One worker, quota 2: between waves the backlog sits exactly at the
    // quota, so a mid-run control command is load-shed with the tenant's
    // retry-after while plain status stays exempt.
    Deployment dep(7);
    auto& server = dep.addServer("s0");
    dep.addWorker("w0", server, WorkerConfig{}, echoRegistry(50.0),
                  links::intraCluster());

    auto ctrl = std::make_unique<GreedyController>(10);
    ProjectSpec spec;
    spec.name = "quota";
    spec.maxPendingCommands = 2;
    spec.admissionRetryAfter = 30.0;
    const auto pid = server.createProject(std::move(spec), std::move(ctrl));

    auto& client = dep.addClient("cli", server, links::dataCenter());
    dep.loop().schedule(75.0, [&] {
        client.sendCommand(server.id(), pid, "poke");
    });
    dep.loop().schedule(80.0, [&] {
        EXPECT_FALSE(client.lastAccepted());
        EXPECT_DOUBLE_EQ(client.lastRetryAfter(), 30.0);
        EXPECT_EQ(client.responsesShed(), 1u);
        client.requestStatus(server.id(), pid); // status is never shed
    });
    dep.loop().schedule(85.0, [&] {
        EXPECT_TRUE(client.lastAccepted());
        EXPECT_EQ(client.responsesShed(), 1u);
    });

    EXPECT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(server.stats().clientRequestsShed, 1u);
    EXPECT_EQ(client.responsesReceived(), 2u);
}

TEST(Tenancy, ParkQueueBackpressureRetryAfterStretchesWorkerBackoff) {
    // One command, three workers, park capacity one: the losing worker is
    // bounced NoWork with the server's retry-after, which must floor its
    // poll backoff (counted as a backpressure deferral) — and everything
    // still completes once more work appears.
    Deployment dep(9);
    ServerConfig sc;
    sc.maxParkedRequests = 1;
    sc.parkRetryAfter = 40.0; // above the default 30s-base poll backoff
    auto& server = dep.addServer("s0", sc);
    std::vector<Worker*> workers;
    for (int w = 0; w < 3; ++w)
        workers.push_back(&dep.addWorker("w" + std::to_string(w), server,
                                         WorkerConfig{}, echoRegistry(30.0),
                                         links::intraCluster()));

    auto ctrl = std::make_unique<TriggerController>(1, 3);
    auto* trig = ctrl.get();
    const auto pid = server.createProject("trickle", std::move(ctrl));

    auto& client = dep.addClient("cli", server, links::dataCenter());
    dep.loop().schedule(35.0, [&] {
        client.sendCommand(server.id(), pid, "go");
    });

    EXPECT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(trig->finished(), 4);
    EXPECT_GE(server.stats().parkRejections, 1u);
    std::uint64_t deferrals = 0;
    for (const auto* w : workers)
        deferrals += w->stats().backpressureDeferrals;
    EXPECT_GE(deferrals, 1u);
}

TEST(Tenancy, IdleParkedWorkerSurvivesSweepAfterHavingRunWork) {
    // Regression for the park-prune rule: a worker that ran commands,
    // went idle and parked is silent (no heartbeats without running
    // commands) and will be "swept" once the failure deadline passes —
    // but its stale last heartbeat still lists the finished commands.
    // Its park slot must survive, or late-arriving work strands it.
    Deployment dep(11);
    ServerConfig sc;
    sc.heartbeatInterval = 5.0; // sweep deadline: 10 s
    auto& server = dep.addServer("s0", sc);
    WorkerConfig wc;
    wc.heartbeatInterval = 5.0;
    dep.addWorker("w0", server, wc, echoRegistry(2.0),
                  links::intraCluster());

    auto ctrl = std::make_unique<TriggerController>(1, 1);
    auto* trig = ctrl.get();
    const auto pid = server.createProject("lazy", std::move(ctrl));

    auto& client = dep.addClient("cli", server, links::dataCenter());
    // Fires long after the worker (idle since ~t=2) has been swept.
    dep.loop().schedule(40.0, [&] {
        client.sendCommand(server.id(), pid, "go");
    });

    EXPECT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(trig->finished(), 2);
    EXPECT_GE(server.stats().workersFailed, 1u); // it *was* swept
    EXPECT_EQ(server.stats().parkedRequestsDropped, 0u);
}

TEST(Tenancy, DeadMidRunWorkerHandsOffToParkedPeer) {
    // w0 claims the only command and dies mid-run; parked w1 must receive
    // the requeued command through the unpark path.
    Deployment dep(13);
    ServerConfig sc;
    sc.heartbeatInterval = 5.0;
    auto& server = dep.addServer("s0", sc);
    WorkerConfig wc;
    wc.heartbeatInterval = 5.0;
    auto& w0 = dep.addWorker("w0", server, wc, echoRegistry(100.0),
                             links::intraCluster());
    dep.addWorker("w1", server, wc, echoRegistry(100.0),
                  links::intraCluster());

    auto ctrl = std::make_unique<TriggerController>(1, 0);
    auto* trig = ctrl.get();
    server.createProject("solo", std::move(ctrl));
    w0.failAfter(20.0);

    EXPECT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(trig->finished(), 1);
    EXPECT_GE(server.stats().workersFailed, 1u);
    EXPECT_GE(server.stats().commandsRequeued, 1u);
}

TEST(Tenancy, MetricsSnapshotAggregatesMatchLegacyViews) {
    Deployment dep(15);
    auto& server = dep.addServer("s0");
    WorkerConfig wc;
    wc.cores = 4;
    dep.addWorker("w0", server, wc, echoRegistry(5.0),
                  links::intraCluster());

    ProjectSpec a;
    a.name = "alpha";
    a.weight = 2.0;
    server.createProject(std::move(a), std::make_unique<GreedyController>(6));
    ProjectSpec b;
    b.name = "beta";
    server.createProject(std::move(b), std::make_unique<GreedyController>(4));

    EXPECT_TRUE(dep.runUntilDone(1e6));

    const auto metrics = server.metricsSnapshot();
    ASSERT_EQ(metrics.tenants.size(), 2u);
    EXPECT_EQ(metrics.tenants[0].name, "alpha");
    EXPECT_DOUBLE_EQ(metrics.tenants[0].config.weight, 2.0);
    EXPECT_EQ(metrics.tenants[0].counters.commandsClaimed, 6u);
    EXPECT_EQ(metrics.tenants[1].name, "beta");
    EXPECT_EQ(metrics.tenants[1].counters.commandsClaimed, 4u);
    for (const auto& t : metrics.tenants) {
        EXPECT_EQ(t.pending, 0u);
        EXPECT_EQ(t.inFlight, 0u);
        EXPECT_EQ(t.outstanding, 0u);
        EXPECT_TRUE(t.done);
    }

    // The legacy accessors are views over the same components.
    EXPECT_EQ(metrics.server.commandsCompleted,
              server.stats().commandsCompleted);
    EXPECT_EQ(metrics.scheduler.commandsClaimed,
              server.schedulerStats().commandsClaimed);
    EXPECT_EQ(metrics.wire.sent, server.wireStats().sent);
}

TEST(Tenancy, HeartbeatSummariesKeepRemoteLeasesAliveAcrossEdges) {
    // Worker on an edge server, project one hop away: renewals must ride
    // aggregated HeartbeatSummary digests (never per-heartbeat forwards)
    // and still prevent any lease expiry over a long command.
    Deployment dep(17);
    ServerConfig sc;
    sc.heartbeatInterval = 20.0; // lease: 60 s, command spans 200 s
    auto& project = dep.addServer("project", sc);
    auto& edge = dep.addServer("edge", sc);
    dep.connectServers(project, edge, links::dataCenter());
    WorkerConfig wc;
    wc.heartbeatInterval = 20.0;
    dep.addWorker("w0", edge, wc, echoRegistry(200.0),
                  links::intraCluster());

    auto ctrl = std::make_unique<TriggerController>(1, 0);
    auto* trig = ctrl.get();
    project.createProject("far", std::move(ctrl));

    EXPECT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(trig->finished(), 1);
    EXPECT_GE(edge.stats().heartbeatSummariesSent, 2u);
    EXPECT_GE(edge.stats().leaseRenewalsAggregated, 2u);
    EXPECT_GE(project.stats().heartbeatSummariesReceived, 2u);
    EXPECT_EQ(project.stats().leasesExpired, 0u);
    EXPECT_EQ(project.stats().commandsRequeued, 0u);
}

TEST(Tenancy, ChaosSeedSweepCompletesEveryTenant) {
    // Multi-tenant deployment under drop/duplicate/reorder chaos across
    // several seeds: every tenant's commands complete exactly once.
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Deployment dep(seed);
        auto& server = dep.addServer("s0");
        WorkerConfig wc;
        wc.cores = 2;
        for (int w = 0; w < 4; ++w)
            dep.addWorker("w" + std::to_string(w), server, wc,
                          echoRegistry(10.0), links::intraCluster());

        net::FaultPlan plan;
        plan.seed = seed * 1000 + 7;
        plan.defaultProfile.dropProbability = 0.05;
        plan.defaultProfile.duplicateProbability = 0.05;
        plan.defaultProfile.reorderProbability = 0.05;
        dep.setFaultPlan(plan);

        std::vector<GreedyController*> ctrls;
        for (int p = 0; p < 3; ++p) {
            auto ctrl = std::make_unique<GreedyController>(20);
            ctrls.push_back(ctrl.get());
            ProjectSpec spec;
            spec.name = "tenant" + std::to_string(p);
            spec.weight = double(p + 1);
            spec.maxPendingCommands = 10;
            server.createProject(std::move(spec), std::move(ctrl));
        }

        EXPECT_TRUE(dep.runUntilDone(1e6));
        for (const auto* c : ctrls) EXPECT_EQ(c->finished(), 20);
    }
}

} // namespace
} // namespace cop::core
