/// Snapshot byte-determinism regression tests (copernicus-lint satellite:
/// the WAL snapshot and recovery trace hashes require that serialized
/// state never depends on hash-map iteration order or cross-tenant
/// arrival interleaving). Two schedulers fed the same logical state
/// through different interleavings — with per-tenant command order
/// preserved, which IS part of the logical state — must serialize to
/// identical bytes.

#include <vector>

#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "util/serialize.hpp"

namespace cop::core {
namespace {

CommandSpec spec(CommandId id, ProjectId tenant, int cores = 1) {
    CommandSpec s;
    s.id = id;
    s.projectId = tenant;
    s.executable = "mdrun";
    s.steps = 1000;
    s.preferredCores = cores;
    s.input = SharedBytes{std::uint8_t(id & 0xff), 0xab};
    return s;
}

std::vector<std::uint8_t> snapshotBytes(const ShardedScheduler& s) {
    BinaryWriter w;
    s.serialize(w);
    return w.takeBuffer();
}

TEST(SnapshotDeterminism, TenantRegistrationOrderDoesNotLeak) {
    TenantConfig heavy;
    heavy.weight = 3.0;
    TenantConfig light;
    light.weight = 1.0;

    ShardedScheduler a;
    a.addTenant(1, heavy);
    a.addTenant(2, light);
    a.addTenant(3, light);

    ShardedScheduler b;
    b.addTenant(3, light);
    b.addTenant(1, heavy);
    b.addTenant(2, light);

    EXPECT_EQ(snapshotBytes(a), snapshotBytes(b));
}

TEST(SnapshotDeterminism, CrossTenantInterleavingDoesNotLeak) {
    ShardedScheduler a;
    ShardedScheduler b;
    for (ProjectId t : {1, 2, 3}) {
        a.addTenant(t, TenantConfig{});
        b.addTenant(t, TenantConfig{});
    }

    // Same per-tenant sequences, radically different arrival orders:
    // a sees tenant-major batches, b sees a round-robin interleaving.
    for (ProjectId t : {1, 2, 3})
        for (CommandId i = 0; i < 4; ++i)
            a.push(t, spec(100 * std::uint64_t(t) + i, t));
    for (CommandId i = 0; i < 4; ++i)
        for (ProjectId t : {3, 1, 2})
            b.push(t, spec(100 * std::uint64_t(t) + i, t));

    EXPECT_EQ(snapshotBytes(a), snapshotBytes(b));
}

TEST(SnapshotDeterminism, InFlightOwnerTrackingDoesNotLeak) {
    // owners_ is an unordered_map keyed by CommandId; populating it in
    // different hash-insertion orders (tenant-major vs round-robin pushes)
    // must not change the serialized image. The claim-call history is kept
    // identical on both sides — DRR deficits are legitimate state.
    ShardedScheduler a;
    ShardedScheduler b;
    for (ProjectId t : {1, 2}) {
        a.addTenant(t, TenantConfig{});
        b.addTenant(t, TenantConfig{});
    }
    for (ProjectId t : {1, 2})
        for (CommandId i = 0; i < 3; ++i)
            a.push(t, spec(10 * std::uint64_t(t) + i, t));
    for (CommandId i = 0; i < 3; ++i)
        for (ProjectId t : {2, 1})
            b.push(t, spec(10 * std::uint64_t(t) + i, t));

    auto claimedA = a.claim({"mdrun"}, 3, net::NodeId(7));
    auto claimedB = b.claim({"mdrun"}, 3, net::NodeId(7));
    ASSERT_EQ(claimedA.size(), claimedB.size());

    EXPECT_EQ(snapshotBytes(a), snapshotBytes(b));
}

TEST(SnapshotDeterminism, RoundTripThroughRestoreIsByteStable) {
    ShardedScheduler a;
    for (ProjectId t : {1, 2, 3}) a.addTenant(t, TenantConfig{});
    for (ProjectId t : {1, 2, 3})
        for (CommandId i = 0; i < 3; ++i)
            a.push(t, spec(100 * std::uint64_t(t) + i, t));
    (void)a.claim({"mdrun"}, 4, net::NodeId(9));

    const auto bytes = snapshotBytes(a);
    BinaryReader r{std::span<const std::uint8_t>(bytes)};
    ShardedScheduler restored;
    restored.restore(r);
    EXPECT_EQ(snapshotBytes(restored), bytes);
}

} // namespace
} // namespace cop::core
