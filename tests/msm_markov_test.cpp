// Transition counting, SCC restriction, MSM estimation and analysis.

#include <cmath>

#include <gtest/gtest.h>

#include "msm/markov_model.hpp"
#include "util/random.hpp"

namespace cop::msm {
namespace {

TEST(Counts, SlidingWindowLagOne) {
    const std::vector<DiscreteTrajectory> trajs{{0, 1, 0, 1, 1}};
    const auto c = countTransitions(trajs, 2, 1);
    EXPECT_EQ(c(0, 1), 2.0);
    EXPECT_EQ(c(1, 0), 1.0);
    EXPECT_EQ(c(1, 1), 1.0);
    EXPECT_EQ(c(0, 0), 0.0);
}

TEST(Counts, LagLongerThanTrajectoryGivesNothing) {
    const std::vector<DiscreteTrajectory> trajs{{0, 1, 0}};
    const auto c = countTransitions(trajs, 2, 5);
    EXPECT_EQ(c(0, 1) + c(1, 0) + c(0, 0) + c(1, 1), 0.0);
}

TEST(Counts, MultipleTrajectoriesAccumulate) {
    const std::vector<DiscreteTrajectory> trajs{{0, 1}, {0, 1}, {1, 0}};
    const auto c = countTransitions(trajs, 2, 1);
    EXPECT_EQ(c(0, 1), 2.0);
    EXPECT_EQ(c(1, 0), 1.0);
}

TEST(Counts, RejectsOutOfRangeStates) {
    const std::vector<DiscreteTrajectory> trajs{{0, 7}};
    EXPECT_THROW(countTransitions(trajs, 2, 1), cop::InvalidArgument);
}

TEST(Scc, SeparatesDisconnectedComponents) {
    DenseMatrix c(4, 4);
    c(0, 1) = c(1, 0) = 5.0; // component {0,1}
    c(2, 3) = c(3, 2) = 1.0; // component {2,3}
    const auto comp = stronglyConnectedComponents(c);
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[2], comp[3]);
    EXPECT_NE(comp[0], comp[2]);
}

TEST(Scc, OneWayEdgeIsNotStronglyConnected) {
    DenseMatrix c(2, 2);
    c(0, 1) = 3.0; // no reverse edge
    const auto comp = stronglyConnectedComponents(c);
    EXPECT_NE(comp[0], comp[1]);
}

TEST(Scc, LargestConnectedSetPrefersBiggerComponent) {
    DenseMatrix c(5, 5);
    c(0, 1) = c(1, 2) = c(2, 0) = 1.0; // 3-cycle {0,1,2}
    c(3, 4) = c(4, 3) = 100.0;         // 2-cycle with more counts
    const auto set = largestConnectedSet(c);
    EXPECT_EQ(set, (std::vector<int>{0, 1, 2}));
}

TEST(Scc, RestrictToStates) {
    DenseMatrix c(3, 3);
    c(0, 2) = 7.0;
    c(2, 0) = 3.0;
    const auto r = restrictToStates(c, {0, 2});
    EXPECT_EQ(r.rows(), 2u);
    EXPECT_EQ(r(0, 1), 7.0);
    EXPECT_EQ(r(1, 0), 3.0);
}

/// A reversible 3-state chain: 0 <-> 1 <-> 2 with known rates.
std::vector<DiscreteTrajectory> chainTrajectories(std::size_t steps,
                                                  std::uint64_t seed) {
    // Transition matrix rows: a hand-picked reversible chain.
    const double t[3][3] = {{0.90, 0.10, 0.00},
                            {0.05, 0.90, 0.05},
                            {0.00, 0.10, 0.90}};
    cop::Rng rng(seed);
    DiscreteTrajectory traj{0};
    int s = 0;
    for (std::size_t i = 0; i < steps; ++i) {
        const double u = rng.uniform();
        s = u < t[s][0] ? 0 : (u < t[s][0] + t[s][1] ? 1 : 2);
        traj.push_back(s);
    }
    return {traj};
}

TEST(MarkovModel, RowsAreStochastic) {
    const auto trajs = chainTrajectories(20000, 1);
    MarkovModelParams p;
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, p);
    for (std::size_t i = 0; i < m.numStates(); ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < m.numStates(); ++j) {
            row += m.transitionMatrix()(i, j);
            EXPECT_GE(m.transitionMatrix()(i, j), 0.0);
        }
        EXPECT_NEAR(row, 1.0, 1e-12);
    }
}

TEST(MarkovModel, RecoversChainTransitionProbabilities) {
    const auto trajs = chainTrajectories(200000, 2);
    MarkovModelParams p;
    p.estimator = EstimatorKind::RowNormalized;
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, p);
    ASSERT_EQ(m.numStates(), 3u);
    EXPECT_NEAR(m.transitionMatrix()(0, 1), 0.10, 0.01);
    EXPECT_NEAR(m.transitionMatrix()(1, 0), 0.05, 0.01);
    EXPECT_NEAR(m.transitionMatrix()(1, 2), 0.05, 0.01);
}

TEST(MarkovModel, SymmetrizedEstimatorSatisfiesDetailedBalance) {
    const auto trajs = chainTrajectories(50000, 3);
    MarkovModelParams p;
    p.estimator = EstimatorKind::Symmetrized;
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, p);
    const auto& pi = m.stationaryDistribution();
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_NEAR(pi[i] * m.transitionMatrix()(i, j),
                        pi[j] * m.transitionMatrix()(j, i), 1e-10);
}

TEST(MarkovModel, StationaryDistributionOfChain) {
    // For the hand-picked chain, detailed balance gives
    // pi ~ (1, 2, 1) normalized: pi0*0.10 = pi1*0.05 -> pi1 = 2 pi0;
    // pi1*0.05 = pi2*0.10 -> pi2 = pi0.
    const auto trajs = chainTrajectories(400000, 4);
    MarkovModelParams p;
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, p);
    const auto& pi = m.stationaryDistribution();
    EXPECT_NEAR(pi[0], 0.25, 0.02);
    EXPECT_NEAR(pi[1], 0.50, 0.02);
    EXPECT_NEAR(pi[2], 0.25, 0.02);
}

TEST(MarkovModel, PropagationConservesProbability) {
    const auto trajs = chainTrajectories(30000, 5);
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, {});
    std::vector<double> pdist(m.numStates(), 0.0);
    pdist[0] = 1.0;
    const auto p100 = m.propagate(pdist, 100);
    double total = 0.0;
    for (double v : p100) total += v;
    EXPECT_NEAR(total, 1.0, 1e-10);
    // Long propagation converges to stationary (paper Eq. 1 dynamics).
    const auto pInf = m.propagate(pdist, 5000);
    const auto& pi = m.stationaryDistribution();
    for (std::size_t i = 0; i < pi.size(); ++i)
        EXPECT_NEAR(pInf[i], pi[i], 1e-6);
}

TEST(MarkovModel, EigenvaluesLeadWithOne) {
    const auto trajs = chainTrajectories(100000, 6);
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, {});
    const auto ev = m.eigenvalues(3);
    ASSERT_GE(ev.size(), 2u);
    EXPECT_NEAR(ev[0], 1.0, 1e-9);
    EXPECT_LT(ev[1], 1.0);
    EXPECT_GT(ev[1], 0.0);
}

TEST(MarkovModel, ImpliedTimescaleMatchesAnalyticChain) {
    // Exact second eigenvalue of the chain above: T has eigenvalues
    // {1, 0.9, 0.8} (verified analytically: det(T - l I) factorizes).
    const auto trajs = chainTrajectories(500000, 7);
    MarkovModelParams p;
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, p);
    const auto ts = m.impliedTimescales(2);
    ASSERT_GE(ts.size(), 1u);
    EXPECT_NEAR(ts[0], -1.0 / std::log(0.9), 1.5);
}

TEST(MarkovModel, MfptIsPositiveAndZeroAtTarget) {
    const auto trajs = chainTrajectories(100000, 8);
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, {});
    const auto mfpt = m.meanFirstPassageTimes({2});
    EXPECT_EQ(mfpt[2], 0.0);
    EXPECT_GT(mfpt[0], mfpt[1]); // state 0 is farther from 2
    EXPECT_GT(mfpt[1], 0.0);
}

TEST(MarkovModel, CommittorBoundariesAndMonotonicity) {
    const auto trajs = chainTrajectories(100000, 9);
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, {});
    const auto q = m.committor({0}, {2});
    EXPECT_EQ(q[0], 0.0);
    EXPECT_EQ(q[2], 1.0);
    EXPECT_GT(q[1], 0.0);
    EXPECT_LT(q[1], 1.0);
    // Symmetric chain: middle state commits 50/50.
    EXPECT_NEAR(q[1], 0.5, 0.05);
}

TEST(MarkovModel, DisconnectedStatesAreDropped) {
    std::vector<DiscreteTrajectory> trajs{{0, 1, 0, 1}, {2, 3, 2, 3}};
    const auto m = MarkovStateModel::fromTrajectories(trajs, 5, {});
    EXPECT_EQ(m.numStates(), 2u);
    // Mapping back to microstates works.
    const int micro = m.activeState(0);
    EXPECT_GE(m.toActiveIndex(micro), 0);
    EXPECT_EQ(m.toActiveIndex(4), -1);
}

TEST(MarkovModel, ChapmanKolmogorovSmallForMarkovChain) {
    const auto trajs = chainTrajectories(400000, 10);
    const double err = chapmanKolmogorovError(trajs, 3, 1, 3, {});
    EXPECT_LT(err, 0.02);
}

TEST(MarkovModel, ChapmanKolmogorovDetectsNonMarkovianity) {
    // A process with memory: alternates 0,0,1,1,0,0,1,1 deterministically.
    DiscreteTrajectory traj;
    for (int i = 0; i < 1000; ++i) traj.push_back((i / 2) % 2);
    const double err = chapmanKolmogorovError({traj}, 2, 1, 2, {});
    EXPECT_GT(err, 0.2);
}


TEST(ReversibleMle, SatisfiesDetailedBalanceAndStochasticity) {
    const auto trajs = chainTrajectories(50000, 11);
    MarkovModelParams p;
    p.estimator = EstimatorKind::ReversibleMle;
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, p);
    const auto& pi = m.stationaryDistribution();
    for (std::size_t i = 0; i < m.numStates(); ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < m.numStates(); ++j) {
            row += m.transitionMatrix()(i, j);
            EXPECT_NEAR(pi[i] * m.transitionMatrix()(i, j),
                        pi[j] * m.transitionMatrix()(j, i), 1e-8);
        }
        EXPECT_NEAR(row, 1.0, 1e-10);
    }
}

TEST(ReversibleMle, MatchesTruthOnWellSampledChain) {
    const auto trajs = chainTrajectories(400000, 12);
    MarkovModelParams p;
    p.estimator = EstimatorKind::ReversibleMle;
    const auto m = MarkovStateModel::fromTrajectories(trajs, 3, p);
    EXPECT_NEAR(m.transitionMatrix()(0, 1), 0.10, 0.01);
    EXPECT_NEAR(m.transitionMatrix()(1, 0), 0.05, 0.01);
    const auto& pi = m.stationaryDistribution();
    EXPECT_NEAR(pi[1], 0.50, 0.02);
}

TEST(ReversibleMle, RobustToAdaptiveSamplingBias) {
    // Simulate adaptive-sampling bias: many short trajectories restarted
    // from the *rare* state 0 of a two-state system whose true
    // equilibrium is pi = (1/11, 10/11) (k01 = 0.5, k10 = 0.05).
    cop::Rng rng(13);
    std::vector<DiscreteTrajectory> trajs;
    for (int t = 0; t < 2000; ++t) {
        DiscreteTrajectory traj{0}; // biased restarts in state 0
        int s = 0;
        for (int i = 0; i < 10; ++i) {
            const double u = rng.uniform();
            if (s == 0 && u < 0.5) s = 1;
            else if (s == 1 && u < 0.05) s = 0;
            traj.push_back(s);
        }
        trajs.push_back(std::move(traj));
    }
    MarkovModelParams mle;
    mle.estimator = EstimatorKind::ReversibleMle;
    MarkovModelParams sym;
    sym.estimator = EstimatorKind::Symmetrized;
    const auto mMle = MarkovStateModel::fromTrajectories(trajs, 2, mle);
    const auto mSym = MarkovStateModel::fromTrajectories(trajs, 2, sym);
    const double truth = 10.0 / 11.0;
    const double errMle =
        std::abs(mMle.stationaryDistribution()[1] - truth);
    const double errSym =
        std::abs(mSym.stationaryDistribution()[1] - truth);
    // The naive symmetrized estimator is pulled towards the sampling
    // distribution (heavy in state 0); the MLE resists that bias.
    EXPECT_LT(errMle, errSym);
    EXPECT_LT(errMle, 0.05);
}

TEST(ReversibleMle, DirectCallOnCounts) {
    DenseMatrix c(2, 2);
    c(0, 0) = 90;
    c(0, 1) = 10;
    c(1, 0) = 5;
    c(1, 1) = 95;
    const auto t = estimateReversibleMle(c);
    for (std::size_t i = 0; i < 2; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < 2; ++j) row += t(i, j);
        EXPECT_NEAR(row, 1.0, 1e-10);
    }
    EXPECT_GT(t(0, 1), 0.0);
}

} // namespace
} // namespace cop::msm
