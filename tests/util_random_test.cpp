#include "util/random.hpp"

#include <set>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/statistics.hpp"

namespace cop {
namespace {

TEST(Rng, Deterministic) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next()) ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndVariance) {
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.005);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.002);
}

TEST(Rng, UniformIntRange) {
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all values hit
}

TEST(Rng, UniformIntOfOneIsZero) {
    Rng rng(5);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, GaussianMoments) {
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 200000; ++i) s.add(rng.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.01);
    EXPECT_NEAR(s.variance(), 1.0, 0.02);
}

TEST(Rng, GaussianWithParameters) {
    Rng rng(17);
    RunningStats s;
    for (int i = 0; i < 100000; ++i) s.add(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.03);
    EXPECT_NEAR(s.stddev(), 2.0, 0.03);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
    Rng parent(99);
    Rng a1 = parent.split(0);
    Rng a2 = parent.split(0);
    Rng b = parent.split(1);
    bool anyDiff = false;
    for (int i = 0; i < 50; ++i) {
        const auto va = a1.next();
        EXPECT_EQ(va, a2.next());
        if (va != b.next()) anyDiff = true;
    }
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, SnapshotRestoreIsBitExact) {
    Rng rng(31);
    rng.gaussian(); // leave a cached spare in place
    const auto snap = rng.snapshot();
    std::vector<double> expected;
    for (int i = 0; i < 20; ++i) expected.push_back(rng.gaussian());
    Rng other(777);
    other.restore(snap);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(other.gaussian(), expected[i]);
}

TEST(Rng, MaxwellBoltzmannTemperature) {
    Rng rng(41);
    const double mass = 2.5, temperature = 0.8;
    RunningStats kinetic;
    for (int i = 0; i < 50000; ++i) {
        const Vec3 v = maxwellBoltzmannVelocity(rng, mass, temperature);
        kinetic.add(0.5 * mass * norm2(v));
    }
    // <E_k> = (3/2) kB T per particle.
    EXPECT_NEAR(kinetic.mean(), 1.5 * temperature, 0.01);
}

TEST(Rng, MaxwellBoltzmannRejectsBadArguments) {
    Rng rng(1);
    EXPECT_THROW(maxwellBoltzmannVelocity(rng, 0.0, 1.0), InvalidArgument);
    EXPECT_THROW(maxwellBoltzmannVelocity(rng, 1.0, -1.0), InvalidArgument);
}

TEST(SplitMix64, KnownSequenceIsStable) {
    SplitMix64 sm(42);
    const auto a = sm.next();
    const auto b = sm.next();
    EXPECT_NE(a, b);
    SplitMix64 sm2(42);
    EXPECT_EQ(sm2.next(), a);
    EXPECT_EQ(sm2.next(), b);
}

} // namespace
} // namespace cop
