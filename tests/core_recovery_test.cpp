// Crash-recovery chaos: kill and resurrect the project server mid-study
// from its WAL and verify the rebuilt plane is *schedule-transparent* —
// the surviving run is trace-hash-identical to one that never crashed.

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "core/backends.hpp"
#include "core/bar_controller.hpp"
#include "core/copernicus.hpp"
#include "core/msm_controller.hpp"
#include "mdlib/units.hpp"
#include "util/random.hpp"

namespace cop::core {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("cop_recovery_" + tag + "_" +
                std::to_string(Rng(std::uint64_t(::getpid())).next()));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

ExecutableRegistry bothRegistries() {
    ExecutableRegistry reg;
    reg.add("mdrun", makeMdrunExecutable(linearDurationModel(0.05)));
    reg.add("fe_sample", makeFeSampleExecutable(linearDurationModel(0.001)));
    return reg;
}

MsmControllerParams msmParams(std::uint64_t seed) {
    MsmControllerParams p;
    p.model = md::hairpinGoModel();
    p.startingConformations = md::makeUnfoldedConformations(p.model, 2, seed);
    p.tasksPerStart = 2;
    p.segmentSteps = 1000;
    p.maxGenerations = 2;
    p.pipeline.numClusters = 15;
    p.pipeline.snapshotStride = 2;
    p.pipeline.medoidSweeps = 1;
    p.simulation.integrator.kind = md::IntegratorKind::LangevinBAOAB;
    p.simulation.integrator.temperature = 0.5;
    p.simulation.integrator.friction = 0.5;
    p.simulation.sampleInterval = 25;
    p.seed = seed;
    return p;
}

BarControllerParams barParams(std::uint64_t seed) {
    BarControllerParams p;
    p.samplesPerCommand = 500;
    p.targetError = 0.05;
    p.seed = seed;
    return p;
}

struct RunOutcome {
    bool done = false;
    std::uint64_t traceHash = 0;
    double msmMinRmsd = 0.0;
    std::size_t msmGenerations = 0;
    double barDeltaF = 0.0;
    double barError = 0.0;
    int barRounds = 0;
    std::uint64_t commandsCompleted = 0;
    std::uint64_t deadLetters = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t walRecords = 0;
    std::uint64_t storeSpills = 0;
};

enum class Crash { None, Transparent, FullLoss };

/// One MSM + one BAR study against a WAL-enabled server. `crash` wipes the
/// whole scheduler/lease/cache plane mid-study (and for FullLoss also the
/// endpoint's volatile wire state) and rebuilds it from snapshot + log.
RunOutcome runStudy(std::uint64_t seed, Crash crash,
                    const std::string& walDir, double crashAt = 111.377) {
    Deployment dep(seed);
    ServerConfig sc;
    sc.durability.walEnabled = true;
    sc.durability.walDir = walDir;
    sc.durability.snapshotEveryRecords = 150;
    sc.durability.storeRamBytes = 32 * 1024; // force tiering mid-study
    auto& server = dep.addServer("s0", sc);
    for (int i = 0; i < 3; ++i)
        dep.addWorker("w" + std::to_string(i), server, WorkerConfig{},
                      bothRegistries(), links::intraCluster());

    auto msmCtrl = std::make_unique<MsmController>(msmParams(seed));
    auto* msm = msmCtrl.get();
    server.createProject("msm", std::move(msmCtrl));
    auto barCtrl = std::make_unique<BarController>(barParams(seed));
    auto* bar = barCtrl.get();
    server.createProject("bar", std::move(barCtrl));

    if (crash != Crash::None) {
        dep.loop().schedule(crashAt, [&server, crash, &dep] {
            if (crash == Crash::FullLoss) server.endpoint().reset();
            server.recoverFromWal();
            if (crash == Crash::FullLoss) {
                // A restart brings capacity with it; the fresh worker also
                // backstops assignments that died in the killed process's
                // transmit queues.
                dep.addWorker("respawn", server, WorkerConfig{},
                              bothRegistries(), links::intraCluster());
            }
        });
    }

    RunOutcome out;
    out.done = dep.runUntilDone(1e9);
    out.traceHash = dep.network().traceHash();
    out.msmMinRmsd = msm->minRmsdAngstrom();
    out.msmGenerations = msm->history().size();
    if (bar->estimate().has_value()) {
        out.barDeltaF = bar->estimate()->totalDeltaF;
        out.barError = bar->estimate()->totalError;
    }
    out.barRounds = bar->rounds();
    const auto m = server.metricsSnapshot();
    out.commandsCompleted = m.server.commandsCompleted;
    out.deadLetters = m.wire.deliveriesFailed;
    for (const auto& w : dep.workers())
        out.deadLetters += w->wireStats().deliveriesFailed;
    out.recoveries = m.recoveries;
    out.walRecords = m.wal.records;
    out.storeSpills = m.store.spills;
    return out;
}

/// The tentpole guarantee, five seeds: a mid-study kill + WAL resurrection
/// is invisible — byte-identical event trace and study outputs.
TEST(Recovery, KillResurrectIsScheduleTransparent) {
    for (std::uint64_t seed : {101u, 102u, 103u, 104u, 105u}) {
        TempDir base(std::to_string(seed) + "_base");
        TempDir crash(std::to_string(seed) + "_crash");
        const auto a = runStudy(seed, Crash::None, base.path.string());
        const auto b = runStudy(seed, Crash::Transparent,
                                crash.path.string());
        ASSERT_TRUE(a.done) << "seed " << seed;
        ASSERT_TRUE(b.done) << "seed " << seed;
        EXPECT_EQ(a.traceHash, b.traceHash) << "seed " << seed;
        EXPECT_EQ(a.msmMinRmsd, b.msmMinRmsd) << "seed " << seed;
        EXPECT_EQ(a.msmGenerations, b.msmGenerations) << "seed " << seed;
        EXPECT_EQ(a.barDeltaF, b.barDeltaF) << "seed " << seed;
        EXPECT_EQ(a.barError, b.barError) << "seed " << seed;
        EXPECT_EQ(a.barRounds, b.barRounds) << "seed " << seed;
        EXPECT_EQ(a.commandsCompleted, b.commandsCompleted)
            << "seed " << seed;
        EXPECT_EQ(a.deadLetters, 0u) << "seed " << seed;
        EXPECT_EQ(b.deadLetters, 0u) << "seed " << seed;
        EXPECT_EQ(a.recoveries, 0u);
        EXPECT_EQ(b.recoveries, 1u) << "seed " << seed;
        EXPECT_GT(b.walRecords, 0u);
        // The tiered store actually tiered (the cap was chosen to force
        // spills with these studies' checkpoint volume).
        EXPECT_GT(b.storeSpills, 0u) << "seed " << seed;
    }
}

/// Harsher variant: the crash also wipes the endpoint's volatile wire
/// state (retransmit table, queued envelopes, dedup window) — messages in
/// flight at the kill die. The studies must still complete with zero dead
/// letters; the trace legitimately diverges.
TEST(Recovery, SurvivesFullProcessLoss) {
    for (std::uint64_t seed : {201u, 202u}) {
        TempDir tmp(std::to_string(seed) + "_loss");
        const auto r = runStudy(seed, Crash::FullLoss, tmp.path.string());
        ASSERT_TRUE(r.done) << "seed " << seed;
        EXPECT_EQ(r.deadLetters, 0u) << "seed " << seed;
        EXPECT_EQ(r.recoveries, 1u) << "seed " << seed;
        EXPECT_GT(r.commandsCompleted, 0u);
    }
}

/// Repeated resurrection: several crashes in one study still converge.
TEST(Recovery, SurvivesRepeatedCrashes) {
    const std::uint64_t seed = 301;
    TempDir tmp("repeat");
    Deployment dep(seed);
    ServerConfig sc;
    sc.durability.walEnabled = true;
    sc.durability.walDir = tmp.path.string();
    sc.durability.snapshotEveryRecords = 100;
    auto& server = dep.addServer("s0", sc);
    for (int i = 0; i < 2; ++i)
        dep.addWorker("w" + std::to_string(i), server, WorkerConfig{},
                      bothRegistries(), links::intraCluster());
    // The MSM study runs for hundreds of sim-seconds — all three crash
    // points land mid-flight (a BAR-only study would finish first).
    auto msmCtrl = std::make_unique<MsmController>(msmParams(seed));
    auto* msm = msmCtrl.get();
    server.createProject("msm", std::move(msmCtrl));
    for (double t : {23.13, 61.77, 107.03})
        dep.loop().schedule(t, [&server] { server.recoverFromWal(); });
    ASSERT_TRUE(dep.runUntilDone(1e9));
    EXPECT_EQ(server.metricsSnapshot().recoveries, 3u);
    EXPECT_EQ(msm->history().size(), 2u);
}

/// The WAL-disabled default is unchanged seed behavior: no log, no store
/// spills unless a cap is set, and metrics report zeroes.
TEST(Recovery, WalDisabledByDefault) {
    Deployment dep(7);
    auto& server = dep.addServer("s0");
    dep.addWorker("w0", server, WorkerConfig{}, bothRegistries(),
                  links::intraCluster());
    auto barCtrl = std::make_unique<BarController>(barParams(7));
    server.createProject("bar", std::move(barCtrl));
    ASSERT_TRUE(dep.runUntilDone(1e9));
    const auto m = server.metricsSnapshot();
    EXPECT_EQ(m.wal.records, 0u);
    EXPECT_EQ(m.store.spills, 0u);
    EXPECT_EQ(m.recoveries, 0u);
    EXPECT_EQ(server.wal(), nullptr);
}

/// Satellite 1: the checkpoint cache is LRU-bounded through the segment
/// store — worker churn streams checkpoints through a tiny RAM tier, the
/// cache's hot footprint stays under the cap, and the hit/miss/spill
/// counters surface through metricsSnapshot().
TEST(Recovery, CheckpointCacheIsBoundedByStoreCap) {
    TempDir tmp("cache");
    Deployment dep(11);
    ServerConfig sc;
    sc.heartbeatInterval = 30.0;
    sc.durability.walEnabled = true;
    sc.durability.walDir = tmp.path.string();
    sc.durability.storeRamBytes = 16 * 1024;
    auto& server = dep.addServer("s0", sc);

    MsmControllerParams mp = msmParams(11);
    mp.maxGenerations = 1;
    mp.segmentSteps = 2000; // 400 s per command at 0.2 s/step
    ExecutableRegistry slowReg;
    slowReg.add("mdrun", makeMdrunExecutable(linearDurationModel(0.2)));
    auto ctrl = std::make_unique<MsmController>(mp);
    server.createProject("churn", std::move(ctrl));

    WorkerConfig wc;
    wc.heartbeatInterval = 30.0;
    for (int w = 0; w < 3; ++w) {
        ExecutableRegistry reg;
        reg.add("mdrun", makeMdrunExecutable(linearDurationModel(0.2)));
        auto& worker = dep.addWorker("w" + std::to_string(w), server, wc,
                                     std::move(reg),
                                     links::intraCluster());
        worker.failAfter(150.0 * (1.0 + 0.3 * w));
    }
    bool done = false;
    for (int wave = 0; wave < 40 && !done; ++wave) {
        done = dep.runUntilDone(dep.loop().now() + 400.0);
        if (!done) {
            ExecutableRegistry reg;
            reg.add("mdrun",
                    makeMdrunExecutable(linearDurationModel(0.2)));
            auto& w = dep.addWorker("wave" + std::to_string(wave), server,
                                    wc, std::move(reg),
                                    links::intraCluster());
            if (wave < 6) w.failAfter(150.0);
        }
    }
    ASSERT_TRUE(done);
    const auto m = server.metricsSnapshot();
    EXPECT_GT(m.server.workersFailed, 0u);
    // Checkpoints streamed through the cache; the RAM tier never grew
    // past the cap and the overflow went cold.
    EXPECT_GT(m.store.puts, 0u);
    EXPECT_LE(m.store.ramBytesUsed, sc.durability.storeRamBytes);
    EXPECT_GT(m.store.spills, 0u);
    EXPECT_GT(m.store.hits + m.store.misses, 0u);
}

} // namespace
} // namespace cop::core
