#include "msm/adaptive.hpp"

#include <gtest/gtest.h>

namespace cop::msm {
namespace {

DenseMatrix countsWithTotals(const std::vector<double>& outCounts) {
    DenseMatrix c(outCounts.size(), outCounts.size());
    for (std::size_t i = 0; i < outCounts.size(); ++i)
        c(i, (i + 1) % outCounts.size()) = outCounts[i];
    return c;
}

TEST(Adaptive, EvenWeightingIsUniformOverObserved) {
    const auto counts = countsWithTotals({10, 1, 100, 5});
    AdaptiveParams p;
    p.scheme = WeightingScheme::Even;
    p.totalSeeds = 8;
    const auto plan =
        planAdaptiveSampling(counts, {true, true, true, true}, p);
    EXPECT_EQ(plan.totalSeeds(), 8);
    for (int s : plan.seedsPerState) EXPECT_EQ(s, 2);
}

TEST(Adaptive, UnobservedStatesGetNothing) {
    const auto counts = countsWithTotals({10, 1, 100, 5});
    AdaptiveParams p;
    p.scheme = WeightingScheme::Even;
    p.totalSeeds = 9;
    const auto plan =
        planAdaptiveSampling(counts, {true, false, true, false}, p);
    EXPECT_EQ(plan.totalSeeds(), 9);
    EXPECT_EQ(plan.seedsPerState[1], 0);
    EXPECT_EQ(plan.seedsPerState[3], 0);
}

TEST(Adaptive, AdaptiveWeightingFavorsUndersampledStates) {
    // State 1 has almost no counts; it should receive the most seeds
    // (paper §3.2: "weights the number of trajectories started from each
    // cluster by the uncertainty in the transitions").
    const auto counts = countsWithTotals({500, 1, 500, 500});
    AdaptiveParams p;
    p.scheme = WeightingScheme::Adaptive;
    p.totalSeeds = 20;
    const auto plan =
        planAdaptiveSampling(counts, {true, true, true, true}, p);
    EXPECT_EQ(plan.totalSeeds(), 20);
    EXPECT_GT(plan.seedsPerState[1], plan.seedsPerState[0]);
    EXPECT_GT(plan.seedsPerState[1], 10);
}

TEST(Adaptive, WeightsAreInverseCounts) {
    const auto counts = countsWithTotals({9, 0, 4});
    const auto w = adaptiveWeights(counts, {true, true, true});
    EXPECT_DOUBLE_EQ(w[0], 1.0 / 10.0);
    EXPECT_DOUBLE_EQ(w[1], 1.0);
    EXPECT_DOUBLE_EQ(w[2], 1.0 / 5.0);
}

TEST(Adaptive, ZeroSeedsProducesEmptyPlan) {
    const auto counts = countsWithTotals({1, 1});
    AdaptiveParams p;
    p.totalSeeds = 0;
    const auto plan = planAdaptiveSampling(counts, {true, true}, p);
    EXPECT_EQ(plan.totalSeeds(), 0);
}

TEST(Adaptive, NoObservedStatesProducesEmptyPlan) {
    const auto counts = countsWithTotals({1, 1});
    AdaptiveParams p;
    p.totalSeeds = 5;
    const auto plan = planAdaptiveSampling(counts, {false, false}, p);
    EXPECT_EQ(plan.totalSeeds(), 0);
}

TEST(Adaptive, ExactTotalForAwkwardSplits) {
    const auto counts = countsWithTotals({3, 3, 3});
    AdaptiveParams p;
    p.scheme = WeightingScheme::Even;
    p.totalSeeds = 7; // does not divide evenly by 3
    const auto plan = planAdaptiveSampling(counts, {true, true, true}, p);
    EXPECT_EQ(plan.totalSeeds(), 7);
    for (int s : plan.seedsPerState) {
        EXPECT_GE(s, 2);
        EXPECT_LE(s, 3);
    }
}

TEST(Adaptive, DeterministicForFixedSeed) {
    const auto counts = countsWithTotals({5, 2, 8, 1, 9});
    AdaptiveParams p;
    p.totalSeeds = 11;
    p.seed = 77;
    const std::vector<bool> obs(5, true);
    const auto a = planAdaptiveSampling(counts, obs, p);
    const auto b = planAdaptiveSampling(counts, obs, p);
    EXPECT_EQ(a.seedsPerState, b.seedsPerState);
}

TEST(Adaptive, RejectsMismatchedSizes) {
    const auto counts = countsWithTotals({1, 1});
    AdaptiveParams p;
    p.totalSeeds = 1;
    EXPECT_THROW(planAdaptiveSampling(counts, {true}, p),
                 cop::InvalidArgument);
}

} // namespace
} // namespace cop::msm
