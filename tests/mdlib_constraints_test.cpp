// SHAKE/RATTLE constraints and slab domain decomposition.

#include <set>

#include <gtest/gtest.h>

#include "mdlib/constraints.hpp"
#include "mdlib/decomposition.hpp"
#include "mdlib/integrators.hpp"
#include "mdlib/proteins.hpp"
#include "util/random.hpp"

namespace cop::md {
namespace {

TEST(Shake, RestoresBondLengthsAfterPerturbation) {
    const auto model = hairpinGoModel();
    const auto shake = ShakeConstraints::fromBonds(model.topology);
    cop::Rng rng(3);
    auto moved = model.native;
    for (auto& p : moved) p += rng.gaussianVec3(0.05);
    EXPECT_GT(shake.maxViolation(moved), 1e-3);
    shake.apply(model.topology, model.native, moved);
    EXPECT_LE(shake.maxViolation(moved), 1e-7);
}

TEST(Shake, LeavesSatisfiedConfigurationAlone) {
    const auto model = hairpinGoModel();
    const auto shake = ShakeConstraints::fromBonds(model.topology);
    auto pos = model.native;
    shake.apply(model.topology, model.native, pos);
    for (std::size_t i = 0; i < pos.size(); ++i)
        EXPECT_NEAR(distance(pos[i], model.native[i]), 0.0, 1e-12);
}

TEST(Shake, ConservesMomentumDuringCorrection) {
    // SHAKE corrections are internal forces: COM must not move (equal
    // masses here).
    const auto model = hairpinGoModel();
    const auto shake = ShakeConstraints::fromBonds(model.topology);
    cop::Rng rng(7);
    auto moved = model.native;
    for (auto& p : moved) p += rng.gaussianVec3(0.03);
    Vec3 comBefore{};
    for (const auto& p : moved) comBefore += p;
    shake.apply(model.topology, model.native, moved);
    Vec3 comAfter{};
    for (const auto& p : moved) comAfter += p;
    EXPECT_NEAR(norm(comAfter - comBefore) / double(moved.size()), 0.0,
                1e-10);
}

TEST(Rattle, RemovesRelativeVelocityAlongBonds) {
    const auto model = hairpinGoModel();
    const auto shake = ShakeConstraints::fromBonds(model.topology);
    cop::Rng rng(5);
    State state;
    state.resize(model.numResidues());
    state.positions = model.native;
    assignVelocities(model.topology, state, 1.0, rng);
    shake.applyVelocities(model.topology, state.positions,
                          state.velocities);
    for (const auto& c : shake.constraints()) {
        const Vec3 d = state.positions[std::size_t(c.i)] -
                       state.positions[std::size_t(c.j)];
        const Vec3 dv = state.velocities[std::size_t(c.i)] -
                        state.velocities[std::size_t(c.j)];
        EXPECT_NEAR(dot(d, dv), 0.0, 1e-8);
    }
}

TEST(Shake, MassWeightingMovesLightParticleMore) {
    Topology top;
    top.addParticle(1.0);
    top.addParticle(10.0);
    top.addBond({0, 1, 1.0, 1.0});
    top.finalize();
    ShakeConstraints shake({{0, 1, 1.0}});
    const std::vector<Vec3> ref{{0, 0, 0}, {1, 0, 0}};
    std::vector<Vec3> moved{{-0.1, 0, 0}, {1.1, 0, 0}}; // stretched to 1.2
    shake.apply(top, ref, moved);
    EXPECT_NEAR(distance(moved[0], moved[1]), 1.0, 1e-7);
    // The light particle absorbed most of the correction.
    EXPECT_GT(norm(moved[0] - Vec3{-0.1, 0, 0}),
              5.0 * norm(moved[1] - Vec3{1.1, 0, 0}));
}

TEST(Shake, RejectsBadConstraints) {
    EXPECT_THROW(ShakeConstraints({{0, 0, 1.0}}), cop::InvalidArgument);
    EXPECT_THROW(ShakeConstraints({{0, 1, -1.0}}), cop::InvalidArgument);
}

class SlabCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SlabCounts, PartitionIsCompleteAndDisjoint) {
    const std::size_t k = GetParam();
    const Box box = Box::cubic(20.0);
    cop::Rng rng(11);
    std::vector<Vec3> pos;
    for (int i = 0; i < 500; ++i)
        pos.push_back({rng.uniform(0, 20), rng.uniform(0, 20),
                       rng.uniform(0, 20)});
    SlabDecomposition dd(box, k, 2.5);
    dd.decompose(pos);

    std::set<int> seen;
    for (const auto& d : dd.domains())
        for (int p : d.owned) {
            EXPECT_TRUE(seen.insert(p).second) << "particle owned twice";
        }
    EXPECT_EQ(seen.size(), pos.size());
    EXPECT_EQ(dd.stats().totalOwned, pos.size());
}

INSTANTIATE_TEST_SUITE_P(Counts, SlabCounts,
                         ::testing::Values(1, 2, 4, 8));

TEST(SlabDecomposition, HaloCoversAllCrossBoundaryPairs) {
    const Box box = Box::cubic(16.0);
    const double cutoff = 2.0;
    cop::Rng rng(13);
    std::vector<Vec3> pos;
    for (int i = 0; i < 400; ++i)
        pos.push_back({rng.uniform(0, 16), rng.uniform(0, 16),
                       rng.uniform(0, 16)});
    SlabDecomposition dd(box, 4, cutoff);
    dd.decompose(pos);

    // Every pair within the cutoff must be computable by some domain:
    // both particles visible there (owned+halo).
    for (std::size_t i = 0; i < pos.size(); ++i) {
        for (std::size_t j = i + 1; j < pos.size(); ++j) {
            if (norm2(box.minimumImage(pos[i], pos[j])) > cutoff * cutoff)
                continue;
            bool covered = false;
            for (const auto& d : dd.domains()) {
                auto visible = [&](std::size_t p) {
                    return std::find(d.owned.begin(), d.owned.end(),
                                     int(p)) != d.owned.end() ||
                           std::find(d.halo.begin(), d.halo.end(),
                                     int(p)) != d.halo.end();
                };
                if (visible(i) && visible(j)) {
                    covered = true;
                    break;
                }
            }
            EXPECT_TRUE(covered) << "pair " << i << "," << j;
        }
    }
}

TEST(SlabDecomposition, CommunicationScalesWithDomainCount) {
    const Box box = Box::cubic(32.0);
    cop::Rng rng(17);
    std::vector<Vec3> pos;
    for (int i = 0; i < 2000; ++i)
        pos.push_back({rng.uniform(0, 32), rng.uniform(0, 32),
                       rng.uniform(0, 32)});
    SlabDecomposition dd2(box, 2, 2.0);
    SlabDecomposition dd8(box, 8, 2.0);
    dd2.decompose(pos);
    dd8.decompose(pos);
    // More slabs -> more boundary surface -> more halo traffic.
    EXPECT_GT(dd8.stats().bytesPerStep, 2 * dd2.stats().bytesPerStep);
    EXPECT_GT(dd8.requiredBandwidth(1000.0),
              dd2.requiredBandwidth(1000.0));
}

TEST(SlabDecomposition, SingleDomainHasNoHalo) {
    const Box box = Box::cubic(10.0);
    SlabDecomposition dd(box, 1, 2.0);
    dd.decompose({{1, 1, 1}, {5, 5, 5}});
    EXPECT_EQ(dd.stats().totalHalo, 0u);
    EXPECT_EQ(dd.stats().bytesPerStep, 0u);
}

TEST(SlabDecomposition, RejectsBadGeometry) {
    EXPECT_THROW(SlabDecomposition(Box::open(), 2, 1.0),
                 cop::InvalidArgument);
    // Slabs thinner than the cutoff are refused.
    EXPECT_THROW(SlabDecomposition(Box::cubic(4.0), 8, 1.0),
                 cop::InvalidArgument);
}

} // namespace
} // namespace cop::md
