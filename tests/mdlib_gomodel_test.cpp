// Gō-model builder and built-in protein structures.

#include <set>

#include <gtest/gtest.h>

#include "mdlib/forcefield.hpp"
#include "mdlib/gomodel.hpp"
#include "mdlib/observables.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/units.hpp"

namespace cop::md {
namespace {

TEST(GoModel, NativeIsStationaryPoint) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    std::vector<Vec3> forces;
    ff.compute(model.native, forces);
    // Bonded and contact terms vanish exactly; only weak repulsive tails
    // beyond the contact cutoff contribute.
    for (const auto& f : forces) EXPECT_LT(norm(f), 0.2);
}

TEST(GoModel, BondsAngleDihedralCountsForChain) {
    const auto model = buildGoModel(extendedChain(10));
    EXPECT_EQ(model.topology.bonds().size(), 9u);
    EXPECT_EQ(model.topology.angles().size(), 8u);
    EXPECT_EQ(model.topology.dihedrals().size(), 7u);
}

TEST(GoModel, ContactsRespectSequenceSeparationAndCutoff) {
    const auto model = villinGoModel();
    for (const auto& c : model.topology.contacts()) {
        EXPECT_GE(std::abs(c.i - c.j), model.params.minSequenceSeparation);
        EXPECT_LT(c.r0, model.params.contactCutoff);
        const double actual = distance(model.native[std::size_t(c.i)],
                                       model.native[std::size_t(c.j)]);
        EXPECT_NEAR(c.r0, actual, 1e-12);
    }
}

TEST(GoModel, RejectsTinyChains) {
    EXPECT_THROW(buildGoModel({{0, 0, 0}, {1, 0, 0}}), cop::InvalidArgument);
}

TEST(Villin, HasThirtyFiveResiduesAndReasonableGeometry) {
    const auto native = villinNativeStructure();
    ASSERT_EQ(native.size(), 35u);
    // Consecutive Calpha distances ~1 sigma (3.8 A).
    for (std::size_t i = 0; i + 1 < native.size(); ++i) {
        const double d = distance(native[i], native[i + 1]);
        EXPECT_GT(d, 0.6) << "residue " << i;
        EXPECT_LT(d, 1.5) << "residue " << i;
    }
    // No steric clashes between non-neighbours.
    for (std::size_t i = 0; i < native.size(); ++i)
        for (std::size_t j = i + 2; j < native.size(); ++j)
            EXPECT_GT(distance(native[i], native[j]), 0.7)
                << i << "," << j;
}

TEST(Villin, IsCompactBundle) {
    const auto native = villinNativeStructure();
    // A folded 35-residue bundle should have Rg ~ 10 A (2.6 sigma); an
    // extended chain is ~3.5x larger.
    const double rgNative = radiusOfGyration(native);
    const double rgExtended = radiusOfGyration(extendedChain(35));
    EXPECT_LT(rgNative, 2.6);
    EXPECT_GT(rgExtended, 2.0 * rgNative);
}

TEST(Villin, HasRichContactMap) {
    const auto model = villinGoModel();
    EXPECT_GE(model.numContacts(), 60u);
    // Contacts must include inter-helix pairs (|i-j| > 12), not just
    // intra-helix i,i+3/i,i+4 pairs — otherwise it is not a bundle.
    std::size_t interHelix = 0;
    for (const auto& c : model.topology.contacts())
        if (std::abs(c.i - c.j) > 12) ++interHelix;
    EXPECT_GE(interHelix, 10u);
}

TEST(Hairpin, GeometryAndContacts) {
    const auto native = hairpinNativeStructure();
    ASSERT_EQ(native.size(), 16u);
    for (std::size_t i = 0; i + 1 < native.size(); ++i) {
        const double d = distance(native[i], native[i + 1]);
        EXPECT_GT(d, 0.5);
        EXPECT_LT(d, 1.6);
    }
    const auto model = hairpinGoModel();
    EXPECT_GE(model.numContacts(), 8u);
    // Cross-strand contacts (|i-j| >= 7) must exist.
    std::size_t cross = 0;
    for (const auto& c : model.topology.contacts())
        if (std::abs(c.i - c.j) >= 7) ++cross;
    EXPECT_GE(cross, 4u);
}

TEST(IdealHelix, RiseAndSpacing) {
    const auto helix = idealHelix(12, {0, 0, 0}, {0, 0, 1});
    for (std::size_t i = 0; i + 1 < helix.size(); ++i) {
        EXPECT_NEAR(distance(helix[i], helix[i + 1]), 1.0, 0.05);
        EXPECT_NEAR(helix[i + 1].z - helix[i].z, 1.5 / 3.8, 1e-9);
    }
    // i, i+4 spacing in an alpha-helix is ~6.2 A = 1.63 sigma.
    EXPECT_NEAR(distance(helix[0], helix[4]), 6.2 / 3.8, 0.15);
}

TEST(IdealHelix, ArbitraryAxis) {
    const Vec3 axis = normalized(Vec3{1, 1, 1});
    const auto helix = idealHelix(8, {1, 2, 3}, axis);
    // Projections on the axis advance by the rise.
    for (std::size_t i = 0; i + 1 < helix.size(); ++i)
        EXPECT_NEAR(dot(helix[i + 1] - helix[i], axis), 1.5 / 3.8, 1e-9);
}

TEST(UnfoldedConformations, DistinctAndFarFromNative) {
    const auto model = villinGoModel();
    const auto confs = makeUnfoldedConformations(model, 4, 2024);
    ASSERT_EQ(confs.size(), 4u);
    for (const auto& c : confs) {
        EXPECT_EQ(c.size(), model.numResidues());
        EXPECT_GT(toAngstrom(rmsd(model.native, c)), 5.0);
    }
    for (std::size_t i = 0; i < confs.size(); ++i)
        for (std::size_t j = i + 1; j < confs.size(); ++j)
            EXPECT_GT(toAngstrom(rmsd(confs[i], confs[j])), 1.0);
}

TEST(UnfoldedConformations, DeterministicInSeed) {
    const auto model = hairpinGoModel();
    const auto a = makeUnfoldedConformations(model, 2, 5);
    const auto b = makeUnfoldedConformations(model, 2, 5);
    for (std::size_t c = 0; c < a.size(); ++c)
        for (std::size_t i = 0; i < a[c].size(); ++i)
            EXPECT_EQ(a[c][i], b[c][i]);
}

TEST(Units, StepNanosecondMapping) {
    EXPECT_DOUBLE_EQ(stepsToNs(kSegmentSteps), 50.0);
    EXPECT_DOUBLE_EQ(nsToSteps(50.0), double(kSegmentSteps));
    EXPECT_DOUBLE_EQ(toAngstrom(1.0), 3.8);
}

} // namespace
} // namespace cop::md
