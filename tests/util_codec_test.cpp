// Frame codec for the tiered store and WAL: round-trips, the XOR/delta
// pre-filter, stored fallback, and hostile-input rejection.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "util/codec.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cop::util {
namespace {

std::vector<std::uint8_t> randomBytes(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) b = std::uint8_t(rng.next());
    return out;
}

/// Bytes shaped like a simulation checkpoint: slowly-varying f64 position
/// triplets — the workload the DeltaXor24 pre-filter exists for.
std::vector<std::uint8_t> trajectoryLikeBytes(std::size_t atoms,
                                              std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> vals;
    vals.reserve(atoms * 3);
    double base = 1.0;
    for (std::size_t i = 0; i < atoms * 3; ++i) {
        base += 1e-4 * (rng.uniform() - 0.5);
        vals.push_back(base);
    }
    std::vector<std::uint8_t> out(vals.size() * sizeof(double));
    std::memcpy(out.data(), vals.data(), out.size());
    return out;
}

TEST(Codec, RoundTripsArbitrarySizes) {
    for (std::size_t n : {std::size_t(0), std::size_t(1), std::size_t(7),
                          std::size_t(64), std::size_t(1000),
                          std::size_t(65536)}) {
        const auto raw = randomBytes(n, 100 + n);
        const auto enc = encode(raw);
        EXPECT_EQ(decode(enc.frame, n + 1), raw) << "size " << n;
    }
}

TEST(Codec, CompressesRepetitiveInput) {
    std::vector<std::uint8_t> raw(100000, 0);
    for (std::size_t i = 0; i < raw.size(); ++i) raw[i] = i % 16;
    const auto enc = encode(raw);
    EXPECT_EQ(enc.method, CodecMethod::Lz);
    EXPECT_LT(enc.frame.size(), raw.size() / 4);
    EXPECT_EQ(decode(enc.frame, raw.size()), raw);
}

TEST(Codec, DeltaFilterHelpsTrajectoryBytes) {
    const auto raw = trajectoryLikeBytes(500, 7);
    ASSERT_EQ(raw.size() % 24, 0u);
    const auto filtered = encode(raw); // autoFilter picks DeltaXor24
    EXPECT_EQ(filtered.filter, CodecFilter::DeltaXor24);
    const auto unfiltered = encode(raw, CodecFilter::None, false);
    // The filter is the point: without it the doubles barely compress.
    EXPECT_LT(filtered.frame.size(), unfiltered.frame.size());
    EXPECT_EQ(decode(filtered.frame, raw.size()), raw);
    EXPECT_EQ(decode(unfiltered.frame, raw.size()), raw);
}

TEST(Codec, StoredFallbackOnIncompressibleInput) {
    const auto raw = randomBytes(4096, 3); // random: LZ cannot shrink it
    const auto enc = encode(raw, CodecFilter::None, false);
    EXPECT_EQ(enc.method, CodecMethod::Stored);
    EXPECT_LT(enc.frame.size(), raw.size() + 64); // header-only overhead
    EXPECT_EQ(decode(enc.frame, raw.size()), raw);
}

TEST(Codec, FrameRawSizeMatchesWithoutDecoding) {
    const auto raw = randomBytes(1234, 9);
    const auto enc = encode(raw);
    EXPECT_EQ(frameRawSize(enc.frame, 1u << 20), raw.size());
    EXPECT_THROW(frameRawSize(enc.frame, 100), cop::IoError); // over cap
}

TEST(Codec, RejectsHostileFrames) {
    const auto raw = randomBytes(256, 5);
    const auto enc = encode(raw);
    const std::size_t cap = 1u << 20;

    // Truncations at every prefix must throw, never crash or misdecode.
    for (std::size_t cut = 0; cut < enc.frame.size(); ++cut) {
        std::vector<std::uint8_t> trunc(enc.frame.begin(),
                                        enc.frame.begin() + cut);
        EXPECT_THROW(decode(trunc, cap), cop::IoError) << "cut " << cut;
    }
    // Trailing garbage is rejected (no silent partial decode).
    auto trailing = enc.frame;
    trailing.push_back(0xAB);
    EXPECT_THROW(decode(trailing, cap), cop::IoError);
    // A flipped payload byte fails the CRC.
    auto corrupt = enc.frame;
    corrupt.back() ^= 0xFF;
    EXPECT_THROW(decode(corrupt, cap), cop::IoError);
    // A raw-size past the allocation cap is refused before allocating.
    EXPECT_THROW(decode(enc.frame, raw.size() - 1), cop::IoError);
    // Bad magic.
    auto badMagic = enc.frame;
    badMagic[0] ^= 0xFF;
    EXPECT_THROW(decode(badMagic, cap), cop::IoError);
}

TEST(Codec, Crc32MatchesKnownVector) {
    // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
    const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8',
                                '9'};
    EXPECT_EQ(crc32(msg), 0xCBF43926u);
}

} // namespace
} // namespace cop::util
