// Table-driven malformed-envelope coverage: every framework payload type is
// encoded once, then attacked — truncation at every byte boundary, trailing
// garbage, hostile length prefixes, bad magic / version headers — and must
// fail with IoError (never bad_alloc, never a silent partial decode). Runs
// under plain ctest so the decode hardening does not depend on the fuzzer
// CI job; the committed fuzz corpus replays the same byte shapes.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "core/envelope.hpp"
#include "net/event_loop.hpp"
#include "net/overlay.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace cop::core::wire {
namespace {

struct WireCase {
    std::string name;
    net::MessageType type;
    std::vector<std::uint8_t> bytes;
};

CommandSpec sampleSpec() {
    CommandSpec c;
    c.id = 42;
    c.projectId = 7;
    c.projectServer = 3;
    c.executable = "mdrun";
    c.steps = 50000;
    c.preferredCores = 4;
    c.priority = 2;
    c.trajectoryId = 5;
    c.generation = 1;
    c.input = SharedBytes{1, 2, 3, 4};
    return c;
}

CommandResult sampleResult() {
    CommandResult r;
    r.commandId = 42;
    r.projectId = 7;
    r.trajectoryId = 5;
    r.generation = 1;
    r.success = true;
    r.error = "";
    r.output = {9, 8, 7};
    r.simSeconds = 1.5;
    return r;
}

/// One representative, non-trivial encoding per payload type (all vectors
/// non-empty so the truncation sweep crosses every field kind).
std::vector<WireCase> allPayloadCases() {
    std::vector<WireCase> cases;

    WorkloadRequestPayload req;
    req.worker = 9;
    req.platform = "linux-x86_64";
    req.cores = 8;
    req.executables = {"mdrun", "fe_sample"};
    req.visited = {1, 2, 3};
    cases.push_back({"WorkloadRequest", req.kType, req.encode()});

    WorkloadAssignPayload assign;
    assign.commands = {sampleSpec()};
    cases.push_back({"WorkloadAssign", assign.kType, assign.encode()});

    HeartbeatPayload hb;
    hb.worker = 9;
    hb.running = {42, 43};
    hb.projectServers = {3, 3};
    cases.push_back({"Heartbeat", hb.kType, hb.encode()});

    CheckpointPayload cp;
    cp.commandId = 42;
    cp.projectId = 7;
    cp.projectServer = 3;
    cp.blob = SharedBytes{5, 6, 7, 8, 9};
    cases.push_back({"Checkpoint", cp.kType, cp.encode()});

    WorkerFailedPayload wf;
    wf.worker = 9;
    wf.commands = {42, 43};
    wf.checkpoints = {SharedBytes{1, 2}, SharedBytes{}};
    cases.push_back({"WorkerFailed", wf.kType, wf.encode()});

    CommandOutputPayload out;
    out.result = sampleResult();
    out.projectServer = 3;
    cases.push_back({"CommandOutput", out.kType, out.encode()});

    LeaseRenewPayload lr;
    lr.worker = 9;
    lr.commands = {42, 43, 44};
    cases.push_back({"LeaseRenew", lr.kType, lr.encode()});

    NoWorkPayload nw;
    nw.worker = 9;
    cases.push_back({"NoWork", nw.kType, nw.encode()});

    ClientRequestPayload creq;
    creq.projectId = 7;
    creq.command = "status";
    cases.push_back({"ClientRequest", creq.kType, creq.encode()});

    ClientResponsePayload cresp;
    cresp.text = "9 commands pending";
    cases.push_back({"ClientResponse", cresp.kType, cresp.encode()});

    HeartbeatSummaryPayload hs;
    hs.edge = 4;
    hs.workers = {9, 10};
    hs.counts = {2, 1};
    hs.commands = {42, 43, 44};
    cases.push_back({"HeartbeatSummary", hs.kType, hs.encode()});

    AckPayload ack;
    ack.ackedMessageId = 1234;
    cases.push_back({"Ack", ack.kType, ack.encode()});

    BatchPayload batch;
    BatchEntry be;
    be.type = net::MessageType::Heartbeat;
    be.messageId = 77;
    be.requireAck = false;
    HeartbeatPayload bhb;
    bhb.worker = 9;
    bhb.running = {42};
    bhb.projectServers = {3};
    be.payload = bhb.encode();
    BatchEntry be2;
    be2.type = net::MessageType::Ack;
    be2.messageId = 78;
    be2.requireAck = false;
    be2.payload = ack.encode();
    batch.entries = {std::move(be), std::move(be2)};
    cases.push_back({"Batch", batch.kType, batch.encode()});

    return cases;
}

net::Message messageWith(net::MessageType type,
                         std::vector<std::uint8_t> payload) {
    net::Message msg;
    msg.type = type;
    msg.payload = std::move(payload);
    return msg;
}

TEST(WireMalformed, BaselineRoundTripDecodes) {
    for (const auto& c : allPayloadCases()) {
        SCOPED_TRACE(c.name);
        EXPECT_TRUE(decodePayload(messageWith(c.type, c.bytes)).has_value());
        EXPECT_FALSE(c.bytes.empty());
    }
}

TEST(WireMalformed, TruncatedAtEveryByteBoundaryIsRejected) {
    for (const auto& c : allPayloadCases()) {
        for (std::size_t cut = 0; cut < c.bytes.size(); ++cut) {
            SCOPED_TRACE(c.name + " truncated to " + std::to_string(cut) +
                         "/" + std::to_string(c.bytes.size()) + " bytes");
            std::vector<std::uint8_t> prefix(c.bytes.begin(),
                                             c.bytes.begin() + long(cut));
            EXPECT_FALSE(
                decodePayload(messageWith(c.type, std::move(prefix))));
        }
    }
}

TEST(WireMalformed, TrailingBytesAreRejected) {
    for (const auto& c : allPayloadCases()) {
        for (std::size_t extra : {std::size_t(1), std::size_t(8)}) {
            SCOPED_TRACE(c.name + " +" + std::to_string(extra) + " bytes");
            std::vector<std::uint8_t> padded = c.bytes;
            padded.insert(padded.end(), extra, 0x00);
            EXPECT_FALSE(
                decodePayload(messageWith(c.type, std::move(padded))));
        }
    }
}

// A corrupt 64-bit length prefix must be rejected *before* any allocation
// is attempted: IoError, never std::bad_alloc / std::length_error, and no
// multi-GiB reserve() along the way.
TEST(WireMalformed, HugeLengthPrefixThrowsIoErrorBeforeAllocating) {
    const std::uint64_t hostile[] = {
        std::uint64_t(-1),           // 2^64 - 1
        std::uint64_t(1) << 63,      // huge power of two
        (std::uint64_t(1) << 61) + 1 // n * 8 would wrap 64-bit arithmetic
    };
    for (const std::uint64_t n : hostile) {
        SCOPED_TRACE("n = " + std::to_string(n));
        BinaryWriter w;
        w.write(n);
        w.write(std::uint64_t(0xDEADBEEF)); // a few real bytes after it

        EXPECT_THROW(
            { BinaryReader(w.buffer()).readVector<double>(); }, IoError);
        EXPECT_THROW({ BinaryReader(w.buffer()).readVec3Vector(); }, IoError);
        EXPECT_THROW({ BinaryReader(w.buffer()).readString(); }, IoError);
        EXPECT_THROW({ BinaryReader(w.buffer()).readBytes(); }, IoError);
    }
}

TEST(WireMalformed, HugeElementCountInsidePayloadIsRejected) {
    // Corrupt the `running` count inside an otherwise valid heartbeat.
    HeartbeatPayload hb;
    hb.worker = 9;
    hb.running = {42};
    hb.projectServers = {3};
    std::vector<std::uint8_t> bytes = hb.encode();
    const std::uint64_t huge = std::uint64_t(-1);
    std::memcpy(bytes.data() + 4, &huge, sizeof(huge)); // after i32 worker
    EXPECT_THROW(HeartbeatPayload::decode(bytes), IoError);
    EXPECT_FALSE(decodePayload(
        messageWith(net::MessageType::Heartbeat, std::move(bytes))));
}

// --- HeartbeatSummary digests ----------------------------------------------

TEST(WireMalformed, HeartbeatSummaryRoundTripsFieldForField) {
    HeartbeatSummaryPayload hs;
    hs.edge = 4;
    hs.workers = {9, 10, 11};
    hs.counts = {1, 0, 2};
    hs.commands = {42, 43, 44};
    const auto bytes = hs.encode();
    EXPECT_EQ(bytes.size(), hs.encodedSize());
    const auto back = HeartbeatSummaryPayload::decode(bytes);
    EXPECT_EQ(back.edge, hs.edge);
    EXPECT_EQ(back.workers, hs.workers);
    EXPECT_EQ(back.counts, hs.counts);
    EXPECT_EQ(back.commands, hs.commands);
}

TEST(WireMalformed, HeartbeatSummaryRejectsWorkerCountMismatch) {
    // Two workers but only one group count: the per-worker grouping no
    // longer tiles, so the digest must be rejected, not mis-attributed.
    BinaryWriter w;
    w.write(std::int32_t(4));    // edge
    w.write(std::uint64_t(2));   // 2 workers
    w.write(std::int32_t(9));
    w.write(std::int32_t(10));
    w.write(std::uint64_t(1));   // ...but 1 count
    w.write(std::uint32_t(1));
    w.write(std::uint64_t(1));   // 1 command
    w.write(std::uint64_t(42));
    EXPECT_THROW(HeartbeatSummaryPayload::decode(w.buffer()), IoError);
    EXPECT_FALSE(decodePayload(messageWith(
        net::MessageType::HeartbeatSummary,
        {w.buffer().begin(), w.buffer().end()})));
}

TEST(WireMalformed, HeartbeatSummaryRejectsCountsNotTilingCommands) {
    BinaryWriter w;
    w.write(std::int32_t(4));    // edge
    w.write(std::uint64_t(1));   // 1 worker
    w.write(std::int32_t(9));
    w.write(std::uint64_t(1));   // 1 count...
    w.write(std::uint32_t(3));   // ...claiming 3 commands
    w.write(std::uint64_t(2));   // but only 2 present
    w.write(std::uint64_t(42));
    w.write(std::uint64_t(43));
    EXPECT_THROW(HeartbeatSummaryPayload::decode(w.buffer()), IoError);
}

// --- Retry-after hints -----------------------------------------------------

// Both retry-after carriers put the double last on the wire; a hostile
// negative or NaN value must be rejected at decode (a NaN would otherwise
// poison every backoff comparison downstream).
TEST(WireMalformed, RetryAfterRejectsNegativeAndNan) {
    const double hostile[] = {-1.0, -1e300,
                              std::numeric_limits<double>::quiet_NaN()};
    for (const double bad : hostile) {
        SCOPED_TRACE("retryAfter = " + std::to_string(bad));

        NoWorkPayload nw;
        nw.worker = 9;
        nw.retryAfterSeconds = 15.0;
        auto nwBytes = nw.encode();
        std::memcpy(nwBytes.data() + nwBytes.size() - 8, &bad, 8);
        EXPECT_THROW(NoWorkPayload::decode(nwBytes), IoError);

        ClientResponsePayload cr;
        cr.text = "busy";
        cr.accepted = false;
        cr.retryAfterSeconds = 30.0;
        auto crBytes = cr.encode();
        std::memcpy(crBytes.data() + crBytes.size() - 8, &bad, 8);
        EXPECT_THROW(ClientResponsePayload::decode(crBytes), IoError);
    }
}

TEST(WireMalformed, RetryAfterRoundTripsThroughNoWorkAndClientResponse) {
    NoWorkPayload nw;
    nw.worker = 9;
    nw.retryAfterSeconds = 12.5;
    const auto nwBack = NoWorkPayload::decode(nw.encode());
    EXPECT_EQ(nwBack.worker, 9);
    EXPECT_DOUBLE_EQ(nwBack.retryAfterSeconds, 12.5);

    ClientResponsePayload cr;
    cr.text = "busy: over quota";
    cr.accepted = false;
    cr.retryAfterSeconds = 30.0;
    const auto crBack = ClientResponsePayload::decode(cr.encode());
    EXPECT_EQ(crBack.text, cr.text);
    EXPECT_FALSE(crBack.accepted);
    EXPECT_DOUBLE_EQ(crBack.retryAfterSeconds, 30.0);
}

TEST(WireMalformed, BadMagicAndTruncatedHeaderAreRejected) {
    BinaryWriter w;
    w.writeHeader("COPS", 3);
    EXPECT_THROW(
        { BinaryReader(w.buffer()).readHeader("COPX"); }, IoError);

    // Correct magic: the version comes back verbatim for the caller's
    // format-version gate (the pattern every file format here uses).
    EXPECT_EQ(BinaryReader(w.buffer()).readHeader("COPS"), 3u);

    std::vector<std::uint8_t> truncated(w.buffer().begin(),
                                        w.buffer().begin() + 2);
    EXPECT_THROW({ BinaryReader(truncated).readHeader("COPS"); }, IoError);
}

// --- Batch framing ---------------------------------------------------------

TEST(WireMalformed, BatchRoundTripsEmptySingleAndLarge) {
    // Empty batch: legal on the wire (an endpoint never sends one, but the
    // decoder must not choke on it).
    BatchPayload empty;
    const auto emptyBytes = empty.encode();
    EXPECT_EQ(emptyBytes.size(), empty.encodedSize());
    EXPECT_TRUE(BatchPayload::decode(emptyBytes).entries.empty());

    // Single and many entries round-trip field-for-field.
    for (std::size_t n : {std::size_t(1), std::size_t(64)}) {
        BatchPayload batch;
        for (std::size_t i = 0; i < n; ++i) {
            BatchEntry e;
            e.type = i % 2 == 0 ? net::MessageType::Heartbeat
                                : net::MessageType::Ack;
            e.messageId = 1000 + i;
            e.requireAck = i % 3 == 0;
            e.payload.assign(i % 7 + 1, std::uint8_t(i));
            batch.entries.push_back(std::move(e));
        }
        const auto bytes = batch.encode();
        EXPECT_EQ(bytes.size(), batch.encodedSize());
        const auto back = BatchPayload::decode(bytes);
        ASSERT_EQ(back.entries.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(back.entries[i].type, batch.entries[i].type);
            EXPECT_EQ(back.entries[i].messageId, batch.entries[i].messageId);
            EXPECT_EQ(back.entries[i].requireAck, batch.entries[i].requireAck);
            EXPECT_EQ(back.entries[i].payload, batch.entries[i].payload);
        }
    }
}

TEST(WireMalformed, BatchRejectsNestedBatchEntries) {
    // A batch carrying a Batch sub-envelope could recurse on receive;
    // the decoder refuses it outright.
    BatchPayload inner;
    BatchPayload outer;
    BatchEntry e;
    e.type = net::MessageType::Batch;
    e.messageId = 5;
    e.payload = inner.encode();
    outer.entries.push_back(std::move(e));
    const auto bytes = outer.encode();
    EXPECT_THROW(BatchPayload::decode(bytes), IoError);
    EXPECT_FALSE(
        decodePayload(messageWith(net::MessageType::Batch, bytes)));
}

TEST(WireMalformed, BatchRejectsUnknownEntryTypeTag) {
    BatchPayload batch;
    BatchEntry e;
    e.type = net::MessageType::Heartbeat;
    e.messageId = 5;
    e.payload = {1, 2, 3};
    batch.entries.push_back(std::move(e));
    auto bytes = batch.encode();
    bytes[8] = 0xEE; // the entry's type tag, just past the u64 count
    EXPECT_THROW(BatchPayload::decode(bytes), IoError);
}

TEST(WireMalformed, BatchHostileEntryCountIsRejectedBeforeAllocating) {
    // An empty batch whose count field claims 2^64-1 entries: must throw
    // IoError from the count validation, not attempt the allocation.
    BatchPayload batch;
    auto bytes = batch.encode();
    const std::uint64_t huge = std::uint64_t(-1);
    std::memcpy(bytes.data(), &huge, sizeof(huge));
    EXPECT_THROW(BatchPayload::decode(bytes), IoError);
    EXPECT_FALSE(decodePayload(
        messageWith(net::MessageType::Batch, std::move(bytes))));
}

TEST(WireMalformed, EndpointCountsMalformedDropsAndDeliversNothing) {
    net::EventLoop loop;
    net::OverlayNetwork net{loop};
    net::Node a(net, "a", net::KeyPair::generate(1));
    net::Node b(net, "b", net::KeyPair::generate(2));
    a.trust(b.publicKey());
    b.trust(a.publicKey());
    net.connect(a.id(), b.id(), {});

    Endpoint ep(net, b);
    int delivered = 0;
    ep.onEnvelope([&](const Envelope&, const net::Message&) { ++delivered; });

    auto sendRawTo = [&](std::vector<std::uint8_t> payload) {
        net::Message msg;
        msg.type = net::MessageType::Heartbeat;
        msg.source = a.id();
        msg.destination = b.id();
        msg.id = net.nextMessageId();
        msg.payload = std::move(payload);
        net.send(std::move(msg));
        loop.run();
    };

    HeartbeatPayload hb;
    hb.worker = 9;
    hb.running = {42};
    hb.projectServers = {3};

    sendRawTo({0xAB});                      // garbage
    EXPECT_EQ(ep.stats().malformedDropped, 1u);
    EXPECT_EQ(delivered, 0);

    auto padded = hb.encode();
    padded.push_back(0x00);                 // valid payload + trailing byte
    sendRawTo(std::move(padded));
    EXPECT_EQ(ep.stats().malformedDropped, 2u);
    EXPECT_EQ(delivered, 0);

    sendRawTo(hb.encode());                 // well-formed still delivers
    EXPECT_EQ(ep.stats().malformedDropped, 2u);
    EXPECT_EQ(delivered, 1);
}

} // namespace
} // namespace cop::core::wire
