// RDF, MSD/diffusion and RMSF analyses.

#include <gtest/gtest.h>

#include "mdlib/analysis.hpp"
#include "mdlib/integrators.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/simulation.hpp"
#include "util/random.hpp"

namespace cop::md {
namespace {

TEST(Rdf, IdealGasIsFlat) {
    // Uncorrelated random points: g(r) = 1 within noise.
    const Box box = Box::cubic(10.0);
    cop::Rng rng(3);
    Trajectory traj;
    for (int f = 0; f < 20; ++f) {
        std::vector<Vec3> pos;
        for (int i = 0; i < 200; ++i)
            pos.push_back({rng.uniform(0, 10), rng.uniform(0, 10),
                           rng.uniform(0, 10)});
        traj.append(f, f * 1.0, std::move(pos));
    }
    const auto rdf = radialDistribution(traj, box, 4.5, 15);
    for (std::size_t b = 1; b < rdf.g.size(); ++b)
        EXPECT_NEAR(rdf.g[b], 1.0, 0.2) << "bin " << b;
}

TEST(Rdf, LjFluidHasExcludedCoreAndFirstShell) {
    // A thermalized LJ fluid: g ~ 0 inside the core, peaked near r = 1.1,
    // approaching 1 at large r.
    Topology top;
    for (int i = 0; i < 216; ++i) top.addParticle(1.0);
    top.finalize();
    const Box box = Box::cubic(7.2);
    ForceFieldParams fp;
    fp.kind = NonbondedKind::LennardJonesRF;
    fp.cutoff = 2.5;
    ForceField ff(top, box, fp);
    State st;
    st.resize(216);
    int q = 0;
    for (int x = 0; x < 6; ++x)
        for (int y = 0; y < 6; ++y)
            for (int z = 0; z < 6; ++z, ++q)
                st.positions[std::size_t(q)] = {x * 1.2, y * 1.2, z * 1.2};
    IntegratorParams ip;
    ip.kind = IntegratorKind::LangevinBAOAB;
    ip.dt = 0.004;
    ip.temperature = 1.0;
    ip.friction = 1.0;
    Integrator integrator(ff, ip, cop::Rng(5));
    cop::Rng rng(6);
    assignVelocities(top, st, 1.0, rng);
    integrator.run(st, 3000);

    Trajectory traj;
    for (int f = 0; f < 10; ++f) {
        integrator.run(st, 200);
        traj.append(st.step, st.time, st.positions);
    }
    const auto rdf = radialDistribution(traj, box, 3.5, 35);
    // Core exclusion below 0.85 sigma.
    for (std::size_t b = 0; b < rdf.g.size(); ++b)
        if (rdf.r[b] < 0.85) EXPECT_LT(rdf.g[b], 0.1);
    // First-shell peak above 1.5 near r ~ 1.1.
    double peak = 0.0;
    for (std::size_t b = 0; b < rdf.g.size(); ++b)
        if (rdf.r[b] > 0.9 && rdf.r[b] < 1.4) peak = std::max(peak, rdf.g[b]);
    EXPECT_GT(peak, 1.5);
    // Approaches 1 near rMax.
    EXPECT_NEAR(rdf.g.back(), 1.0, 0.25);
}

TEST(Rdf, ValidatesInput) {
    Trajectory traj;
    traj.append(0, 0.0, std::vector<Vec3>{{0, 0, 0}});
    EXPECT_THROW(radialDistribution(traj, Box::open(), 1.0, 10),
                 cop::InvalidArgument);
    EXPECT_THROW(radialDistribution(traj, Box::cubic(4.0), 3.0, 10),
                 cop::InvalidArgument);
}

TEST(Msd, FreeLangevinParticleDiffusesAtEinsteinRate) {
    // Free particle under Langevin dynamics: D = T / (m gamma).
    Topology top(64);
    top.finalize();
    ForceFieldParams fp;
    fp.kind = NonbondedKind::GoRepulsive;
    fp.repEpsilon = 0.0; // switch interactions off: ideal gas
    ForceField ff(top, Box::open(), fp);
    IntegratorParams ip;
    ip.kind = IntegratorKind::LangevinBAOAB;
    ip.dt = 0.01;
    ip.temperature = 1.5;
    ip.friction = 2.0;
    Integrator integrator(ff, ip, cop::Rng(7));
    State st;
    st.resize(64);
    cop::Rng rng(8);
    for (auto& x : st.positions) x = rng.gaussianVec3(1.0);
    assignVelocities(top, st, ip.temperature, rng);

    integrator.run(st, 500); // velocity equilibration
    Trajectory traj;
    for (int f = 0; f < 200; ++f) {
        traj.append(st.step, st.time, st.positions);
        integrator.run(st, 50);
    }
    const double timePerFrame = 50 * ip.dt;
    const double d =
        diffusionCoefficient(traj, 40, timePerFrame, 5);
    const double expected = ip.temperature / ip.friction;
    EXPECT_NEAR(d, expected, 0.25 * expected);
}

TEST(Msd, GrowsMonotonicallyForDiffusion) {
    Topology top(16);
    top.finalize();
    Trajectory traj;
    cop::Rng rng(9);
    std::vector<Vec3> pos(16);
    for (int f = 0; f < 100; ++f) {
        for (auto& x : pos) x += rng.gaussianVec3(0.1); // random walk
        traj.append(f, f * 1.0, pos);
    }
    const auto msd = meanSquaredDisplacement(traj, 30);
    EXPECT_EQ(msd[0], 0.0);
    for (std::size_t k = 2; k <= 30; k += 4)
        EXPECT_GT(msd[k], msd[k - 1] * 0.8);
    // Random walk: MSD(k) ~ 3 * 0.01 * k.
    EXPECT_NEAR(msd[20], 3 * 0.01 * 20, 0.2 * 3 * 0.01 * 20);
}

TEST(Rmsf, TurnsFluctuateMoreThanHelixCores) {
    const auto model = villinGoModel();
    auto sim = Simulation::forGoModel(model, model.native,
                                      villinSimulationConfig(11));
    sim.initializeVelocities();
    sim.run(20000);
    const auto fluct = rmsf(sim.trajectory());
    ASSERT_EQ(fluct.size(), 35u);
    // Chain termini and turn regions (residues 10-12, 22-24) move more
    // than the buried middle of helix 2.
    const double turnAvg = (fluct[10] + fluct[11] + fluct[12] + fluct[22] +
                            fluct[23] + fluct[24]) /
                           6.0;
    const double coreAvg = (fluct[16] + fluct[17] + fluct[18]) / 3.0;
    EXPECT_GT(turnAvg, coreAvg);
    for (double v : fluct) {
        EXPECT_GT(v, 0.0);
        EXPECT_LT(v, 3.0);
    }
}

} // namespace
} // namespace cop::md
