// Free-energy estimators against the analytic harmonic system.

#include <gtest/gtest.h>

#include "fe/bar.hpp"
#include "util/error.hpp"
#include "fe/harmonic.hpp"

namespace cop::fe {
namespace {

TEST(Harmonic, AnalyticDeltaF) {
    // deltaF = (1/2 beta) ln(k1/k0); centers are irrelevant.
    EXPECT_NEAR(harmonicDeltaF({1.0, 0.0}, {4.0, 7.0}, 1.0),
                0.5 * std::log(4.0), 1e-12);
    EXPECT_NEAR(harmonicDeltaF({2.0, 0.0}, {2.0, 5.0}, 1.0), 0.0, 1e-12);
    EXPECT_NEAR(harmonicDeltaF({1.0, 0.0}, {4.0, 0.0}, 2.0),
                0.25 * std::log(4.0), 1e-12);
}

TEST(Harmonic, SamplerMatchesBoltzmannStatistics) {
    cop::Rng rng(1);
    const HarmonicState s{4.0, 1.0};
    // <U> = kT/2 for a 1D harmonic oscillator.
    const auto work = harmonicWorkSamples(s, {4.0, 1.0}, 50000, 1.0, rng);
    for (double w : work) EXPECT_EQ(w, 0.0); // same state: zero work
}

TEST(Harmonic, LambdaChainEndpoints) {
    const auto chain = harmonicLambdaChain({1.0, 0.0}, {3.0, 2.0}, 4);
    ASSERT_EQ(chain.size(), 5u);
    EXPECT_DOUBLE_EQ(chain.front().k, 1.0);
    EXPECT_DOUBLE_EQ(chain.back().k, 3.0);
    EXPECT_DOUBLE_EQ(chain[2].x0, 1.0);
}

TEST(Fep, ExponentialAveragingConvergesForGoodOverlap) {
    cop::Rng rng(2);
    const HarmonicState s0{1.0, 0.0}, s1{1.3, 0.1};
    const auto work = harmonicWorkSamples(s0, s1, 200000, 1.0, rng);
    EXPECT_NEAR(exponentialAveraging(work), harmonicDeltaF(s0, s1, 1.0),
                0.01);
}

TEST(Fep, RejectsEmptyInput) {
    EXPECT_THROW(exponentialAveraging(std::vector<double>{}), cop::InvalidArgument);
}

TEST(Bar, RecoversAnalyticDeltaF) {
    cop::Rng rng(3);
    const HarmonicState s0{1.0, 0.0}, s1{4.0, 0.5};
    const auto fwd = harmonicWorkSamples(s0, s1, 20000, 1.0, rng);
    const auto rev = harmonicWorkSamples(s1, s0, 20000, 1.0, rng);
    const auto r = bar(fwd, rev);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.deltaF, harmonicDeltaF(s0, s1, 1.0),
                4.0 * r.standardError + 0.01);
}

TEST(Bar, ErrorEstimateIsCalibrated) {
    // Repeat BAR over independent sample sets; the spread of estimates
    // should match the reported standard error within a factor ~2.
    const HarmonicState s0{1.0, 0.0}, s1{2.0, 0.4};
    const double exact = harmonicDeltaF(s0, s1, 1.0);
    std::vector<double> errors;
    double reportedSe = 0.0;
    for (int rep = 0; rep < 30; ++rep) {
        cop::Rng rng(100 + rep);
        const auto fwd = harmonicWorkSamples(s0, s1, 2000, 1.0, rng);
        const auto rev = harmonicWorkSamples(s1, s0, 2000, 1.0, rng);
        const auto r = bar(fwd, rev);
        errors.push_back(r.deltaF - exact);
        reportedSe = r.standardError;
    }
    double var = 0.0;
    for (double e : errors) var += e * e;
    const double empirical = std::sqrt(var / errors.size());
    EXPECT_GT(reportedSe, empirical / 2.5);
    EXPECT_LT(reportedSe, empirical * 2.5);
}

TEST(Bar, AsymmetricSampleCounts) {
    cop::Rng rng(5);
    const HarmonicState s0{1.0, 0.0}, s1{3.0, 0.0};
    const auto fwd = harmonicWorkSamples(s0, s1, 30000, 1.0, rng);
    const auto rev = harmonicWorkSamples(s1, s0, 3000, 1.0, rng);
    const auto r = bar(fwd, rev);
    EXPECT_NEAR(r.deltaF, harmonicDeltaF(s0, s1, 1.0),
                4.0 * r.standardError + 0.02);
}

TEST(Bar, DifferentBeta) {
    cop::Rng rng(6);
    const double beta = 2.5;
    const HarmonicState s0{1.0, 0.0}, s1{2.0, 0.2};
    const auto fwd = harmonicWorkSamples(s0, s1, 30000, beta, rng);
    const auto rev = harmonicWorkSamples(s1, s0, 30000, beta, rng);
    BarParams p;
    p.beta = beta;
    const auto r = bar(fwd, rev, p);
    EXPECT_NEAR(r.deltaF, harmonicDeltaF(s0, s1, beta), 0.02);
}

TEST(Bar, BeatsOneSidedFepForPoorOverlap) {
    // Large k ratio: forward-only FEP is biased; BAR stays accurate.
    cop::Rng rng(7);
    const HarmonicState s0{1.0, 0.0}, s1{25.0, 0.0};
    const double exact = harmonicDeltaF(s0, s1, 1.0);
    const auto fwd = harmonicWorkSamples(s0, s1, 5000, 1.0, rng);
    const auto rev = harmonicWorkSamples(s1, s0, 5000, 1.0, rng);
    const double fepErr = std::abs(exponentialAveraging(fwd) - exact);
    const double barErr = std::abs(bar(fwd, rev).deltaF - exact);
    EXPECT_LT(barErr, fepErr);
}

TEST(Bar, RejectsEmptySides) {
    EXPECT_THROW(bar(std::vector<double>{}, std::vector<double>{1.0}), cop::InvalidArgument);
    EXPECT_THROW(bar(std::vector<double>{1.0}, std::vector<double>{}), cop::InvalidArgument);
}

TEST(BarChain, SumsWindowsAndPropagatesError) {
    cop::Rng rng(8);
    const auto chain = harmonicLambdaChain({1.0, 0.0}, {6.0, 1.0}, 5);
    std::vector<std::vector<double>> fwd, rev;
    for (std::size_t w = 0; w + 1 < chain.size(); ++w) {
        fwd.push_back(
            harmonicWorkSamples(chain[w], chain[w + 1], 8000, 1.0, rng));
        rev.push_back(
            harmonicWorkSamples(chain[w + 1], chain[w], 8000, 1.0, rng));
    }
    const auto r = barChain(fwd, rev);
    EXPECT_EQ(r.windows.size(), 5u);
    EXPECT_NEAR(r.totalDeltaF,
                harmonicDeltaF(chain.front(), chain.back(), 1.0),
                4.0 * r.totalError + 0.02);
    double var = 0.0;
    for (const auto& w : r.windows)
        var += w.standardError * w.standardError;
    EXPECT_NEAR(r.totalError, std::sqrt(var), 1e-12);
}

} // namespace
} // namespace cop::fe
