// Envelope coalescing and ack piggybacking (ISSUE 6): per-destination
// transmit queues flush as one Batch frame on count/byte thresholds or the
// Nagle timer; acks ride outgoing batches; a lone envelope keeps its exact
// unbatched wire shape; retransmit/dedup semantics are bit-for-bit those
// of the unbatched endpoint; and flush timers die with the endpoint.

#include <gtest/gtest.h>

#include <vector>

#include "core/copernicus.hpp"
#include "core/envelope.hpp"
#include "net/event_loop.hpp"
#include "net/overlay.hpp"

namespace cop::core::wire {
namespace {

HeartbeatPayload beat(std::uint64_t worker) {
    HeartbeatPayload hb;
    hb.worker = net::NodeId(worker);
    return hb;
}

/// Two trusted, linked nodes with an endpoint each.
struct Pair {
    net::EventLoop loop;
    net::OverlayNetwork net{loop};
    net::Node na{net, "a", net::KeyPair::generate(1)};
    net::Node nb{net, "b", net::KeyPair::generate(2)};
    Endpoint a;
    Endpoint b;

    explicit Pair(BatchPolicy batch = {}, RetryPolicy retry = {})
        : a(net, na, retry, batch), b(net, nb, retry, batch) {
        na.trust(nb.publicKey());
        nb.trust(na.publicKey());
        net.connect(na.id(), nb.id(), {});
    }
};

TEST(OverlayBatch, CountThresholdFlushesOneBatchFrame) {
    Pair p;
    int delivered = 0;
    p.b.onEnvelope([&](const Envelope&, const net::Message&) { ++delivered; });

    const auto n = p.a.batchPolicy().maxEnvelopes;
    for (std::size_t i = 0; i < n; ++i)
        p.a.send(p.nb.id(), beat(i), /*reliable=*/false);
    // The count threshold tripped synchronously: no timer wait needed.
    EXPECT_EQ(p.a.stats().flushOnCount, 1u);
    p.loop.run();

    EXPECT_EQ(delivered, int(n));
    EXPECT_EQ(p.a.stats().batchesSent, 1u);
    EXPECT_EQ(p.a.stats().envelopesBatched, n);
    // Exactly one frame crossed the link, carrying all n envelopes.
    const auto stats = p.net.totalStats();
    EXPECT_EQ(stats.messages, 1u);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.batchedEnvelopes, n);
    EXPECT_EQ(stats.singletons, 0u);
}

TEST(OverlayBatch, ByteThresholdFlushesBeforeCount) {
    BatchPolicy policy;
    policy.maxBytes = 256;
    Pair p(policy);
    int delivered = 0;
    p.b.onEnvelope([&](const Envelope&, const net::Message&) { ++delivered; });

    // Each checkpoint encodes to ~230 bytes: one queues under the 256-byte
    // cap, the second crosses it and triggers exactly one byte-threshold
    // flush carrying both.
    auto checkpoint = [](std::uint64_t id, std::uint8_t fill) {
        CheckpointPayload cp;
        cp.commandId = id;
        cp.projectId = 1;
        cp.projectServer = net::NodeId(1);
        cp.blob = SharedBytes(std::vector<std::uint8_t>(200, fill));
        return cp;
    };
    p.a.send(p.nb.id(), checkpoint(1, 0xAA), /*reliable=*/false);
    p.a.send(p.nb.id(), checkpoint(2, 0xBB), /*reliable=*/false);
    EXPECT_EQ(p.a.stats().flushOnBytes, 1u);
    EXPECT_EQ(p.a.stats().batchesSent, 1u);
    p.loop.run();
    EXPECT_EQ(delivered, 2);
}

TEST(OverlayBatch, TimerFlushesAfterFlushDelay) {
    Pair p;
    int delivered = 0;
    p.b.onEnvelope([&](const Envelope&, const net::Message&) { ++delivered; });

    p.a.send(p.nb.id(), beat(1), /*reliable=*/false);
    p.a.send(p.nb.id(), beat(2), /*reliable=*/false);

    // Nothing on the wire until the Nagle timer fires.
    p.loop.runUntil(p.a.batchPolicy().flushDelay / 2.0);
    EXPECT_EQ(p.net.totalStats().messages, 0u);

    p.loop.run();
    EXPECT_EQ(delivered, 2);
    EXPECT_EQ(p.a.stats().flushOnTimer, 1u);
    EXPECT_EQ(p.a.stats().batchesSent, 1u);
    EXPECT_EQ(p.net.totalStats().messages, 1u);
}

TEST(OverlayBatch, LoneEnvelopeKeepsUnbatchedWireShape) {
    Pair p;
    net::Message seen;
    int delivered = 0;
    p.b.onEnvelope([&](const Envelope&, const net::Message& msg) {
        ++delivered;
        seen = msg;
    });

    const auto id = p.a.send(p.nb.id(), beat(7), /*reliable=*/false);
    p.loop.run();

    ASSERT_EQ(delivered, 1);
    // Same type, same id, no Batch frame anywhere: sparse traffic is
    // bit-for-bit identical to the unbatched endpoint.
    EXPECT_EQ(seen.type, net::MessageType::Heartbeat);
    EXPECT_EQ(seen.id, id);
    EXPECT_EQ(p.a.stats().singletonsSent, 1u);
    EXPECT_EQ(p.a.stats().batchesSent, 0u);
    EXPECT_EQ(p.net.totalStats().batches, 0u);
    EXPECT_EQ(p.net.totalStats().singletons, 1u);
}

TEST(OverlayBatch, AckPiggybacksOnReturnTraffic) {
    Pair p;
    p.b.onEnvelope([&](const Envelope& env, const net::Message&) {
        // Answer every reliable heartbeat with data of our own, queued in
        // the same event-loop tick as the protocol ack.
        if (env.type == net::MessageType::Heartbeat)
            p.b.send(env.from, beat(99), /*reliable=*/false);
    });

    p.a.send(p.nb.id(), beat(1), /*reliable=*/true);
    p.loop.run();

    // The ack and b's reply shared one Batch frame.
    EXPECT_EQ(p.b.stats().acksSent, 1u);
    EXPECT_GE(p.b.stats().acksPiggybacked, 1u);
    EXPECT_EQ(p.b.stats().batchesSent, 1u);
    // And the ack cleared a's pending retransmit state.
    EXPECT_EQ(p.a.stats().retransmits, 0u);
    EXPECT_EQ(p.a.stats().deliveriesFailed, 0u);
}

TEST(OverlayBatch, StandaloneAckFlushesImmediatelyOnIdleLink) {
    Pair p;
    p.b.onEnvelope([](const Envelope&, const net::Message&) {});
    p.a.send(p.nb.id(), beat(1), /*reliable=*/true);
    p.loop.run();

    // No return traffic to ride: the zero-delay ack timer flushed the ack
    // as a singleton, so idle-link ack latency is unchanged.
    EXPECT_EQ(p.b.stats().acksSent, 1u);
    EXPECT_EQ(p.b.stats().acksPiggybacked, 0u);
    EXPECT_EQ(p.b.stats().flushOnAckTimer, 1u);
    EXPECT_EQ(p.b.stats().singletonsSent, 1u);
}

TEST(OverlayBatch, RetransmitReusesIdAndReceiverDedups) {
    // Cut the link so the first transmission (a flushed batch of two) is
    // lost; heal it and let the retransmits go through.
    Pair p;
    int delivered = 0;
    p.b.onEnvelope([&](const Envelope&, const net::Message&) { ++delivered; });

    p.a.send(p.nb.id(), beat(1), /*reliable=*/true);
    p.a.send(p.nb.id(), beat(2), /*reliable=*/true);
    p.net.cutLink(p.na.id(), p.nb.id());
    p.loop.runUntil(1.0); // flush fires into the cut link -> dead letters
    EXPECT_EQ(delivered, 0);

    p.net.healLink(p.na.id(), p.nb.id());
    p.loop.run();

    // Retransmits bypass the queue under their original ids; both arrive
    // exactly once despite multiple attempts.
    EXPECT_EQ(delivered, 2);
    EXPECT_GE(p.a.stats().retransmits, 2u);
    EXPECT_EQ(p.a.stats().deliveriesFailed, 0u);

    // Duplicate redelivery is suppressed by the id window even when the
    // copy arrives inside a batch: resend both again by hand.
    const auto before = p.b.stats().duplicatesDropped;
    p.loop.run();
    EXPECT_EQ(p.b.stats().duplicatesDropped, before);
}

TEST(OverlayBatch, ShutdownCancelsFlushTimersAndDropsQueued) {
    Pair p;
    int delivered = 0;
    p.b.onEnvelope([&](const Envelope&, const net::Message&) { ++delivered; });

    p.a.send(p.nb.id(), beat(1), /*reliable=*/false);
    p.a.send(p.nb.id(), beat(2), /*reliable=*/false);
    p.a.shutdown(); // crash before the flush timer fires

    // The cancelled timer must never fire into freed queue state, and the
    // queued envelopes die with the node.
    p.loop.run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(p.net.totalStats().messages, 0u);
    EXPECT_EQ(p.a.stats().batchesSent, 0u);
    EXPECT_EQ(p.a.stats().singletonsSent, 0u);
}

TEST(OverlayBatch, FlushAllDrainsEveryQueueImmediately) {
    Pair p;
    int delivered = 0;
    p.b.onEnvelope([&](const Envelope&, const net::Message&) { ++delivered; });

    p.a.send(p.nb.id(), beat(1), /*reliable=*/false);
    p.a.send(p.nb.id(), beat(2), /*reliable=*/false);
    p.a.flushAll();
    EXPECT_EQ(p.a.stats().batchesSent, 1u);
    p.loop.run();
    EXPECT_EQ(delivered, 2);
}

TEST(OverlayBatch, DeploymentCompletesIdenticallyBatchedAndUnbatched) {
    // The same fixed project must complete with the same command count
    // whether or not the endpoints coalesce — batching is transparent to
    // the protocol.
    struct Fixed : Controller {
        explicit Fixed(int n) : n(n) {}
        void onProjectStart(ProjectContext& ctx) override {
            for (int i = 0; i < n; ++i) {
                CommandSpec spec;
                spec.executable = "echo";
                spec.steps = 10;
                spec.trajectoryId = i;
                ctx.submitCommand(std::move(spec));
            }
        }
        void onCommandFinished(ProjectContext&,
                               const CommandResult&) override {
            ++finished;
        }
        bool isDone(const ProjectContext& ctx) const override {
            return finished >= n && ctx.outstandingCommands() == 0;
        }
        int n = 0;
        int finished = 0;
    };

    auto runOne = [](bool batched) {
        Deployment dep(17);
        ServerConfig sc;
        sc.batch.enabled = batched;
        auto& server = dep.addServer("s0", sc);
        WorkerConfig wc;
        wc.cores = 4;
        wc.batch.enabled = batched;
        ExecutableRegistry reg;
        reg.add("echo", [](const CommandSpec& cmd, int) {
            Execution e;
            e.result.commandId = cmd.id;
            e.result.projectId = cmd.projectId;
            e.result.trajectoryId = cmd.trajectoryId;
            e.result.generation = cmd.generation;
            e.result.success = true;
            e.simSeconds = 25.0;
            return e;
        });
        dep.addWorker("w0", server, wc, std::move(reg),
                      links::intraCluster());
        server.createProject("p", std::make_unique<Fixed>(12));
        const bool done = dep.runUntilDone(1e6);
        return std::pair(done, server.stats().commandsCompleted);
    };

    const auto batched = runOne(true);
    const auto unbatched = runOne(false);
    EXPECT_TRUE(batched.first);
    EXPECT_TRUE(unbatched.first);
    EXPECT_EQ(batched.second, 12u);
    EXPECT_EQ(batched.second, unbatched.second);
}

} // namespace
} // namespace cop::core::wire
