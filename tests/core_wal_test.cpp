// Group-commit WAL: append/replay round-trips, flush batching, snapshot
// rotation, and torn-tail vs mid-log-corruption semantics.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/wal.hpp"
#include "net/event_loop.hpp"
#include "util/codec.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace cop::core {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("cop_wal_test_" +
                std::to_string(Rng(std::uint64_t(::getpid())).next()));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

std::vector<std::uint8_t> body(std::initializer_list<std::uint8_t> b) {
    return std::vector<std::uint8_t>(b);
}

using Record = std::pair<WalRecordType, std::vector<std::uint8_t>>;

std::vector<Record> replayAll(Wal& wal) {
    std::vector<Record> out;
    wal.replay([&](WalRecordType t, std::span<const std::uint8_t> b) {
        out.emplace_back(t, std::vector<std::uint8_t>(b.begin(), b.end()));
    });
    return out;
}

TEST(Wal, AppendFlushReplayRoundTrip) {
    TempDir tmp;
    net::EventLoop loop;
    WalConfig cfg;
    cfg.dir = tmp.path.string();
    cfg.loop = &loop;
    {
        Wal wal(cfg);
        wal.append(WalRecordType::Push, body({1, 2, 3}));
        wal.append(WalRecordType::Claim, body({}));
        wal.append(WalRecordType::Complete, body({0xFF}));
        wal.flush();
    }
    Wal wal(cfg); // fresh object, same directory
    const auto records = replayAll(wal);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].first, WalRecordType::Push);
    EXPECT_EQ(records[0].second, body({1, 2, 3}));
    EXPECT_EQ(records[1].first, WalRecordType::Claim);
    EXPECT_TRUE(records[1].second.empty());
    EXPECT_EQ(records[2].first, WalRecordType::Complete);
    EXPECT_EQ(wal.stats().replayedRecords, 3u);
}

TEST(Wal, GroupCommitBatchesSameTickAppendsIntoOneSync) {
    TempDir tmp;
    net::EventLoop loop;
    WalConfig cfg;
    cfg.dir = tmp.path.string();
    cfg.loop = &loop;
    Wal wal(cfg);
    // A burst of appends in one tick: the zero-delay flush timer turns
    // them into a single write+fdatasync.
    for (int i = 0; i < 100; ++i)
        wal.append(WalRecordType::Push, body({std::uint8_t(i)}));
    EXPECT_EQ(wal.stats().flushes, 0u); // still buffered
    loop.runUntil(1.0);                 // the armed flush fires
    EXPECT_EQ(wal.stats().records, 100u);
    EXPECT_EQ(wal.stats().flushes, 1u);
    EXPECT_EQ(wal.stats().syncs, 1u);
    EXPECT_EQ(wal.stats().bufferedBytes, 0u);
}

TEST(Wal, ExplicitFlushIsImmediate) {
    TempDir tmp;
    net::EventLoop loop;
    WalConfig cfg;
    cfg.dir = tmp.path.string();
    cfg.loop = &loop;
    Wal wal(cfg);
    wal.append(WalRecordType::Renew, body({9}));
    wal.flush();
    EXPECT_EQ(wal.stats().flushes, 1u);
    Wal reader(cfg);
    EXPECT_EQ(replayAll(reader).size(), 1u);
}

TEST(Wal, SnapshotTruncatesLogAndLoadsBack) {
    TempDir tmp;
    net::EventLoop loop;
    WalConfig cfg;
    cfg.dir = tmp.path.string();
    cfg.loop = &loop;
    {
        Wal wal(cfg);
        wal.append(WalRecordType::Push, body({1}));
        wal.flush();
        const std::vector<std::uint8_t> state = {42, 43, 44};
        wal.writeSnapshot(state);
        EXPECT_EQ(wal.stats().snapshots, 1u);
        EXPECT_EQ(wal.stats().recordsSinceSnapshot, 0u);
        // Records after the snapshot stay in the (truncated) log.
        wal.append(WalRecordType::Complete, body({2}));
        wal.flush();
    }
    Wal wal(cfg);
    EXPECT_EQ(wal.loadSnapshot(), (std::vector<std::uint8_t>{42, 43, 44}));
    const auto records = replayAll(wal);
    ASSERT_EQ(records.size(), 1u); // only the post-snapshot record
    EXPECT_EQ(records[0].first, WalRecordType::Complete);
}

TEST(Wal, LoadSnapshotEmptyWhenNeverWritten) {
    TempDir tmp;
    net::EventLoop loop;
    WalConfig cfg;
    cfg.dir = tmp.path.string();
    cfg.loop = &loop;
    Wal wal(cfg);
    EXPECT_TRUE(wal.loadSnapshot().empty());
}

TEST(Wal, PreallocatedZeroTailIsNotCorruption) {
    TempDir tmp;
    net::EventLoop loop;
    WalConfig cfg;
    cfg.dir = tmp.path.string();
    cfg.loop = &loop;
    {
        Wal wal(cfg);
        wal.append(WalRecordType::Push, body({1, 2, 3, 4}));
        wal.flush();
    }
    // A crash between flush and close leaves the fallocate()d tail in
    // place: zeros after the last record. Replay must treat that as the
    // end of the log, not as torn bytes or corruption.
    const auto logPath = tmp.path / "wal.log";
    fs::resize_file(logPath, fs::file_size(logPath) + 4096);
    Wal wal(cfg);
    EXPECT_EQ(replayAll(wal).size(), 1u);
    EXPECT_EQ(wal.stats().corruptTailBytes, 0u);
}

TEST(Wal, AppendAfterTornTailOverwritesIt) {
    TempDir tmp;
    net::EventLoop loop;
    WalConfig cfg;
    cfg.dir = tmp.path.string();
    cfg.loop = &loop;
    std::uintmax_t oneRecord = 0;
    {
        Wal wal(cfg);
        wal.append(WalRecordType::Push, body({1, 2, 3, 4}));
        wal.flush();
        oneRecord = fs::file_size(tmp.path / "wal.log");
        wal.append(WalRecordType::Claim, body({5, 6, 7, 8}));
        wal.flush();
    }
    // Tear the second record, then resume appending: the new record must
    // land where the valid prefix ended, with no torn residue after it
    // that a later replay could mistake for mid-log corruption.
    const auto logPath = tmp.path / "wal.log";
    fs::resize_file(logPath, fs::file_size(logPath) - 3);
    {
        Wal wal(cfg);
        wal.append(WalRecordType::Complete, body({9}));
        wal.flush();
        EXPECT_GE(fs::file_size(logPath), oneRecord);
    }
    Wal wal(cfg);
    const auto records = replayAll(wal);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].first, WalRecordType::Push);
    EXPECT_EQ(records[1].first, WalRecordType::Complete);
    EXPECT_EQ(records[1].second, body({9}));
    EXPECT_EQ(wal.stats().corruptTailBytes, 0u);
}

TEST(Wal, ToleratesTornTailButThrowsOnMidLogCorruption) {
    TempDir tmp;
    net::EventLoop loop;
    WalConfig cfg;
    cfg.dir = tmp.path.string();
    cfg.loop = &loop;
    {
        Wal wal(cfg);
        wal.append(WalRecordType::Push, body({1, 2, 3, 4}));
        wal.append(WalRecordType::Claim, body({5, 6, 7, 8}));
        wal.flush();
    }
    const auto logPath = tmp.path / "wal.log";
    const auto fullSize = fs::file_size(logPath);

    // Torn tail: truncate into the second record — replay keeps the first
    // record and reports the torn bytes.
    fs::resize_file(logPath, fullSize - 3);
    {
        Wal wal(cfg);
        EXPECT_EQ(replayAll(wal).size(), 1u);
        EXPECT_GT(wal.stats().corruptTailBytes, 0u);
    }
    // Mid-log corruption: flip a byte inside the FIRST record while the
    // second still follows — a crash cannot produce this, so it throws.
    {
        std::fstream f(logPath,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(9); // inside record 1's body
        char c;
        f.seekg(9);
        f.get(c);
        f.seekp(9);
        f.put(char(c ^ 0x55));
    }
    fs::resize_file(logPath, fullSize);
    {
        Wal wal(cfg);
        EXPECT_THROW(replayAll(wal), cop::IoError);
    }
}

TEST(Wal, ParseLogRejectsOversizedAndBadTypeRecords) {
    // Framing: [u32 len][u32 crc][u8 type + body]
    auto frame = [](std::uint8_t type, std::vector<std::uint8_t> b) {
        std::vector<std::uint8_t> body;
        body.push_back(type);
        body.insert(body.end(), b.begin(), b.end());
        const std::uint32_t len = std::uint32_t(body.size());
        const std::uint32_t crc = cop::util::crc32(body);
        std::vector<std::uint8_t> out;
        for (int i = 0; i < 4; ++i) out.push_back((len >> (8 * i)) & 0xFF);
        for (int i = 0; i < 4; ++i) out.push_back((crc >> (8 * i)) & 0xFF);
        out.insert(out.end(), body.begin(), body.end());
        return out;
    };
    const auto good = frame(std::uint8_t(WalRecordType::Push), {1});
    std::size_t torn = 0;
    std::size_t n = 0;
    Wal::parseLog(good,
                  [&](WalRecordType, std::span<const std::uint8_t>) {
                      ++n;
                  },
                  1 << 20, &torn);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(torn, 0u);

    // A type tag past kWalRecordTypeMax is corruption, not a new version.
    auto badType = frame(kWalRecordTypeMax + 1, {1});
    badType.insert(badType.end(), good.begin(), good.end());
    EXPECT_THROW(
        Wal::parseLog(badType,
                      [](WalRecordType, std::span<const std::uint8_t>) {},
                      1 << 20, &torn),
        cop::IoError);

    // A length over the cap is refused before any allocation.
    auto huge = frame(std::uint8_t(WalRecordType::Push), {1});
    huge[0] = 0xFF;
    huge[1] = 0xFF;
    huge[2] = 0xFF;
    huge[3] = 0x7F;
    huge.insert(huge.end(), good.begin(), good.end());
    EXPECT_THROW(
        Wal::parseLog(huge,
                      [](WalRecordType, std::span<const std::uint8_t>) {},
                      1 << 20, &torn),
        cop::IoError);
}

TEST(Wal, EarlyFlushOnBufferBound) {
    TempDir tmp;
    net::EventLoop loop;
    WalConfig cfg;
    cfg.dir = tmp.path.string();
    cfg.loop = &loop;
    cfg.flushBytes = 64; // tiny bound: bursts flush inline
    Wal wal(cfg);
    std::vector<std::uint8_t> big(100, 7);
    wal.append(WalRecordType::Checkpoint, big);
    EXPECT_GE(wal.stats().flushes, 1u); // crossed the bound, no timer wait
}

} // namespace
} // namespace cop::core
