#include "mdlib/observables.hpp"

#include <gtest/gtest.h>

#include "mdlib/proteins.hpp"
#include "util/random.hpp"

namespace cop::md {
namespace {

std::vector<Vec3> randomCloud(std::size_t n, std::uint64_t seed) {
    cop::Rng rng(seed);
    std::vector<Vec3> xs;
    for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.gaussianVec3(2.0));
    return xs;
}

TEST(Rmsd, ZeroForIdenticalSets) {
    const auto xs = randomCloud(20, 1);
    EXPECT_NEAR(rmsd(xs, xs), 0.0, 1e-9);
}

TEST(Rmsd, InvariantUnderRigidTransform) {
    const auto xs = randomCloud(30, 2);
    const Mat3 r = rotationMatrix(normalized(Vec3{1, -2, 0.5}), 1.234);
    std::vector<Vec3> moved;
    for (const auto& x : xs) moved.push_back(r * x + Vec3{10, -3, 7});
    // Limited by cancellation in ga + gb - 2*lambda_max, not the solver.
    EXPECT_NEAR(rmsd(xs, moved), 0.0, 1e-6);
}

TEST(Rmsd, DetectsKnownDisplacement) {
    // Two points distance 2 apart vs distance 4 apart: optimal alignment
    // leaves each end 0.5 from its target -> RMSD 0.5... compute exactly:
    // centered a = (+-1,0,0), b = (+-2,0,0); rotation can flip but best is
    // identity; rmsd = sqrt(mean(1^2,1^2)) = 1.
    const std::vector<Vec3> a{{-1, 0, 0}, {1, 0, 0}};
    const std::vector<Vec3> b{{-2, 0, 0}, {2, 0, 0}};
    EXPECT_NEAR(rmsd(a, b), 1.0, 1e-12);
}

TEST(Rmsd, SymmetricInArguments) {
    const auto a = randomCloud(25, 3);
    const auto b = randomCloud(25, 4);
    EXPECT_NEAR(rmsd(a, b), rmsd(b, a), 1e-9);
}

TEST(Rmsd, RejectsMismatchedSizes) {
    EXPECT_THROW(rmsd(randomCloud(3, 1), randomCloud(4, 1)),
                 cop::InvalidArgument);
}

TEST(Superimpose, AlignsMobileOntoTarget) {
    const auto target = randomCloud(15, 5);
    const Mat3 r = rotationMatrix(normalized(Vec3{0.3, 1, 2}), -0.8);
    std::vector<Vec3> mobile;
    for (const auto& x : target) mobile.push_back(r * x + Vec3{5, 5, 5});
    superimpose(target, mobile);
    for (std::size_t i = 0; i < target.size(); ++i)
        EXPECT_NEAR(distance(target[i], mobile[i]), 0.0, 1e-8);
}

TEST(Superimpose, HandlesReflectionFreeCase) {
    // Perturbed copy: superposition should reduce raw distance.
    auto target = randomCloud(20, 6);
    cop::Rng rng(7);
    std::vector<Vec3> mobile;
    const Mat3 r = rotationMatrix(Vec3{0, 0, 1}, 2.5);
    for (const auto& x : target)
        mobile.push_back(r * x + rng.gaussianVec3(0.01));
    auto before = 0.0;
    for (std::size_t i = 0; i < target.size(); ++i)
        before += distance2(target[i], mobile[i]);
    superimpose(target, mobile);
    auto after = 0.0;
    for (std::size_t i = 0; i < target.size(); ++i)
        after += distance2(target[i], mobile[i]);
    EXPECT_LT(after, before);
    EXPECT_NEAR(std::sqrt(after / target.size()), 0.01, 0.02);
}

TEST(RadiusOfGyration, LinearChainFormula) {
    // Points at 0..9 on a line: Rg^2 = mean((i - 4.5)^2) = 8.25.
    std::vector<Vec3> xs;
    for (int i = 0; i < 10; ++i) xs.push_back({double(i), 0, 0});
    EXPECT_NEAR(radiusOfGyration(xs), std::sqrt(8.25), 1e-12);
}

TEST(RadiusOfGyration, MassWeighted) {
    const std::vector<Vec3> xs{{0, 0, 0}, {1, 0, 0}};
    const std::vector<double> ms{3.0, 1.0};
    // COM at 0.25; Rg^2 = (3*0.0625 + 1*0.5625)/4 = 0.1875.
    EXPECT_NEAR(radiusOfGyration(xs, ms), std::sqrt(0.1875), 1e-12);
}

TEST(NativeContacts, FullAtNativeZeroWhenStretched) {
    const auto model = villinGoModel();
    EXPECT_DOUBLE_EQ(nativeContactFraction(model.topology, model.native),
                     1.0);
    const auto stretched = extendedChain(model.numResidues());
    EXPECT_LT(nativeContactFraction(model.topology, stretched), 0.3);
}

TEST(NativeContacts, FactorControlsTolerance) {
    const auto model = hairpinGoModel();
    auto scaled = model.native;
    for (auto& p : scaled) p *= 1.25;
    // At 1.25x expansion, factor 1.2 misses most contacts; 1.5 keeps all.
    EXPECT_LT(nativeContactFraction(model.topology, scaled, 1.2), 0.7);
    EXPECT_DOUBLE_EQ(nativeContactFraction(model.topology, scaled, 1.5),
                     1.0);
}

TEST(CenterCoordinates, CentroidBecomesOrigin) {
    auto xs = randomCloud(12, 9);
    centerCoordinates(xs);
    Vec3 c{};
    for (const auto& x : xs) c += x;
    EXPECT_NEAR(norm(c) / double(xs.size()), 0.0, 1e-12);
}

} // namespace
} // namespace cop::md
