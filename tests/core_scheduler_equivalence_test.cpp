// Scheduler equivalence and zero-copy data-plane tests.
//
// The indexed CommandQueue replaced the linear-scan queue with the claim
// that assignment order is observably identical under ClaimPolicy::FirstFit.
// This file holds that claim to account: randomized seeded traces of
// push/claim/complete/requeue/checkpoint ops are replayed against both
// implementations and every observable output (claimed specs, requeued ids,
// completion results, counts) must match exactly. It also pins the
// requeue-to-head-of-priority-level semantics, the LargestFit bin-packing
// policy, duplicate-push rejection, unknown-checkpoint accounting, and the
// zero-deep-copy guarantee of the SharedBytes checkpoint plane.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/queue.hpp"
#include "core/queue_legacy.hpp"
#include "util/random.hpp"

namespace cop::core {
namespace {

CommandSpec makeCmd(CommandId id, std::string exe, int priority, int cores) {
    CommandSpec c;
    c.id = id;
    c.projectId = 1;
    c.executable = std::move(exe);
    c.steps = 100;
    c.priority = priority;
    c.preferredCores = cores;
    return c;
}

std::vector<CommandId> idsOf(const std::vector<CommandSpec>& specs) {
    std::vector<CommandId> ids;
    ids.reserve(specs.size());
    for (const auto& s : specs) ids.push_back(s.id);
    return ids;
}

/// Replays one randomized op trace against both queues, asserting that
/// every observable output matches. Reports the number of commands the
/// trace claimed (so callers can check the trace was not degenerate);
/// void return because ASSERT_* bails out with a bare `return`.
void replayTrace(std::uint64_t seed, int numOps,
                 std::size_t* totalClaimedOut) {
    const std::vector<std::string> pool{"mdrun", "fe_sample", "analyze",
                                        "score"};
    Rng rng(seed);
    LegacyCommandQueue legacy;
    CommandQueue indexed;
    CommandId nextId = 0;
    std::vector<CommandId> inFlightIds;
    std::size_t totalClaimed = 0;

    const auto eraseInFlight = [&](CommandId id) {
        for (std::size_t i = 0; i < inFlightIds.size(); ++i) {
            if (inFlightIds[i] == id) {
                inFlightIds.erase(inFlightIds.begin() + long(i));
                return;
            }
        }
    };

    for (int op = 0; op < numOps; ++op) {
        const double r = rng.uniform();
        if (r < 0.40) {
            // Push a random command to both queues.
            auto cmd = makeCmd(++nextId, pool[rng.uniformInt(pool.size())],
                               int(rng.uniformInt(4)),
                               1 + int(rng.uniformInt(8)));
            legacy.push(cmd);
            indexed.push(cmd);
        } else if (r < 0.70) {
            // Claim with a random executable offer and core budget.
            std::vector<std::string> offer;
            for (const auto& exe : pool)
                if (rng.uniform() < 0.5) offer.push_back(exe);
            if (offer.empty()) offer.push_back(pool[rng.uniformInt(4)]);
            const int cores = 1 + int(rng.uniformInt(16));
            const auto worker = net::NodeId(1 + rng.uniformInt(4));
            EXPECT_EQ(legacy.hasWorkFor(offer), indexed.hasWorkFor(offer))
                << "seed " << seed << " op " << op;
            const auto a = legacy.claim(offer, cores, worker);
            const auto b =
                indexed.claim(offer, cores, worker, ClaimPolicy::FirstFit);
            ASSERT_EQ(idsOf(a), idsOf(b)) << "seed " << seed << " op " << op;
            for (std::size_t i = 0; i < a.size(); ++i) {
                // Checkpoint content must travel identically through
                // requeues in both implementations.
                EXPECT_EQ(a[i].input, b[i].input)
                    << "seed " << seed << " op " << op << " claim " << i;
                EXPECT_EQ(a[i].priority, b[i].priority);
                EXPECT_EQ(a[i].preferredCores, b[i].preferredCores);
                inFlightIds.push_back(a[i].id);
            }
            totalClaimed += a.size();
        } else if (r < 0.78) {
            // Complete a random in-flight command.
            if (inFlightIds.empty()) continue;
            const auto id = inFlightIds[rng.uniformInt(inFlightIds.size())];
            const auto a = legacy.complete(id);
            const auto b = indexed.complete(id);
            ASSERT_EQ(a.has_value(), b.has_value())
                << "seed " << seed << " op " << op;
            if (a.has_value()) {
                EXPECT_EQ(a->id, b->id);
                EXPECT_EQ(a->input, b->input);
            }
            eraseInFlight(id);
        } else if (r < 0.86) {
            // Fail a random worker: every command it holds requeues.
            const auto worker = net::NodeId(1 + rng.uniformInt(4));
            const auto a = legacy.requeueWorker(worker);
            const auto b = indexed.requeueWorker(worker);
            ASSERT_EQ(a, b) << "seed " << seed << " op " << op;
            for (const auto id : a) eraseInFlight(id);
        } else if (r < 0.92) {
            // Requeue one in-flight command (lease expiry).
            if (inFlightIds.empty()) continue;
            const auto id = inFlightIds[rng.uniformInt(inFlightIds.size())];
            EXPECT_EQ(legacy.requeueCommand(id), indexed.requeueCommand(id))
                << "seed " << seed << " op " << op;
            eraseInFlight(id);
        } else {
            // Checkpoint update; sometimes aimed at a stale/unknown id.
            CommandId id = 0;
            if (!inFlightIds.empty() && rng.uniform() < 0.8)
                id = inFlightIds[rng.uniformInt(inFlightIds.size())];
            else
                id = nextId + 1000 + rng.uniformInt(100);
            std::vector<std::uint8_t> blob(1 + rng.uniformInt(64));
            for (auto& byte : blob)
                byte = std::uint8_t(rng.uniformInt(256));
            legacy.updateCheckpoint(id, blob);
            indexed.updateCheckpoint(id, SharedBytes(std::move(blob)));
        }
        ASSERT_EQ(legacy.pendingCount(), indexed.pendingCount())
            << "seed " << seed << " op " << op;
        ASSERT_EQ(legacy.inFlightCount(), indexed.inFlightCount())
            << "seed " << seed << " op " << op;
    }

    // Drain both queues completely with small budgets so skipping and
    // ordering at the tail get compared too.
    int guard = 0;
    while (!legacy.empty() || !indexed.empty()) {
        ASSERT_LT(++guard, 1000000);
        const auto a = legacy.claim(pool, 3, 99);
        const auto b = indexed.claim(pool, 3, 99, ClaimPolicy::FirstFit);
        ASSERT_EQ(idsOf(a), idsOf(b)) << "seed " << seed << " during drain";
        for (const auto& s : a) {
            legacy.complete(s.id);
            indexed.complete(s.id);
        }
        if (a.empty()) {
            // Remaining commands all need > 3 cores; widen the budget.
            const auto a2 = legacy.claim(pool, 1 << 20, 99);
            const auto b2 = indexed.claim(pool, 1 << 20, 99);
            ASSERT_EQ(idsOf(a2), idsOf(b2)) << "seed " << seed;
            for (const auto& s : a2) {
                legacy.complete(s.id);
                indexed.complete(s.id);
            }
        }
    }
    EXPECT_EQ(legacy.inFlightCount(), indexed.inFlightCount());
    *totalClaimedOut = totalClaimed;
}

TEST(SchedulerEquivalence, RandomizedTracesMatchLegacy) {
    // ISSUE acceptance: seeded, >= 1000 ops, identical assignment traces.
    for (const std::uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
        std::size_t claimed = 0;
        replayTrace(seed, 1200, &claimed);
        EXPECT_GT(claimed, 100u) << "degenerate trace for seed " << seed;
    }
}

TEST(SchedulerEquivalence, SingleExecutableHighChurnTraceMatches) {
    // One bucket + tiny core budgets maximizes skip/requeue interleaving.
    const std::vector<std::string> pool{"mdrun"};
    Rng rng(77);
    LegacyCommandQueue legacy;
    CommandQueue indexed;
    CommandId nextId = 0;
    for (int op = 0; op < 1500; ++op) {
        const double r = rng.uniform();
        if (r < 0.5) {
            auto cmd = makeCmd(++nextId, "mdrun", int(rng.uniformInt(2)),
                               1 + int(rng.uniformInt(4)));
            legacy.push(cmd);
            indexed.push(cmd);
        } else if (r < 0.8) {
            const auto worker = net::NodeId(1 + rng.uniformInt(2));
            const auto a = legacy.claim(pool, 2, worker);
            const auto b = indexed.claim(pool, 2, worker);
            ASSERT_EQ(idsOf(a), idsOf(b)) << "op " << op;
        } else {
            const auto worker = net::NodeId(1 + rng.uniformInt(2));
            ASSERT_EQ(legacy.requeueWorker(worker),
                      indexed.requeueWorker(worker))
                << "op " << op;
        }
    }
}

TEST(SchedulerEquivalence, RequeueLandsAtHeadOfPriorityLevel) {
    // Satellite regression: a requeued command must land ahead of newer
    // work at the same priority, behind strictly higher priorities, and a
    // later requeue lands ahead of an earlier one. Pinned against the
    // legacy queue, which defined the behavior.
    LegacyCommandQueue legacy;
    CommandQueue indexed;
    const auto runScenario = [](auto& q) {
        q.push(makeCmd(1, "mdrun", 1, 1)); // A
        q.push(makeCmd(2, "mdrun", 1, 1)); // B
        q.claim({"mdrun"}, 2, /*worker=*/7); // A and B in flight
        q.push(makeCmd(3, "mdrun", 1, 1)); // newer same-priority C
        q.push(makeCmd(4, "mdrun", 2, 1)); // higher-priority D
        q.requeueCommand(1);               // A returns first...
        q.requeueCommand(2);               // ...then B: B now ahead of A
        std::vector<CommandId> order;
        for (int i = 0; i < 4; ++i) {
            const auto claimed = q.claim({"mdrun"}, 1, 8);
            for (const auto& spec : claimed) order.push_back(spec.id);
        }
        return order;
    };
    const auto legacyOrder = runScenario(legacy);
    const auto indexedOrder = runScenario(indexed);
    EXPECT_EQ(legacyOrder, indexedOrder);
    // D (priority 2) first; B's requeue beat A's; newer C drains last.
    EXPECT_EQ(legacyOrder, (std::vector<CommandId>{4, 2, 1, 3}));
}

TEST(CommandQueue, DuplicatePushRejected) {
    CommandQueue q;
    q.push(makeCmd(1, "mdrun", 0, 1));
    EXPECT_THROW(q.push(makeCmd(1, "mdrun", 0, 1)), cop::InvalidArgument);
    EXPECT_EQ(q.stats().duplicatePushesRejected, 1u);
    EXPECT_EQ(q.pendingCount(), 1u);

    // Still a duplicate while in flight...
    q.claim({"mdrun"}, 1, 2);
    EXPECT_THROW(q.push(makeCmd(1, "mdrun", 0, 1)), cop::InvalidArgument);
    EXPECT_EQ(q.stats().duplicatePushesRejected, 2u);

    // ...and legal again once the command completed (id retirement).
    q.complete(1);
    EXPECT_NO_THROW(q.push(makeCmd(1, "mdrun", 0, 1)));
    EXPECT_EQ(q.pendingCount(), 1u);
}

TEST(CommandQueue, UnknownCheckpointDropsAreCounted) {
    CommandQueue q;
    q.push(makeCmd(1, "mdrun", 0, 1));
    // Not in flight yet: pending commands don't take checkpoints either.
    q.updateCheckpoint(1, SharedBytes{0x01});
    EXPECT_EQ(q.stats().checkpointsUnknownId, 1u);
    q.claim({"mdrun"}, 1, 2);
    q.updateCheckpoint(1, SharedBytes{0x02});
    q.updateCheckpoint(999, SharedBytes{0x03}); // never existed
    EXPECT_EQ(q.stats().checkpointsUnknownId, 2u);
    EXPECT_EQ(q.stats().checkpointUpdates, 1u);
}

TEST(CommandQueue, CheckpointPlaneIsZeroCopy) {
    CommandQueue q;
    q.push(makeCmd(1, "mdrun", 0, 1));
    q.claim({"mdrun"}, 1, 2);

    SharedBytes blob(std::vector<std::uint8_t>(4096, 0xEE));
    q.updateCheckpoint(1, blob); // refcount bump, not a byte copy
    EXPECT_EQ(q.stats().checkpointUpdates, 1u);
    EXPECT_EQ(q.stats().checkpointDeepCopies, 0u);
    EXPECT_EQ(q.stats().checkpointBytesShared, 4096u);

    // The requeued spec aliases the same heap buffer end to end.
    q.requeueCommand(1);
    const auto again = q.claim({"mdrun"}, 1, 3);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_TRUE(again[0].input.sharesBufferWith(blob));

    // The legacy lvalue-vector overload is the only path that copies, and
    // it says so in the stats.
    const std::vector<std::uint8_t> lvalue(128, 0x11);
    q.updateCheckpoint(1, lvalue);
    EXPECT_EQ(q.stats().checkpointDeepCopies, 1u);
    EXPECT_EQ(q.stats().checkpointUpdates, 2u);
}

TEST(CommandQueue, LargestFitPacksTheOffer) {
    // Arrival order 2,4,3 cores with a 7-core offer: first-fit takes
    // {2,4} and strands a core; largest-fit assembles {4,3} — the paper's
    // "workload maximally utilizing the available resources".
    const auto fill = [](CommandQueue& q) {
        q.push(makeCmd(1, "mdrun", 0, 2));
        q.push(makeCmd(2, "mdrun", 0, 4));
        q.push(makeCmd(3, "mdrun", 0, 3));
    };
    CommandQueue first;
    fill(first);
    EXPECT_EQ(idsOf(first.claim({"mdrun"}, 7, 1, ClaimPolicy::FirstFit)),
              (std::vector<CommandId>{1, 2}));
    CommandQueue largest;
    fill(largest);
    EXPECT_EQ(idsOf(largest.claim({"mdrun"}, 7, 1, ClaimPolicy::LargestFit)),
              (std::vector<CommandId>{2, 3}));
}

TEST(CommandQueue, LargestFitStillHonorsPriorityFirst) {
    CommandQueue q;
    q.push(makeCmd(1, "mdrun", 0, 8)); // low priority, fills the offer
    q.push(makeCmd(2, "mdrun", 5, 1)); // high priority, small
    q.push(makeCmd(3, "mdrun", 5, 4)); // high priority, large
    // Priority dominates size: both priority-5 commands are claimed
    // (largest first) before the low-priority 8-core command is even
    // considered — and by then it no longer fits.
    const auto claimed = q.claim({"mdrun"}, 8, 1, ClaimPolicy::LargestFit);
    EXPECT_EQ(idsOf(claimed), (std::vector<CommandId>{3, 2}));
    EXPECT_EQ(q.pendingCount(), 1u);
}

TEST(CommandQueue, ClaimScanTouchesOnlyOfferedBuckets) {
    // The indexed claim never visits commands for executables the worker
    // lacks: scan steps stay bounded by the matching work, not the queue.
    CommandQueue q;
    for (CommandId id = 1; id <= 500; ++id)
        q.push(makeCmd(id, "other_exe", 0, 1));
    q.push(makeCmd(1000, "mdrun", 0, 1));
    const auto before = q.stats().claimScanSteps;
    const auto claimed = q.claim({"mdrun"}, 4, 1);
    ASSERT_EQ(claimed.size(), 1u);
    EXPECT_LE(q.stats().claimScanSteps - before, 2u)
        << "claim scanned non-matching work";
    // hasWorkFor likewise probes buckets, not commands.
    const auto probesBefore = q.stats().hasWorkProbes;
    EXPECT_FALSE(q.hasWorkFor({"missing_a", "missing_b"}));
    EXPECT_EQ(q.stats().hasWorkProbes - probesBefore, 2u);
}

} // namespace
} // namespace cop::core
