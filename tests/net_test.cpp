// Event loop, overlay network, routing, trust and traffic accounting.

#include <gtest/gtest.h>

#include "net/event_loop.hpp"
#include "net/overlay.hpp"

namespace cop::net {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
    EventLoop loop;
    std::vector<int> order;
    loop.schedule(3.0, [&] { order.push_back(3); });
    loop.schedule(1.0, [&] { order.push_back(1); });
    loop.schedule(2.0, [&] { order.push_back(2); });
    loop.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(loop.now(), 3.0);
}

TEST(EventLoop, FifoForEqualTimes) {
    EventLoop loop;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        loop.schedule(1.0, [&order, i] { order.push_back(i); });
    loop.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, EventsCanScheduleMoreEvents) {
    EventLoop loop;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10) loop.schedule(1.0, chain);
    };
    loop.schedule(0.0, chain);
    loop.run();
    EXPECT_EQ(fired, 10);
    EXPECT_DOUBLE_EQ(loop.now(), 9.0);
}

TEST(EventLoop, RunUntilAdvancesClockAndStops) {
    EventLoop loop;
    int fired = 0;
    loop.schedule(1.0, [&] { ++fired; });
    loop.schedule(5.0, [&] { ++fired; });
    const auto n = loop.runUntil(2.0);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(loop.now(), 2.0);
    EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RunWithLimit) {
    EventLoop loop;
    for (int i = 0; i < 10; ++i)
        loop.schedule(double(i), [] {});
    EXPECT_EQ(loop.run(4), 4u);
    EXPECT_EQ(loop.pending(), 6u);
}

TEST(EventLoop, RejectsPastScheduling) {
    EventLoop loop;
    loop.schedule(1.0, [] {});
    loop.run();
    EXPECT_THROW(loop.scheduleAt(0.5, [] {}), cop::InvalidArgument);
    EXPECT_THROW(loop.schedule(-1.0, [] {}), cop::InvalidArgument);
}

struct TestNet {
    EventLoop loop;
    OverlayNetwork net{loop};

    Node makeNode(const std::string& name, std::uint64_t seed) {
        return Node(net, name, KeyPair::generate(seed));
    }
};

void mutualTrust(Node& a, Node& b) {
    a.trust(b.publicKey());
    b.trust(a.publicKey());
}

TEST(Overlay, ConnectRequiresMutualTrust) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    EXPECT_THROW(t.net.connect(a.id(), b.id(), {}), cop::InvalidArgument);
    a.trust(b.publicKey()); // one-way is not enough
    EXPECT_THROW(t.net.connect(a.id(), b.id(), {}), cop::InvalidArgument);
    b.trust(a.publicKey());
    t.net.connect(a.id(), b.id(), {});
    EXPECT_TRUE(t.net.connected(a.id(), b.id()));
}

TEST(Overlay, DirectDeliveryWithLatency) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    mutualTrust(a, b);
    t.net.connect(a.id(), b.id(), LinkProperties{0.5, 1e6});

    double deliveredAt = -1.0;
    b.setHandler([&](const Message&) { deliveredAt = t.loop.now(); });
    Message msg;
    msg.type = MessageType::Heartbeat;
    msg.source = a.id();
    msg.destination = b.id();
    msg.payload.assign(100, 0);
    t.net.send(msg);
    t.loop.run();
    // latency + bytes/bandwidth = 0.5 + 196/1e6.
    EXPECT_NEAR(deliveredAt, 0.5 + 196.0 / 1e6, 1e-9);
}

TEST(Overlay, MultiHopRoutingTakesLowestLatencyPath) {
    // a - b - d (fast), a - c - d (slow): message a->d goes via b.
    TestNet t;
    Node a = t.makeNode("a", 1), b = t.makeNode("b", 2),
         c = t.makeNode("c", 3), d = t.makeNode("d", 4);
    mutualTrust(a, b);
    mutualTrust(a, c);
    mutualTrust(b, d);
    mutualTrust(c, d);
    t.net.connect(a.id(), b.id(), LinkProperties{0.01, 1e9});
    t.net.connect(b.id(), d.id(), LinkProperties{0.01, 1e9});
    t.net.connect(a.id(), c.id(), LinkProperties{1.0, 1e9});
    t.net.connect(c.id(), d.id(), LinkProperties{1.0, 1e9});

    EXPECT_EQ(t.net.nextHop(a.id(), d.id()), b.id());

    int delivered = 0;
    d.setHandler([&](const Message&) { ++delivered; });
    Message msg;
    msg.source = a.id();
    msg.destination = d.id();
    t.net.send(msg);
    t.loop.run();
    EXPECT_EQ(delivered, 1);
    // Traffic accounted on both hops of the fast path, none on the slow.
    EXPECT_EQ(t.net.linkStats(a.id(), b.id()).messages, 1u);
    EXPECT_EQ(t.net.linkStats(b.id(), d.id()).messages, 1u);
    EXPECT_EQ(t.net.linkStats(a.id(), c.id()).messages, 0u);
}

TEST(Overlay, UnreachableDestinationThrows) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    Message msg;
    msg.source = a.id();
    msg.destination = b.id();
    EXPECT_THROW(t.net.send(msg), cop::InvalidArgument);
}

TEST(Overlay, StatsAggregation) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    mutualTrust(a, b);
    t.net.connect(a.id(), b.id(), {});
    for (int i = 0; i < 3; ++i) {
        Message msg;
        msg.source = a.id();
        msg.destination = b.id();
        msg.payload.assign(10, 0);
        t.net.send(msg);
    }
    t.loop.run();
    EXPECT_EQ(t.net.totalStats().messages, 3u);
    EXPECT_EQ(t.net.nodeStats(a.id()).messages, 3u);
    EXPECT_EQ(t.net.totalStats().bytes, 3u * 106u);
}

TEST(Overlay, MessageTypeNames) {
    EXPECT_STREQ(messageTypeName(MessageType::Heartbeat), "Heartbeat");
    EXPECT_STREQ(messageTypeName(MessageType::WorkerFailed), "WorkerFailed");
}

TEST(Overlay, HeartbeatWireSizeIsSmall) {
    // Paper: "a message size typically less than 200 bytes".
    Message hb;
    hb.type = MessageType::Heartbeat;
    hb.payload.assign(60, 0); // typical encoded heartbeat
    EXPECT_LT(hb.wireSize(), 200u);
}

TEST(KeyPairTest, GenerationIsDeterministicAndDistinct) {
    const auto a = KeyPair::generate(1);
    const auto b = KeyPair::generate(1);
    const auto c = KeyPair::generate(2);
    EXPECT_EQ(a.publicKey, b.publicKey);
    EXPECT_NE(a.publicKey, c.publicKey);
    EXPECT_NE(a.publicKey, a.privateKey);
}


TEST(Overlay, SharedFilesystemSkipsBulkPayloadBytes) {
    TestNet t;
    Node a = t.makeNode("worker", 1);
    Node b = t.makeNode("head", 2);
    mutualTrust(a, b);
    LinkProperties props;
    props.sharedFilesystem = true;
    t.net.connect(a.id(), b.id(), props);

    Message bulk;
    bulk.type = MessageType::CommandOutput;
    bulk.source = a.id();
    bulk.destination = b.id();
    bulk.payload.assign(1'000'000, 0);
    t.net.send(bulk);
    t.loop.run();
    // Only the ~96-byte frame crossed the wire.
    EXPECT_LT(t.net.totalStats().bytes, 200u);

    Message control;
    control.type = MessageType::Heartbeat; // not bulk: full size
    control.source = a.id();
    control.destination = b.id();
    control.payload.assign(50, 0);
    t.net.send(control);
    t.loop.run();
    EXPECT_GE(t.net.totalStats().bytes, 96u + 50u);
}

TEST(Overlay, BulkDataClassification) {
    EXPECT_TRUE(isBulkDataMessage(MessageType::CommandOutput));
    EXPECT_TRUE(isBulkDataMessage(MessageType::CheckpointData));
    EXPECT_TRUE(isBulkDataMessage(MessageType::WorkloadAssign));
    EXPECT_FALSE(isBulkDataMessage(MessageType::Heartbeat));
    EXPECT_FALSE(isBulkDataMessage(MessageType::WorkloadRequest));
}

} // namespace
} // namespace cop::net
