// Event loop, overlay network, routing, trust and traffic accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/backoff.hpp"
#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "net/overlay.hpp"
#include "util/random.hpp"

namespace cop::net {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
    EventLoop loop;
    std::vector<int> order;
    loop.schedule(3.0, [&] { order.push_back(3); });
    loop.schedule(1.0, [&] { order.push_back(1); });
    loop.schedule(2.0, [&] { order.push_back(2); });
    loop.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(loop.now(), 3.0);
}

TEST(EventLoop, FifoForEqualTimes) {
    EventLoop loop;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        loop.schedule(1.0, [&order, i] { order.push_back(i); });
    loop.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, EventsCanScheduleMoreEvents) {
    EventLoop loop;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10) loop.schedule(1.0, chain);
    };
    loop.schedule(0.0, chain);
    loop.run();
    EXPECT_EQ(fired, 10);
    EXPECT_DOUBLE_EQ(loop.now(), 9.0);
}

TEST(EventLoop, RunUntilAdvancesClockAndStops) {
    EventLoop loop;
    int fired = 0;
    loop.schedule(1.0, [&] { ++fired; });
    loop.schedule(5.0, [&] { ++fired; });
    const auto n = loop.runUntil(2.0);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(loop.now(), 2.0);
    EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RunWithLimit) {
    EventLoop loop;
    for (int i = 0; i < 10; ++i)
        loop.schedule(double(i), [] {});
    EXPECT_EQ(loop.run(4), 4u);
    EXPECT_EQ(loop.pending(), 6u);
}

TEST(EventLoop, RejectsPastScheduling) {
    EventLoop loop;
    loop.schedule(1.0, [] {});
    loop.run();
    EXPECT_THROW(loop.scheduleAt(0.5, [] {}), cop::InvalidArgument);
    EXPECT_THROW(loop.schedule(-1.0, [] {}), cop::InvalidArgument);
}

struct TestNet {
    EventLoop loop;
    OverlayNetwork net{loop};

    Node makeNode(const std::string& name, std::uint64_t seed) {
        return Node(net, name, KeyPair::generate(seed));
    }
};

void mutualTrust(Node& a, Node& b) {
    a.trust(b.publicKey());
    b.trust(a.publicKey());
}

TEST(Overlay, ConnectRequiresMutualTrust) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    EXPECT_THROW(t.net.connect(a.id(), b.id(), {}), cop::InvalidArgument);
    a.trust(b.publicKey()); // one-way is not enough
    EXPECT_THROW(t.net.connect(a.id(), b.id(), {}), cop::InvalidArgument);
    b.trust(a.publicKey());
    t.net.connect(a.id(), b.id(), {});
    EXPECT_TRUE(t.net.connected(a.id(), b.id()));
}

TEST(Overlay, DirectDeliveryWithLatency) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    mutualTrust(a, b);
    t.net.connect(a.id(), b.id(), LinkProperties{0.5, 1e6});

    double deliveredAt = -1.0;
    b.setHandler([&](const Message&) { deliveredAt = t.loop.now(); });
    Message msg;
    msg.type = MessageType::Heartbeat;
    msg.source = a.id();
    msg.destination = b.id();
    msg.payload.assign(100, 0);
    t.net.send(msg);
    t.loop.run();
    // latency + bytes/bandwidth = 0.5 + 196/1e6.
    EXPECT_NEAR(deliveredAt, 0.5 + 196.0 / 1e6, 1e-9);
}

TEST(Overlay, MultiHopRoutingTakesLowestLatencyPath) {
    // a - b - d (fast), a - c - d (slow): message a->d goes via b.
    TestNet t;
    Node a = t.makeNode("a", 1), b = t.makeNode("b", 2),
         c = t.makeNode("c", 3), d = t.makeNode("d", 4);
    mutualTrust(a, b);
    mutualTrust(a, c);
    mutualTrust(b, d);
    mutualTrust(c, d);
    t.net.connect(a.id(), b.id(), LinkProperties{0.01, 1e9});
    t.net.connect(b.id(), d.id(), LinkProperties{0.01, 1e9});
    t.net.connect(a.id(), c.id(), LinkProperties{1.0, 1e9});
    t.net.connect(c.id(), d.id(), LinkProperties{1.0, 1e9});

    EXPECT_EQ(t.net.nextHop(a.id(), d.id()), b.id());

    int delivered = 0;
    d.setHandler([&](const Message&) { ++delivered; });
    Message msg;
    msg.source = a.id();
    msg.destination = d.id();
    t.net.send(msg);
    t.loop.run();
    EXPECT_EQ(delivered, 1);
    // Traffic accounted on both hops of the fast path, none on the slow.
    EXPECT_EQ(t.net.linkStats(a.id(), b.id()).messages, 1u);
    EXPECT_EQ(t.net.linkStats(b.id(), d.id()).messages, 1u);
    EXPECT_EQ(t.net.linkStats(a.id(), c.id()).messages, 0u);
}

TEST(Overlay, UnreachableDestinationDeadLetters) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    std::vector<DeadLetterReason> reasons;
    t.net.setDeadLetterHandler(
        [&](const Message&, DeadLetterReason r) { reasons.push_back(r); });
    Message msg;
    msg.source = a.id();
    msg.destination = b.id();
    EXPECT_NO_THROW(t.net.send(msg));
    EXPECT_EQ(t.net.faultStats().deadLetters, 1u);
    ASSERT_EQ(reasons.size(), 1u);
    EXPECT_EQ(reasons[0], DeadLetterReason::NoRoute);
    // Invalid node ids are still programming errors, not network faults.
    Message bad;
    bad.source = a.id();
    bad.destination = kInvalidNode;
    EXPECT_THROW(t.net.send(bad), cop::InvalidArgument);
}

TEST(Overlay, StatsAggregation) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    mutualTrust(a, b);
    t.net.connect(a.id(), b.id(), {});
    for (int i = 0; i < 3; ++i) {
        Message msg;
        msg.source = a.id();
        msg.destination = b.id();
        msg.payload.assign(10, 0);
        t.net.send(msg);
    }
    t.loop.run();
    EXPECT_EQ(t.net.totalStats().messages, 3u);
    EXPECT_EQ(t.net.nodeStats(a.id()).messages, 3u);
    EXPECT_EQ(t.net.totalStats().bytes, 3u * 106u);
}

TEST(Overlay, MessageTypeNames) {
    EXPECT_STREQ(messageTypeName(MessageType::Heartbeat), "Heartbeat");
    EXPECT_STREQ(messageTypeName(MessageType::WorkerFailed), "WorkerFailed");
}

TEST(Overlay, HeartbeatWireSizeIsSmall) {
    // Paper: "a message size typically less than 200 bytes".
    Message hb;
    hb.type = MessageType::Heartbeat;
    hb.payload.assign(60, 0); // typical encoded heartbeat
    EXPECT_LT(hb.wireSize(), 200u);
}

TEST(KeyPairTest, GenerationIsDeterministicAndDistinct) {
    const auto a = KeyPair::generate(1);
    const auto b = KeyPair::generate(1);
    const auto c = KeyPair::generate(2);
    EXPECT_EQ(a.publicKey, b.publicKey);
    EXPECT_NE(a.publicKey, c.publicKey);
    EXPECT_NE(a.publicKey, a.privateKey);
}


TEST(Overlay, SharedFilesystemSkipsBulkPayloadBytes) {
    TestNet t;
    Node a = t.makeNode("worker", 1);
    Node b = t.makeNode("head", 2);
    mutualTrust(a, b);
    LinkProperties props;
    props.sharedFilesystem = true;
    t.net.connect(a.id(), b.id(), props);

    Message bulk;
    bulk.type = MessageType::CommandOutput;
    bulk.source = a.id();
    bulk.destination = b.id();
    bulk.payload.assign(1'000'000, 0);
    t.net.send(bulk);
    t.loop.run();
    // Only the ~96-byte frame crossed the wire.
    EXPECT_LT(t.net.totalStats().bytes, 200u);

    Message control;
    control.type = MessageType::Heartbeat; // not bulk: full size
    control.source = a.id();
    control.destination = b.id();
    control.payload.assign(50, 0);
    t.net.send(control);
    t.loop.run();
    EXPECT_GE(t.net.totalStats().bytes, 96u + 50u);
}

TEST(EventLoop, CancelledTimerNeverFires) {
    EventLoop loop;
    int fired = 0;
    const auto keep = loop.scheduleTimer(1.0, [&] { fired += 1; });
    const auto dead = loop.scheduleTimer(2.0, [&] { fired += 100; });
    EXPECT_TRUE(loop.cancelTimer(dead));
    EXPECT_FALSE(loop.cancelTimer(dead)); // already dead
    loop.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(loop.cancelTimer(keep)); // already fired
}

TEST(Backoff, GrowsExponentiallyAndCaps) {
    BackoffPolicy policy{30.0, 2.0, 480.0, 0.0};
    Rng rng(7);
    EXPECT_DOUBLE_EQ(policy.delay(0, rng), 30.0);
    EXPECT_DOUBLE_EQ(policy.delay(1, rng), 60.0);
    EXPECT_DOUBLE_EQ(policy.delay(2, rng), 120.0);
    EXPECT_DOUBLE_EQ(policy.delay(3, rng), 240.0);
    EXPECT_DOUBLE_EQ(policy.delay(4, rng), 480.0);
    EXPECT_DOUBLE_EQ(policy.delay(9, rng), 480.0); // capped
}

TEST(Backoff, JitterStaysInRangeAndDesynchronizes) {
    BackoffPolicy policy{30.0, 2.0, 480.0, 0.25};
    Rng a(1), b(2);
    bool differed = false;
    for (int attempt = 0; attempt < 6; ++attempt) {
        const double da = policy.delay(attempt, a);
        const double db = policy.delay(attempt, b);
        const double base = std::min(480.0, 30.0 * std::pow(2.0, attempt));
        EXPECT_GT(da, base * 0.75 - 1e-9);
        EXPECT_LE(da, base);
        if (std::abs(da - db) > 1e-9) differed = true;
    }
    EXPECT_TRUE(differed);
}

TEST(Overlay, FaultPlanDropsEveryMessageOnLossyLink) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    mutualTrust(a, b);
    t.net.connect(a.id(), b.id(), {});
    FaultPlan plan;
    plan.seed = 42;
    plan.defaultProfile.dropProbability = 1.0;
    t.net.setFaultPlan(plan);

    int delivered = 0;
    b.setHandler([&](const Message&) { ++delivered; });
    for (int i = 0; i < 5; ++i) {
        Message msg;
        msg.source = a.id();
        msg.destination = b.id();
        t.net.send(msg);
    }
    t.loop.run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(t.net.faultStats().dropped, 5u);
    // Dropped messages still consumed the wire.
    EXPECT_EQ(t.net.linkStats(a.id(), b.id()).messages, 5u);
}

TEST(Overlay, FaultPlanDuplicatesDeliverTwice) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    mutualTrust(a, b);
    t.net.connect(a.id(), b.id(), {});
    FaultPlan plan;
    plan.seed = 7;
    FaultProfile lossy;
    lossy.duplicateProbability = 1.0;
    plan.linkProfiles[{std::min(a.id(), b.id()),
                       std::max(a.id(), b.id())}] = lossy;
    t.net.setFaultPlan(plan);

    int delivered = 0;
    b.setHandler([&](const Message&) { ++delivered; });
    Message msg;
    msg.source = a.id();
    msg.destination = b.id();
    t.net.send(msg);
    t.loop.run();
    EXPECT_EQ(delivered, 2);
    EXPECT_EQ(t.net.faultStats().duplicated, 1u);
}

TEST(Overlay, ScheduledLinkCutHealsOnTime) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    mutualTrust(a, b);
    t.net.connect(a.id(), b.id(), {});
    FaultPlan plan;
    plan.cutLink(a.id(), b.id(), /*at=*/10.0, /*heal=*/20.0);
    t.net.setFaultPlan(plan);

    int delivered = 0, dead = 0;
    b.setHandler([&](const Message&) { ++delivered; });
    t.net.setDeadLetterHandler(
        [&](const Message&, DeadLetterReason) { ++dead; });
    auto sendOne = [&] {
        Message msg;
        msg.source = a.id();
        msg.destination = b.id();
        t.net.send(msg);
    };
    t.loop.schedule(15.0, sendOne); // during the cut: dead letter
    t.loop.schedule(25.0, sendOne); // after the heal: delivered
    t.loop.run();
    EXPECT_EQ(dead, 1);
    EXPECT_EQ(delivered, 1);
    EXPECT_TRUE(t.net.linkUsable(a.id(), b.id()));
    EXPECT_EQ(t.net.faultStats().linkCuts, 1u);
}

TEST(Overlay, CrashedNodeDeadLettersUntilRestart) {
    TestNet t;
    Node a = t.makeNode("a", 1);
    Node b = t.makeNode("b", 2);
    mutualTrust(a, b);
    t.net.connect(a.id(), b.id(), {});
    FaultPlan plan;
    plan.crashNode(b.id(), /*at=*/10.0, /*restart=*/20.0);
    t.net.setFaultPlan(plan);

    int delivered = 0;
    std::vector<DeadLetterReason> reasons;
    b.setHandler([&](const Message&) { ++delivered; });
    t.net.setDeadLetterHandler(
        [&](const Message&, DeadLetterReason r) { reasons.push_back(r); });
    auto sendOne = [&] {
        Message msg;
        msg.source = a.id();
        msg.destination = b.id();
        t.net.send(msg);
    };
    t.loop.schedule(15.0, [&] {
        EXPECT_FALSE(t.net.nodeUp(b.id()));
        sendOne();
    });
    t.loop.schedule(25.0, sendOne);
    t.loop.run();
    EXPECT_EQ(delivered, 1);
    ASSERT_EQ(reasons.size(), 1u);
    EXPECT_EQ(reasons[0], DeadLetterReason::DestinationDown);
    EXPECT_TRUE(t.net.nodeUp(b.id()));
    EXPECT_EQ(t.net.faultStats().crashes, 1u);
}

TEST(Overlay, RoutesAroundCutLink) {
    // a - b - d and a - c - d: cutting a-b reroutes via c.
    TestNet t;
    Node a = t.makeNode("a", 1), b = t.makeNode("b", 2),
         c = t.makeNode("c", 3), d = t.makeNode("d", 4);
    mutualTrust(a, b);
    mutualTrust(a, c);
    mutualTrust(b, d);
    mutualTrust(c, d);
    t.net.connect(a.id(), b.id(), LinkProperties{0.01, 1e9});
    t.net.connect(b.id(), d.id(), LinkProperties{0.01, 1e9});
    t.net.connect(a.id(), c.id(), LinkProperties{1.0, 1e9});
    t.net.connect(c.id(), d.id(), LinkProperties{1.0, 1e9});

    t.net.cutLink(a.id(), b.id());
    EXPECT_FALSE(t.net.linkUsable(a.id(), b.id()));
    EXPECT_EQ(t.net.nextHop(a.id(), d.id()), c.id());

    int delivered = 0;
    d.setHandler([&](const Message&) { ++delivered; });
    Message msg;
    msg.source = a.id();
    msg.destination = d.id();
    t.net.send(msg);
    t.loop.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(t.net.linkStats(a.id(), c.id()).messages, 1u);
    EXPECT_EQ(t.net.linkStats(a.id(), b.id()).messages, 0u);
}

TEST(Overlay, TraceHashIsDeterministicUnderSeed) {
    auto runOnce = [](std::uint64_t seed) {
        TestNet t;
        Node a = t.makeNode("a", 1);
        Node b = t.makeNode("b", 2);
        mutualTrust(a, b);
        t.net.connect(a.id(), b.id(), {});
        FaultPlan plan;
        plan.seed = seed;
        plan.defaultProfile.dropProbability = 0.5;
        plan.defaultProfile.duplicateProbability = 0.25;
        t.net.setFaultPlan(plan);
        b.setHandler([](const Message&) {});
        for (int i = 0; i < 20; ++i) {
            Message msg;
            msg.source = a.id();
            msg.destination = b.id();
            msg.id = std::uint64_t(i + 1);
            t.net.send(msg);
        }
        t.loop.run();
        return t.net.traceHash();
    };
    EXPECT_EQ(runOnce(11), runOnce(11));
    EXPECT_NE(runOnce(11), runOnce(12));
}

TEST(Overlay, BulkDataClassification) {
    EXPECT_TRUE(isBulkDataMessage(MessageType::CommandOutput));
    EXPECT_TRUE(isBulkDataMessage(MessageType::CheckpointData));
    EXPECT_TRUE(isBulkDataMessage(MessageType::WorkloadAssign));
    EXPECT_FALSE(isBulkDataMessage(MessageType::Heartbeat));
    EXPECT_FALSE(isBulkDataMessage(MessageType::WorkloadRequest));
}

} // namespace
} // namespace cop::net
