// Chaos suite (paper §2.3): seeded fault injection against full
// deployments. Every scenario here drives real projects — adaptive MSM
// sampling and BAR free-energy chains — through an overlay that drops,
// duplicates and reorders messages, cuts links, partitions the network
// and crashes nodes, then asserts that no command is ever permanently
// lost and that the same seed reproduces the same event trace.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/backends.hpp"
#include "core/bar_controller.hpp"
#include "core/copernicus.hpp"
#include "core/msm_controller.hpp"
#include "mdlib/proteins.hpp"

namespace cop {
namespace {

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
    const char* v = std::getenv(name);
    return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/// Registry speaking both project dialects so any worker can serve the
/// MSM and the BAR project (paper Fig. 1: one deployment, many projects).
core::ExecutableRegistry dualRegistry() {
    core::ExecutableRegistry reg;
    reg.add("mdrun", core::makeMdrunExecutable(
                         core::linearDurationModel(0.05)));
    reg.add("fe_sample", core::makeFeSampleExecutable(
                             core::linearDurationModel(0.001)));
    return reg;
}

core::ExecutableRegistry echoRegistry(double duration) {
    core::ExecutableRegistry reg;
    reg.add("echo", [duration](const core::CommandSpec& cmd, int) {
        core::Execution e;
        e.result.commandId = cmd.id;
        e.result.projectId = cmd.projectId;
        e.result.trajectoryId = cmd.trajectoryId;
        e.result.generation = cmd.generation;
        e.result.success = true;
        e.simSeconds = duration;
        return e;
    });
    return reg;
}

/// Submits `n` fixed echo commands and records completions.
class FixedController : public core::Controller {
public:
    explicit FixedController(int n) : n_(n) {}
    void onProjectStart(core::ProjectContext& ctx) override {
        for (int i = 0; i < n_; ++i) {
            core::CommandSpec spec;
            spec.executable = "echo";
            spec.steps = 10;
            spec.trajectoryId = i;
            ctx.submitCommand(std::move(spec));
        }
    }
    void onCommandFinished(core::ProjectContext&,
                           const core::CommandResult& r) override {
        results.push_back(r);
    }
    bool isDone(const core::ProjectContext& ctx) const override {
        return int(results.size()) == n_ && ctx.outstandingCommands() == 0;
    }
    std::vector<core::CommandResult> results;

private:
    int n_;
};

core::MsmControllerParams miniMsmParams(std::uint64_t seed) {
    auto model = md::hairpinGoModel();
    core::MsmControllerParams mp;
    mp.model = model;
    mp.startingConformations = md::makeUnfoldedConformations(model, 2, 9);
    mp.tasksPerStart = 2;
    mp.segmentSteps = 600;
    mp.maxGenerations = 1;
    mp.pipeline.numClusters = 8;
    mp.pipeline.snapshotStride = 2;
    mp.simulation.integrator.temperature = 0.5;
    mp.simulation.sampleInterval = 50;
    mp.seed = seed;
    return mp;
}

core::BarControllerParams miniBarParams(std::uint64_t seed) {
    core::BarControllerParams bp;
    bp.numWindows = 4;
    bp.samplesPerCommand = 1000;
    bp.targetError = 0.05;
    bp.maxRounds = 2;
    bp.commandsPerRound = 4;
    bp.seed = seed;
    return bp;
}

/// One fully loaded chaos run: two servers, eight workers (two of which
/// crash), ≥5% loss + duplication everywhere, one transient partition
/// isolating the relay side, and both flagship project types in flight.
struct ChaosRun {
    bool done = false;
    bool msmDone = false;
    bool barDone = false;
    std::uint64_t traceHash = 0;
    net::FaultStats faultStats;
};

ChaosRun runChaosDeployment(std::uint64_t seed, bool batching = true) {
    core::Deployment dep(seed);
    core::ServerConfig sc;
    sc.heartbeatInterval = 30.0;
    sc.batch.enabled = batching;
    auto& project = dep.addServer("project", sc);
    auto& relay = dep.addServer("relay", sc);
    dep.connectServers(project, relay, core::links::dataCenter());

    core::WorkerConfig wc;
    wc.heartbeatInterval = 30.0;
    wc.batch.enabled = batching;
    std::vector<net::NodeId> relaySide{relay.id()};
    for (int w = 0; w < 8; ++w) {
        auto& home = w < 4 ? project : relay;
        auto& worker =
            dep.addWorker("w" + std::to_string(w), home, wc, dualRegistry(),
                          core::links::intraCluster());
        if (w >= 4) relaySide.push_back(worker.id());
        // Two of the eight workers die mid-run (paper §2.3 burn-in).
        if (w == 1) worker.failAfter(60.0);
        if (w == 5) worker.failAfter(90.0);
    }

    net::FaultPlan plan;
    plan.seed = seed;
    plan.defaultProfile.dropProbability = 0.05;
    plan.defaultProfile.duplicateProbability = 0.05;
    plan.defaultProfile.reorderProbability = 0.05;
    // Transient partition: the relay island loses the project server for
    // two minutes in the middle of the run.
    plan.partition(relaySide, 150.0, 270.0);
    dep.setFaultPlan(plan);

    const auto msmId =
        project.createProject("chaos-msm", std::make_unique<core::MsmController>(
                                               miniMsmParams(seed)));
    const auto barId =
        project.createProject("chaos-bar", std::make_unique<core::BarController>(
                                               miniBarParams(seed)));

    ChaosRun run;
    run.done = dep.runUntilDone(5e5);
    run.msmDone = project.projectDone(msmId);
    run.barDone = project.projectDone(barId);
    run.traceHash = dep.network().traceHash();
    run.faultStats = dep.network().faultStats();
    return run;
}

TEST(Chaos, LossAndDuplicationSweepMsmAndBar) {
    // Multi-seed sweep; CI widens/narrows it via the environment.
    const std::uint64_t base = envU64("COP_CHAOS_SEED_BASE", 1000);
    const std::uint64_t count = envU64("COP_CHAOS_SEED_COUNT", 20);
    for (std::uint64_t s = 0; s < count; ++s) {
        const std::uint64_t seed = base + s;
        const auto run = runChaosDeployment(seed);
        EXPECT_TRUE(run.done) << "seed " << seed << " did not finish";
        EXPECT_TRUE(run.msmDone) << "seed " << seed << " lost MSM commands";
        EXPECT_TRUE(run.barDone) << "seed " << seed << " lost BAR commands";
        EXPECT_GT(run.faultStats.dropped, 0u) << "seed " << seed;
    }
}

TEST(Chaos, AckPiggybackEquivalentToStandaloneAcks) {
    // Envelope coalescing + piggybacked acks must not change any protocol
    // outcome: the same seeded chaos deployment completes both projects
    // whether acks ride data batches or pay their own frames.
    for (std::uint64_t seed : {11ull, 12ull}) {
        const auto batched = runChaosDeployment(seed, /*batching=*/true);
        const auto standalone = runChaosDeployment(seed, /*batching=*/false);
        EXPECT_TRUE(batched.done) << "seed " << seed;
        EXPECT_TRUE(standalone.done) << "seed " << seed;
        EXPECT_EQ(batched.msmDone, standalone.msmDone) << "seed " << seed;
        EXPECT_EQ(batched.barDone, standalone.barDone) << "seed " << seed;
    }
}

TEST(Chaos, TraceDeterministicUnderSeed) {
    // Same seed, same deployment: bit-identical event traces and fault
    // decisions. Different seed: a different trace.
    const auto a1 = runChaosDeployment(7);
    const auto a2 = runChaosDeployment(7);
    EXPECT_EQ(a1.traceHash, a2.traceHash);
    EXPECT_EQ(a1.faultStats.dropped, a2.faultStats.dropped);
    EXPECT_EQ(a1.faultStats.duplicated, a2.faultStats.duplicated);
    EXPECT_EQ(a1.faultStats.deadLetters, a2.faultStats.deadLetters);
    const auto b = runChaosDeployment(8);
    EXPECT_NE(a1.traceHash, b.traceHash);
}

TEST(Chaos, DuplicateDeliveryIsIdempotent) {
    // Every message on every link is delivered twice; the wire layer's
    // id-based dedup must make the application see each exactly once.
    core::Deployment dep(11);
    auto& server = dep.addServer("s0");
    auto& worker = dep.addWorker("w0", server, core::WorkerConfig{},
                                 echoRegistry(10.0),
                                 core::links::intraCluster());
    net::FaultPlan plan;
    plan.seed = 11;
    plan.defaultProfile.duplicateProbability = 1.0;
    dep.setFaultPlan(plan);

    auto ctrl = std::make_unique<FixedController>(5);
    auto* c = ctrl.get();
    server.createProject("dup", std::move(ctrl));
    ASSERT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(c->results.size(), 5u); // exactly once each
    EXPECT_EQ(server.stats().commandsCompleted, 5u);
    EXPECT_GT(dep.network().faultStats().duplicated, 0u);
    EXPECT_GT(worker.wireStats().duplicatesDropped +
                  server.wireStats().duplicatesDropped,
              0u);
}

TEST(Chaos, TransientPartitionHeals) {
    // The worker side is unreachable for a while mid-run; retransmits
    // carry the protocol across the outage and the project completes.
    core::Deployment dep(13);
    auto& s0 = dep.addServer("s0");
    auto& s1 = dep.addServer("s1");
    dep.connectServers(s0, s1, core::links::dataCenter());
    auto& w0 = dep.addWorker("w0", s1, core::WorkerConfig{},
                             echoRegistry(50.0), core::links::intraCluster());
    auto& w1 = dep.addWorker("w1", s1, core::WorkerConfig{},
                             echoRegistry(50.0), core::links::intraCluster());

    net::FaultPlan plan;
    plan.seed = 13;
    plan.partition({s1.id(), w0.id(), w1.id()}, 100.0, 250.0);
    dep.setFaultPlan(plan);

    auto ctrl = std::make_unique<FixedController>(8);
    auto* c = ctrl.get();
    s0.createProject("partitioned", std::move(ctrl));
    ASSERT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(c->results.size(), 8u);
    EXPECT_GE(dep.network().faultStats().linkCuts, 1u);
    // The outage actually forced retransmissions somewhere.
    std::uint64_t retransmits = s0.wireStats().retransmits +
                                s1.wireStats().retransmits +
                                w0.wireStats().retransmits +
                                w1.wireStats().retransmits;
    EXPECT_GT(retransmits, 0u);
}

TEST(Chaos, CheckpointHandoffUnderLossyLinks) {
    // A worker dies mid-command on a lossy network; the replacement must
    // resume from the newest streamed checkpoint, and the stored
    // trajectory must stay contiguous (no gaps, no duplicated frames).
    core::Deployment dep(17);
    core::ServerConfig sc;
    sc.heartbeatInterval = 30.0;
    auto& server = dep.addServer("s0", sc);

    auto model = md::hairpinGoModel();
    core::MsmControllerParams mp;
    mp.model = model;
    mp.startingConformations = md::makeUnfoldedConformations(model, 2, 9);
    mp.tasksPerStart = 1;
    mp.segmentSteps = 2000; // 400 s per command at 0.2 s/step
    mp.maxGenerations = 1;
    mp.pipeline.numClusters = 8;
    mp.pipeline.snapshotStride = 2;
    mp.simulation.integrator.temperature = 0.5;
    mp.simulation.sampleInterval = 50;
    mp.seed = 17;
    auto controller = std::make_unique<core::MsmController>(mp);
    auto* msm = controller.get();
    server.createProject("handoff", std::move(controller));

    core::ExecutableRegistry reg;
    reg.add("mdrun",
            core::makeMdrunExecutable(core::linearDurationModel(0.2)));
    core::WorkerConfig wc;
    wc.heartbeatInterval = 30.0;
    auto& doomed = dep.addWorker("doomed", server, wc, std::move(reg),
                                 core::links::intraCluster());
    doomed.failAfter(150.0); // dies with ~250 s of its command left
    core::ExecutableRegistry reg2;
    reg2.add("mdrun",
             core::makeMdrunExecutable(core::linearDurationModel(0.2)));
    dep.addWorker("rescuer", server, wc, std::move(reg2),
                  core::links::intraCluster());

    net::FaultPlan plan;
    plan.seed = 17;
    plan.defaultProfile.dropProbability = 0.1; // checkpoints + acks drop too
    dep.setFaultPlan(plan);

    ASSERT_TRUE(dep.runUntilDone(1e6));
    EXPECT_GE(server.stats().commandsRequeued, 1u);
    // The streamed checkpoints travelled the handoff path as shared
    // buffers: the scheduler adopted bytes by reference, never copying.
    EXPECT_GT(server.schedulerStats().checkpointUpdates, 0u);
    EXPECT_GT(server.schedulerStats().checkpointBytesShared, 0u);
    EXPECT_EQ(server.schedulerStats().checkpointDeepCopies, 0u);
    for (const auto& [id, traj] : msm->trajectories()) {
        for (std::size_t f = 1; f < traj.numFrames(); ++f)
            EXPECT_EQ(traj.frame(f).step - traj.frame(f - 1).step, 50)
                << "trajectory " << id << " frame " << f;
    }
}

TEST(Chaos, WorkerFailsOverToAlternateServer) {
    // The worker's closest server dies for good while the project lives
    // on another server. After its reliable sends exhaust their
    // retransmits, the worker re-targets the undelivered message at a
    // configured fallback server and the project still completes.
    core::Deployment dep(19);
    auto& primary = dep.addServer("primary");
    auto& backup = dep.addServer("backup");
    dep.connectServers(primary, backup, core::links::dataCenter());

    core::WorkerConfig wc;
    wc.rpc.backoff = net::BackoffPolicy{5.0, 2.0, 20.0, 0.2};
    wc.rpc.maxAttempts = 3; // fail over quickly
    auto& worker = dep.addWorker("w0", primary, wc, echoRegistry(50.0),
                                 core::links::intraCluster());
    dep.addFallbackServer(worker, backup, core::links::dataCenter());

    net::FaultPlan plan;
    plan.crashNode(primary.id(), 60.0); // never restarts
    dep.setFaultPlan(plan);

    auto ctrl = std::make_unique<FixedController>(6);
    auto* c = ctrl.get();
    backup.createProject("failover", std::move(ctrl));
    ASSERT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(c->results.size(), 6u);
    EXPECT_GE(worker.stats().serverFailovers, 1u);
    EXPECT_EQ(worker.currentServer(), backup.id());
}

/// Submits an initial command batch at project start and accepts late
/// submissions mid-run; records trajectoryIds in completion order.
class LateSubmitController : public core::Controller {
public:
    LateSubmitController(std::vector<core::CommandSpec> initial, int expected)
        : initial_(std::move(initial)), expected_(expected) {}
    void onProjectStart(core::ProjectContext& ctx) override {
        ctx_ = &ctx;
        for (auto& spec : initial_) ctx.submitCommand(std::move(spec));
    }
    void submitLate(core::CommandSpec spec) {
        ctx_->submitCommand(std::move(spec));
    }
    void onCommandFinished(core::ProjectContext&,
                           const core::CommandResult& r) override {
        completionOrder.push_back(r.trajectoryId);
    }
    bool isDone(const core::ProjectContext&) const override {
        return int(completionOrder.size()) == expected_;
    }
    std::vector<int> completionOrder;

private:
    std::vector<core::CommandSpec> initial_;
    int expected_;
    core::ProjectContext* ctx_ = nullptr;
};

core::CommandSpec echoSpec(int trajectoryId, int cores) {
    core::CommandSpec spec;
    spec.executable = "echo";
    spec.steps = 10;
    spec.trajectoryId = trajectoryId;
    spec.preferredCores = cores;
    return spec;
}

TEST(Chaos, LeaseExpiryRequeueBeatsNewerSamePriorityWork) {
    // Requeue-to-head ordering end to end: command A is lost to a relay
    // crash and recovered by lease expiry while newer same-priority work G
    // is already waiting. The recovered A must land at the head of its
    // priority level and run before G.
    core::Deployment dep(29);
    core::ServerConfig sc;
    sc.heartbeatInterval = 30.0;
    auto& project = dep.addServer("project", sc);
    auto& relay = dep.addServer("relay", sc);
    dep.connectServers(project, relay, core::links::dataCenter());

    core::WorkerConfig wc;
    wc.heartbeatInterval = 30.0;
    wc.cores = 1; // doomed can only ever hold the 1-core command A
    auto& doomed = dep.addWorker("doomed", relay, wc, echoRegistry(400.0),
                                 core::links::intraCluster());
    wc.cores = 2;
    dep.addWorker("survivor", project, wc, echoRegistry(400.0),
                  core::links::intraCluster());

    net::FaultPlan plan;
    plan.crashNode(relay.id(), 100.0); // never restarts
    dep.setFaultPlan(plan);
    doomed.failAfter(100.0); // dies with the relay: no WorkerFailed signal

    // F (2 cores) occupies the survivor; A (1 core) lands on doomed.
    std::vector<core::CommandSpec> initial;
    initial.push_back(echoSpec(0, 2)); // F
    initial.push_back(echoSpec(1, 1)); // A
    auto ctrl =
        std::make_unique<LateSubmitController>(std::move(initial), 3);
    auto* c = ctrl.get();
    project.createProject("lease-order", std::move(ctrl));

    // G arrives while A's original run is still leased out.
    dep.loop().schedule(60.0, [c] { c->submitLate(echoSpec(2, 2)); });

    ASSERT_TRUE(dep.runUntilDone(1e6));
    EXPECT_GE(project.stats().leasesExpired, 1u);
    EXPECT_GE(project.stats().commandsRequeued, 1u);
    // F finishes on the survivor, then the recovered A beats the newer G.
    EXPECT_EQ(c->completionOrder, (std::vector<int>{0, 1, 2}));
}

TEST(Chaos, LeaseExpiryRequeuesAfterRelayCrash) {
    // A worker reports to a relay server while running a command leased
    // by the project server. Relay and worker die together, so no
    // WorkerFailed signal can ever reach the project server — only the
    // command lease notices, expires, and requeues onto the survivor.
    core::Deployment dep(23);
    core::ServerConfig sc;
    sc.heartbeatInterval = 30.0;
    auto& project = dep.addServer("project", sc);
    auto& relay = dep.addServer("relay", sc);
    dep.connectServers(project, relay, core::links::dataCenter());

    core::WorkerConfig wc;
    wc.heartbeatInterval = 30.0;
    auto& doomed = dep.addWorker("doomed", relay, wc, echoRegistry(200.0),
                                 core::links::intraCluster());
    dep.addWorker("survivor", project, wc, echoRegistry(200.0),
                  core::links::intraCluster());

    net::FaultPlan plan;
    plan.crashNode(relay.id(), 100.0); // never restarts
    dep.setFaultPlan(plan);
    doomed.failAfter(100.0);

    auto ctrl = std::make_unique<FixedController>(3);
    auto* c = ctrl.get();
    project.createProject("leased", std::move(ctrl));
    ASSERT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(c->results.size(), 3u);
    EXPECT_GE(project.stats().leasesExpired, 1u);
    EXPECT_GE(project.stats().commandsRequeued, 1u);
}

} // namespace
} // namespace cop
