// End-to-end integration scenarios spanning every layer of the stack.

#include <gtest/gtest.h>

#include "core/backends.hpp"
#include "core/copernicus.hpp"
#include "core/msm_controller.hpp"
#include "mdlib/observables.hpp"
#include "mdlib/units.hpp"
#include "msm/spectral.hpp"

namespace cop {
namespace {

core::ExecutableRegistry mdRegistry(double secondsPerStep = 0.2) {
    core::ExecutableRegistry reg;
    reg.add("mdrun", core::makeMdrunExecutable(
                         core::linearDurationModel(secondsPerStep)));
    return reg;
}

/// The paper's whole §3 pipeline at miniature scale: adaptive sampling on
/// the hairpin, MSM analysis, blind structure prediction — all through
/// the distributed framework.
TEST(Integration, PaperPipelineOnHairpin) {
    core::Deployment dep(42);
    auto& projectServer = dep.addServer("project");
    auto& relay = dep.addServer("relay");
    dep.connectServers(projectServer, relay, core::links::dataCenter());
    for (int w = 0; w < 4; ++w)
        dep.addWorker("w" + std::to_string(w),
                      w % 2 ? relay : projectServer, core::WorkerConfig{},
                      mdRegistry(), core::links::intraCluster());

    auto model = md::hairpinGoModel();
    core::MsmControllerParams mp;
    mp.model = model;
    mp.startingConformations = md::makeUnfoldedConformations(model, 3, 7);
    mp.tasksPerStart = 3;
    mp.segmentSteps = 1500;
    mp.maxGenerations = 3;
    mp.pipeline.numClusters = 25;
    mp.pipeline.snapshotStride = 2;
    mp.simulation.integrator.kind = md::IntegratorKind::LangevinBAOAB;
    mp.simulation.integrator.temperature = 0.55;
    mp.simulation.integrator.friction = 0.4;
    mp.simulation.sampleInterval = 25;
    mp.seed = 42;
    auto controller = std::make_unique<core::MsmController>(mp);
    auto* msm = controller.get();
    projectServer.createProject("hairpin", std::move(controller));

    ASSERT_TRUE(dep.runUntilDone(1e12));

    // The hairpin folds reliably at this temperature: the swarm must find
    // the native basin, and the blind prediction must identify it.
    EXPECT_LT(msm->minRmsdAngstrom(), md::kFoldedRmsdAngstrom);
    EXPECT_LT(msm->history().back().predictedRmsdAngstrom,
              2.0 * md::kFoldedRmsdAngstrom);
    EXPECT_GT(msm->history().back().foldedFraction, 0.1);

    // Downstream analysis works on the controller's final model (skip
    // when everything collapsed into a single connected state).
    const auto& result = *msm->lastMsm();
    if (result.model.numStates() >= 2) {
        const auto macro = msm::identifyMacrostates(result.model, 2, 1);
        double pop = 0.0;
        for (double p : macro.populations) pop += p;
        EXPECT_NEAR(pop, 1.0, 1e-9);
    }

    // Both servers carried traffic.
    EXPECT_GT(dep.network()
                  .linkStats(projectServer.id(), relay.id())
                  .messages,
              0u);
}

/// The paper §2.3 "cluster burn-in" scenario: every worker keeps dying,
/// yet the project completes, resuming each command from the newest
/// streamed checkpoint (not from scratch).
TEST(Integration, SurvivesRepeatedWorkerChurn) {
    core::Deployment dep(43);
    core::ServerConfig sc;
    sc.heartbeatInterval = 30.0;
    auto& server = dep.addServer("s0", sc);

    auto model = md::hairpinGoModel();
    core::MsmControllerParams mp;
    mp.model = model;
    mp.startingConformations = md::makeUnfoldedConformations(model, 2, 9);
    mp.tasksPerStart = 2;
    mp.segmentSteps = 2000;
    mp.maxGenerations = 1; // one generation: 4 commands + extensions
    mp.pipeline.numClusters = 10;
    mp.pipeline.snapshotStride = 2;
    mp.simulation.integrator.temperature = 0.5;
    mp.simulation.sampleInterval = 50;
    mp.seed = 43;
    auto controller = std::make_unique<core::MsmController>(mp);
    auto* msm = controller.get();
    server.createProject("churn", std::move(controller));

    core::WorkerConfig wc;
    wc.heartbeatInterval = 30.0;
    // Command duration is 2000 steps * 0.2 s = 400 s; workers die every
    // ~150 s, so no command can finish without checkpoint resumption.
    const double lifetime = 150.0;
    int spawned = 0;
    for (; spawned < 3; ++spawned) {
        auto& w = dep.addWorker("gen0-" + std::to_string(spawned), server,
                                wc, mdRegistry(), core::links::intraCluster());
        w.failAfter(lifetime * (1.0 + 0.3 * spawned));
    }
    // Keep replacing workers until the project finishes.
    bool done = false;
    for (int wave = 0; wave < 40 && !done; ++wave) {
        done = dep.runUntilDone(dep.loop().now() + 400.0);
        if (!done) {
            auto& w = dep.addWorker("wave" + std::to_string(wave), server,
                                    wc, mdRegistry(),
                                    core::links::intraCluster());
            if (wave < 6) w.failAfter(lifetime);
            ++spawned;
        }
    }
    ASSERT_TRUE(done) << "project did not survive worker churn";
    EXPECT_GE(server.stats().workersFailed, 3u);
    EXPECT_GE(server.stats().commandsRequeued, 3u);
    // Data integrity: every stored trajectory is contiguous (one frame
    // per sampling interval, no gaps or duplicates from the resumptions).
    for (const auto& [id, traj] : msm->trajectories()) {
        for (std::size_t f = 1; f < traj.numFrames(); ++f)
            EXPECT_EQ(traj.frame(f).step - traj.frame(f - 1).step, 50)
                << "trajectory " << id << " frame " << f;
    }
}

/// Resuming from a mid-segment checkpoint runs only the remaining steps:
/// trajectories never overshoot the segment boundary.
TEST(Integration, MidSegmentResumeRunsRemainingSteps) {
    const auto model = md::hairpinGoModel();
    md::SimulationConfig cfg;
    cfg.sampleInterval = 10;
    cfg.seed = 5;
    auto sim = md::Simulation::forGoModel(model, model.native, cfg);
    sim.initializeVelocities();
    sim.run(150); // mid-segment state: step 150 of a 400-step command

    core::CommandSpec cmd;
    cmd.id = 1;
    cmd.executable = "mdrun";
    cmd.steps = 400;
    cmd.input = sim.checkpoint();
    const auto handler =
        core::makeMdrunExecutable(core::linearDurationModel(0.1));
    const auto exec = handler(cmd, 1);
    const auto out = core::MdrunOutput::decode(exec.result.output);
    auto resumed = md::Simulation::restore(out.checkpoint);
    EXPECT_EQ(resumed.state().step, 400); // not 550
    EXPECT_NEAR(exec.simSeconds, 250 * 0.1, 1e-9);
}

} // namespace
} // namespace cop
