#include "msm/linalg.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace cop::msm {
namespace {

TEST(DenseMatrix, MultiplyVector) {
    DenseMatrix a(2, 3);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(0, 2) = 3;
    a(1, 0) = 4;
    a(1, 1) = 5;
    a(1, 2) = 6;
    const auto y = a.multiply(std::vector<double>{1.0, 1.0, 1.0});
    EXPECT_EQ(y, (std::vector<double>{6.0, 15.0}));
    const auto x = a.leftMultiply(std::vector<double>{1.0, 1.0});
    EXPECT_EQ(x, (std::vector<double>{5.0, 7.0, 9.0}));
}

TEST(DenseMatrix, MatrixProductAndTranspose) {
    DenseMatrix a(2, 2), b(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    b(0, 0) = 0;
    b(0, 1) = 1;
    b(1, 0) = 1;
    b(1, 1) = 0;
    const auto c = a.multiply(b);
    EXPECT_EQ(c(0, 0), 2);
    EXPECT_EQ(c(0, 1), 1);
    EXPECT_EQ(c(1, 0), 4);
    EXPECT_EQ(c(1, 1), 3);
    const auto t = a.transposed();
    EXPECT_EQ(t(0, 1), 3);
    EXPECT_EQ(t(1, 0), 2);
}

TEST(DenseMatrix, IdentityAndMaxAbsDiff) {
    const auto id = DenseMatrix::identity(3);
    EXPECT_EQ(id(1, 1), 1.0);
    EXPECT_EQ(id(0, 1), 0.0);
    auto other = id;
    other(2, 0) = 0.5;
    EXPECT_DOUBLE_EQ(id.maxAbsDiff(other), 0.5);
}

TEST(SolveLinearSystem, KnownSolution) {
    DenseMatrix a(2, 2);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 3;
    const auto x = solveLinearSystem(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting) {
    DenseMatrix a(2, 2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    const auto x = solveLinearSystem(a, {2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
    DenseMatrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;
    EXPECT_THROW(solveLinearSystem(a, {1.0, 2.0}), cop::NumericalError);
}

TEST(SolveLinearSystem, RandomRoundTrip) {
    cop::Rng rng(3);
    const std::size_t n = 20;
    DenseMatrix a(n, n);
    std::vector<double> xTrue(n);
    for (std::size_t i = 0; i < n; ++i) {
        xTrue[i] = rng.gaussian();
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
        a(i, i) += 5.0; // diagonally dominant for stability
    }
    const auto b = a.multiply(xTrue);
    const auto x = solveLinearSystem(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-9);
}

TEST(SymmetricEigen, DiagonalMatrix) {
    DenseMatrix a(3, 3);
    a(0, 0) = 3.0;
    a(1, 1) = 1.0;
    a(2, 2) = 2.0;
    const auto eig = symmetricEigen(a);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
    EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
    EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
    // Leading eigenvector is e0.
    EXPECT_NEAR(std::abs(eig.vectors(0, 0)), 1.0, 1e-10);
}

TEST(SymmetricEigen, TwoByTwoAnalytic) {
    DenseMatrix a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = a(1, 0) = 1.0;
    a(1, 1) = 2.0;
    const auto eig = symmetricEigen(a);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
    cop::Rng rng(5);
    const std::size_t n = 12;
    DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            a(i, j) = a(j, i) = rng.gaussian();
    const auto eig = symmetricEigen(a);
    // A = V diag(lambda) V^T
    DenseMatrix recon(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t k = 0; k < n; ++k)
                recon(i, j) +=
                    eig.vectors(i, k) * eig.values[k] * eig.vectors(j, k);
    EXPECT_LT(a.maxAbsDiff(recon), 1e-9);
}

TEST(SymmetricEigen, EigenvectorsAreOrthonormal) {
    cop::Rng rng(6);
    const std::size_t n = 8;
    DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            a(i, j) = a(j, i) = rng.uniform();
    const auto eig = symmetricEigen(a);
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t l = 0; l < n; ++l) {
            double d = 0.0;
            for (std::size_t i = 0; i < n; ++i)
                d += eig.vectors(i, k) * eig.vectors(i, l);
            EXPECT_NEAR(d, k == l ? 1.0 : 0.0, 1e-9);
        }
    }
}

} // namespace
} // namespace cop::msm
