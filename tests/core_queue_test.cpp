// CommandQueue and wire-format tests.

#include <gtest/gtest.h>

#include "core/executable.hpp"
#include "core/queue.hpp"
#include "core/wire.hpp"

namespace cop::core {
namespace {

CommandSpec makeCmd(CommandId id, const std::string& exe = "mdrun",
                    int cores = 1) {
    CommandSpec c;
    c.id = id;
    c.projectId = 1;
    c.executable = exe;
    c.steps = 100;
    c.preferredCores = cores;
    return c;
}

TEST(CommandQueue, ClaimRespectsExecutableAndCores) {
    CommandQueue q;
    q.push(makeCmd(1, "mdrun", 2));
    q.push(makeCmd(2, "fe_sample", 1));
    q.push(makeCmd(3, "mdrun", 2));

    const auto claimed = q.claim({"mdrun"}, 3, /*worker=*/7);
    ASSERT_EQ(claimed.size(), 1u); // second mdrun needs 2 cores, only 1 left
    EXPECT_EQ(claimed[0].id, 1u);
    EXPECT_EQ(q.pendingCount(), 2u);
    EXPECT_EQ(q.inFlightCount(), 1u);
    EXPECT_EQ(q.holderOf(1).value(), 7);
}

TEST(CommandQueue, ClaimSkipsUnknownExecutables) {
    CommandQueue q;
    q.push(makeCmd(1, "exotic"));
    EXPECT_TRUE(q.claim({"mdrun"}, 8, 1).empty());
    EXPECT_TRUE(q.hasWorkFor({"exotic"}));
    EXPECT_FALSE(q.hasWorkFor({"mdrun"}));
}

TEST(CommandQueue, CompleteRemovesInFlight) {
    CommandQueue q;
    q.push(makeCmd(5));
    q.claim({"mdrun"}, 1, 2);
    const auto spec = q.complete(5);
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->id, 5u);
    EXPECT_FALSE(q.complete(5).has_value());
    EXPECT_EQ(q.inFlightCount(), 0u);
}

TEST(CommandQueue, RequeueWorkerRestoresPending) {
    CommandQueue q;
    q.push(makeCmd(1));
    q.push(makeCmd(2));
    q.claim({"mdrun"}, 2, 9);
    EXPECT_EQ(q.pendingCount(), 0u);
    const auto requeued = q.requeueWorker(9);
    EXPECT_EQ(requeued.size(), 2u);
    EXPECT_EQ(q.pendingCount(), 2u);
    EXPECT_EQ(q.inFlightCount(), 0u);
    // Untouched worker: no-op.
    EXPECT_TRUE(q.requeueWorker(10).empty());
}

TEST(CommandQueue, UpdateCheckpointFeedsRequeue) {
    CommandQueue q;
    q.push(makeCmd(1));
    q.claim({"mdrun"}, 1, 3);
    q.updateCheckpoint(1, SharedBytes{0xAB, 0xCD});
    q.requeueWorker(3);
    const auto again = q.claim({"mdrun"}, 1, 4);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].input, (std::vector<std::uint8_t>{0xAB, 0xCD}));
}

TEST(CommandQueue, RejectsInvalidCommands) {
    CommandQueue q;
    EXPECT_THROW(q.push(CommandSpec{}), cop::InvalidArgument);
    auto bad = makeCmd(1);
    bad.preferredCores = 0;
    EXPECT_THROW(q.push(bad), cop::InvalidArgument);
}

TEST(Wire, CommandSpecRoundTrip) {
    auto c = makeCmd(42, "mdrun", 8);
    c.projectServer = 3;
    c.trajectoryId = 17;
    c.generation = 2;
    c.input = {1, 2, 3};
    BinaryWriter w;
    c.serialize(w);
    BinaryReader r(w.buffer());
    const auto c2 = CommandSpec::deserialize(r);
    EXPECT_EQ(c2.id, 42u);
    EXPECT_EQ(c2.executable, "mdrun");
    EXPECT_EQ(c2.preferredCores, 8);
    EXPECT_EQ(c2.projectServer, 3);
    EXPECT_EQ(c2.trajectoryId, 17);
    EXPECT_EQ(c2.generation, 2);
    EXPECT_EQ(c2.input, c.input);
}

TEST(Wire, CommandResultRoundTrip) {
    CommandResult res;
    res.commandId = 9;
    res.projectId = 2;
    res.trajectoryId = 4;
    res.success = false;
    res.error = "boom";
    res.output = {9, 9};
    res.simSeconds = 12.5;
    BinaryWriter w;
    res.serialize(w);
    BinaryReader r(w.buffer());
    const auto r2 = CommandResult::deserialize(r);
    EXPECT_EQ(r2.commandId, 9u);
    EXPECT_FALSE(r2.success);
    EXPECT_EQ(r2.error, "boom");
    EXPECT_EQ(r2.output, res.output);
    EXPECT_EQ(r2.simSeconds, 12.5);
}

TEST(Wire, WorkloadRequestRoundTrip) {
    WorkloadRequestPayload p;
    p.worker = 5;
    p.platform = "OpenMPI";
    p.cores = 24;
    p.executables = {"mdrun", "fe_sample"};
    p.visited = {1, 2};
    const auto p2 = WorkloadRequestPayload::decode(p.encode());
    EXPECT_EQ(p2.worker, 5);
    EXPECT_EQ(p2.platform, "OpenMPI");
    EXPECT_EQ(p2.cores, 24);
    EXPECT_EQ(p2.executables, p.executables);
    EXPECT_EQ(p2.visited, p.visited);
}

TEST(Wire, WorkloadAssignRoundTrip) {
    WorkloadAssignPayload p;
    p.commands.push_back(makeCmd(1));
    p.commands.push_back(makeCmd(2, "fe_sample", 4));
    const auto p2 = WorkloadAssignPayload::decode(p.encode());
    ASSERT_EQ(p2.commands.size(), 2u);
    EXPECT_EQ(p2.commands[1].executable, "fe_sample");
}

TEST(Wire, HeartbeatRoundTripAndSize) {
    HeartbeatPayload hb;
    hb.worker = 3;
    hb.running = {100, 200};
    hb.projectServers = {0, 0};
    const auto bytes = hb.encode();
    // Paper: heartbeats are typically < 200 bytes on the wire.
    EXPECT_LT(bytes.size() + 96, 200u);
    const auto hb2 = HeartbeatPayload::decode(bytes);
    EXPECT_EQ(hb2.worker, 3);
    EXPECT_EQ(hb2.running, hb.running);
    EXPECT_EQ(hb2.projectServers, hb.projectServers);
}

TEST(Wire, CheckpointAndWorkerFailedRoundTrip) {
    CheckpointPayload cp;
    cp.commandId = 11;
    cp.projectId = 22;
    cp.projectServer = 1;
    cp.blob = {7, 7, 7};
    const auto cp2 = CheckpointPayload::decode(cp.encode());
    EXPECT_EQ(cp2.commandId, 11u);
    EXPECT_EQ(cp2.blob, cp.blob);

    WorkerFailedPayload wf;
    wf.worker = 6;
    wf.commands = {11, 12};
    wf.checkpoints = {{1}, {}};
    const auto wf2 = WorkerFailedPayload::decode(wf.encode());
    EXPECT_EQ(wf2.worker, 6);
    EXPECT_EQ(wf2.commands, wf.commands);
    ASSERT_EQ(wf2.checkpoints.size(), 2u);
    EXPECT_TRUE(wf2.checkpoints[1].empty());
}

template <typename Payload>
void expectExactEncodedSize(const Payload& p, const char* what) {
    const auto bytes = p.encode();
    EXPECT_EQ(bytes.size(), p.encodedSize()) << what;
    // The reserve() prehint is exact, so encoding never reallocates: the
    // buffer's capacity is exactly what was reserved up front.
    EXPECT_EQ(bytes.capacity(), p.encodedSize()) << what;
}

TEST(Wire, EncodedSizeIsExact) {
    WorkloadRequestPayload req;
    req.worker = 5;
    req.platform = "OpenMPI";
    req.cores = 24;
    req.executables = {"mdrun", "fe_sample"};
    req.visited = {1, 2, 3};
    expectExactEncodedSize(req, "WorkloadRequest");

    WorkloadAssignPayload assign;
    auto cmd = makeCmd(42, "mdrun", 8);
    cmd.input = {1, 2, 3, 4, 5};
    assign.commands.push_back(cmd);
    assign.commands.push_back(makeCmd(43, "fe_sample", 2));
    expectExactEncodedSize(assign, "WorkloadAssign");

    HeartbeatPayload hb;
    hb.worker = 3;
    hb.running = {100, 200};
    hb.projectServers = {0, 1};
    expectExactEncodedSize(hb, "Heartbeat");

    CheckpointPayload cp;
    cp.commandId = 11;
    cp.projectId = 22;
    cp.projectServer = 1;
    cp.blob = {7, 7, 7, 7};
    expectExactEncodedSize(cp, "Checkpoint");

    WorkerFailedPayload wf;
    wf.worker = 6;
    wf.commands = {11, 12};
    wf.checkpoints = {{1, 2}, {}};
    expectExactEncodedSize(wf, "WorkerFailed");

    CommandOutputPayload out;
    out.result.commandId = 9;
    out.result.error = "boom";
    out.result.output = {9, 9, 9};
    out.projectServer = 4;
    expectExactEncodedSize(out, "CommandOutput");

    LeaseRenewPayload lease;
    lease.worker = 2;
    lease.commands = {5, 6, 7};
    expectExactEncodedSize(lease, "LeaseRenew");

    NoWorkPayload none;
    none.worker = 8;
    expectExactEncodedSize(none, "NoWork");

    ClientRequestPayload creq;
    creq.projectId = 3;
    creq.command = "set clusters 16";
    expectExactEncodedSize(creq, "ClientRequest");

    ClientResponsePayload cresp;
    cresp.text = "project running: 12/225 trajectories";
    expectExactEncodedSize(cresp, "ClientResponse");

    AckPayload ack;
    ack.ackedMessageId = 77;
    expectExactEncodedSize(ack, "Ack");
}

TEST(ExecutableRegistryTest, DispatchAndErrors) {
    ExecutableRegistry reg;
    reg.add("echo", [](const CommandSpec& cmd, int cores) {
        Execution e;
        e.result.commandId = cmd.id;
        e.result.success = true;
        e.simSeconds = double(cores);
        return e;
    });
    EXPECT_TRUE(reg.has("echo"));
    EXPECT_FALSE(reg.has("other"));
    EXPECT_EQ(reg.names(), std::vector<std::string>{"echo"});
    const auto exec = reg.run(makeCmd(1, "echo"), 4);
    EXPECT_EQ(exec.simSeconds, 4.0);
    EXPECT_THROW(reg.run(makeCmd(2, "other"), 1), cop::InvalidArgument);
    EXPECT_THROW(reg.add("echo", [](const CommandSpec&, int) {
        return Execution{};
    }),
                 cop::InvalidArgument);
}


TEST(CommandQueue, HigherPriorityClaimsFirst) {
    CommandQueue q;
    auto low = makeCmd(1);
    low.priority = 0;
    auto high = makeCmd(2);
    high.priority = 5;
    auto mid = makeCmd(3);
    mid.priority = 2;
    q.push(low);
    q.push(high);
    q.push(mid);
    const auto first = q.claim({"mdrun"}, 1, 1);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].id, 2u);
    const auto second = q.claim({"mdrun"}, 1, 1);
    EXPECT_EQ(second[0].id, 3u);
    const auto third = q.claim({"mdrun"}, 1, 1);
    EXPECT_EQ(third[0].id, 1u);
}

TEST(CommandQueue, FifoWithinPriorityLevel) {
    CommandQueue q;
    for (CommandId id : {10, 11, 12}) q.push(makeCmd(id));
    const auto claimed = q.claim({"mdrun"}, 3, 1);
    ASSERT_EQ(claimed.size(), 3u);
    EXPECT_EQ(claimed[0].id, 10u);
    EXPECT_EQ(claimed[1].id, 11u);
    EXPECT_EQ(claimed[2].id, 12u);
}

TEST(CommandQueue, RequeuePreservesPriorityOrder) {
    CommandQueue q;
    auto urgent = makeCmd(1);
    urgent.priority = 9;
    q.push(urgent);
    q.claim({"mdrun"}, 1, 4); // urgent now in flight
    q.push(makeCmd(2));       // normal work arrives
    q.requeueWorker(4);       // failure: urgent returns
    const auto next = q.claim({"mdrun"}, 1, 5);
    ASSERT_EQ(next.size(), 1u);
    EXPECT_EQ(next[0].id, 1u);
}

TEST(Wire, PriorityRoundTrips) {
    auto c = makeCmd(1);
    c.priority = 7;
    BinaryWriter w;
    c.serialize(w);
    BinaryReader r(w.buffer());
    EXPECT_EQ(CommandSpec::deserialize(r).priority, 7);
}

} // namespace
} // namespace cop::core
