// Tests for histogram, thread pool, serialization, strings and tables.

#include <algorithm>
#include <array>
#include <atomic>
#include <filesystem>

#include <gtest/gtest.h>

#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/serialize.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace cop {
namespace {

TEST(Histogram, BinningAndOverflow) {
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.99);
    h.add(-1.0);
    h.add(10.0); // hi edge counts as overflow
    EXPECT_EQ(h.count(0), 1.0);
    EXPECT_EQ(h.count(9), 1.0);
    EXPECT_EQ(h.underflow(), 1.0);
    EXPECT_EQ(h.overflow(), 1.0);
    EXPECT_EQ(h.totalWeight(), 4.0);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(Histogram, WeightedDensityIntegratesToOne) {
    Histogram h(0.0, 1.0, 4);
    h.add(0.1, 2.0);
    h.add(0.6, 6.0);
    const auto d = h.density();
    double integral = 0.0;
    for (double v : d) integral += v * h.binWidth();
    EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, FractionAbove) {
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) h.add(i + 0.5);
    EXPECT_NEAR(h.fractionAbove(5.0), 0.5, 1e-12);
    EXPECT_NEAR(h.fractionAbove(0.0), 1.0, 1e-12);
}

TEST(Histogram, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(ThreadPool, SubmitReturnsResults) {
    ThreadPool pool(3);
    auto f1 = pool.submit([] { return 41 + 1; });
    auto f2 = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
    ThreadPool pool(2);
    bool touched = false;
    pool.parallelFor(5, 5, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
    ThreadPool pool(1);
    std::atomic<int> sum{0};
    pool.parallelFor(0, 100, [&](std::size_t i) { sum += int(i); });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ForChunksPartitionsRangeWithDenseChunkIds) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(997);
    std::array<std::atomic<int>, 4> chunkSeen{}; // size() + 1 chunk slots
    pool.forChunks(0, hits.size(),
                   [&](std::size_t c, std::size_t lo, std::size_t hi) {
                       ASSERT_LT(c, chunkSeen.size());
                       chunkSeen[c].fetch_add(1);
                       for (std::size_t i = lo; i < hi; ++i)
                           hits[i].fetch_add(1);
                   });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    for (const auto& c : chunkSeen) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ForChunksGrainedCoversRangeAndRespectsGrain) {
    ThreadPool pool(3);
    // A range below 2 * minGrain must run as a single chunk (the calling
    // thread), larger ranges split but never below the grain.
    for (const std::size_t n : {std::size_t(7), std::size_t(31),
                                std::size_t(64), std::size_t(997)}) {
        const std::size_t minGrain = 16;
        const std::size_t nChunks = pool.chunkCountForGrained(n, minGrain);
        EXPECT_GE(nChunks, 1u);
        EXPECT_LE(nChunks, pool.chunkCountFor(n));
        if (n < 2 * minGrain) EXPECT_EQ(nChunks, 1u);

        std::vector<std::atomic<int>> hits(n);
        std::vector<std::atomic<int>> chunkSeen(nChunks);
        pool.forChunksGrained(
            0, n, minGrain, [&](std::size_t c, std::size_t lo, std::size_t hi) {
                ASSERT_LT(c, chunkSeen.size());
                chunkSeen[c].fetch_add(1);
                for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
            });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
        for (const auto& c : chunkSeen) EXPECT_EQ(c.load(), 1);
    }
}

TEST(ThreadPool, ParallelReduceChunkedSumsDeterministically) {
    ThreadPool pool(4);
    auto sum = [&] {
        return pool.parallelReduceChunked(
            std::size_t{0}, std::size_t{100000}, 0.0,
            [](std::size_t lo, std::size_t hi) {
                double s = 0.0;
                for (std::size_t i = lo; i < hi; ++i) s += double(i) * 1e-3;
                return s;
            },
            [](double a, double b) { return a + b; });
    };
    const double first = sum();
    EXPECT_NEAR(first, 99999.0 * 100000.0 / 2.0 * 1e-3, 1e-3);
    // Chunk-order combine: bitwise identical on every run.
    for (int r = 0; r < 5; ++r) EXPECT_EQ(sum(), first);
}

TEST(ThreadPool, ParallelReducePerIndexMax) {
    ThreadPool pool(3);
    const auto best = pool.parallelReduce(
        std::size_t{0}, std::size_t{1237}, std::size_t{0},
        [](std::size_t i) { return (i * 7919) % 1237; },
        [](std::size_t a, std::size_t b) { return std::max(a, b); });
    EXPECT_EQ(best, 1236u);
}

TEST(ThreadPool, ParallelReduceEmptyRangeReturnsInit) {
    ThreadPool pool(2);
    const int r = pool.parallelReduce(
        std::size_t{5}, std::size_t{5}, -7, [](std::size_t) { return 1; },
        [](int a, int b) { return a + b; });
    EXPECT_EQ(r, -7);
}

TEST(ThreadPool, ChunkedCoversRange) {
    ThreadPool pool(3);
    std::atomic<long> total{0};
    pool.parallelForChunked(10, 110, [&](std::size_t lo, std::size_t hi) {
        long s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += long(i);
        total += s;
    });
    EXPECT_EQ(total.load(), (109 * 110 - 9 * 10) / 2);
}

TEST(Serialize, RoundTripScalarsAndStrings) {
    BinaryWriter w;
    w.write(std::int32_t(-7));
    w.write(std::uint64_t(1) << 63);
    w.write(3.14159);
    w.write(std::string("hello copernicus"));
    w.write(Vec3{1, 2, 3});
    BinaryReader r(w.buffer());
    EXPECT_EQ(r.read<std::int32_t>(), -7);
    EXPECT_EQ(r.read<std::uint64_t>(), std::uint64_t(1) << 63);
    EXPECT_EQ(r.read<double>(), 3.14159);
    EXPECT_EQ(r.readString(), "hello copernicus");
    EXPECT_EQ(r.readVec3(), Vec3(1, 2, 3));
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, RoundTripVectors) {
    BinaryWriter w;
    w.write(std::vector<double>{1.5, 2.5});
    w.write(std::vector<Vec3>{{1, 2, 3}, {4, 5, 6}});
    BinaryReader r(w.buffer());
    EXPECT_EQ(r.readVector<double>(), (std::vector<double>{1.5, 2.5}));
    const auto vs = r.readVec3Vector();
    ASSERT_EQ(vs.size(), 2u);
    EXPECT_EQ(vs[1], Vec3(4, 5, 6));
}

TEST(Serialize, TruncationThrows) {
    BinaryWriter w;
    w.write(3.14);
    BinaryReader r(std::span(w.buffer().data(), 4));
    EXPECT_THROW(r.read<double>(), IoError);
}

TEST(Serialize, HeaderValidation) {
    BinaryWriter w;
    w.writeHeader("ABCD", 3);
    BinaryReader r(w.buffer());
    EXPECT_EQ(r.readHeader("ABCD"), 3u);
    BinaryReader r2(w.buffer());
    EXPECT_THROW(r2.readHeader("WXYZ"), IoError);
}

TEST(Serialize, FileRoundTrip) {
    const auto path =
        (std::filesystem::temp_directory_path() / "cop_serialize_test.bin")
            .string();
    BinaryWriter w;
    w.write(std::string("file payload"));
    writeFile(path, w.buffer());
    const auto bytes = readFile(path);
    BinaryReader r(bytes);
    EXPECT_EQ(r.readString(), "file payload");
    std::filesystem::remove(path);
    EXPECT_THROW(readFile(path), IoError);
}

TEST(StringUtil, SplitJoinTrim) {
    EXPECT_EQ(split("a,b,,c", ','),
              (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(toLower("MiXeD"), "mixed");
    EXPECT_TRUE(startsWith("copernicus", "cop"));
    EXPECT_FALSE(startsWith("co", "cop"));
    EXPECT_TRUE(endsWith("file.txt", ".txt"));
}

TEST(StringUtil, Formatting) {
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatEngineering(1234567.0, 2), "1.23M");
    EXPECT_EQ(formatEngineering(999.0, 1), "999.0");
    EXPECT_EQ(formatEngineering(2500.0, 1), "2.5k");
    EXPECT_EQ(formatHours(0.5), "30.0m");
    EXPECT_EQ(formatHours(1.5), "1h 30m");
    EXPECT_EQ(formatHours(72.0), "3d 0.0h");
}

TEST(Table, RendersAlignedColumns) {
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const auto s = t.render();
    EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), InvalidArgument);
}

TEST(AsciiChart, ProducesPlausibleOutput) {
    std::vector<double> xs, ys;
    for (int i = 1; i <= 50; ++i) {
        xs.push_back(i);
        ys.push_back(i * i);
    }
    const auto chart = asciiChart(xs, ys, 40, 10);
    EXPECT_NE(chart.find('*'), std::string::npos);
    const auto logChart = asciiChart(xs, ys, 40, 10, true, true);
    EXPECT_NE(logChart.find("(log10)"), std::string::npos);
}


TEST(CliArgs, ParsesSubcommandFlagsAndSwitches) {
    const char* argv[] = {"prog", "fold", "--starts", "9",
                          "--rate", "2.5", "--verbose", "--name", "x"};
    CliArgs args(9, argv);
    EXPECT_EQ(args.subcommand(), "fold");
    EXPECT_EQ(args.getInt("starts", 0), 9);
    EXPECT_DOUBLE_EQ(args.getDouble("rate", 0.0), 2.5);
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_EQ(args.getString("name", ""), "x");
    EXPECT_EQ(args.getInt("missing", 42), 42);
    EXPECT_TRUE(args.unusedKeys().empty());
}

TEST(CliArgs, ReportsUnusedFlags) {
    const char* argv[] = {"prog", "run", "--typo", "1"};
    CliArgs args(4, argv);
    EXPECT_EQ(args.unusedKeys(), std::vector<std::string>{"typo"});
}

TEST(CliArgs, RejectsMalformedInput) {
    const char* bad1[] = {"prog", "run", "stray"};
    EXPECT_THROW(CliArgs(3, bad1), InvalidArgument);
    const char* bad2[] = {"prog", "run", "--n", "abc"};
    CliArgs args(4, bad2);
    EXPECT_THROW(args.getInt("n", 0), InvalidArgument);
    EXPECT_THROW(args.getDouble("n", 0.0), InvalidArgument);
}

TEST(CliArgs, EmptyInvocation) {
    const char* argv[] = {"prog"};
    CliArgs args(1, argv);
    EXPECT_EQ(args.subcommand(), "");
    EXPECT_FALSE(args.has("anything"));
}

} // namespace
} // namespace cop
