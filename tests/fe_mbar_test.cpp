// MBAR against the analytic harmonic chain and against pairwise BAR.

#include <gtest/gtest.h>

#include "fe/bar.hpp"
#include "fe/mbar.hpp"
#include "util/error.hpp"
#include "util/statistics.hpp"

namespace cop::fe {
namespace {

TEST(Mbar, RecoversAnalyticChain) {
    const auto states = harmonicLambdaChain({1.0, 0.0}, {9.0, 1.0}, 4);
    cop::Rng rng(1);
    const auto input = harmonicMbarInput(states, 20000, 1.0, rng);
    const auto result = mbar(input);
    ASSERT_TRUE(result.converged);
    for (std::size_t s = 1; s < states.size(); ++s) {
        const double exact = harmonicDeltaF(states[0], states[s], 1.0);
        EXPECT_NEAR(result.freeEnergies[s], exact, 0.02)
            << "state " << s;
    }
}

TEST(Mbar, GaugeIsFZeroEqualsZero) {
    const auto states = harmonicLambdaChain({1.0, 0.0}, {2.0, 0.0}, 2);
    cop::Rng rng(2);
    const auto input = harmonicMbarInput(states, 2000, 1.0, rng);
    const auto result = mbar(input);
    EXPECT_EQ(result.freeEnergies[0], 0.0);
}

TEST(Mbar, TwoStateMatchesBar) {
    const HarmonicState s0{1.0, 0.0}, s1{4.0, 0.5};
    cop::Rng rng(3);
    const auto input = harmonicMbarInput({s0, s1}, 20000, 1.0, rng);
    const auto m = mbar(input);

    // Rebuild the same samples' work values for BAR from the reduced
    // energies: forward work = u_1 - u_0 on state-0 samples, etc.
    std::vector<double> fwd, rev;
    for (std::size_t n = 0; n < 20000; ++n)
        fwd.push_back(input.reducedEnergies[n][1] -
                      input.reducedEnergies[n][0]);
    for (std::size_t n = 20000; n < 40000; ++n)
        rev.push_back(input.reducedEnergies[n][0] -
                      input.reducedEnergies[n][1]);
    const auto b = bar(fwd, rev);
    EXPECT_NEAR(m.freeEnergies[1], b.deltaF, 0.01);
    EXPECT_NEAR(m.freeEnergies[1], harmonicDeltaF(s0, s1, 1.0), 0.02);
}

TEST(Mbar, HandlesNonUniformBeta) {
    const double beta = 3.0;
    const auto states = harmonicLambdaChain({1.0, 0.0}, {4.0, 0.3}, 3);
    cop::Rng rng(4);
    const auto input = harmonicMbarInput(states, 15000, beta, rng);
    const auto result = mbar(input);
    ASSERT_TRUE(result.converged);
    // Reduced free energies are beta * deltaF.
    const double exact =
        beta * harmonicDeltaF(states.front(), states.back(), beta);
    EXPECT_NEAR(result.freeEnergies.back(), exact, 0.03);
}

TEST(Mbar, BeatsChainedBarOnSparseData) {
    // With few samples per window, MBAR's pooling should not do worse
    // than chained BAR (it uses strictly more information).
    const auto states = harmonicLambdaChain({1.0, 0.0}, {16.0, 0.0}, 5);
    const double exact =
        harmonicDeltaF(states.front(), states.back(), 1.0);
    cop::RunningStats mbarErr, barErr;
    for (int rep = 0; rep < 10; ++rep) {
        cop::Rng rng(100 + rep);
        const auto input = harmonicMbarInput(states, 300, 1.0, rng);
        const auto m = mbar(input);
        mbarErr.add(std::abs(m.freeEnergies.back() - exact));

        cop::Rng rng2(100 + rep);
        std::vector<std::vector<double>> fwd, rev;
        for (std::size_t w = 0; w + 1 < states.size(); ++w) {
            fwd.push_back(
                harmonicWorkSamples(states[w], states[w + 1], 300, 1.0,
                                    rng2));
            rev.push_back(
                harmonicWorkSamples(states[w + 1], states[w], 300, 1.0,
                                    rng2));
        }
        barErr.add(std::abs(barChain(fwd, rev).totalDeltaF - exact));
    }
    EXPECT_LT(mbarErr.mean(), 1.5 * barErr.mean());
}

TEST(Mbar, ValidatesInput) {
    MbarInput bad;
    bad.samplesPerState = {1};
    bad.reducedEnergies = {{0.0}};
    EXPECT_THROW(mbar(bad), cop::InvalidArgument);

    MbarInput mismatched;
    mismatched.samplesPerState = {2, 2};
    mismatched.reducedEnergies = {{0.0, 0.0}}; // says 4, provides 1
    EXPECT_THROW(mbar(mismatched), cop::InvalidArgument);
}

} // namespace
} // namespace cop::fe
