// Macrostates, transition path theory, Bayesian uncertainty.

#include <gtest/gtest.h>

#include "msm/spectral.hpp"
#include "util/statistics.hpp"

namespace cop::msm {
namespace {

/// Two metastable blocks of 3 states each, weakly connected: a textbook
/// two-macrostate system.
MarkovStateModel twoBlockModel() {
    DenseMatrix counts(6, 6);
    auto link = [&](int i, int j, double c) {
        counts(std::size_t(i), std::size_t(j)) = c;
        counts(std::size_t(j), std::size_t(i)) = c;
    };
    // Dense intra-block traffic.
    for (int b : {0, 3}) {
        link(b, b + 1, 500);
        link(b + 1, b + 2, 500);
        link(b, b + 2, 300);
        for (int i = b; i < b + 3; ++i)
            counts(std::size_t(i), std::size_t(i)) = 2000;
    }
    // Rare inter-block hop.
    link(2, 3, 5);
    MarkovModelParams p;
    return MarkovStateModel::fromCounts(counts, p);
}

TEST(Macrostates, RecoversTwoBlocks) {
    const auto model = twoBlockModel();
    const auto macro = identifyMacrostates(model, 2, 7);
    ASSERT_EQ(macro.assignment.size(), 6u);
    // All of block 1 shares one label; block 2 the other.
    for (int i = 1; i < 3; ++i)
        EXPECT_EQ(macro.assignment[std::size_t(i)], macro.assignment[0]);
    for (int i = 4; i < 6; ++i)
        EXPECT_EQ(macro.assignment[std::size_t(i)], macro.assignment[3]);
    EXPECT_NE(macro.assignment[0], macro.assignment[3]);
    // Near-symmetric populations, high metastability.
    EXPECT_NEAR(macro.populations[0], 0.5, 0.1);
    EXPECT_GT(macro.metastability, 0.95);
}

TEST(Macrostates, PopulationsSumToOne) {
    const auto model = twoBlockModel();
    const auto macro = identifyMacrostates(model, 3, 1);
    double total = 0.0;
    for (double p : macro.populations) total += p;
    EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Macrostates, RejectsDegenerateRequests) {
    const auto model = twoBlockModel();
    EXPECT_THROW(identifyMacrostates(model, 1), cop::InvalidArgument);
}

TEST(SlowEigenvectors, SecondEigenvectorSeparatesBlocks) {
    const auto model = twoBlockModel();
    const auto psi = slowEigenvectors(model, 1);
    ASSERT_EQ(psi.rows(), 6u);
    // The slowest mode changes sign between the blocks.
    const double s0 = psi(0, 0);
    for (int i = 1; i < 3; ++i)
        EXPECT_GT(psi(std::size_t(i), 0) * s0, 0.0);
    for (int i = 3; i < 6; ++i)
        EXPECT_LT(psi(std::size_t(i), 0) * s0, 0.0);
}

TEST(Tpt, FluxAndRateForTwoBlocks) {
    const auto model = twoBlockModel();
    const auto tpt = transitionPathTheory(model, {0}, {5});
    EXPECT_EQ(tpt.forwardCommittor[0], 0.0);
    EXPECT_EQ(tpt.forwardCommittor[5], 1.0);
    // Committor jumps across the bottleneck between states 2 and 3.
    EXPECT_LT(tpt.forwardCommittor[2], 0.5);
    EXPECT_GT(tpt.forwardCommittor[3], 0.5);
    EXPECT_GT(tpt.totalFlux, 0.0);
    EXPECT_GT(tpt.rate, 0.0);
    EXPECT_GT(tpt.mfpt, 1.0); // rare transition: many lag times
    // Reversible system: q- = 1 - q+.
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_NEAR(tpt.backwardCommittor[i],
                    1.0 - tpt.forwardCommittor[i], 1e-12);
}

TEST(Tpt, MfptConsistentWithLinearSolve) {
    // TPT's 1/rate approximates the pi-weighted MFPT from A; both should
    // agree on the order of magnitude for a strongly metastable system.
    const auto model = twoBlockModel();
    const auto tpt = transitionPathTheory(model, {0, 1, 2}, {3, 4, 5});
    const auto mfpt = model.meanFirstPassageTimes({3, 4, 5});
    const auto& pi = model.stationaryDistribution();
    double piA = 0.0, weighted = 0.0;
    for (int i = 0; i < 3; ++i) {
        piA += pi[std::size_t(i)];
        weighted += pi[std::size_t(i)] * mfpt[std::size_t(i)];
    }
    weighted /= piA;
    EXPECT_GT(tpt.mfpt, 0.3 * weighted);
    EXPECT_LT(tpt.mfpt, 3.0 * weighted);
}

TEST(Bayesian, SampledMatricesAreStochasticAndRespectSparsity) {
    DenseMatrix counts(3, 3);
    counts(0, 1) = 10;
    counts(1, 0) = 10;
    counts(1, 2) = 5;
    counts(2, 1) = 5;
    cop::Rng rng(3);
    const auto t = sampleTransitionMatrix(counts, rng);
    for (std::size_t i = 0; i < 3; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_GE(t(i, j), 0.0);
            row += t(i, j);
        }
        EXPECT_NEAR(row, 1.0, 1e-12);
    }
    // Unobserved transition 0 -> 2 never appears.
    EXPECT_EQ(t(0, 2), 0.0);
}

TEST(Bayesian, UncertaintyShrinksWithMoreCounts) {
    auto makeCounts = [](double scale) {
        DenseMatrix c(2, 2);
        c(0, 0) = 9 * scale;
        c(0, 1) = 1 * scale;
        c(1, 0) = 1 * scale;
        c(1, 1) = 9 * scale;
        return c;
    };
    auto observable = [](const DenseMatrix& t) { return t(0, 1); };
    cop::Rng rng1(5), rng2(5);
    const auto few =
        transitionMatrixUncertainty(makeCounts(1), observable, 400, rng1);
    const auto many =
        transitionMatrixUncertainty(makeCounts(100), observable, 400, rng2);
    EXPECT_NEAR(few.mean, 0.1, 0.08);
    EXPECT_NEAR(many.mean, 0.1, 0.01);
    EXPECT_LT(many.stddev, 0.5 * few.stddev);
}

TEST(Bayesian, PosteriorMeanTracksCounts) {
    DenseMatrix counts(2, 2);
    counts(0, 0) = 70;
    counts(0, 1) = 30;
    counts(1, 0) = 30;
    counts(1, 1) = 70;
    cop::Rng rng(9);
    auto observable = [](const DenseMatrix& t) { return t(0, 1); };
    const auto u =
        transitionMatrixUncertainty(counts, observable, 500, rng);
    EXPECT_NEAR(u.mean, 0.3, 0.03);
    EXPECT_EQ(u.samples.size(), 500u);
}

TEST(StationaryOf, MatchesModelStationary) {
    const auto model = twoBlockModel();
    const auto pi = stationaryOf(model.transitionMatrix());
    const auto& ref = model.stationaryDistribution();
    for (std::size_t i = 0; i < pi.size(); ++i)
        EXPECT_NEAR(pi[i], ref[i], 1e-8);
}

} // namespace
} // namespace cop::msm
