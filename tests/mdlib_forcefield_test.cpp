#include "mdlib/forcefield.hpp"

#include <gtest/gtest.h>

#include "mdlib/proteins.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace cop::md {
namespace {

/// A small LJ fluid in a periodic box.
struct LjSystem {
    Topology top;
    Box box;
    ForceFieldParams params;
    std::vector<Vec3> positions;
};

LjSystem makeLj(std::size_t n, double boxLen, std::uint64_t seed,
                bool charges = false) {
    LjSystem sys;
    sys.top = Topology();
    cop::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        sys.top.addParticle(1.0, charges ? (i % 2 ? 0.2 : -0.2) : 0.0);
    sys.top.finalize();
    sys.box = Box::cubic(boxLen);
    sys.params.kind = NonbondedKind::LennardJonesRF;
    sys.params.cutoff = 2.5;
    sys.params.useCoulombRF = charges;
    // Place on a jittered lattice to avoid overlaps.
    const int side = int(std::ceil(std::cbrt(double(n))));
    const double a = boxLen / side;
    std::size_t placed = 0;
    for (int x = 0; x < side && placed < n; ++x)
        for (int y = 0; y < side && placed < n; ++y)
            for (int z = 0; z < side && placed < n; ++z, ++placed)
                sys.positions.push_back(
                    {x * a + rng.uniform(-0.05, 0.05),
                     y * a + rng.uniform(-0.05, 0.05),
                     z * a + rng.uniform(-0.05, 0.05)});
    return sys;
}

TEST(ForceField, GoModelForcesMatchFiniteDifferencesAtNative) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    EXPECT_LT(maxForceError(ff, model.native), 1e-5);
}

TEST(ForceField, GoModelForcesMatchFiniteDifferencesPerturbed) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    cop::Rng rng(3);
    auto pos = model.native;
    for (auto& p : pos) p += rng.gaussianVec3(0.05);
    EXPECT_LT(maxForceError(ff, pos), 1e-4);
}

TEST(ForceField, LennardJonesForcesMatchFiniteDifferences) {
    auto sys = makeLj(27, 6.0, 5);
    ForceField ff(sys.top, sys.box, sys.params);
    EXPECT_LT(maxForceError(ff, sys.positions), 2e-4);
}

TEST(ForceField, ReactionFieldForcesMatchFiniteDifferences) {
    auto sys = makeLj(27, 6.0, 7, /*charges=*/true);
    ForceField ff(sys.top, sys.box, sys.params);
    EXPECT_LT(maxForceError(ff, sys.positions), 2e-4);
}

TEST(ForceField, NewtonsThirdLaw) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    cop::Rng rng(9);
    auto pos = model.native;
    for (auto& p : pos) p += rng.gaussianVec3(0.2);
    std::vector<Vec3> forces;
    ff.compute(pos, forces);
    Vec3 total{};
    for (const auto& f : forces) total += f;
    EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

/// Computes forces/energies for `sys` under the given kernel flavor.
Energies runFlavor(const LjSystem& sys, KernelFlavor flavor,
                   std::vector<Vec3>& forces, cop::ThreadPool* pool = nullptr) {
    auto params = sys.params;
    params.flavor = flavor;
    ForceField ff(sys.top, sys.box, params, pool);
    return ff.compute(sys.positions, forces);
}

void expectFlavorsAgree(const LjSystem& sys, double tol = 1e-10) {
    std::vector<Vec3> fScalar, fBlocked, fSoa;
    const auto eS = runFlavor(sys, KernelFlavor::Scalar, fScalar);
    const auto eB = runFlavor(sys, KernelFlavor::Blocked4, fBlocked);
    const auto eA = runFlavor(sys, KernelFlavor::Soa, fSoa);
    EXPECT_NEAR(eS.nonbonded, eB.nonbonded, tol);
    EXPECT_NEAR(eS.nonbonded, eA.nonbonded, tol);
    EXPECT_NEAR(eS.coulomb, eB.coulomb, tol);
    EXPECT_NEAR(eS.coulomb, eA.coulomb, tol);
    EXPECT_NEAR(eS.pairVirial, eA.pairVirial, 1e-8);
    for (std::size_t i = 0; i < fScalar.size(); ++i) {
        EXPECT_NEAR(norm(fScalar[i] - fBlocked[i]), 0.0, tol);
        EXPECT_NEAR(norm(fScalar[i] - fSoa[i]), 0.0, tol);
    }
}

TEST(ForceField, AllKernelFlavorsAgreeOnChargedLJ) {
    expectFlavorsAgree(makeLj(125, 9.0, 19, /*charges=*/true));
}

TEST(ForceField, AllKernelFlavorsAgreeOnUnchargedLJ) {
    expectFlavorsAgree(makeLj(125, 9.0, 23, /*charges=*/false));
}

TEST(ForceField, AllKernelFlavorsAgreeOnGoRepulsive) {
    const auto model = villinGoModel();
    cop::Rng rng(31);
    auto pos = model.native;
    for (auto& p : pos) p += rng.gaussianVec3(0.3);

    std::vector<Vec3> fScalar, fSoa;
    auto scalarParams = model.forceFieldParams();
    scalarParams.flavor = KernelFlavor::Scalar;
    auto soaParams = model.forceFieldParams();
    soaParams.flavor = KernelFlavor::Soa;
    ForceField ffS(model.topology, Box::open(), scalarParams);
    ForceField ffA(model.topology, Box::open(), soaParams);
    const auto eS = ffS.compute(pos, fScalar);
    const auto eA = ffA.compute(pos, fSoa);
    EXPECT_NEAR(eS.nonbonded, eA.nonbonded, 1e-10);
    EXPECT_NEAR(eS.potential(), eA.potential(), 1e-10);
    for (std::size_t i = 0; i < fScalar.size(); ++i)
        EXPECT_NEAR(norm(fScalar[i] - fSoa[i]), 0.0, 1e-10);
}

TEST(ForceField, SoaForcesMatchFiniteDifferences) {
    auto sys = makeLj(27, 6.0, 7, /*charges=*/true);
    sys.params.flavor = KernelFlavor::Soa;
    ForceField ff(sys.top, sys.box, sys.params);
    EXPECT_LT(maxForceError(ff, sys.positions), 2e-4);
}

TEST(ForceField, ThreadedSoaMatchesSerialSoa) {
    auto sys = makeLj(343, 12.0, 29, /*charges=*/true);
    sys.params.flavor = KernelFlavor::Soa;
    cop::ThreadPool pool(4);
    std::vector<Vec3> fSerial, fThreaded;
    const auto e1 = runFlavor(sys, KernelFlavor::Soa, fSerial);
    const auto e2 = runFlavor(sys, KernelFlavor::Soa, fThreaded, &pool);
    EXPECT_NEAR(e1.nonbonded, e2.nonbonded, 1e-9);
    EXPECT_NEAR(e1.coulomb, e2.coulomb, 1e-9);
    for (std::size_t i = 0; i < fSerial.size(); ++i)
        EXPECT_NEAR(norm(fSerial[i] - fThreaded[i]), 0.0, 1e-9);
}

TEST(ForceField, ThreadedSoaIsDeterministicAcrossRuns) {
    auto sys = makeLj(343, 12.0, 37, /*charges=*/true);
    sys.params.flavor = KernelFlavor::Soa;
    cop::ThreadPool pool(4);
    std::vector<Vec3> f1, f2;
    ForceField ff(sys.top, sys.box, sys.params, &pool);
    ff.compute(sys.positions, f1);
    ff.compute(sys.positions, f2);
    for (std::size_t i = 0; i < f1.size(); ++i)
        EXPECT_EQ(norm(f1[i] - f2[i]), 0.0);
}

TEST(ForceField, ScalarAndBlockedKernelsAgree) {
    auto sys = makeLj(64, 8.0, 11, /*charges=*/true);
    auto scalarParams = sys.params;
    scalarParams.flavor = KernelFlavor::Scalar;
    auto blockedParams = sys.params;
    blockedParams.flavor = KernelFlavor::Blocked4;
    ForceField ffS(sys.top, sys.box, scalarParams);
    ForceField ffB(sys.top, sys.box, blockedParams);
    std::vector<Vec3> fs, fb;
    const auto es = ffS.compute(sys.positions, fs);
    const auto eb = ffB.compute(sys.positions, fb);
    EXPECT_NEAR(es.nonbonded, eb.nonbonded, 1e-10);
    EXPECT_NEAR(es.coulomb, eb.coulomb, 1e-10);
    for (std::size_t i = 0; i < fs.size(); ++i)
        EXPECT_NEAR(norm(fs[i] - fb[i]), 0.0, 1e-10);
}

TEST(ForceField, ThreadedForcesMatchSerial) {
    auto sys = makeLj(343, 12.0, 13); // enough pairs to trigger threading
    cop::ThreadPool pool(4);
    ForceField serial(sys.top, sys.box, sys.params);
    ForceField threaded(sys.top, sys.box, sys.params, &pool);
    std::vector<Vec3> f1, f2;
    const auto e1 = serial.compute(sys.positions, f1);
    const auto e2 = threaded.compute(sys.positions, f2);
    EXPECT_NEAR(e1.nonbonded, e2.nonbonded, 1e-8);
    for (std::size_t i = 0; i < f1.size(); ++i)
        EXPECT_NEAR(norm(f1[i] - f2[i]), 0.0, 1e-9);
}

TEST(ForceField, ShiftedLJIsZeroAtCutoff) {
    Topology top(2);
    top.finalize();
    ForceFieldParams p;
    p.kind = NonbondedKind::LennardJonesRF;
    p.cutoff = 2.5;
    p.shiftLJ = true;
    ForceField ff(top, Box::open(), p);
    std::vector<Vec3> forces;
    const auto e = ff.compute({{0, 0, 0}, {2.4999, 0, 0}}, forces);
    EXPECT_NEAR(e.nonbonded, 0.0, 1e-4);
}

TEST(ForceField, GoEnergyAtNativeIsContactMinimum) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    std::vector<Vec3> forces;
    const auto e = ff.compute(model.native, forces);
    // Bonded terms vanish at native by construction; contacts sit at their
    // minima (-eps each); only tiny repulsive tails remain.
    EXPECT_NEAR(e.bond, 0.0, 1e-20);
    EXPECT_NEAR(e.angle, 0.0, 1e-20);
    EXPECT_NEAR(e.dihedral, 0.0, 1e-18);
    EXPECT_NEAR(e.contact, -double(model.numContacts()), 1e-9);
    EXPECT_LT(e.nonbonded, 0.5);
    EXPECT_GE(e.nonbonded, 0.0);
}

TEST(ForceField, EnergiesPotentialSumsTerms) {
    Energies e;
    e.bond = 1;
    e.angle = 2;
    e.dihedral = 3;
    e.contact = 4;
    e.nonbonded = 5;
    e.coulomb = 6;
    EXPECT_DOUBLE_EQ(e.potential(), 21.0);
}

TEST(ForceField, RejectsMismatchedPositions) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    std::vector<Vec3> forces;
    std::vector<Vec3> tooFew(3);
    EXPECT_THROW(ff.compute(tooFew, forces), cop::InvalidArgument);
}

} // namespace
} // namespace cop::md
