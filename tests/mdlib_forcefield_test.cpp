#include "mdlib/forcefield.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "mdlib/evaluators/dihedral.hpp"
#include "mdlib/proteins.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace cop::md {
namespace {

/// A small LJ fluid in a periodic box.
struct LjSystem {
    Topology top;
    Box box;
    ForceFieldParams params;
    std::vector<Vec3> positions;
};

LjSystem makeLj(std::size_t n, double boxLen, std::uint64_t seed,
                bool charges = false) {
    LjSystem sys;
    sys.top = Topology();
    cop::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        sys.top.addParticle(1.0, charges ? (i % 2 ? 0.2 : -0.2) : 0.0);
    sys.top.finalize();
    sys.box = Box::cubic(boxLen);
    sys.params.kind = NonbondedKind::LennardJonesRF;
    sys.params.cutoff = 2.5;
    sys.params.useCoulombRF = charges;
    // Place on a jittered lattice to avoid overlaps.
    const int side = int(std::ceil(std::cbrt(double(n))));
    const double a = boxLen / side;
    std::size_t placed = 0;
    for (int x = 0; x < side && placed < n; ++x)
        for (int y = 0; y < side && placed < n; ++y)
            for (int z = 0; z < side && placed < n; ++z, ++placed)
                sys.positions.push_back(
                    {x * a + rng.uniform(-0.05, 0.05),
                     y * a + rng.uniform(-0.05, 0.05),
                     z * a + rng.uniform(-0.05, 0.05)});
    return sys;
}

TEST(ForceField, GoModelForcesMatchFiniteDifferencesAtNative) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    EXPECT_LT(maxForceError(ff, model.native), 1e-5);
}

TEST(ForceField, GoModelForcesMatchFiniteDifferencesPerturbed) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    cop::Rng rng(3);
    auto pos = model.native;
    for (auto& p : pos) p += rng.gaussianVec3(0.05);
    EXPECT_LT(maxForceError(ff, pos), 1e-4);
}

TEST(ForceField, LennardJonesForcesMatchFiniteDifferences) {
    auto sys = makeLj(27, 6.0, 5);
    ForceField ff(sys.top, sys.box, sys.params);
    EXPECT_LT(maxForceError(ff, sys.positions), 2e-4);
}

TEST(ForceField, ReactionFieldForcesMatchFiniteDifferences) {
    auto sys = makeLj(27, 6.0, 7, /*charges=*/true);
    ForceField ff(sys.top, sys.box, sys.params);
    EXPECT_LT(maxForceError(ff, sys.positions), 2e-4);
}

TEST(ForceField, NewtonsThirdLaw) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    cop::Rng rng(9);
    auto pos = model.native;
    for (auto& p : pos) p += rng.gaussianVec3(0.2);
    std::vector<Vec3> forces;
    ff.compute(pos, forces);
    Vec3 total{};
    for (const auto& f : forces) total += f;
    EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

/// Computes forces/energies for `sys` under the given kernel flavor.
Energies runFlavor(const LjSystem& sys, KernelFlavor flavor,
                   std::vector<Vec3>& forces, cop::ThreadPool* pool = nullptr) {
    auto params = sys.params;
    params.flavor = flavor;
    ForceField ff(sys.top, sys.box, params, pool);
    return ff.compute(sys.positions, forces);
}

void expectFlavorsAgree(const LjSystem& sys, double tol = 1e-10) {
    std::vector<Vec3> fScalar, fBlocked, fSoa;
    const auto eS = runFlavor(sys, KernelFlavor::Scalar, fScalar);
    const auto eB = runFlavor(sys, KernelFlavor::Blocked4, fBlocked);
    const auto eA = runFlavor(sys, KernelFlavor::Soa, fSoa);
    EXPECT_NEAR(eS.nonbonded, eB.nonbonded, tol);
    EXPECT_NEAR(eS.nonbonded, eA.nonbonded, tol);
    EXPECT_NEAR(eS.coulomb, eB.coulomb, tol);
    EXPECT_NEAR(eS.coulomb, eA.coulomb, tol);
    EXPECT_NEAR(eS.pairVirial, eA.pairVirial, 1e-8);
    for (std::size_t i = 0; i < fScalar.size(); ++i) {
        EXPECT_NEAR(norm(fScalar[i] - fBlocked[i]), 0.0, tol);
        EXPECT_NEAR(norm(fScalar[i] - fSoa[i]), 0.0, tol);
    }
}

TEST(ForceField, AllKernelFlavorsAgreeOnChargedLJ) {
    expectFlavorsAgree(makeLj(125, 9.0, 19, /*charges=*/true));
}

TEST(ForceField, AllKernelFlavorsAgreeOnUnchargedLJ) {
    expectFlavorsAgree(makeLj(125, 9.0, 23, /*charges=*/false));
}

TEST(ForceField, AllKernelFlavorsAgreeOnGoRepulsive) {
    const auto model = villinGoModel();
    cop::Rng rng(31);
    auto pos = model.native;
    for (auto& p : pos) p += rng.gaussianVec3(0.3);

    std::vector<Vec3> fScalar, fSoa;
    auto scalarParams = model.forceFieldParams();
    scalarParams.flavor = KernelFlavor::Scalar;
    auto soaParams = model.forceFieldParams();
    soaParams.flavor = KernelFlavor::Soa;
    ForceField ffS(model.topology, Box::open(), scalarParams);
    ForceField ffA(model.topology, Box::open(), soaParams);
    const auto eS = ffS.compute(pos, fScalar);
    const auto eA = ffA.compute(pos, fSoa);
    EXPECT_NEAR(eS.nonbonded, eA.nonbonded, 1e-10);
    EXPECT_NEAR(eS.potential(), eA.potential(), 1e-10);
    for (std::size_t i = 0; i < fScalar.size(); ++i)
        EXPECT_NEAR(norm(fScalar[i] - fSoa[i]), 0.0, 1e-10);
}

TEST(ForceField, SoaForcesMatchFiniteDifferences) {
    auto sys = makeLj(27, 6.0, 7, /*charges=*/true);
    sys.params.flavor = KernelFlavor::Soa;
    ForceField ff(sys.top, sys.box, sys.params);
    EXPECT_LT(maxForceError(ff, sys.positions), 2e-4);
}

TEST(ForceField, ThreadedSoaMatchesSerialSoa) {
    auto sys = makeLj(343, 12.0, 29, /*charges=*/true);
    sys.params.flavor = KernelFlavor::Soa;
    cop::ThreadPool pool(4);
    std::vector<Vec3> fSerial, fThreaded;
    const auto e1 = runFlavor(sys, KernelFlavor::Soa, fSerial);
    const auto e2 = runFlavor(sys, KernelFlavor::Soa, fThreaded, &pool);
    EXPECT_NEAR(e1.nonbonded, e2.nonbonded, 1e-9);
    EXPECT_NEAR(e1.coulomb, e2.coulomb, 1e-9);
    for (std::size_t i = 0; i < fSerial.size(); ++i)
        EXPECT_NEAR(norm(fSerial[i] - fThreaded[i]), 0.0, 1e-9);
}

TEST(ForceField, ThreadedSoaIsDeterministicAcrossRuns) {
    auto sys = makeLj(343, 12.0, 37, /*charges=*/true);
    sys.params.flavor = KernelFlavor::Soa;
    cop::ThreadPool pool(4);
    std::vector<Vec3> f1, f2;
    ForceField ff(sys.top, sys.box, sys.params, &pool);
    ff.compute(sys.positions, f1);
    ff.compute(sys.positions, f2);
    for (std::size_t i = 0; i < f1.size(); ++i)
        EXPECT_EQ(norm(f1[i] - f2[i]), 0.0);
}

TEST(ForceField, ScalarAndBlockedKernelsAgree) {
    auto sys = makeLj(64, 8.0, 11, /*charges=*/true);
    auto scalarParams = sys.params;
    scalarParams.flavor = KernelFlavor::Scalar;
    auto blockedParams = sys.params;
    blockedParams.flavor = KernelFlavor::Blocked4;
    ForceField ffS(sys.top, sys.box, scalarParams);
    ForceField ffB(sys.top, sys.box, blockedParams);
    std::vector<Vec3> fs, fb;
    const auto es = ffS.compute(sys.positions, fs);
    const auto eb = ffB.compute(sys.positions, fb);
    EXPECT_NEAR(es.nonbonded, eb.nonbonded, 1e-10);
    EXPECT_NEAR(es.coulomb, eb.coulomb, 1e-10);
    for (std::size_t i = 0; i < fs.size(); ++i)
        EXPECT_NEAR(norm(fs[i] - fb[i]), 0.0, 1e-10);
}

TEST(ForceField, ThreadedForcesMatchSerial) {
    auto sys = makeLj(343, 12.0, 13); // enough pairs to trigger threading
    cop::ThreadPool pool(4);
    ForceField serial(sys.top, sys.box, sys.params);
    ForceField threaded(sys.top, sys.box, sys.params, &pool);
    std::vector<Vec3> f1, f2;
    const auto e1 = serial.compute(sys.positions, f1);
    const auto e2 = threaded.compute(sys.positions, f2);
    EXPECT_NEAR(e1.nonbonded, e2.nonbonded, 1e-8);
    for (std::size_t i = 0; i < f1.size(); ++i)
        EXPECT_NEAR(norm(f1[i] - f2[i]), 0.0, 1e-9);
}

TEST(ForceField, ShiftedLJIsZeroAtCutoff) {
    Topology top(2);
    top.finalize();
    ForceFieldParams p;
    p.kind = NonbondedKind::LennardJonesRF;
    p.cutoff = 2.5;
    p.shiftLJ = true;
    ForceField ff(top, Box::open(), p);
    std::vector<Vec3> forces;
    const auto e = ff.compute({{0, 0, 0}, {2.4999, 0, 0}}, forces);
    EXPECT_NEAR(e.nonbonded, 0.0, 1e-4);
}

TEST(ForceField, GoEnergyAtNativeIsContactMinimum) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    std::vector<Vec3> forces;
    const auto e = ff.compute(model.native, forces);
    // Bonded terms vanish at native by construction; contacts sit at their
    // minima (-eps each); only tiny repulsive tails remain.
    EXPECT_NEAR(e.bond, 0.0, 1e-20);
    EXPECT_NEAR(e.angle, 0.0, 1e-20);
    EXPECT_NEAR(e.dihedral, 0.0, 1e-18);
    EXPECT_NEAR(e.contact, -double(model.numContacts()), 1e-9);
    EXPECT_LT(e.nonbonded, 0.5);
    EXPECT_GE(e.nonbonded, 0.0);
}

TEST(ForceField, EnergiesPotentialSumsTerms) {
    Energies e;
    e.bond = 1;
    e.angle = 2;
    e.dihedral = 3;
    e.contact = 4;
    e.nonbonded = 5;
    e.coulomb = 6;
    EXPECT_DOUBLE_EQ(e.potential(), 21.0);
}

/// The pre-refactor monolithic computeBonded + computeContacts loops,
/// kept verbatim as the bit-identity reference for the header-only
/// evaluator refactor (evaluators/*.hpp): same term order, same
/// arithmetic, compared with EXPECT_EQ (no tolerance).
struct MonolithRef {
    double bond = 0.0, angle = 0.0, dihedral = 0.0, contact = 0.0,
           virial = 0.0;
};

MonolithRef monolithBonded(const Topology& top, const Box& box,
                           const std::vector<Vec3>& positions,
                           std::vector<Vec3>& forces) {
    MonolithRef e;
    for (const auto& b : top.bonds()) {
        const Vec3 d = box.minimumImage(positions[std::size_t(b.i)],
                                        positions[std::size_t(b.j)]);
        const double r = norm(d);
        const double dr = r - b.r0;
        e.bond += 0.5 * b.k * dr * dr;
        if (r > 1e-12) {
            const Vec3 f = d * (-b.k * dr / r);
            forces[std::size_t(b.i)] += f;
            forces[std::size_t(b.j)] -= f;
            e.virial += dot(d, f);
        }
    }
    for (const auto& a : top.angles()) {
        const Vec3 rij = box.minimumImage(positions[std::size_t(a.i)],
                                          positions[std::size_t(a.j)]);
        const Vec3 rkj = box.minimumImage(positions[std::size_t(a.k)],
                                          positions[std::size_t(a.j)]);
        const double nij = norm(rij);
        const double nkj = norm(rkj);
        if (nij < 1e-12 || nkj < 1e-12) continue;
        double cosTheta = dot(rij, rkj) / (nij * nkj);
        cosTheta = std::clamp(cosTheta, -1.0, 1.0);
        const double theta = std::acos(cosTheta);
        const double dTheta = theta - a.theta0;
        e.angle += 0.5 * a.forceK * dTheta * dTheta;
        const double sinTheta =
            std::sqrt(std::max(1e-12, 1.0 - cosTheta * cosTheta));
        const double coeff = a.forceK * dTheta / sinTheta;
        const Vec3 dcos_dri =
            (rkj / (nij * nkj)) - rij * (cosTheta / (nij * nij));
        const Vec3 dcos_drk =
            (rij / (nij * nkj)) - rkj * (cosTheta / (nkj * nkj));
        const Vec3 fi = dcos_dri * coeff;
        const Vec3 fk = dcos_drk * coeff;
        forces[std::size_t(a.i)] += fi;
        forces[std::size_t(a.k)] += fk;
        forces[std::size_t(a.j)] -= fi + fk;
    }
    for (const auto& d : top.dihedrals()) {
        const auto g = evaluators::dihedralGeometry(
            positions[std::size_t(d.i)], positions[std::size_t(d.j)],
            positions[std::size_t(d.k)], positions[std::size_t(d.l)]);
        const double dphi = g.phi - d.phi0;
        e.dihedral += d.k1 * (1.0 - std::cos(dphi)) +
                      d.k3 * (1.0 - std::cos(3.0 * dphi));
        const double dEdPhi =
            d.k1 * std::sin(dphi) + 3.0 * d.k3 * std::sin(3.0 * dphi);
        forces[std::size_t(d.i)] -= g.fi * dEdPhi;
        forces[std::size_t(d.j)] -= g.fj * dEdPhi;
        forces[std::size_t(d.k)] -= g.fk * dEdPhi;
        forces[std::size_t(d.l)] -= g.fl * dEdPhi;
    }
    for (const auto& c : top.contacts()) {
        const Vec3 d = box.minimumImage(positions[std::size_t(c.i)],
                                        positions[std::size_t(c.j)]);
        const double r2 = norm2(d);
        if (r2 < 1e-12) continue;
        const double inv2 = (c.r0 * c.r0) / r2;
        const double inv10 = inv2 * inv2 * inv2 * inv2 * inv2;
        const double inv12 = inv10 * inv2;
        e.contact += c.eps * (5.0 * inv12 - 6.0 * inv10);
        const double fOverR = 60.0 * c.eps * (inv12 - inv10) / r2;
        const Vec3 f = d * fOverR;
        forces[std::size_t(c.i)] += f;
        forces[std::size_t(c.j)] -= f;
        e.virial += fOverR * r2;
    }
    return e;
}

TEST(ForceField, BondedEvaluatorsBitIdenticalToMonolith) {
    const auto model = villinGoModel();
    cop::Rng rng(57);
    auto pos = model.native;
    for (auto& p : pos) p += rng.gaussianVec3(0.15);

    // Shrink the cutoff so every nonbonded pair lands outside it: the
    // kernels then add exact zeros and the ForceField forces are the
    // bonded + contact terms alone.
    auto params = model.forceFieldParams();
    params.cutoff = 1e-3;
    params.neighborSkin = 1e-3;
    ForceField ff(model.topology, Box::open(), params);
    std::vector<Vec3> forces;
    const auto e = ff.compute(pos, forces);
    EXPECT_EQ(e.nonbonded, 0.0);

    std::vector<Vec3> refForces(pos.size(), Vec3{});
    const auto ref =
        monolithBonded(model.topology, Box::open(), pos, refForces);

    EXPECT_EQ(e.bond, ref.bond);
    EXPECT_EQ(e.angle, ref.angle);
    EXPECT_EQ(e.dihedral, ref.dihedral);
    EXPECT_EQ(e.contact, ref.contact);
    EXPECT_EQ(e.pairVirial, ref.virial);
    for (std::size_t i = 0; i < forces.size(); ++i)
        for (int d = 0; d < 3; ++d) EXPECT_EQ(forces[i][d], refForces[i][d]);
}

TEST(ForceField, RejectsMismatchedPositions) {
    const auto model = villinGoModel();
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    std::vector<Vec3> forces;
    std::vector<Vec3> tooFew(3);
    EXPECT_THROW(ff.compute(tooFew, forces), cop::InvalidArgument);
}

} // namespace
} // namespace cop::md
