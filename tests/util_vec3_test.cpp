#include "util/vec3.hpp"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace cop {
namespace {

TEST(Vec3, DefaultIsZero) {
    Vec3 v;
    EXPECT_EQ(v.x, 0.0);
    EXPECT_EQ(v.y, 0.0);
    EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, IndexAccess) {
    Vec3 v{1.0, 2.0, 3.0};
    EXPECT_EQ(v[0], 1.0);
    EXPECT_EQ(v[1], 2.0);
    EXPECT_EQ(v[2], 3.0);
    v[1] = 5.0;
    EXPECT_EQ(v.y, 5.0);
}

TEST(Vec3, Arithmetic) {
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, Vec3(5, 7, 9));
    EXPECT_EQ(b - a, Vec3(3, 3, 3));
    EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
    EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
    EXPECT_EQ(Vec3(2, 4, 6) / 2.0, Vec3(1, 2, 3));
    EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3, DotAndCross) {
    const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_EQ(dot(x, y), 0.0);
    EXPECT_EQ(dot(x, x), 1.0);
    EXPECT_EQ(cross(x, y), z);
    EXPECT_EQ(cross(y, z), x);
    EXPECT_EQ(cross(z, x), y);
    // Anti-commutativity.
    EXPECT_EQ(cross(y, x), -z);
}

TEST(Vec3, NormAndDistance) {
    const Vec3 v{3, 4, 0};
    EXPECT_DOUBLE_EQ(norm(v), 5.0);
    EXPECT_DOUBLE_EQ(norm2(v), 25.0);
    EXPECT_DOUBLE_EQ(distance(Vec3{1, 1, 1}, Vec3{1, 1, 2}), 1.0);
    const Vec3 u = normalized(v);
    EXPECT_NEAR(norm(u), 1.0, 1e-15);
}

TEST(Vec3, StreamOutput) {
    std::ostringstream oss;
    oss << Vec3{1, 2, 3};
    EXPECT_EQ(oss.str(), "(1, 2, 3)");
}

TEST(Mat3, IdentityMultiplication) {
    const Mat3 id = Mat3::identity();
    const Vec3 v{1, 2, 3};
    EXPECT_EQ(id * v, v);
    const Mat3 prod = id * id;
    EXPECT_EQ(prod * v, v);
}

TEST(Mat3, TransposeAndTrace) {
    Mat3 m;
    m(0, 1) = 2.0;
    m(1, 0) = 3.0;
    m(0, 0) = 1.0;
    m(1, 1) = 4.0;
    m(2, 2) = 5.0;
    EXPECT_DOUBLE_EQ(trace(m), 10.0);
    const Mat3 t = transpose(m);
    EXPECT_EQ(t(1, 0), 2.0);
    EXPECT_EQ(t(0, 1), 3.0);
}

TEST(Mat3, DeterminantOfIdentity) {
    EXPECT_DOUBLE_EQ(determinant(Mat3::identity()), 1.0);
}

TEST(Mat3, RotationPreservesNormAndDeterminant) {
    const Mat3 r = rotationMatrix(normalized(Vec3{1, 2, 3}), 0.7);
    const Vec3 v{4, -5, 6};
    EXPECT_NEAR(norm(r * v), norm(v), 1e-12);
    EXPECT_NEAR(determinant(r), 1.0, 1e-12);
}

TEST(Mat3, RotationByTwoPiIsIdentity) {
    const Mat3 r = rotationMatrix(Vec3{0, 0, 1}, 2.0 * M_PI);
    const Vec3 v{1, 2, 3};
    const Vec3 rv = r * v;
    EXPECT_NEAR(rv.x, v.x, 1e-12);
    EXPECT_NEAR(rv.y, v.y, 1e-12);
    EXPECT_NEAR(rv.z, v.z, 1e-12);
}

TEST(Mat3, RotationComposition) {
    const Vec3 axis = normalized(Vec3{1, 1, 0});
    const Mat3 half = rotationMatrix(axis, 0.4);
    const Mat3 full = rotationMatrix(axis, 0.8);
    const Vec3 v{2, -1, 3};
    const Vec3 a = (half * half) * v;
    const Vec3 b = full * v;
    EXPECT_NEAR(a.x, b.x, 1e-12);
    EXPECT_NEAR(a.y, b.y, 1e-12);
    EXPECT_NEAR(a.z, b.z, 1e-12);
}

} // namespace
} // namespace cop
