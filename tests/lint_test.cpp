/// Tests for copernicus_lint: lexer unit tests (raw strings, comment
/// handling, line splices, suppression grammar) and golden-output tests
/// over the committed fixtures in tests/lint_fixtures/. Each fixture
/// pairs with a <name>.expected file holding the exact findings; good
/// fixtures pair with an empty one.

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "lint.hpp"

using namespace coplint;

namespace {

std::string slurp(const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

const std::filesystem::path kFixtureDir = COP_LINT_FIXTURE_DIR;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LintLexer, RawStringSwallowsCommentAndQuoteLookalikes) {
    const auto f = lex(R"src(auto s = R"x(no // comment "quotes" )" here)x"; int y;)src",
                       "t.cpp");
    ASSERT_TRUE(f.comments.empty());
    std::size_t strings = 0;
    std::string body;
    for (const auto& t : f.tokens)
        if (t.kind == TokKind::String) {
            ++strings;
            body = t.text;
        }
    EXPECT_EQ(strings, 1u);
    EXPECT_EQ(body, "no // comment \"quotes\" )\" here");
    bool sawY = false;
    for (const auto& t : f.tokens)
        if (t.kind == TokKind::Identifier && t.text == "y") sawY = true;
    EXPECT_TRUE(sawY);
}

TEST(LintLexer, BlockCommentsDoNotNest) {
    const auto f = lex("/* outer /* still the same comment */ int x;", "t.cpp");
    ASSERT_EQ(f.comments.size(), 1u);
    EXPECT_TRUE(f.comments[0].block);
    EXPECT_NE(f.comments[0].text.find("still the same comment"),
              std::string::npos);
    ASSERT_EQ(f.tokens.size(), 3u); // int x ;
    EXPECT_EQ(f.tokens[0].text, "int");
    EXPECT_EQ(f.tokens[1].text, "x");
}

TEST(LintLexer, BackslashContinuedLineCommentSpansLines) {
    const auto f = lex("// first \\\n second\nint z;", "t.cpp");
    ASSERT_EQ(f.comments.size(), 1u);
    EXPECT_EQ(f.comments[0].firstLine, 1);
    EXPECT_EQ(f.comments[0].lastLine, 2);
    EXPECT_NE(f.comments[0].text.find("second"), std::string::npos);
    ASSERT_EQ(f.tokens.size(), 3u);
    EXPECT_EQ(f.tokens[0].text, "int");
    EXPECT_EQ(f.tokens[0].line, 3);
}

TEST(LintLexer, LineSpliceInsideIdentifier) {
    const auto f = lex("in\\\nt x;", "t.cpp");
    ASSERT_GE(f.tokens.size(), 2u);
    EXPECT_EQ(f.tokens[0].text, "int");
    EXPECT_EQ(f.tokens[0].line, 1);
    EXPECT_EQ(f.tokens[1].text, "x");
    EXPECT_EQ(f.tokens[1].line, 2);
}

TEST(LintLexer, PreprocessorLineIsOneToken) {
    const auto f = lex("#include <mutex>\nstd::mutex m;", "t.cpp");
    ASSERT_FALSE(f.tokens.empty());
    EXPECT_EQ(f.tokens[0].kind, TokKind::Preprocessor);
    EXPECT_NE(f.tokens[0].text.find("include"), std::string::npos);
    // The real std::mutex use is separate tokens on line 2.
    EXPECT_EQ(f.tokens[1].text, "std");
    EXPECT_EQ(f.tokens[1].line, 2);
}

TEST(LintLexer, DigitSeparatorsAndCharLiterals) {
    const auto f = lex("auto n = 1'000'000; char c = '\\'';", "t.cpp");
    bool sawNum = false, sawChar = false;
    for (const auto& t : f.tokens) {
        if (t.kind == TokKind::Number && t.text == "1000000") sawNum = true;
        if (t.kind == TokKind::CharLit) sawChar = true;
    }
    EXPECT_TRUE(sawNum);
    EXPECT_TRUE(sawChar);
}

// ---------------------------------------------------------------------------
// Config + function segmentation
// ---------------------------------------------------------------------------

TEST(LintConfig, RejectsUnknownDirective) {
    Config cfg;
    std::string err;
    EXPECT_FALSE(parseConfig("lint-dir src\nbogus-directive x\n", cfg, err));
    EXPECT_NE(err.find("bogus-directive"), std::string::npos);
    EXPECT_NE(err.find(":2"), std::string::npos);
}

TEST(LintConfig, ParsesAllDirectives) {
    Config cfg;
    std::string err;
    ASSERT_TRUE(parseConfig("lint-dir src # trailing comment\n"
                            "skip-dir src/gen\n"
                            "mutex-exempt src/util/\n"
                            "nondet-dir src/core/\n"
                            "untrusted-file src/core/wal.cpp\n"
                            "blocking-allow src/core/wal.cpp flush\n"
                            "blocking-allow src/core/store.cpp *\n"
                            "switch-enum Fruit fruit.hpp\n",
                            cfg, err))
        << err;
    EXPECT_EQ(cfg.lintDirs, std::vector<std::string>{"src"});
    EXPECT_EQ(cfg.blockingAllow.size(), 2u);
    EXPECT_EQ(cfg.blockingAllow[1].second, "*");
    ASSERT_EQ(cfg.switchEnums.size(), 1u);
    EXPECT_EQ(cfg.switchEnums[0].first, "Fruit");
}

TEST(LintFunctions, QualifiedNamesAndDestructors) {
    const auto f = lex("void Wal::flush() { fdatasync(fd_); }\n"
                       "Wal::~Wal() { seal(); }\n"
                       "static int helper(int a) { return a; }\n",
                       "t.cpp");
    const auto fns = findFunctions(f);
    ASSERT_EQ(fns.size(), 3u);
    EXPECT_EQ(fns[0].qualified, "Wal::flush");
    EXPECT_EQ(fns[0].name, "flush");
    EXPECT_EQ(fns[1].qualified, "Wal::~Wal");
    EXPECT_EQ(fns[2].name, "helper");
}

TEST(LintEnums, CollectsEnumeratorsWithValues) {
    const auto f = lex(slurp(kFixtureDir / "fruit.hpp"), "fruit.hpp");
    std::vector<EnumDef> defs;
    collectEnumDefs(f, {"Fruit"}, defs);
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(defs[0].enumerators,
              (std::vector<std::string>{"Apple", "Banana", "Cherry"}));
}

// ---------------------------------------------------------------------------
// Suppression grammar (via lintFile on synthetic sources)
// ---------------------------------------------------------------------------

Config syntheticConfig() {
    Config cfg;
    std::string err;
    EXPECT_TRUE(parseConfig("nondet-dir core/\n", cfg, err)) << err;
    return cfg;
}

TEST(LintSuppression, ReasonedNolintSilences) {
    const auto f = lex("void f() {\n"
                       "  std::random_device rd; // NOLINT(copernicus-"
                       "nondeterminism): demo only\n"
                       "}\n",
                       "core/x.cpp");
    const auto findings = lintFile(f, syntheticConfig(), TreeContext{});
    EXPECT_TRUE(findings.empty());
}

TEST(LintSuppression, ReasonlessNolintIsItselfAFinding) {
    const auto f = lex("void f() {\n"
                       "  std::random_device rd; // NOLINT(copernicus-"
                       "nondeterminism)\n"
                       "}\n",
                       "core/x.cpp");
    const auto findings = lintFile(f, syntheticConfig(), TreeContext{});
    ASSERT_EQ(findings.size(), 2u); // original finding + nolint finding
    EXPECT_EQ(findings[0].check, "copernicus-nolint");
    EXPECT_EQ(findings[1].check, "copernicus-nondeterminism");
}

TEST(LintSuppression, NolintNextLineCoversTheNextLine) {
    const auto f = lex("void f() {\n"
                       "  // NOLINTNEXTLINE(copernicus-nondeterminism): demo\n"
                       "  std::random_device rd;\n"
                       "}\n",
                       "core/x.cpp");
    const auto findings = lintFile(f, syntheticConfig(), TreeContext{});
    EXPECT_TRUE(findings.empty());
}

TEST(LintSuppression, UnknownCheckNameIsFlagged) {
    const auto f = lex("void f() {\n"
                       "  int x = 0; // NOLINT(copernicus-tpyo): oops\n"
                       "  (void)x;\n"
                       "}\n",
                       "core/x.cpp");
    const auto findings = lintFile(f, syntheticConfig(), TreeContext{});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].check, "copernicus-nolint");
    EXPECT_NE(findings[0].message.find("copernicus-tpyo"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden fixtures
// ---------------------------------------------------------------------------

class LintGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(LintGolden, MatchesExpectedFindings) {
    const std::string rel = GetParam();

    Config cfg;
    std::string err;
    ASSERT_TRUE(parseConfig(slurp(kFixtureDir / "lint_config"), cfg, err))
        << err;

    // Tree context mirrors the driver: enums from the configured headers,
    // unordered-container names from nondet-scoped fixture files only.
    static const char* const kAll[] = {
        "core/bad_mutex.cpp",   "core/bad_nondet.cpp", "core/good_nondet.cpp",
        "core/decode.cpp",      "core/bad_switch.cpp", "core/good_switch.cpp",
        "core/bad_blocking.cpp", "core/wal_like.cpp",  "core/suppressed.cpp",
        "exempt/good_mutex.cpp"};
    TreeContext tree;
    std::vector<std::string> enumNames;
    for (const auto& [name, header] : cfg.switchEnums) {
        enumNames.push_back(name);
        collectEnumDefs(lex(slurp(kFixtureDir / header), header), enumNames,
                        tree.enums);
    }
    for (const char* p : kAll)
        if (pathInAny(p, cfg.nondetDirs))
            collectUnorderedVars(lex(slurp(kFixtureDir / p), p),
                                 tree.unorderedVars);

    const auto lexed = lex(slurp(kFixtureDir / rel), rel);
    const auto findings = lintFile(lexed, cfg, tree);
    std::string got;
    for (const auto& f : findings) got += f.render() + "\n";

    EXPECT_EQ(got, slurp(kFixtureDir / (rel + ".expected")));
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, LintGolden,
    ::testing::Values("core/bad_mutex.cpp", "exempt/good_mutex.cpp",
                      "core/bad_nondet.cpp", "core/good_nondet.cpp",
                      "core/decode.cpp", "core/bad_switch.cpp",
                      "core/good_switch.cpp", "core/bad_blocking.cpp",
                      "core/wal_like.cpp", "core/suppressed.cpp"),
    [](const ::testing::TestParamInfo<const char*>& paramInfo) {
        std::string name = paramInfo.param;
        for (char& c : name)
            if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
        return name;
    });

} // namespace
