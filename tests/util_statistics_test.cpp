#include "util/statistics.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cop {
namespace {

TEST(RunningStats, BasicMoments) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variancePopulation(), 4.0, 1e-12);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
    Rng rng(3);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian();
        all.add(x);
        (i % 2 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Statistics, MeanAndVariance) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
    EXPECT_NEAR(standardError(xs), stddev(xs) / 2.0, 1e-12);
}

TEST(Statistics, MeanOfEmptyThrows) {
    EXPECT_THROW(mean({}), InvalidArgument);
}

TEST(Statistics, WeightedMean) {
    const std::vector<double> xs{1.0, 10.0};
    const std::vector<double> ws{3.0, 1.0};
    EXPECT_DOUBLE_EQ(weightedMean(xs, ws), 13.0 / 4.0);
    const std::vector<double> tooShort{1.0};
    const std::vector<double> zeros{0.0, 0.0};
    EXPECT_THROW(weightedMean(xs, tooShort), InvalidArgument);
    EXPECT_THROW(weightedMean(xs, zeros), InvalidArgument);
}

TEST(Statistics, BlockStandardErrorOnIidMatchesNaive) {
    Rng rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 10000; ++i) xs.push_back(rng.gaussian());
    const double naive = standardError(xs);
    const double block = blockStandardError(xs, 50);
    EXPECT_NEAR(block, naive, 0.5 * naive);
}

TEST(Statistics, BlockStandardErrorGrowsForCorrelatedData) {
    // Strongly autocorrelated AR(1) series: block SEM should exceed the
    // naive SEM that assumes independence.
    Rng rng(6);
    std::vector<double> xs;
    double x = 0.0;
    for (int i = 0; i < 20000; ++i) {
        x = 0.99 * x + rng.gaussian() * 0.1;
        xs.push_back(x);
    }
    EXPECT_GT(blockStandardError(xs, 20), 2.0 * standardError(xs));
}

TEST(Statistics, BootstrapMatchesNaiveOnIid) {
    Rng rng(7);
    std::vector<double> xs;
    for (int i = 0; i < 2000; ++i) xs.push_back(rng.gaussian());
    Rng boot(8);
    const double bse = bootstrapStandardError(xs, 200, boot);
    EXPECT_NEAR(bse, standardError(xs), 0.3 * standardError(xs));
}

TEST(Statistics, AutocorrelationOfWhiteNoise) {
    Rng rng(9);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i) xs.push_back(rng.gaussian());
    const auto c = autocorrelation(xs, 5);
    EXPECT_DOUBLE_EQ(c[0], 1.0);
    for (std::size_t k = 1; k < c.size(); ++k) EXPECT_NEAR(c[k], 0.0, 0.03);
}

TEST(Statistics, AutocorrelationOfConstantSeriesIsZero) {
    const std::vector<double> xs(100, 3.14);
    const auto c = autocorrelation(xs, 3);
    for (double v : c) EXPECT_EQ(v, 0.0);
}

TEST(Statistics, IntegratedAutocorrelationTimeOfAr1) {
    // AR(1) with coefficient rho has tau = (1+rho)/(1-rho).
    const double rho = 0.8;
    Rng rng(10);
    std::vector<double> xs;
    double x = 0.0;
    for (int i = 0; i < 200000; ++i) {
        x = rho * x + rng.gaussian();
        xs.push_back(x);
    }
    const double tau = integratedAutocorrelationTime(xs, 200);
    EXPECT_NEAR(tau, (1.0 + rho) / (1.0 - rho), 1.5);
}

TEST(Statistics, Percentile) {
    std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
    EXPECT_THROW(percentile(xs, 101.0), InvalidArgument);
}

} // namespace
} // namespace cop
