#include "msm/pipeline.hpp"

#include <gtest/gtest.h>

#include "mdlib/proteins.hpp"
#include "mdlib/simulation.hpp"

namespace cop::msm {
namespace {

/// A couple of short hairpin trajectories covering folded and unfolded
/// regions.
std::vector<md::Trajectory> hairpinTrajectories() {
    const auto model = md::hairpinGoModel();
    std::vector<md::Trajectory> trajs;
    const auto starts = md::makeUnfoldedConformations(model, 2, 31);
    std::vector<std::vector<Vec3>> inits = {model.native, starts[0],
                                            starts[1]};
    for (std::size_t i = 0; i < inits.size(); ++i) {
        md::SimulationConfig cfg;
        cfg.integrator.kind = md::IntegratorKind::LangevinBAOAB;
        cfg.integrator.temperature = 0.5;
        cfg.integrator.friction = 0.5;
        cfg.sampleInterval = 20;
        cfg.seed = 100 + i;
        auto sim = md::Simulation::forGoModel(model, inits[i], cfg);
        sim.initializeVelocities();
        sim.run(4000);
        trajs.push_back(sim.trajectory());
    }
    return trajs;
}

TEST(Pipeline, BuildsConsistentModel) {
    const auto trajs = hairpinTrajectories();
    MsmPipelineParams p;
    p.numClusters = 20;
    p.snapshotStride = 2;
    p.lag = 2;
    const auto result = buildMsm(trajs, p);

    EXPECT_EQ(result.discrete.size(), trajs.size());
    // Discrete trajectory lengths match the subsampled frame counts.
    for (std::size_t t = 0; t < trajs.size(); ++t) {
        const std::size_t expected =
            (trajs[t].numFrames() + p.snapshotStride - 1) / p.snapshotStride;
        EXPECT_EQ(result.discrete[t].size(), expected);
    }
    // Populations sum to total snapshots.
    std::size_t totalSnapshots = 0, totalPop = 0;
    for (const auto& d : result.discrete) totalSnapshots += d.size();
    for (auto v : result.populations) totalPop += v;
    EXPECT_EQ(totalPop, totalSnapshots);
    // Centers exist for every cluster.
    EXPECT_EQ(result.centers.size(), result.clustering.numClusters());
    // The model lives on a subset of the microstates.
    EXPECT_LE(result.model.numStates(), result.clustering.numClusters());
    EXPECT_GE(result.model.numStates(), 1u);
}

TEST(Pipeline, ObservedStatesMatchPopulations) {
    const auto trajs = hairpinTrajectories();
    MsmPipelineParams p;
    p.numClusters = 15;
    const auto result = buildMsm(trajs, p);
    const auto obs = result.observedStates();
    for (std::size_t i = 0; i < obs.size(); ++i)
        EXPECT_EQ(obs[i], result.populations[i] > 0);
}

TEST(Pipeline, SnapshotStrideReducesData) {
    const auto trajs = hairpinTrajectories();
    MsmPipelineParams p1;
    p1.numClusters = 10;
    p1.snapshotStride = 1;
    MsmPipelineParams p4 = p1;
    p4.snapshotStride = 4;
    const auto r1 = buildMsm(trajs, p1);
    const auto r4 = buildMsm(trajs, p4);
    std::size_t n1 = 0, n4 = 0;
    for (const auto& d : r1.discrete) n1 += d.size();
    for (const auto& d : r4.discrete) n4 += d.size();
    EXPECT_GT(n1, 3 * n4);
}

TEST(Pipeline, ImpliedTimescaleSweepShapes) {
    const auto trajs = hairpinTrajectories();
    MsmPipelineParams p;
    p.numClusters = 12;
    const auto result = buildMsm(trajs, p);
    const std::vector<std::size_t> lags{1, 2, 4};
    const auto sweep = impliedTimescaleSweep(
        result.discrete, result.clustering.numClusters(), lags, 3);
    ASSERT_EQ(sweep.size(), lags.size());
    for (const auto& row : sweep) EXPECT_LE(row.size(), 3u);
}

TEST(Pipeline, RejectsEmptyInput) {
    MsmPipelineParams p;
    EXPECT_THROW(buildMsm(std::vector<md::Trajectory>{}, p),
                 cop::InvalidArgument);
    std::vector<md::Trajectory> empties(2);
    EXPECT_THROW(buildMsm(empties, p), cop::InvalidArgument);
}

TEST(Pipeline, DeterministicForFixedSeed) {
    const auto trajs = hairpinTrajectories();
    MsmPipelineParams p;
    p.numClusters = 10;
    p.seed = 7;
    const auto a = buildMsm(trajs, p);
    const auto b = buildMsm(trajs, p);
    EXPECT_EQ(a.clustering.assignments, b.clustering.assignments);
    EXPECT_EQ(a.model.numStates(), b.model.numStates());
}

} // namespace
} // namespace cop::msm
