// Fixture: identical primitives under the mutex-exempt prefix — the
// wrapper layer itself is allowed to name them. Must stay clean.
#include <mutex>

namespace fixture {

class Wrapper {
public:
    void put(int v) {
        std::lock_guard<std::mutex> g(m_);
        value_ = v;
    }

private:
    std::mutex m_;
    int value_ = 0;
};

} // namespace fixture
