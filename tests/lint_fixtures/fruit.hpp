#pragma once
#include <cstdint>

namespace fixture {

enum class Fruit : std::uint8_t {
    Apple = 0,
    Banana = 1,
    Cherry = 2,
};

} // namespace fixture
