// Fixture: blocking syscalls on the event-loop plane with no allow-list
// entry — copernicus-blocking must fire three times.
#include <chrono>
#include <thread>
#include <unistd.h>

namespace fixture {

void pumpOnce(int fd) {
    char buf[16];
    (void)::read(fd, buf, sizeof(buf));
    fdatasync(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

} // namespace fixture
