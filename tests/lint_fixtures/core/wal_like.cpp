// Fixture: flush is allow-listed (blocking-allow core/wal_like.cpp
// flush); probe is not and must fire copernicus-blocking.
#include <unistd.h>

namespace fixture {

struct WalLike {
    int fd = -1;

    void flush() { fdatasync(fd); }

    void probe() { fsync(fd); }
};

} // namespace fixture
