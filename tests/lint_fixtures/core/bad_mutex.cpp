// Fixture: every std:: synchronization primitive below must fire
// copernicus-bare-mutex (this file is outside the exempt prefix).
#include <condition_variable>
#include <mutex>

namespace fixture {

class Registry {
public:
    void put(int v) {
        std::lock_guard<std::mutex> g(m_);
        value_ = v;
    }

private:
    std::mutex m_;
    std::condition_variable cv_;
    int value_ = 0;
};

} // namespace fixture
