// Fixture: exhaustive dispatch, no default: — must stay clean. The
// post-switch return handles an out-of-range byte.
#include "../fruit.hpp"

namespace fixture {

int priceGood(Fruit f) {
    switch (f) {
    case Fruit::Apple:
        return 1;
    case Fruit::Banana:
        return 2;
    case Fruit::Cherry:
        return 3;
    }
    return 0;
}

} // namespace fixture
