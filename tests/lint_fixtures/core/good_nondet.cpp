// Fixture: deterministic counterparts — nothing here may fire. Ordered
// iteration is always fine; unordered iteration is fine when annotated.
#include <map>
#include <unordered_map>

namespace fixture {

struct Counter {
    std::map<int, int> ordered_;
    std::unordered_map<int, int> scratch_;

    int sum() {
        int t = 0;
        for (const auto& [k, v] : ordered_) t += v;
        // order-insensitive: pure commutative sum, no bytes emitted
        for (const auto& [k, v] : scratch_) t += v;
        return t;
    }
};

} // namespace fixture
