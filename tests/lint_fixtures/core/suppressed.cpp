// Fixture: suppression grammar. Reasoned NOLINTs silence their findings;
// the reasonless and typo'd ones surface copernicus-nolint instead.
#include <random>

namespace fixture {

unsigned seedOk() {
    std::random_device rd;  // NOLINT(copernicus-nondeterminism): demo banner entropy, never replayed
    return rd();
}

unsigned seedNextLineOk() {
    // NOLINTNEXTLINE(copernicus-nondeterminism): demo banner entropy, never replayed
    std::random_device rd;
    return rd();
}

unsigned seedNoReason() {
    std::random_device rd;  // NOLINT(copernicus-nondeterminism)
    return rd();
}

unsigned seedTypo() {
    // NOLINTNEXTLINE(copernicus-nondet): check name typo never matches
    std::random_device rd;
    return rd();
}

} // namespace fixture
