// Fixture: untrusted length prefixes. The three *Bad bodies must fire
// copernicus-untrusted-length; the counted and guarded ones must not.
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace fixture {

constexpr std::uint32_t kMaxFrame = 1u << 20;

struct Reader {
    template <typename T> T read();
    std::uint64_t readCount(std::size_t elemSize);
};

void decodeBad(Reader& r, std::vector<std::uint8_t>& out) {
    auto n = r.read<std::uint32_t>();
    out.resize(n);
}

void decodeInlineBad(Reader& r, std::vector<std::uint8_t>& out) {
    out.resize(r.read<std::uint32_t>());
}

void decodeNewBad(Reader& r) {
    auto n = r.read<std::uint64_t>();
    auto* p = new std::uint8_t[n];
    delete[] p;
}

void decodeCounted(Reader& r, std::vector<std::uint8_t>& out) {
    auto n = r.readCount(1);
    out.resize(n);
}

void decodeGuarded(Reader& r, std::vector<std::uint8_t>& out) {
    auto n = r.read<std::uint32_t>();
    if (n > kMaxFrame) throw std::length_error("oversized frame");
    out.resize(n);
}

} // namespace fixture
