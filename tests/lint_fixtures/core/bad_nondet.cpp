// Fixture: nondeterminism sources inside the replay-critical plane.
// Each body below must fire copernicus-nondeterminism exactly once.
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace fixture {

struct Sampler {
    std::unordered_map<int, int> histogram_;

    int roll() { return rand() % 6; }

    unsigned seed() {
        std::random_device rd;
        return rd();
    }

    long stamp() {
        return std::chrono::system_clock::now().time_since_epoch().count();
    }

    const char* home() { return std::getenv("HOME"); }

    int total() {
        int t = 0;
        for (const auto& [k, v] : histogram_) t += v;
        return t;
    }

    int first() { return histogram_.begin()->second; }
};

} // namespace fixture
