// Fixture: non-exhaustive dispatch over a tracked tag enum, with a
// default: arm — copernicus-switch-enum must fire twice.
#include "../fruit.hpp"

namespace fixture {

int priceBad(Fruit f) {
    switch (f) {
    case Fruit::Apple:
        return 1;
    default:
        return 0;
    }
}

} // namespace fixture
