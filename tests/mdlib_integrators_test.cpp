#include "mdlib/integrators.hpp"

#include <gtest/gtest.h>

#include "mdlib/proteins.hpp"
#include "util/statistics.hpp"

namespace cop::md {
namespace {

struct TestSystem {
    GoModel model;
    ForceField ff;
    State state;

    explicit TestSystem(double perturb = 0.0, std::uint64_t seed = 1)
        : model(hairpinGoModel()),
          ff(model.topology, Box::open(), model.forceFieldParams()) {
        state.resize(model.numResidues());
        state.positions = model.native;
        if (perturb > 0.0) {
            cop::Rng rng(seed);
            for (auto& p : state.positions) p += rng.gaussianVec3(perturb);
        }
    }
};

TEST(Integrators, KineticEnergyAndTemperature) {
    TestSystem sys;
    cop::Rng rng(5);
    assignVelocities(sys.model.topology, sys.state, 1.0, rng);
    const double k = kineticEnergy(sys.model.topology, sys.state);
    const double nf = 3.0 * double(sys.state.numParticles()) - 3.0;
    EXPECT_NEAR(instantaneousTemperature(sys.model.topology, sys.state),
                2.0 * k / nf, 1e-12);
}

TEST(Integrators, AssignVelocitiesRemovesComDrift) {
    TestSystem sys;
    cop::Rng rng(6);
    assignVelocities(sys.model.topology, sys.state, 2.0, rng);
    Vec3 p{};
    for (std::size_t i = 0; i < sys.state.numParticles(); ++i)
        p += sys.state.velocities[i] * sys.model.topology.mass(i);
    EXPECT_NEAR(norm(p), 0.0, 1e-12);
}

class NveIntegrators
    : public ::testing::TestWithParam<IntegratorKind> {};

TEST_P(NveIntegrators, EnergyConservation) {
    TestSystem sys(0.05, 7);
    IntegratorParams p;
    p.kind = GetParam();
    p.dt = 0.002;
    p.thermostat = ThermostatKind::None;
    Integrator integrator(sys.ff, p, cop::Rng(3));
    cop::Rng rng(8);
    assignVelocities(sys.model.topology, sys.state, 0.5, rng);

    integrator.run(sys.state, 1); // prime forces/energies
    const double e0 = integrator.conservedQuantity(sys.state);
    integrator.run(sys.state, 5000);
    const double e1 = integrator.conservedQuantity(sys.state);
    // Drift well under 1% of the total energy scale over 5000 steps.
    EXPECT_NEAR(e1, e0, 0.01 * std::max(1.0, std::abs(e0)));
}

INSTANTIATE_TEST_SUITE_P(Kinds, NveIntegrators,
                         ::testing::Values(IntegratorKind::VelocityVerlet,
                                           IntegratorKind::Leapfrog));

TEST(Integrators, LangevinSamplesTargetTemperature) {
    TestSystem sys;
    IntegratorParams p;
    p.kind = IntegratorKind::LangevinBAOAB;
    p.dt = 0.005;
    p.temperature = 0.7;
    p.friction = 1.0;
    Integrator integrator(sys.ff, p, cop::Rng(11));
    cop::Rng rng(12);
    assignVelocities(sys.model.topology, sys.state, p.temperature, rng);

    integrator.run(sys.state, 2000); // equilibrate
    cop::RunningStats temp;
    for (int i = 0; i < 400; ++i) {
        integrator.run(sys.state, 20);
        // Langevin noise drives all 3N degrees of freedom (no conserved
        // COM momentum), hence removedDof = 0.
        temp.add(instantaneousTemperature(sys.model.topology, sys.state, 0));
    }
    EXPECT_NEAR(temp.mean(), p.temperature, 0.05);
}

TEST(Integrators, NoseHooverControlsTemperatureAndConservesExtended) {
    TestSystem sys(0.02, 21);
    IntegratorParams p;
    p.kind = IntegratorKind::VelocityVerlet;
    p.dt = 0.002;
    p.thermostat = ThermostatKind::NoseHoover;
    p.temperature = 0.6;
    p.tauT = 0.5;
    Integrator integrator(sys.ff, p, cop::Rng(13));
    cop::Rng rng(14);
    assignVelocities(sys.model.topology, sys.state, p.temperature, rng);

    integrator.run(sys.state, 2000);
    const double c0 = integrator.conservedQuantity(sys.state);
    cop::RunningStats temp;
    for (int i = 0; i < 500; ++i) {
        integrator.run(sys.state, 20);
        temp.add(instantaneousTemperature(sys.model.topology, sys.state));
    }
    const double c1 = integrator.conservedQuantity(sys.state);
    EXPECT_NEAR(temp.mean(), p.temperature, 0.06);
    EXPECT_NEAR(c1, c0, 0.05 * std::max(1.0, std::abs(c0)));
}

class StochasticThermostats
    : public ::testing::TestWithParam<ThermostatKind> {};

TEST_P(StochasticThermostats, ControlsTemperature) {
    TestSystem sys;
    IntegratorParams p;
    p.kind = IntegratorKind::VelocityVerlet;
    p.dt = 0.005;
    p.thermostat = GetParam();
    p.temperature = 0.8;
    p.tauT = 0.2;
    Integrator integrator(sys.ff, p, cop::Rng(15));
    cop::Rng rng(16);
    assignVelocities(sys.model.topology, sys.state, 0.2, rng); // cold start

    integrator.run(sys.state, 3000);
    cop::RunningStats temp;
    for (int i = 0; i < 400; ++i) {
        integrator.run(sys.state, 20);
        temp.add(instantaneousTemperature(sys.model.topology, sys.state));
    }
    EXPECT_NEAR(temp.mean(), p.temperature, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Kinds, StochasticThermostats,
                         ::testing::Values(ThermostatKind::VRescale,
                                           ThermostatKind::Berendsen));

TEST(Integrators, LeapfrogRejectsNoseHoover) {
    TestSystem sys;
    IntegratorParams p;
    p.kind = IntegratorKind::Leapfrog;
    p.thermostat = ThermostatKind::NoseHoover;
    Integrator integrator(sys.ff, p, cop::Rng(1));
    cop::Rng rng(2);
    assignVelocities(sys.model.topology, sys.state, 0.5, rng);
    EXPECT_THROW(integrator.run(sys.state, 10), cop::InvalidArgument);
}

TEST(Integrators, StepAndTimeAdvance) {
    TestSystem sys;
    IntegratorParams p;
    p.dt = 0.01;
    Integrator integrator(sys.ff, p, cop::Rng(1));
    integrator.run(sys.state, 25);
    EXPECT_EQ(sys.state.step, 25);
    EXPECT_NEAR(sys.state.time, 0.25, 1e-12);
}

TEST(Integrators, DeterministicGivenSeed) {
    TestSystem a, b;
    IntegratorParams p;
    p.kind = IntegratorKind::LangevinBAOAB;
    p.temperature = 0.6;
    Integrator ia(a.ff, p, cop::Rng(77));
    Integrator ib(b.ff, p, cop::Rng(77));
    cop::Rng ra(5), rb(5);
    assignVelocities(a.model.topology, a.state, 0.6, ra);
    assignVelocities(b.model.topology, b.state, 0.6, rb);
    ia.run(a.state, 500);
    ib.run(b.state, 500);
    for (std::size_t i = 0; i < a.state.numParticles(); ++i)
        EXPECT_EQ(a.state.positions[i], b.state.positions[i]);
}

TEST(Integrators, RejectsBadParameters) {
    TestSystem sys;
    IntegratorParams p;
    p.dt = 0.0;
    EXPECT_THROW(Integrator(sys.ff, p, cop::Rng(1)), cop::InvalidArgument);
    p.dt = 0.01;
    p.tauT = 0.0;
    EXPECT_THROW(Integrator(sys.ff, p, cop::Rng(1)), cop::InvalidArgument);
}

TEST(Fire, ConvergesPerturbedGoStructure) {
    // A hostile start: every residue displaced from native. FIRE must
    // drive the max force below tolerance and end well below the
    // starting energy (near the native basin floor).
    TestSystem sys(/*perturb=*/0.12, /*seed=*/71);
    std::vector<Vec3> scratch;
    const double e0 =
        sys.ff.compute(sys.state.positions, scratch).potential();

    FireParams p;
    p.maxSteps = 50000;
    const auto r = fireMinimize(sys.ff, sys.state.positions, p);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.maxForce, p.forceTol);
    EXPECT_LT(r.energies.potential(), e0);
    // The relaxed structure sits at (or below) a local minimum close to
    // the native basin: bonded strain nearly gone, contacts near their
    // -eps minima.
    EXPECT_LT(r.energies.potential(),
              -0.8 * double(sys.model.numContacts()));
}

TEST(Fire, LjDimerRelaxesToPotentialMinimum) {
    Topology top(2);
    top.finalize();
    ForceFieldParams params;
    params.kind = NonbondedKind::LennardJonesRF;
    params.cutoff = 2.5;
    params.shiftLJ = false;
    ForceField ff(top, Box::open(), params);

    std::vector<Vec3> pos{{0, 0, 0}, {1.5, 0, 0}};
    FireParams p;
    p.forceTol = 1e-8;
    const auto r = fireMinimize(ff, pos, p);
    EXPECT_TRUE(r.converged);
    // LJ minimum at r = 2^(1/6) sigma.
    EXPECT_NEAR(norm(pos[1] - pos[0]), std::pow(2.0, 1.0 / 6.0), 1e-6);
}

TEST(Fire, OverlappingStartDoesNotExplode) {
    // Two nearly coincident particles: raw LJ force ~ 1e+26. The
    // displacement clamp keeps the first steps finite and the dimer
    // still relaxes to the minimum.
    Topology top(2);
    top.finalize();
    ForceFieldParams params;
    params.kind = NonbondedKind::LennardJonesRF;
    params.cutoff = 2.5;
    params.shiftLJ = false;
    ForceField ff(top, Box::open(), params);

    std::vector<Vec3> pos{{0, 0, 0}, {0.05, 0, 0}};
    FireParams p;
    p.forceTol = 1e-8;
    const auto r = fireMinimize(ff, pos, p);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(norm(pos[1] - pos[0]), std::pow(2.0, 1.0 / 6.0), 1e-6);
    for (const auto& x : pos) EXPECT_TRUE(std::isfinite(norm(x)));
}

TEST(Fire, AlreadyMinimizedReturnsImmediately) {
    Topology top(2);
    top.finalize();
    ForceFieldParams params;
    params.kind = NonbondedKind::LennardJonesRF;
    params.cutoff = 2.5;
    params.shiftLJ = false;
    ForceField ff(top, Box::open(), params);
    std::vector<Vec3> pos{{0, 0, 0}, {std::pow(2.0, 1.0 / 6.0), 0, 0}};
    FireParams p;
    p.forceTol = 1e-6;
    const auto r = fireMinimize(ff, pos, p);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.steps, 0);
}

TEST(Fire, RejectsBadParameters) {
    TestSystem sys;
    FireParams p;
    p.dtInit = 0.0;
    EXPECT_THROW(fireMinimize(sys.ff, sys.state.positions, p),
                 cop::InvalidArgument);
    p = FireParams{};
    p.forceTol = -1.0;
    EXPECT_THROW(fireMinimize(sys.ff, sys.state.positions, p),
                 cop::InvalidArgument);
    p = FireParams{};
    p.fDec = 1.5;
    EXPECT_THROW(fireMinimize(sys.ff, sys.state.positions, p),
                 cop::InvalidArgument);
}

} // namespace
} // namespace cop::md
