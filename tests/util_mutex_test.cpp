// Lock-order detector + annotated mutex wrapper. The ABBA scenarios here
// never actually deadlock (single thread, both orders executed serially) —
// exactly the situations TSan's happens-before analysis cannot flag — yet
// the acquisition-order graph turns them into deterministic failures.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "util/mutex.hpp"

namespace cop::util {
namespace {

/// Enables the detector for one test and captures cycle reports instead of
/// aborting; restores everything on scope exit.
class DetectorFixture {
public:
    DetectorFixture() {
        auto& reg = LockOrderRegistry::instance();
        wasEnabled_ = reg.enabled();
        reg.resetGraph();
        reg.setEnabled(true);
        prev_ = reg.setFailureHandler(
            [this](const std::string& report) { reports_.push_back(report); });
    }
    ~DetectorFixture() {
        auto& reg = LockOrderRegistry::instance();
        reg.setFailureHandler(std::move(prev_));
        reg.setEnabled(wasEnabled_);
        reg.resetGraph();
    }

    const std::vector<std::string>& reports() const { return reports_; }

private:
    std::vector<std::string> reports_;
    LockOrderRegistry::FailureHandler prev_;
    bool wasEnabled_ = false;
};

TEST(LockOrder, ConsistentNestingProducesNoReport) {
    DetectorFixture fx;
    Mutex a("A"), b("B");
    for (int i = 0; i < 3; ++i) {
        LockGuard la(a);
        LockGuard lb(b);
    }
    EXPECT_TRUE(fx.reports().empty());
}

TEST(LockOrder, AbbaCycleFiresWithBothStacks) {
    DetectorFixture fx;
    Mutex a("ServerState"), b("CheckpointCache");
    {
        LockGuard la(a); // records ServerState -> CheckpointCache
        LockGuard lb(b);
    }
    {
        LockGuard lb(b); // inversion: detector must fire on acquiring a
        LockGuard la(a);
    }
    ASSERT_EQ(fx.reports().size(), 1u);
    const std::string& report = fx.reports().front();
    // The report carries both acquisition stacks: the current thread's
    // (B held while acquiring A) and the recorded conflicting edge's
    // (A held while acquiring B).
    EXPECT_NE(report.find("lock-order cycle"), std::string::npos);
    EXPECT_NE(report.find("\"CheckpointCache\" -> \"ServerState\""),
              std::string::npos);
    EXPECT_NE(report.find("\"ServerState\" -> \"CheckpointCache\""),
              std::string::npos);
}

TEST(LockOrder, ThreeLockCycleReportsTheRecordedChain) {
    DetectorFixture fx;
    Mutex a("A"), b("B"), c("C");
    {
        LockGuard la(a);
        LockGuard lb(b); // A -> B
    }
    {
        LockGuard lb(b);
        LockGuard lc(c); // B -> C
    }
    {
        LockGuard lc(c);
        LockGuard la(a); // closes C -> A: cycle through A -> B -> C
    }
    ASSERT_EQ(fx.reports().size(), 1u);
    const std::string& report = fx.reports().front();
    EXPECT_NE(report.find("A held while acquiring B"), std::string::npos);
    EXPECT_NE(report.find("B held while acquiring C"), std::string::npos);
}

TEST(LockOrder, EachInversionReportsOnceThenEdgeIsKnown) {
    DetectorFixture fx;
    Mutex a("A"), b("B");
    {
        LockGuard la(a);
        LockGuard lb(b);
    }
    for (int i = 0; i < 3; ++i) {
        LockGuard lb(b);
        LockGuard la(a);
    }
    // The B -> A edge is recorded on the first firing; repeats of an
    // already-known (reported) order do not spam.
    EXPECT_EQ(fx.reports().size(), 1u);
}

TEST(LockOrder, DisabledDetectorIsSilent) {
    DetectorFixture fx;
    LockOrderRegistry::instance().setEnabled(false);
    Mutex a("A"), b("B");
    {
        LockGuard la(a);
        LockGuard lb(b);
    }
    {
        LockGuard lb(b);
        LockGuard la(a);
    }
    EXPECT_TRUE(fx.reports().empty());
}

TEST(LockOrder, SeparateThreadsContributeToOneGraph) {
    DetectorFixture fx;
    Mutex a("A"), b("B");
    std::thread t([&] {
        LockGuard la(a);
        LockGuard lb(b); // A -> B recorded on the other thread
    });
    t.join();
    {
        LockGuard lb(b); // this thread inverts it
        LockGuard la(a);
    }
    EXPECT_EQ(fx.reports().size(), 1u);
}

TEST(LockOrder, TryLockParticipatesInOrdering) {
    DetectorFixture fx;
    Mutex a("A"), b("B");
    {
        LockGuard la(a);
        ASSERT_TRUE(b.try_lock()); // A -> B via try_lock
        b.unlock();
    }
    {
        LockGuard lb(b);
        LockGuard la(a);
    }
    EXPECT_EQ(fx.reports().size(), 1u);
}

TEST(UniqueLock, ManualUnlockRelockStaysBalanced) {
    DetectorFixture fx;
    Mutex a("A");
    {
        UniqueLock lock(a);
        lock.unlock(); // condition_variable_any wait path
        lock.lock();
    }
    // Mutex must be free again: an unbalanced detector stack would record
    // a spurious A-held edge here.
    Mutex b("B");
    {
        LockGuard lb(b);
        LockGuard la(a);
    }
    {
        LockGuard la(a);
        LockGuard lb(b); // would be a cycle if A were falsely "held" above
    }
    EXPECT_EQ(fx.reports().size(), 1u) << "only the real B->A inversion";
}

} // namespace
} // namespace cop::util
