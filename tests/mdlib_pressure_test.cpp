// Virial pressure and the Berendsen barostat on the LJ fluid.

#include <gtest/gtest.h>

#include "mdlib/integrators.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"

namespace cop::md {
namespace {

struct LjFluid {
    Topology top;
    Box box;
    ForceFieldParams params;
    State state;

    LjFluid(std::size_t n, double boxLen, std::uint64_t seed) {
        for (std::size_t i = 0; i < n; ++i) top.addParticle(1.0);
        top.finalize();
        box = Box::cubic(boxLen);
        params.kind = NonbondedKind::LennardJonesRF;
        params.cutoff = 2.5;
        state.resize(n);
        cop::Rng rng(seed);
        const int side = int(std::ceil(std::cbrt(double(n))));
        const double a = boxLen / side;
        std::size_t placed = 0;
        for (int x = 0; x < side && placed < n; ++x)
            for (int y = 0; y < side && placed < n; ++y)
                for (int z = 0; z < side && placed < n; ++z, ++placed)
                    state.positions[placed] = {x * a, y * a, z * a};
    }
};

TEST(Pressure, DiluteGasApproachesIdealLaw) {
    // Very dilute LJ gas: P ~ rho * T.
    LjFluid sys(27, 30.0, 1); // rho ~ 0.001
    ForceField ff(sys.top, sys.box, sys.params);
    IntegratorParams p;
    p.kind = IntegratorKind::LangevinBAOAB;
    p.dt = 0.004;
    p.temperature = 1.5;
    p.friction = 1.0;
    Integrator integrator(ff, p, cop::Rng(2));
    cop::Rng rng(3);
    assignVelocities(sys.top, sys.state, p.temperature, rng);
    integrator.run(sys.state, 500);

    cop::RunningStats pressure;
    for (int i = 0; i < 300; ++i) {
        integrator.run(sys.state, 10);
        pressure.add(integrator.pressure(sys.state));
    }
    const double rho = 27.0 / sys.box.volume();
    EXPECT_NEAR(pressure.mean(), rho * p.temperature,
                0.3 * rho * p.temperature);
}

TEST(Pressure, DenseFluidDeviatesFromIdeal) {
    // Near-coexistence LJ liquid (rho ~ 0.58, T = 1.0): the attractive
    // tail pulls the compressibility factor Z = P/(rho T) far below 1
    // (measured Z ~ 0 for this state point).
    LjFluid sys(216, 7.2, 4);
    ForceField ff(sys.top, sys.box, sys.params);
    IntegratorParams p;
    p.kind = IntegratorKind::LangevinBAOAB;
    p.dt = 0.004;
    p.temperature = 1.0;
    p.friction = 1.0;
    Integrator integrator(ff, p, cop::Rng(5));
    cop::Rng rng(6);
    assignVelocities(sys.top, sys.state, p.temperature, rng);
    integrator.run(sys.state, 5000);

    cop::RunningStats pressure;
    for (int i = 0; i < 200; ++i) {
        integrator.run(sys.state, 10);
        pressure.add(integrator.pressure(sys.state));
    }
    const double rho = 216.0 / sys.box.volume();
    EXPECT_LT(pressure.mean(), 0.5 * rho * p.temperature);
}

TEST(Pressure, VirialMatchesVolumeDerivative) {
    // W = 3 P_conf V must equal -3V dU/dV (numerically, by scaling the
    // box and positions).
    LjFluid sys(64, 5.0, 7);
    cop::Rng rng(8);
    for (auto& x : sys.state.positions) x += rng.gaussianVec3(0.05);

    auto energyAtScale = [&](double mu) {
        Box scaled = sys.box;
        scaled.lengths *= mu;
        ForceField ff(sys.top, scaled, sys.params);
        std::vector<Vec3> pos = sys.state.positions;
        for (auto& x : pos) x *= mu;
        std::vector<Vec3> forces;
        return ff.compute(pos, forces).potential();
    };
    ForceField ff(sys.top, sys.box, sys.params);
    std::vector<Vec3> forces;
    const double w = ff.compute(sys.state.positions, forces).pairVirial;

    const double h = 1e-5;
    const double dUdMu =
        (energyAtScale(1.0 + h) - energyAtScale(1.0 - h)) / (2.0 * h);
    // dU/dV = dU/dmu / (3 V); W = -3 V dU/dV = -dU/dmu.
    EXPECT_NEAR(w, -dUdMu, 1e-2 * std::max(1.0, std::abs(w)));
}

TEST(Barostat, BerendsenDrivesPressureTowardsTarget) {
    LjFluid sys(125, 6.0, 9);
    ForceField ff(sys.top, sys.box, sys.params);
    IntegratorParams p;
    p.kind = IntegratorKind::LangevinBAOAB;
    p.dt = 0.004;
    p.temperature = 1.3;
    p.friction = 1.0;
    p.barostat = BarostatKind::Berendsen;
    p.pressure = 0.5;
    p.tauP = 0.5;
    Integrator integrator(ff, p, cop::Rng(10));
    cop::Rng rng(11);
    assignVelocities(sys.top, sys.state, p.temperature, rng);

    const double v0 = ff.box().volume();
    integrator.run(sys.state, 4000);
    cop::RunningStats pressure;
    for (int i = 0; i < 300; ++i) {
        integrator.run(sys.state, 10);
        pressure.add(integrator.pressure(sys.state));
    }
    EXPECT_NEAR(pressure.mean(), p.pressure, 0.3);
    // The box actually moved.
    EXPECT_NE(ff.box().volume(), v0);
}

TEST(Barostat, RequiresPeriodicBox) {
    Topology top(4);
    top.finalize();
    ForceFieldParams fp;
    ForceField ff(top, Box::open(), fp);
    IntegratorParams p;
    p.kind = IntegratorKind::VelocityVerlet;
    p.barostat = BarostatKind::Berendsen;
    Integrator integrator(ff, p, cop::Rng(1));
    State state;
    state.resize(4);
    state.positions = {{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}};
    EXPECT_THROW(integrator.run(state, 1), cop::InvalidArgument);
}

} // namespace
} // namespace cop::md
