#include "mdlib/neighborlist.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace cop::md {
namespace {

/// Random particles in a periodic box; no exclusions.
struct RandomSystem {
    Topology top;
    Box box;
    std::vector<Vec3> positions;
};

RandomSystem makeRandom(std::size_t n, double boxLen, std::uint64_t seed) {
    RandomSystem sys;
    sys.top = Topology(n);
    sys.top.finalize();
    sys.box = Box::cubic(boxLen);
    cop::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        sys.positions.push_back({rng.uniform(0.0, boxLen),
                                 rng.uniform(0.0, boxLen),
                                 rng.uniform(0.0, boxLen)});
    return sys;
}

std::set<std::pair<int, int>> bruteForcePairs(const RandomSystem& sys,
                                              double cutoff) {
    std::set<std::pair<int, int>> pairs;
    const int n = int(sys.positions.size());
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j) {
            const Vec3 d = sys.box.minimumImage(sys.positions[std::size_t(i)],
                                                sys.positions[std::size_t(j)]);
            if (norm2(d) <= cutoff * cutoff) pairs.insert({i, j});
        }
    return pairs;
}

std::set<std::pair<int, int>> toSet(const std::vector<NeighborPair>& pairs) {
    std::set<std::pair<int, int>> out;
    for (const auto& p : pairs)
        out.insert({std::min(p.i, p.j), std::max(p.i, p.j)});
    return out;
}

class NeighborListSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NeighborListSizes, CellListMatchesBruteForce) {
    const auto sys = makeRandom(GetParam(), 12.0, 17 + GetParam());
    NeighborList nl(2.5, 0.3);
    nl.build(sys.top, sys.box, sys.positions);
    const auto expected = bruteForcePairs(sys, 2.8);
    EXPECT_EQ(toSet(nl.pairs()), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NeighborListSizes,
                         ::testing::Values(2, 10, 50, 200, 500));

TEST(NeighborList, OpenBoundaryBruteForce) {
    auto sys = makeRandom(40, 8.0, 5);
    sys.box = Box::open();
    NeighborList nl(2.0, 0.2);
    nl.build(sys.top, sys.box, sys.positions);
    EXPECT_EQ(toSet(nl.pairs()), bruteForcePairs(sys, 2.2));
}

TEST(NeighborList, ExclusionsNeverAppear) {
    Topology top(4);
    top.addBond({0, 1, 1.0, 1.0});
    top.addBond({2, 3, 1.0, 1.0});
    top.finalize();
    const std::vector<Vec3> pos{
        {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}};
    NeighborList nl(5.0, 0.5);
    nl.build(top, Box::open(), pos);
    const auto set = toSet(nl.pairs());
    EXPECT_EQ(set.count({0, 1}), 0u);
    EXPECT_EQ(set.count({2, 3}), 0u);
    EXPECT_EQ(set.count({0, 2}), 1u);
    EXPECT_EQ(set.size(), 4u); // 6 pairs minus 2 exclusions
}

TEST(NeighborList, UpdateOnlyRebuildsWhenNeeded) {
    auto sys = makeRandom(100, 10.0, 7);
    NeighborList nl(2.0, 0.4);
    nl.build(sys.top, sys.box, sys.positions);
    EXPECT_EQ(nl.numBuilds(), 1u);

    // Tiny displacement: no rebuild.
    auto moved = sys.positions;
    for (auto& p : moved) p += Vec3{0.05, 0.0, 0.0};
    EXPECT_FALSE(nl.update(sys.top, sys.box, moved));
    EXPECT_EQ(nl.numBuilds(), 1u);

    // Displacement beyond skin/2: rebuild.
    moved[0] += Vec3{0.5, 0.0, 0.0};
    EXPECT_TRUE(nl.update(sys.top, sys.box, moved));
    EXPECT_EQ(nl.numBuilds(), 2u);
}

TEST(NeighborList, BufferedListStaysValidWithinSkin) {
    // Pairs within cutoff after a sub-skin/2 move must already be in the
    // list built from the old positions (the Verlet-buffer guarantee).
    auto sys = makeRandom(150, 9.0, 11);
    const double cutoff = 2.0, skin = 0.6;
    NeighborList nl(cutoff, skin);
    nl.build(sys.top, sys.box, sys.positions);
    const auto listed = toSet(nl.pairs());

    cop::Rng rng(23);
    auto moved = sys.positions;
    for (auto& p : moved) {
        const Vec3 d = rng.gaussianVec3(1.0);
        p += normalized(d) * (0.45 * skin / 2.0 + 0.0); // < skin/2
    }
    RandomSystem movedSys{Topology(sys.positions.size()), sys.box, moved};
    movedSys.top.finalize();
    for (const auto& p : bruteForcePairs(movedSys, cutoff))
        EXPECT_TRUE(listed.count(p)) << p.first << "," << p.second;
}

TEST(NeighborList, ParticlesOnBoundariesMatchBruteForce) {
    // Particles exactly on faces, edges and corners of the box (0 and L in
    // each dimension) plus a random filler population. Exercises the wrap
    // + cell-index clamping path of the counting-sort build.
    const double L = 12.0;
    auto sys = makeRandom(80, L, 31);
    const double coords[] = {0.0, L, L / 2.0};
    for (double cx : coords)
        for (double cy : coords)
            for (double cz : coords) sys.positions.push_back({cx, cy, cz});
    sys.top = Topology(sys.positions.size());
    sys.top.finalize();
    NeighborList nl(2.5, 0.3);
    nl.build(sys.top, sys.box, sys.positions);
    EXPECT_EQ(toSet(nl.pairs()), bruteForcePairs(sys, 2.8));
}

TEST(NeighborList, BoxBarelyThreeCellsMatchesBruteForce) {
    // listCut = 2.8; boxes exactly at and just above the 3x listCut
    // threshold where the cell path switches on with the minimum 3x3x3
    // grid (every cell is its own neighbour's neighbour — the wrap
    // arithmetic must still visit each cell pair exactly once).
    for (double L : {3.0 * 2.8, 3.0 * 2.8 + 1e-9, 3.0 * 2.8 + 0.5}) {
        auto sys = makeRandom(150, L, 37);
        NeighborList nl(2.5, 0.3);
        nl.build(sys.top, sys.box, sys.positions);
        EXPECT_EQ(toSet(nl.pairs()), bruteForcePairs(sys, 2.8)) << "L=" << L;
        // Deterministic, duplicate-free emission without a sort pass.
        auto seen = toSet(nl.pairs());
        EXPECT_EQ(seen.size(), nl.pairs().size()) << "duplicate pairs";
    }
}

TEST(NeighborList, NegativeAndFarOutOfBoxPositionsMatchBruteForce) {
    // Positions outside [0, L) must wrap into the correct cell.
    auto sys = makeRandom(60, 12.0, 41);
    for (std::size_t i = 0; i < sys.positions.size(); i += 3)
        sys.positions[i] += Vec3{-12.0, 24.0, -36.0};
    NeighborList nl(2.5, 0.3);
    nl.build(sys.top, sys.box, sys.positions);
    EXPECT_EQ(toSet(nl.pairs()), bruteForcePairs(sys, 2.8));
}

TEST(NeighborList, ParallelDisplacementScanMatchesSerial) {
    auto sys = makeRandom(5000, 24.0, 43);
    cop::ThreadPool pool(4);
    NeighborList serial(2.0, 0.4), parallel(2.0, 0.4);
    serial.build(sys.top, sys.box, sys.positions);
    parallel.build(sys.top, sys.box, sys.positions);

    auto moved = sys.positions;
    for (auto& p : moved) p += Vec3{0.05, 0.0, 0.0};
    EXPECT_FALSE(serial.update(sys.top, sys.box, moved));
    EXPECT_FALSE(parallel.update(sys.top, sys.box, moved, &pool));

    moved[4321] += Vec3{0.5, 0.0, 0.0};
    EXPECT_TRUE(serial.update(sys.top, sys.box, moved));
    EXPECT_TRUE(parallel.update(sys.top, sys.box, moved, &pool));
    EXPECT_EQ(toSet(serial.pairs()), toSet(parallel.pairs()));
}

TEST(NeighborList, HotParticleShortCircuitStillRebuilds) {
    // After one rebuild triggered by a mover, the same particle moving
    // again must trigger the fast path (rebuild count goes up each time).
    auto sys = makeRandom(200, 12.0, 47);
    NeighborList nl(2.0, 0.4);
    nl.build(sys.top, sys.box, sys.positions);
    auto moved = sys.positions;
    for (int step = 1; step <= 3; ++step) {
        moved[7] += Vec3{0.5, 0.0, 0.0};
        EXPECT_TRUE(nl.update(sys.top, sys.box, moved));
        EXPECT_EQ(nl.numBuilds(), std::size_t(step) + 1);
        EXPECT_EQ(toSet(nl.pairs()),
                  bruteForcePairs({sys.top, sys.box, moved}, 2.4));
    }
}

TEST(NeighborList, RejectsBadParameters) {
    EXPECT_THROW(NeighborList(-1.0, 0.1), cop::InvalidArgument);
    EXPECT_THROW(NeighborList(1.0, -0.1), cop::InvalidArgument);
}

} // namespace
} // namespace cop::md
