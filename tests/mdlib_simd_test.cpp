/// Parity and dispatch tests for the runtime-dispatched SIMD kernel
/// layer (simd.hpp / simd_dispatch.hpp): every kernel set compiled into
/// this binary and runnable on this host is swept against the Scalar
/// reference flavor for both NonbondedKinds, over shifted (cell-built
/// periodic), unshifted-periodic (brute-force rint) and open-box pair
/// lists, with ragged run lengths so every width's remainder-lane tail
/// executes. The documented tolerance for SIMD flavors is 1e-9 (vector
/// accumulators change summation order only); see DESIGN.md.

#include <cstdlib>

#include <gtest/gtest.h>

#include "mdlib/forcefield.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/simd_dispatch.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace cop::md {
namespace {

constexpr double kSimdTol = 1e-9;

/// RAII guard for the COPERNICUS_SIMD environment variable.
class SimdEnvGuard {
public:
    explicit SimdEnvGuard(const char* value) {
        const char* old = std::getenv("COPERNICUS_SIMD");
        if (old != nullptr) saved_ = old;
        hadOld_ = old != nullptr;
        if (value != nullptr)
            ::setenv("COPERNICUS_SIMD", value, 1);
        else
            ::unsetenv("COPERNICUS_SIMD");
    }
    ~SimdEnvGuard() {
        if (hadOld_)
            ::setenv("COPERNICUS_SIMD", saved_.c_str(), 1);
        else
            ::unsetenv("COPERNICUS_SIMD");
    }

private:
    std::string saved_;
    bool hadOld_ = false;
};

std::vector<SimdIsa> runnableIsas() {
    std::vector<SimdIsa> out;
    for (SimdIsa isa : compiledSimdIsas())
        if (simdIsaRunnable(isa)) out.push_back(isa);
    return out;
}

struct LjSystem {
    Topology top;
    Box box;
    ForceFieldParams params;
    std::vector<Vec3> positions;
};

/// Jittered-lattice LJ fluid. chargeEvery == 0 leaves the fluid neutral
/// (pure lj bucket); chargeEvery == 1 charges everything (pure ljCoul
/// bucket); chargeEvery >= 2 populates BOTH buckets so one compute()
/// sweeps two kernel families at once. A prime-ish n gives ragged
/// per-run pair counts, so every SIMD width exercises its remainder
/// tail.
LjSystem makeLj(std::size_t n, double boxLen, std::uint64_t seed,
                int chargeEvery = 0) {
    LjSystem sys;
    cop::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        const bool charged =
            chargeEvery > 0 && (i % std::size_t(chargeEvery)) == 0;
        sys.top.addParticle(1.0, charged ? (i % 2 ? 0.2 : -0.2) : 0.0);
    }
    sys.top.finalize();
    sys.box = Box::cubic(boxLen);
    sys.params.kind = NonbondedKind::LennardJonesRF;
    sys.params.cutoff = 2.5;
    sys.params.useCoulombRF = chargeEvery > 0;
    const int side = int(std::ceil(std::cbrt(double(n))));
    const double a = boxLen / side;
    std::size_t placed = 0;
    for (int x = 0; x < side && placed < n; ++x)
        for (int y = 0; y < side && placed < n; ++y)
            for (int z = 0; z < side && placed < n; ++z, ++placed)
                sys.positions.push_back({x * a + rng.uniform(-0.05, 0.05),
                                         y * a + rng.uniform(-0.05, 0.05),
                                         z * a + rng.uniform(-0.05, 0.05)});
    return sys;
}

Energies runWith(const LjSystem& sys, KernelFlavor flavor, SimdIsa isa,
                 std::vector<Vec3>& forces, cop::ThreadPool* pool = nullptr) {
    auto params = sys.params;
    params.flavor = flavor;
    params.simdIsa = isa;
    ForceField ff(sys.top, sys.box, params, pool);
    return ff.compute(sys.positions, forces);
}

void expectIsaMatchesScalar(const LjSystem& sys, SimdIsa isa) {
    SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
    std::vector<Vec3> fRef, fSimd;
    const auto eRef = runWith(sys, KernelFlavor::Scalar, SimdIsa::Auto, fRef);
    const auto eSimd = runWith(sys, KernelFlavor::SimdAuto, isa, fSimd);
    EXPECT_NEAR(eRef.nonbonded, eSimd.nonbonded, kSimdTol);
    EXPECT_NEAR(eRef.coulomb, eSimd.coulomb, kSimdTol);
    EXPECT_NEAR(eRef.pairVirial, eSimd.pairVirial, 1e-7);
    ASSERT_EQ(fRef.size(), fSimd.size());
    for (std::size_t i = 0; i < fRef.size(); ++i)
        EXPECT_NEAR(norm(fRef[i] - fSimd[i]), 0.0, kSimdTol);
}

// ---- parity sweeps: every runnable ISA x both kinds x list shapes ----

TEST(SimdKernels, MatchScalarOnShiftedChargedLJ) {
    // boxLen 9 >= 3 list cutoffs: cell-built list, shifted kernels.
    const auto sys = makeLj(125, 9.0, 19, /*chargeEvery=*/1);
    for (SimdIsa isa : runnableIsas()) expectIsaMatchesScalar(sys, isa);
}

TEST(SimdKernels, MatchScalarOnMixedChargeBuckets) {
    // chargeEvery=3: lj and ljCoul buckets both populated; n=113 prime
    // for maximally ragged remainder lanes.
    const auto sys = makeLj(113, 9.0, 41, /*chargeEvery=*/3);
    for (SimdIsa isa : runnableIsas()) expectIsaMatchesScalar(sys, isa);
}

TEST(SimdKernels, MatchScalarOnUnshiftedPeriodicLJ) {
    // boxLen 6 < 3 list cutoffs: brute-force list, per-pair rint imaging.
    const auto sys = makeLj(61, 6.0, 23, /*chargeEvery=*/2);
    for (SimdIsa isa : runnableIsas()) expectIsaMatchesScalar(sys, isa);
}

TEST(SimdKernels, MatchScalarOnGoRepulsiveOpenBox) {
    const auto model = villinGoModel();
    cop::Rng rng(31);
    auto pos = model.native;
    for (auto& p : pos) p += rng.gaussianVec3(0.3);

    auto scalarParams = model.forceFieldParams();
    scalarParams.flavor = KernelFlavor::Scalar;
    ForceField ffRef(model.topology, Box::open(), scalarParams);
    std::vector<Vec3> fRef;
    const auto eRef = ffRef.compute(pos, fRef);

    for (SimdIsa isa : runnableIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        auto params = model.forceFieldParams();
        params.flavor = KernelFlavor::SimdAuto;
        params.simdIsa = isa;
        ForceField ff(model.topology, Box::open(), params);
        std::vector<Vec3> f;
        const auto e = ff.compute(pos, f);
        EXPECT_NEAR(eRef.nonbonded, e.nonbonded, kSimdTol);
        EXPECT_NEAR(eRef.pairVirial, e.pairVirial, 1e-7);
        for (std::size_t i = 0; i < fRef.size(); ++i)
            EXPECT_NEAR(norm(fRef[i] - f[i]), 0.0, kSimdTol);
    }
}

TEST(SimdKernels, RemainderLanesOnTinySystems) {
    // n below every pack width and just around it: runs of 0..a few
    // pairs, so W-wide blocks rarely or never execute and the scalar
    // tail carries the whole answer.
    for (std::size_t n : {2u, 3u, 5u, 9u, 17u}) {
        SCOPED_TRACE("n=" + std::to_string(n));
        const auto sys = makeLj(n, 6.0, 100 + n, /*chargeEvery=*/2);
        for (SimdIsa isa : runnableIsas()) expectIsaMatchesScalar(sys, isa);
    }
}

TEST(SimdKernels, SimdAutoForcesMatchFiniteDifferences) {
    auto sys = makeLj(27, 6.0, 7, /*chargeEvery=*/1);
    sys.params.flavor = KernelFlavor::SimdAuto;
    ForceField ff(sys.top, sys.box, sys.params);
    EXPECT_LT(maxForceError(ff, sys.positions), 2e-4);
}

TEST(SimdKernels, ThreadedSimdAutoMatchesSerial) {
    const auto sys = makeLj(343, 12.0, 29, /*chargeEvery=*/1);
    cop::ThreadPool pool(4);
    std::vector<Vec3> fSerial, fThreaded;
    const auto e1 = runWith(sys, KernelFlavor::SimdAuto, SimdIsa::Auto,
                            fSerial);
    const auto e2 = runWith(sys, KernelFlavor::SimdAuto, SimdIsa::Auto,
                            fThreaded, &pool);
    EXPECT_NEAR(e1.nonbonded, e2.nonbonded, kSimdTol);
    EXPECT_NEAR(e1.coulomb, e2.coulomb, kSimdTol);
    for (std::size_t i = 0; i < fSerial.size(); ++i)
        EXPECT_NEAR(norm(fSerial[i] - fThreaded[i]), 0.0, kSimdTol);
}

// ---- dispatch policy ----

TEST(SimdDispatch, ScalarIsAlwaysCompiledAndRunnable) {
    const auto& compiled = compiledSimdIsas();
    ASSERT_FALSE(compiled.empty());
    EXPECT_EQ(compiled.front(), SimdIsa::Scalar);
    EXPECT_TRUE(simdIsaRunnable(SimdIsa::Scalar));
}

TEST(SimdDispatch, DetectReturnsRunnableIsa) {
    const SimdIsa isa = detectSimdIsa();
    EXPECT_NE(isa, SimdIsa::Auto);
    EXPECT_TRUE(simdIsaRunnable(isa));
}

TEST(SimdDispatch, NamesRoundTrip) {
    for (SimdIsa isa : compiledSimdIsas())
        EXPECT_EQ(parseSimdIsaName(simdIsaName(isa)), isa);
    EXPECT_EQ(parseSimdIsaName("auto"), SimdIsa::Auto);
    EXPECT_EQ(parseSimdIsaName("generic"), SimdIsa::Scalar);
    EXPECT_THROW(parseSimdIsaName("bogus"), cop::InvalidArgument);
}

TEST(SimdDispatch, KernelSetWidthsArePositiveAndNamed) {
    for (SimdIsa isa : runnableIsas()) {
        const auto& ks = kernelSetFor(isa);
        EXPECT_GE(ks.width, 1);
        EXPECT_STREQ(ks.name, simdIsaName(isa));
        for (int sh = 0; sh < 2; ++sh) {
            EXPECT_NE(ks.lj[sh], nullptr);
            EXPECT_NE(ks.ljCoul[sh], nullptr);
            EXPECT_NE(ks.go[sh], nullptr);
        }
    }
}

TEST(SimdDispatch, NonRunnableExplicitRequestThrows) {
    const auto sys = makeLj(8, 6.0, 3);
    bool anyNonRunnable = false;
    for (SimdIsa isa :
         {SimdIsa::Sse2, SimdIsa::Avx2, SimdIsa::Avx512, SimdIsa::Neon}) {
        if (simdIsaRunnable(isa)) continue;
        anyNonRunnable = true;
        auto params = sys.params;
        params.flavor = KernelFlavor::SimdAuto;
        params.simdIsa = isa;
        EXPECT_THROW(ForceField(sys.top, sys.box, params),
                     cop::InvalidArgument)
            << simdIsaName(isa);
    }
    if (!anyNonRunnable) GTEST_SKIP() << "host runs every compiled ISA";
}

TEST(SimdDispatch, EnvVarOverridesAutoResolution) {
    SimdEnvGuard env("scalar");
    const auto sys = makeLj(27, 6.0, 5, /*chargeEvery=*/1);
    auto params = sys.params;
    params.flavor = KernelFlavor::SimdAuto;
    ForceField ff(sys.top, sys.box, params);
    EXPECT_EQ(ff.activeSimdIsa(), SimdIsa::Scalar);
    EXPECT_STREQ(ff.kernelSet().name, "scalar");
    // And the override still computes correct forces.
    std::vector<Vec3> fRef, fEnv;
    runWith(sys, KernelFlavor::Scalar, SimdIsa::Auto, fRef);
    ff.compute(sys.positions, fEnv);
    for (std::size_t i = 0; i < fRef.size(); ++i)
        EXPECT_NEAR(norm(fRef[i] - fEnv[i]), 0.0, kSimdTol);
}

TEST(SimdDispatch, ExplicitParamBeatsEnvVar) {
    // Explicit simdIsa pins the kernel regardless of the environment, so
    // a CI job exporting COPERNICUS_SIMD=scalar cannot silently change
    // what an ISA-pinned test measures.
    const SimdIsa widest = detectSimdIsa();
    SimdEnvGuard env("scalar");
    const auto sys = makeLj(8, 6.0, 3);
    auto params = sys.params;
    params.flavor = KernelFlavor::SimdAuto;
    params.simdIsa = widest;
    ForceField ff(sys.top, sys.box, params);
    EXPECT_EQ(ff.activeSimdIsa(), widest);
}

TEST(SimdDispatch, BadEnvVarThrows) {
    SimdEnvGuard env("pentium-mmx");
    const auto sys = makeLj(8, 6.0, 3);
    auto params = sys.params;
    params.flavor = KernelFlavor::SimdAuto;
    EXPECT_THROW(ForceField(sys.top, sys.box, params), cop::InvalidArgument);
}

TEST(SimdDispatch, EnvVarAutoFallsThroughToDetection) {
    SimdEnvGuard env("auto");
    const auto sys = makeLj(8, 6.0, 3);
    auto params = sys.params;
    params.flavor = KernelFlavor::SimdAuto;
    ForceField ff(sys.top, sys.box, params);
    EXPECT_EQ(ff.activeSimdIsa(), detectSimdIsa());
}

TEST(SimdDispatch, NonSimdFlavorsUseScalarWidthOneSet) {
    const auto sys = makeLj(8, 6.0, 3);
    ForceField ff(sys.top, sys.box, sys.params); // default flavor: Soa
    EXPECT_EQ(ff.activeSimdIsa(), SimdIsa::Scalar);
    EXPECT_EQ(ff.kernelSet().width, 1);
    EXPECT_STREQ(ff.kernelSet().name, "soa");
}

} // namespace
} // namespace cop::md
