#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "mdlib/observables.hpp"
#include "mdlib/trajectory.hpp"
#include "msm/pipeline.hpp"
#include "msm/transition_counts.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace cop::msm {
namespace {

// ---------------------------------------------------------------- helpers

std::vector<Vec3> gaussianConf(Rng& rng, std::size_t nAtoms, double scale) {
    std::vector<Vec3> x(nAtoms);
    for (auto& v : x) v = rng.gaussianVec3(scale);
    return x;
}

std::vector<Vec3> nearConf(Rng& rng, const std::vector<Vec3>& base,
                           double noise) {
    std::vector<Vec3> x = base;
    for (auto& v : x) v += rng.gaussianVec3(noise);
    return x;
}

/// Conformations drawn from `nBasins` well-separated shape prototypes with
/// small within-basin noise (RMSD is superposition-invariant, so the basins
/// differ in shape, not placement).
struct BasinSampler {
    std::vector<std::vector<Vec3>> prototypes;
    double noise;
    BasinSampler(Rng& rng, std::size_t nBasins, std::size_t nAtoms,
                 double noiseIn = 0.02)
        : noise(noiseIn) {
        for (std::size_t b = 0; b < nBasins; ++b)
            prototypes.push_back(gaussianConf(rng, nAtoms, 1.0));
    }
    std::vector<Vec3> draw(Rng& rng) const {
        return nearConf(rng, prototypes[rng.uniformInt(prototypes.size())],
                        noise);
    }
};

void appendFrames(md::Trajectory& traj, Rng& rng, const BasinSampler& basins,
                  std::size_t nFrames) {
    for (std::size_t f = 0; f < nFrames; ++f) {
        const auto step = std::int64_t(traj.numFrames());
        traj.append(step, double(step), basins.draw(rng));
    }
}

std::vector<DiscreteTrajectory> randomDiscrete(Rng& rng, std::size_t nTrajs,
                                               std::size_t len,
                                               std::size_t numStates) {
    std::vector<DiscreteTrajectory> trajs(nTrajs);
    for (auto& t : trajs) {
        // Vary the length so some trajectories are shorter than the lag.
        const std::size_t n = 1 + rng.uniformInt(len);
        t.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            t.push_back(int(rng.uniformInt(numStates)));
    }
    return trajs;
}

void expectSameModel(const MarkovStateModel& a, const MarkovStateModel& b) {
    EXPECT_EQ(a.activeStates(), b.activeStates());
    EXPECT_EQ(a.transitionMatrix().data(), b.transitionMatrix().data());
    EXPECT_EQ(a.countMatrix().data(), b.countMatrix().data());
}

void expectSameResult(const MsmPipelineResult& a, const MsmPipelineResult& b) {
    EXPECT_EQ(a.clustering.assignments, b.clustering.assignments);
    EXPECT_EQ(a.clustering.centers, b.clustering.centers);
    EXPECT_EQ(a.clustering.distances, b.clustering.distances);
    EXPECT_EQ(a.discrete, b.discrete);
    EXPECT_EQ(a.sparseCounts, b.sparseCounts);
    EXPECT_EQ(a.counts.data(), b.counts.data());
    EXPECT_EQ(a.populations, b.populations);
    expectSameModel(a.model, b.model);
}

// ----------------------------------------------------- sparse count tests

TEST(SparseCounts, MatchesDenseCounting) {
    Rng rng(11);
    const std::size_t numStates = 23; // some states never visited
    const auto trajs = randomDiscrete(rng, 7, 40, 17);
    for (std::size_t lag : {std::size_t(1), std::size_t(3), std::size_t(8)}) {
        const auto dense = countTransitions(trajs, numStates, lag);
        const auto sparse = countTransitionsSparse(trajs, numStates, lag);
        EXPECT_EQ(sparse.toDense().data(), dense.data()) << "lag " << lag;
        EXPECT_EQ(SparseCounts::fromDense(dense), sparse);
        // Rows for unvisited states stay empty.
        for (std::size_t i = 17; i < numStates; ++i)
            EXPECT_TRUE(sparse.row(i).empty());
    }
}

TEST(SparseCounts, AccessorsAndRowSums) {
    SparseCounts c(4);
    c.add(0, 2);
    c.add(0, 1, 2.0);
    c.add(0, 2); // merge into existing entry
    c.add(3, 0, 5.0);
    EXPECT_EQ(c.at(0, 2), 2.0);
    EXPECT_EQ(c.at(0, 1), 2.0);
    EXPECT_EQ(c.at(1, 1), 0.0);
    EXPECT_EQ(c.rowSum(0), 4.0);
    EXPECT_EQ(c.rowSum(1), 0.0);
    EXPECT_EQ(c.nonZeros(), 3u);
    // Rows keep ascending column order.
    EXPECT_EQ(c.row(0).front().first, 1);
    EXPECT_EQ(c.row(0).back().first, 2);
    c.resize(6);
    EXPECT_EQ(c.numStates(), 6u);
    EXPECT_EQ(c.at(0, 2), 2.0);
    EXPECT_THROW(c.resize(3), cop::InvalidArgument);
}

TEST(SparseCounts, SuffixUpdateEqualsRecount) {
    Rng rng(29);
    for (std::size_t lag : {std::size_t(1), std::size_t(4)}) {
        DiscreteTrajectory traj;
        SparseCounts incremental(9);
        std::size_t counted = 0;
        // Grow the trajectory in uneven chunks (including one empty growth)
        // and count only each new suffix.
        for (std::size_t chunk : {std::size_t(2), std::size_t(0),
                                  std::size_t(7), std::size_t(1),
                                  std::size_t(12)}) {
            for (std::size_t i = 0; i < chunk; ++i)
                traj.push_back(int(rng.uniformInt(9)));
            addSuffixTransitions(incremental, traj, lag, counted);
            counted = traj.size();
            const auto scratch = countTransitionsSparse({traj}, 9, lag);
            EXPECT_EQ(incremental, scratch) << "lag " << lag;
        }
    }
}

TEST(SparseCounts, SccAndRestrictionMatchDense) {
    Rng rng(37);
    const std::size_t numStates = 19;
    const auto trajs = randomDiscrete(rng, 5, 25, 12);
    const auto dense = countTransitions(trajs, numStates, 2);
    const auto sparse = countTransitionsSparse(trajs, numStates, 2);

    EXPECT_EQ(stronglyConnectedComponents(dense),
              stronglyConnectedComponents(sparse));
    const auto denseSet = largestConnectedSet(dense);
    const auto sparseSet = largestConnectedSet(sparse);
    EXPECT_EQ(denseSet, sparseSet);
    EXPECT_EQ(restrictToStates(dense, denseSet).data(),
              restrictToStates(sparse, sparseSet).data());
}

TEST(SparseCounts, MultiLagSweepMatchesPerLag) {
    Rng rng(43);
    const auto trajs = randomDiscrete(rng, 6, 30, 10);
    const std::vector<std::size_t> lags{1, 2, 5, 29};
    const auto multi = countTransitionsMultiLag(trajs, 10, lags);
    ASSERT_EQ(multi.size(), lags.size());
    for (std::size_t l = 0; l < lags.size(); ++l)
        EXPECT_EQ(multi[l], countTransitionsSparse(trajs, 10, lags[l]))
            << "lag " << lags[l];
}

TEST(SparseCounts, PooledCountingMatchesSerial) {
    Rng rng(53);
    const auto trajs = randomDiscrete(rng, 32, 60, 14);
    ThreadPool pool(4);
    const auto serial = countTransitionsSparse(trajs, 14, 3, nullptr);
    const auto pooled = countTransitionsSparse(trajs, 14, 3, &pool);
    EXPECT_EQ(serial, pooled);
}

// --------------------------------------------------------- pruning tests

ConformationSet clusteredSet(Rng& rng, std::size_t n, std::size_t nBasins) {
    const BasinSampler basins(rng, nBasins, 8);
    ConformationSet data;
    for (std::size_t i = 0; i < n; ++i) data.add(basins.draw(rng));
    return data;
}

TEST(Pruning, KCentersPrunedMatchesUnpruned) {
    Rng rng(61);
    const auto data = clusteredSet(rng, 240, 6);
    KCentersParams on;
    on.numClusters = 12;
    on.seed = 5;
    on.prune = true;
    KCentersParams off = on;
    off.prune = false;

    const auto a = kCenters(data, on);
    const auto b = kCenters(data, off);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_EQ(a.centers, b.centers);
    EXPECT_EQ(a.distances, b.distances);
    // Tight basins far apart: the bound must actually fire.
    EXPECT_GT(a.rmsd.pruned, 0u);
    EXPECT_LT(a.rmsd.calls, b.rmsd.calls);
    EXPECT_EQ(b.rmsd.pruned, 0u);
}

TEST(Pruning, AdversarialEquidistantIdentical) {
    // Near-equidistant set: every conformation is an independent Gaussian
    // shape, so center-center and point-center distances are all similar
    // and the triangle bound almost never proves anything — the worst case
    // for pruning. Results must still be identical.
    Rng rng(67);
    ConformationSet data;
    for (std::size_t i = 0; i < 120; ++i) data.add(gaussianConf(rng, 8, 1.0));
    KCentersParams on;
    on.numClusters = 10;
    on.seed = 3;
    on.prune = true;
    KCentersParams off = on;
    off.prune = false;
    const auto a = kCenters(data, on);
    const auto b = kCenters(data, off);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_EQ(a.centers, b.centers);
    EXPECT_EQ(a.distances, b.distances);

    // Same invariance for range assignment against those centers.
    const auto cc = centerDistanceMatrix(data, a.centers);
    const auto pruned = assignRangeToCenters(data, 0, data.size(), a.centers,
                                             cc);
    const auto plain = assignRangeToCenters(data, 0, data.size(), a.centers);
    EXPECT_EQ(pruned.assignments, plain.assignments);
    EXPECT_EQ(pruned.distances, plain.distances);
}

TEST(Pruning, AssignRangeMatchesNaive) {
    Rng rng(71);
    const auto data = clusteredSet(rng, 150, 5);
    KCentersParams kc;
    kc.numClusters = 10;
    kc.seed = 9;
    const auto clustering = kCenters(data, kc);
    const auto& centers = clustering.centers;
    const std::size_t k = centers.size();

    RmsdCounters ccWork;
    const auto cc = centerDistanceMatrix(data, centers, nullptr, &ccWork);
    EXPECT_EQ(ccWork.calls, k * (k - 1) / 2);

    const std::size_t first = 30, last = 120;
    const auto pruned = assignRangeToCenters(data, first, last, centers, cc);
    const auto plain = assignRangeToCenters(data, first, last, centers);

    // Naive reference scan over the raw metric.
    std::vector<int> expectAssign;
    std::vector<double> expectDist;
    for (std::size_t i = first; i < last; ++i) {
        double best = std::numeric_limits<double>::max();
        int bestC = 0;
        for (std::size_t c = 0; c < k; ++c) {
            const double d = md::rmsd(data[i], data[centers[c]]);
            if (d < best) {
                best = d;
                bestC = int(c);
            }
        }
        expectAssign.push_back(bestC);
        expectDist.push_back(best);
    }
    EXPECT_EQ(plain.assignments, expectAssign);
    EXPECT_EQ(plain.distances, expectDist);
    EXPECT_EQ(pruned.assignments, expectAssign);
    EXPECT_EQ(pruned.distances, expectDist);

    // Every candidate is either evaluated or provably skipped.
    const std::size_t n = last - first;
    EXPECT_EQ(pruned.rmsd.calls + pruned.rmsd.pruned, n * k);
    EXPECT_GT(pruned.rmsd.pruned, 0u);
    EXPECT_EQ(plain.rmsd.calls, n * k);
    EXPECT_EQ(plain.rmsd.pruned, 0u);

    // And the pooled path is bit-identical with chunk-invariant counters.
    ThreadPool pool(3);
    const auto pooled =
        assignRangeToCenters(data, first, last, centers, cc, &pool);
    EXPECT_EQ(pooled.assignments, expectAssign);
    EXPECT_EQ(pooled.distances, expectDist);
    EXPECT_EQ(pooled.rmsd.calls, pruned.rmsd.calls);
    EXPECT_EQ(pooled.rmsd.pruned, pruned.rmsd.pruned);
}

TEST(Pruning, KCentersPooledMatchesSerial) {
    Rng rng(73);
    const auto data = clusteredSet(rng, 200, 4);
    KCentersParams kc;
    kc.numClusters = 8;
    kc.seed = 1;
    ThreadPool pool(4);
    const auto serial = kCenters(data, kc);
    const auto pooled = kCenters(data, kc, &pool);
    EXPECT_EQ(serial.assignments, pooled.assignments);
    EXPECT_EQ(serial.centers, pooled.centers);
    EXPECT_EQ(serial.distances, pooled.distances);
    EXPECT_EQ(serial.rmsd.calls, pooled.rmsd.calls);
    EXPECT_EQ(serial.rmsd.pruned, pooled.rmsd.pruned);
}

// ----------------------------------------------------- incremental builds

MsmPipelineParams smallPipeline() {
    MsmPipelineParams p;
    p.numClusters = 8;
    p.snapshotStride = 2;
    p.lag = 2;
    p.medoidSweeps = 1;
    p.seed = 17;
    return p;
}

TEST(IncrementalMsm, AlwaysFullMatchesBuildMsm) {
    Rng rng(81);
    const BasinSampler basins(rng, 5, 8);
    const auto pp = smallPipeline();

    IncrementalMsmParams ip;
    ip.pipeline = pp;
    ip.rebuildRadiusFactor = 0.0; // always re-cluster from scratch

    IncrementalMsmBuilder builder(ip);
    std::vector<md::Trajectory> trajs(3);
    for (int gen = 1; gen <= 4; ++gen) {
        // Grow existing trajectories and, from generation 2 on, spawn a
        // new one — so the arrival order differs from trajectory-major
        // order and the rebuild has to reorder.
        if (gen >= 2) trajs.emplace_back();
        for (auto& traj : trajs) appendFrames(traj, rng, basins, 11);

        std::vector<std::pair<int, const md::Trajectory*>> refs;
        for (std::size_t t = 0; t < trajs.size(); ++t)
            refs.emplace_back(int(t), &trajs[t]);
        const auto incremental = builder.update(refs);
        const auto scratch = buildMsm(trajs, pp);

        EXPECT_TRUE(incremental.stats.fullRebuild) << "gen " << gen;
        expectSameResult(incremental, scratch);
    }
}

TEST(IncrementalMsm, FrozenMatchesReferenceReassignment) {
    Rng rng(87);
    const BasinSampler basins(rng, 4, 8);
    IncrementalMsmParams ip;
    ip.pipeline = smallPipeline();
    ip.rebuildRadiusFactor = 1e9; // never rebuild after the first

    IncrementalMsmBuilder builder(ip);
    std::vector<md::Trajectory> trajs(3);
    for (auto& traj : trajs) appendFrames(traj, rng, basins, 20);
    std::vector<std::pair<int, const md::Trajectory*>> refs;
    for (std::size_t t = 0; t < trajs.size(); ++t)
        refs.emplace_back(int(t), &trajs[t]);
    const auto first = builder.update(refs);
    ASSERT_TRUE(first.stats.fullRebuild);

    for (auto& traj : trajs) appendFrames(traj, rng, basins, 10);
    const auto second = builder.update(refs);
    EXPECT_FALSE(second.stats.fullRebuild);
    EXPECT_EQ(second.clustering.centers, first.clustering.centers);

    // New snapshots must carry the nearest frozen center, computed here
    // independently with the raw metric.
    const std::size_t oldCount = first.clustering.assignments.size();
    ASSERT_GT(second.clustering.assignments.size(), oldCount);
    std::size_t flat = 0;
    std::size_t checked = 0;
    for (std::size_t t = 0; t < trajs.size(); ++t) {
        const auto& dt = second.discrete[t];
        for (std::size_t s = 0; s < dt.size(); ++s, ++flat) {
            if (s < first.discrete[t].size()) {
                EXPECT_EQ(dt[s], first.discrete[t][s]);
                continue;
            }
            const auto& x =
                trajs[t].frame(s * ip.pipeline.snapshotStride).positions;
            double best = std::numeric_limits<double>::max();
            int bestC = 0;
            for (std::size_t c = 0; c < second.centers.size(); ++c) {
                const double d = md::rmsd(second.centers[c], x);
                if (d < best) {
                    best = d;
                    bestC = int(c);
                }
            }
            EXPECT_EQ(dt[s], bestC);
            ++checked;
        }
    }
    EXPECT_GT(checked, 0u);

    // Counts over the stitched discrete trajectories equal a recount.
    EXPECT_EQ(second.sparseCounts,
              countTransitionsSparse(second.discrete,
                                     second.clustering.numClusters(),
                                     ip.pipeline.lag));
}

TEST(IncrementalMsm, RadiusDegradationTriggersRebuild) {
    Rng rng(91);
    const BasinSampler homeBasins(rng, 3, 8, 0.01);
    IncrementalMsmParams ip;
    ip.pipeline = smallPipeline();
    ip.pipeline.numClusters = 6;
    ip.rebuildRadiusFactor = 1.5;

    IncrementalMsmBuilder builder(ip);
    std::vector<md::Trajectory> trajs(2);
    for (auto& traj : trajs) appendFrames(traj, rng, homeBasins, 30);
    std::vector<std::pair<int, const md::Trajectory*>> refs;
    for (std::size_t t = 0; t < trajs.size(); ++t)
        refs.emplace_back(int(t), &trajs[t]);
    const auto first = builder.update(refs);
    ASSERT_TRUE(first.stats.fullRebuild);
    ASSERT_GT(first.stats.radiusAtFull, 0.0);

    // Mild growth inside the same basins: stays incremental.
    for (auto& traj : trajs) appendFrames(traj, rng, homeBasins, 6);
    const auto second = builder.update(refs);
    EXPECT_FALSE(second.stats.fullRebuild);

    // A structurally new region far outside the frozen centers' coverage
    // forces the fallback to a full re-cluster.
    const BasinSampler farBasins(rng, 2, 8, 0.01);
    for (auto& traj : trajs) appendFrames(traj, rng, farBasins, 10);
    const auto third = builder.update(refs);
    EXPECT_TRUE(third.stats.fullRebuild);
    // The rebuilt clustering absorbs the new region into its radius.
    EXPECT_EQ(third.stats.clusterRadius, third.stats.radiusAtFull);
}

TEST(IncrementalMsm, ClusterCountChangeTriggersRebuild) {
    Rng rng(97);
    const BasinSampler basins(rng, 4, 8);
    IncrementalMsmParams ip;
    ip.pipeline = smallPipeline();
    ip.rebuildRadiusFactor = 1e9;

    IncrementalMsmBuilder builder(ip);
    md::Trajectory traj;
    appendFrames(traj, rng, basins, 40);
    const std::vector<std::pair<int, const md::Trajectory*>> refs{{0, &traj}};
    (void)builder.update(refs);

    appendFrames(traj, rng, basins, 6);
    const auto incr = builder.update(refs);
    EXPECT_FALSE(incr.stats.fullRebuild);
    EXPECT_EQ(incr.clustering.numClusters(), 8u);

    builder.setNumClusters(12);
    appendFrames(traj, rng, basins, 6);
    const auto rebuilt = builder.update(refs);
    EXPECT_TRUE(rebuilt.stats.fullRebuild);
    EXPECT_EQ(rebuilt.clustering.numClusters(), 12u);
}

TEST(IncrementalMsm, PooledMatchesSerial) {
    Rng rng(101);
    const BasinSampler basins(rng, 5, 8);
    IncrementalMsmParams ip;
    ip.pipeline = smallPipeline();
    ip.rebuildRadiusFactor = 2.0;

    ThreadPool pool(4);
    IncrementalMsmBuilder serialBuilder(ip);
    IncrementalMsmBuilder pooledBuilder(ip);
    std::vector<md::Trajectory> trajs(4);
    for (int gen = 1; gen <= 3; ++gen) {
        for (auto& traj : trajs) appendFrames(traj, rng, basins, 15);
        std::vector<std::pair<int, const md::Trajectory*>> refs;
        for (std::size_t t = 0; t < trajs.size(); ++t)
            refs.emplace_back(int(t), &trajs[t]);
        const auto a = serialBuilder.update(refs, nullptr);
        const auto b = pooledBuilder.update(refs, &pool);
        expectSameResult(a, b);
        EXPECT_EQ(a.stats.fullRebuild, b.stats.fullRebuild);
        EXPECT_EQ(a.stats.rmsd.calls, b.stats.rmsd.calls);
        EXPECT_EQ(a.stats.rmsd.pruned, b.stats.rmsd.pruned);
    }
}

TEST(MsmStats, CountersConsistent) {
    Rng rng(103);
    const BasinSampler basins(rng, 4, 8);
    IncrementalMsmParams ip;
    ip.pipeline = smallPipeline();
    ip.rebuildRadiusFactor = 1e9;

    IncrementalMsmBuilder builder(ip);
    std::vector<md::Trajectory> trajs(3);
    for (auto& traj : trajs) appendFrames(traj, rng, basins, 20);
    std::vector<std::pair<int, const md::Trajectory*>> refs;
    for (std::size_t t = 0; t < trajs.size(); ++t)
        refs.emplace_back(int(t), &trajs[t]);
    const auto first = builder.update(refs);
    EXPECT_EQ(first.stats.generation, 1u);
    EXPECT_TRUE(first.stats.fullRebuild);
    EXPECT_EQ(first.stats.snapshotsNew, first.stats.snapshotsTotal);
    EXPECT_GT(first.stats.rmsd.calls, 0u);

    for (auto& traj : trajs) appendFrames(traj, rng, basins, 8);
    const auto second = builder.update(refs);
    EXPECT_EQ(second.stats.generation, 2u);
    EXPECT_FALSE(second.stats.fullRebuild);
    EXPECT_GT(second.stats.snapshotsNew, 0u);
    EXPECT_LT(second.stats.snapshotsNew, second.stats.snapshotsTotal);
    EXPECT_EQ(second.stats.snapshotsTotal,
              first.stats.snapshotsTotal + second.stats.snapshotsNew);
    // An incremental generation does far less metric work than the full
    // build over the same (larger!) dataset.
    EXPECT_LT(second.stats.rmsd.calls, first.stats.rmsd.calls);
    const double frac = second.stats.rmsd.pruneFraction();
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
    EXPECT_GE(second.stats.totalSeconds(), 0.0);
    ASSERT_EQ(builder.history().size(), 2u);
    EXPECT_FALSE(builder.history()[1].summary().empty());
    // Cumulative counters in the clustering result cover both generations.
    EXPECT_EQ(second.clustering.rmsd.calls,
              first.stats.rmsd.calls + second.stats.rmsd.calls);
}

} // namespace
} // namespace cop::msm
