// Server/worker orchestration: matching, relaying, heartbeats, failure
// recovery with checkpoint handoff, client monitoring.

#include <gtest/gtest.h>

#include "core/backends.hpp"
#include "core/copernicus.hpp"

namespace cop::core {
namespace {

/// Controller that submits `n` fixed commands and records completions.
class FixedController : public Controller {
public:
    FixedController(int n, std::string exe = "echo", int cores = 1)
        : n_(n), exe_(std::move(exe)), cores_(cores) {}

    void onProjectStart(ProjectContext& ctx) override {
        for (int i = 0; i < n_; ++i) {
            CommandSpec spec;
            spec.executable = exe_;
            spec.steps = 10;
            spec.preferredCores = cores_;
            spec.trajectoryId = i;
            ctx.submitCommand(std::move(spec));
        }
    }
    void onCommandFinished(ProjectContext&,
                           const CommandResult& r) override {
        results.push_back(r);
    }
    bool isDone(const ProjectContext& ctx) const override {
        return int(results.size()) == n_ && ctx.outstandingCommands() == 0;
    }

    std::vector<CommandResult> results;

private:
    int n_;
    std::string exe_;
    int cores_;
};

ExecutableRegistry echoRegistry(double duration = 10.0) {
    ExecutableRegistry reg;
    reg.add("echo", [duration](const CommandSpec& cmd, int) {
        Execution e;
        e.result.commandId = cmd.id;
        e.result.projectId = cmd.projectId;
        e.result.trajectoryId = cmd.trajectoryId;
        e.result.generation = cmd.generation;
        e.result.success = true;
        e.result.output = cmd.input.bytes(); // echo input back
        e.simSeconds = duration;
        return e;
    });
    return reg;
}

TEST(Framework, SingleServerSingleWorkerCompletesProject) {
    Deployment dep(1);
    auto& server = dep.addServer("s0");
    dep.addWorker("w0", server, WorkerConfig{}, echoRegistry(),
                  links::intraCluster());
    auto ctrl = std::make_unique<FixedController>(5);
    auto* c = ctrl.get();
    const auto pid = server.createProject("test", std::move(ctrl));
    EXPECT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(c->results.size(), 5u);
    EXPECT_TRUE(server.projectDone(pid));
    EXPECT_EQ(server.stats().commandsCompleted, 5u);
}

TEST(Framework, WorkloadFillsWorkerCores) {
    // A 4-core worker should receive 4 one-core commands at once.
    Deployment dep(2);
    auto& server = dep.addServer("s0");
    WorkerConfig wc;
    wc.cores = 4;
    auto& worker = dep.addWorker("w0", server, wc, echoRegistry(100.0),
                                 links::intraCluster());
    auto ctrl = std::make_unique<FixedController>(4);
    server.createProject("test", std::move(ctrl));
    // After the initial exchange, all 4 commands run concurrently.
    dep.loop().runUntil(50.0);
    EXPECT_EQ(worker.runningCommands(), 4u);
    EXPECT_TRUE(dep.runUntilDone(1e6));
}

TEST(Framework, RequestRelayedAcrossServers) {
    // Project on s0; worker attached to s1. The request relays s1 -> s0
    // ("first server with available commands").
    Deployment dep(3);
    auto& s0 = dep.addServer("s0");
    auto& s1 = dep.addServer("s1");
    dep.connectServers(s0, s1, links::dataCenter());
    dep.addWorker("w0", s1, WorkerConfig{}, echoRegistry(),
                  links::intraCluster());
    auto ctrl = std::make_unique<FixedController>(3);
    auto* c = ctrl.get();
    s0.createProject("remote", std::move(ctrl));
    EXPECT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(c->results.size(), 3u);
    EXPECT_GE(s1.stats().requestsForwarded, 1u);
}

TEST(Framework, ChainOfThreeServers) {
    // Paper Fig. 1 style: project at one end, workers at the other,
    // traffic crosses a relay in between.
    Deployment dep(4);
    auto& s0 = dep.addServer("s0");
    auto& s1 = dep.addServer("s1");
    auto& s2 = dep.addServer("s2");
    dep.connectServers(s0, s1, links::dataCenter());
    dep.connectServers(s1, s2, links::wideArea());
    dep.addWorker("w0", s2, WorkerConfig{}, echoRegistry(),
                  links::intraCluster());
    auto ctrl = std::make_unique<FixedController>(2);
    auto* c = ctrl.get();
    s0.createProject("far", std::move(ctrl));
    EXPECT_TRUE(dep.runUntilDone(1e7));
    EXPECT_EQ(c->results.size(), 2u);
    // Output traversed the wide-area link.
    EXPECT_GT(dep.network().linkStats(s1.id(), s2.id()).messages, 0u);
}

TEST(Framework, MultipleWorkersShareTheQueue) {
    Deployment dep(5);
    auto& server = dep.addServer("s0");
    for (int i = 0; i < 4; ++i)
        dep.addWorker("w" + std::to_string(i), server, WorkerConfig{},
                      echoRegistry(100.0), links::intraCluster());
    auto ctrl = std::make_unique<FixedController>(12);
    auto* c = ctrl.get();
    server.createProject("shared", std::move(ctrl));
    EXPECT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(c->results.size(), 12u);
    // Work spread across all workers.
    for (const auto& w : dep.workers())
        EXPECT_GE(w->stats().commandsCompleted, 1u);
    // With 4 concurrent workers the makespan is ~3 rounds of 100 s.
    EXPECT_LT(dep.loop().now(), 500.0);
}

TEST(Framework, WorkerFailureRequeuesAndRecovers) {
    Deployment dep(6);
    ServerConfig sc;
    sc.heartbeatInterval = 10.0;
    auto& server = dep.addServer("s0", sc);
    WorkerConfig wc;
    wc.heartbeatInterval = 10.0;
    auto& doomed = dep.addWorker("doomed", server, wc,
                                 echoRegistry(1000.0), links::intraCluster());
    auto ctrl = std::make_unique<FixedController>(2);
    auto* c = ctrl.get();
    server.createProject("resilient", std::move(ctrl));

    doomed.failAfter(50.0); // dies mid-run
    // A rescuer appears later.
    dep.loop().runUntil(100.0);
    dep.addWorker("rescuer", server, wc, echoRegistry(1000.0),
                  links::intraCluster());
    EXPECT_TRUE(dep.runUntilDone(1e7));
    EXPECT_EQ(c->results.size(), 2u);
    EXPECT_GE(server.stats().workersFailed, 1u);
    EXPECT_GE(server.stats().commandsRequeued, 1u);
}

TEST(Framework, ClientMonitorsProjectStatus) {
    Deployment dep(7);
    auto& server = dep.addServer("s0");
    dep.addWorker("w0", server, WorkerConfig{}, echoRegistry(),
                  links::intraCluster());
    auto& client =
        dep.addClient("cli", server, links::wideArea());
    const auto pid = server.createProject("watched",
                                          std::make_unique<FixedController>(1));
    client.requestStatus(server.id(), pid);
    dep.runUntilDone(1e6);
    EXPECT_GE(client.responsesReceived(), 1u);
    EXPECT_NE(client.lastStatus().find("watched"), std::string::npos);

    client.requestStatus(server.id(), 999);
    dep.loop().run();
    EXPECT_NE(client.lastStatus().find("unknown project"),
              std::string::npos);
}

TEST(Framework, FailedCommandReachesControllerHook) {
    Deployment dep(8);
    auto& server = dep.addServer("s0");
    ExecutableRegistry reg;
    reg.add("echo", [](const CommandSpec&, int) -> Execution {
        throw Error("synthetic failure");
    });
    dep.addWorker("w0", server, WorkerConfig{}, std::move(reg),
                  links::intraCluster());

    class FailAware : public FixedController {
    public:
        using FixedController::FixedController;
        void onCommandFailed(ProjectContext&, const CommandSpec&) override {
            ++failures;
        }
        bool isDone(const ProjectContext&) const override {
            return failures >= 1;
        }
        int failures = 0;
    };
    auto ctrl = std::make_unique<FailAware>(1);
    auto* c = ctrl.get();
    server.createProject("failing", std::move(ctrl));
    EXPECT_TRUE(dep.runUntilDone(1e6));
    EXPECT_EQ(c->failures, 1);
    EXPECT_EQ(server.stats().commandsFailed, 1u);
}

TEST(Framework, ParkedRequestServedWhenWorkAppears) {
    Deployment dep(9);
    auto& server = dep.addServer("s0");
    // Project exists (not yet done) but has no commands.
    class LazyController : public Controller {
    public:
        void onProjectStart(ProjectContext&) override {}
        void onCommandFinished(ProjectContext&,
                               const CommandResult&) override {
            finished = true;
        }
        bool isDone(const ProjectContext&) const override {
            return finished;
        }
        bool finished = false;
    };
    auto lazy = std::make_unique<LazyController>();
    server.createProject("lazy", std::move(lazy));
    auto& worker = dep.addWorker("w0", server, WorkerConfig{},
                                 echoRegistry(), links::intraCluster());
    dep.loop().run(); // request parks (no NoWorkAvailable ping-pong)
    EXPECT_EQ(worker.stats().workloadRequestsSent, 1u);

    // Inject work through a second project; the parked request fires.
    auto ctrl = std::make_unique<FixedController>(1);
    auto* c = ctrl.get();
    server.createProject("real", std::move(ctrl));
    EXPECT_TRUE(dep.runUntilDone(1e6) || c->results.size() == 1);
    EXPECT_EQ(c->results.size(), 1u);
}

TEST(Framework, EchoOutputPreservesInputBytes) {
    Deployment dep(10);
    auto& server = dep.addServer("s0");
    dep.addWorker("w0", server, WorkerConfig{}, echoRegistry(),
                  links::intraCluster());

    class PayloadController : public FixedController {
    public:
        PayloadController() : FixedController(0) {}
        void onProjectStart(ProjectContext& ctx) override {
            CommandSpec spec;
            spec.executable = "echo";
            spec.steps = 1;
            spec.input = {1, 2, 3, 4};
            ctx.submitCommand(std::move(spec));
        }
        bool isDone(const ProjectContext&) const override {
            return !results.empty();
        }
    };
    auto ctrl = std::make_unique<PayloadController>();
    auto* c = ctrl.get();
    server.createProject("payload", std::move(ctrl));
    EXPECT_TRUE(dep.runUntilDone(1e6));
    ASSERT_EQ(c->results.size(), 1u);
    EXPECT_EQ(c->results[0].output,
              (std::vector<std::uint8_t>{1, 2, 3, 4}));
}


TEST(Framework, TwoProjectsShareWorkerPoolByExecutable) {
    // Fig. 1 shows one deployment hosting both MSM and free-energy
    // projects; workers run whichever commands match their installed
    // executables.
    Deployment dep(11);
    auto& server = dep.addServer("s0");
    // Worker A only knows "echo"; worker B only knows "other".
    dep.addWorker("wa", server, WorkerConfig{}, echoRegistry(10.0),
                  links::intraCluster());
    {
        ExecutableRegistry reg;
        reg.add("other", [](const CommandSpec& cmd, int) {
            Execution e;
            e.result.commandId = cmd.id;
            e.result.projectId = cmd.projectId;
            e.result.trajectoryId = cmd.trajectoryId;
            e.result.success = true;
            e.simSeconds = 10.0;
            return e;
        });
        dep.addWorker("wb", server, WorkerConfig{}, std::move(reg),
                      links::intraCluster());
    }
    auto echoCtrl = std::make_unique<FixedController>(3, "echo");
    auto otherCtrl = std::make_unique<FixedController>(3, "other");
    auto* ec = echoCtrl.get();
    auto* oc = otherCtrl.get();
    server.createProject("p_echo", std::move(echoCtrl));
    server.createProject("p_other", std::move(otherCtrl));
    EXPECT_TRUE(dep.runUntilDone(1e7));
    EXPECT_EQ(ec->results.size(), 3u);
    EXPECT_EQ(oc->results.size(), 3u);
    // Each worker ran only its own executable's commands.
    EXPECT_EQ(dep.workers()[0]->stats().commandsCompleted, 3u);
    EXPECT_EQ(dep.workers()[1]->stats().commandsCompleted, 3u);
}

TEST(Framework, ClientControlCommandReachesController) {
    Deployment dep(12);
    auto& server = dep.addServer("s0");
    class Tunable : public Controller {
    public:
        void onProjectStart(ProjectContext&) override {}
        void onCommandFinished(ProjectContext&,
                               const CommandResult&) override {}
        bool isDone(const ProjectContext&) const override { return done; }
        std::string handleClientCommand(ProjectContext& ctx,
                                        const std::string& cmd) override {
            if (cmd == "stop") {
                done = true;
                return "stopping";
            }
            return Controller::handleClientCommand(ctx, cmd);
        }
        bool done = false;
    };
    auto ctrl = std::make_unique<Tunable>();
    auto* t = ctrl.get();
    const auto pid = server.createProject("tunable", std::move(ctrl));
    auto& client = dep.addClient("cli", server, links::dataCenter());
    client.sendCommand(server.id(), pid, "stop");
    dep.loop().run(64);
    EXPECT_TRUE(t->done);
    EXPECT_EQ(client.lastStatus(), "stopping");
}


TEST(Framework, HeartbeatsStayAtClosestServer) {
    // Paper §2.3: "Heartbeat signals do not get forwarded to other
    // servers." The project server must see zero heartbeats from a worker
    // attached to a relay.
    Deployment dep(13);
    ServerConfig sc;
    sc.heartbeatInterval = 5.0;
    auto& project = dep.addServer("project", sc);
    auto& relay = dep.addServer("relay", sc);
    dep.connectServers(project, relay, links::dataCenter());
    WorkerConfig wc;
    wc.heartbeatInterval = 5.0;
    dep.addWorker("w0", relay, wc, echoRegistry(200.0),
                  links::intraCluster());
    auto ctrl = std::make_unique<FixedController>(1);
    project.createProject("remote", std::move(ctrl));
    dep.runUntilDone(1e7);
    EXPECT_GE(relay.stats().heartbeatsReceived, 1u);
    EXPECT_EQ(project.stats().heartbeatsReceived, 0u);
}

TEST(Framework, SharedFilesystemCutsWideAreaTraffic) {
    // Paper §2: shared filesystems reduce communication. Same project,
    // same work; the worker-to-server link carries orders of magnitude
    // fewer bytes when marked shared.
    auto run = [](bool shared) {
        Deployment dep(14);
        auto& server = dep.addServer("s0");
        auto props = links::intraCluster();
        props.sharedFilesystem = shared;
        // Commands with a large input payload.
        class BigPayload : public FixedController {
        public:
            BigPayload() : FixedController(0) {}
            void onProjectStart(ProjectContext& ctx) override {
                for (int i = 0; i < 3; ++i) {
                    CommandSpec spec;
                    spec.executable = "echo";
                    spec.steps = 1;
                    spec.input = std::vector<std::uint8_t>(500'000, 1);
                    ctx.submitCommand(std::move(spec));
                }
            }
            bool isDone(const ProjectContext& ctx) const override {
                return results.size() == 3 &&
                       ctx.outstandingCommands() == 0;
            }
        };
        dep.addWorker("w0", server, WorkerConfig{}, echoRegistry(),
                      props);
        server.createProject("big", std::make_unique<BigPayload>());
        dep.runUntilDone(1e7);
        return dep.network().totalStats().bytes;
    };
    const auto normal = run(false);
    const auto shared = run(true);
    EXPECT_GT(normal, 100u * shared);
}

TEST(Framework, MixedCoreWorkloadPacksWorker) {
    // A 4-core worker should receive a 3-core and a 1-core command
    // together (paper: "maximally utilizes the available resources").
    Deployment dep(15);
    auto& server = dep.addServer("s0");
    WorkerConfig wc;
    wc.cores = 4;
    auto& worker = dep.addWorker("w0", server, wc, echoRegistry(500.0),
                                 links::intraCluster());
    class Mixed : public FixedController {
    public:
        Mixed() : FixedController(0) {}
        void onProjectStart(ProjectContext& ctx) override {
            CommandSpec big;
            big.executable = "echo";
            big.steps = 1;
            big.preferredCores = 3;
            ctx.submitCommand(std::move(big));
            CommandSpec small;
            small.executable = "echo";
            small.steps = 1;
            small.preferredCores = 1;
            ctx.submitCommand(std::move(small));
        }
        bool isDone(const ProjectContext& ctx) const override {
            return results.size() == 2 && ctx.outstandingCommands() == 0;
        }
    };
    server.createProject("mixed", std::make_unique<Mixed>());
    dep.loop().runUntil(100.0);
    EXPECT_EQ(worker.runningCommands(), 2u);
    EXPECT_TRUE(dep.runUntilDone(1e7));
}

} // namespace
} // namespace cop::core
