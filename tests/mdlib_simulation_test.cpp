#include "mdlib/simulation.hpp"

#include <gtest/gtest.h>

#include "mdlib/observables.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/pdb.hpp"
#include "mdlib/units.hpp"

#include <filesystem>

namespace cop::md {
namespace {

Simulation makeSim(std::uint64_t seed = 1, std::int64_t sampleInterval = 10) {
    const auto model = hairpinGoModel();
    SimulationConfig cfg;
    cfg.integrator.kind = IntegratorKind::LangevinBAOAB;
    cfg.integrator.temperature = 0.5;
    cfg.integrator.friction = 0.5;
    cfg.sampleInterval = sampleInterval;
    cfg.seed = seed;
    auto sim = Simulation::forGoModel(model, model.native, cfg);
    sim.initializeVelocities();
    return sim;
}

TEST(Simulation, RecordsFramesAtSampleInterval) {
    auto sim = makeSim(1, 10);
    sim.run(100);
    // Initial frame + one every 10 steps.
    EXPECT_EQ(sim.trajectory().numFrames(), 11u);
    EXPECT_EQ(sim.trajectory().frame(0).step, 0);
    EXPECT_EQ(sim.trajectory().frame(10).step, 100);
}

TEST(Simulation, RunsAcrossMultipleCalls) {
    auto sim = makeSim(2, 25);
    sim.run(50);
    sim.run(50);
    EXPECT_EQ(sim.state().step, 100);
    EXPECT_EQ(sim.trajectory().numFrames(), 5u); // 0,25,50,75,100
}

TEST(Simulation, CheckpointRestoreContinuesBitExact) {
    // The §2.3 guarantee: a command continued from a checkpoint on another
    // worker produces exactly the same trajectory.
    auto simA = makeSim(3, 10);
    simA.run(40);
    const auto blob = simA.checkpoint();
    simA.run(60);

    auto simB = Simulation::restore(blob);
    simB.run(60);

    ASSERT_EQ(simA.state().numParticles(), simB.state().numParticles());
    EXPECT_EQ(simA.state().step, simB.state().step);
    for (std::size_t i = 0; i < simA.state().numParticles(); ++i) {
        EXPECT_EQ(simA.state().positions[i], simB.state().positions[i]);
        EXPECT_EQ(simA.state().velocities[i], simB.state().velocities[i]);
    }
    EXPECT_EQ(simA.trajectory().numFrames(), simB.trajectory().numFrames());
}

TEST(Simulation, CheckpointPreservesConfigAndTopology) {
    auto sim = makeSim(4, 7);
    sim.run(21);
    const auto blob = sim.checkpoint();
    auto restored = Simulation::restore(blob);
    EXPECT_EQ(restored.topology().numParticles(),
              sim.topology().numParticles());
    EXPECT_EQ(restored.state().step, 21);
    EXPECT_NEAR(restored.state().time, sim.state().time, 0.0);
}

TEST(Simulation, TakeTrajectoryLeavesEmpty) {
    auto sim = makeSim(5, 10);
    sim.run(30);
    auto traj = sim.takeTrajectory();
    EXPECT_EQ(traj.numFrames(), 4u);
    EXPECT_TRUE(sim.trajectory().empty());
    sim.run(10);
    // A fresh initial frame is recorded when the trajectory restarts.
    EXPECT_EQ(sim.trajectory().numFrames(), 2u);
}

TEST(Simulation, MinimizeReducesEnergy) {
    const auto model = hairpinGoModel();
    SimulationConfig cfg;
    cfg.seed = 6;
    cop::Rng rng(9);
    auto start = model.native;
    for (auto& p : start) p += rng.gaussianVec3(0.15);
    auto sim = Simulation::forGoModel(model, start, cfg);
    std::vector<Vec3> forces;
    ForceField ff(model.topology, Box::open(), model.forceFieldParams());
    const double e0 = ff.compute(start, forces).potential();
    const double e1 = sim.minimize(300);
    EXPECT_LT(e1, e0);
    // Should relax most of the way back to the native basin.
    EXPECT_LT(toAngstrom(rmsd(model.native, sim.state().positions)), 2.0);
}

TEST(Simulation, RejectsBadConfig) {
    const auto model = hairpinGoModel();
    SimulationConfig cfg;
    cfg.sampleInterval = 0;
    EXPECT_THROW(Simulation::forGoModel(model, model.native, cfg),
                 cop::InvalidArgument);
    SimulationConfig ok;
    EXPECT_THROW(
        Simulation(model.topology, Box::open(), model.forceFieldParams(),
                   ok, std::vector<Vec3>(3)),
        cop::InvalidArgument);
}

TEST(Trajectory, SubsampleAndExtend) {
    Trajectory t;
    for (int i = 0; i < 10; ++i)
        t.append(i, i * 0.1, std::vector<Vec3>{{double(i), 0, 0}});
    const auto sub = t.subsampled(3);
    EXPECT_EQ(sub.numFrames(), 4u); // 0,3,6,9
    EXPECT_EQ(sub.frame(1).step, 3);

    Trajectory more;
    more.append(10, 1.0, std::vector<Vec3>{{10, 0, 0}});
    t.extend(more);
    EXPECT_EQ(t.numFrames(), 11u);
    EXPECT_EQ(t.back().step, 10);
}

TEST(Trajectory, SerializationRoundTrip) {
    Trajectory t;
    t.append(5, 0.5, std::vector<Vec3>{{1, 2, 3}, {4, 5, 6}});
    cop::BinaryWriter w;
    t.serialize(w);
    cop::BinaryReader r(w.buffer());
    const auto t2 = Trajectory::deserialize(r);
    ASSERT_EQ(t2.numFrames(), 1u);
    EXPECT_EQ(t2.frame(0).step, 5);
    EXPECT_EQ(t2.frame(0).positions[1], Vec3(4, 5, 6));
}

TEST(Trajectory, RejectsInconsistentFrames) {
    Trajectory t;
    t.append(0, 0.0, std::vector<Vec3>{{1, 2, 3}});
    EXPECT_THROW(t.append(1, 0.1, std::vector<Vec3>{{1, 2, 3}, {4, 5, 6}}),
                 cop::InvalidArgument);
    EXPECT_THROW(t.append(Frame{}), cop::InvalidArgument);
}

TEST(State, SerializationRoundTrip) {
    State s;
    s.resize(2);
    s.positions = {{1, 2, 3}, {4, 5, 6}};
    s.velocities = {{0.1, 0.2, 0.3}, {0, 0, 0}};
    s.step = 42;
    s.time = 0.42;
    s.nhXi = 0.7;
    cop::BinaryWriter w;
    s.serialize(w);
    cop::BinaryReader r(w.buffer());
    EXPECT_EQ(State::deserialize(r), s);
}


TEST(Pdb, RendersAtomRecords) {
    const auto native = hairpinNativeStructure();
    const auto pdb = pdbString(native, "hairpin");
    EXPECT_NE(pdb.find("TITLE     hairpin"), std::string::npos);
    EXPECT_NE(pdb.find("ATOM      1  CA  ALA A   1"), std::string::npos);
    EXPECT_NE(pdb.find("END"), std::string::npos);
    // One ATOM line per residue.
    std::size_t atoms = 0, at = 0;
    while ((at = pdb.find("ATOM  ", at)) != std::string::npos) {
        ++atoms;
        at += 6;
    }
    EXPECT_EQ(atoms, native.size());
}

TEST(Pdb, MultiModelOutput) {
    const auto native = hairpinNativeStructure();
    const auto pdb =
        pdbString(std::vector<std::vector<Vec3>>{native, native}, "two");
    EXPECT_NE(pdb.find("MODEL        1"), std::string::npos);
    EXPECT_NE(pdb.find("MODEL        2"), std::string::npos);
    EXPECT_NE(pdb.find("ENDMDL"), std::string::npos);
}

TEST(Pdb, WritesFile) {
    const auto path =
        (std::filesystem::temp_directory_path() / "cop_test.pdb").string();
    writePdb(path, hairpinNativeStructure());
    const auto bytes = cop::readFile(path);
    EXPECT_GT(bytes.size(), 100u);
    std::filesystem::remove(path);
}

} // namespace
} // namespace cop::md
