#include "mdlib/topology.hpp"

#include <gtest/gtest.h>

namespace cop::md {
namespace {

Topology chainOfFour() {
    Topology t(4);
    t.addBond({0, 1, 1.0, 100.0});
    t.addBond({1, 2, 1.0, 100.0});
    t.addBond({2, 3, 1.0, 100.0});
    t.addAngle({0, 1, 2, 1.9, 20.0});
    t.addAngle({1, 2, 3, 1.9, 20.0});
    t.addDihedral({0, 1, 2, 3, 0.5, 1.0, 0.5});
    t.finalize();
    return t;
}

TEST(Topology, CountsAndSummary) {
    const auto t = chainOfFour();
    EXPECT_EQ(t.numParticles(), 4u);
    EXPECT_EQ(t.bonds().size(), 3u);
    EXPECT_EQ(t.angles().size(), 2u);
    EXPECT_EQ(t.dihedrals().size(), 1u);
    EXPECT_NE(t.summary().find("4 particles"), std::string::npos);
}

TEST(Topology, ExclusionsFromBondedTerms) {
    const auto t = chainOfFour();
    EXPECT_TRUE(t.isExcluded(0, 1)); // bond
    EXPECT_TRUE(t.isExcluded(0, 2)); // angle 1-3
    EXPECT_TRUE(t.isExcluded(0, 3)); // dihedral 1-4
    EXPECT_TRUE(t.isExcluded(1, 0)); // symmetric
}

TEST(Topology, ContactsAreExcluded) {
    Topology t(5);
    t.addContact({0, 4, 1.2, 1.0});
    t.finalize();
    EXPECT_TRUE(t.isExcluded(0, 4));
    EXPECT_FALSE(t.isExcluded(0, 3));
}

TEST(Topology, FinalizeIsIdempotent) {
    auto t = chainOfFour();
    t.finalize();
    EXPECT_TRUE(t.isExcluded(0, 1));
}

TEST(Topology, RejectsInvalidTerms) {
    Topology t(3);
    EXPECT_THROW(t.addBond({0, 0, 1.0, 1.0}), cop::InvalidArgument);
    EXPECT_THROW(t.addBond({0, 1, -1.0, 1.0}), cop::InvalidArgument);
    EXPECT_THROW(t.addAngle({0, 1, 1, 1.0, 1.0}), cop::InvalidArgument);
    EXPECT_THROW(t.addContact({1, 1, 1.0, 1.0}), cop::InvalidArgument);
    EXPECT_THROW(t.addParticle(0.0), cop::InvalidArgument);
}

TEST(Topology, FinalizeValidatesIndices) {
    Topology t(2);
    t.addBond({0, 5, 1.0, 1.0});
    EXPECT_THROW(t.finalize(), cop::InvalidArgument);
}

TEST(Topology, CannotMutateAfterFinalize) {
    auto t = chainOfFour();
    EXPECT_THROW(t.addBond({0, 2, 1.0, 1.0}), cop::InvalidArgument);
    EXPECT_THROW(t.addParticle(1.0), cop::InvalidArgument);
}

TEST(Topology, SerializationRoundTrip) {
    const auto t = chainOfFour();
    cop::BinaryWriter w;
    t.serialize(w);
    cop::BinaryReader r(w.buffer());
    const auto t2 = Topology::deserialize(r);
    EXPECT_EQ(t2.numParticles(), t.numParticles());
    EXPECT_EQ(t2.bonds().size(), t.bonds().size());
    EXPECT_EQ(t2.angles().size(), t.angles().size());
    EXPECT_EQ(t2.dihedrals().size(), t.dihedrals().size());
    EXPECT_TRUE(t2.finalized());
    EXPECT_TRUE(t2.isExcluded(0, 3));
    EXPECT_DOUBLE_EQ(t2.bonds()[0].r0, 1.0);
    EXPECT_DOUBLE_EQ(t2.dihedrals()[0].k3, 0.5);
}

TEST(Topology, MassesAndCharges) {
    Topology t;
    t.addParticle(2.0, -1.0);
    t.addParticle(3.0, 1.0);
    EXPECT_DOUBLE_EQ(t.mass(0), 2.0);
    EXPECT_DOUBLE_EQ(t.charge(1), 1.0);
    EXPECT_EQ(t.masses().size(), 2u);
}

} // namespace
} // namespace cop::md
