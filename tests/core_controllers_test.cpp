// MSM adaptive-sampling controller and BAR free-energy controller driven
// through the full framework (integration-level tests).

#include <gtest/gtest.h>

#include "core/backends.hpp"
#include "core/bar_controller.hpp"
#include "core/copernicus.hpp"
#include "core/msm_controller.hpp"
#include "mdlib/units.hpp"

namespace cop::core {
namespace {

ExecutableRegistry mdRegistry() {
    ExecutableRegistry reg;
    reg.add("mdrun", makeMdrunExecutable(linearDurationModel(0.05)));
    return reg;
}

MsmControllerParams smallMsmParams(std::uint64_t seed = 11) {
    MsmControllerParams p;
    p.model = md::hairpinGoModel();
    p.startingConformations =
        md::makeUnfoldedConformations(p.model, 2, seed);
    p.tasksPerStart = 2;
    p.segmentSteps = 1000;
    p.maxGenerations = 2;
    p.pipeline.numClusters = 15;
    p.pipeline.snapshotStride = 2;
    p.pipeline.medoidSweeps = 1;
    p.simulation.integrator.kind = md::IntegratorKind::LangevinBAOAB;
    p.simulation.integrator.temperature = 0.5;
    p.simulation.integrator.friction = 0.5;
    p.simulation.sampleInterval = 25;
    p.seed = seed;
    return p;
}

TEST(MsmControllerTest, RunsGenerationsAndBuildsModel) {
    Deployment dep(20);
    auto& server = dep.addServer("s0");
    for (int i = 0; i < 3; ++i)
        dep.addWorker("w" + std::to_string(i), server, WorkerConfig{},
                      mdRegistry(), links::intraCluster());
    auto ctrl = std::make_unique<MsmController>(smallMsmParams());
    auto* c = ctrl.get();
    server.createProject("hairpin", std::move(ctrl));
    ASSERT_TRUE(dep.runUntilDone(1e9));

    EXPECT_EQ(c->generation(), 2);
    EXPECT_EQ(c->history().size(), 2u);
    ASSERT_TRUE(c->lastMsm().has_value());
    EXPECT_GE(c->lastMsm()->model.numStates(), 1u);
    // Trajectories accumulated: initial 4 + respawns.
    EXPECT_GE(c->trajectories().size(), 4u);
    // Generation records are monotone in data volume.
    EXPECT_GE(c->history()[1].totalSnapshots,
              c->history()[0].totalSnapshots);
    // The hairpin folds easily: minimum RMSD should reach the folded zone.
    EXPECT_LT(c->minRmsdAngstrom(), md::kFoldedRmsdAngstrom);
    EXPECT_GE(c->firstFoldedGeneration(), 0);
    // MSM build accounting: generation 1 is always a full (first) build
    // and sees every snapshot as new; later generations only pay for the
    // data that arrived since.
    const auto& s1 = c->history()[0].msmStats;
    const auto& s2 = c->history()[1].msmStats;
    EXPECT_TRUE(s1.fullRebuild);
    EXPECT_EQ(s1.snapshotsNew, s1.snapshotsTotal);
    EXPECT_GT(s1.rmsd.calls, 0u);
    EXPECT_EQ(s2.generation, 2u);
    EXPECT_EQ(s2.snapshotsTotal, c->history()[1].totalSnapshots);
    if (!s2.fullRebuild)
        EXPECT_LT(s2.snapshotsNew, s2.snapshotsTotal);
    EXPECT_FALSE(s2.summary().empty());
}

TEST(MsmControllerTest, StatusReportMentionsGeneration) {
    Deployment dep(21);
    auto& server = dep.addServer("s0");
    dep.addWorker("w0", server, WorkerConfig{}, mdRegistry(),
                  links::intraCluster());
    auto ctrl = std::make_unique<MsmController>(smallMsmParams(13));
    const auto pid = server.createProject("hairpin", std::move(ctrl));
    dep.runUntilDone(1e9);
    const auto status = server.projectStatus(pid);
    EXPECT_NE(status.find("generation"), std::string::npos);
    EXPECT_NE(status.find("min RMSD"), std::string::npos);
}

TEST(MsmControllerTest, DeterministicAcrossRuns) {
    auto run = [](std::uint64_t seed) {
        Deployment dep(22);
        auto& server = dep.addServer("s0");
        dep.addWorker("w0", server, WorkerConfig{}, mdRegistry(),
                      links::intraCluster());
        auto ctrl = std::make_unique<MsmController>(smallMsmParams(seed));
        auto* c = ctrl.get();
        server.createProject("hairpin", std::move(ctrl));
        dep.runUntilDone(1e9);
        return c->minRmsdAngstrom();
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(MsmControllerTest, RejectsBadParameters) {
    MsmControllerParams p;
    p.model = md::hairpinGoModel();
    EXPECT_THROW(MsmController{p}, cop::InvalidArgument); // no starts
    p = smallMsmParams();
    p.tasksPerStart = 0;
    EXPECT_THROW(MsmController{p}, cop::InvalidArgument);
}

TEST(BarControllerTest, ConvergesToAnalyticResult) {
    Deployment dep(23);
    auto& server = dep.addServer("s0");
    for (int i = 0; i < 2; ++i) {
        ExecutableRegistry reg;
        reg.add("fe_sample",
                makeFeSampleExecutable(linearDurationModel(0.001)));
        dep.addWorker("few" + std::to_string(i), server, WorkerConfig{},
                      std::move(reg), links::intraCluster());
    }
    BarControllerParams bp;
    bp.targetError = 0.02;
    auto ctrl = std::make_unique<BarController>(bp);
    auto* c = ctrl.get();
    server.createProject("bar", std::move(ctrl));
    ASSERT_TRUE(dep.runUntilDone(1e9));

    ASSERT_TRUE(c->estimate().has_value());
    const auto& est = *c->estimate();
    EXPECT_LE(est.totalError, bp.targetError * 1.001);
    EXPECT_NEAR(est.totalDeltaF, c->analyticDeltaF(),
                4.0 * est.totalError + 0.01);
    EXPECT_GE(c->rounds(), 1);
}

TEST(BarControllerTest, AdaptiveRefinementAddsRounds) {
    // A tight error target forces several refinement rounds.
    Deployment dep(24);
    auto& server = dep.addServer("s0");
    ExecutableRegistry reg;
    reg.add("fe_sample",
            makeFeSampleExecutable(linearDurationModel(0.001)));
    dep.addWorker("few", server, WorkerConfig{}, std::move(reg),
                  links::intraCluster());
    BarControllerParams bp;
    bp.samplesPerCommand = 200;
    bp.targetError = 0.015;
    bp.maxRounds = 40;
    auto ctrl = std::make_unique<BarController>(bp);
    auto* c = ctrl.get();
    server.createProject("bar", std::move(ctrl));
    ASSERT_TRUE(dep.runUntilDone(1e9));
    EXPECT_GT(c->rounds(), 1);
    EXPECT_LE(c->estimate()->totalError, bp.targetError * 1.001);
}

TEST(Backends, MdrunOutputRoundTrip) {
    md::Trajectory traj;
    traj.append(0, 0.0, std::vector<Vec3>{{1, 2, 3}});
    MdrunOutput out;
    out.segment = traj;
    out.checkpoint = {5, 5};
    const auto out2 = MdrunOutput::decode(out.encode());
    EXPECT_EQ(out2.segment.numFrames(), 1u);
    EXPECT_EQ(out2.checkpoint, out.checkpoint);
}

TEST(Backends, MdrunExecutableRunsFromCheckpoint) {
    const auto model = md::hairpinGoModel();
    md::SimulationConfig cfg;
    cfg.sampleInterval = 10;
    cfg.seed = 3;
    auto sim = md::Simulation::forGoModel(model, model.native, cfg);
    sim.initializeVelocities();

    CommandSpec cmd;
    cmd.id = 1;
    cmd.executable = "mdrun";
    cmd.steps = 100;
    cmd.input = sim.checkpoint();

    const auto handler = makeMdrunExecutable(linearDurationModel(0.01));
    const auto exec = handler(cmd, 2);
    EXPECT_TRUE(exec.result.success);
    EXPECT_NEAR(exec.simSeconds, 100 * 0.01 / 2.0, 1e-12);
    EXPECT_EQ(exec.checkpoints.size(), 3u); // quarters
    const auto out = MdrunOutput::decode(exec.result.output);
    EXPECT_EQ(out.segment.numFrames(), 11u);
    // Continuing from the produced checkpoint works.
    auto sim2 = md::Simulation::restore(out.checkpoint);
    EXPECT_EQ(sim2.state().step, 100);
}

TEST(Backends, FeSampleInputRoundTrip) {
    FeSampleInput in;
    in.sampled = {2.0, 0.5};
    in.target = {3.0, -0.5};
    in.samples = 123;
    in.beta = 1.5;
    in.seed = 99;
    const auto in2 = FeSampleInput::decode(in.encode());
    EXPECT_EQ(in2.sampled.k, 2.0);
    EXPECT_EQ(in2.target.x0, -0.5);
    EXPECT_EQ(in2.samples, 123u);
    EXPECT_EQ(in2.beta, 1.5);
    EXPECT_EQ(in2.seed, 99u);
}

TEST(Backends, SimulatedExecutableShapesOutput) {
    const auto handler = makeSimulatedExecutable(
        linearDurationModel(2.0), /*outputBytes=*/512);
    CommandSpec cmd;
    cmd.id = 4;
    cmd.steps = 50;
    const auto exec = handler(cmd, 4);
    EXPECT_EQ(exec.result.output.size(), 512u);
    EXPECT_NEAR(exec.simSeconds, 50 * 2.0 / 4.0, 1e-12);
}

TEST(Backends, LinearDurationModelValidation) {
    EXPECT_THROW(linearDurationModel(0.0), cop::InvalidArgument);
    const auto m = linearDurationModel(1.5);
    EXPECT_DOUBLE_EQ(m(10, 5), 3.0);
}

} // namespace
} // namespace cop::core
