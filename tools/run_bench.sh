#!/usr/bin/env bash
# Builds and runs the microbenchmarks, emitting google-benchmark JSON to
# BENCH_micro_md.json, BENCH_micro_msm.json and BENCH_micro_sched.json in
# the repo root so the perf trajectory — kernel flavors x thread counts,
# MSM rebuild modes, scheduler flavors x queue depths — is tracked PR
# over PR.
#
# Usage:
#   tools/run_bench.sh                 # full sweep
#   FILTER=BM_NonbondedKernel tools/run_bench.sh
#   BUILD_DIR=build-release tools/run_bench.sh -- --benchmark_min_time=0.1s
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
FILTER=${FILTER:-.}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target micro_md micro_msm micro_sched \
  macro_overlay

extra=()
for arg in "$@"; do
  [[ "$arg" == "--" ]] && continue
  extra+=("$arg")
done

"$BUILD_DIR"/bench/micro_md \
  --benchmark_filter="$FILTER" \
  --benchmark_out=BENCH_micro_md.json \
  --benchmark_out_format=json \
  "${extra[@]+"${extra[@]}"}"

"$BUILD_DIR"/bench/micro_msm \
  --benchmark_filter="$FILTER" \
  --benchmark_out=BENCH_micro_msm.json \
  --benchmark_out_format=json \
  "${extra[@]+"${extra[@]}"}"

"$BUILD_DIR"/bench/micro_sched \
  --benchmark_filter="$FILTER" \
  --benchmark_out=BENCH_micro_sched.json \
  --benchmark_out_format=json \
  "${extra[@]+"${extra[@]}"}"

# Macro overlay-throughput harness (closed-loop command mill + sparse
# trickle, batched vs unbatched). Writes BENCH_macro_overlay.json itself.
"$BUILD_DIR"/bench/macro_overlay

echo "Wrote BENCH_micro_md.json, BENCH_micro_msm.json, BENCH_micro_sched.json and BENCH_macro_overlay.json"

# Headline for the adaptive-MSM sweep: from-scratch rebuild vs incremental
# update of the same generation (BM_MsmFullGeneration / gen:N against
# BM_MsmIncrementalGeneration / gen:N, single-threaded).
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || true
import json
with open("BENCH_micro_msm.json") as f:
    runs = json.load(f).get("benchmarks", [])
def real(name):
    for b in runs:
        if b.get("name", "").startswith(name):
            return b.get("real_time")
    return None
for gen in (4, 8):
    full = real(f"BM_MsmFullGeneration/gen:{gen}")
    inc = real(f"BM_MsmIncrementalGeneration/gen:{gen}")
    if full and inc:
        print(f"msm gen {gen}: full {full:.1f} ms, incremental {inc:.1f} ms "
              f"({full / inc:.1f}x)")
EOF
fi

# Headline for the overlay transport: wall-clock commands/sec with
# envelope coalescing on vs off, plus the sparse-load ack-latency check.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || true
import json
with open("BENCH_macro_overlay.json") as f:
    d = json.load(f)
hot = d["hot"]
on, off = hot["batched"], hot["unbatched"]
print(f"overlay hot: {on['wall_commands_per_sec']:.0f} cps batched vs "
      f"{off['wall_commands_per_sec']:.0f} cps unbatched "
      f"({hot['wall_speedup']:.2f}x, {hot['frame_reduction']*100:.1f}% fewer frames)")
sp = d["sparse"]
print(f"overlay sparse: ack p99 {sp['batched']['ack_latency_p99_s']:.4f}s batched vs "
      f"{sp['unbatched']['ack_latency_p99_s']:.4f}s unbatched")
EOF
fi

# Headline for the scheduler: legacy linear-scan claim vs indexed claim at
# 1e4 pending commands (the ISSUE's >= 10x acceptance point).
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || true
import json
with open("BENCH_micro_sched.json") as f:
    runs = json.load(f).get("benchmarks", [])
def real(name):
    for b in runs:
        if b.get("name", "") == name:
            return b.get("real_time")
    return None
for op in ("Claim", "Requeue", "Checkpoint"):
    for exes in (4, 16):
        new = real(f"BM_Sched{op}Indexed/pending:10000/exes:{exes}")
        old = real(f"BM_Sched{op}Legacy/pending:10000/exes:{exes}")
        if new and old:
            print(f"sched {op.lower()} @1e4 pending, {exes} exes: "
                  f"legacy {old / 1e3:.1f} us, indexed {new / 1e3:.1f} us "
                  f"({old / new:.1f}x)")
EOF
fi
