#!/usr/bin/env bash
# Builds and runs the microbenchmarks, emitting google-benchmark JSON to
# BENCH_micro_md.json, BENCH_micro_msm.json and BENCH_micro_sched.json in
# the repo root so the perf trajectory — kernel flavors x SIMD ISAs x
# thread counts, MSM rebuild modes, scheduler flavors x queue depths — is
# tracked PR over PR.
#
# Usage:
#   tools/run_bench.sh                 # full sweep
#   FILTER=BM_NonbondedKernel tools/run_bench.sh
#   BUILD_DIR=build-release tools/run_bench.sh -- --benchmark_min_time=0.1
#   tools/run_bench.sh --allow-debug   # explicitly bless a non-Release dir
#
# Refuses to run from a non-Release build directory unless --allow-debug
# is given: debug-build timings silently committed as BENCH_*.json would
# poison the PR-over-PR trajectory. Every emitted JSON is stamped with
# the build type and the detected SIMD ISA so results stay
# self-describing after they leave this machine.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
FILTER=${FILTER:-.}

allow_debug=0
extra=()
for arg in "$@"; do
  case "$arg" in
    --allow-debug) allow_debug=1 ;;
    --) ;;
    *) extra+=("$arg") ;;
  esac
done

# Fresh dirs are configured Release; an existing dir keeps its cached
# build type (so BUILD_DIR=build-debug genuinely trips the gate below
# instead of being silently reconfigured).
if [[ -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
else
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")
build_type=${build_type:-unset}
if [[ "$build_type" != "Release" && $allow_debug -ne 1 ]]; then
  echo "error: $BUILD_DIR is a '$build_type' build; benchmark numbers from" >&2
  echo "non-Release builds are meaningless. Re-run with --allow-debug to" >&2
  echo "override, or point BUILD_DIR at a Release tree." >&2
  exit 1
fi

cmake --build "$BUILD_DIR" -j"$(nproc)" --target micro_md micro_msm micro_sched \
  micro_store macro_overlay macro_tenancy

simd_isa=$("$BUILD_DIR"/bench/micro_md --print-simd-isa)
echo "build type: $build_type, detected SIMD ISA: $simd_isa"

# Repetitions + random interleaving for micro_md: the SIMD headline is a
# ratio of two benchmarks that would otherwise run minutes apart, and on
# a shared host the load drifts on that timescale. Interleaved
# repetitions spread any slow phase across every benchmark, so the
# medians compare like with like.
"$BUILD_DIR"/bench/micro_md \
  --benchmark_filter="$FILTER" \
  --benchmark_repetitions=3 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_out=BENCH_micro_md.json \
  --benchmark_out_format=json \
  "${extra[@]+"${extra[@]}"}"

"$BUILD_DIR"/bench/micro_msm \
  --benchmark_filter="$FILTER" \
  --benchmark_out=BENCH_micro_msm.json \
  --benchmark_out_format=json \
  "${extra[@]+"${extra[@]}"}"

"$BUILD_DIR"/bench/micro_sched \
  --benchmark_filter="$FILTER" \
  --benchmark_out=BENCH_micro_sched.json \
  --benchmark_out_format=json \
  "${extra[@]+"${extra[@]}"}"

# Data-plane microbenchmarks: tiered-store bounded-RSS experiment (1M
# commands vs the RAM cap), codec ratio/throughput on a real checkpoint,
# and WAL append/replay throughput. Writes BENCH_micro_store.json itself
# and exits nonzero if any gate (bounded RSS, ratio > 1, lossless replay)
# fails.
"$BUILD_DIR"/bench/micro_store

# Macro overlay-throughput harness (closed-loop command mill + sparse
# trickle, batched vs unbatched, plus the WAL-on/off A/B tax leg).
# Writes BENCH_macro_overlay.json itself.
"$BUILD_DIR"/bench/macro_overlay

# Multi-tenant scheduling-plane study (10k workers x 100 projects,
# weighted DRR, admission, single-tenant parity). Must run after
# macro_overlay: it reads BENCH_macro_overlay.json as the parity
# baseline. Writes BENCH_macro_tenancy.json itself. Slow (~7 min).
"$BUILD_DIR"/bench/macro_tenancy

# Stamp build type + detected ISA into every JSON (micro_md carries them
# natively via benchmark context; the others get them injected here so a
# lone file is still self-describing).
if command -v python3 >/dev/null 2>&1; then
  COP_BUILD_TYPE="$build_type" COP_SIMD_ISA="$simd_isa" python3 - <<'EOF'
import json, os
stamp = {"cop_build_type": os.environ["COP_BUILD_TYPE"],
         "cop_simd_isa_detected": os.environ["COP_SIMD_ISA"]}
for path in ("BENCH_micro_md.json", "BENCH_micro_msm.json",
             "BENCH_micro_sched.json", "BENCH_micro_store.json",
             "BENCH_macro_overlay.json", "BENCH_macro_tenancy.json"):
    try:
        with open(path) as f:
            d = json.load(f)
    except (OSError, ValueError):
        continue
    if "context" in d and isinstance(d["context"], dict):
        d["context"].update(stamp)
    else:
        d.update(stamp)
    with open(path, "w") as f:
        json.dump(d, f, indent=1)
        f.write("\n")
EOF
fi

echo "Wrote BENCH_micro_md.json, BENCH_micro_msm.json, BENCH_micro_sched.json, BENCH_micro_store.json, BENCH_macro_overlay.json and BENCH_macro_tenancy.json"

# Headline for the SIMD kernel tier: runtime-dispatched widest ISA vs the
# width-1 SoA baseline at N=10000 (single thread, uncharged + charged).
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || true
import json
with open("BENCH_micro_md.json") as f:
    runs = json.load(f).get("benchmarks", [])
def real(name):
    # Prefer the median aggregate when the run was recorded with
    # repetitions; fall back to the single-run entry.
    for b in runs:
        if b.get("name", "") == name + "_median":
            return b.get("real_time")
    for b in runs:
        if b.get("name", "") == name:
            return b.get("real_time")
    return None
isas = [b["name"].split("/")[1].split(":")[1]
        for b in runs
        if b.get("name", "").startswith("BM_NonbondedIsa/")]
widest = isas[-1] if isas else None
for charged in (0, 1):
    soa = real(f"BM_NonbondedIsa/isa:soa/atoms:10000/charged:{charged}")
    simd = real(f"BM_NonbondedIsa/isa:{widest}/atoms:10000/charged:{charged}")
    if soa and simd:
        kind = "charged" if charged else "uncharged"
        print(f"simd {kind} @1e4 atoms: soa {soa/1e6:.2f} ms, "
              f"{widest} {simd/1e6:.2f} ms ({soa/simd:.2f}x)")
EOF
fi

# Headline for the adaptive-MSM sweep: from-scratch rebuild vs incremental
# update of the same generation (BM_MsmFullGeneration / gen:N against
# BM_MsmIncrementalGeneration / gen:N, single-threaded).
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || true
import json
with open("BENCH_micro_msm.json") as f:
    runs = json.load(f).get("benchmarks", [])
def real(name):
    for b in runs:
        if b.get("name", "").startswith(name):
            return b.get("real_time")
    return None
for gen in (4, 8):
    full = real(f"BM_MsmFullGeneration/gen:{gen}")
    inc = real(f"BM_MsmIncrementalGeneration/gen:{gen}")
    if full and inc:
        print(f"msm gen {gen}: full {full:.1f} ms, incremental {inc:.1f} ms "
              f"({full / inc:.1f}x)")
EOF
fi

# Headline for the overlay transport: wall-clock commands/sec with
# envelope coalescing on vs off, plus the sparse-load ack-latency check.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || true
import json
with open("BENCH_macro_overlay.json") as f:
    d = json.load(f)
hot = d["hot"]
on, off = hot["batched"], hot["unbatched"]
print(f"overlay hot: {on['wall_commands_per_sec']:.0f} cps batched vs "
      f"{off['wall_commands_per_sec']:.0f} cps unbatched "
      f"({hot['wall_speedup']:.2f}x, {hot['frame_reduction']*100:.1f}% fewer frames)")
sp = d["sparse"]
print(f"overlay sparse: ack p99 {sp['batched']['ack_latency_p99_s']:.4f}s batched vs "
      f"{sp['unbatched']['ack_latency_p99_s']:.4f}s unbatched")
EOF
fi

# Headline for the data plane: bounded RSS under 1M commands, codec ratio
# on a real checkpoint, and the WAL-on/off hot-path tax (gate >= 0.95).
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || true
import json
with open("BENCH_micro_store.json") as f:
    d = json.load(f)
s, c, w = d["store"], d["codec"], d["wal"]
print(f"store: {s['commands']} commands, {s['raw_total_mb']:.0f} MB raw under a "
      f"{s['ram_cap_mb']:.0f} MB cap -> RSS delta {s['rss_delta_mb']:.0f} MB "
      f"(bounded: {s['rss_bounded']})")
print(f"codec: {c['compression_ratio']:.2f}x on a real checkpoint, "
      f"{c['encode_mb_per_sec']:.0f}/{c['decode_mb_per_sec']:.0f} MB/s enc/dec")
print(f"wal: {w['appends_per_sec']:.0f} appends/s, "
      f"{w['records_per_sync']:.0f} records/fdatasync, "
      f"{w['replays_per_sec']:.0f} replays/s")
with open("BENCH_macro_overlay.json") as f:
    o = json.load(f)
ab = o.get("wal_ab", {})
if ab:
    print(f"wal tax (overlay hot): {ab['wal_tax_cps_ratio']:.4f}x cps "
          f"(gate >= {ab['wal_tax_gate']})")
with open("BENCH_macro_tenancy.json") as f:
    t = json.load(f)
ab = t.get("wal_ab", {})
if ab:
    print(f"wal tax (tenancy): {ab['wal_tax_cps_ratio']:.4f}x cps "
          f"(gate >= {ab['wal_tax_gate']})")
EOF
fi

# Headline for the multi-tenant plane: flagship fairness + claim latency,
# weighted shares, and single-tenant parity with macro_overlay.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || true
import json
with open("BENCH_macro_tenancy.json") as f:
    d = json.load(f)
t = d["tenancy"]
print(f"tenancy: {t['workers']} workers x {t['projects']} tenants, "
      f"Jain {t['jain_fairness_midrun']:.4f}, claim p50/p99 "
      f"{t['claim_latency_p50_s']:.3f}s/{t['claim_latency_p99_s']:.3f}s")
w = d["weighted"]
print(f"weighted: shares {['%.3f' % s for s in w['midrun_shares']]} vs "
      f"expected {['%.3f' % s for s in w['expected_shares']]} "
      f"(max err {w['max_share_error']:.3f})")
s = d["single_tenant"]
print(f"single-tenant parity: {s['sim_commands_per_sec']:.2f} sim cps vs "
      f"overlay {s['baseline_sim_commands_per_sec']:.2f} "
      f"(ratio {s['ratio_vs_macro_overlay']:.4f}, "
      f"within 5%: {s['within_5pct']})")
EOF
fi

# Headline for the scheduler: legacy linear-scan claim vs indexed claim at
# 1e4 pending commands (the ISSUE's >= 10x acceptance point).
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || true
import json
with open("BENCH_micro_sched.json") as f:
    runs = json.load(f).get("benchmarks", [])
def real(name):
    for b in runs:
        if b.get("name", "") == name:
            return b.get("real_time")
    return None
for op in ("Claim", "Requeue", "Checkpoint"):
    for exes in (4, 16):
        new = real(f"BM_Sched{op}Indexed/pending:10000/exes:{exes}")
        old = real(f"BM_Sched{op}Legacy/pending:10000/exes:{exes}")
        if new and old:
            print(f"sched {op.lower()} @1e4 pending, {exes} exes: "
                  f"legacy {old / 1e3:.1f} us, indexed {new / 1e3:.1f} us "
                  f"({old / new:.1f}x)")
EOF
fi
