#!/usr/bin/env bash
# Builds and runs the MD microbenchmarks, emitting google-benchmark JSON to
# BENCH_micro_md.json (and BENCH_micro_msm.json) in the repo root so the
# perf trajectory — kernel flavors x thread counts — is tracked PR over PR.
#
# Usage:
#   tools/run_bench.sh                 # full sweep
#   FILTER=BM_NonbondedKernel tools/run_bench.sh
#   BUILD_DIR=build-release tools/run_bench.sh -- --benchmark_min_time=0.1s
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
FILTER=${FILTER:-.}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target micro_md micro_msm

extra=()
for arg in "$@"; do
  [[ "$arg" == "--" ]] && continue
  extra+=("$arg")
done

"$BUILD_DIR"/bench/micro_md \
  --benchmark_filter="$FILTER" \
  --benchmark_out=BENCH_micro_md.json \
  --benchmark_out_format=json \
  "${extra[@]+"${extra[@]}"}"

"$BUILD_DIR"/bench/micro_msm \
  --benchmark_filter="$FILTER" \
  --benchmark_out=BENCH_micro_msm.json \
  --benchmark_out_format=json \
  "${extra[@]+"${extra[@]}"}"

echo "Wrote BENCH_micro_md.json and BENCH_micro_msm.json"
