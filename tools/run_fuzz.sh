#!/usr/bin/env bash
# Entry point for the wire-decode fuzzer (fuzz/envelope_fuzz.cpp).
#
# With clang available it builds the coverage-guided libFuzzer harness
# (+ASan) and runs: (1) a deterministic replay of the committed seed
# corpus, (2) a bounded exploration phase. Without clang it falls back to
# the standalone driver and replays the corpus only — the same check the
# `fuzz_corpus_replay` ctest entry runs on every build.
#
# Usage:
#   tools/run_fuzz.sh                 # replay + 60 s exploration
#   FUZZ_SECONDS=600 tools/run_fuzz.sh
#   tools/run_fuzz.sh --generate     # regenerate the seed corpus in place
set -euo pipefail

cd "$(dirname "$0")/.."
FUZZ_SECONDS=${FUZZ_SECONDS:-60}
CORPUS=fuzz/corpus/envelope

if [[ "${1:-}" == "--generate" ]]; then
  BUILD_DIR=${BUILD_DIR:-build}
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target envelope_fuzz
  "$BUILD_DIR"/fuzz/envelope_fuzz --generate "$CORPUS"
  exit 0
fi

if command -v clang++ >/dev/null 2>&1; then
  BUILD_DIR=${BUILD_DIR:-build-fuzz}
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DCOPERNICUS_LIBFUZZER=ON -DCOPERNICUS_SANITIZER=address >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target envelope_fuzz
  echo "== corpus replay (deterministic) =="
  "$BUILD_DIR"/fuzz/envelope_fuzz -runs=0 "$CORPUS"
  echo "== exploration (${FUZZ_SECONDS}s) =="
  "$BUILD_DIR"/fuzz/envelope_fuzz -max_total_time="$FUZZ_SECONDS" \
    -print_final_stats=1 "$CORPUS"
else
  echo "clang not found: replaying committed corpus with the standalone driver"
  BUILD_DIR=${BUILD_DIR:-build}
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target envelope_fuzz
  "$BUILD_DIR"/fuzz/envelope_fuzz "$CORPUS"
fi
