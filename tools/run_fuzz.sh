#!/usr/bin/env bash
# Entry point for the fuzz harnesses: the wire-decode surface
# (fuzz/envelope_fuzz.cpp -> fuzz/corpus/envelope) and the recovery-path
# surface — WAL log/snapshot parsers + blob codec (fuzz/wal_fuzz.cpp ->
# fuzz/corpus/wal).
#
# With clang available it builds the coverage-guided libFuzzer harnesses
# (+ASan) and runs, per harness: (1) a deterministic replay of the
# committed seed corpus, (2) a bounded exploration phase. Without clang it
# falls back to the standalone drivers and replays the corpora only — the
# same checks the `fuzz_corpus_replay` / `fuzz_wal_corpus_replay` ctest
# entries run on every build.
#
# Usage:
#   tools/run_fuzz.sh                 # replay + 60 s exploration each
#   FUZZ_SECONDS=600 tools/run_fuzz.sh
#   tools/run_fuzz.sh --generate     # regenerate both seed corpora in place
set -euo pipefail

cd "$(dirname "$0")/.."
FUZZ_SECONDS=${FUZZ_SECONDS:-60}

declare -A CORPORA=(
  [envelope_fuzz]=fuzz/corpus/envelope
  [wal_fuzz]=fuzz/corpus/wal
)

if [[ "${1:-}" == "--generate" ]]; then
  BUILD_DIR=${BUILD_DIR:-build}
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target envelope_fuzz wal_fuzz
  for harness in "${!CORPORA[@]}"; do
    "$BUILD_DIR"/fuzz/"$harness" --generate "${CORPORA[$harness]}"
  done
  exit 0
fi

if command -v clang++ >/dev/null 2>&1; then
  BUILD_DIR=${BUILD_DIR:-build-fuzz}
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DCOPERNICUS_LIBFUZZER=ON -DCOPERNICUS_SANITIZER=address >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target envelope_fuzz wal_fuzz
  for harness in "${!CORPORA[@]}"; do
    corpus=${CORPORA[$harness]}
    echo "== $harness: corpus replay (deterministic) =="
    "$BUILD_DIR"/fuzz/"$harness" -runs=0 "$corpus"
    echo "== $harness: exploration (${FUZZ_SECONDS}s) =="
    "$BUILD_DIR"/fuzz/"$harness" -max_total_time="$FUZZ_SECONDS" \
      -print_final_stats=1 "$corpus"
  done
else
  echo "clang not found: replaying committed corpora with the standalone drivers"
  BUILD_DIR=${BUILD_DIR:-build}
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target envelope_fuzz wal_fuzz
  for harness in "${!CORPORA[@]}"; do
    "$BUILD_DIR"/fuzz/"$harness" "${CORPORA[$harness]}"
  done
fi
