/// copernicus_lint driver.
///
///   copernicus_lint --root <repo> [--config <file>] [--check <name>]...
///                   [--list-checks] [file...]
///
/// With no positional files, walks the lint-dir roots from the config
/// (skipping skip-dir subtrees) over .cpp/.cc/.hpp/.hh/.h sources. Emits
/// `file:line: [check] message` per finding; exit 1 when any finding
/// survives suppression, 2 on usage/config/IO errors.

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "lint.hpp"

namespace fs = std::filesystem;
using namespace coplint;

namespace {

bool readFile(const fs::path& p, std::string& out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool isSource(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".hh" ||
           ext == ".h";
}

std::string relPath(const fs::path& root, const fs::path& p) {
    std::string s = fs::relative(p, root).generic_string();
    return s;
}

} // namespace

int main(int argc, char** argv) {
    fs::path root = ".";
    fs::path configPath;
    std::vector<std::string> onlyChecks;
    std::vector<std::string> files;
    bool listChecks = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "copernicus_lint: " << flag
                          << " requires an argument\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--root") {
            root = need("--root");
        } else if (a == "--config") {
            configPath = need("--config");
        } else if (a == "--check") {
            onlyChecks.push_back(need("--check"));
        } else if (a == "--list-checks") {
            listChecks = true;
        } else if (a == "--help" || a == "-h") {
            std::cout << "usage: copernicus_lint --root <repo> "
                         "[--config <file>] [--check <name>]... "
                         "[--list-checks] [file...]\n";
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "copernicus_lint: unknown option " << a << "\n";
            return 2;
        } else {
            files.push_back(a);
        }
    }

    if (listChecks) {
        for (const auto& name : allCheckNames()) std::cout << name << "\n";
        return 0;
    }
    for (const auto& c : onlyChecks) {
        const auto& all = allCheckNames();
        if (std::find(all.begin(), all.end(), c) == all.end()) {
            std::cerr << "copernicus_lint: unknown check '" << c
                      << "' (see --list-checks)\n";
            return 2;
        }
    }

    if (configPath.empty()) configPath = root / "tools" / "lint" / "lint_config";
    std::string configText;
    if (!readFile(configPath, configText)) {
        std::cerr << "copernicus_lint: cannot read config " << configPath
                  << "\n";
        return 2;
    }
    Config cfg;
    std::string err;
    if (!parseConfig(configText, cfg, err)) {
        std::cerr << "copernicus_lint: " << configPath.string() << ": " << err
                  << "\n";
        return 2;
    }

    // Resolve the file set: explicit positional files (repo-relative or
    // absolute), else walk the configured roots.
    std::vector<std::string> rels;
    if (!files.empty()) {
        for (const auto& f : files) {
            fs::path p = fs::path(f).is_absolute() ? fs::path(f) : root / f;
            if (!fs::exists(p)) {
                std::cerr << "copernicus_lint: no such file: " << f << "\n";
                return 2;
            }
            rels.push_back(relPath(root, p));
        }
    } else {
        for (const auto& dir : cfg.lintDirs) {
            fs::path base = root / dir;
            if (!fs::exists(base)) continue;
            for (const auto& ent : fs::recursive_directory_iterator(base)) {
                if (!ent.is_regular_file() || !isSource(ent.path())) continue;
                std::string rel = relPath(root, ent.path());
                if (pathInAny(rel, cfg.skipDirs)) continue;
                rels.push_back(rel);
            }
        }
    }
    std::sort(rels.begin(), rels.end());
    rels.erase(std::unique(rels.begin(), rels.end()), rels.end());

    // Pass 1: lex everything (plus enum-defining headers that may sit
    // outside the file set) and collect tree-wide facts.
    std::vector<LexedFile> lexed;
    lexed.reserve(rels.size());
    for (const auto& rel : rels) {
        std::string src;
        if (!readFile(root / rel, src)) {
            std::cerr << "copernicus_lint: cannot read " << rel << "\n";
            return 2;
        }
        lexed.push_back(lex(src, rel));
    }

    TreeContext tree;
    std::vector<std::string> enumNames;
    for (const auto& [name, header] : cfg.switchEnums) {
        enumNames.push_back(name);
        if (std::find(rels.begin(), rels.end(), header) == rels.end()) {
            std::string src;
            if (!readFile(root / header, src)) {
                std::cerr << "copernicus_lint: switch-enum header not found: "
                          << header << "\n";
                return 2;
            }
            collectEnumDefs(lex(src, header), enumNames, tree.enums);
        }
    }
    for (const auto& lf : lexed) {
        collectEnumDefs(lf, enumNames, tree.enums);
        // Unordered-container names are only gathered inside the
        // nondeterminism scope — a name-keyed match against, say, a
        // util-internal unordered_set would false-positive on an
        // identically named vector in core.
        if (pathInAny(lf.path, cfg.nondetDirs))
            collectUnorderedVars(lf, tree.unorderedVars);
    }
    for (const auto& [name, header] : cfg.switchEnums) {
        bool found = false;
        for (const auto& def : tree.enums)
            if (def.name == name) found = true;
        if (!found) {
            std::cerr << "copernicus_lint: enum '" << name
                      << "' not found in " << header << "\n";
            return 2;
        }
    }

    // Pass 2: run the checks.
    std::vector<Finding> findings;
    for (const auto& lf : lexed) {
        auto fs2 = lintFile(lf, cfg, tree);
        findings.insert(findings.end(), fs2.begin(), fs2.end());
    }
    if (!onlyChecks.empty()) {
        findings.erase(
            std::remove_if(findings.begin(), findings.end(),
                           [&](const Finding& f) {
                               return std::find(onlyChecks.begin(),
                                                onlyChecks.end(),
                                                f.check) == onlyChecks.end();
                           }),
            findings.end());
    }
    std::sort(findings.begin(), findings.end());

    for (const auto& f : findings) std::cout << f.render() << "\n";
    std::cerr << "copernicus_lint: " << rels.size() << " files, "
              << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return findings.empty() ? 0 : 1;
}
