#pragma once

/// \file lexer.hpp
/// Token-level C++ lexer for copernicus_lint. Not a parser: it produces a
/// flat token stream plus a comment side-channel, which is exactly the
/// altitude the repo-invariant checks need (qualified-name patterns, brace
/// and paren matching, NOLINT suppression comments). The lexer handles the
/// lexical constructs that break naive grep-based gates:
///
///  - line comments (including backslash-continued ones) and block
///    comments (which do NOT nest in C++ — `/* /* */` ends at the first
///    `*/`);
///  - string and character literals with escapes, and encoding prefixes
///    (u8"", L"", u'', ...);
///  - raw string literals `R"delim(...)delim"` in all prefix forms, with
///    no escape or splice processing inside;
///  - preprocessor directives (one token per logical directive line,
///    honoring backslash-newline continuations);
///  - universal backslash-newline splices everywhere except raw strings.
///
/// There is deliberately no libclang dependency: the build environment
/// carries only the base toolchain, and the checks below need token
/// fidelity, not semantic analysis.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace coplint {

enum class TokKind {
    Identifier,   ///< identifiers and keywords (no distinction made)
    Number,       ///< integer / floating literals, pp-numbers
    String,       ///< string literal (any prefix, incl. raw); text excludes quotes
    CharLit,      ///< character literal; text excludes quotes
    Punct,        ///< operator / punctuator, maximal munch
    Preprocessor, ///< one whole directive line (spliced); text starts at '#'
};

struct Token {
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0; ///< 1-based line of the token's first character
};

struct Comment {
    std::string text; ///< interior text (delimiters stripped)
    int firstLine = 0;
    int lastLine = 0; ///< == firstLine for line comments without splices
    bool block = false;
};

struct LexedFile {
    std::string path; ///< repo-relative, forward slashes
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/// Lexes `source` into tokens + comments. Never throws on malformed input
/// (an unterminated literal is closed at end of file): the linter must
/// degrade gracefully on code the compiler would reject anyway.
LexedFile lex(std::string_view source, std::string path);

} // namespace coplint
