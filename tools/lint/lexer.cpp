#include "lexer.hpp"

#include <cctype>

namespace coplint {

namespace {

/// Cursor over the source with transparent backslash-newline splicing.
/// Raw strings opt out via the raw() accessors.
class Cursor {
public:
    Cursor(std::string_view src) : src_(src) { skipSplice(); }

    bool atEnd() const { return i_ >= src_.size(); }
    int line() const { return line_; }

    /// Current character after splice processing.
    char peek() const { return i_ < src_.size() ? src_[i_] : '\0'; }

    /// Lookahead k spliced characters past the current one.
    char peekAhead(std::size_t k) const {
        std::size_t i = i_;
        int dummy = line_;
        for (std::size_t n = 0; n < k; ++n) {
            if (i >= src_.size()) return '\0';
            advanceFrom(i, dummy);
        }
        return i < src_.size() ? src_[i] : '\0';
    }

    char get() {
        const char c = peek();
        if (!atEnd()) advanceFrom(i_, line_);
        skipSplice();
        return c;
    }

    /// Raw (splice-blind) accessors for raw string bodies.
    char rawPeek() const { return i_ < src_.size() ? src_[i_] : '\0'; }
    char rawGet() {
        if (atEnd()) return '\0';
        const char c = src_[i_++];
        if (c == '\n') ++line_;
        return c;
    }
    /// Re-enables splice skipping after a raw section.
    void resyncSplice() { skipSplice(); }

private:
    /// Advances i past one character, consuming any splice that follows
    /// it so that peek() never sees a backslash-newline pair.
    void advanceFrom(std::size_t& i, int& line) const {
        if (src_[i] == '\n') ++line;
        ++i;
        skipSpliceAt(i, line);
    }

    void skipSplice() { skipSpliceAt(i_, line_); }

    void skipSpliceAt(std::size_t& i, int& line) const {
        while (i < src_.size() && src_[i] == '\\') {
            std::size_t j = i + 1;
            if (j < src_.size() && src_[j] == '\r') ++j;
            if (j < src_.size() && src_[j] == '\n') {
                i = j + 1;
                ++line;
            } else {
                break;
            }
        }
    }

    std::string_view src_;
    std::size_t i_ = 0;
    int line_ = 1;
};

bool isIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Encoding prefixes that may glue onto a string/char literal.
bool isLiteralPrefix(const std::string& id, bool& raw) {
    raw = false;
    if (id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR") {
        raw = true;
        return true;
    }
    return id == "u8" || id == "u" || id == "U" || id == "L";
}

const char* const kPunct3[] = {"<<=", ">>=", "...", "->*"};
const char* const kPunct2[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                               "!=", "&&", "||", "+=", "-=", "*=", "/=",
                               "%=", "&=", "|=", "^=", "++", "--", "##"};

} // namespace

LexedFile lex(std::string_view source, std::string path) {
    LexedFile out;
    out.path = std::move(path);
    Cursor c(source);
    bool atLineStart = true; // only whitespace seen since last newline

    auto push = [&](TokKind k, std::string text, int line) {
        out.tokens.push_back(Token{k, std::move(text), line});
    };

    // Scans a normal (non-raw) string or char literal body; the opening
    // quote has been consumed. Returns interior text.
    auto scanQuoted = [&](char quote) {
        std::string text;
        while (!c.atEnd()) {
            const char ch = c.get();
            if (ch == '\\') {
                if (!c.atEnd()) {
                    text += '\\';
                    text += c.get();
                }
                continue;
            }
            if (ch == quote || ch == '\n') break; // newline: unterminated
            text += ch;
        }
        return text;
    };

    // Scans a raw string body: delim( ... )delim" — the R and opening
    // quote have been consumed.
    auto scanRaw = [&]() {
        std::string delim;
        while (!c.atEnd() && c.rawPeek() != '(' && c.rawPeek() != '"' &&
               c.rawPeek() != '\n' && delim.size() < 16)
            delim += c.rawGet();
        if (c.rawPeek() == '(') c.rawGet();
        const std::string closer = ")" + delim + "\"";
        std::string text;
        while (!c.atEnd()) {
            if (c.rawPeek() == ')' &&
                source.size() > 0) { // candidate closer: compare literally
                // Check the closer without consuming on mismatch.
                std::string tail;
                Cursor probe = c; // cheap copy; Cursor is a small value
                bool matched = true;
                for (char want : closer) {
                    if (probe.rawPeek() != want) {
                        matched = false;
                        break;
                    }
                    tail += probe.rawGet();
                }
                if (matched) {
                    for (std::size_t k = 0; k < closer.size(); ++k)
                        c.rawGet();
                    break;
                }
            }
            text += c.rawGet();
        }
        c.resyncSplice();
        return text;
    };

    while (!c.atEnd()) {
        const char ch = c.peek();
        const int line = c.line();

        if (ch == '\n') {
            c.get();
            atLineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(ch))) {
            c.get();
            continue;
        }

        // Comments.
        if (ch == '/' && c.peekAhead(1) == '/') {
            c.get();
            c.get();
            std::string text;
            // The spliced cursor makes a backslash-continued line comment
            // consume its continuation lines naturally.
            while (!c.atEnd() && c.peek() != '\n') text += c.get();
            out.comments.push_back(Comment{text, line, c.line(), false});
            continue;
        }
        if (ch == '/' && c.peekAhead(1) == '*') {
            c.get();
            c.get();
            std::string text;
            while (!c.atEnd()) {
                if (c.peek() == '*' && c.peekAhead(1) == '/') {
                    c.get();
                    c.get();
                    break;
                }
                text += c.get();
            }
            out.comments.push_back(Comment{text, line, c.line(), true});
            continue;
        }

        // Preprocessor directive: '#' first on its (logical) line.
        if (ch == '#' && atLineStart) {
            std::string text;
            while (!c.atEnd() && c.peek() != '\n') {
                // Comments may appear inside a directive line.
                if (c.peek() == '/' && c.peekAhead(1) == '/') break;
                if (c.peek() == '/' && c.peekAhead(1) == '*') {
                    c.get();
                    c.get();
                    while (!c.atEnd()) {
                        if (c.peek() == '*' && c.peekAhead(1) == '/') {
                            c.get();
                            c.get();
                            break;
                        }
                        c.get();
                    }
                    text += ' ';
                    continue;
                }
                text += c.get();
            }
            push(TokKind::Preprocessor, text, line);
            atLineStart = false;
            continue;
        }
        atLineStart = false;

        // Identifier (possibly a literal prefix).
        if (isIdentStart(ch)) {
            std::string id;
            while (!c.atEnd() && isIdentChar(c.peek())) id += c.get();
            bool raw = false;
            if (isLiteralPrefix(id, raw) &&
                (c.peek() == '"' || (!raw && c.peek() == '\''))) {
                const char quote = c.peek();
                c.get();
                if (raw)
                    push(TokKind::String, scanRaw(), line);
                else if (quote == '"')
                    push(TokKind::String, scanQuoted('"'), line);
                else
                    push(TokKind::CharLit, scanQuoted('\''), line);
                continue;
            }
            push(TokKind::Identifier, std::move(id), line);
            continue;
        }

        // Plain string / char literals.
        if (ch == '"') {
            c.get();
            push(TokKind::String, scanQuoted('"'), line);
            continue;
        }
        if (ch == '\'') {
            c.get();
            push(TokKind::CharLit, scanQuoted('\''), line);
            continue;
        }

        // Numbers (pp-number: digits, idents, quotes-as-separators, and
        // exponent signs glue together).
        if (std::isdigit(static_cast<unsigned char>(ch)) ||
            (ch == '.' &&
             std::isdigit(static_cast<unsigned char>(c.peekAhead(1))))) {
            std::string num;
            num += c.get();
            while (!c.atEnd()) {
                const char n = c.peek();
                if (isIdentChar(n) || n == '.') {
                    num += c.get();
                    continue;
                }
                if (n == '\'' && isIdentChar(c.peekAhead(1))) {
                    c.get(); // digit separator, drop it
                    continue;
                }
                if ((n == '+' || n == '-') && !num.empty()) {
                    const char last = num.back();
                    if (last == 'e' || last == 'E' || last == 'p' ||
                        last == 'P') {
                        num += c.get();
                        continue;
                    }
                }
                break;
            }
            push(TokKind::Number, std::move(num), line);
            continue;
        }

        // Punctuators, maximal munch.
        {
            const char a = ch, b = c.peekAhead(1), d = c.peekAhead(2);
            std::string three{a, b, d};
            bool done = false;
            for (const char* p : kPunct3)
                if (three == p) {
                    c.get();
                    c.get();
                    c.get();
                    push(TokKind::Punct, p, line);
                    done = true;
                    break;
                }
            if (done) continue;
            std::string two{a, b};
            for (const char* p : kPunct2)
                if (two == p) {
                    c.get();
                    c.get();
                    push(TokKind::Punct, p, line);
                    done = true;
                    break;
                }
            if (done) continue;
            c.get();
            push(TokKind::Punct, std::string(1, a), line);
        }
    }
    return out;
}

} // namespace coplint
