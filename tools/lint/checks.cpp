#include "lint.hpp"

#include <algorithm>

namespace coplint {

namespace {

bool ident(const Token& t, const char* text) {
    return t.kind == TokKind::Identifier && t.text == text;
}
bool punct(const Token& t, const char* text) {
    return t.kind == TokKind::Punct && t.text == text;
}

/// True when a comment containing `needle` covers `line` or the line
/// directly above it (annotation on the loop itself or just before it).
bool annotatedNear(const LexedFile& f, int line, const char* needle) {
    for (const auto& c : f.comments) {
        if (c.text.find(needle) == std::string::npos) continue;
        if (line >= c.firstLine && line <= c.lastLine + 1) return true;
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------------
// Check 1: bare synchronization primitives outside the wrapper layer
// ---------------------------------------------------------------------------

void checkBareMutex(const LexedFile& f, const Config& cfg,
                    std::vector<Finding>& out) {
    if (pathInAny(f.path, cfg.mutexExempt)) return;
    static const char* const kBanned[] = {
        "mutex",          "timed_mutex",
        "recursive_mutex", "recursive_timed_mutex",
        "shared_mutex",   "shared_timed_mutex",
        "lock_guard",     "unique_lock",
        "scoped_lock",    "shared_lock",
        "condition_variable", "condition_variable_any",
        "call_once",      "once_flag",
    };
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!ident(t[i], "std") || !punct(t[i + 1], "::")) continue;
        const Token& name = t[i + 2];
        if (name.kind != TokKind::Identifier) continue;
        for (const char* b : kBanned) {
            if (name.text != b) continue;
            out.push_back(Finding{
                f.path, name.line, "copernicus-bare-mutex",
                "std::" + name.text +
                    " outside src/util/ — use util::Mutex / util::LockGuard"
                    " / util::UniqueLock (src/util/mutex.hpp) so the"
                    " thread-safety annotations and the lock-order detector"
                    " see this lock"});
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Check 2: nondeterminism in the replay/trace-hash-critical planes
// ---------------------------------------------------------------------------

void checkNondeterminism(const LexedFile& f, const Config& cfg,
                         const TreeContext& tree, std::vector<Finding>& out) {
    if (!pathInAny(f.path, cfg.nondetDirs)) return;
    const auto& t = f.tokens;

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier) continue;
        const bool qualifiedNonStd =
            i >= 2 && punct(t[i - 1], "::") && !ident(t[i - 2], "std") &&
            !ident(t[i - 2], "chrono");
        if (qualifiedNonStd) continue; // util::rand-style wrappers are fine
        auto flag = [&](const std::string& msg) {
            out.push_back(Finding{f.path, t[i].line,
                                  "copernicus-nondeterminism", msg});
        };
        if ((t[i].text == "rand" || t[i].text == "srand") && i + 1 < t.size() &&
            punct(t[i + 1], "(")) {
            flag(t[i].text + "() breaks replay determinism — use the seeded "
                 "cop::Rng (util/random.hpp)");
        } else if (t[i].text == "random_device") {
            flag("std::random_device is nondeterministic by design — derive "
                 "seeds from the deployment/chaos seed instead");
        } else if (t[i].text == "system_clock" || t[i].text == "steady_clock" ||
                   t[i].text == "high_resolution_clock") {
            flag("wall-clock time (" + t[i].text +
                 ") in a replay-critical plane — use EventLoop::now() "
                 "sim-time");
        } else if (t[i].text == "getenv") {
            flag("getenv-derived behavior differs across hosts/runs — thread "
                 "configuration through explicit config structs");
        }
    }

    // Iteration over unordered containers: range-for whose range names a
    // declared unordered_{map,set} variable, or an explicit .begin() walk.
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (ident(t[i], "for") && punct(t[i + 1], "(")) {
            const std::size_t close = matchForward(t, i + 1);
            if (close >= t.size()) continue;
            // Find a single ":" at paren depth 1 (range-for separator).
            int depth = 0;
            std::size_t colon = 0;
            for (std::size_t k = i + 1; k < close; ++k) {
                if (punct(t[k], "(")) ++depth;
                else if (punct(t[k], ")")) --depth;
                else if (depth == 1 && punct(t[k], ":")) {
                    colon = k;
                    break;
                }
            }
            if (colon == 0) continue;
            for (std::size_t k = colon + 1; k < close; ++k) {
                if (t[k].kind != TokKind::Identifier) continue;
                if (tree.unorderedVars.count(t[k].text) == 0) continue;
                if (annotatedNear(f, t[i].line, "order-insensitive")) break;
                out.push_back(Finding{
                    f.path, t[i].line, "copernicus-nondeterminism",
                    "range-for over unordered container '" + t[k].text +
                        "' — hash-order iteration breaks snapshot/trace "
                        "determinism; sort keys at the emission boundary or "
                        "annotate `// order-insensitive: <why>`"});
                break;
            }
        }
        // explicit iterator walk: var.begin() / var.cbegin()
        if (t[i].kind == TokKind::Identifier &&
            tree.unorderedVars.count(t[i].text) > 0 && punct(t[i + 1], ".") &&
            (ident(t[i + 2], "begin") || ident(t[i + 2], "cbegin") ||
             ident(t[i + 2], "rbegin"))) {
            if (annotatedNear(f, t[i].line, "order-insensitive")) continue;
            out.push_back(Finding{
                f.path, t[i].line, "copernicus-nondeterminism",
                "iterator walk over unordered container '" + t[i].text +
                    "' — hash-order iteration breaks snapshot/trace "
                    "determinism; sort keys at the emission boundary or "
                    "annotate `// order-insensitive: <why>`"});
        }
    }
}

// ---------------------------------------------------------------------------
// Check 3: untrusted length prefixes sizing allocations
// ---------------------------------------------------------------------------

namespace {

/// True if the statement token range contains `read` `<` ... (a raw
/// scalar read) — the length-prefix producers.
bool containsRawRead(const std::vector<Token>& t, std::size_t b,
                     std::size_t e) {
    for (std::size_t i = b; i + 1 < e; ++i)
        if (ident(t[i], "read") && punct(t[i + 1], "<")) return true;
    for (std::size_t i = b; i < e; ++i)
        if (ident(t[i], "readU32") || ident(t[i], "readU64")) return true;
    return false;
}

bool containsValidatedRead(const std::vector<Token>& t, std::size_t b,
                           std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
        if (ident(t[i], "readCount")) return true;
    return false;
}

bool isCheckMacro(const std::string& s) {
    return s.find("CHECK") != std::string::npos ||
           s.find("REQUIRE") != std::string::npos ||
           s.find("assert") != std::string::npos || s == "min";
}

} // namespace

void checkUntrustedLength(const LexedFile& f, const Config& cfg,
                          std::vector<Finding>& out) {
    bool scoped = false;
    for (const auto& uf : cfg.untrustedFiles)
        if (f.path == uf) scoped = true;
    if (!scoped) return;

    const auto& t = f.tokens;
    for (const auto& fn : findFunctions(f)) {
        std::set<std::string> tainted;   // raw length reads, unvalidated
        std::set<std::string> validated; // passed a cap / readCount
        std::size_t s = fn.beginTok + 1;
        while (s < fn.endTok) {
            // Statement = tokens up to ';' or a brace boundary.
            std::size_t e = s;
            while (e < fn.endTok && !punct(t[e], ";") && !punct(t[e], "{") &&
                   !punct(t[e], "}"))
                ++e;

            // (a) taint assignment:  x = ...read<...>...   (no readCount)
            // (b) sanctified assignment: x = ...readCount(...)...
            for (std::size_t i = s; i + 1 < e; ++i) {
                if (!punct(t[i + 1], "=") ||
                    t[i].kind != TokKind::Identifier)
                    continue;
                const std::string& var = t[i].text;
                if (containsValidatedRead(t, i + 2, e)) {
                    validated.insert(var);
                    tainted.erase(var);
                } else if (containsRawRead(t, i + 2, e)) {
                    tainted.insert(var);
                    validated.erase(var);
                }
            }

            // (c) validation statement: a tainted var compared against a
            // bound, or passed through a CHECK/REQUIRE/min-style guard.
            if (!containsRawRead(t, s, e)) {
                bool guard = false;
                for (std::size_t i = s; i < e; ++i) {
                    if (t[i].kind == TokKind::Punct &&
                        (t[i].text == "<" || t[i].text == ">" ||
                         t[i].text == "<=" || t[i].text == ">=" ||
                         t[i].text == "==" || t[i].text == "!="))
                        guard = true;
                    if (t[i].kind == TokKind::Identifier &&
                        isCheckMacro(t[i].text))
                        guard = true;
                }
                if (guard)
                    for (std::size_t i = s; i < e; ++i)
                        if (t[i].kind == TokKind::Identifier &&
                            tainted.count(t[i].text)) {
                            validated.insert(t[i].text);
                            tainted.erase(t[i].text);
                        }
            }

            // (d) violation: resize/reserve/new[] sized by tainted data.
            for (std::size_t i = s; i + 1 < e; ++i) {
                const bool alloc = (ident(t[i], "resize") ||
                                    ident(t[i], "reserve")) &&
                                   punct(t[i + 1], "(");
                const bool arr = ident(t[i], "new");
                if (!alloc && !arr) continue;
                std::size_t argB = 0, argE = 0;
                if (alloc) {
                    argB = i + 1;
                    argE = matchForward(t, argB);
                } else {
                    // new T[expr]
                    std::size_t k = i + 1;
                    while (k < e && !punct(t[k], "[") && !punct(t[k], ";"))
                        ++k;
                    if (k >= e || !punct(t[k], "[")) continue;
                    argB = k;
                    argE = matchForward(t, argB);
                }
                if (argE >= fn.endTok) continue;
                bool bad = containsRawRead(t, argB, argE);
                std::string via = "a raw length-prefix read";
                for (std::size_t k = argB + 1; !bad && k < argE; ++k)
                    if (t[k].kind == TokKind::Identifier &&
                        tainted.count(t[k].text)) {
                        bad = true;
                        via = "'" + t[k].text + "' (raw length-prefix read)";
                    }
                if (bad)
                    out.push_back(Finding{
                        f.path, t[i].line, "copernicus-untrusted-length",
                        "allocation sized by " + via + " in " +
                            fn.qualified +
                            " without a readCount()/cap check first — a "
                            "hostile prefix buys a multi-GiB allocation "
                            "before parsing fails"});
            }

            s = e + 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Check 4: exhaustive switches over wire/WAL tag enums, no default:
// ---------------------------------------------------------------------------

void checkSwitchEnum(const LexedFile& f, const TreeContext& tree,
                     std::vector<Finding>& out) {
    if (tree.enums.empty()) return;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!ident(t[i], "switch") || !punct(t[i + 1], "(")) continue;
        const std::size_t condClose = matchForward(t, i + 1);
        if (condClose + 1 >= t.size() || !punct(t[condClose + 1], "{"))
            continue;
        const std::size_t bodyOpen = condClose + 1;
        const std::size_t bodyClose = matchForward(t, bodyOpen);
        if (bodyClose >= t.size()) continue;

        // Collect case labels and default: at this switch's own depth.
        const EnumDef* target = nullptr;
        std::set<std::string> used;
        int defaultLine = 0;
        int depth = 0;
        for (std::size_t k = bodyOpen; k < bodyClose; ++k) {
            if (punct(t[k], "{")) ++depth;
            else if (punct(t[k], "}")) --depth;
            if (depth != 1) continue;
            if (ident(t[k], "default") && k + 1 < bodyClose &&
                punct(t[k + 1], ":"))
                defaultLine = t[k].line;
            if (!ident(t[k], "case")) continue;
            // Label tokens up to ':' (skipping '::').
            std::size_t e = k + 1;
            while (e < bodyClose && !(punct(t[e], ":")) ) ++e;
            // Pattern ...  Qualifier :: Enumerator  — identify the enum by
            // the identifier right before the last "::".
            for (std::size_t m = k + 1; m + 2 < e + 1 && m + 2 <= e; ++m) {
                if (t[m].kind == TokKind::Identifier &&
                    punct(t[m + 1], "::") &&
                    t[m + 2].kind == TokKind::Identifier) {
                    for (const auto& def : tree.enums)
                        if (def.name == t[m].text) {
                            target = &def;
                            used.insert(t[m + 2].text);
                        }
                }
            }
            k = e;
        }
        if (!target) continue;

        if (defaultLine != 0)
            out.push_back(Finding{
                f.path, defaultLine, "copernicus-switch-enum",
                "default: arm in a switch over " + target->name +
                    " — enumerate every case so adding an enumerator is a "
                    "compile-time/lint-time event, and handle the "
                    "out-of-range byte before or after the switch"});
        std::vector<std::string> missing;
        for (const auto& en : target->enumerators)
            if (used.count(en) == 0) missing.push_back(en);
        if (!missing.empty()) {
            std::string list;
            for (const auto& m : missing)
                list += (list.empty() ? "" : ", ") + m;
            out.push_back(Finding{
                f.path, t[i].line, "copernicus-switch-enum",
                "switch over " + target->name +
                    " does not enumerate: " + list});
        }
    }
}

// ---------------------------------------------------------------------------
// Check 5: blocking calls on event-loop-reachable code
// ---------------------------------------------------------------------------

void checkBlocking(const LexedFile& f, const Config& cfg,
                   std::vector<Finding>& out) {
    if (!pathInAny(f.path, cfg.nondetDirs)) return;

    auto allowed = [&](const std::string& fnName) {
        for (const auto& [file, fn] : cfg.blockingAllow)
            if (file == f.path && (fn == "*" || fn == fnName)) return true;
        return false;
    };

    static const char* const kBlocking[] = {
        "fdatasync", "fsync",       "posix_fallocate", "ftruncate",
        "pread",     "pwrite",      "mmap",            "munmap",
        "sleep_for", "sleep_until", "usleep",          "nanosleep",
    };
    // Global-scope-qualified POSIX calls: `::read(`, `::write(`, `::open(`.
    static const char* const kGlobalBlocking[] = {"read", "write", "open"};

    const auto& t = f.tokens;
    const auto functions = findFunctions(f);
    auto enclosing = [&](std::size_t tokIdx) -> const FunctionSpan* {
        for (const auto& fn : functions)
            if (tokIdx >= fn.beginTok && tokIdx < fn.endTok) return &fn;
        return nullptr;
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier) continue;
        bool hit = false;
        for (const char* b : kBlocking)
            if (t[i].text == b) hit = true;
        if (!hit && i > 0 && punct(t[i - 1], "::") &&
            (i < 2 || t[i - 2].kind != TokKind::Identifier) &&
            i + 1 < t.size() && punct(t[i + 1], "(")) {
            for (const char* b : kGlobalBlocking)
                if (t[i].text == b) hit = true;
        }
        if (!hit) continue;
        const FunctionSpan* fn = enclosing(i);
        const std::string fnName = fn ? fn->name : "<file scope>";
        if (allowed(fnName)) continue;
        out.push_back(Finding{
            f.path, t[i].line, "copernicus-blocking",
            t[i].text + " in " + (fn ? fn->qualified : fnName) +
                " — blocking syscalls stall every tenant sharing the "
                "event loop; route durability through the WAL group-commit "
                "path or add a lint_config blocking-allow entry with a "
                "justification"});
    }
}

} // namespace coplint
