#pragma once

/// \file lint.hpp
/// copernicus_lint — repo-invariant static analysis for the Copernicus
/// tree. Five checks, each suppressible inline with a written reason:
///
///   copernicus-bare-mutex        std::mutex / lock_guard / scoped_lock /
///                                condition_variable ... outside src/util/
///                                (everything goes through util::Mutex so
///                                the thread-safety annotations and the
///                                lock-order detector see every lock)
///   copernicus-nondeterminism    rand() / random_device / system_clock /
///                                getenv and iteration over unordered
///                                containers in the replay- and
///                                trace-hash-critical planes (src/core,
///                                src/net)
///   copernicus-untrusted-length  resize/reserve/new[] sized by a raw
///                                length-prefix read without a readCount /
///                                cap check first (wire / WAL / codec
///                                decode surfaces)
///   copernicus-switch-enum       switches over wire/WAL tag enums must
///                                enumerate every enumerator and carry no
///                                default: arm
///   copernicus-blocking          fdatasync / fsync / sleep_for / raw
///                                ::read / ::write etc. on event-loop
///                                reachable code outside the allow-listed
///                                WAL/segment-store paths
///
/// Suppression grammar (reason is mandatory — a reasonless NOLINT is
/// itself a finding):
///
///   code;  // NOLINT(copernicus-blocking): why this one is safe
///   // NOLINTNEXTLINE(copernicus-bare-mutex): why
///   code;
///
/// The nondeterminism check additionally honors an order-insensitivity
/// annotation on (or immediately above) an unordered-container loop:
///
///   for (const auto& id : seen_)  // order-insensitive: count only
///
/// Configuration lives in tools/lint/lint_config (see that file for the
/// line grammar); checks are data-driven so the fixture suite can run
/// them against synthetic trees.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace coplint {

struct Finding {
    std::string file;
    int line = 0;
    std::string check;   ///< "copernicus-..." name
    std::string message;

    std::string render() const;
    bool operator<(const Finding& o) const {
        if (file != o.file) return file < o.file;
        if (line != o.line) return line < o.line;
        if (check != o.check) return check < o.check;
        return message < o.message;
    }
};

/// Parsed lint_config. All paths are repo-relative with forward slashes;
/// directory entries are prefix matches, file entries exact matches.
struct Config {
    std::vector<std::string> lintDirs;     ///< tree roots to walk
    std::vector<std::string> skipDirs;     ///< subtrees never linted
    std::vector<std::string> mutexExempt;  ///< bare-mutex allowed here
    std::vector<std::string> nondetDirs;   ///< nondeterminism + blocking scope
    std::vector<std::string> untrustedFiles; ///< untrusted-length scope
    /// (file, function) pairs allowed to block; function "*" = whole file.
    std::vector<std::pair<std::string, std::string>> blockingAllow;
    /// (enum name, defining header) pairs for the switch check.
    std::vector<std::pair<std::string, std::string>> switchEnums;
};

/// Parses the config text; returns false and sets `error` on a malformed
/// line (unknown directive or missing operand).
bool parseConfig(const std::string& text, Config& out, std::string& error);

/// An enum class definition recovered from a header.
struct EnumDef {
    std::string name;
    std::vector<std::string> enumerators;
};

/// Cross-file facts gathered in a first pass over every lexed file.
struct TreeContext {
    std::vector<EnumDef> enums;
    /// Variable names declared anywhere with an unordered_{map,set,
    /// multimap,multiset} type. Name-keyed on purpose: the iteration
    /// check must catch a loop in a .cpp over a member declared in the
    /// matching header without doing real semantic analysis.
    std::set<std::string> unorderedVars;
};

/// First-pass collectors.
void collectEnumDefs(const LexedFile& f, const std::vector<std::string>& names,
                     std::vector<EnumDef>& out);
void collectUnorderedVars(const LexedFile& f, std::set<std::string>& out);

/// Individual checks (exposed for the unit/golden tests).
void checkBareMutex(const LexedFile& f, const Config& cfg,
                    std::vector<Finding>& out);
void checkNondeterminism(const LexedFile& f, const Config& cfg,
                         const TreeContext& tree, std::vector<Finding>& out);
void checkUntrustedLength(const LexedFile& f, const Config& cfg,
                          std::vector<Finding>& out);
void checkSwitchEnum(const LexedFile& f, const TreeContext& tree,
                     std::vector<Finding>& out);
void checkBlocking(const LexedFile& f, const Config& cfg,
                   std::vector<Finding>& out);

/// Runs every check on one file, then applies NOLINT suppressions.
/// Reasonless suppressions surface as copernicus-nolint findings.
std::vector<Finding> lintFile(const LexedFile& f, const Config& cfg,
                              const TreeContext& tree);

/// Function-span segmentation used by the untrusted-length and blocking
/// checks (exposed for tests). Heuristic, token-level: a `){` at file or
/// class scope opens a function named by the identifier chain before the
/// matching `(`; lambdas and nested blocks inherit the enclosing name.
struct FunctionSpan {
    std::string name;      ///< unqualified (last identifier)
    std::string qualified; ///< e.g. "Wal::flush"
    std::size_t beginTok = 0; ///< index of the opening `{`
    std::size_t endTok = 0;   ///< index one past the closing `}`
};
std::vector<FunctionSpan> findFunctions(const LexedFile& f);

/// All check names, for --list-checks and arg validation.
const std::vector<std::string>& allCheckNames();

/// Token-stream helpers shared by the checks (and their tests).
bool pathInAny(const std::string& path,
               const std::vector<std::string>& prefixes);
std::size_t matchForward(const std::vector<Token>& toks, std::size_t open);
std::size_t matchAngle(const std::vector<Token>& toks, std::size_t open);

} // namespace coplint
