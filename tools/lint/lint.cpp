#include "lint.hpp"

#include <algorithm>
#include <sstream>

namespace coplint {

std::string Finding::render() const {
    std::ostringstream os;
    os << file << ":" << line << ": [" << check << "] " << message;
    return os.str();
}

const std::vector<std::string>& allCheckNames() {
    static const std::vector<std::string> names = {
        "copernicus-bare-mutex",     "copernicus-nondeterminism",
        "copernicus-untrusted-length", "copernicus-switch-enum",
        "copernicus-blocking",       "copernicus-nolint",
    };
    return names;
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

bool parseConfig(const std::string& text, Config& out, std::string& error) {
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream ls(line);
        std::string directive;
        if (!(ls >> directive)) continue; // blank / comment-only
        std::string a, b;
        ls >> a >> b;
        auto need = [&](const std::string& v, const char* what) {
            if (!v.empty()) return true;
            error = "lint_config:" + std::to_string(lineNo) + ": " +
                    directive + " needs " + what;
            return false;
        };
        if (directive == "lint-dir") {
            if (!need(a, "a path")) return false;
            out.lintDirs.push_back(a);
        } else if (directive == "skip-dir") {
            if (!need(a, "a path")) return false;
            out.skipDirs.push_back(a);
        } else if (directive == "mutex-exempt") {
            if (!need(a, "a path prefix")) return false;
            out.mutexExempt.push_back(a);
        } else if (directive == "nondet-dir") {
            if (!need(a, "a path prefix")) return false;
            out.nondetDirs.push_back(a);
        } else if (directive == "untrusted-file") {
            if (!need(a, "a file path")) return false;
            out.untrustedFiles.push_back(a);
        } else if (directive == "blocking-allow") {
            if (!need(a, "a file path")) return false;
            out.blockingAllow.emplace_back(a, b.empty() ? "*" : b);
        } else if (directive == "switch-enum") {
            if (!need(a, "an enum name") || !need(b, "a header path"))
                return false;
            out.switchEnums.emplace_back(a, b);
        } else {
            error = "lint_config:" + std::to_string(lineNo) +
                    ": unknown directive '" + directive + "'";
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

namespace {

bool hasPrefix(const std::string& s, const std::string& prefix) {
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool isIdent(const Token& t, const char* text) {
    return t.kind == TokKind::Identifier && t.text == text;
}

} // namespace

bool pathInAny(const std::string& path,
               const std::vector<std::string>& prefixes) {
    for (const auto& p : prefixes)
        if (hasPrefix(path, p)) return true;
    return false;
}

/// Finds the index of the matching close for the open bracket at `open`
/// (tokens[open] must be "(", "{" or "["). Returns tokens.size() when
/// unbalanced. Treats ">>" as opaque (not an angle matcher).
std::size_t matchForward(const std::vector<Token>& toks, std::size_t open) {
    const std::string& o = toks[open].text;
    const std::string close = o == "(" ? ")" : o == "{" ? "}" : "]";
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Punct) continue;
        if (toks[i].text == o) ++depth;
        else if (toks[i].text == close && --depth == 0) return i;
    }
    return toks.size();
}

/// Matches a template argument list starting at the "<" at `open`;
/// understands ">>" closing two lists. Returns the index of the token
/// containing the final ">" (which may be a ">>" token).
std::size_t matchAngle(const std::vector<Token>& toks, std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Punct) continue;
        if (toks[i].text == "<") ++depth;
        else if (toks[i].text == ">") {
            if (--depth == 0) return i;
        } else if (toks[i].text == ">>") {
            depth -= 2;
            if (depth <= 0) return i;
        } else if (toks[i].text == ";" || toks[i].text == "{") {
            break; // not a template argument list after all
        }
    }
    return toks.size();
}

// ---------------------------------------------------------------------------
// First-pass collectors
// ---------------------------------------------------------------------------

void collectEnumDefs(const LexedFile& f, const std::vector<std::string>& names,
                     std::vector<EnumDef>& out) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!isIdent(t[i], "enum")) continue;
        std::size_t j = i + 1;
        if (isIdent(t[j], "class") || isIdent(t[j], "struct")) ++j;
        if (j >= t.size() || t[j].kind != TokKind::Identifier) continue;
        const std::string& name = t[j].text;
        if (std::find(names.begin(), names.end(), name) == names.end())
            continue;
        ++j;
        // Optional underlying type: ": std::uint8_t".
        if (j < t.size() && t[j].text == ":") {
            ++j;
            while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
        }
        if (j >= t.size() || t[j].text != "{") continue; // fwd declaration
        const std::size_t close = matchForward(t, j);
        EnumDef def;
        def.name = name;
        // Enumerators: identifiers at depth 1 that open a new entry (the
        // previous meaningful token is "{" or ",").
        bool expectName = true;
        for (std::size_t k = j + 1; k < close; ++k) {
            if (expectName && t[k].kind == TokKind::Identifier) {
                def.enumerators.push_back(t[k].text);
                expectName = false;
            } else if (t[k].kind == TokKind::Punct && t[k].text == ",") {
                expectName = true;
            }
        }
        out.push_back(std::move(def));
    }
}

void collectUnorderedVars(const LexedFile& f, std::set<std::string>& out) {
    static const char* const kUnordered[] = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier) continue;
        bool hit = false;
        for (const char* u : kUnordered)
            if (t[i].text == u) {
                hit = true;
                break;
            }
        if (!hit || t[i + 1].text != "<") continue;
        std::size_t close = matchAngle(t, i + 1);
        if (close >= t.size()) continue;
        std::size_t j = close + 1;
        if (j >= t.size() || t[j].kind != TokKind::Identifier) continue;
        // Declarator: "unordered_map<...> name ;|=|{|," — a call or cast
        // would have "(" or "::" next instead.
        if (j + 1 < t.size() &&
            (t[j + 1].text == ";" || t[j + 1].text == "=" ||
             t[j + 1].text == "{" || t[j + 1].text == ","))
            out.insert(t[j].text);
    }
}

// ---------------------------------------------------------------------------
// Function segmentation
// ---------------------------------------------------------------------------

std::vector<FunctionSpan> findFunctions(const LexedFile& f) {
    const auto& t = f.tokens;
    std::vector<FunctionSpan> out;
    static const char* const kControl[] = {"if",     "while", "for",
                                           "switch", "catch", "return"};
    std::size_t i = 0;
    // Stack of (closeIndex) for braces inside the current function.
    std::vector<std::size_t> inFunctionUntil;
    while (i < t.size()) {
        if (t[i].kind == TokKind::Punct && t[i].text == "{") {
            if (!inFunctionUntil.empty()) {
                ++i;
                continue; // nested block of a recorded function
            }
            // Candidate function body? Walk back over specifiers.
            std::size_t p = i;
            auto prev = [&](std::size_t k) {
                return k > 0 ? k - 1 : std::size_t(0);
            };
            std::size_t q = prev(p);
            while (q > 0 && t[q].kind == TokKind::Identifier &&
                   (t[q].text == "const" || t[q].text == "noexcept" ||
                    t[q].text == "override" || t[q].text == "final"))
                q = prev(q);
            // Trailing return type: ") -> Type {". Walk back to ")".
            while (q > 0 && t[q].text != ")" && t[q].text != ";" &&
                   t[q].text != "{" && t[q].text != "}" && t[q].text != "=")
                q = prev(q);
            if (q > 0 && t[q].text == ")") {
                // Find matching "(" backwards.
                int depth = 0;
                std::size_t openParen = q;
                for (std::size_t k = q;; --k) {
                    if (t[k].kind == TokKind::Punct) {
                        if (t[k].text == ")") ++depth;
                        else if (t[k].text == "(" && --depth == 0) {
                            openParen = k;
                            break;
                        }
                    }
                    if (k == 0) break;
                }
                if (openParen > 0 && openParen != q) {
                    std::size_t n = prev(openParen);
                    bool control = false;
                    if (t[n].kind == TokKind::Identifier)
                        for (const char* c : kControl)
                            if (t[n].text == c) control = true;
                    // Lambda bodies at namespace scope ("] () {") and
                    // init-parens are skipped: not a named function head.
                    if (!control && t[n].kind == TokKind::Identifier) {
                        FunctionSpan fn;
                        fn.name = t[n].text;
                        if (t[n].text == "operator") fn.name = "operator()";
                        // Qualified chain: A::B::name (and ~dtor).
                        std::string qual = fn.name;
                        std::size_t w = n;
                        if (w > 0 && t[w - 1].text == "~") {
                            fn.name = "~" + fn.name;
                            qual = fn.name;
                            --w;
                        }
                        while (w >= 2 && t[w - 1].text == "::" &&
                               t[w - 2].kind == TokKind::Identifier) {
                            qual = t[w - 2].text + "::" + qual;
                            w -= 2;
                        }
                        fn.qualified = qual;
                        fn.beginTok = i;
                        const std::size_t close = matchForward(t, i);
                        fn.endTok = close < t.size() ? close + 1 : t.size();
                        inFunctionUntil.push_back(fn.endTok);
                        out.push_back(std::move(fn));
                        ++i;
                        continue;
                    }
                }
            }
            ++i;
            continue;
        }
        if (!inFunctionUntil.empty() && i >= inFunctionUntil.back())
            inFunctionUntil.pop_back();
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

namespace {

struct Suppression {
    std::vector<std::string> checks;
    int line = 0;      ///< line the suppression applies to
    bool hasReason = false;
    int commentLine = 0;
};

/// Extracts NOLINT / NOLINTNEXTLINE suppressions from a comment.
void parseNolint(const Comment& c, std::vector<Suppression>& out) {
    const std::string& s = c.text;
    std::size_t pos = 0;
    while ((pos = s.find("NOLINT", pos)) != std::string::npos) {
        bool nextLine = s.compare(pos, 14, "NOLINTNEXTLINE") == 0;
        std::size_t p = pos + (nextLine ? 14 : 6);
        pos = p;
        if (p >= s.size() || s[p] != '(') continue;
        const std::size_t close = s.find(')', p);
        if (close == std::string::npos) continue;
        Suppression sup;
        std::string inner = s.substr(p + 1, close - p - 1);
        std::istringstream names(inner);
        std::string name;
        while (std::getline(names, name, ',')) {
            const auto b = name.find_first_not_of(" \t");
            const auto e = name.find_last_not_of(" \t");
            if (b != std::string::npos)
                sup.checks.push_back(name.substr(b, e - b + 1));
        }
        // Mandatory reason: "): <non-empty text>".
        std::size_t r = close + 1;
        while (r < s.size() && (s[r] == ' ' || s[r] == '\t')) ++r;
        if (r < s.size() && s[r] == ':') {
            ++r;
            while (r < s.size() && (s[r] == ' ' || s[r] == '\t')) ++r;
            sup.hasReason = r < s.size() &&
                            s.find_first_not_of(" \t\r\n", r) !=
                                std::string::npos;
        }
        sup.commentLine = c.firstLine;
        sup.line = nextLine ? c.lastLine + 1 : c.firstLine;
        out.push_back(std::move(sup));
        pos = close;
    }
}

} // namespace

static void applySuppressions(const LexedFile& f, std::vector<Finding>& fs) {
    std::vector<Suppression> sups;
    for (const auto& c : f.comments) parseNolint(c, sups);
    // Also: multi-line block comments suppress every line they span.
    std::vector<Finding> kept;
    std::vector<bool> used(sups.size(), false);
    for (auto& fd : fs) {
        bool drop = false;
        for (std::size_t i = 0; i < sups.size(); ++i) {
            const auto& s = sups[i];
            if (s.line != fd.line) continue;
            const bool names =
                std::find(s.checks.begin(), s.checks.end(), fd.check) !=
                s.checks.end();
            if (!names) continue;
            used[i] = true;
            if (s.hasReason) {
                drop = true;
            } // reasonless: finding stays AND the nolint check fires below
        }
        if (!drop) kept.push_back(std::move(fd));
    }
    for (std::size_t i = 0; i < sups.size(); ++i) {
        const auto& s = sups[i];
        if (s.hasReason) continue;
        // A reasonless suppression is a finding whether or not it matched
        // anything: the policy is that every suppression documents itself.
        kept.push_back(Finding{
            f.path, s.commentLine, "copernicus-nolint",
            "NOLINT suppression without a reason; write "
            "`NOLINT(<check>): <why this is safe>`"});
    }
    // Unknown check names in suppressions are flagged too — a typo would
    // otherwise silently fail to suppress in some future refactor.
    for (const auto& s : sups) {
        for (const auto& name : s.checks) {
            const auto& all = allCheckNames();
            if (std::find(all.begin(), all.end(), name) == all.end())
                kept.push_back(Finding{f.path, s.commentLine,
                                       "copernicus-nolint",
                                       "unknown check '" + name +
                                           "' in NOLINT suppression"});
        }
    }
    fs = std::move(kept);
}

std::vector<Finding> lintFile(const LexedFile& f, const Config& cfg,
                              const TreeContext& tree) {
    std::vector<Finding> out;
    checkBareMutex(f, cfg, out);
    checkNondeterminism(f, cfg, tree, out);
    checkUntrustedLength(f, cfg, out);
    checkSwitchEnum(f, tree, out);
    checkBlocking(f, cfg, out);
    applySuppressions(f, out);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace coplint
