/// The `copernicus` command-line tool: drives the framework the way the
/// paper's command-line client would. Subcommands:
///
///   copernicus fold     — run an MSM adaptive-sampling folding project
///   copernicus bar      — run a BAR free-energy project
///   copernicus scaling  — simulate the controller at a given core count
///   copernicus info     — print model, units and calibration constants
///
/// Run with no arguments for usage.

#include <cstdio>

#include "core/backends.hpp"
#include "core/bar_controller.hpp"
#include "core/copernicus.hpp"
#include "core/msm_controller.hpp"
#include "mdlib/observables.hpp"
#include "mdlib/pdb.hpp"
#include "mdlib/proteins.hpp"
#include "mdlib/units.hpp"
#include "perfmodel/scaling.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace cop;

namespace {

int usage() {
    std::printf(
        "copernicus — parallel adaptive molecular dynamics (SC11 "
        "reproduction)\n\n"
        "  copernicus fold [--starts N] [--tasks N] [--generations N]\n"
        "                  [--clusters N] [--workers N] [--seed N]\n"
        "                  [--pdb out.pdb]\n"
        "      Run the villin MSM adaptive-sampling project.\n\n"
        "  copernicus bar [--windows N] [--target-error X] [--seed N]\n"
        "      Run the BAR free-energy project on the harmonic chain.\n\n"
        "  copernicus scaling --total N [--cores-per-sim M]\n"
        "                     [--generations G] [--stop-generation S]\n"
        "      Simulate the controller's activity (Figs. 7-9 machinery).\n\n"
        "  copernicus info\n"
        "      Print model, unit-mapping and calibration constants.\n");
    return 2;
}

int cmdFold(const CliArgs& args) {
    core::Deployment dep(std::uint64_t(args.getInt("seed", 2011)));
    auto& server = dep.addServer("project-server");
    const long workers = args.getInt("workers", 4);
    for (long w = 0; w < workers; ++w) {
        core::ExecutableRegistry reg;
        reg.add("mdrun", core::makeMdrunExecutable(
                             core::linearDurationModel(0.5)));
        dep.addWorker("worker" + std::to_string(w), server,
                      core::WorkerConfig{}, std::move(reg),
                      core::links::intraCluster());
    }

    auto model = md::villinGoModel();
    core::MsmControllerParams mp;
    mp.model = model;
    mp.startingConformations = md::makeUnfoldedConformations(
        model, std::size_t(args.getInt("starts", 4)),
        std::uint64_t(args.getInt("seed", 2011)) * 7919 + 1);
    mp.tasksPerStart = int(args.getInt("tasks", 4));
    mp.maxGenerations = int(args.getInt("generations", 4));
    mp.pipeline.numClusters = std::size_t(args.getInt("clusters", 60));
    mp.pipeline.snapshotStride = 3;
    mp.simulation = md::villinSimulationConfig();
    mp.seed = std::uint64_t(args.getInt("seed", 2011));
    auto controller = std::make_unique<core::MsmController>(mp);
    auto* msm = controller.get();
    server.createProject("msm_villin", std::move(controller));

    std::printf("folding: %ld starts x %ld tasks, %ld generations, "
                "%ld workers\n",
                args.getInt("starts", 4), args.getInt("tasks", 4),
                args.getInt("generations", 4), workers);
    const bool done = dep.runUntilDone(1e12);

    Table table({"gen", "snapshots", "min RMSD (A)", "folded frac",
                 "blind pred (A)"});
    for (const auto& rec : msm->history())
        table.addRow({std::to_string(rec.generation),
                      std::to_string(rec.totalSnapshots),
                      formatFixed(rec.minRmsdAngstrom, 2),
                      formatFixed(rec.foldedFraction, 3),
                      formatFixed(rec.predictedRmsdAngstrom, 2)});
    std::printf("%s", table.render().c_str());
    std::printf("best structure: %.2f A from native\n",
                msm->minRmsdAngstrom());

    const auto pdbPath = args.getString("pdb", "");
    if (!pdbPath.empty()) {
        // Export the closest-to-native frame.
        double best = 1e30;
        std::vector<Vec3> bestPos;
        for (const auto& [id, traj] : msm->trajectories()) {
            for (const auto& frame : traj.frames()) {
                const double r = md::toAngstrom(
                    md::rmsd(model.native, frame.positions));
                if (r < best) {
                    best = r;
                    bestPos = frame.positions;
                }
            }
        }
        md::superimpose(model.native, bestPos);
        const auto pdb = md::pdbString({model.native, bestPos},
                                       "native vs best sampled frame");
        writeFile(pdbPath,
                  std::span(reinterpret_cast<const std::uint8_t*>(
                                pdb.data()),
                            pdb.size()));
        std::printf("wrote %s\n", pdbPath.c_str());
    }
    return done ? 0 : 1;
}

int cmdBar(const CliArgs& args) {
    core::Deployment dep(1976);
    auto& server = dep.addServer("fe-server");
    for (int w = 0; w < 3; ++w) {
        core::ExecutableRegistry reg;
        reg.add("fe_sample", core::makeFeSampleExecutable(
                                 core::linearDurationModel(0.01)));
        dep.addWorker("worker" + std::to_string(w), server,
                      core::WorkerConfig{}, std::move(reg),
                      core::links::intraCluster());
    }
    core::BarControllerParams bp;
    bp.numWindows = std::size_t(args.getInt("windows", 5));
    bp.targetError = args.getDouble("target-error", 0.02);
    bp.seed = std::uint64_t(args.getInt("seed", 1976));
    auto controller = std::make_unique<core::BarController>(bp);
    auto* barCtrl = controller.get();
    server.createProject("free_energy", std::move(controller));
    const bool done = dep.runUntilDone(1e12);
    const auto& est = *barCtrl->estimate();
    std::printf("deltaF = %.4f +/- %.4f kT after %d rounds (analytic "
                "%.4f)\n",
                est.totalDeltaF, est.totalError, barCtrl->rounds(),
                barCtrl->analyticDeltaF());
    return done ? 0 : 1;
}

int cmdScaling(const CliArgs& args) {
    perf::ScalingConfig cfg;
    cfg.totalCores = int(args.getInt("total", 5000));
    cfg.coresPerSim = int(args.getInt("cores-per-sim", 24));
    cfg.generations = int(args.getInt("generations", 8));
    cfg.stopGeneration = int(args.getInt("stop-generation", 3));
    const auto r = perf::simulateRun(cfg);
    std::printf("N = %d cores, %d per simulation (%d workers)\n",
                r.totalCores, r.coresPerSim, r.workers);
    std::printf("  time to first fold: %s\n",
                formatHours(r.timeToSolutionHours).c_str());
    std::printf("  full project:       %s\n",
                formatHours(r.totalTimeHours).c_str());
    std::printf("  scaling efficiency: %.1f%%\n", 100.0 * r.efficiency);
    std::printf("  ensemble bandwidth: %.4f MB/s\n",
                r.ensembleBandwidth / 1e6);
    return 0;
}

int cmdInfo() {
    const auto model = md::villinGoModel();
    perf::MdPerfModel perfModel;
    std::printf("model: %s\n", model.topology.summary().c_str());
    std::printf("units: 1 sigma = %.1f A, 1 step = %.0f ps mapped "
                "(50 ns segment = %lld steps)\n",
                md::kAngstromPerSigma, md::kPicosecondsPerStep,
                (long long)md::kSegmentSteps);
    std::printf("production run: T = %.2f eps, Langevin friction %.1f\n",
                md::villinSimulationConfig().integrator.temperature,
                md::villinSimulationConfig().integrator.friction);
    std::printf("perf model: %.1f ns/day serial; efficiency %.2f @ 24, "
                "%.2f @ 96 cores\n",
                perfModel.rate1NsPerDay, perfModel.efficiency(24),
                perfModel.efficiency(96));
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    Logger::instance().setLevel(LogLevel::Warn);
    try {
        const CliArgs args(argc, argv);
        int rc;
        if (args.subcommand() == "fold")
            rc = cmdFold(args);
        else if (args.subcommand() == "bar")
            rc = cmdBar(args);
        else if (args.subcommand() == "scaling")
            rc = cmdScaling(args);
        else if (args.subcommand() == "info")
            rc = cmdInfo();
        else
            return usage();
        for (const auto& key : args.unusedKeys())
            std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                         key.c_str());
        return rc;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
