#include "net/event_loop.hpp"

#include <utility>

namespace cop::net {

void EventLoop::schedule(SimTime delay, Callback fn) {
    COP_REQUIRE(delay >= 0.0, "cannot schedule in the past");
    scheduleAt(now_ + delay, std::move(fn));
}

void EventLoop::scheduleAt(SimTime when, Callback fn) {
    COP_REQUIRE(when >= now_, "cannot schedule in the past");
    COP_REQUIRE(fn != nullptr, "null callback");
    queue_.push(Event{when, nextSeq_++, std::move(fn), 0});
}

EventLoop::TimerId EventLoop::scheduleTimer(SimTime delay, Callback fn) {
    COP_REQUIRE(delay >= 0.0, "cannot schedule in the past");
    COP_REQUIRE(fn != nullptr, "null callback");
    const TimerId id = nextTimer_++;
    liveTimers_.insert(id);
    queue_.push(Event{now_ + delay, nextSeq_++, std::move(fn), id});
    return id;
}

bool EventLoop::cancelTimer(TimerId id) {
    return liveTimers_.erase(id) > 0;
}

void EventLoop::popAndRun() {
    // Move the callback out before popping so the event can safely
    // schedule new events (which mutate the queue).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    if (ev.timer != 0) {
        // Cancellable timer: only fire if not cancelled in the meantime.
        if (liveTimers_.erase(ev.timer) == 0) return;
    }
    ev.fn();
}

std::size_t EventLoop::run(std::size_t limit) {
    std::size_t processed = 0;
    while (!queue_.empty() && processed < limit) {
        popAndRun();
        ++processed;
    }
    return processed;
}

std::size_t EventLoop::runUntil(SimTime until) {
    COP_REQUIRE(until >= now_, "cannot run backwards");
    std::size_t processed = 0;
    while (!queue_.empty() && queue_.top().time <= until) {
        popAndRun();
        ++processed;
    }
    now_ = until;
    return processed;
}

} // namespace cop::net
