#pragma once

/// \file overlay.hpp
/// The Copernicus overlay network (paper §2.2): a small, relatively static
/// graph of servers plus leaf links to workers and clients. Links model
/// latency and bandwidth; message delivery is simulated hop-by-hop on the
/// EventLoop. Connections require mutual key trust, mirroring the paper's
/// SSL + exchanged-public-key scheme. Per-link and per-node traffic is
/// recorded for the Fig. 9 bandwidth analysis.
///
/// Failure is a first-class input: an installed FaultPlan injects message
/// drop/duplication/reordering/latency spikes per hop and drives timed
/// link cuts, partitions and node crashes. Undeliverable messages become
/// observable dead-letter events (never aborts), and every delivery/fault
/// decision is folded into a trace hash so seeded runs can be asserted
/// bit-identical.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"
#include "util/random.hpp"

namespace cop::net {

/// Toy asymmetric key pair: identity is the public half; possession of the
/// private half is what lets a node prove itself when a link is set up.
struct KeyPair {
    std::uint64_t publicKey = 0;
    std::uint64_t privateKey = 0;

    static KeyPair generate(std::uint64_t seed);
};

struct LinkProperties {
    double latency = 1e-3;       ///< seconds, one-way
    double bandwidth = 100e6;    ///< bytes per second
    /// Both endpoints see the same filesystem (paper §2): bulk payloads
    /// (trajectories, checkpoints, command inputs) travel out-of-band and
    /// only the small message frame crosses the wire.
    bool sharedFilesystem = false;

    double transferTime(std::size_t bytes) const {
        return latency + double(bytes) / bandwidth;
    }
};

struct LinkStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    /// Envelope-coalescing breakdown: how many of `messages` were
    /// singleton envelopes vs Batch frames, and how many sub-envelopes
    /// those batches carried. `singletons + batchedEnvelopes` is the
    /// number of logical envelopes; `messages` is what hit the wire.
    std::uint64_t singletons = 0;
    std::uint64_t batches = 0;
    std::uint64_t batchedEnvelopes = 0;
};

/// A participant in the overlay: server, worker or client. Subclasses (or
/// owners) register a delivery handler.
class OverlayNetwork;

class Node {
public:
    Node(OverlayNetwork& net, std::string name, KeyPair keys);
    virtual ~Node() = default;

    NodeId id() const { return id_; }
    const std::string& name() const { return name_; }
    std::uint64_t publicKey() const { return keys_.publicKey; }
    const KeyPair& keys() const { return keys_; }

    /// Adds `key` to this node's trust store (the paper's user-initiated
    /// public-key exchange).
    void trust(std::uint64_t key) { trusted_.insert(key); }
    bool trusts(std::uint64_t key) const { return trusted_.count(key) > 0; }

    void setHandler(std::function<void(const Message&)> handler) {
        handler_ = std::move(handler);
    }

    /// Called by the network when a message reaches this node.
    void deliver(const Message& msg);

    OverlayNetwork& network() { return *net_; }

private:
    OverlayNetwork* net_;
    NodeId id_;
    std::string name_;
    KeyPair keys_;
    std::set<std::uint64_t> trusted_;
    std::function<void(const Message&)> handler_;
};

class OverlayNetwork {
public:
    explicit OverlayNetwork(EventLoop& loop);

    EventLoop& loop() { return *loop_; }

    /// Registers a node; returns its id. Called from Node's constructor.
    NodeId registerNode(Node& node);

    Node& node(NodeId id);
    const Node& node(NodeId id) const;
    std::size_t numNodes() const { return nodes_.size(); }

    /// Connects two nodes. Requires mutual trust of each other's public
    /// keys (throws cop::InvalidArgument otherwise, like a failed SSL
    /// handshake).
    void connect(NodeId a, NodeId b, LinkProperties props);

    bool connected(NodeId a, NodeId b) const;

    /// Sends a message; it travels hop-by-hop along the lowest-latency
    /// path and is delivered to the destination's handler. If no usable
    /// path exists (partition, cut link, crashed node) the message becomes
    /// a dead-letter event — routing failures are observable, not aborts.
    void send(Message msg);

    /// Next-hop routing table entry from `from` towards `to` (lowest total
    /// latency over *usable* links, Dijkstra); kInvalidNode if unreachable.
    NodeId nextHop(NodeId from, NodeId to) const;

    /// Neighbours of `id`.
    std::vector<NodeId> neighbors(NodeId id) const;

    const LinkStats& linkStats(NodeId a, NodeId b) const;
    /// Sum of traffic over all links touching `id`.
    LinkStats nodeStats(NodeId id) const;
    /// Total traffic over every link (each message counted on each hop).
    LinkStats totalStats() const;

    std::uint64_t nextMessageId() { return nextMessageId_++; }

    // --- Fault injection ------------------------------------------------

    /// Installs a fault plan: seeds the chaos RNG and schedules the plan's
    /// structural events on the event loop. Call after the topology is
    /// built (partitions resolve their crossing links at fire time).
    void setFaultPlan(const FaultPlan& plan);
    const FaultStats& faultStats() const { return faultStats_; }

    using DeadLetterHandler =
        std::function<void(const Message&, DeadLetterReason)>;
    /// Observer for undeliverable messages (monitoring, tests). The
    /// message is dropped after the callback returns.
    void setDeadLetterHandler(DeadLetterHandler handler) {
        deadLetterHandler_ = std::move(handler);
    }

    /// Structural fault primitives; counted, so overlapping cuts (e.g. a
    /// partition over an already-cut link) nest correctly.
    void cutLink(NodeId a, NodeId b);
    void healLink(NodeId a, NodeId b);
    void crashNode(NodeId id);
    void restoreNode(NodeId id);

    bool nodeUp(NodeId id) const;
    /// Link exists, is not cut, and both endpoints are up.
    bool linkUsable(NodeId a, NodeId b) const;

    /// Order-sensitive FNV-1a hash over every delivery and fault decision
    /// (kind, virtual time, message id, nodes). Two runs with the same
    /// seeds produce the same hash bit for bit.
    std::uint64_t traceHash() const { return traceHash_; }

private:
    struct Link {
        LinkProperties props;
        LinkStats stats;
    };
    using LinkKey = std::pair<NodeId, NodeId>;
    static LinkKey keyOf(NodeId a, NodeId b) {
        return a < b ? LinkKey{a, b} : LinkKey{b, a};
    }

    void forward(Message msg, NodeId at);
    void deadLetter(const Message& msg, DeadLetterReason reason);
    const FaultProfile& profileFor(const LinkKey& key) const;
    void applyPartition(const std::vector<NodeId>& island, int direction);
    void traceEvent(std::uint64_t kind, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c);

    EventLoop* loop_;
    std::vector<Node*> nodes_;
    std::map<LinkKey, Link> links_;
    std::map<NodeId, std::vector<NodeId>> adjacency_;
    std::uint64_t nextMessageId_ = 1;

    FaultPlan plan_;
    bool planActive_ = false;
    Rng faultRng_{0};
    FaultStats faultStats_;
    std::map<LinkKey, int> downLinks_; ///< counted: cuts + partitions nest
    std::map<NodeId, int> downNodes_;
    DeadLetterHandler deadLetterHandler_;
    std::uint64_t traceHash_ = 0xcbf29ce484222325ull; ///< FNV-1a offset
};

} // namespace cop::net
