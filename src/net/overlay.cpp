#include "net/overlay.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/logging.hpp"
#include "util/random.hpp"

namespace cop::net {

const char* messageTypeName(MessageType t) {
    switch (t) {
    case MessageType::WorkerAnnounce: return "WorkerAnnounce";
    case MessageType::WorkloadRequest: return "WorkloadRequest";
    case MessageType::WorkloadAssign: return "WorkloadAssign";
    case MessageType::Heartbeat: return "Heartbeat";
    case MessageType::CommandOutput: return "CommandOutput";
    case MessageType::CommandFailed: return "CommandFailed";
    case MessageType::CheckpointData: return "CheckpointData";
    case MessageType::WorkerFailed: return "WorkerFailed";
    case MessageType::ProjectData: return "ProjectData";
    case MessageType::NoWorkAvailable: return "NoWorkAvailable";
    case MessageType::ClientRequest: return "ClientRequest";
    case MessageType::ClientResponse: return "ClientResponse";
    }
    return "Unknown";
}

bool isBulkDataMessage(MessageType t) {
    switch (t) {
    case MessageType::WorkloadAssign:
    case MessageType::CommandOutput:
    case MessageType::CheckpointData:
    case MessageType::ProjectData:
        return true;
    default:
        return false;
    }
}

KeyPair KeyPair::generate(std::uint64_t seed) {
    Rng rng(seed);
    // Public and private halves are independent random words; the "proof"
    // in this toy scheme is just producing the private half.
    return KeyPair{rng.next() | 1, rng.next() | 1};
}

Node::Node(OverlayNetwork& net, std::string name, KeyPair keys)
    : net_(&net), name_(std::move(name)), keys_(keys) {
    id_ = net.registerNode(*this);
}

void Node::deliver(const Message& msg) {
    if (handler_) handler_(msg);
}

OverlayNetwork::OverlayNetwork(EventLoop& loop) : loop_(&loop) {}

NodeId OverlayNetwork::registerNode(Node& node) {
    nodes_.push_back(&node);
    return NodeId(nodes_.size() - 1);
}

Node& OverlayNetwork::node(NodeId id) {
    COP_REQUIRE(id >= 0 && std::size_t(id) < nodes_.size(), "bad node id");
    return *nodes_[std::size_t(id)];
}

const Node& OverlayNetwork::node(NodeId id) const {
    COP_REQUIRE(id >= 0 && std::size_t(id) < nodes_.size(), "bad node id");
    return *nodes_[std::size_t(id)];
}

void OverlayNetwork::connect(NodeId a, NodeId b, LinkProperties props) {
    COP_REQUIRE(a != b, "cannot connect a node to itself");
    Node& na = node(a);
    Node& nb = node(b);
    // Mutual authentication: both ends must have exchanged public keys
    // beforehand (paper §2.2).
    if (!na.trusts(nb.publicKey()) || !nb.trusts(na.publicKey()))
        throw InvalidArgument("connection refused: keys not mutually trusted (" +
                              na.name() + " <-> " + nb.name() + ")");
    COP_REQUIRE(props.latency >= 0.0 && props.bandwidth > 0.0,
                "invalid link properties");
    const auto key = keyOf(a, b);
    COP_REQUIRE(links_.find(key) == links_.end(), "link already exists");
    links_[key] = Link{props, {}};
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
}

bool OverlayNetwork::connected(NodeId a, NodeId b) const {
    return links_.find(keyOf(a, b)) != links_.end();
}

std::vector<NodeId> OverlayNetwork::neighbors(NodeId id) const {
    auto it = adjacency_.find(id);
    if (it == adjacency_.end()) return {};
    return it->second;
}

NodeId OverlayNetwork::nextHop(NodeId from, NodeId to) const {
    if (from == to) return to;
    // Dijkstra from `from` by total latency; return the first hop of the
    // best path. Networks are tiny (paper: "no more than a handful of
    // servers"), so recomputing per call is simpler than caching.
    const std::size_t n = nodes_.size();
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    std::vector<NodeId> firstHop(n, kInvalidNode);
    using QE = std::pair<double, NodeId>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    dist[std::size_t(from)] = 0.0;
    pq.push({0.0, from});
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[std::size_t(u)]) continue;
        if (u == to) break;
        for (NodeId v : neighbors(u)) {
            const auto& link = links_.at(keyOf(u, v));
            const double nd = d + link.props.latency;
            if (nd < dist[std::size_t(v)]) {
                dist[std::size_t(v)] = nd;
                firstHop[std::size_t(v)] =
                    (u == from) ? v : firstHop[std::size_t(u)];
                pq.push({nd, v});
            }
        }
    }
    return firstHop[std::size_t(to)];
}

void OverlayNetwork::send(Message msg) {
    COP_REQUIRE(msg.source != kInvalidNode && msg.destination != kInvalidNode,
                "message needs source and destination");
    if (msg.id == 0) msg.id = nextMessageId();
    const NodeId origin = msg.source;
    forward(std::move(msg), origin);
}

void OverlayNetwork::forward(Message msg, NodeId at) {
    if (at == msg.destination) {
        node(at).deliver(msg);
        return;
    }
    const NodeId hop = nextHop(at, msg.destination);
    if (hop == kInvalidNode)
        throw InvalidArgument("no route from " + node(at).name() + " to " +
                              node(msg.destination).name());
    auto& link = links_.at(keyOf(at, hop));
    // On shared-filesystem links, bulk payloads are exchanged through the
    // filesystem; only the framing crosses the network.
    const std::size_t wireBytes =
        (link.props.sharedFilesystem && isBulkDataMessage(msg.type))
            ? (msg.wireSize() - msg.payload.size())
            : msg.wireSize();
    link.stats.messages += 1;
    link.stats.bytes += wireBytes;
    const double delay = link.props.transferTime(wireBytes);
    loop_->schedule(delay, [this, msg = std::move(msg), hop]() mutable {
        forward(std::move(msg), hop);
    });
}

const LinkStats& OverlayNetwork::linkStats(NodeId a, NodeId b) const {
    auto it = links_.find(keyOf(a, b));
    COP_REQUIRE(it != links_.end(), "no such link");
    return it->second.stats;
}

LinkStats OverlayNetwork::nodeStats(NodeId id) const {
    LinkStats total;
    for (const auto& [key, link] : links_) {
        if (key.first == id || key.second == id) {
            total.messages += link.stats.messages;
            total.bytes += link.stats.bytes;
        }
    }
    return total;
}

LinkStats OverlayNetwork::totalStats() const {
    LinkStats total;
    for (const auto& [key, link] : links_) {
        total.messages += link.stats.messages;
        total.bytes += link.stats.bytes;
    }
    return total;
}

} // namespace cop::net
