#include "net/overlay.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>

#include "util/logging.hpp"
#include "util/random.hpp"

namespace cop::net {

namespace {

// Trace event kinds folded into OverlayNetwork::traceHash().
constexpr std::uint64_t kTraceDeliver = 1;
constexpr std::uint64_t kTraceDrop = 2;
constexpr std::uint64_t kTraceDuplicate = 3;
constexpr std::uint64_t kTraceDelay = 4;
constexpr std::uint64_t kTraceDeadLetter = 5;
constexpr std::uint64_t kTraceLinkDown = 6;
constexpr std::uint64_t kTraceLinkUp = 7;
constexpr std::uint64_t kTraceNodeDown = 8;
constexpr std::uint64_t kTraceNodeUp = 9;

} // namespace

const char* messageTypeName(MessageType t) {
    switch (t) {
    case MessageType::WorkerAnnounce: return "WorkerAnnounce";
    case MessageType::WorkloadRequest: return "WorkloadRequest";
    case MessageType::WorkloadAssign: return "WorkloadAssign";
    case MessageType::Heartbeat: return "Heartbeat";
    case MessageType::CommandOutput: return "CommandOutput";
    case MessageType::CommandFailed: return "CommandFailed";
    case MessageType::CheckpointData: return "CheckpointData";
    case MessageType::WorkerFailed: return "WorkerFailed";
    case MessageType::ProjectData: return "ProjectData";
    case MessageType::NoWorkAvailable: return "NoWorkAvailable";
    case MessageType::ClientRequest: return "ClientRequest";
    case MessageType::ClientResponse: return "ClientResponse";
    case MessageType::Ack: return "Ack";
    case MessageType::LeaseRenew: return "LeaseRenew";
    case MessageType::Batch: return "Batch";
    case MessageType::HeartbeatSummary: return "HeartbeatSummary";
    }
    return "Unknown";
}

bool isBulkDataMessage(MessageType t) {
    switch (t) {
    case MessageType::WorkloadAssign:
    case MessageType::CommandOutput:
    case MessageType::CheckpointData:
    case MessageType::ProjectData:
        return true;
    case MessageType::WorkerAnnounce:
    case MessageType::WorkloadRequest:
    case MessageType::Heartbeat:
    case MessageType::CommandFailed:
    case MessageType::WorkerFailed:
    case MessageType::NoWorkAvailable:
    case MessageType::ClientRequest:
    case MessageType::ClientResponse:
    case MessageType::Ack:
    case MessageType::LeaseRenew:
    case MessageType::Batch:
    case MessageType::HeartbeatSummary:
        return false;
    }
    return false;
}

KeyPair KeyPair::generate(std::uint64_t seed) {
    Rng rng(seed);
    // Public and private halves are independent random words; the "proof"
    // in this toy scheme is just producing the private half.
    return KeyPair{rng.next() | 1, rng.next() | 1};
}

Node::Node(OverlayNetwork& net, std::string name, KeyPair keys)
    : net_(&net), name_(std::move(name)), keys_(keys) {
    id_ = net.registerNode(*this);
}

void Node::deliver(const Message& msg) {
    if (handler_) handler_(msg);
}

OverlayNetwork::OverlayNetwork(EventLoop& loop) : loop_(&loop) {}

NodeId OverlayNetwork::registerNode(Node& node) {
    nodes_.push_back(&node);
    return NodeId(nodes_.size() - 1);
}

Node& OverlayNetwork::node(NodeId id) {
    COP_REQUIRE(id >= 0 && std::size_t(id) < nodes_.size(), "bad node id");
    return *nodes_[std::size_t(id)];
}

const Node& OverlayNetwork::node(NodeId id) const {
    COP_REQUIRE(id >= 0 && std::size_t(id) < nodes_.size(), "bad node id");
    return *nodes_[std::size_t(id)];
}

void OverlayNetwork::connect(NodeId a, NodeId b, LinkProperties props) {
    COP_REQUIRE(a != b, "cannot connect a node to itself");
    Node& na = node(a);
    Node& nb = node(b);
    // Mutual authentication: both ends must have exchanged public keys
    // beforehand (paper §2.2).
    if (!na.trusts(nb.publicKey()) || !nb.trusts(na.publicKey()))
        throw InvalidArgument("connection refused: keys not mutually trusted (" +
                              na.name() + " <-> " + nb.name() + ")");
    COP_REQUIRE(props.latency >= 0.0 && props.bandwidth > 0.0,
                "invalid link properties");
    const auto key = keyOf(a, b);
    COP_REQUIRE(links_.find(key) == links_.end(), "link already exists");
    links_[key] = Link{props, {}};
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
}

bool OverlayNetwork::connected(NodeId a, NodeId b) const {
    return links_.find(keyOf(a, b)) != links_.end();
}

std::vector<NodeId> OverlayNetwork::neighbors(NodeId id) const {
    auto it = adjacency_.find(id);
    if (it == adjacency_.end()) return {};
    return it->second;
}

bool OverlayNetwork::nodeUp(NodeId id) const {
    auto it = downNodes_.find(id);
    return it == downNodes_.end() || it->second == 0;
}

bool OverlayNetwork::linkUsable(NodeId a, NodeId b) const {
    if (!connected(a, b)) return false;
    auto it = downLinks_.find(keyOf(a, b));
    if (it != downLinks_.end() && it->second > 0) return false;
    return nodeUp(a) && nodeUp(b);
}

NodeId OverlayNetwork::nextHop(NodeId from, NodeId to) const {
    if (from == to) return to;
    if (!nodeUp(from) || !nodeUp(to)) return kInvalidNode;
    // Dijkstra from `from` by total latency over usable links; return the
    // first hop of the best path. Networks are tiny (paper: "no more than
    // a handful of servers"), so recomputing per call is simpler than
    // caching — and stays correct as links cut and heal.
    const std::size_t n = nodes_.size();
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    std::vector<NodeId> firstHop(n, kInvalidNode);
    using QE = std::pair<double, NodeId>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    dist[std::size_t(from)] = 0.0;
    pq.push({0.0, from});
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[std::size_t(u)]) continue;
        if (u == to) break;
        for (NodeId v : neighbors(u)) {
            if (!linkUsable(u, v)) continue;
            const auto& link = links_.at(keyOf(u, v));
            const double nd = d + link.props.latency;
            if (nd < dist[std::size_t(v)]) {
                dist[std::size_t(v)] = nd;
                firstHop[std::size_t(v)] =
                    (u == from) ? v : firstHop[std::size_t(u)];
                pq.push({nd, v});
            }
        }
    }
    return firstHop[std::size_t(to)];
}

void OverlayNetwork::send(Message msg) {
    COP_REQUIRE(msg.source != kInvalidNode && msg.destination != kInvalidNode,
                "message needs source and destination");
    if (msg.id == 0) msg.id = nextMessageId();
    const NodeId origin = msg.source;
    forward(std::move(msg), origin);
}

void OverlayNetwork::forward(Message msg, NodeId at) {
    if (!nodeUp(at)) {
        // The node holding the message crashed while it was in flight.
        deadLetter(msg, DeadLetterReason::NodeDown);
        return;
    }
    if (at == msg.destination) {
        traceEvent(kTraceDeliver, msg.id, std::uint64_t(at),
                   std::uint64_t(msg.type));
        node(at).deliver(msg);
        return;
    }
    if (!nodeUp(msg.destination)) {
        deadLetter(msg, DeadLetterReason::DestinationDown);
        return;
    }
    const NodeId hop = nextHop(at, msg.destination);
    if (hop == kInvalidNode) {
        deadLetter(msg, DeadLetterReason::NoRoute);
        return;
    }
    auto& link = links_.at(keyOf(at, hop));
    // On shared-filesystem links, bulk payloads are exchanged through the
    // filesystem; only the framing crosses the network. Batch frames carry
    // their bulk sub-payload byte count explicitly so coalescing does not
    // forfeit the out-of-band optimization.
    const std::size_t elidable =
        isBulkDataMessage(msg.type)
            ? msg.payload.size()
            : std::min(msg.bulkBytes, msg.payload.size());
    const std::size_t wireBytes = link.props.sharedFilesystem
                                      ? (msg.wireSize() - elidable)
                                      : msg.wireSize();
    const auto account = [&link, &msg](std::size_t bytes) {
        link.stats.messages += 1;
        link.stats.bytes += bytes;
        if (msg.batchCount > 0) {
            link.stats.batches += 1;
            link.stats.batchedEnvelopes += msg.batchCount;
        } else {
            link.stats.singletons += 1;
        }
    };
    // Per-hop chaos. Draws happen in deterministic event-loop order, so a
    // given FaultPlan seed yields the same decisions run after run.
    int copies = 1;
    double extraDelay[2] = {0.0, 0.0};
    if (planActive_) {
        const FaultProfile& prof = profileFor(keyOf(at, hop));
        if (prof.active()) {
            if (prof.dropProbability > 0.0 &&
                faultRng_.uniform() < prof.dropProbability) {
                // The message consumed the wire before vanishing.
                account(wireBytes);
                ++faultStats_.dropped;
                traceEvent(kTraceDrop, msg.id, std::uint64_t(at),
                           std::uint64_t(hop));
                return;
            }
            if (prof.duplicateProbability > 0.0 &&
                faultRng_.uniform() < prof.duplicateProbability) {
                copies = 2;
                ++faultStats_.duplicated;
                traceEvent(kTraceDuplicate, msg.id, std::uint64_t(at),
                           std::uint64_t(hop));
            }
            for (int c = 0; c < copies; ++c) {
                double extra = 0.0;
                if (prof.reorderProbability > 0.0 &&
                    faultRng_.uniform() < prof.reorderProbability)
                    extra += prof.reorderWindow * faultRng_.uniform();
                if (prof.spikeProbability > 0.0 &&
                    faultRng_.uniform() < prof.spikeProbability)
                    extra += prof.spikeSeconds * faultRng_.uniform();
                if (extra > 0.0) {
                    ++faultStats_.delayed;
                    traceEvent(kTraceDelay, msg.id, std::uint64_t(at),
                               std::bit_cast<std::uint64_t>(extra));
                }
                extraDelay[c] = extra;
            }
        }
    }
    for (int c = 0; c < copies; ++c) {
        account(wireBytes);
        const double delay = link.props.transferTime(wireBytes) + extraDelay[c];
        Message copy = (c + 1 == copies) ? std::move(msg) : msg;
        loop_->schedule(delay, [this, m = std::move(copy), hop]() mutable {
            forward(std::move(m), hop);
        });
    }
}

void OverlayNetwork::deadLetter(const Message& msg, DeadLetterReason reason) {
    ++faultStats_.deadLetters;
    traceEvent(kTraceDeadLetter, msg.id, std::uint64_t(msg.destination),
               std::uint64_t(reason));
    if (deadLetterHandler_) deadLetterHandler_(msg, reason);
}

const FaultProfile& OverlayNetwork::profileFor(const LinkKey& key) const {
    auto it = plan_.linkProfiles.find(key);
    return it != plan_.linkProfiles.end() ? it->second : plan_.defaultProfile;
}

void OverlayNetwork::setFaultPlan(const FaultPlan& plan) {
    plan_ = plan;
    planActive_ = true;
    faultRng_ = Rng(plan_.seed);
    for (const auto& cut : plan_.cuts) {
        loop_->scheduleAt(cut.at, [this, cut] { cutLink(cut.a, cut.b); });
        if (cut.heal >= cut.at)
            loop_->scheduleAt(cut.heal, [this, cut] { healLink(cut.a, cut.b); });
    }
    for (const auto& part : plan_.partitions) {
        loop_->scheduleAt(part.at, [this, island = part.island] {
            applyPartition(island, +1);
        });
        if (part.heal >= part.at)
            loop_->scheduleAt(part.heal, [this, island = part.island] {
                applyPartition(island, -1);
            });
    }
    for (const auto& crash : plan_.crashes) {
        loop_->scheduleAt(crash.at, [this, crash] { crashNode(crash.node); });
        if (crash.restart >= crash.at)
            loop_->scheduleAt(crash.restart,
                              [this, crash] { restoreNode(crash.node); });
    }
}

void OverlayNetwork::cutLink(NodeId a, NodeId b) {
    COP_REQUIRE(connected(a, b), "cannot cut a link that does not exist");
    ++downLinks_[keyOf(a, b)];
    ++faultStats_.linkCuts;
    traceEvent(kTraceLinkDown, std::uint64_t(a), std::uint64_t(b), 0);
}

void OverlayNetwork::healLink(NodeId a, NodeId b) {
    auto it = downLinks_.find(keyOf(a, b));
    COP_REQUIRE(it != downLinks_.end() && it->second > 0, "link is not cut");
    if (--it->second == 0) downLinks_.erase(it);
    traceEvent(kTraceLinkUp, std::uint64_t(a), std::uint64_t(b), 0);
}

void OverlayNetwork::applyPartition(const std::vector<NodeId>& island,
                                    int direction) {
    const std::set<NodeId> inIsland(island.begin(), island.end());
    for (const auto& [key, link] : links_) {
        const bool aIn = inIsland.count(key.first) > 0;
        const bool bIn = inIsland.count(key.second) > 0;
        if (aIn == bIn) continue; // link does not cross the boundary
        if (direction > 0)
            cutLink(key.first, key.second);
        else
            healLink(key.first, key.second);
    }
}

void OverlayNetwork::crashNode(NodeId id) {
    COP_REQUIRE(id >= 0 && std::size_t(id) < nodes_.size(), "bad node id");
    ++downNodes_[id];
    ++faultStats_.crashes;
    traceEvent(kTraceNodeDown, std::uint64_t(id), 0, 0);
}

void OverlayNetwork::restoreNode(NodeId id) {
    auto it = downNodes_.find(id);
    COP_REQUIRE(it != downNodes_.end() && it->second > 0, "node is not down");
    if (--it->second == 0) downNodes_.erase(it);
    traceEvent(kTraceNodeUp, std::uint64_t(id), 0, 0);
}

void OverlayNetwork::traceEvent(std::uint64_t kind, std::uint64_t a,
                                std::uint64_t b, std::uint64_t c) {
    const auto mix = [this](std::uint64_t v) {
        traceHash_ ^= v;
        traceHash_ *= 0x100000001b3ull; // FNV-1a prime
    };
    mix(kind);
    mix(std::bit_cast<std::uint64_t>(loop_->now()));
    mix(a);
    mix(b);
    mix(c);
}

const LinkStats& OverlayNetwork::linkStats(NodeId a, NodeId b) const {
    auto it = links_.find(keyOf(a, b));
    COP_REQUIRE(it != links_.end(), "no such link");
    return it->second.stats;
}

namespace {

void accumulate(LinkStats& total, const LinkStats& s) {
    total.messages += s.messages;
    total.bytes += s.bytes;
    total.singletons += s.singletons;
    total.batches += s.batches;
    total.batchedEnvelopes += s.batchedEnvelopes;
}

} // namespace

LinkStats OverlayNetwork::nodeStats(NodeId id) const {
    LinkStats total;
    for (const auto& [key, link] : links_) {
        if (key.first == id || key.second == id)
            accumulate(total, link.stats);
    }
    return total;
}

LinkStats OverlayNetwork::totalStats() const {
    LinkStats total;
    for (const auto& [key, link] : links_) accumulate(total, link.stats);
    return total;
}

} // namespace cop::net
