#pragma once

/// \file event_loop.hpp
/// Discrete-event simulation core: a virtual clock and an ordered event
/// queue. The overlay network, the simulated workers and the scaling study
/// (Figs. 7-9) all run on this loop — mirroring how the paper produced its
/// scaling figures by simulating the controller's activity.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/error.hpp"

namespace cop::net {

/// Simulated time in seconds.
using SimTime = double;

class EventLoop {
public:
    using Callback = std::function<void()>;

    SimTime now() const { return now_; }

    /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
    /// Events at equal times run in scheduling order (FIFO).
    void schedule(SimTime delay, Callback fn);

    /// Schedules `fn` at an absolute time >= now().
    void scheduleAt(SimTime when, Callback fn);

    /// Cancellable timers (used by the wire layer's ack/retransmit
    /// machinery). The returned id can be passed to cancelTimer before
    /// the timer fires; a cancelled timer's callback never runs.
    using TimerId = std::uint64_t;
    TimerId scheduleTimer(SimTime delay, Callback fn);
    /// Returns true if the timer was still pending (and is now dead).
    bool cancelTimer(TimerId id);

    /// Runs until the queue is empty or `limit` events have fired.
    /// Returns the number of events processed.
    std::size_t run(std::size_t limit = SIZE_MAX);

    /// Runs events with time <= `until`, then advances the clock to
    /// `until` (even if idle). Returns events processed.
    std::size_t runUntil(SimTime until);

    bool empty() const { return queue_.empty(); }
    std::size_t pending() const { return queue_.size(); }

private:
    struct Event {
        SimTime time;
        std::uint64_t seq;
        Callback fn;
        TimerId timer = 0; ///< nonzero: skip unless still in liveTimers_
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    void popAndRun();

    SimTime now_ = 0.0;
    std::uint64_t nextSeq_ = 0;
    TimerId nextTimer_ = 1;
    std::unordered_set<TimerId> liveTimers_;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace cop::net
