#pragma once

/// \file backoff.hpp
/// Capped exponential backoff with seeded multiplicative jitter. Used by
/// the worker's no-work poll (so a 100-worker cold start does not
/// synchronize its retries) and by the wire-layer ack/retransmit timers.

#include <algorithm>
#include <cmath>

#include "util/random.hpp"

namespace cop::net {

struct BackoffPolicy {
    double initial = 30.0;    ///< seconds before the first retry
    double multiplier = 2.0;  ///< growth factor per attempt
    double max = 480.0;       ///< cap on the undithered delay
    double jitter = 0.25;     ///< fraction subtracted uniformly at random

    /// Delay before retry number `attempt` (0-based). Deterministic in the
    /// rng state: delay = min(max, initial * multiplier^attempt) scaled by
    /// a uniform factor in [1 - jitter, 1].
    double delay(int attempt, Rng& rng) const {
        double d = initial * std::pow(multiplier, double(attempt));
        d = std::min(d, max);
        if (jitter > 0.0) d *= 1.0 - jitter * rng.uniform();
        return d;
    }
};

} // namespace cop::net
