#pragma once

/// \file fault.hpp
/// Scriptable fault injection for the overlay network (paper §2.2-2.3:
/// Copernicus must keep adaptive projects running on unreliable,
/// distributed hardware). A FaultPlan is a seeded schedule of per-link
/// message chaos (drop / duplication / reordering / latency spikes) plus
/// timed structural events (link cuts, network partitions, node crashes
/// and restarts). The plan is applied hop-by-hop inside
/// OverlayNetwork::forward, so every protocol layer above it — acks,
/// retransmits, leases, checkpoint handoff — is exercised under loss.
///
/// Determinism: all probabilistic draws come from one Rng seeded by
/// FaultPlan::seed and happen in event-loop order, so the same seed
/// reproduces the same fault sequence (and the same overlay trace hash)
/// bit for bit.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "net/event_loop.hpp"
#include "net/message.hpp"

namespace cop::net {

/// Per-link message-level chaos probabilities, evaluated per hop.
struct FaultProfile {
    double dropProbability = 0.0;      ///< message vanishes on the link
    double duplicateProbability = 0.0; ///< message delivered twice
    double reorderProbability = 0.0;   ///< extra uniform [0, reorderWindow)
    double reorderWindow = 0.05;       ///< seconds of reorder jitter
    double spikeProbability = 0.0;     ///< latency spike on this hop
    double spikeSeconds = 0.0;         ///< uniform [0, spikeSeconds) extra

    bool active() const {
        return dropProbability > 0.0 || duplicateProbability > 0.0 ||
               reorderProbability > 0.0 || spikeProbability > 0.0;
    }
};

/// A seeded, scriptable fault schedule. Install with
/// OverlayNetwork::setFaultPlan after the topology is built; structural
/// events are scheduled on the event loop at that point.
struct FaultPlan {
    std::uint64_t seed = 0;

    /// Chaos applied to every link without an explicit override.
    FaultProfile defaultProfile;
    /// Per-link overrides, keyed by unordered node pair.
    std::map<std::pair<NodeId, NodeId>, FaultProfile> linkProfiles;

    /// One link goes down at `at` and heals at `heal` (heal < at means
    /// the cut is permanent).
    struct LinkCut {
        SimTime at = 0.0;
        SimTime heal = -1.0;
        NodeId a = kInvalidNode;
        NodeId b = kInvalidNode;
    };
    /// Every link crossing the island boundary goes down at `at` and
    /// heals at `heal` (heal < at means permanent).
    struct Partition {
        SimTime at = 0.0;
        SimTime heal = -1.0;
        std::vector<NodeId> island;
    };
    /// The node drops off the network at `at` (all its messages dead-
    /// letter) and rejoins at `restart` (restart < at means never).
    struct Crash {
        SimTime at = 0.0;
        SimTime restart = -1.0;
        NodeId node = kInvalidNode;
    };

    std::vector<LinkCut> cuts;
    std::vector<Partition> partitions;
    std::vector<Crash> crashes;

    FaultPlan& cutLink(NodeId a, NodeId b, SimTime at, SimTime heal = -1.0) {
        cuts.push_back({at, heal, a, b});
        return *this;
    }
    FaultPlan& partition(std::vector<NodeId> island, SimTime at,
                         SimTime heal = -1.0) {
        partitions.push_back({at, heal, std::move(island)});
        return *this;
    }
    FaultPlan& crashNode(NodeId node, SimTime at, SimTime restart = -1.0) {
        crashes.push_back({at, restart, node});
        return *this;
    }
};

/// Observable effect of an installed FaultPlan plus routing failures.
struct FaultStats {
    std::uint64_t dropped = 0;      ///< messages dropped by chaos
    std::uint64_t duplicated = 0;   ///< extra copies injected
    std::uint64_t delayed = 0;      ///< reorder/spike delays applied
    std::uint64_t deadLetters = 0;  ///< undeliverable (no route / node down)
    std::uint64_t linkCuts = 0;     ///< structural link-down events applied
    std::uint64_t crashes = 0;      ///< node crash events applied
};

/// Why a message could not be delivered.
enum class DeadLetterReason : std::uint8_t {
    NoRoute,         ///< routing found no usable path
    NodeDown,        ///< a crashed node held or was to receive the message
    DestinationDown, ///< final destination is crashed
};

const char* deadLetterReasonName(DeadLetterReason r);

} // namespace cop::net
