#pragma once

/// \file message.hpp
/// Typed messages exchanged over the overlay network. Payloads are opaque
/// byte blobs (serialized with util/serialize.hpp); `wireSize` drives the
/// link bandwidth model and the Fig. 9 traffic accounting.

#include <cstdint>
#include <string>
#include <vector>

namespace cop::net {

using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

enum class MessageType : std::uint8_t {
    // Worker <-> server (paper §2.3)
    WorkerAnnounce,   ///< platform + executables + resources
    WorkloadRequest,  ///< forwarded towards the first server with commands
    WorkloadAssign,   ///< commands + input data for a worker
    Heartbeat,        ///< worker status; never forwarded past first server
    CommandOutput,    ///< finished command results (trajectory data)
    CommandFailed,    ///< command aborted with an error
    CheckpointData,   ///< mid-run checkpoint cached by the worker's server
    WorkerFailed,     ///< failure signal from a worker's server (§2.3)
    // Server <-> server
    ProjectData,      ///< relayed command output towards the project server
    NoWorkAvailable,  ///< negative response to a workload request
                      ///  (may carry an admission retry-after hint)
    // Client <-> server
    ClientRequest,    ///< monitoring/control from the command line client
    ClientResponse,
    // Wire-layer control (envelope protocol)
    Ack,              ///< end-to-end delivery acknowledgement
    LeaseRenew,       ///< closest server renews command leases for a worker
    Batch,            ///< coalesced sub-envelopes sharing one frame
    HeartbeatSummary, ///< edge server's aggregated lease renewals (§2.3:
                      ///  heartbeats are summarized, never forwarded)
};

/// Number of MessageType enumerators (keep in sync with the enum above;
/// the fuzz harness and the Batch decode loop both gate on it).
inline constexpr unsigned kMessageTypeCount = 16;

const char* messageTypeName(MessageType t);

/// True for message types whose payload is bulk simulation data that a
/// shared filesystem can carry out-of-band (paper §2: "Copernicus can
/// detect and take advantage of shared file systems to reduce
/// communication").
bool isBulkDataMessage(MessageType t);

struct Message {
    MessageType type = MessageType::Heartbeat;
    NodeId source = kInvalidNode;      ///< originating node
    NodeId destination = kInvalidNode; ///< final destination node
    std::uint64_t id = 0;              ///< unique per network
    bool requireAck = false;           ///< sender retransmits until acked
    std::vector<std::uint8_t> payload;
    /// For Batch messages: number of coalesced sub-envelopes (0 for
    /// singletons). Link stats use it to attribute batched vs singleton
    /// envelopes without decoding payloads.
    std::uint32_t batchCount = 0;
    /// For Batch messages: payload bytes belonging to bulk sub-envelopes,
    /// which a shared-filesystem link carries out-of-band. Singleton bulk
    /// messages are recognized by type instead (see isBulkDataMessage).
    std::size_t bulkBytes = 0;

    /// Bytes on the wire: payload plus a fixed framing overhead (SSL
    /// record + headers; the paper quotes heartbeats at < 200 bytes total).
    std::size_t wireSize() const { return payload.size() + 96; }
};

} // namespace cop::net
