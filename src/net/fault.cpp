#include "net/fault.hpp"

namespace cop::net {

const char* deadLetterReasonName(DeadLetterReason r) {
    switch (r) {
    case DeadLetterReason::NoRoute: return "NoRoute";
    case DeadLetterReason::NodeDown: return "NodeDown";
    case DeadLetterReason::DestinationDown: return "DestinationDown";
    }
    return "Unknown";
}

} // namespace cop::net
