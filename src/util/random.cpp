#include "util/random.hpp"

#include <cmath>

#include "util/error.hpp"

namespace cop {

Vec3 maxwellBoltzmannVelocity(Rng& rng, double mass, double temperature) {
    COP_REQUIRE(mass > 0.0, "mass must be positive");
    COP_REQUIRE(temperature >= 0.0, "temperature must be non-negative");
    const double sigma = std::sqrt(temperature / mass);
    return rng.gaussianVec3(sigma);
}

} // namespace cop
