#pragma once

/// \file table.hpp
/// ASCII table printer used by the bench harness to print the same rows and
/// series the paper's tables/figures report, in a stable, diffable format.

#include <iosfwd>
#include <string>
#include <vector>

namespace cop {

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// All rows must have the same number of cells as the header.
    void addRow(std::vector<std::string> cells);

    std::size_t numRows() const { return rows_.size(); }

    /// Renders with column alignment and +--+ separators.
    std::string render() const;

    void print(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Renders a simple fixed-width ASCII line chart of y(x); used by benches to
/// visualize the figure series directly in the terminal. `height` rows tall.
std::string asciiChart(const std::vector<double>& xs,
                       const std::vector<double>& ys, int width = 72,
                       int height = 16, bool logX = false,
                       bool logY = false);

} // namespace cop
