#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace cop {

std::vector<std::string> split(const std::string& s, char delim) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string trim(const std::string& s) {
    auto isSpace = [](unsigned char c) { return std::isspace(c) != 0; };
    std::size_t b = 0, e = s.size();
    while (b < e && isSpace(s[b])) ++b;
    while (e > b && isSpace(s[e - 1])) --e;
    return s.substr(b, e - b);
}

std::string toLower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return char(std::tolower(c)); });
    return s;
}

bool startsWith(const std::string& s, const std::string& prefix) {
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool endsWith(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out += sep;
        out += parts[i];
    }
    return out;
}

std::string formatFixed(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string formatEngineering(double v, int precision) {
    const char* suffix = "";
    double scaled = v;
    const double av = std::fabs(v);
    if (av >= 1e9) {
        scaled = v / 1e9;
        suffix = "G";
    } else if (av >= 1e6) {
        scaled = v / 1e6;
        suffix = "M";
    } else if (av >= 1e3) {
        scaled = v / 1e3;
        suffix = "k";
    }
    return formatFixed(scaled, precision) + suffix;
}

std::string formatHours(double hours) {
    if (hours >= 48.0) {
        const int d = int(hours / 24.0);
        return std::to_string(d) + "d " +
               formatFixed(hours - 24.0 * d, 1) + "h";
    }
    if (hours >= 1.0) {
        const int h = int(hours);
        const int m = int((hours - h) * 60.0);
        return std::to_string(h) + "h " + std::to_string(m) + "m";
    }
    return formatFixed(hours * 60.0, 1) + "m";
}

} // namespace cop
