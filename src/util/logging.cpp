#include "util/logging.hpp"

#include <iostream>

namespace cop {

Logger& Logger::instance() {
    static Logger logger;
    return logger;
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& msg) {
    if (level < level_) {
        if (level >= LogLevel::Warn) ++warnCount_; // count even if muted
        return;
    }
    static const char* names[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
    std::lock_guard lock(mutex_);
    if (level >= LogLevel::Warn) ++warnCount_;
    std::cerr << "[" << names[int(level)] << "] " << component << ": " << msg
              << '\n';
}

} // namespace cop
