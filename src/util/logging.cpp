#include "util/logging.hpp"

#include <iostream>

namespace cop {

Logger& Logger::instance() {
    static Logger logger;
    return logger;
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& msg) {
    if (level < this->level()) {
        if (level >= LogLevel::Warn) {
            util::LockGuard lock(mutex_); // count even if muted
            ++warnCount_;
        }
        return;
    }
    static const char* names[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
    util::LockGuard lock(mutex_);
    if (level >= LogLevel::Warn) ++warnCount_;
    std::cerr << "[" << names[int(level)] << "] " << component << ": " << msg
              << '\n';
}

} // namespace cop
