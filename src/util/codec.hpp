#pragma once

/// \file codec.hpp
/// Block compression for the tiered trajectory store and the WAL: an
/// LZ4-style byte codec (greedy hash-chain match finder, literal/match
/// token stream, 16-bit back-references) behind a self-describing frame
/// with a CRC32 over the raw bytes, plus an optional XOR/delta pre-filter
/// tuned for f64 position triplets (checkpoint/trajectory blobs are
/// overwhelmingly slowly-varying doubles, so XOR-ing consecutive lanes
/// exposes runs of zero bytes the byte codec then folds away).
///
/// decode() treats its input as hostile: every length is bounds-checked
/// against the remaining bytes and a caller-supplied cap before any
/// allocation, back-references must point inside the already-decoded
/// prefix, trailing bytes after the encoded stream are rejected, and the
/// CRC of the reconstructed buffer must match the frame header. Malformed
/// input throws IoError; it must never crash, over-allocate, or read out
/// of bounds (fuzzed via fuzz/wal_fuzz.cpp).

#include <cstdint>
#include <span>
#include <vector>

namespace cop::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum on
/// every codec frame and WAL record.
std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed = 0);

/// Pre-filter applied before byte compression. Values are the on-disk
/// frame bytes — append-only.
enum class CodecFilter : std::uint8_t {
    None = 0,     ///< bytes compressed as-is
    DeltaXor8 = 1,  ///< lane-wise XOR with the previous 8-byte word
    DeltaXor24 = 2, ///< XOR with the word one f64 triplet (24 bytes) back
};

/// Compression method actually used for a frame. encode() falls back to
/// Stored when the LZ pass does not shrink the payload, so pathological
/// (incompressible) input costs only the frame header.
enum class CodecMethod : std::uint8_t {
    Stored = 0,
    Lz = 1,
};

struct EncodeResult {
    std::vector<std::uint8_t> frame;
    CodecMethod method = CodecMethod::Stored;
    CodecFilter filter = CodecFilter::None;
};

/// Compresses `raw` into a self-describing frame. `filter` selects the
/// pre-filter; CodecFilter::None with `autoFilter` true (the default)
/// picks DeltaXor24 for buffers that look like f64 triplet streams
/// (size divisible by 24), DeltaXor8 for other 8-byte-aligned sizes, and
/// no filter otherwise.
EncodeResult encode(std::span<const std::uint8_t> raw,
                    CodecFilter filter = CodecFilter::None,
                    bool autoFilter = true);

/// Decodes a frame produced by encode(). `maxRawBytes` caps the
/// allocation a hostile header can demand. Throws IoError on any
/// malformed input (bad magic, oversized raw length, truncated stream,
/// out-of-range back-reference, CRC mismatch, trailing bytes).
std::vector<std::uint8_t> decode(std::span<const std::uint8_t> frame,
                                 std::size_t maxRawBytes);

/// Raw (decoded) size a frame claims, bounds-checked against
/// `maxRawBytes` — lets callers size tiers without decoding. Throws
/// IoError on bad magic/truncation/oversize.
std::size_t frameRawSize(std::span<const std::uint8_t> frame,
                         std::size_t maxRawBytes);

} // namespace cop::util
