#include "util/histogram.hpp"

#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace cop {

Histogram::Histogram(double lo, double hi, std::size_t nBins)
    : lo_(lo), hi_(hi), width_((hi - lo) / double(nBins)),
      counts_(nBins, 0.0) {
    COP_REQUIRE(hi > lo, "histogram range must be non-empty");
    COP_REQUIRE(nBins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x, double weight) {
    if (x < lo_) {
        underflow_ += weight;
    } else if (x >= hi_) {
        overflow_ += weight;
    } else {
        auto bin = std::size_t((x - lo_) / width_);
        if (bin >= counts_.size()) bin = counts_.size() - 1; // fp edge case
        counts_[bin] += weight;
    }
}

double Histogram::binCenter(std::size_t i) const {
    COP_REQUIRE(i < counts_.size(), "bin index out of range");
    return lo_ + (double(i) + 0.5) * width_;
}

double Histogram::totalWeight() const {
    return std::accumulate(counts_.begin(), counts_.end(), 0.0) + underflow_ +
           overflow_;
}

std::vector<double> Histogram::density() const {
    const double inRange =
        std::accumulate(counts_.begin(), counts_.end(), 0.0);
    std::vector<double> d(counts_.size(), 0.0);
    if (inRange <= 0.0) return d;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        d[i] = counts_[i] / (inRange * width_);
    return d;
}

double Histogram::fractionAbove(double x) const {
    const double inRange =
        std::accumulate(counts_.begin(), counts_.end(), 0.0);
    if (inRange <= 0.0) return 0.0;
    double above = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        if (binCenter(i) >= x) above += counts_[i];
    return above / inRange;
}

} // namespace cop
