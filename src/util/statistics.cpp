#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/random.hpp"

namespace cop {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const std::size_t total = n_ + other.n_;
    m2_ += other.m2_ +
           delta * delta * double(n_) * double(other.n_) / double(total);
    mean_ += delta * double(other.n_) / double(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = total;
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variancePopulation() const {
    return n_ > 0 ? m2_ / double(n_) : 0.0;
}

double RunningStats::variance() const {
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::standardError() const {
    return n_ > 0 ? stddev() / std::sqrt(double(n_)) : 0.0;
}

double mean(std::span<const double> xs) {
    COP_REQUIRE(!xs.empty(), "mean of empty range");
    return std::accumulate(xs.begin(), xs.end(), 0.0) / double(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    RunningStats s;
    for (double x : xs) s.add(x);
    return s.variance();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double standardError(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return stddev(xs) / std::sqrt(double(xs.size()));
}

double weightedMean(std::span<const double> xs, std::span<const double> ws) {
    COP_REQUIRE(xs.size() == ws.size(), "size mismatch");
    COP_REQUIRE(!xs.empty(), "weightedMean of empty range");
    double sw = 0.0, swx = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        COP_REQUIRE(ws[i] >= 0.0, "negative weight");
        sw += ws[i];
        swx += ws[i] * xs[i];
    }
    COP_REQUIRE(sw > 0.0, "weights sum to zero");
    return swx / sw;
}

double blockStandardError(std::span<const double> xs, std::size_t nBlocks) {
    COP_REQUIRE(nBlocks >= 2, "need at least 2 blocks");
    COP_REQUIRE(xs.size() >= nBlocks, "fewer samples than blocks");
    const std::size_t blockLen = xs.size() / nBlocks;
    RunningStats blockMeans;
    for (std::size_t b = 0; b < nBlocks; ++b) {
        double s = 0.0;
        for (std::size_t i = b * blockLen; i < (b + 1) * blockLen; ++i)
            s += xs[i];
        blockMeans.add(s / double(blockLen));
    }
    return blockMeans.standardError();
}

double bootstrapStandardError(std::span<const double> xs,
                              std::size_t nResamples, Rng& rng) {
    COP_REQUIRE(!xs.empty(), "bootstrap of empty range");
    COP_REQUIRE(nResamples >= 2, "need at least 2 resamples");
    RunningStats resampleMeans;
    for (std::size_t r = 0; r < nResamples; ++r) {
        double s = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i)
            s += xs[rng.uniformInt(xs.size())];
        resampleMeans.add(s / double(xs.size()));
    }
    return resampleMeans.stddev();
}

std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t maxLag) {
    COP_REQUIRE(xs.size() >= 2, "autocorrelation needs >= 2 samples");
    COP_REQUIRE(maxLag < xs.size(), "maxLag must be < series length");
    const double mu = mean(xs);
    double c0 = 0.0;
    for (double x : xs) c0 += (x - mu) * (x - mu);
    std::vector<double> out(maxLag + 1, 0.0);
    // Constant series (up to rounding noise in the mean subtraction):
    // define C(k) = 0 rather than dividing by a denormal c0.
    if (c0 <= 1e-12 * double(xs.size())) return out;
    for (std::size_t k = 0; k <= maxLag; ++k) {
        double ck = 0.0;
        for (std::size_t i = 0; i + k < xs.size(); ++i)
            ck += (xs[i] - mu) * (xs[i + k] - mu);
        out[k] = ck / c0;
    }
    return out;
}

double integratedAutocorrelationTime(std::span<const double> xs,
                                     std::size_t maxLag) {
    const auto c = autocorrelation(xs, maxLag);
    double tau = 1.0;
    for (std::size_t k = 1; k <= maxLag; ++k) {
        if (c[k] < 0.0) break;
        tau += 2.0 * c[k];
    }
    return tau;
}

double percentile(std::vector<double> xs, double p) {
    COP_REQUIRE(!xs.empty(), "percentile of empty range");
    COP_REQUIRE(p >= 0.0 && p <= 100.0, "p must be in [0,100]");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1) return xs[0];
    const double rank = p / 100.0 * double(xs.size() - 1);
    const std::size_t lo = std::size_t(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - double(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace cop
