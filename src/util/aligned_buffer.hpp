#pragma once

/// \file aligned_buffer.hpp
/// Cache-line-aligned storage for hot structure-of-arrays data. The force
/// kernels stream through contiguous double arrays; 64-byte alignment keeps
/// every vector load within one cache line and lets the auto-vectorizer use
/// aligned moves. AlignedVector is a std::vector with an aligning allocator,
/// so it composes with the usual growth/assign idioms (capacity is reused
/// across steps — the workspace pattern relies on that for zero-allocation
/// steady state).

#include <cstddef>
#include <new>
#include <vector>

namespace cop {

inline constexpr std::size_t kCacheLineSize = 64;

/// Minimal C++17 aligned allocator; all instances compare equal.
template <typename T, std::size_t Alignment = kCacheLineSize>
struct AlignedAllocator {
    using value_type = T;

    static_assert(Alignment >= alignof(T), "alignment weaker than type's");
    static_assert((Alignment & (Alignment - 1)) == 0,
                  "alignment must be a power of two");

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Alignment>;
    };

    T* allocate(std::size_t n) {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t{Alignment}));
    }
    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t{Alignment});
    }

    friend bool operator==(const AlignedAllocator&,
                           const AlignedAllocator&) noexcept {
        return true;
    }
};

template <typename T, std::size_t Alignment = kCacheLineSize>
using AlignedVector = std::vector<T, AlignedAllocator<T, Alignment>>;

/// Rounds n up so each per-thread stripe of a shared buffer starts on its
/// own cache line (avoids false sharing between adjacent stripes).
inline std::size_t paddedSize(std::size_t n,
                              std::size_t elemSize = sizeof(double)) {
    const std::size_t per = kCacheLineSize / elemSize;
    return (n + per - 1) / per * per;
}

} // namespace cop
