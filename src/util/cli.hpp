#pragma once

/// \file cli.hpp
/// Minimal command-line flag parser for the tools and examples:
/// `program subcommand --flag value --switch`.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cop {

class CliArgs {
public:
    /// Parses argv after the program name. The first non-flag token is the
    /// subcommand (may be empty); remaining `--key value` pairs become
    /// flags; a `--key` followed by another flag or the end is a boolean
    /// switch. Throws InvalidArgument on malformed input (e.g. non-flag
    /// positional after the subcommand).
    CliArgs(int argc, const char* const* argv);

    const std::string& subcommand() const { return subcommand_; }

    bool has(const std::string& key) const;

    std::string getString(const std::string& key,
                          const std::string& fallback) const;
    long getInt(const std::string& key, long fallback) const;
    double getDouble(const std::string& key, double fallback) const;

    /// Keys the caller never queried — surfaced so typos fail loudly.
    std::vector<std::string> unusedKeys() const;

private:
    std::string subcommand_;
    std::map<std::string, std::string> flags_;
    mutable std::map<std::string, bool> used_;
};

} // namespace cop
