#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace cop {

CliArgs::CliArgs(int argc, const char* const* argv) {
    int i = 1;
    if (i < argc && !startsWith(argv[i], "--")) subcommand_ = argv[i++];
    while (i < argc) {
        const std::string token = argv[i];
        if (!startsWith(token, "--"))
            throw InvalidArgument("unexpected positional argument: " + token);
        const std::string key = token.substr(2);
        COP_REQUIRE(!key.empty(), "empty flag name");
        ++i;
        if (i < argc && !startsWith(argv[i], "--")) {
            flags_[key] = argv[i++];
        } else {
            flags_[key] = ""; // boolean switch
        }
    }
}

bool CliArgs::has(const std::string& key) const {
    used_[key] = true;
    return flags_.find(key) != flags_.end();
}

std::string CliArgs::getString(const std::string& key,
                               const std::string& fallback) const {
    used_[key] = true;
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
}

long CliArgs::getInt(const std::string& key, long fallback) const {
    used_[key] = true;
    auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    char* end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    COP_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
                "flag --" + key + " expects an integer, got '" +
                    it->second + "'");
    return v;
}

double CliArgs::getDouble(const std::string& key, double fallback) const {
    used_[key] = true;
    auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    COP_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
                "flag --" + key + " expects a number, got '" + it->second +
                    "'");
    return v;
}

std::vector<std::string> CliArgs::unusedKeys() const {
    std::vector<std::string> out;
    for (const auto& [key, value] : flags_)
        if (used_.find(key) == used_.end()) out.push_back(key);
    return out;
}

} // namespace cop
