#include "util/mutex.hpp"

#include <cstdio>
#include <cstdlib>
#include <unordered_set>
#include <utility>

namespace cop::util {

namespace {

/// Acquisition stack of the calling thread, innermost last. Thread-local
/// so onAcquired/onReleased touch the graph lock only when a second lock
/// is actually nested under a first.
std::vector<const Mutex*>& heldStack() {
    static thread_local std::vector<const Mutex*> stack;
    return stack;
}

} // namespace

std::uint64_t Mutex::nextId() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}

LockOrderRegistry& LockOrderRegistry::instance() {
    // Leaked on purpose: Mutex destructors (possibly in other statics)
    // call onDestroyed during shutdown, so the registry must outlive them.
    static auto* registry = new LockOrderRegistry();
    return *registry;
}

LockOrderRegistry::FailureHandler
LockOrderRegistry::setFailureHandler(FailureHandler h) {
    std::lock_guard lock(graphMutex_);
    FailureHandler prev = std::move(handler_);
    handler_ = std::move(h);
    return prev;
}

void LockOrderRegistry::resetGraph() {
    std::lock_guard lock(graphMutex_);
    edges_.clear();
    names_.clear();
}

std::string
LockOrderRegistry::renderStack(const std::vector<const Mutex*>& held,
                               const Mutex* acquiring) const {
    std::string s;
    for (const Mutex* h : held) {
        s += '"';
        s += h->name();
        s += "\" -> ";
    }
    s += '"';
    s += acquiring->name();
    s += '"';
    return s;
}

bool LockOrderRegistry::findPath(std::uint64_t from, std::uint64_t to,
                                 std::vector<std::uint64_t>& path) const {
    // Iterative DFS over the acquisition-order graph; `path` receives the
    // edge chain from -> ... -> to when one exists.
    std::unordered_set<std::uint64_t> visited;
    struct Frame {
        std::uint64_t node;
        std::size_t depth;
    };
    std::vector<Frame> work{{from, 0}};
    path.clear();
    while (!work.empty()) {
        const Frame f = work.back();
        work.pop_back();
        path.resize(f.depth);
        path.push_back(f.node);
        if (f.node == to) return true;
        if (!visited.insert(f.node).second) continue;
        const auto it = edges_.find(f.node);
        if (it == edges_.end()) continue;
        for (const auto& [next, edge] : it->second)
            work.push_back({next, f.depth + 1});
    }
    path.clear();
    return false;
}

void LockOrderRegistry::reportCycle(const std::vector<const Mutex*>& held,
                                    const Mutex* m,
                                    const std::vector<std::uint64_t>& path) {
    // Called with graphMutex_ held; composes the report, then releases the
    // lock before invoking the handler (which may reset the graph).
    std::string report = "lock-order cycle detected\n";
    report += "  acquiring: " + renderStack(held, m) +
              "  (this thread, innermost last)\n";
    report += "  conflicts with previously recorded acquisition order:\n";
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto eit = edges_.find(path[i]);
        const auto e = eit->second.find(path[i + 1]);
        report += "    " + names_[path[i]] + " held while acquiring " +
                  names_[path[i + 1]] + "  [stack: " + e->second.stack +
                  "]\n";
    }
    FailureHandler handler = handler_;
    graphMutex_.unlock();
    if (handler) {
        handler(report);
    } else {
        std::fputs(report.c_str(), stderr);
        std::abort();
    }
    graphMutex_.lock();
}

void LockOrderRegistry::onAcquired(const Mutex* m) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    auto& held = heldStack();
    if (!held.empty()) {
        std::lock_guard lock(graphMutex_);
        for (const Mutex* h : held) {
            if (h == m) continue;
            auto& out = edges_[h->orderId()];
            if (out.count(m->orderId())) continue; // edge already known
            // New edge h -> m. If m already reaches h, this acquisition
            // inverts a recorded order: report before recording.
            std::vector<std::uint64_t> path;
            if (findPath(m->orderId(), h->orderId(), path))
                reportCycle(held, m, path);
            names_[h->orderId()] = h->name();
            names_[m->orderId()] = m->name();
            out.emplace(m->orderId(), Edge{renderStack(held, m)});
        }
    }
    held.push_back(m);
}

void LockOrderRegistry::onReleased(const Mutex* m) {
    auto& held = heldStack();
    // Out-of-stack-order unlock is legal; search from the innermost end.
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (*it == m) {
            held.erase(std::next(it).base());
            return;
        }
    }
}

void LockOrderRegistry::onDestroyed(const Mutex* m) {
    std::lock_guard lock(graphMutex_);
    if (edges_.empty() && names_.empty()) return;
    const std::uint64_t id = m->orderId();
    edges_.erase(id);
    for (auto& [from, out] : edges_) out.erase(id);
    names_.erase(id);
}

} // namespace cop::util
