#pragma once

/// \file error.hpp
/// Exception hierarchy and assertion macros used across the Copernicus
/// libraries. We throw rather than abort so that framework code (servers,
/// workers) can degrade gracefully when a single command fails.

#include <stdexcept>
#include <string>

namespace cop {

/// Base class for all Copernicus errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
public:
    explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Internal invariant violated; indicates a bug in this library.
class InternalError : public Error {
public:
    explicit InternalError(const std::string& what) : Error(what) {}
};

/// I/O or serialization failure.
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error(what) {}
};

/// Numerical failure (divergence, singular matrix, non-convergence).
class NumericalError : public Error {
public:
    explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throwRequireFailed(const char* expr, const char* file,
                                            int line, const std::string& msg) {
    throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                          ": requirement `" + expr + "` failed" +
                          (msg.empty() ? "" : (": " + msg)));
}
[[noreturn]] inline void throwEnsureFailed(const char* expr, const char* file,
                                           int line, const std::string& msg) {
    throw InternalError(std::string(file) + ":" + std::to_string(line) +
                        ": invariant `" + expr + "` violated" +
                        (msg.empty() ? "" : (": " + msg)));
}
} // namespace detail

} // namespace cop

/// Precondition check: throws cop::InvalidArgument with location info.
#define COP_REQUIRE(expr, msg)                                               \
    do {                                                                     \
        if (!(expr))                                                         \
            ::cop::detail::throwRequireFailed(#expr, __FILE__, __LINE__,     \
                                              (msg));                        \
    } while (0)

/// Internal invariant check: throws cop::InternalError with location info.
#define COP_ENSURE(expr, msg)                                                \
    do {                                                                     \
        if (!(expr))                                                         \
            ::cop::detail::throwEnsureFailed(#expr, __FILE__, __LINE__,      \
                                             (msg));                         \
    } while (0)

/// Untrusted-input / I/O check: throws cop::IoError. Used on decode and
/// recovery paths where a failure means hostile or corrupt bytes (or a
/// failed syscall), not a bug in this library.
#define COP_IO_CHECK(expr, msg)                                              \
    do {                                                                     \
        if (!(expr)) throw ::cop::IoError(msg);                              \
    } while (0)
