#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace cop {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    COP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
    COP_REQUIRE(cells.size() == headers_.size(),
                "row width does not match header");
    rows_.push_back(std::move(cells));
}

std::string Table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderSep = [&] {
        std::string s = "+";
        for (auto w : widths) s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };
    auto renderRow = [&](const std::vector<std::string>& row) {
        std::string s = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            s += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
                 " |";
        }
        return s + "\n";
    };

    std::string out = renderSep() + renderRow(headers_) + renderSep();
    for (const auto& row : rows_) out += renderRow(row);
    out += renderSep();
    return out;
}

void Table::print(std::ostream& os) const { os << render(); }

std::string asciiChart(const std::vector<double>& xs,
                       const std::vector<double>& ys, int width, int height,
                       bool logX, bool logY) {
    COP_REQUIRE(xs.size() == ys.size(), "xs/ys size mismatch");
    COP_REQUIRE(width >= 8 && height >= 4, "chart too small");
    if (xs.empty()) return "(empty series)\n";

    auto tx = [&](double v) { return logX ? std::log10(std::max(v, 1e-300)) : v; };
    auto ty = [&](double v) { return logY ? std::log10(std::max(v, 1e-300)) : v; };

    double xmin = tx(xs[0]), xmax = tx(xs[0]);
    double ymin = ty(ys[0]), ymax = ty(ys[0]);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        xmin = std::min(xmin, tx(xs[i]));
        xmax = std::max(xmax, tx(xs[i]));
        ymin = std::min(ymin, ty(ys[i]));
        ymax = std::max(ymax, ty(ys[i]));
    }
    if (xmax == xmin) xmax = xmin + 1.0;
    if (ymax == ymin) ymax = ymin + 1.0;

    std::vector<std::string> grid(std::size_t(height),
                                  std::string(std::size_t(width), ' '));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const int cx = int((tx(xs[i]) - xmin) / (xmax - xmin) * (width - 1));
        const int cy = int((ty(ys[i]) - ymin) / (ymax - ymin) * (height - 1));
        grid[std::size_t(height - 1 - cy)][std::size_t(cx)] = '*';
    }

    std::ostringstream oss;
    oss << "  y: [" << ymin << ", " << ymax << "]"
        << (logY ? " (log10)" : "") << "\n";
    for (const auto& row : grid) oss << "  |" << row << "\n";
    oss << "  +" << std::string(std::size_t(width), '-') << "\n";
    oss << "  x: [" << xmin << ", " << xmax << "]"
        << (logX ? " (log10)" : "") << "\n";
    return oss.str();
}

} // namespace cop
