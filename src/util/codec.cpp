#include "util/codec.hpp"

#include <array>
#include <cstring>

#include "util/error.hpp"

namespace cop::util {

namespace {

// Frame layout (all little-endian, matching BinaryWriter):
//   byte 0..3   magic "CPZ1"
//   byte 4      CodecFilter
//   byte 5      CodecMethod
//   byte 6..13  u64 raw size
//   byte 14..17 u32 crc32(raw)
//   byte 18..   method-specific stream (Stored: raw bytes verbatim,
//               Lz: token stream, see below)
constexpr std::array<std::uint8_t, 4> kMagic = {'C', 'P', 'Z', '1'};
constexpr std::size_t kHeaderSize = 18;

// LZ stream: a sequence of tokens. Each token byte packs
// (literalLen << 4) | matchLenCode like LZ4; 0xF nibbles extend with
// 255-runs. After the literals comes a 2-byte little-endian match offset
// (1..65535) and the extended match length; minimum match is 4 bytes.
// The final token has matchLenCode 0 and no offset (literals only).
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr int kMaxHashBits = 14;

std::uint32_t hash4(const std::uint8_t* p, int bits) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - bits);
}

/// Hash table sized to the input: a fixed 2^14-entry table costs more to
/// zero-fill than a small blob costs to compress (128 KiB of init for a
/// 256-byte checkpoint), so small inputs get proportionally small tables.
int hashBitsFor(std::size_t n) {
    int bits = 6;
    while ((std::size_t(1) << bits) < n && bits < kMaxHashBits) ++bits;
    return bits;
}

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table,
// table[k][b] pre-folds byte b through k extra zero bytes, so eight input
// bytes fold into the CRC with eight independent lookups per iteration
// instead of eight serial ones. Same polynomial, bit-identical values.
const std::array<std::array<std::uint32_t, 256>, 8>& crcTables() {
    static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
        std::array<std::array<std::uint32_t, 256>, 8> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[0][i] = c;
        }
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = t[0][i];
            for (int k = 1; k < 8; ++k) {
                c = t[0][c & 0xFF] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        return t;
    }();
    return tables;
}

void applyFilter(CodecFilter filter, std::vector<std::uint8_t>& buf) {
    const std::size_t stride =
        filter == CodecFilter::DeltaXor24 ? 24 : 8;
    if (buf.size() < stride) return;
    // In-place backward pass so each word XORs against the *original*
    // previous word.
    for (std::size_t i = buf.size(); i-- > stride;)
        buf[i] ^= buf[i - stride];
}

void undoFilter(CodecFilter filter, std::vector<std::uint8_t>& buf) {
    const std::size_t stride =
        filter == CodecFilter::DeltaXor24 ? 24 : 8;
    if (buf.size() < stride) return;
    for (std::size_t i = stride; i < buf.size(); ++i)
        buf[i] ^= buf[i - stride];
}

void putVarRun(std::vector<std::uint8_t>& out, std::size_t n) {
    while (n >= 255) {
        out.push_back(255);
        n -= 255;
    }
    out.push_back(std::uint8_t(n));
}

/// Match-finder head table, reused across calls: encode() runs ~20k
/// times per second on the WAL checkpoint path, where a fresh
/// allocation per call costs more than the compression itself.
/// assign() both resizes and resets; encode never nests, so one
/// per-thread table is safe.
std::vector<std::int64_t>& headTable(int bits) {
    thread_local std::vector<std::int64_t> table;
    table.assign(std::size_t(1) << bits, -1);
    return table;
}

/// Greedy LZ4-style compressor appending the token stream to `out`
/// (starting at out.size()). Returns false — truncating `out` back to
/// its starting size — when the result would not be smaller than the
/// input (caller stores raw instead).
bool lzCompress(std::span<const std::uint8_t> in,
                std::vector<std::uint8_t>& out) {
    const std::size_t start = out.size();
    if (in.size() < kMinMatch + 1) return false;
    out.reserve(start + in.size());
    const int hashBits = hashBitsFor(in.size());
    auto& head = headTable(hashBits);

    const std::uint8_t* base = in.data();
    std::size_t pos = 0;
    std::size_t literalStart = 0;
    const std::size_t matchLimit = in.size() - kMinMatch;

    auto emit = [&](std::size_t litEnd, std::size_t matchLen,
                    std::size_t offset) {
        const std::size_t litLen = litEnd - literalStart;
        const std::size_t mlCode = matchLen ? matchLen - kMinMatch + 1 : 0;
        out.push_back(std::uint8_t(
            (litLen >= 15 ? 15u : std::uint32_t(litLen)) << 4 |
            (mlCode >= 15 ? 15u : std::uint32_t(mlCode))));
        if (litLen >= 15) putVarRun(out, litLen - 15);
        out.insert(out.end(), base + literalStart, base + litEnd);
        if (matchLen) {
            out.push_back(std::uint8_t(offset & 0xFF));
            out.push_back(std::uint8_t(offset >> 8));
            if (mlCode >= 15) putVarRun(out, mlCode - 15);
        }
    };

    while (pos <= matchLimit) {
        const std::uint32_t h = hash4(base + pos, hashBits);
        const std::int64_t cand = head[h];
        head[h] = std::int64_t(pos);
        if (cand >= 0 && pos - std::size_t(cand) <= kMaxOffset &&
            std::memcmp(base + cand, base + pos, kMinMatch) == 0) {
            std::size_t len = kMinMatch;
            while (pos + len < in.size() &&
                   base[cand + len] == base[pos + len])
                ++len;
            emit(pos, len, pos - std::size_t(cand));
            // Seed the table sparsely inside the match (every 8th byte):
            // full coverage costs encode speed for little extra ratio on
            // the delta-filtered buffers this codec targets.
            for (std::size_t i = pos + 1; i + kMinMatch <= pos + len;
                 i += 8)
                head[hash4(base + i, hashBits)] = std::int64_t(i);
            pos += len;
            literalStart = pos;
            if (out.size() - start >= in.size()) {
                out.resize(start);
                return false;
            }
        } else {
            ++pos;
        }
    }
    emit(in.size(), 0, 0);
    if (out.size() - start >= in.size()) {
        out.resize(start);
        return false;
    }
    return true;
}

std::size_t readVarRun(std::span<const std::uint8_t> in, std::size_t& p,
                       std::size_t limit) {
    std::size_t n = 0;
    while (true) {
        COP_IO_CHECK(p < in.size(), "codec: truncated length run");
        const std::uint8_t b = in[p++];
        n += b;
        COP_IO_CHECK(n <= limit, "codec: hostile length run");
        if (b != 255) return n;
    }
}

void lzDecompress(std::span<const std::uint8_t> in,
                  std::vector<std::uint8_t>& out, std::size_t rawSize) {
    std::size_t p = 0;
    // Loop until the terminator token (matchLenCode 0), not until rawSize
    // bytes are out: a match may land exactly on rawSize and the
    // terminator still follows it.
    while (true) {
        COP_IO_CHECK(p < in.size(), "codec: truncated token");
        const std::uint8_t token = in[p++];
        std::size_t litLen = token >> 4;
        if (litLen == 15) litLen += readVarRun(in, p, rawSize);
        COP_IO_CHECK(litLen <= in.size() - p,
                   "codec: literal run past end of stream");
        COP_IO_CHECK(out.size() + litLen <= rawSize,
                   "codec: literal run past raw size");
        out.insert(out.end(), in.begin() + long(p),
                   in.begin() + long(p + litLen));
        p += litLen;
        std::size_t mlCode = token & 0xF;
        if (mlCode == 0) {
            COP_IO_CHECK(out.size() == rawSize,
                       "codec: stream ended before raw size");
            break;
        }
        COP_IO_CHECK(p + 2 <= in.size(), "codec: truncated offset");
        const std::size_t offset =
            std::size_t(in[p]) | std::size_t(in[p + 1]) << 8;
        p += 2;
        COP_IO_CHECK(offset >= 1 && offset <= out.size(),
                   "codec: back-reference outside decoded prefix");
        if (mlCode == 15) mlCode += readVarRun(in, p, rawSize);
        const std::size_t matchLen = mlCode + kMinMatch - 1;
        COP_IO_CHECK(out.size() + matchLen <= rawSize,
                   "codec: match past raw size");
        // Byte-at-a-time: overlapping matches (offset < len) replicate.
        for (std::size_t i = 0; i < matchLen; ++i)
            out.push_back(out[out.size() - offset]);
    }
    COP_IO_CHECK(p == in.size(),
               "codec: trailing bytes after LZ stream");
}

struct Header {
    CodecFilter filter;
    CodecMethod method;
    std::uint64_t rawSize;
    std::uint32_t crc;
};

Header parseHeader(std::span<const std::uint8_t> frame,
                   std::size_t maxRawBytes) {
    COP_IO_CHECK(frame.size() >= kHeaderSize,
               "codec: frame shorter than header");
    COP_IO_CHECK(std::memcmp(frame.data(), kMagic.data(), 4) == 0,
               "codec: bad frame magic");
    Header h{};
    COP_IO_CHECK(frame[4] <= std::uint8_t(CodecFilter::DeltaXor24),
               "codec: unknown filter id");
    COP_IO_CHECK(frame[5] <= std::uint8_t(CodecMethod::Lz),
               "codec: unknown method id");
    h.filter = CodecFilter(frame[4]);
    h.method = CodecMethod(frame[5]);
    std::memcpy(&h.rawSize, frame.data() + 6, 8);
    std::memcpy(&h.crc, frame.data() + 14, 4);
    COP_IO_CHECK(h.rawSize <= maxRawBytes,
               "codec: frame raw size exceeds cap");
    return h;
}

} // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed) {
    const auto& t = crcTables();
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    const std::uint8_t* p = bytes.data();
    std::size_t n = bytes.size();
    while (n >= 8) {
        std::uint32_t lo;
        std::uint32_t hi;
        std::memcpy(&lo, p, 4);
        std::memcpy(&hi, p + 4, 4);
        lo ^= c;
        c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
            t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^
            t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
            t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    while (n-- > 0)
        c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

EncodeResult encode(std::span<const std::uint8_t> raw, CodecFilter filter,
                    bool autoFilter) {
    if (filter == CodecFilter::None && autoFilter && raw.size() >= 64) {
        if (raw.size() % 24 == 0)
            filter = CodecFilter::DeltaXor24;
        else if (raw.size() % 8 == 0)
            filter = CodecFilter::DeltaXor8;
    }

    EncodeResult res;
    res.filter = filter;

    // Assemble the header in place, then append the LZ stream directly
    // after it — no separate body buffer. The filtered working copy is
    // per-thread scratch for the same reason as the head table.
    res.frame.reserve(kHeaderSize + raw.size());
    res.frame.insert(res.frame.end(), kMagic.begin(), kMagic.end());
    res.frame.push_back(std::uint8_t(res.filter));
    res.frame.push_back(std::uint8_t(CodecMethod::Lz));
    const std::uint64_t rawSize = raw.size();
    const std::uint32_t crc = crc32(raw);
    res.frame.resize(kHeaderSize);
    std::memcpy(res.frame.data() + 6, &rawSize, 8);
    std::memcpy(res.frame.data() + 14, &crc, 4);

    thread_local std::vector<std::uint8_t> work;
    work.assign(raw.begin(), raw.end());
    if (filter != CodecFilter::None) applyFilter(filter, work);

    if (lzCompress(work, res.frame)) {
        res.method = CodecMethod::Lz;
    } else {
        // Stored frames keep the *unfiltered* bytes so decode of a
        // Stored frame is a straight copy.
        res.method = CodecMethod::Stored;
        res.filter = CodecFilter::None;
        res.frame[4] = std::uint8_t(CodecFilter::None);
        res.frame[5] = std::uint8_t(CodecMethod::Stored);
        res.frame.insert(res.frame.end(), raw.begin(), raw.end());
    }
    return res;
}

std::vector<std::uint8_t> decode(std::span<const std::uint8_t> frame,
                                 std::size_t maxRawBytes) {
    const Header h = parseHeader(frame, maxRawBytes);
    const auto body = frame.subspan(kHeaderSize);
    std::vector<std::uint8_t> out;
    out.reserve(std::size_t(h.rawSize));
    if (h.method == CodecMethod::Stored) {
        COP_IO_CHECK(body.size() == h.rawSize,
                   "codec: stored frame size mismatch");
        out.assign(body.begin(), body.end());
    } else {
        lzDecompress(body, out, std::size_t(h.rawSize));
        if (h.filter != CodecFilter::None) undoFilter(h.filter, out);
    }
    COP_IO_CHECK(crc32(out) == h.crc, "codec: CRC mismatch");
    return out;
}

std::size_t frameRawSize(std::span<const std::uint8_t> frame,
                         std::size_t maxRawBytes) {
    return std::size_t(parseHeader(frame, maxRawBytes).rawSize);
}

} // namespace cop::util
