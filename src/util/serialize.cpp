#include "util/serialize.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace cop {

void writeFile(const std::string& path, std::span<const std::uint8_t> bytes) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) throw IoError("cannot open for writing: " + tmp);
        os.write(reinterpret_cast<const char*>(bytes.data()),
                 std::streamsize(bytes.size()));
        if (!os) throw IoError("short write: " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) throw IoError("rename failed: " + tmp + " -> " + path + ": " +
                          ec.message());
}

std::vector<std::uint8_t> readFile(const std::string& path) {
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) throw IoError("cannot open for reading: " + path);
    const auto size = is.tellg();
    is.seekg(0);
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
    is.read(reinterpret_cast<char*>(buf.data()), size);
    if (!is) throw IoError("short read: " + path);
    return buf;
}

} // namespace cop
