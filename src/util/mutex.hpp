#pragma once

/// \file mutex.hpp
/// Capability-annotated mutex wrapper + runtime lock-order detector.
///
/// Every lock in this repository goes through `util::Mutex` so that two
/// orthogonal checkers can see it:
///
///  1. **Clang's `-Wthread-safety` static analysis.** The `COP_CAPABILITY` /
///     `COP_GUARDED_BY` / `COP_REQUIRES` macros expand to the Clang
///     thread-safety attributes (no-ops on GCC), turning lock-discipline
///     violations — touching a `COP_GUARDED_BY` field without holding its
///     mutex, returning with a lock held, double-locking — into compile
///     errors under the `-Werror=thread-safety` CI job.
///
///  2. **A runtime lock-order detector** (`LockOrderRegistry`). Each thread
///     keeps a stack of held `Mutex`es; every acquisition adds
///     held-before-acquired edges to a global acquisition-order graph. The
///     first acquisition that closes a cycle reports *both* offending
///     acquisition stacks (the current one and the recorded stack of the
///     conflicting edge) and aborts — making ABBA deadlocks deterministic
///     build failures instead of timing-dependent hangs that TSan only sees
///     when both threads actually race. On by default in debug builds
///     (`!NDEBUG`); runtime-toggleable so release-build tests can exercise
///     it.
///
/// This header is the single place in src/ allowed to name `std::mutex`
/// directly (enforced by the grep gate in CI / tools/run_fuzz.sh's sibling
/// checks): everything else uses `Mutex`, `LockGuard`, `UniqueLock`.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

// --- Clang thread-safety attribute macros (no-op elsewhere) -------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define COP_TSA(x) __attribute__((x))
#endif
#endif
#ifndef COP_TSA
#define COP_TSA(x) // not Clang: attributes compile away
#endif

#define COP_CAPABILITY(name) COP_TSA(capability(name))
#define COP_SCOPED_CAPABILITY COP_TSA(scoped_lockable)
#define COP_GUARDED_BY(m) COP_TSA(guarded_by(m))
#define COP_PT_GUARDED_BY(m) COP_TSA(pt_guarded_by(m))
#define COP_REQUIRES(...) COP_TSA(requires_capability(__VA_ARGS__))
#define COP_ACQUIRE(...) COP_TSA(acquire_capability(__VA_ARGS__))
#define COP_RELEASE(...) COP_TSA(release_capability(__VA_ARGS__))
#define COP_TRY_ACQUIRE(...) COP_TSA(try_acquire_capability(__VA_ARGS__))
#define COP_EXCLUDES(...) COP_TSA(locks_excluded(__VA_ARGS__))
#define COP_RETURN_CAPABILITY(x) COP_TSA(lock_returned(x))
#define COP_NO_THREAD_SAFETY_ANALYSIS COP_TSA(no_thread_safety_analysis)

namespace cop::util {

class Mutex;

/// Global acquisition-order graph + per-thread held-lock stacks. The
/// graph's own guard is a bare std::mutex on purpose: routing it through
/// Mutex would recurse into the detector.
class LockOrderRegistry {
public:
    static LockOrderRegistry& instance();

    /// Detector on/off. Defaults to on when NDEBUG is not defined. The
    /// per-lock cost when a thread holds no other lock is one relaxed
    /// atomic load plus a thread-local vector push, so tests may enable it
    /// in release builds too.
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    using FailureHandler = std::function<void(const std::string& report)>;

    /// Replaces the cycle handler (default: write the report to stderr and
    /// abort). Returns the previous handler so tests can restore it.
    FailureHandler setFailureHandler(FailureHandler h);

    /// Drops all recorded ordering edges (not the held stacks). Tests use
    /// this to isolate scenarios from each other.
    void resetGraph();

    // Called by Mutex; not part of the public surface.
    void onAcquired(const Mutex* m);
    void onReleased(const Mutex* m);
    void onDestroyed(const Mutex* m);

private:
    LockOrderRegistry() = default;

    /// One recorded held-before-acquired edge; `stack` is a rendered
    /// snapshot of the acquiring thread's held-lock stack at record time,
    /// shown verbatim in cycle reports ("both stacks").
    struct Edge {
        std::string stack;
    };

    bool findPath(std::uint64_t from, std::uint64_t to,
                  std::vector<std::uint64_t>& path) const;
    std::string renderStack(const std::vector<const Mutex*>& held,
                            const Mutex* acquiring) const;
    void reportCycle(const std::vector<const Mutex*>& held, const Mutex* m,
                     const std::vector<std::uint64_t>& path);

    std::atomic<bool> enabled_{
#ifdef NDEBUG
        false
#else
        true
#endif
    };

    // graphMutex_ is deliberately a bare std::mutex (wrapping it in Mutex
    // would recurse into the detector); everything below it is guarded by
    // it.
    std::mutex graphMutex_;
    std::unordered_map<std::uint64_t,
                       std::unordered_map<std::uint64_t, Edge>>
        edges_;
    std::unordered_map<std::uint64_t, std::string> names_;
    FailureHandler handler_;
};

/// Annotated exclusive mutex. `name` shows up in lock-order reports; give
/// every long-lived mutex one.
class COP_CAPABILITY("mutex") Mutex {
public:
    explicit Mutex(const char* name = "mutex")
        : name_(name), id_(nextId()) {}
    ~Mutex() { LockOrderRegistry::instance().onDestroyed(this); }

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() COP_ACQUIRE() {
        m_.lock();
        LockOrderRegistry::instance().onAcquired(this);
    }

    void unlock() COP_RELEASE() {
        LockOrderRegistry::instance().onReleased(this);
        m_.unlock();
    }

    bool try_lock() COP_TRY_ACQUIRE(true) {
        if (!m_.try_lock()) return false;
        LockOrderRegistry::instance().onAcquired(this);
        return true;
    }

    const char* name() const { return name_; }
    std::uint64_t orderId() const { return id_; }

private:
    static std::uint64_t nextId();

    std::mutex m_;
    const char* name_;
    std::uint64_t id_;
};

/// Scoped lock; the annotated replacement for std::lock_guard.
class COP_SCOPED_CAPABILITY LockGuard {
public:
    explicit LockGuard(Mutex& m) COP_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~LockGuard() COP_RELEASE() { m_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

private:
    Mutex& m_;
};

/// Scoped lock usable with std::condition_variable_any (BasicLockable):
/// the wait path goes through unlock()/lock(), so both the capability
/// bookkeeping and the lock-order detector stay consistent across waits.
class COP_SCOPED_CAPABILITY UniqueLock {
public:
    explicit UniqueLock(Mutex& m) COP_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~UniqueLock() COP_RELEASE() {
        if (owned_) m_.unlock();
    }

    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

    void lock() COP_ACQUIRE() {
        m_.lock();
        owned_ = true;
    }
    void unlock() COP_RELEASE() {
        m_.unlock();
        owned_ = false;
    }

private:
    Mutex& m_;
    bool owned_ = true;
};

} // namespace cop::util
