#pragma once

/// \file statistics.hpp
/// Statistical estimators used throughout Copernicus: running moments,
/// standard errors (naive, block-averaged, bootstrap), autocorrelation
/// analysis, and weighted averages. The paper's stop criterion ("standard
/// error estimate of the output result has reached a user-specified minimum
/// value", §2) and Fig. 5's error bars are computed with these tools.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cop {

class Rng;

/// Numerically stable single-pass accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x);
    void merge(const RunningStats& other);
    void clear();

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    /// Population variance (divides by n). Zero for n < 1.
    double variancePopulation() const;
    /// Sample variance (divides by n-1). Zero for n < 2.
    double variance() const;
    double stddev() const;
    /// Naive standard error of the mean: stddev / sqrt(n).
    double standardError() const;
    double min() const { return min_; }
    double max() const { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   ///< Sample variance (n-1).
double stddev(std::span<const double> xs);
double standardError(std::span<const double> xs);

/// Weighted mean: sum(w*x)/sum(w). Weights must be non-negative with a
/// positive sum.
double weightedMean(std::span<const double> xs, std::span<const double> ws);

/// Block-averaging standard error for correlated time series: splits the
/// series into `nBlocks` contiguous blocks and computes the SEM of block
/// means. The correct estimator for MD observables with unknown correlation
/// time.
double blockStandardError(std::span<const double> xs, std::size_t nBlocks);

/// Bootstrap standard error of the mean with `nResamples` resamples.
/// Deterministic given the RNG state.
double bootstrapStandardError(std::span<const double> xs,
                              std::size_t nResamples, Rng& rng);

/// Normalized autocorrelation function C(k) for lags 0..maxLag (inclusive);
/// C(0) == 1 by construction (unless the series is constant, where all lags
/// return 0).
std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t maxLag);

/// Integrated autocorrelation time: 1 + 2*sum_k C(k), summed until C(k)
/// first drops below zero (initial-positive-sequence convention).
double integratedAutocorrelationTime(std::span<const double> xs,
                                     std::size_t maxLag);

/// Simple percentile (linear interpolation between order statistics).
/// p in [0, 100].
double percentile(std::vector<double> xs, double p);

} // namespace cop
