#pragma once

/// \file logging.hpp
/// Lightweight leveled logger. The Copernicus servers and workers use it to
/// report matching decisions, heartbeats, and failures; benches set the
/// level to Warn so their table output stays clean.

#include <atomic>
#include <sstream>
#include <string>

#include "util/mutex.hpp"

namespace cop {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Logger {
public:
    /// Process-wide singleton. Thread-safe.
    static Logger& instance();

    void setLevel(LogLevel level) {
        level_.store(level, std::memory_order_relaxed);
    }
    LogLevel level() const { return level_.load(std::memory_order_relaxed); }

    /// Emits `msg` tagged with level and component, if enabled.
    void log(LogLevel level, const std::string& component,
             const std::string& msg) COP_EXCLUDES(mutex_);

    /// Number of messages emitted at >= Warn since construction (used by
    /// tests to assert "no warnings").
    std::size_t warningCount() const COP_EXCLUDES(mutex_) {
        util::LockGuard lock(mutex_);
        return warnCount_;
    }

private:
    Logger() = default;
    /// Atomic: benches flip the level while worker threads log.
    std::atomic<LogLevel> level_{LogLevel::Warn};
    /// Leaf lock: guards the warning counter and serializes stderr writes;
    /// nothing else is ever acquired under it.
    mutable util::Mutex mutex_{"Logger.mutex"};
    std::size_t warnCount_ COP_GUARDED_BY(mutex_) = 0;
};

namespace detail {
struct LogLine {
    LogLevel level;
    const char* component;
    std::ostringstream oss;
    LogLine(LogLevel l, const char* c) : level(l), component(c) {}
    ~LogLine() { Logger::instance().log(level, component, oss.str()); }
    template <typename T>
    LogLine& operator<<(const T& v) {
        oss << v;
        return *this;
    }
};
} // namespace detail

} // namespace cop

#define COP_LOG_DEBUG(component) ::cop::detail::LogLine(::cop::LogLevel::Debug, component)
#define COP_LOG_INFO(component)  ::cop::detail::LogLine(::cop::LogLevel::Info, component)
#define COP_LOG_WARN(component)  ::cop::detail::LogLine(::cop::LogLevel::Warn, component)
#define COP_LOG_ERROR(component) ::cop::detail::LogLine(::cop::LogLevel::Error, component)
