#pragma once

/// \file timer.hpp
/// Wall-clock stopwatch for the bench harness and the InProcess backend.

#include <chrono>

namespace cop {

class Timer {
public:
    Timer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    double elapsedSeconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    double elapsedMilliseconds() const { return elapsedSeconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace cop
