#pragma once

/// \file histogram.hpp
/// Fixed-bin 1D histogram used for population analyses (Fig. 4) and for the
/// free-energy overlap diagnostics in the BAR module.

#include <cstddef>
#include <vector>

namespace cop {

class Histogram {
public:
    /// Bins [lo, hi) into `nBins` uniform bins. Out-of-range samples are
    /// counted in underflow/overflow.
    Histogram(double lo, double hi, std::size_t nBins);

    void add(double x, double weight = 1.0);

    std::size_t numBins() const { return counts_.size(); }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double binWidth() const { return width_; }
    double binCenter(std::size_t i) const;
    double count(std::size_t i) const { return counts_[i]; }
    double underflow() const { return underflow_; }
    double overflow() const { return overflow_; }
    /// Total weight including under/overflow.
    double totalWeight() const;

    /// Normalized density: count / (totalInRange * binWidth); zero if empty.
    std::vector<double> density() const;

    /// Fraction of in-range weight at or above `x`.
    double fractionAbove(double x) const;

private:
    double lo_, hi_, width_;
    std::vector<double> counts_;
    double underflow_ = 0.0;
    double overflow_ = 0.0;
};

} // namespace cop
