#pragma once

/// \file random.hpp
/// Deterministic, splittable pseudo-random number generation.
///
/// The MD engine and the adaptive-sampling controller both need reproducible
/// streams that can be forked per trajectory (so that running 225 trajectories
/// in any order, on any number of threads, yields identical physics). We use
/// xoshiro256++ seeded through SplitMix64, the standard recommendation of the
/// xoshiro authors.

#include <cstdint>
#include <limits>

#include "util/vec3.hpp"

namespace cop {

/// SplitMix64: used for seeding and for cheap hash-style mixing.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four state words via SplitMix64 so that any 64-bit seed
    /// (including 0) produces a well-mixed state.
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        SplitMix64 sm(seed);
        for (auto& w : s_) w = sm.next();
        haveGauss_ = false;
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() { return next(); }

    std::uint64_t next() {
        const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1) with 53 bits of precision.
    double uniform() { return double(next() >> 11) * 0x1.0p-53; }

    /// Uniform double in [a, b).
    double uniform(double a, double b) { return a + (b - a) * uniform(); }

    /// Uniform integer in [0, n). n must be > 0. Uses rejection to avoid
    /// modulo bias.
    std::uint64_t uniformInt(std::uint64_t n) {
        const std::uint64_t threshold = (0 - n) % n;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold) return r % n;
        }
    }

    /// Standard normal via the polar Box-Muller method (caches the spare).
    double gaussian() {
        if (haveGauss_) {
            haveGauss_ = false;
            return spareGauss_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double f = std::sqrt(-2.0 * std::log(s) / s);
        spareGauss_ = v * f;
        haveGauss_ = true;
        return u * f;
    }

    /// Normal with given mean and standard deviation.
    double gaussian(double mean, double stddev) {
        return mean + stddev * gaussian();
    }

    /// Isotropic Gaussian 3-vector with per-component stddev.
    Vec3 gaussianVec3(double stddev) {
        return {gaussian() * stddev, gaussian() * stddev, gaussian() * stddev};
    }

    /// Derives an independent child stream; deterministic in (parent seed,
    /// stream index). Used to fork one RNG per trajectory/command.
    Rng split(std::uint64_t streamIndex) const {
        SplitMix64 sm(s_[0] ^ (0x9e3779b97f4a7c15ULL * (streamIndex + 1)));
        std::uint64_t mixed = sm.next() ^ s_[1];
        mixed ^= rotl(s_[2], 13) + streamIndex;
        return Rng(mixed ^ rotl(s_[3], 29));
    }

    /// Raw generator state for checkpointing (4 state words + cached
    /// gaussian), so restored stochastic trajectories are bit-exact.
    struct Snapshot {
        std::uint64_t s[4];
        bool haveGauss;
        double spareGauss;
    };
    Snapshot snapshot() const {
        return {{s_[0], s_[1], s_[2], s_[3]}, haveGauss_, spareGauss_};
    }
    void restore(const Snapshot& snap) {
        for (int i = 0; i < 4; ++i) s_[i] = snap.s[i];
        haveGauss_ = snap.haveGauss;
        spareGauss_ = snap.spareGauss;
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4] = {};
    bool haveGauss_ = false;
    double spareGauss_ = 0.0;
};

/// Draws velocities for `mass` at temperature T (kB=1 reduced units) from a
/// Maxwell-Boltzmann distribution: each component ~ N(0, sqrt(T/m)).
Vec3 maxwellBoltzmannVelocity(Rng& rng, double mass, double temperature);

} // namespace cop
