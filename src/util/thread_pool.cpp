#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace cop {

ThreadPool::ThreadPool(std::size_t nThreads) {
    if (nThreads == 0)
        nThreads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    workers_.reserve(nThreads);
    for (std::size_t i = 0; i < nThreads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
    {
        util::LockGuard lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
    for (;;) {
        std::function<void()> task;
        {
            util::UniqueLock lock(mutex_);
            // Condition checked inline (not via a wait predicate lambda)
            // so the guarded reads sit visibly under the held capability.
            while (!stop_ && tasks_.empty()) cv_.wait(lock);
            if (stop_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& f) {
    parallelForChunked(begin, end,
                       [&f](std::size_t lo, std::size_t hi) {
                           for (std::size_t i = lo; i < hi; ++i) f(i);
                       });
}

void ThreadPool::parallelForChunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& f) {
    COP_REQUIRE(begin <= end, "invalid range");
    if (begin == end) return;
    const std::size_t n = end - begin;
    const std::size_t nChunks = std::min(n, workers_.size() + 1);
    const std::size_t chunk = (n + nChunks - 1) / nChunks;

    std::vector<std::future<void>> futures;
    futures.reserve(nChunks);
    // Submit all but the last chunk; run the last one on the calling thread
    // so a pool task that itself calls parallelFor cannot deadlock a
    // single-thread pool.
    std::size_t lo = begin;
    for (std::size_t c = 0; c + 1 < nChunks; ++c) {
        const std::size_t hi = std::min(lo + chunk, end);
        futures.push_back(submit([&f, lo, hi] { f(lo, hi); }));
        lo = hi;
    }
    if (lo < end) f(lo, end);
    for (auto& fut : futures) fut.get();
}

} // namespace cop
