#pragma once

/// \file serialize.hpp
/// Portable little-endian binary serialization used for checkpoints,
/// trajectory files and network message payloads. Format: raw little-endian
/// scalars, length-prefixed strings/vectors, with an optional magic+version
/// header helper for file formats.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"
#include "util/vec3.hpp"

namespace cop {

/// Appends encoded values to an internal byte buffer.
class BinaryWriter {
public:
    const std::vector<std::uint8_t>& buffer() const { return buf_; }
    std::vector<std::uint8_t> takeBuffer() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

    /// Drops the contents but keeps the capacity — reusing one writer
    /// across many small encodes skips the per-encode allocation.
    void clear() { buf_.clear(); }

    /// Prehint for the bytes about to be appended; with an exact hint
    /// (payload encodedSize()) encoding never reallocates.
    void reserve(std::size_t bytes) { buf_.reserve(buf_.size() + bytes); }

    template <typename T>
        requires std::is_arithmetic_v<T>
    void write(T v) {
        // Assume little-endian host (x86/ARM); static_assert documents it.
        static_assert(sizeof(T) <= 8);
        const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(T));
    }

    void write(const Vec3& v) {
        write(v.x);
        write(v.y);
        write(v.z);
    }

    void write(const std::string& s) {
        write(std::uint64_t(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    template <typename T>
    void write(const std::vector<T>& v) {
        write(std::uint64_t(v.size()));
        for (const auto& x : v) write(x);
    }

    void writeBytes(std::span<const std::uint8_t> bytes) {
        write(std::uint64_t(bytes.size()));
        buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    }

    /// Writes a 4-char magic tag plus a format version.
    void writeHeader(const char magic[4], std::uint32_t version) {
        buf_.insert(buf_.end(), magic, magic + 4);
        write(version);
    }

private:
    std::vector<std::uint8_t> buf_;
};

/// Reads encoded values from a byte span; throws IoError on truncation.
class BinaryReader {
public:
    explicit BinaryReader(std::span<const std::uint8_t> data)
        : data_(data) {}

    std::size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return remaining() == 0; }

    template <typename T>
        requires std::is_arithmetic_v<T>
    T read() {
        require(sizeof(T));
        T v;
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    Vec3 readVec3() {
        Vec3 v;
        v.x = read<double>();
        v.y = read<double>();
        v.z = read<double>();
        return v;
    }

    std::string readString() {
        const auto n = readCount(1);
        std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                      std::size_t(n));
        pos_ += std::size_t(n);
        return s;
    }

    template <typename T>
        requires std::is_arithmetic_v<T>
    std::vector<T> readVector() {
        const auto n = readCount(sizeof(T));
        std::vector<T> v;
        v.reserve(std::size_t(n));
        for (std::uint64_t i = 0; i < n; ++i) v.push_back(read<T>());
        return v;
    }

    std::vector<Vec3> readVec3Vector() {
        const auto n = readCount(3 * sizeof(double));
        std::vector<Vec3> v;
        v.reserve(std::size_t(n));
        for (std::uint64_t i = 0; i < n; ++i) v.push_back(readVec3());
        return v;
    }

    std::vector<std::uint8_t> readBytes() {
        const auto n = readCount(1);
        const auto* p = data_.data() + pos_;
        std::vector<std::uint8_t> v(p, p + std::size_t(n));
        pos_ += std::size_t(n);
        return v;
    }

    /// Validates a 4-char magic tag and returns the version that follows.
    std::uint32_t readHeader(const char magic[4]) {
        require(4);
        if (std::memcmp(data_.data() + pos_, magic, 4) != 0)
            throw IoError("bad magic in serialized stream");
        pos_ += 4;
        return read<std::uint32_t>();
    }

    /// Reads a 64-bit length prefix and validates it against the bytes
    /// actually left in the buffer BEFORE the caller allocates anything:
    /// `n` elements of `elemSize` bytes each must still be present. A
    /// corrupt envelope therefore throws IoError instead of demanding a
    /// multi-GiB reserve(); the untrusted-arithmetic form `n > rem / size`
    /// also cannot overflow, unlike `pos_ + n * size`.
    std::uint64_t readCount(std::size_t elemSize) {
        const auto n = read<std::uint64_t>();
        if (n > remaining() / elemSize)
            throw IoError(
                "corrupt length prefix: " + std::to_string(n) +
                " elements of " + std::to_string(elemSize) +
                " bytes declared, only " + std::to_string(remaining()) +
                " bytes remain");
        return n;
    }

private:
    void require(std::size_t n) const {
        if (remaining() < n)
            throw IoError("truncated serialized stream: need " +
                          std::to_string(n) + " bytes, have " +
                          std::to_string(remaining()));
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

// Overloads so BinaryWriter::write(std::vector<Vec3>) compiles.
template <>
inline void BinaryWriter::write<Vec3>(const std::vector<Vec3>& v) {
    write(std::uint64_t(v.size()));
    for (const auto& x : v) write(x);
}

/// Writes the buffer atomically-ish to `path` (write to temp then rename).
void writeFile(const std::string& path,
               std::span<const std::uint8_t> bytes);

/// Reads a whole file; throws IoError if it cannot be opened.
std::vector<std::uint8_t> readFile(const std::string& path);

} // namespace cop
