#pragma once

/// \file vec3.hpp
/// Minimal 3-vector / 3x3-matrix algebra used by the MD engine and the MSM
/// geometry code. Everything is constexpr-friendly and header-only so the
/// compiler can keep hot force loops fully inlined and vectorizable.

#include <array>
#include <cmath>
#include <iosfwd>
#include <ostream>

namespace cop {

/// A 3-vector of doubles. Plain aggregate; cheap to copy.
struct Vec3 {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    constexpr double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
    constexpr double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

    constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
    constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
    constexpr Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }
    constexpr Vec3& operator/=(double s) { x /= s; y /= s; z /= s; return *this; }
};

constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }
constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }

constexpr double dot(const Vec3& a, const Vec3& b) {
    return a.x * b.x + a.y * b.y + a.z * b.z;
}
constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
constexpr double norm2(const Vec3& a) { return dot(a, a); }
inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }

/// Unit vector along a; a must be nonzero.
inline Vec3 normalized(const Vec3& a) { return a / norm(a); }

inline double distance(const Vec3& a, const Vec3& b) { return norm(a - b); }
constexpr double distance2(const Vec3& a, const Vec3& b) { return norm2(a - b); }

constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
}

std::ostream& operator<<(std::ostream& os, const Vec3& v);

/// Row-major 3x3 matrix.
struct Mat3 {
    std::array<std::array<double, 3>, 3> m{};

    constexpr Mat3() = default;

    static constexpr Mat3 identity() {
        Mat3 r;
        r.m[0][0] = r.m[1][1] = r.m[2][2] = 1.0;
        return r;
    }

    constexpr double& operator()(int i, int j) { return m[i][j]; }
    constexpr double operator()(int i, int j) const { return m[i][j]; }
};

constexpr Vec3 operator*(const Mat3& a, const Vec3& v) {
    return {a(0, 0) * v.x + a(0, 1) * v.y + a(0, 2) * v.z,
            a(1, 0) * v.x + a(1, 1) * v.y + a(1, 2) * v.z,
            a(2, 0) * v.x + a(2, 1) * v.y + a(2, 2) * v.z};
}

constexpr Mat3 operator*(const Mat3& a, const Mat3& b) {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k)
                r(i, j) += a(i, k) * b(k, j);
    return r;
}

constexpr Mat3 transpose(const Mat3& a) {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            r(i, j) = a(j, i);
    return r;
}

constexpr double determinant(const Mat3& a) {
    return a(0, 0) * (a(1, 1) * a(2, 2) - a(1, 2) * a(2, 1)) -
           a(0, 1) * (a(1, 0) * a(2, 2) - a(1, 2) * a(2, 0)) +
           a(0, 2) * (a(1, 0) * a(2, 1) - a(1, 1) * a(2, 0));
}

constexpr double trace(const Mat3& a) { return a(0, 0) + a(1, 1) + a(2, 2); }

/// Rotation matrix for angle `theta` (radians) about unit axis `u`.
inline Mat3 rotationMatrix(const Vec3& u, double theta) {
    const double c = std::cos(theta), s = std::sin(theta), t = 1.0 - c;
    Mat3 r;
    r(0, 0) = t * u.x * u.x + c;
    r(0, 1) = t * u.x * u.y - s * u.z;
    r(0, 2) = t * u.x * u.z + s * u.y;
    r(1, 0) = t * u.x * u.y + s * u.z;
    r(1, 1) = t * u.y * u.y + c;
    r(1, 2) = t * u.y * u.z - s * u.x;
    r(2, 0) = t * u.x * u.z - s * u.y;
    r(2, 1) = t * u.y * u.z + s * u.x;
    r(2, 2) = t * u.z * u.z + c;
    return r;
}

} // namespace cop
