#pragma once

/// \file thread_pool.hpp
/// A fixed-size work-stealing-free thread pool plus a parallel-for helper.
/// This is the "threads within a node" tier of the paper's Fig. 6 hierarchy:
/// mdlib uses it to decompose force loops, and the InProcess execution
/// backend uses it to run independent commands concurrently.
///
/// Design notes (per C++ Core Guidelines CP.*): tasks communicate only
/// through futures / the parallelFor barrier; no shared mutable state leaks
/// out of the pool; joins happen in the destructor so lifetimes are safe.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cop {

class ThreadPool {
public:
    /// Creates `nThreads` workers; nThreads == 0 means "hardware
    /// concurrency, at least 1".
    explicit ThreadPool(std::size_t nThreads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return workers_.size(); }

    /// Enqueues a task; returns a future for its result.
    template <typename F>
    auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard lock(mutex_);
            tasks_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Runs f(i) for i in [begin, end), split into roughly equal contiguous
    /// chunks across the pool; blocks until all chunks complete. The calling
    /// thread participates, so a 1-thread pool still makes progress even if
    /// called from within a pool task.
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)>& f);

    /// Chunked variant: f(chunkBegin, chunkEnd) once per chunk. Lower
    /// overhead for tight inner loops (force kernels).
    void parallelForChunked(
        std::size_t begin, std::size_t end,
        const std::function<void(std::size_t, std::size_t)>& f);

private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace cop
