#pragma once

/// \file thread_pool.hpp
/// A fixed-size work-stealing-free thread pool plus a parallel-for helper.
/// This is the "threads within a node" tier of the paper's Fig. 6 hierarchy:
/// mdlib uses it to decompose force loops, and the InProcess execution
/// backend uses it to run independent commands concurrently.
///
/// Design notes (per C++ Core Guidelines CP.*): tasks communicate only
/// through futures / the parallelFor barrier; no shared mutable state leaks
/// out of the pool; joins happen in the destructor so lifetimes are safe.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace cop {

class ThreadPool {
public:
    /// Creates `nThreads` workers; nThreads == 0 means "hardware
    /// concurrency, at least 1".
    explicit ThreadPool(std::size_t nThreads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return workers_.size(); }

    /// Enqueues a task; returns a future for its result.
    template <typename F>
    auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
        std::future<R> fut = task->get_future();
        {
            util::LockGuard lock(mutex_);
            tasks_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Runs f(i) for i in [begin, end), split into roughly equal contiguous
    /// chunks across the pool; blocks until all chunks complete. The calling
    /// thread participates, so a 1-thread pool still makes progress even if
    /// called from within a pool task.
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)>& f);

    /// Chunked variant: f(chunkBegin, chunkEnd) once per chunk. Lower
    /// overhead for tight inner loops (force kernels).
    void parallelForChunked(
        std::size_t begin, std::size_t end,
        const std::function<void(std::size_t, std::size_t)>& f);

    /// Number of chunks forChunks/parallelReduce* split an n-element range
    /// into: one per worker plus the calling thread, never more than n.
    std::size_t chunkCountFor(std::size_t n) const {
        return std::min(n, workers_.size() + 1);
    }

    /// Like chunkCountFor, but never splits below `minGrain` elements per
    /// chunk, so tiny ranges stay on the calling thread instead of paying
    /// submit/future overhead. Used by the incremental MSM layer, whose
    /// per-generation ranges shrink to "new snapshots only".
    std::size_t chunkCountForGrained(std::size_t n,
                                     std::size_t minGrain) const {
        const std::size_t byGrain =
            minGrain > 1 ? std::max<std::size_t>(1, n / minGrain) : n;
        return std::min(chunkCountFor(n), byGrain);
    }

    /// Runs f(chunkIndex, lo, hi) for chunkCountFor(end - begin) contiguous
    /// chunks covering [begin, end). Fully templated — the callable is
    /// invoked once per chunk with no per-index std::function dispatch, so
    /// the chunk body stays inlinable/vectorizable. The calling thread runs
    /// the last chunk (a 1-thread pool still makes progress when called
    /// from inside a pool task). chunkIndex is dense in [0, nChunks), so it
    /// can index per-thread accumulation buffers.
    template <typename F>
    void forChunks(std::size_t begin, std::size_t end, F&& f) {
        if (begin >= end) return;
        forChunksN(begin, end, chunkCountFor(end - begin),
                   std::forward<F>(f));
    }

    /// forChunks with a minimum per-chunk grain: a range smaller than
    /// 2*minGrain runs entirely on the calling thread. Chunk boundaries must
    /// not affect the caller's result (per-index disjoint writes, or partial
    /// results merged value-exactly), which holds for every use in this
    /// repo — see the deterministic-reduction notes on parallelReduceChunked.
    template <typename F>
    void forChunksGrained(std::size_t begin, std::size_t end,
                          std::size_t minGrain, F&& f) {
        if (begin >= end) return;
        forChunksN(begin, end, chunkCountForGrained(end - begin, minGrain),
                   std::forward<F>(f));
    }

    /// Striped parallel reduction: evaluates chunkFn(lo, hi) -> T on each
    /// chunk concurrently, then combines the partial results **in chunk
    /// order** on the calling thread, so the result is deterministic for a
    /// fixed pool size. This is the O(N)-total replacement for the
    /// serial-loop-over-thread-buffers reduction pattern.
    template <typename T, typename ChunkFn, typename Combine>
    T parallelReduceChunked(std::size_t begin, std::size_t end, T init,
                            ChunkFn&& chunkFn, Combine&& combine) {
        if (begin >= end) return init;
        const std::size_t nChunks = chunkCountFor(end - begin);
        std::vector<T> partials(nChunks, init);
        forChunks(begin, end,
                  [&](std::size_t c, std::size_t lo, std::size_t hi) {
                      partials[c] = chunkFn(lo, hi);
                  });
        T result = std::move(init);
        for (auto& p : partials) result = combine(std::move(result), p);
        return result;
    }

    /// Per-index reduction convenience: combines f(i) over [begin, end).
    /// The per-index call is a template parameter, not a std::function, so
    /// simple bodies inline into the chunk loop.
    template <typename T, typename F, typename Combine>
    T parallelReduce(std::size_t begin, std::size_t end, T init, F&& f,
                     Combine&& combine) {
        return parallelReduceChunked(
            begin, end, std::move(init),
            [&](std::size_t lo, std::size_t hi) {
                T acc{};
                bool first = true;
                for (std::size_t i = lo; i < hi; ++i) {
                    if (first) {
                        acc = f(i);
                        first = false;
                    } else {
                        acc = combine(std::move(acc), f(i));
                    }
                }
                return acc;
            },
            combine);
    }

private:
    /// Shared body of forChunks/forChunksGrained: f(chunkIndex, lo, hi) over
    /// exactly nChunks contiguous chunks, the last on the calling thread.
    template <typename F>
    void forChunksN(std::size_t begin, std::size_t end, std::size_t nChunks,
                    F&& f) {
        const std::size_t n = end - begin;
        const std::size_t chunk = (n + nChunks - 1) / nChunks;
        std::vector<std::future<void>> futures;
        futures.reserve(nChunks - 1);
        std::size_t lo = begin;
        for (std::size_t c = 0; c + 1 < nChunks; ++c) {
            const std::size_t hi = std::min(lo + chunk, end);
            futures.push_back(submit([&f, c, lo, hi] { f(c, lo, hi); }));
            lo = hi;
        }
        if (lo < end) f(nChunks - 1, lo, end);
        for (auto& fut : futures) fut.get();
    }

    void workerLoop();

    std::vector<std::thread> workers_;
    /// Leaf lock of the repo-wide hierarchy (DESIGN.md "Concurrency
    /// invariants"): no other Mutex is ever acquired while holding it.
    util::Mutex mutex_{"ThreadPool.mutex"};
    std::queue<std::function<void()>> tasks_ COP_GUARDED_BY(mutex_);
    bool stop_ COP_GUARDED_BY(mutex_) = false;
    /// _any variant: waits on util::UniqueLock, so the capability and
    /// lock-order bookkeeping survive the unlock/relock inside wait().
    std::condition_variable_any cv_;
};

} // namespace cop
