#pragma once

/// \file string_util.hpp
/// Small string helpers shared by the CLI examples, the logging layer and
/// the network message codecs.

#include <string>
#include <vector>

namespace cop {

std::vector<std::string> split(const std::string& s, char delim);
std::string trim(const std::string& s);
std::string toLower(std::string s);
bool startsWith(const std::string& s, const std::string& prefix);
bool endsWith(const std::string& s, const std::string& suffix);

/// Joins parts with `sep` between them.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Fixed-precision formatting (printf "%.*f").
std::string formatFixed(double v, int precision);

/// Human-friendly engineering formatting: 1234567 -> "1.23M".
std::string formatEngineering(double v, int precision = 2);

/// Formats a duration in hours as "Xd Yh", "Xh Ym" or "Xm" as appropriate.
std::string formatHours(double hours);

} // namespace cop
