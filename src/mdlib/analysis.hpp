#pragma once

/// \file analysis.hpp
/// Trajectory-level physical analyses: radial distribution functions,
/// mean-squared displacement / diffusion coefficients, and per-residue
/// RMSF. These are the standard validation instruments for the generic
/// (LJ fluid) engine and useful structure diagnostics for the Gō model.

#include <vector>

#include "mdlib/pbc.hpp"
#include "mdlib/trajectory.hpp"
#include "util/vec3.hpp"

namespace cop::md {

/// Radial distribution function g(r) of a homogeneous fluid, averaged
/// over the given frames, binned to `nBins` bins over [0, rMax].
/// Returns (binCenters, g).
struct RdfResult {
    std::vector<double> r;
    std::vector<double> g;
};
RdfResult radialDistribution(const Trajectory& trajectory, const Box& box,
                             double rMax, std::size_t nBins);

/// Mean-squared displacement vs frame lag (no periodic unwrapping —
/// supply an unwrapped/open-boundary trajectory). msd[k] is the average
/// over particles and time origins of |x(t+k) - x(t)|^2.
std::vector<double> meanSquaredDisplacement(const Trajectory& trajectory,
                                            std::size_t maxLag);

/// Self-diffusion coefficient from the Einstein relation, fitting
/// MSD(t) = 6 D t over lags [fitBegin, maxLag] (frame units converted via
/// `timePerFrame`).
double diffusionCoefficient(const Trajectory& trajectory,
                            std::size_t maxLag, double timePerFrame,
                            std::size_t fitBegin = 1);

/// Root-mean-square fluctuation per particle, after superimposing every
/// frame onto the trajectory's mean structure.
std::vector<double> rmsf(const Trajectory& trajectory);

} // namespace cop::md
