#pragma once

/// \file trajectory.hpp
/// In-memory trajectory store with binary (de)serialization — the engine's
/// equivalent of Gromacs' .xtc output. The paper saved villin coordinates
/// every 50 ps giving 1000 frames per 50 ns trajectory; our Simulation
/// records frames at a configurable step interval.

#include <cstdint>
#include <vector>

#include "util/serialize.hpp"
#include "util/vec3.hpp"

namespace cop::md {

struct Frame {
    std::int64_t step = 0;
    double time = 0.0;
    std::vector<Vec3> positions;
};

class Trajectory {
public:
    void append(Frame frame);
    void append(std::int64_t step, double time, std::vector<Vec3> positions);

    std::size_t numFrames() const { return frames_.size(); }
    bool empty() const { return frames_.empty(); }
    const Frame& frame(std::size_t i) const;
    const Frame& back() const;
    const std::vector<Frame>& frames() const { return frames_; }

    /// Appends all frames of `other` (used when a command extends a
    /// trajectory by another segment).
    void extend(const Trajectory& other);

    /// Every `stride`-th frame, starting at `offset`.
    Trajectory subsampled(std::size_t stride, std::size_t offset = 0) const;

    void clear() { frames_.clear(); }

    void serialize(BinaryWriter& w) const;
    static Trajectory deserialize(BinaryReader& r);

private:
    std::vector<Frame> frames_;
};

} // namespace cop::md
