#include "mdlib/simulation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace cop::md {

namespace {

void serializeFFParams(BinaryWriter& w, const ForceFieldParams& p) {
    w.write(std::int32_t(p.kind));
    w.write(std::int32_t(p.flavor));
    w.write(p.cutoff);
    w.write(p.neighborSkin);
    w.write(p.repEpsilon);
    w.write(p.repSigma);
    w.write(p.ljEpsilon);
    w.write(p.ljSigma);
    w.write(std::uint8_t(p.shiftLJ));
    w.write(std::uint8_t(p.useCoulombRF));
    w.write(p.coulombPrefactor);
    w.write(p.rfDielectric);
}

ForceFieldParams deserializeFFParams(BinaryReader& r) {
    ForceFieldParams p;
    p.kind = NonbondedKind(r.read<std::int32_t>());
    p.flavor = KernelFlavor(r.read<std::int32_t>());
    p.cutoff = r.read<double>();
    p.neighborSkin = r.read<double>();
    p.repEpsilon = r.read<double>();
    p.repSigma = r.read<double>();
    p.ljEpsilon = r.read<double>();
    p.ljSigma = r.read<double>();
    p.shiftLJ = r.read<std::uint8_t>() != 0;
    p.useCoulombRF = r.read<std::uint8_t>() != 0;
    p.coulombPrefactor = r.read<double>();
    p.rfDielectric = r.read<double>();
    return p;
}

void serializeIntegratorParams(BinaryWriter& w, const IntegratorParams& p) {
    w.write(std::int32_t(p.kind));
    w.write(p.dt);
    w.write(std::int32_t(p.thermostat));
    w.write(p.temperature);
    w.write(p.tauT);
    w.write(p.friction);
}

IntegratorParams deserializeIntegratorParams(BinaryReader& r) {
    IntegratorParams p;
    p.kind = IntegratorKind(r.read<std::int32_t>());
    p.dt = r.read<double>();
    p.thermostat = ThermostatKind(r.read<std::int32_t>());
    p.temperature = r.read<double>();
    p.tauT = r.read<double>();
    p.friction = r.read<double>();
    return p;
}

} // namespace

Simulation::Simulation(Topology topology, Box box, ForceFieldParams ffParams,
                       SimulationConfig config,
                       std::vector<Vec3> initialPositions)
    : topology_(std::make_unique<Topology>(std::move(topology))), box_(box),
      ffParams_(ffParams), config_(config) {
    COP_REQUIRE(initialPositions.size() == topology_->numParticles(),
                "initial positions size mismatch");
    COP_REQUIRE(config_.sampleInterval > 0, "sampleInterval must be > 0");
    topology_->finalize();
    forceField_ = std::make_unique<ForceField>(*topology_, box_, ffParams_);
    state_.resize(topology_->numParticles());
    state_.positions = std::move(initialPositions);
    integrator_ = std::make_unique<Integrator>(*forceField_,
                                               config_.integrator,
                                               Rng(config_.seed));
}

Simulation Simulation::forGoModel(const GoModel& model,
                                  std::vector<Vec3> start,
                                  SimulationConfig config) {
    return Simulation(model.topology, Box::open(), model.forceFieldParams(),
                      config, std::move(start));
}

void Simulation::initializeVelocities() {
    assignVelocities(*topology_, state_, config_.integrator.temperature,
                     integrator_->rng());
}

void Simulation::run(std::int64_t nSteps) {
    COP_REQUIRE(nSteps >= 0, "negative step count");
    if (trajectory_.empty())
        trajectory_.append(state_.step, state_.time, state_.positions);
    std::int64_t done = 0;
    while (done < nSteps) {
        // Advance to the next sampling boundary (aligned to the absolute
        // step count, so segments of any length sample consistently).
        const std::int64_t toBoundary =
            config_.sampleInterval - (state_.step % config_.sampleInterval);
        const std::int64_t chunk = std::min(toBoundary, nSteps - done);
        integrator_->run(state_, chunk);
        done += chunk;
        if (state_.step % config_.sampleInterval == 0)
            trajectory_.append(state_.step, state_.time, state_.positions);
    }
}

double Simulation::minimize(int maxIter, double stepSize) {
    std::vector<Vec3> forces;
    double e = forceField_->compute(state_.positions, forces).potential();
    for (int it = 0; it < maxIter; ++it) {
        double maxF = 0.0;
        for (const auto& f : forces) maxF = std::max(maxF, norm(f));
        if (maxF < 1e-8) break;
        // Cap the displacement of any particle at 0.05 length units.
        const double scale = std::min(stepSize, 0.05 / maxF);
        std::vector<Vec3> trial = state_.positions;
        for (std::size_t i = 0; i < trial.size(); ++i)
            trial[i] += forces[i] * scale;
        std::vector<Vec3> trialForces;
        const double eTrial =
            forceField_->compute(trial, trialForces).potential();
        if (eTrial < e) {
            state_.positions = std::move(trial);
            forces = std::move(trialForces);
            e = eTrial;
            stepSize *= 1.2;
        } else {
            stepSize *= 0.5;
            if (stepSize < 1e-12) break;
        }
    }
    // Leave state_.forces consistent with the minimized positions.
    forceField_->compute(state_.positions, state_.forces);
    return e;
}

std::vector<std::uint8_t> Simulation::checkpoint() const {
    BinaryWriter w;
    w.writeHeader("CSIM", 1);
    topology_->serialize(w);
    w.write(std::uint8_t(box_.periodic));
    w.write(box_.lengths);
    serializeFFParams(w, ffParams_);
    serializeIntegratorParams(w, config_.integrator);
    w.write(config_.sampleInterval);
    w.write(config_.seed);
    state_.serialize(w);
    trajectory_.serialize(w);
    const auto snap = integrator_->rng().snapshot();
    for (auto s : snap.s) w.write(s);
    w.write(std::uint8_t(snap.haveGauss));
    w.write(snap.spareGauss);
    return w.takeBuffer();
}

Simulation Simulation::restore(std::span<const std::uint8_t> blob) {
    BinaryReader r(blob);
    const auto version = r.readHeader("CSIM");
    COP_REQUIRE(version == 1, "unsupported checkpoint version");
    Topology top = Topology::deserialize(r);
    Box box;
    box.periodic = r.read<std::uint8_t>() != 0;
    box.lengths = r.readVec3();
    const ForceFieldParams ffp = deserializeFFParams(r);
    SimulationConfig config;
    config.integrator = deserializeIntegratorParams(r);
    config.sampleInterval = r.read<std::int64_t>();
    config.seed = r.read<std::uint64_t>();
    State state = State::deserialize(r);
    Trajectory traj = Trajectory::deserialize(r);
    Rng::Snapshot snap{};
    for (auto& s : snap.s) s = r.read<std::uint64_t>();
    snap.haveGauss = r.read<std::uint8_t>() != 0;
    snap.spareGauss = r.read<double>();

    Simulation sim(std::move(top), box, ffp, config, state.positions);
    sim.state_ = std::move(state);
    sim.trajectory_ = std::move(traj);
    sim.integrator_->rng().restore(snap);
    return sim;
}

} // namespace cop::md
