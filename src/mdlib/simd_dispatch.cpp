#include "mdlib/simd_dispatch.hpp"

#include <cstdlib>

#include "mdlib/simd_kernel_sets.hpp"
#include "util/error.hpp"

namespace cop::md {

const char* simdIsaName(SimdIsa isa) {
    switch (isa) {
    case SimdIsa::Auto: return "auto";
    case SimdIsa::Scalar: return "scalar";
    case SimdIsa::Sse2: return "sse2";
    case SimdIsa::Avx2: return "avx2";
    case SimdIsa::Avx512: return "avx512";
    case SimdIsa::Neon: return "neon";
    }
    return "unknown";
}

SimdIsa parseSimdIsaName(const std::string& name) {
    if (name == "auto") return SimdIsa::Auto;
    if (name == "scalar" || name == "generic") return SimdIsa::Scalar;
    if (name == "sse2") return SimdIsa::Sse2;
    if (name == "avx2") return SimdIsa::Avx2;
    if (name == "avx512") return SimdIsa::Avx512;
    if (name == "neon") return SimdIsa::Neon;
    throw InvalidArgument("unknown SIMD ISA name: '" + name +
                          "' (expected auto|scalar|sse2|avx2|avx512|neon)");
}

const std::vector<SimdIsa>& compiledSimdIsas() {
    static const std::vector<SimdIsa> isas = [] {
        std::vector<SimdIsa> v{SimdIsa::Scalar};
#ifdef COPERNICUS_SIMD_HAVE_SSE2
        v.push_back(SimdIsa::Sse2);
#endif
#ifdef COPERNICUS_SIMD_HAVE_NEON
        v.push_back(SimdIsa::Neon);
#endif
#ifdef COPERNICUS_SIMD_HAVE_AVX2
        v.push_back(SimdIsa::Avx2);
#endif
#ifdef COPERNICUS_SIMD_HAVE_AVX512
        v.push_back(SimdIsa::Avx512);
#endif
        return v;
    }();
    return isas;
}

namespace {

bool hostSupports(SimdIsa isa) {
    switch (isa) {
    case SimdIsa::Auto:
        return false;
    case SimdIsa::Scalar:
        return true;
    case SimdIsa::Sse2:
#if defined(__x86_64__) || defined(_M_X64)
        return true; // SSE2 is the x86-64 baseline
#else
        return false;
#endif
    case SimdIsa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case SimdIsa::Avx512:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx512f") != 0;
#else
        return false;
#endif
    case SimdIsa::Neon:
#if defined(__aarch64__)
        return true; // double-precision NEON is the AArch64 baseline
#else
        return false;
#endif
    }
    return false;
}

bool isCompiled(SimdIsa isa) {
    for (SimdIsa c : compiledSimdIsas())
        if (c == isa) return true;
    return false;
}

} // namespace

bool simdIsaRunnable(SimdIsa isa) {
    return isCompiled(isa) && hostSupports(isa);
}

SimdIsa detectSimdIsa() {
    const auto& isas = compiledSimdIsas(); // ordered narrowest to widest
    SimdIsa best = SimdIsa::Scalar;
    for (SimdIsa isa : isas)
        if (hostSupports(isa)) best = isa;
    return best;
}

SimdIsa resolveSimdIsa(SimdIsa requested) {
    SimdIsa isa = requested;
    if (isa == SimdIsa::Auto) {
        const char* env = std::getenv("COPERNICUS_SIMD");
        if (env != nullptr && env[0] != '\0') isa = parseSimdIsaName(env);
    }
    if (isa == SimdIsa::Auto) return detectSimdIsa();
    if (!simdIsaRunnable(isa))
        throw InvalidArgument(
            std::string("requested SIMD ISA '") + simdIsaName(isa) +
            (isCompiled(isa) ? "' is not supported by this CPU"
                             : "' was not compiled into this binary"));
    return isa;
}

const NonbondedKernelSet& kernelSetFor(SimdIsa isa) {
    COP_REQUIRE(isa != SimdIsa::Auto,
                "kernelSetFor requires a resolved ISA, not Auto");
    COP_REQUIRE(simdIsaRunnable(isa), "kernelSetFor: ISA not runnable here");
    switch (isa) {
    case SimdIsa::Scalar: {
        static const NonbondedKernelSet s = simd::genericKernels();
        return s;
    }
#ifdef COPERNICUS_SIMD_HAVE_SSE2
    case SimdIsa::Sse2: {
        static const NonbondedKernelSet s = simd::sse2Kernels();
        return s;
    }
#endif
#ifdef COPERNICUS_SIMD_HAVE_AVX2
    case SimdIsa::Avx2: {
        static const NonbondedKernelSet s = simd::avx2Kernels();
        return s;
    }
#endif
#ifdef COPERNICUS_SIMD_HAVE_AVX512
    case SimdIsa::Avx512: {
        static const NonbondedKernelSet s = simd::avx512Kernels();
        return s;
    }
#endif
#ifdef COPERNICUS_SIMD_HAVE_NEON
    case SimdIsa::Neon: {
        static const NonbondedKernelSet s = simd::neonKernels();
        return s;
    }
#endif
    default:
        throw InternalError("kernelSetFor: unreachable ISA");
    }
}

} // namespace cop::md
