#include "mdlib/integrators.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cop::md {

double kineticEnergy(const Topology& top, const State& state) {
    double k = 0.0;
    for (std::size_t i = 0; i < state.numParticles(); ++i)
        k += 0.5 * top.mass(i) * norm2(state.velocities[i]);
    return k;
}

double instantaneousTemperature(const Topology& top, const State& state,
                                int removedDof) {
    const auto n = state.numParticles();
    if (n < 2) return 0.0;
    const double nf = 3.0 * double(n) - double(removedDof);
    COP_REQUIRE(nf > 0.0, "no degrees of freedom left");
    return 2.0 * kineticEnergy(top, state) / nf;
}

void removeCenterOfMassMotion(const Topology& top, State& state) {
    Vec3 p{};
    double m = 0.0;
    for (std::size_t i = 0; i < state.numParticles(); ++i) {
        p += state.velocities[i] * top.mass(i);
        m += top.mass(i);
    }
    const Vec3 vcom = p / m;
    for (auto& v : state.velocities) v -= vcom;
}

void assignVelocities(const Topology& top, State& state, double temperature,
                      Rng& rng) {
    for (std::size_t i = 0; i < state.numParticles(); ++i)
        state.velocities[i] =
            maxwellBoltzmannVelocity(rng, top.mass(i), temperature);
    removeCenterOfMassMotion(top, state);
}

Integrator::Integrator(ForceField& ff, IntegratorParams params, Rng rng)
    : ff_(ff), params_(params), rng_(rng) {
    COP_REQUIRE(params.dt > 0.0, "timestep must be positive");
    COP_REQUIRE(params.temperature >= 0.0, "temperature must be >= 0");
    COP_REQUIRE(params.tauT > 0.0, "tauT must be positive");
    COP_REQUIRE(params.friction >= 0.0, "friction must be >= 0");
}

void Integrator::run(State& state, std::int64_t nSteps) {
    COP_REQUIRE(state.numParticles() == ff_.topology().numParticles(),
                "state does not match topology");
    if (!forcesValid_) {
        lastEnergies_ = ff_.compute(state.positions, state.forces);
        forcesValid_ = true;
    }
    for (std::int64_t s = 0; s < nSteps; ++s) {
        switch (params_.kind) {
        case IntegratorKind::VelocityVerlet: stepVelocityVerlet(state); break;
        case IntegratorKind::Leapfrog: stepLeapfrog(state); break;
        case IntegratorKind::LangevinBAOAB: stepLangevinBAOAB(state); break;
        }
        if (params_.barostat == BarostatKind::Berendsen)
            applyBerendsenBarostat(state);
        ++state.step;
        state.time += params_.dt;
    }
}

void Integrator::stepVelocityVerlet(State& state) {
    const double dt = params_.dt;
    const auto& top = ff_.topology();

    if (params_.thermostat == ThermostatKind::NoseHoover)
        applyNoseHooverHalf(state, 0.5 * dt);

    for (std::size_t i = 0; i < state.numParticles(); ++i) {
        state.velocities[i] += state.forces[i] * (0.5 * dt / top.mass(i));
        state.positions[i] += state.velocities[i] * dt;
    }
    lastEnergies_ = ff_.compute(state.positions, state.forces);
    for (std::size_t i = 0; i < state.numParticles(); ++i)
        state.velocities[i] += state.forces[i] * (0.5 * dt / top.mass(i));

    switch (params_.thermostat) {
    case ThermostatKind::NoseHoover: applyNoseHooverHalf(state, 0.5 * dt); break;
    case ThermostatKind::VRescale: applyVRescale(state); break;
    case ThermostatKind::Berendsen: applyBerendsen(state); break;
    case ThermostatKind::None: break;
    }
}

void Integrator::stepLeapfrog(State& state) {
    // Gromacs-style leapfrog: v(t+dt/2) = v(t-dt/2) + f(t)/m dt;
    // x(t+dt) = x(t) + v(t+dt/2) dt. Velocities in State are the half-step
    // velocities, which is also what Gromacs stores.
    const double dt = params_.dt;
    const auto& top = ff_.topology();
    for (std::size_t i = 0; i < state.numParticles(); ++i) {
        state.velocities[i] += state.forces[i] * (dt / top.mass(i));
        state.positions[i] += state.velocities[i] * dt;
    }
    lastEnergies_ = ff_.compute(state.positions, state.forces);
    switch (params_.thermostat) {
    case ThermostatKind::VRescale: applyVRescale(state); break;
    case ThermostatKind::Berendsen: applyBerendsen(state); break;
    case ThermostatKind::NoseHoover:
        // Leapfrog + NH needs an implicit solve; we support NH only with
        // velocity Verlet, matching how tests use it.
        throw InvalidArgument("Nosé-Hoover requires VelocityVerlet");
    case ThermostatKind::None: break;
    }
}

void Integrator::stepLangevinBAOAB(State& state) {
    const double dt = params_.dt;
    const auto& top = ff_.topology();
    const double c1 = std::exp(-params_.friction * dt);
    const double c2 = std::sqrt(std::max(0.0, 1.0 - c1 * c1));

    // B: half kick
    for (std::size_t i = 0; i < state.numParticles(); ++i)
        state.velocities[i] += state.forces[i] * (0.5 * dt / top.mass(i));
    // A: half drift
    for (std::size_t i = 0; i < state.numParticles(); ++i)
        state.positions[i] += state.velocities[i] * (0.5 * dt);
    // O: Ornstein-Uhlenbeck
    for (std::size_t i = 0; i < state.numParticles(); ++i) {
        const double sigma =
            std::sqrt(params_.temperature / top.mass(i));
        state.velocities[i] =
            state.velocities[i] * c1 + rng_.gaussianVec3(sigma * c2);
    }
    // A: half drift
    for (std::size_t i = 0; i < state.numParticles(); ++i)
        state.positions[i] += state.velocities[i] * (0.5 * dt);
    // B: half kick with new forces
    lastEnergies_ = ff_.compute(state.positions, state.forces);
    for (std::size_t i = 0; i < state.numParticles(); ++i)
        state.velocities[i] += state.forces[i] * (0.5 * dt / top.mass(i));
}

void Integrator::applyNoseHooverHalf(State& state, double halfDt) {
    // Single Nosé-Hoover thermostat, Trotterized (Martyna-Tuckerman NHC with
    // chain length 1). Q = Nf T tau^2.
    const auto& top = ff_.topology();
    const double nf = 3.0 * double(state.numParticles()) - 3.0;
    const double t0 = params_.temperature;
    const double q = nf * t0 * params_.tauT * params_.tauT;

    double twoK = 2.0 * kineticEnergy(top, state);
    double g = (twoK - nf * t0) / q;
    state.nhXi += g * 0.5 * halfDt;
    const double scale = std::exp(-state.nhXi * halfDt);
    for (auto& v : state.velocities) v *= scale;
    state.nhEta += state.nhXi * halfDt;
    twoK *= scale * scale;
    g = (twoK - nf * t0) / q;
    state.nhXi += g * 0.5 * halfDt;
}

void Integrator::applyVRescale(State& state) {
    // Bussi-Donadio-Parrinello stochastic velocity rescaling.
    const auto& top = ff_.topology();
    const double nf = 3.0 * double(state.numParticles()) - 3.0;
    const double kCur = kineticEnergy(top, state);
    if (kCur <= 0.0) return;
    const double kBar = 0.5 * nf * params_.temperature;
    const double c = std::exp(-params_.dt / params_.tauT);
    const double r1 = rng_.gaussian();
    double sumSq = 0.0;
    for (int i = 1; i < int(nf); ++i) {
        const double r = rng_.gaussian();
        sumSq += r * r;
    }
    const double kNew =
        kCur * c + kBar / nf * (1.0 - c) * (r1 * r1 + sumSq) +
        2.0 * r1 * std::sqrt(c * (1.0 - c) * kCur * kBar / nf);
    const double lambda = std::sqrt(std::max(0.0, kNew / kCur));
    for (auto& v : state.velocities) v *= lambda;
}

void Integrator::applyBerendsen(State& state) {
    const auto& top = ff_.topology();
    const double tCur = instantaneousTemperature(top, state);
    if (tCur <= 0.0) return;
    const double lambda = std::sqrt(
        1.0 + params_.dt / params_.tauT * (params_.temperature / tCur - 1.0));
    for (auto& v : state.velocities) v *= lambda;
}

void Integrator::applyBerendsenBarostat(State& state) {
    const Box& box = ff_.box();
    COP_REQUIRE(box.periodic, "barostat needs a periodic box");
    const double p = pressure(state);
    // Berendsen weak coupling: mu = [1 - kappa dt/tauP (P0 - P)]^(1/3).
    const double arg = 1.0 - params_.compressibility * params_.dt /
                                 params_.tauP * (params_.pressure - p);
    const double mu = std::cbrt(std::clamp(arg, 0.9, 1.1));
    if (mu == 1.0) return;
    Box scaled = box;
    scaled.lengths *= mu;
    ff_.setBox(scaled);
    for (auto& x : state.positions) x *= mu;
}

double Integrator::pressure(const State& state) const {
    COP_REQUIRE(ff_.box().periodic, "pressure needs a periodic box");
    return pairPressure(lastEnergies_,
                        kineticEnergy(ff_.topology(), state),
                        ff_.box().volume());
}

double Integrator::conservedQuantity(const State& state) const {
    const auto& top = ff_.topology();
    double e = kineticEnergy(top, state) + lastEnergies_.potential();
    if (params_.thermostat == ThermostatKind::NoseHoover) {
        const double nf = 3.0 * double(state.numParticles()) - 3.0;
        const double q = nf * params_.temperature * params_.tauT * params_.tauT;
        e += 0.5 * q * state.nhXi * state.nhXi +
             nf * params_.temperature * state.nhEta;
    }
    return e;
}

FireResult fireMinimize(ForceField& ff, std::vector<Vec3>& positions,
                        const FireParams& p) {
    COP_REQUIRE(p.dtInit > 0.0 && p.dtMax >= p.dtInit,
                "FIRE time steps must satisfy 0 < dtInit <= dtMax");
    COP_REQUIRE(p.forceTol > 0.0, "FIRE force tolerance must be positive");
    COP_REQUIRE(p.fDec > 0.0 && p.fDec < 1.0 && p.fInc > 1.0,
                "FIRE requires 0 < fDec < 1 < fInc");

    const std::size_t n = positions.size();
    std::vector<Vec3> forces, velocities(n, Vec3{});

    FireResult result;
    result.energies = ff.compute(positions, forces);

    auto maxForce = [&] {
        double m = 0.0;
        for (const auto& f : forces) m = std::max(m, norm(f));
        return m;
    };

    double dt = p.dtInit;
    double alpha = p.alphaStart;
    int nPos = 0;

    for (result.steps = 0; result.steps < p.maxSteps; ++result.steps) {
        result.maxForce = maxForce();
        if (result.maxForce < p.forceTol) {
            result.converged = true;
            return result;
        }

        // F1: the power decides whether we are still going downhill.
        double power = 0.0, v2 = 0.0, f2 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            power += dot(forces[i], velocities[i]);
            v2 += norm2(velocities[i]);
            f2 += norm2(forces[i]);
        }
        if (power > 0.0) {
            // F3: after nMin downhill steps, accelerate and trust the
            // dynamics more (decay the steering).
            if (++nPos > p.nMin) {
                dt = std::min(dt * p.fInc, p.dtMax);
                alpha *= p.fAlpha;
            }
        } else {
            // F4: uphill — stop, shrink the step, steer hard again.
            nPos = 0;
            dt *= p.fDec;
            alpha = p.alphaStart;
            for (auto& v : velocities) v = Vec3{};
            v2 = 0.0;
        }

        // F2: mix the velocity toward the force direction,
        // v <- (1 - alpha) v + alpha |v| F-hat (no-op right after a
        // reset, where |v| = 0).
        if (f2 > 0.0 && v2 > 0.0) {
            const double mix = alpha * std::sqrt(v2 / f2);
            for (std::size_t i = 0; i < n; ++i)
                velocities[i] =
                    velocities[i] * (1.0 - alpha) + forces[i] * mix;
        }

        // Semi-implicit Euler with unit masses, with the per-atom
        // displacement clamped so overlapping starting structures (the
        // whole point of a relaxation integrator) cannot explode on the
        // first steps.
        for (std::size_t i = 0; i < n; ++i) {
            velocities[i] += forces[i] * dt;
            Vec3 dx = velocities[i] * dt;
            const double len = norm(dx);
            if (len > p.maxDisp) dx = dx * (p.maxDisp / len);
            positions[i] += dx;
        }
        result.energies = ff.compute(positions, forces);
    }
    result.maxForce = maxForce();
    result.converged = result.maxForce < p.forceTol;
    return result;
}

} // namespace cop::md
