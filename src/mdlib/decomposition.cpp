#include "mdlib/decomposition.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace cop::md {

SlabDecomposition::SlabDecomposition(const Box& box, std::size_t numDomains,
                                     double cutoff)
    : box_(box), cutoff_(cutoff) {
    COP_REQUIRE(box.periodic, "decomposition needs a periodic box");
    COP_REQUIRE(numDomains >= 1, "need at least one domain");
    COP_REQUIRE(cutoff > 0.0, "cutoff must be positive");

    axis_ = 0;
    for (int d = 1; d < 3; ++d)
        if (box.lengths[d] > box.lengths[axis_]) axis_ = d;
    slabWidth_ = box.lengths[axis_] / double(numDomains);
    COP_REQUIRE(numDomains == 1 || slabWidth_ >= cutoff,
                "slabs thinner than the cutoff; use fewer domains");

    domains_.resize(numDomains);
    for (std::size_t d = 0; d < numDomains; ++d) {
        domains_[d].lo = double(d) * slabWidth_;
        domains_[d].hi = double(d + 1) * slabWidth_;
    }
}

void SlabDecomposition::decompose(const std::vector<Vec3>& positions) {
    for (auto& d : domains_) {
        d.owned.clear();
        d.halo.clear();
    }
    const std::size_t k = domains_.size();
    const double boxLen = box_.lengths[axis_];

    for (std::size_t p = 0; p < positions.size(); ++p) {
        const double x = box_.wrap(positions[p])[axis_];
        auto home = std::size_t(x / slabWidth_);
        if (home >= k) home = k - 1; // fp edge
        domains_[home].owned.push_back(int(p));
        if (k == 1) continue;

        // A particle within `cutoff` of a slab face is halo for the
        // neighbour across that face (with periodic wrap-around).
        const double lo = domains_[home].lo;
        const double hi = domains_[home].hi;
        if (x - lo < cutoff_) {
            const std::size_t left = (home + k - 1) % k;
            if (left != home) domains_[left].halo.push_back(int(p));
        }
        if (hi - x < cutoff_) {
            const std::size_t right = (home + 1) % k;
            if (right != home) domains_[right].halo.push_back(int(p));
        }
        // Very thin boxes relative to the cutoff can need two-away
        // neighbours; the constructor forbids that regime.
        (void)boxLen;
    }
}

DecompositionStats SlabDecomposition::stats() const {
    DecompositionStats s;
    s.domains = domains_.size();
    std::size_t maxOwned = 0;
    for (const auto& d : domains_) {
        s.totalOwned += d.owned.size();
        s.totalHalo += d.halo.size();
        maxOwned = std::max(maxOwned, d.owned.size());
    }
    // Positions out and forces back for each halo particle, 3 doubles
    // each (24 bytes), both directions of the exchange.
    s.bytesPerStep = s.totalHalo * 2 * 3 * sizeof(double);
    const double mean =
        s.domains ? double(s.totalOwned) / double(s.domains) : 0.0;
    s.imbalance = mean > 0.0 ? double(maxOwned) / mean : 1.0;
    return s;
}

double SlabDecomposition::requiredBandwidth(double stepsPerSecond) const {
    return double(stats().bytesPerStep) * stepsPerSecond;
}

} // namespace cop::md
