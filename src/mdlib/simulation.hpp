#pragma once

/// \file simulation.hpp
/// High-level simulation driver — the unit of work a Copernicus command
/// executes. Owns topology, force field, integrator and trajectory, and can
/// checkpoint/restore its full state so a failed worker's command can be
/// transparently continued elsewhere (paper §2.3).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mdlib/forcefield.hpp"
#include "mdlib/gomodel.hpp"
#include "mdlib/integrators.hpp"
#include "mdlib/state.hpp"
#include "mdlib/trajectory.hpp"

namespace cop::md {

struct SimulationConfig {
    IntegratorParams integrator;
    /// Steps between recorded trajectory frames (paper: 50 ps -> 50 steps
    /// in our mapping).
    std::int64_t sampleInterval = 50;
    /// RNG seed for velocities and stochastic dynamics.
    std::uint64_t seed = 1;
};

class Simulation {
public:
    /// Generic constructor.
    Simulation(Topology topology, Box box, ForceFieldParams ffParams,
               SimulationConfig config, std::vector<Vec3> initialPositions);

    /// Convenience: Gō-model simulation in vacuum starting from `start`.
    static Simulation forGoModel(const GoModel& model,
                                 std::vector<Vec3> start,
                                 SimulationConfig config);

    /// Draws Maxwell-Boltzmann velocities at the integrator temperature.
    void initializeVelocities();

    /// Attaches a thread pool to the force engine (the paper's "threads
    /// within a node" tier). The pool is a runtime resource: it is not
    /// checkpointed, and a restored simulation starts detached.
    void setThreadPool(ThreadPool* pool) { forceField_->setPool(pool); }

    /// Advances `nSteps`, recording a frame every sampleInterval steps
    /// (and one at the very start of the run if the trajectory is empty).
    void run(std::int64_t nSteps);

    /// Performs `maxIter` steepest-descent minimization steps (no
    /// trajectory recording); returns the final potential energy.
    double minimize(int maxIter = 500, double stepSize = 1e-3);

    const State& state() const { return state_; }
    State& mutableState() { return state_; }
    const Trajectory& trajectory() const { return trajectory_; }

    /// Moves the recorded trajectory out, leaving this simulation with an
    /// empty one (so the next checkpoint does not duplicate frames already
    /// shipped to the server).
    Trajectory takeTrajectory() {
        Trajectory t = std::move(trajectory_);
        trajectory_.clear();
        return t;
    }
    const Topology& topology() const { return *topology_; }
    const Energies& lastEnergies() const { return integrator_->lastEnergies(); }
    double temperature() const {
        // Langevin noise drives all 3N degrees of freedom; the other
        // integrators conserve (removed) COM momentum.
        const int removedDof =
            config_.integrator.kind == IntegratorKind::LangevinBAOAB ? 0 : 3;
        return instantaneousTemperature(*topology_, state_, removedDof);
    }

    /// Serializes everything needed to continue this run bit-exactly.
    std::vector<std::uint8_t> checkpoint() const;

    /// Reconstructs a simulation from a checkpoint blob.
    static Simulation restore(std::span<const std::uint8_t> blob);

private:
    // Topology lives behind a unique_ptr so its address is stable when a
    // Simulation is moved (ForceField keeps a reference to it).
    std::unique_ptr<Topology> topology_;
    Box box_;
    ForceFieldParams ffParams_;
    SimulationConfig config_;
    std::unique_ptr<ForceField> forceField_;
    std::unique_ptr<Integrator> integrator_;
    State state_;
    Trajectory trajectory_;
};

} // namespace cop::md
