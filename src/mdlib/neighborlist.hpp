#pragma once

/// \file neighborlist.hpp
/// Verlet pair list with a cell-list build path, mirroring the Gromacs
/// buffered pair-list scheme: pairs within cutoff + skin are listed and the
/// list is rebuilt only when some particle has moved more than skin/2 since
/// the last build.

#include <cstddef>
#include <vector>

#include "mdlib/pbc.hpp"
#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop::md {

struct NeighborPair {
    int i;
    int j;
};

class NeighborList {
public:
    /// `cutoff` is the interaction cutoff; `skin` the Verlet buffer. Pairs
    /// excluded by the topology never appear in the list.
    NeighborList(double cutoff, double skin);

    double cutoff() const { return cutoff_; }
    double skin() const { return skin_; }

    /// Unconditionally rebuilds from scratch.
    void build(const Topology& top, const Box& box,
               const std::vector<Vec3>& positions);

    /// Rebuilds only if some particle moved more than skin/2 since the last
    /// build. Returns true if a rebuild happened.
    bool update(const Topology& top, const Box& box,
                const std::vector<Vec3>& positions);

    const std::vector<NeighborPair>& pairs() const { return pairs_; }
    std::size_t numBuilds() const { return numBuilds_; }

    /// Forces the next update() to rebuild (e.g. after a box rescale).
    void invalidate() { referencePositions_.clear(); }

private:
    void buildCellList(const Topology& top, const Box& box,
                       const std::vector<Vec3>& positions);
    void buildBruteForce(const Topology& top, const Box& box,
                         const std::vector<Vec3>& positions);

    double cutoff_;
    double skin_;
    std::vector<NeighborPair> pairs_;
    std::vector<Vec3> referencePositions_;
    std::size_t numBuilds_ = 0;
};

} // namespace cop::md
