#pragma once

/// \file neighborlist.hpp
/// Verlet pair list with a cell-list build path, mirroring the Gromacs
/// buffered pair-list scheme: pairs within cutoff + skin are listed and the
/// list is rebuilt only when some particle has moved more than skin/2 since
/// the last build.
///
/// The cell build uses a counting sort into flat, persistent arrays
/// (cell-of-particle, prefix-summed cell starts, cell-ordered particle
/// list) — no per-cell std::vector, no allocation once warmed up — and
/// emits pairs directly in deterministic cell-major order, so no post-build
/// sort is needed either.

#include <cstddef>
#include <vector>

#include "mdlib/pbc.hpp"
#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop {
class ThreadPool;
}

namespace cop::md {

struct NeighborPair {
    int i;
    int j;
};

class NeighborList {
public:
    /// `cutoff` is the interaction cutoff; `skin` the Verlet buffer. Pairs
    /// excluded by the topology never appear in the list.
    NeighborList(double cutoff, double skin);

    double cutoff() const { return cutoff_; }
    double skin() const { return skin_; }

    /// Unconditionally rebuilds from scratch.
    void build(const Topology& top, const Box& box,
               const std::vector<Vec3>& positions);

    /// Rebuilds only if some particle moved more than skin/2 since the last
    /// build. Returns true if a rebuild happened. The displacement scan
    /// checks the previous fastest mover first (it usually trips the
    /// rebuild without touching the other N-1 particles) and is
    /// pool-parallelized for large N when a pool is supplied.
    bool update(const Topology& top, const Box& box,
                const std::vector<Vec3>& positions,
                ThreadPool* pool = nullptr);

    const std::vector<NeighborPair>& pairs() const { return pairs_; }
    std::size_t numBuilds() const { return numBuilds_; }

    /// Particle ids sorted by cell from the last build, or empty when the
    /// last build used the brute-force path. The SoA force engine renumbers
    /// atoms into this order so that neighbouring particles occupy
    /// contiguous memory — scattered j-accesses then hit a handful of cache
    /// lines per cell instead of one line per particle.
    const std::vector<int>& cellOrder() const { return order_; }

    /// Forces the next update() to rebuild (e.g. after a box rescale).
    void invalidate() { referencePositions_.clear(); }

private:
    void buildCellList(const Topology& top, const Box& box,
                       const std::vector<Vec3>& positions);
    void buildBruteForce(const Topology& top, const Box& box,
                         const std::vector<Vec3>& positions);

    double cutoff_;
    double skin_;
    std::vector<NeighborPair> pairs_;
    std::vector<Vec3> referencePositions_;
    std::size_t numBuilds_ = 0;
    /// Index of the particle with the largest displacement seen by the last
    /// update() scan; checked first on the next call.
    std::size_t hotIndex_ = 0;

    // Counting-sort scratch, persistent across builds.
    std::vector<int> cellOf_;    ///< cell index per particle
    std::vector<int> cellStart_; ///< exclusive prefix sum, size nCells + 1
    std::vector<int> order_;     ///< particle ids sorted by cell, stable
    std::vector<int> cursor_;    ///< scatter cursors during the sort
};

} // namespace cop::md
