#pragma once

/// \file force_workspace.hpp
/// Persistent scratch state for the nonbonded engine. Everything a force
/// evaluation needs beyond the caller's positions/forces lives here and is
/// allocated once (then reused across steps), so steady-state compute() is
/// allocation-free:
///   - flat, cache-aligned position and force arrays in xyz-interleaved
///     triplet layout (the SoA kernels stream pair indices and shift codes
///     as separate channels, but a pair's scattered j-access touches one
///     or two cache lines of `pos3` instead of one line in each of three
///     split x/y/z arrays — measured ~12% of kernel time at N=10000);
///   - per-chunk force stripes for the threaded path, padded so adjacent
///     stripes never share a cache line;
///   - the pair list split by interaction kind (LJ-only / LJ+Coulomb-RF /
///     Gō-repulsive) with per-pair charge products and periodic shift codes
///     precomputed, so the SoA inner loops are branch-free;
///   - AoS per-chunk buffers and energy slots for the legacy Scalar/Blocked4
///     threaded path.

#include <cstddef>
#include <limits>
#include <vector>

#include "util/aligned_buffer.hpp"
#include "util/vec3.hpp"

namespace cop::md {

/// Neighbour pairs bucketed by the interaction they compute, as parallel
/// per-pair channels (SoA). `qq` holds coulombPrefactor * q_i * q_j for
/// the charged bucket so the kernel never touches the topology.
///
/// Pairs are ordered by (i slot, periodic shift code) — a counting sort
/// at bucket-build time, since the neighbour list's cell-major emission
/// scatters one atom's pairs across many short segments — so each atom
/// contributes one long run per distinct shift code (width-1 kernel
/// sets), or exactly one run (wide sets, which image per block with a
/// vector rint instead of per-run shift codes — see splitPairBuckets
/// for why each width gets the opposite trade). Each bucket stores
/// those runs explicitly (the run's i slot plus its [runStart[r],
/// runStart[r+1]) pair range, with a sentinel entry at the end). The
/// kernels then iterate a plain counted loop per run instead of
/// re-testing the i index every pair, the i position/force live in
/// registers for the whole run, and runs are long enough for the wide
/// SIMD kernels to spend their time in full-width blocks (each run's
/// sub-width tail is one more masked block over the sentinel-padded
/// j channels).
struct PairBuckets {
    AlignedVector<int> ljJ;   ///< plain 12-6 LJ: j slot per pair
    AlignedVector<int> qJ;    ///< LJ + reaction-field Coulomb: j slot
    AlignedVector<double> qq; ///< charge products for the q bucket
    AlignedVector<int> goJ;   ///< Gō repulsive 1/r^12: j slot per pair
    /// Run tables: i slot per run, exclusive pair-offset per run plus one
    /// trailing sentinel (so run r spans [runStart[r], runStart[r+1])).
    /// A run also breaks when the periodic shift code changes, so the
    /// code is a per-run property (see below) and the kernels hoist the
    /// shift out of the pair loop.
    AlignedVector<int> ljRunI, ljRunStart;
    AlignedVector<int> qRunI, qRunStart;
    AlignedVector<int> goRunI, goRunStart;
    /// Per-run periodic-shift codes (0..26, one per run-table entry),
    /// meaningful when `shifted` is true: a pair's minimum image is the
    /// wrapped displacement plus a shift vector chosen at list build,
    /// looked up from a 27-entry table — no rounding in the inner loop,
    /// and the lookup happens once per run because pairs are emitted
    /// cell-pair by cell-pair, so consecutive pairs almost always share
    /// a code (runs split at the rare code change).
    /// Valid between rebuilds by the Verlet-skin argument (no particle
    /// moves more than skin/2 before the list is rebuilt, and the cell
    /// build requires box lengths >= 3 list cutoffs).
    AlignedVector<unsigned char> ljRunS, qRunS, goRunS;
    /// Positions are wrapped into the box with frozen per-slot offsets
    /// (cell-built periodic lists). Implied by `shifted`.
    bool wrapped = false;
    /// Runs split by shift code and the shifted kernels image via the
    /// per-run code table. Width-1 kernel sets only: wide sets leave
    /// runs unsplit and image per block with a vector rint.
    bool shifted = false;

    /// NeighborList::numBuilds() value the buckets were split from;
    /// mismatch means the pair list changed and the split is stale.
    std::size_t sourceBuild = std::numeric_limits<std::size_t>::max();

    void clear() {
        ljJ.clear();
        qJ.clear();
        qq.clear();
        goJ.clear();
        ljRunI.clear();
        ljRunStart.clear();
        qRunI.clear();
        qRunStart.clear();
        goRunI.clear();
        goRunStart.clear();
        ljRunS.clear();
        qRunS.clear();
        goRunS.clear();
        wrapped = false;
        shifted = false;
    }
};

struct ForceWorkspace {
    // Positions in xyz-interleaved triplets (slot r at pos3[3r .. 3r+2]),
    // scattered from the caller's Vec3 array each evaluation (O(N),
    // cache-friendly).
    AlignedVector<double> pos3;
    // Original-index -> slot permutation. When the neighbour list was
    // cell-built, slot order is cell order, so a cell's particles sit in
    // contiguous memory and the kernels' scattered j-accesses stay within
    // a few cache lines per neighbour cell; otherwise it is the identity.
    // Rebuilt together with the pair buckets (same staleness stamp).
    AlignedVector<int> rank;
    // Per-slot wrap offsets (exact multiples of the box lengths, same
    // triplet layout as pos3), frozen at list build and added to the
    // caller's positions when scattering. Freezing them keeps the wrapped
    // coordinates continuous between rebuilds — a particle crossing the
    // boundary mid-interval must not jump by a box length, or the pair
    // shift codes would go stale.
    AlignedVector<double> o3;
    // Force triplets: accumulator for the single-threaded kernels and the
    // target of the striped reduction in the threaded path.
    AlignedVector<double> f3;
    // Per-chunk force stripes: nStripes blocks of 3 * stride doubles.
    // stride is n rounded up to a cache line, so stripes never false-share.
    AlignedVector<double> sf3;
    std::size_t stride = 0;
    std::size_t nStripes = 0;

    // Counting-sort scratch for splitPairBuckets' (i slot, shift code)
    // pair ordering: composite key per pair, the sorted permutation, and
    // 27 * n + 1 bucket offsets. Rebuilt only when the neighbour list
    // changes; capacity persists across rebuilds.
    AlignedVector<int> pairKey, pairOrder, keyOffset;

    // Legacy AoS per-chunk buffers (Scalar / Blocked4 threaded path).
    std::vector<std::vector<Vec3>> aosBuffers;
    // Per-chunk energy slots: nonbonded, coulomb, virial.
    std::vector<double> enb, ecoul, evir;

    PairBuckets buckets;

    /// Grows (never shrinks) all buffers for n particles and `chunks`
    /// concurrent accumulation stripes. Idempotent and allocation-free once
    /// sized.
    void ensure(std::size_t n, std::size_t chunks) {
        if (stride < n) {
            // n + 2 before rounding: the wide kernels touch position and
            // force triplets with full 4-double vector loads/stores (the
            // 4th lane is read and written back unchanged), so the last
            // slot's triplet over-reaches by one double. The slack keeps
            // that in-bounds — per stripe, too, since stripes are stride
            // apart.
            const std::size_t padded = paddedSize(n + 2);
            pos3.resize(3 * padded);
            o3.resize(3 * padded);
            f3.resize(3 * padded);
            stride = padded;
            nStripes = 0;     // force stripe re-size below
            aosBuffers.clear();
        }
        if (nStripes < chunks) {
            nStripes = chunks;
            sf3.resize(nStripes * 3 * stride);
            enb.resize(nStripes);
            ecoul.resize(nStripes);
            evir.resize(nStripes);
        }
        if (aosBuffers.size() < chunks) aosBuffers.resize(chunks);
        for (auto& b : aosBuffers)
            if (b.size() < n) b.resize(n);
    }
};

} // namespace cop::md
