#pragma once

/// \file simd_dispatch.hpp
/// Startup ISA selection for the SIMD nonbonded kernels. Three layers of
/// choice, strongest first:
///   1. An explicit `ForceFieldParams::simdIsa` other than Auto — the
///      programmatic override; wins over everything (so tests can pin an
///      ISA regardless of the environment).
///   2. The COPERNICUS_SIMD environment variable (scalar|sse2|avx2|
///      avx512|neon|auto) — consulted only while resolving Auto; this is
///      how CI pins a deterministic kernel without touching code.
///   3. CPU detection: the widest kernel set that is both compiled in
///      (CMake found the -m flags) and runnable on this host
///      (__builtin_cpu_supports on x86-64; NEON is baseline on AArch64).
/// Requesting an ISA that is not compiled in or not runnable throws
/// InvalidArgument — a silent downgrade would invalidate any benchmark
/// claiming that ISA. "scalar" (the portable width-4 pack) is always
/// compiled and always runnable, so resolution cannot fail.

#include <string>
#include <vector>

#include "mdlib/kernel_params.hpp"

namespace cop::md {

enum class SimdIsa {
    Auto,   ///< resolve via COPERNICUS_SIMD, then CPU detection
    Scalar, ///< portable width-4 lane-loop pack (always available)
    Sse2,
    Avx2,
    Avx512,
    Neon,
};

/// Canonical lower-case name ("auto", "scalar", "sse2", ...).
const char* simdIsaName(SimdIsa isa);

/// Inverse of simdIsaName; also accepts "generic" as an alias for
/// "scalar". Throws InvalidArgument on anything else.
SimdIsa parseSimdIsaName(const std::string& name);

/// The kernel sets this binary was built with, widest last. Always
/// contains Scalar.
const std::vector<SimdIsa>& compiledSimdIsas();

/// True when `isa` is compiled in AND this host can execute it.
bool simdIsaRunnable(SimdIsa isa);

/// Widest compiled-in ISA the host supports (never Auto; at worst
/// Scalar). Pure CPU detection — ignores the environment.
SimdIsa detectSimdIsa();

/// Applies the three-layer policy above. `requested` != Auto is
/// validated and returned; Auto consults COPERNICUS_SIMD and falls back
/// to detectSimdIsa(). Never returns Auto.
SimdIsa resolveSimdIsa(SimdIsa requested);

/// Kernel table for a resolved ISA (isa != Auto, must be runnable).
const NonbondedKernelSet& kernelSetFor(SimdIsa isa);

} // namespace cop::md
