#include "mdlib/forcefield.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mdlib/evaluators/angle.hpp"
#include "mdlib/evaluators/bond.hpp"
#include "mdlib/evaluators/contact.hpp"
#include "mdlib/evaluators/dihedral.hpp"
#include "mdlib/evaluators/evaluate.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cop::md {

namespace {

// SoaParams moved to kernel_params.hpp: it is now the shared contract
// between this file's scalar reference kernels and the per-ISA SIMD TUs
// (kernels_*.cpp), all of which implement the NbPairKernelFn signature.

// The three SoA kernels below stream the bucketed pair indices (and shift
// codes / charge products) as flat channels while reading positions and
// accumulating forces in xyz-interleaved triplets: the j-side access
// pattern is a scatter, and a packed triplet costs one or two cache lines
// where split x/y/z arrays cost three (measured ~12% of kernel time at
// N=10000).
//
// They also share a shape: per-pair minimum image,
// branch-free in/out selection (cutoff and r^2 > 0 folded into one `keep`
// multiplier, with the excluded distance replaced by cut2 so no division
// blows up), scatter-accumulate of the force. Splitting the pair list by
// interaction kind ahead of time is what removes the per-pair dispatch the
// Scalar/Blocked4 kernels pay for.
//
// Shifted kernels (cell-built lists, width-1 sets) image with a table
// lookup of the run's precomputed shift vector, folded into the i
// position once per run — the inner loop then does no imaging work at
// all, where the rounding-based loop pays three
// multiply-round-multiply-subtract chains per pair (a scalar kernel's
// single largest cost). Shift codes can live on runs because runs split
// when the code changes; pairs are emitted cell-pair by cell-pair, so
// such splits are rare. Unshifted kernels keep the per-pair rint minimum
// image, which is correct for arbitrary positions; they serve the
// brute-force lists (open boxes or boxes too small for cells) and ALL
// lists under the wide SIMD sets, where the rounding chain is amortized
// over W lanes and not splitting runs by code buys more than the table
// lookup saves (one run per atom instead of one per (atom, code) — see
// splitPairBuckets).
//
// The pair buckets preserve the cell-major emission order of the neighbour
// list, so equal i indices arrive in consecutive runs, and the buckets
// store the run boundaries explicitly (built once per list rebuild). Each
// kernel iterates runs with a plain counted inner loop, keeping the
// i-particle position and force in registers for the whole run: without
// this, every pair re-executes a load-add-store on f[i] whose
// store-to-load forwarding serializes the loop (the j side has distinct
// indices within a run, so its scatter stores are independent), plus a
// load-compare-branch just to detect the run boundary.
//
// SoaParams is passed by value on purpose: through a reference the
// compiler must assume the force scatter stores (double* fx) may alias
// the parameter block's doubles and reload every constant after each
// store; a by-value copy's address never escapes the kernel, so the
// constants stay in registers. The copy happens once per bucket slice,
// the reloads would happen per pair.

template <bool Shifted>
void soaLjKernel(const int* runI, const int* runStart, const int* pj,
                 const unsigned char* rs, const double* /*qq*/,
                 std::size_t rLo, std::size_t rHi, const double* xyz,
                 double* f, const SoaParams k, double& enbOut,
                 double& /*ecoulOut*/, double& evirOut) {
    double enb = 0.0, evir = 0.0;
    for (std::size_t r = rLo; r < rHi; ++r) {
        const std::size_t i3 = 3 * std::size_t(runI[r]);
        double xi = xyz[i3], yi = xyz[i3 + 1], zi = xyz[i3 + 2];
        if constexpr (Shifted) {
            const unsigned c = rs[r];
            xi += k.tabX[c];
            yi += k.tabY[c];
            zi += k.tabZ[c];
        }
        double fxi = 0.0, fyi = 0.0, fzi = 0.0;
        const std::size_t pEnd = std::size_t(runStart[r + 1]);
        for (std::size_t p = std::size_t(runStart[r]); p < pEnd; ++p) {
            const std::size_t j3 = 3 * std::size_t(pj[p]);
            double dx = xi - xyz[j3], dy = yi - xyz[j3 + 1],
                   dz = zi - xyz[j3 + 2];
            if constexpr (!Shifted) {
                dx -= k.Lx * std::rint(dx * k.iLx);
                dy -= k.Ly * std::rint(dy * k.iLy);
                dz -= k.Lz * std::rint(dz * k.iLz);
            }
            const double r2 = dx * dx + dy * dy + dz * dz;
            const bool in = r2 <= k.cut2 && r2 >= k.minR2;
            const double keep = in ? 1.0 : 0.0;
            const double r2s = in ? r2 : k.cut2;
            const double inv2 = 1.0 / r2s;
            const double s2 = k.sig2 * inv2;
            const double s6 = s2 * s2 * s2;
            const double s12 = s6 * s6;
            enb += keep * (k.eps4 * (s12 - s6) - k.ljShift);
            const double fOverR = keep * k.eps24 * (2.0 * s12 - s6) * inv2;
            evir += fOverR * r2s;
            const double fxp = dx * fOverR, fyp = dy * fOverR,
                         fzp = dz * fOverR;
            fxi += fxp;
            fyi += fyp;
            fzi += fzp;
            f[j3] -= fxp;
            f[j3 + 1] -= fyp;
            f[j3 + 2] -= fzp;
        }
        f[i3] += fxi;
        f[i3 + 1] += fyi;
        f[i3 + 2] += fzi;
    }
    enbOut += enb;
    evirOut += evir;
}

template <bool Shifted>
void soaLjCoulKernel(const int* runI, const int* runStart, const int* pj,
                     const unsigned char* rs, const double* qq,
                     std::size_t rLo, std::size_t rHi, const double* xyz,
                     double* f, const SoaParams k, double& enbOut,
                     double& ecoulOut, double& evirOut) {
    double enb = 0.0, ecoul = 0.0, evir = 0.0;
    for (std::size_t r = rLo; r < rHi; ++r) {
        const std::size_t i3 = 3 * std::size_t(runI[r]);
        double xi = xyz[i3], yi = xyz[i3 + 1], zi = xyz[i3 + 2];
        if constexpr (Shifted) {
            const unsigned c = rs[r];
            xi += k.tabX[c];
            yi += k.tabY[c];
            zi += k.tabZ[c];
        }
        double fxi = 0.0, fyi = 0.0, fzi = 0.0;
        const std::size_t pEnd = std::size_t(runStart[r + 1]);
        for (std::size_t p = std::size_t(runStart[r]); p < pEnd; ++p) {
            const std::size_t j3 = 3 * std::size_t(pj[p]);
            double dx = xi - xyz[j3], dy = yi - xyz[j3 + 1],
                   dz = zi - xyz[j3 + 2];
            if constexpr (!Shifted) {
                dx -= k.Lx * std::rint(dx * k.iLx);
                dy -= k.Ly * std::rint(dy * k.iLy);
                dz -= k.Lz * std::rint(dz * k.iLz);
            }
            const double r2 = dx * dx + dy * dy + dz * dz;
            const bool in = r2 <= k.cut2 && r2 >= k.minR2;
            const double keep = in ? 1.0 : 0.0;
            const double r2s = in ? r2 : k.cut2;
            const double inv2 = 1.0 / r2s;
            const double s2 = k.sig2 * inv2;
            const double s6 = s2 * s2 * s2;
            const double s12 = s6 * s6;
            const double invR = 1.0 / std::sqrt(r2s);
            enb += keep * (k.eps4 * (s12 - s6) - k.ljShift);
            ecoul += keep * qq[p] * (invR + k.kRF * r2s - k.cRF);
            const double fOverR =
                keep * (k.eps24 * (2.0 * s12 - s6) * inv2 +
                        qq[p] * (invR * inv2 - 2.0 * k.kRF));
            evir += fOverR * r2s;
            const double fxp = dx * fOverR, fyp = dy * fOverR,
                         fzp = dz * fOverR;
            fxi += fxp;
            fyi += fyp;
            fzi += fzp;
            f[j3] -= fxp;
            f[j3 + 1] -= fyp;
            f[j3 + 2] -= fzp;
        }
        f[i3] += fxi;
        f[i3 + 1] += fyi;
        f[i3 + 2] += fzi;
    }
    enbOut += enb;
    ecoulOut += ecoul;
    evirOut += evir;
}

template <bool Shifted>
void soaGoKernel(const int* runI, const int* runStart, const int* pj,
                 const unsigned char* rs, const double* /*qq*/,
                 std::size_t rLo, std::size_t rHi, const double* xyz,
                 double* f, const SoaParams k, double& enbOut,
                 double& /*ecoulOut*/, double& evirOut) {
    double enb = 0.0, evir = 0.0;
    for (std::size_t r = rLo; r < rHi; ++r) {
        const std::size_t i3 = 3 * std::size_t(runI[r]);
        double xi = xyz[i3], yi = xyz[i3 + 1], zi = xyz[i3 + 2];
        if constexpr (Shifted) {
            const unsigned c = rs[r];
            xi += k.tabX[c];
            yi += k.tabY[c];
            zi += k.tabZ[c];
        }
        double fxi = 0.0, fyi = 0.0, fzi = 0.0;
        const std::size_t pEnd = std::size_t(runStart[r + 1]);
        for (std::size_t p = std::size_t(runStart[r]); p < pEnd; ++p) {
            const std::size_t j3 = 3 * std::size_t(pj[p]);
            double dx = xi - xyz[j3], dy = yi - xyz[j3 + 1],
                   dz = zi - xyz[j3 + 2];
            if constexpr (!Shifted) {
                dx -= k.Lx * std::rint(dx * k.iLx);
                dy -= k.Ly * std::rint(dy * k.iLy);
                dz -= k.Lz * std::rint(dz * k.iLz);
            }
            const double r2 = dx * dx + dy * dy + dz * dz;
            const bool in = r2 <= k.cut2 && r2 >= k.minR2;
            const double keep = in ? 1.0 : 0.0;
            const double r2s = in ? r2 : k.cut2;
            const double inv2 = 1.0 / r2s;
            const double s2 = k.repSig2 * inv2;
            const double s6 = s2 * s2 * s2;
            const double s12 = s6 * s6;
            enb += keep * k.repEps * s12;
            const double fOverR = keep * 12.0 * k.repEps * s12 * inv2;
            evir += fOverR * r2s;
            const double fxp = dx * fOverR, fyp = dy * fOverR,
                         fzp = dz * fOverR;
            fxi += fxp;
            fyi += fyp;
            fzi += fzp;
            f[j3] -= fxp;
            f[j3 + 1] -= fyp;
            f[j3 + 2] -= fzp;
        }
        f[i3] += fxi;
        f[i3 + 1] += fyi;
        f[i3 + 2] += fzi;
    }
    enbOut += enb;
    evirOut += evir;
}

/// The scalar reference kernels above, packaged as a width-1 kernel
/// table — the Soa flavor goes through the same dispatch seam as the
/// SIMD sets, so there is exactly one engine (computeNonbondedSoa) and
/// the flavors differ only in the table they install.
NonbondedKernelSet soaKernelSet() {
    NonbondedKernelSet s;
    s.name = "soa";
    s.width = 1;
    s.lj[0] = &soaLjKernel<false>;
    s.lj[1] = &soaLjKernel<true>;
    s.ljCoul[0] = &soaLjCoulKernel<false>;
    s.ljCoul[1] = &soaLjCoulKernel<true>;
    s.go[0] = &soaGoKernel<false>;
    s.go[1] = &soaGoKernel<true>;
    return s;
}

} // namespace

ForceField::ForceField(const Topology& top, const Box& box,
                       ForceFieldParams params, ThreadPool* pool)
    : top_(top), box_(box), params_(params), pool_(pool),
      neighborList_(params.cutoff, params.neighborSkin) {
    COP_REQUIRE(top.finalized(), "topology must be finalized");
    COP_REQUIRE(params.cutoff > 0.0, "cutoff must be positive");
    if (params_.flavor == KernelFlavor::SimdAuto) {
        activeIsa_ = resolveSimdIsa(params_.simdIsa);
        kernels_ = kernelSetFor(activeIsa_);
    } else {
        kernels_ = soaKernelSet();
    }
}

Energies ForceField::compute(const std::vector<Vec3>& positions,
                             std::vector<Vec3>& forces) {
    COP_REQUIRE(positions.size() == top_.numParticles(),
                "positions size mismatch");
    // assign() reuses the caller's capacity, so the steady state (same
    // vector passed every step) performs no allocation here.
    forces.assign(positions.size(), Vec3{});
    neighborList_.update(top_, box_, positions, pool_);

    Energies e = computeBonded(positions, forces);
    e.contact = computeContacts(positions, forces, e.pairVirial);
    if (params_.flavor == KernelFlavor::Soa ||
        params_.flavor == KernelFlavor::SimdAuto)
        computeNonbondedSoa(positions, forces, e);
    else
        computeNonbonded(positions, forces, e);
    return e;
}

Energies ForceField::computeBonded(const std::vector<Vec3>& positions,
                                   std::vector<Vec3>& forces) const {
    // One header-only evaluator per interaction family (the GPU-backend
    // seam, see evaluators/evaluate.hpp); term order and arithmetic are
    // those of the pre-refactor monolithic loops, bit for bit.
    using namespace evaluators;
    Energies e;
    e.bond = evaluateFamily<BondEvaluator>(top_.bonds(), positions, box_,
                                           forces, e.pairVirial);
    e.angle = evaluateFamily<AngleEvaluator>(top_.angles(), positions, box_,
                                             forces, e.pairVirial);
    e.dihedral = evaluateFamily<DihedralEvaluator>(
        top_.dihedrals(), positions, box_, forces, e.pairVirial);
    return e;
}

double ForceField::computeContacts(const std::vector<Vec3>& positions,
                                   std::vector<Vec3>& forces,
                                   double& virial) const {
    return evaluators::evaluateFamily<evaluators::ContactEvaluator>(
        top_.contacts(), positions, box_, forces, virial);
}

void ForceField::computeNonbonded(const std::vector<Vec3>& positions,
                                  std::vector<Vec3>& forces,
                                  Energies& e) {
    const auto& pairs = neighborList_.pairs();
    const double cut2 = params_.cutoff * params_.cutoff;

    // Reaction-field constants (Tironi et al.): with epsilon_RF -> eps_rf,
    // E = q_i q_j * pref * (1/r + k_rf r^2 - c_rf), k_rf and c_rf chosen so
    // the force is continuous at the cutoff.
    const double rc = params_.cutoff;
    const double epsRF = params_.rfDielectric;
    const double kRF = (epsRF - 1.0) / ((2.0 * epsRF + 1.0) * rc * rc * rc);
    const double cRF = 1.0 / rc + kRF * rc * rc;

    // LJ shift so that E(cutoff) == 0 when requested.
    double ljShift = 0.0;
    if (params_.kind == NonbondedKind::LennardJonesRF && params_.shiftLJ) {
        const double s2 = params_.ljSigma * params_.ljSigma / cut2;
        const double s6 = s2 * s2 * s2;
        ljShift = 4.0 * params_.ljEpsilon * (s6 * s6 - s6);
    }

    auto pairTerm = [&](int i, int j, double& enb, double& ecoul,
                        double& evir) {
        const Vec3 d = box_.minimumImage(positions[std::size_t(i)],
                                         positions[std::size_t(j)]);
        const double r2 = norm2(d);
        if (r2 > cut2 || r2 < 1e-12) return Vec3{};
        double fOverR = 0.0;
        if (params_.kind == NonbondedKind::GoRepulsive) {
            const double s2 = params_.repSigma * params_.repSigma / r2;
            const double s6 = s2 * s2 * s2;
            const double s12 = s6 * s6;
            enb += params_.repEpsilon * s12;
            fOverR += 12.0 * params_.repEpsilon * s12 / r2;
        } else {
            const double s2 = params_.ljSigma * params_.ljSigma / r2;
            const double s6 = s2 * s2 * s2;
            const double s12 = s6 * s6;
            enb += 4.0 * params_.ljEpsilon * (s12 - s6) - ljShift;
            fOverR += 24.0 * params_.ljEpsilon * (2.0 * s12 - s6) / r2;
            if (params_.useCoulombRF) {
                const double qq = params_.coulombPrefactor *
                                  top_.charge(std::size_t(i)) *
                                  top_.charge(std::size_t(j));
                if (qq != 0.0) {
                    const double r = std::sqrt(r2);
                    ecoul += qq * (1.0 / r + kRF * r2 - cRF);
                    fOverR += qq * (1.0 / (r2 * r) - 2.0 * kRF);
                }
            }
        }
        evir += fOverR * r2;
        return d * fOverR;
    };

    // The Blocked4 flavor processes the pair list in blocks of 4,
    // accumulating into small fixed arrays the compiler can keep in vector
    // registers; the Scalar flavor is the obvious loop. Results agree to
    // rounding. With a thread pool, the pair range is chunked with
    // per-thread force buffers and reduced (the paper's "thread" tier).
    auto processRange = [&](std::size_t lo, std::size_t hi,
                            std::vector<Vec3>& fbuf, double& enb,
                            double& ecoul, double& evir) {
        if (params_.flavor == KernelFlavor::Blocked4) {
            std::size_t p = lo;
            for (; p + 4 <= hi; p += 4) {
                Vec3 fs[4];
                for (int u = 0; u < 4; ++u)
                    fs[u] = pairTerm(pairs[p + std::size_t(u)].i,
                                     pairs[p + std::size_t(u)].j, enb, ecoul,
                                     evir);
                for (int u = 0; u < 4; ++u) {
                    fbuf[std::size_t(pairs[p + std::size_t(u)].i)] += fs[u];
                    fbuf[std::size_t(pairs[p + std::size_t(u)].j)] -= fs[u];
                }
            }
            for (; p < hi; ++p) {
                const Vec3 f =
                    pairTerm(pairs[p].i, pairs[p].j, enb, ecoul, evir);
                fbuf[std::size_t(pairs[p].i)] += f;
                fbuf[std::size_t(pairs[p].j)] -= f;
            }
        } else {
            for (std::size_t p = lo; p < hi; ++p) {
                const Vec3 f =
                    pairTerm(pairs[p].i, pairs[p].j, enb, ecoul, evir);
                fbuf[std::size_t(pairs[p].i)] += f;
                fbuf[std::size_t(pairs[p].j)] -= f;
            }
        }
    };

    if (pool_ != nullptr && pairs.size() >= 1024 && pool_->size() > 1) {
        // Per-chunk accumulation into persistent workspace buffers, then a
        // striped parallel reduction: each stripe of particle indices is
        // summed across all chunk buffers by one thread, so the reduction
        // is O(N) wall-clock instead of O(chunks * N) serial.
        const std::size_t nChunks = pool_->size() + 1;
        ws_.ensure(positions.size(), nChunks);
        const std::size_t chunk = (pairs.size() + nChunks - 1) / nChunks;
        pool_->forChunks(0, nChunks, [&](std::size_t, std::size_t cLo,
                                         std::size_t cHi) {
            for (std::size_t c = cLo; c < cHi; ++c) {
                auto& fbuf = ws_.aosBuffers[c];
                std::fill(fbuf.begin(), fbuf.end(), Vec3{});
                ws_.enb[c] = ws_.ecoul[c] = ws_.evir[c] = 0.0;
                const std::size_t lo = c * chunk;
                const std::size_t hi = std::min(lo + chunk, pairs.size());
                if (lo < hi)
                    processRange(lo, hi, fbuf, ws_.enb[c], ws_.ecoul[c],
                                 ws_.evir[c]);
            }
        });
        pool_->forChunks(0, forces.size(), [&](std::size_t, std::size_t lo,
                                               std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                for (std::size_t c = 0; c < nChunks; ++c)
                    forces[i] += ws_.aosBuffers[c][i];
        });
        for (std::size_t c = 0; c < nChunks; ++c) {
            e.nonbonded += ws_.enb[c];
            e.coulomb += ws_.ecoul[c];
            e.pairVirial += ws_.evir[c];
        }
    } else {
        processRange(0, pairs.size(), forces, e.nonbonded, e.coulomb,
                     e.pairVirial);
    }
}

void ForceField::splitPairBuckets(const std::vector<Vec3>& positions) {
    auto& bk = ws_.buckets;
    if (bk.sourceBuild == neighborList_.numBuilds()) return;
    bk.clear();

    // Renumber atoms into the cell order the list was built with (identity
    // when the brute-force path ran): the buckets then index SoA slots
    // where a cell's particles are contiguous, so the kernels' j-accesses
    // touch a few cache lines per neighbour cell instead of one per pair.
    const std::size_t n = top_.numParticles();
    const auto& ord = neighborList_.cellOrder();
    auto& rank = ws_.rank;
    rank.resize(n);
    const bool reordered = ord.size() == n;
    if (reordered) {
        for (std::size_t r = 0; r < n; ++r)
            rank[std::size_t(ord[r])] = int(r);
    } else {
        for (std::size_t i = 0; i < n; ++i) rank[i] = int(i);
    }

    // Cell-built lists (always periodic, box >= 3 list cutoffs per
    // dimension) work on wrapped coordinates: freeze each atom's wrap
    // offset now so the wrapped positions stay continuous between
    // rebuilds. Width-1 kernel sets additionally get precomputed
    // per-pair shift codes — record which of the 27 shift vectors makes
    // the wrapped displacement the minimum image; until the next rebuild
    // no atom moves more than skin/2, so the recorded shift stays the
    // right image for every pair that can still be inside the cutoff.
    // Wide kernel sets skip the codes and image per block with a vector
    // rint instead: a scalar kernel pays the rounding chain per pair, a
    // wide one amortizes it over W lanes — and runs no longer split at
    // code changes, so each atom contributes ONE run (measured 14541 ->
    // 9999 runs at N=10000, ~30% off the width-8 kernel time; fewer
    // per-run reductions and far fewer sub-width tails).
    bk.wrapped = reordered && box_.periodic;
    bk.shifted = bk.wrapped && kernels_.width == 1;
    if (bk.wrapped) {
        const Vec3 L = box_.lengths;
        for (std::size_t r = 0; r < n; ++r) {
            const Vec3& p = positions[std::size_t(ord[r])];
            ws_.o3[3 * r] = -L.x * std::floor(p.x / L.x);
            ws_.o3[3 * r + 1] = -L.y * std::floor(p.y / L.y);
            ws_.o3[3 * r + 2] = -L.z * std::floor(p.z / L.z);
            // ws_.pos3 doubles as scratch for the wrapped coordinates the
            // shift codes are derived from; compute() re-scatters them
            // (same values) before the kernels run.
            ws_.pos3[3 * r] = p.x + ws_.o3[3 * r];
            ws_.pos3[3 * r + 1] = p.y + ws_.o3[3 * r + 1];
            ws_.pos3[3 * r + 2] = p.z + ws_.o3[3 * r + 2];
        }
    }
    auto shiftCode = [&](int ri, int rj) {
        const std::size_t i3 = 3 * std::size_t(ri), j3 = 3 * std::size_t(rj);
        const int sx = int(std::rint((ws_.pos3[i3] - ws_.pos3[j3]) /
                                     box_.lengths.x));
        const int sy = int(std::rint((ws_.pos3[i3 + 1] - ws_.pos3[j3 + 1]) /
                                     box_.lengths.y));
        const int sz = int(std::rint((ws_.pos3[i3 + 2] - ws_.pos3[j3 + 2]) /
                                     box_.lengths.z));
        return static_cast<unsigned char>((sx + 1) * 9 + (sy + 1) * 3 +
                                          (sz + 1));
    };

    // Opens a new run when the i slot or the shift code changes (the
    // counting sort below makes equal (i, code) pairs contiguous, so a
    // linear pass finds every boundary and emits exactly one run per
    // key). Making the shift a per-run property lets the kernels fold it
    // into the i position once per run instead of per pair. Runs are NOT
    // padded to the kernel width: padding with culled j = i self pairs
    // was tried and lost ~20% at width 8 — every duplicate-index lane
    // extends a serial read-modify-write chain through one force slot,
    // which costs more than letting the kernels' scalar remainder loop
    // finish the sub-width tail.
    auto pushRun = [](AlignedVector<int>& runI, AlignedVector<int>& runStart,
                      AlignedVector<unsigned char>& runS, int ri,
                      unsigned char code, AlignedVector<int>& J) {
        if (runI.empty() || runI.back() != ri || runS.back() != code) {
            runI.push_back(ri);
            runS.push_back(code);
            runStart.push_back(int(J.size()));
        }
    };
    // Code 13 is the zero shift; used as a constant for unshifted buckets
    // so it never splits a run.
    auto codeOf = [&](int ri, int rj) {
        return bk.shifted ? shiftCode(ri, rj)
                          : static_cast<unsigned char>(13);
    };

    // Order pairs by (i slot, shift code) before bucketing. The list
    // emits pairs cell-pair by cell-pair, which scatters one atom's
    // pairs across many short segments — measured 2.7 pairs per run at
    // N=10000, leaving the wide SIMD kernels stuck in their scalar
    // remainder tails. A stable counting sort on the composite key
    // (O(P + 27 N) per rebuild, deterministic on every host) merges them
    // into one long run per (i, code): ~27 pairs per atom split over at
    // most a handful of codes — or exactly one run per atom when the
    // kernel set is wide (codeOf pins the code, see above).
    const auto& pairs = neighborList_.pairs();
    const std::size_t nP = pairs.size();
    constexpr int K = 27;
    auto& key = ws_.pairKey;
    auto& order = ws_.pairOrder;
    auto& off = ws_.keyOffset;
    key.resize(nP);
    order.resize(nP);
    off.resize(std::size_t(K) * n + 1);
    std::fill(off.begin(), off.end(), 0);
    for (std::size_t p = 0; p < nP; ++p) {
        const int ri = rank[std::size_t(pairs[p].i)];
        const int rj = rank[std::size_t(pairs[p].j)];
        key[p] = ri * K + int(codeOf(ri, rj));
        ++off[std::size_t(key[p]) + 1];
    }
    for (std::size_t s = 1; s < off.size(); ++s) off[s] += off[s - 1];
    for (std::size_t p = 0; p < nP; ++p)
        order[std::size_t(off[std::size_t(key[p])]++)] = int(p);

    if (params_.kind == NonbondedKind::GoRepulsive) {
        for (std::size_t s = 0; s < nP; ++s) {
            const auto& p = pairs[std::size_t(order[s])];
            const int k = key[std::size_t(order[s])];
            const int ri = k / K;
            const auto code = static_cast<unsigned char>(k % K);
            const int rj = rank[std::size_t(p.j)];
            pushRun(bk.goRunI, bk.goRunStart, bk.goRunS, ri, code, bk.goJ);
            bk.goJ.push_back(rj);
        }
    } else {
        const bool coul = params_.useCoulombRF;
        for (std::size_t s = 0; s < nP; ++s) {
            const auto& p = pairs[std::size_t(order[s])];
            const int k = key[std::size_t(order[s])];
            const int ri = k / K;
            const auto code = static_cast<unsigned char>(k % K);
            const double qq = coul ? params_.coulombPrefactor *
                                         top_.charge(std::size_t(p.i)) *
                                         top_.charge(std::size_t(p.j))
                                   : 0.0;
            const int rj = rank[std::size_t(p.j)];
            if (qq != 0.0) {
                pushRun(bk.qRunI, bk.qRunStart, bk.qRunS, ri, code, bk.qJ);
                bk.qJ.push_back(rj);
                bk.qq.push_back(qq);
            } else {
                pushRun(bk.ljRunI, bk.ljRunStart, bk.ljRunS, ri, code,
                        bk.ljJ);
                bk.ljJ.push_back(rj);
            }
        }
    }
    // Close the run tables with end sentinels.
    bk.ljRunStart.push_back(int(bk.ljJ.size()));
    bk.qRunStart.push_back(int(bk.qJ.size()));
    bk.goRunStart.push_back(int(bk.goJ.size()));
    // Over-allocate each j / qq channel by a vector width of sentinel
    // entries (slot 0, charge 0). The kernels compute a run's sub-width
    // tail as one full-width masked block, so the channel loads read up
    // to width - 1 entries past the last real pair; the masked lanes
    // never contribute and are never written back.
    for (int t = 0; t < kernels_.width; ++t) {
        bk.ljJ.push_back(0);
        bk.qJ.push_back(0);
        bk.qq.push_back(0.0);
        bk.goJ.push_back(0);
    }
    bk.sourceBuild = neighborList_.numBuilds();
}

void ForceField::computeNonbondedSoa(const std::vector<Vec3>& positions,
                                     std::vector<Vec3>& forces, Energies& e) {
    const std::size_t n = positions.size();
    const bool threaded = pool_ != nullptr && pool_->size() > 1;
    const std::size_t maxChunks = threaded ? pool_->size() + 1 : 1;
    ws_.ensure(n, maxChunks);
    splitPairBuckets(positions);
    const auto& bk = ws_.buckets;

    // Scatter positions into SoA slots, in cell order when available (the
    // buckets were renumbered the same way by splitPairBuckets). Wrapped
    // buckets work on wrapped coordinates: the frozen per-slot offsets are
    // exact multiples of the box lengths, applied every step so wrapped
    // positions move continuously between rebuilds.
    const auto& ord = neighborList_.cellOrder();
    const bool reordered = ord.size() == n;
    if (bk.wrapped) {
        for (std::size_t r = 0; r < n; ++r) {
            const auto a = std::size_t(ord[r]);
            ws_.pos3[3 * r] = positions[a].x + ws_.o3[3 * r];
            ws_.pos3[3 * r + 1] = positions[a].y + ws_.o3[3 * r + 1];
            ws_.pos3[3 * r + 2] = positions[a].z + ws_.o3[3 * r + 2];
        }
    } else if (reordered) {
        for (std::size_t r = 0; r < n; ++r) {
            const auto a = std::size_t(ord[r]);
            ws_.pos3[3 * r] = positions[a].x;
            ws_.pos3[3 * r + 1] = positions[a].y;
            ws_.pos3[3 * r + 2] = positions[a].z;
        }
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            ws_.pos3[3 * i] = positions[i].x;
            ws_.pos3[3 * i + 1] = positions[i].y;
            ws_.pos3[3 * i + 2] = positions[i].z;
        }
    }

    SoaParams k;
    k.cut2 = params_.cutoff * params_.cutoff;
    if (box_.periodic) {
        k.Lx = box_.lengths.x;
        k.Ly = box_.lengths.y;
        k.Lz = box_.lengths.z;
        k.iLx = 1.0 / k.Lx;
        k.iLy = 1.0 / k.Ly;
        k.iLz = 1.0 / k.Lz;
    }
    const double rc = params_.cutoff;
    const double epsRF = params_.rfDielectric;
    k.kRF = (epsRF - 1.0) / ((2.0 * epsRF + 1.0) * rc * rc * rc);
    k.cRF = 1.0 / rc + k.kRF * rc * rc;
    k.sig2 = params_.ljSigma * params_.ljSigma;
    k.eps4 = 4.0 * params_.ljEpsilon;
    k.eps24 = 24.0 * params_.ljEpsilon;
    if (params_.kind == NonbondedKind::LennardJonesRF && params_.shiftLJ) {
        const double s2 = k.sig2 / k.cut2;
        const double s6 = s2 * s2 * s2;
        k.ljShift = k.eps4 * (s6 * s6 - s6);
    }
    k.repSig2 = params_.repSigma * params_.repSigma;
    k.repEps = params_.repEpsilon;
    if (bk.shifted) {
        for (int c = 0; c < 27; ++c) {
            k.tabX[c] = -double(c / 9 - 1) * box_.lengths.x;
            k.tabY[c] = -double((c / 3) % 3 - 1) * box_.lengths.y;
            k.tabZ[c] = -double(c % 3 - 1) * box_.lengths.z;
        }
    }

    const double* xyz = ws_.pos3.data();

    // Runs slice `c` of `nSlices` of every bucket, accumulating into the
    // given force-triplet array and energy slots. Buckets are sliced on
    // run boundaries (runs average a couple dozen pairs, so the per-chunk
    // imbalance is negligible) and each bucket is sliced independently to
    // keep chunks balanced regardless of the LJ/charged/Gō mix.
    const int sh = bk.shifted ? 1 : 0;
    auto runSlice = [&](std::size_t c, std::size_t nSlices, double* f,
                        double& enb, double& ecoul, double& evir) {
        auto slice = [&](std::size_t len) {
            return std::pair<std::size_t, std::size_t>{c * len / nSlices,
                                                       (c + 1) * len / nSlices};
        };
        const auto [ljLo, ljHi] = slice(bk.ljRunI.size());
        if (ljLo < ljHi)
            kernels_.lj[sh](bk.ljRunI.data(), bk.ljRunStart.data(),
                            bk.ljJ.data(),
                            bk.shifted ? bk.ljRunS.data() : nullptr, nullptr,
                            ljLo, ljHi, xyz, f, k, enb, ecoul, evir);
        const auto [qLo, qHi] = slice(bk.qRunI.size());
        if (qLo < qHi)
            kernels_.ljCoul[sh](bk.qRunI.data(), bk.qRunStart.data(),
                                bk.qJ.data(),
                                bk.shifted ? bk.qRunS.data() : nullptr,
                                bk.qq.data(), qLo, qHi, xyz, f, k, enb,
                                ecoul, evir);
        const auto [goLo, goHi] = slice(bk.goRunI.size());
        if (goLo < goHi)
            kernels_.go[sh](bk.goRunI.data(), bk.goRunStart.data(),
                            bk.goJ.data(),
                            bk.shifted ? bk.goRunS.data() : nullptr, nullptr,
                            goLo, goHi, xyz, f, k, enb, ecoul, evir);
    };

    const std::size_t nPairs =
        bk.ljJ.size() + bk.qJ.size() + bk.goJ.size();

    if (!threaded || nPairs < 1024) {
        // f3 is all-zero on entry: it is value-initialized when allocated
        // and the writeback below re-zeroes every slot it reads (the
        // threaded path never touches it), so the kernels accumulate into
        // a clean buffer without a separate O(N) clear.
        double enb = 0.0, ecoul = 0.0, evir = 0.0;
        runSlice(0, 1, ws_.f3.data(), enb, ecoul, evir);
        double* f3 = ws_.f3.data();
        if (reordered) {
            for (std::size_t r = 0; r < n; ++r) {
                forces[std::size_t(ord[r])] +=
                    Vec3{f3[3 * r], f3[3 * r + 1], f3[3 * r + 2]};
                f3[3 * r] = f3[3 * r + 1] = f3[3 * r + 2] = 0.0;
            }
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                forces[i] += Vec3{f3[3 * i], f3[3 * i + 1], f3[3 * i + 2]};
                f3[3 * i] = f3[3 * i + 1] = f3[3 * i + 2] = 0.0;
            }
        }
        e.nonbonded += enb;
        e.coulomb += ecoul;
        e.pairVirial += evir;
        return;
    }

    // Threaded path: each chunk owns one padded force-triplet stripe
    // (zeroed by its owner, so no O(chunks * N) serial clearing), then a
    // striped parallel reduction folds all stripes into the caller's force
    // array — O(N) wall-clock regardless of thread count, no allocation.
    const std::size_t nChunks = maxChunks;
    const std::size_t stride3 = 3 * ws_.stride;
    pool_->forChunks(0, nChunks, [&](std::size_t, std::size_t cLo,
                                     std::size_t cHi) {
        for (std::size_t c = cLo; c < cHi; ++c) {
            double* f = ws_.sf3.data() + c * stride3;
            std::fill_n(f, 3 * n, 0.0);
            ws_.enb[c] = ws_.ecoul[c] = ws_.evir[c] = 0.0;
            runSlice(c, nChunks, f, ws_.enb[c], ws_.ecoul[c], ws_.evir[c]);
        }
    });
    pool_->forChunks(0, n, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            double sx = 0.0, sy = 0.0, sz = 0.0;
            for (std::size_t c = 0; c < nChunks; ++c) {
                const double* f = ws_.sf3.data() + c * stride3 + 3 * i;
                sx += f[0];
                sy += f[1];
                sz += f[2];
            }
            // ord is a permutation, so the scattered writes of disjoint
            // index chunks never collide.
            forces[reordered ? std::size_t(ord[i]) : i] += Vec3{sx, sy, sz};
        }
    });
    for (std::size_t c = 0; c < nChunks; ++c) {
        e.nonbonded += ws_.enb[c];
        e.coulomb += ws_.ecoul[c];
        e.pairVirial += ws_.evir[c];
    }
}

double pairPressure(const Energies& energies, double kineticEnergy,
                    double volume) {
    COP_REQUIRE(volume > 0.0, "volume must be positive");
    return (2.0 * kineticEnergy + energies.pairVirial) / (3.0 * volume);
}

double maxForceError(ForceField& ff, std::vector<Vec3> positions, double h) {
    std::vector<Vec3> analytic;
    ff.compute(positions, analytic);

    double maxErr = 0.0;
    std::vector<Vec3> scratch;
    for (std::size_t i = 0; i < positions.size(); ++i) {
        for (int d = 0; d < 3; ++d) {
            const double orig = positions[i][d];
            positions[i][d] = orig + h;
            const double ep = ff.compute(positions, scratch).potential();
            positions[i][d] = orig - h;
            const double em = ff.compute(positions, scratch).potential();
            positions[i][d] = orig;
            const double numeric = -(ep - em) / (2.0 * h);
            maxErr = std::max(maxErr, std::abs(numeric - analytic[i][d]));
        }
    }
    return maxErr;
}

} // namespace cop::md
