#include "mdlib/forcefield.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cop::md {

namespace {

/// Signed dihedral angle for positions a-b-c-d, plus the four gradient
/// vectors, using the standard textbook formulation (Blondel & Karplus).
struct DihedralGeometry {
    double phi;
    Vec3 fi, fj, fk, fl; ///< -dphi/dr scaled later by dE/dphi
};

DihedralGeometry dihedralGeometry(const Vec3& ri, const Vec3& rj,
                                  const Vec3& rk, const Vec3& rl) {
    const Vec3 b1 = rj - ri;
    const Vec3 b2 = rk - rj;
    const Vec3 b3 = rl - rk;
    const Vec3 n1 = cross(b1, b2);
    const Vec3 n2 = cross(b2, b3);
    const double n1sq = norm2(n1);
    const double n2sq = norm2(n2);
    const double b2len = norm(b2);

    DihedralGeometry g{};
    if (n1sq < 1e-12 || n2sq < 1e-12 || b2len < 1e-12) {
        // Degenerate (collinear) geometry: zero force, zero angle.
        g.phi = 0.0;
        return g;
    }
    g.phi = std::atan2(dot(cross(n1, n2), b2) / b2len, dot(n1, n2));

    // dphi/dri = -(b2len / n1sq) * n1 ; dphi/drl = (b2len / n2sq) * n2.
    // The middle-atom projections use s12 = -(b1.b2)/|b2|^2 and
    // s32 = -(b3.b2)/|b2|^2 with our bond-vector convention b1 = rj - ri,
    // b2 = rk - rj, b3 = rl - rk (verified against finite differences).
    const Vec3 dphi_dri = n1 * (-b2len / n1sq);
    const Vec3 dphi_drl = n2 * (b2len / n2sq);
    const double s12 = -dot(b1, b2) / (b2len * b2len);
    const double s32 = -dot(b3, b2) / (b2len * b2len);
    const Vec3 dphi_drj = dphi_dri * (s12 - 1.0) - dphi_drl * s32;
    const Vec3 dphi_drk = dphi_drl * (s32 - 1.0) - dphi_dri * s12;

    g.fi = dphi_dri;
    g.fj = dphi_drj;
    g.fk = dphi_drk;
    g.fl = dphi_drl;
    return g;
}

} // namespace

ForceField::ForceField(const Topology& top, const Box& box,
                       ForceFieldParams params, ThreadPool* pool)
    : top_(top), box_(box), params_(params), pool_(pool),
      neighborList_(params.cutoff, params.neighborSkin) {
    COP_REQUIRE(top.finalized(), "topology must be finalized");
    COP_REQUIRE(params.cutoff > 0.0, "cutoff must be positive");
}

Energies ForceField::compute(const std::vector<Vec3>& positions,
                             std::vector<Vec3>& forces) {
    COP_REQUIRE(positions.size() == top_.numParticles(),
                "positions size mismatch");
    forces.assign(positions.size(), Vec3{});
    neighborList_.update(top_, box_, positions);

    Energies e = computeBonded(positions, forces);
    e.contact = computeContacts(positions, forces, e.pairVirial);
    computeNonbonded(positions, forces, e);
    return e;
}

Energies ForceField::computeBonded(const std::vector<Vec3>& positions,
                                   std::vector<Vec3>& forces) const {
    Energies e;

    for (const auto& b : top_.bonds()) {
        const Vec3 d = box_.minimumImage(positions[std::size_t(b.i)],
                                         positions[std::size_t(b.j)]);
        const double r = norm(d);
        const double dr = r - b.r0;
        e.bond += 0.5 * b.k * dr * dr;
        if (r > 1e-12) {
            const Vec3 f = d * (-b.k * dr / r);
            forces[std::size_t(b.i)] += f;
            forces[std::size_t(b.j)] -= f;
            e.pairVirial += dot(d, f);
        }
    }

    for (const auto& a : top_.angles()) {
        const Vec3 rij = box_.minimumImage(positions[std::size_t(a.i)],
                                           positions[std::size_t(a.j)]);
        const Vec3 rkj = box_.minimumImage(positions[std::size_t(a.k)],
                                           positions[std::size_t(a.j)]);
        const double nij = norm(rij);
        const double nkj = norm(rkj);
        if (nij < 1e-12 || nkj < 1e-12) continue;
        double cosTheta = dot(rij, rkj) / (nij * nkj);
        cosTheta = std::clamp(cosTheta, -1.0, 1.0);
        const double theta = std::acos(cosTheta);
        const double dTheta = theta - a.theta0;
        e.angle += 0.5 * a.forceK * dTheta * dTheta;

        const double sinTheta = std::sqrt(std::max(1e-12, 1.0 - cosTheta * cosTheta));
        // F_i = -dE/dri = -(k dTheta)(dTheta/dcos)(dcos/dri); dTheta/dcos =
        // -1/sin(theta), so the prefactor is +k dTheta / sin(theta).
        const double coeff = a.forceK * dTheta / sinTheta;
        // dcos/dri and dcos/drk
        const Vec3 dcos_dri = (rkj / (nij * nkj)) - rij * (cosTheta / (nij * nij));
        const Vec3 dcos_drk = (rij / (nij * nkj)) - rkj * (cosTheta / (nkj * nkj));
        const Vec3 fi = dcos_dri * coeff;
        const Vec3 fk = dcos_drk * coeff;
        forces[std::size_t(a.i)] += fi;
        forces[std::size_t(a.k)] += fk;
        forces[std::size_t(a.j)] -= fi + fk;
    }

    for (const auto& d : top_.dihedrals()) {
        const auto g = dihedralGeometry(positions[std::size_t(d.i)],
                                        positions[std::size_t(d.j)],
                                        positions[std::size_t(d.k)],
                                        positions[std::size_t(d.l)]);
        const double dphi = g.phi - d.phi0;
        e.dihedral += d.k1 * (1.0 - std::cos(dphi)) +
                      d.k3 * (1.0 - std::cos(3.0 * dphi));
        const double dEdPhi =
            d.k1 * std::sin(dphi) + 3.0 * d.k3 * std::sin(3.0 * dphi);
        forces[std::size_t(d.i)] -= g.fi * dEdPhi;
        forces[std::size_t(d.j)] -= g.fj * dEdPhi;
        forces[std::size_t(d.k)] -= g.fk * dEdPhi;
        forces[std::size_t(d.l)] -= g.fl * dEdPhi;
    }

    return e;
}

double ForceField::computeContacts(const std::vector<Vec3>& positions,
                                   std::vector<Vec3>& forces,
                                   double& virial) const {
    // 12-10 potential: E = eps * (5 (r0/r)^12 - 6 (r0/r)^10)
    // dE/dr = eps * (-60 r0^12 / r^13 + 60 r0^10 / r^11)
    //       = (60 eps / r) * ((r0/r)^10 - (r0/r)^12)
    double energy = 0.0;
    for (const auto& c : top_.contacts()) {
        const Vec3 d = box_.minimumImage(positions[std::size_t(c.i)],
                                         positions[std::size_t(c.j)]);
        const double r2 = norm2(d);
        if (r2 < 1e-12) continue;
        const double inv2 = (c.r0 * c.r0) / r2;
        const double inv10 = inv2 * inv2 * inv2 * inv2 * inv2;
        const double inv12 = inv10 * inv2;
        energy += c.eps * (5.0 * inv12 - 6.0 * inv10);
        const double fOverR = 60.0 * c.eps * (inv12 - inv10) / r2;
        const Vec3 f = d * fOverR;
        forces[std::size_t(c.i)] += f;
        forces[std::size_t(c.j)] -= f;
        virial += fOverR * r2;
    }
    return energy;
}

void ForceField::computeNonbonded(const std::vector<Vec3>& positions,
                                  std::vector<Vec3>& forces,
                                  Energies& e) const {
    const auto& pairs = neighborList_.pairs();
    const double cut2 = params_.cutoff * params_.cutoff;

    // Reaction-field constants (Tironi et al.): with epsilon_RF -> eps_rf,
    // E = q_i q_j * pref * (1/r + k_rf r^2 - c_rf), k_rf and c_rf chosen so
    // the force is continuous at the cutoff.
    const double rc = params_.cutoff;
    const double epsRF = params_.rfDielectric;
    const double kRF = (epsRF - 1.0) / ((2.0 * epsRF + 1.0) * rc * rc * rc);
    const double cRF = 1.0 / rc + kRF * rc * rc;

    // LJ shift so that E(cutoff) == 0 when requested.
    double ljShift = 0.0;
    if (params_.kind == NonbondedKind::LennardJonesRF && params_.shiftLJ) {
        const double s2 = params_.ljSigma * params_.ljSigma / cut2;
        const double s6 = s2 * s2 * s2;
        ljShift = 4.0 * params_.ljEpsilon * (s6 * s6 - s6);
    }

    auto pairTerm = [&](int i, int j, double& enb, double& ecoul,
                        double& evir) {
        const Vec3 d = box_.minimumImage(positions[std::size_t(i)],
                                         positions[std::size_t(j)]);
        const double r2 = norm2(d);
        if (r2 > cut2 || r2 < 1e-12) return Vec3{};
        double fOverR = 0.0;
        if (params_.kind == NonbondedKind::GoRepulsive) {
            const double s2 = params_.repSigma * params_.repSigma / r2;
            const double s6 = s2 * s2 * s2;
            const double s12 = s6 * s6;
            enb += params_.repEpsilon * s12;
            fOverR += 12.0 * params_.repEpsilon * s12 / r2;
        } else {
            const double s2 = params_.ljSigma * params_.ljSigma / r2;
            const double s6 = s2 * s2 * s2;
            const double s12 = s6 * s6;
            enb += 4.0 * params_.ljEpsilon * (s12 - s6) - ljShift;
            fOverR += 24.0 * params_.ljEpsilon * (2.0 * s12 - s6) / r2;
            if (params_.useCoulombRF) {
                const double qq = params_.coulombPrefactor *
                                  top_.charge(std::size_t(i)) *
                                  top_.charge(std::size_t(j));
                if (qq != 0.0) {
                    const double r = std::sqrt(r2);
                    ecoul += qq * (1.0 / r + kRF * r2 - cRF);
                    fOverR += qq * (1.0 / (r2 * r) - 2.0 * kRF);
                }
            }
        }
        evir += fOverR * r2;
        return d * fOverR;
    };

    // The Blocked4 flavor processes the pair list in blocks of 4,
    // accumulating into small fixed arrays the compiler can keep in vector
    // registers; the Scalar flavor is the obvious loop. Results agree to
    // rounding. With a thread pool, the pair range is chunked with
    // per-thread force buffers and reduced (the paper's "thread" tier).
    auto processRange = [&](std::size_t lo, std::size_t hi,
                            std::vector<Vec3>& fbuf, double& enb,
                            double& ecoul, double& evir) {
        if (params_.flavor == KernelFlavor::Blocked4) {
            std::size_t p = lo;
            for (; p + 4 <= hi; p += 4) {
                Vec3 fs[4];
                for (int u = 0; u < 4; ++u)
                    fs[u] = pairTerm(pairs[p + std::size_t(u)].i,
                                     pairs[p + std::size_t(u)].j, enb, ecoul,
                                     evir);
                for (int u = 0; u < 4; ++u) {
                    fbuf[std::size_t(pairs[p + std::size_t(u)].i)] += fs[u];
                    fbuf[std::size_t(pairs[p + std::size_t(u)].j)] -= fs[u];
                }
            }
            for (; p < hi; ++p) {
                const Vec3 f =
                    pairTerm(pairs[p].i, pairs[p].j, enb, ecoul, evir);
                fbuf[std::size_t(pairs[p].i)] += f;
                fbuf[std::size_t(pairs[p].j)] -= f;
            }
        } else {
            for (std::size_t p = lo; p < hi; ++p) {
                const Vec3 f =
                    pairTerm(pairs[p].i, pairs[p].j, enb, ecoul, evir);
                fbuf[std::size_t(pairs[p].i)] += f;
                fbuf[std::size_t(pairs[p].j)] -= f;
            }
        }
    };

    if (pool_ != nullptr && pairs.size() >= 1024 && pool_->size() > 1) {
        const std::size_t nChunks = pool_->size();
        const std::size_t chunk = (pairs.size() + nChunks - 1) / nChunks;
        std::vector<std::vector<Vec3>> fbufs(
            nChunks, std::vector<Vec3>(positions.size()));
        std::vector<double> enbs(nChunks, 0.0), ecouls(nChunks, 0.0),
            evirs(nChunks, 0.0);
        pool_->parallelFor(0, nChunks, [&](std::size_t c) {
            const std::size_t lo = c * chunk;
            const std::size_t hi = std::min(lo + chunk, pairs.size());
            if (lo < hi)
                processRange(lo, hi, fbufs[c], enbs[c], ecouls[c],
                             evirs[c]);
        });
        for (std::size_t c = 0; c < nChunks; ++c) {
            for (std::size_t i = 0; i < forces.size(); ++i)
                forces[i] += fbufs[c][i];
            e.nonbonded += enbs[c];
            e.coulomb += ecouls[c];
            e.pairVirial += evirs[c];
        }
    } else {
        processRange(0, pairs.size(), forces, e.nonbonded, e.coulomb,
                     e.pairVirial);
    }
}

double pairPressure(const Energies& energies, double kineticEnergy,
                    double volume) {
    COP_REQUIRE(volume > 0.0, "volume must be positive");
    return (2.0 * kineticEnergy + energies.pairVirial) / (3.0 * volume);
}

double maxForceError(ForceField& ff, std::vector<Vec3> positions, double h) {
    std::vector<Vec3> analytic;
    ff.compute(positions, analytic);

    double maxErr = 0.0;
    std::vector<Vec3> scratch;
    for (std::size_t i = 0; i < positions.size(); ++i) {
        for (int d = 0; d < 3; ++d) {
            const double orig = positions[i][d];
            positions[i][d] = orig + h;
            const double ep = ff.compute(positions, scratch).potential();
            positions[i][d] = orig - h;
            const double em = ff.compute(positions, scratch).potential();
            positions[i][d] = orig;
            const double numeric = -(ep - em) / (2.0 * h);
            maxErr = std::max(maxErr, std::abs(numeric - analytic[i][d]));
        }
    }
    return maxErr;
}

} // namespace cop::md
