#include "mdlib/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "mdlib/observables.hpp"
#include "util/error.hpp"

namespace cop::md {

RdfResult radialDistribution(const Trajectory& trajectory, const Box& box,
                             double rMax, std::size_t nBins) {
    COP_REQUIRE(!trajectory.empty(), "empty trajectory");
    COP_REQUIRE(box.periodic, "RDF needs a periodic box");
    COP_REQUIRE(rMax > 0.0 && nBins > 0, "bad binning");
    const double minHalf =
        0.5 * std::min({box.lengths.x, box.lengths.y, box.lengths.z});
    COP_REQUIRE(rMax <= minHalf, "rMax beyond the minimum-image radius");

    const std::size_t n = trajectory.frame(0).positions.size();
    const double binWidth = rMax / double(nBins);
    std::vector<double> counts(nBins, 0.0);

    for (const auto& frame : trajectory.frames()) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                const double r = norm(box.minimumImage(frame.positions[i],
                                                       frame.positions[j]));
                if (r < rMax) counts[std::size_t(r / binWidth)] += 2.0;
            }
        }
    }

    const double rho = double(n) / box.volume();
    const double framesCount = double(trajectory.numFrames());
    RdfResult out;
    out.r.resize(nBins);
    out.g.resize(nBins);
    for (std::size_t b = 0; b < nBins; ++b) {
        const double rLo = double(b) * binWidth;
        const double rHi = rLo + binWidth;
        const double shell =
            4.0 / 3.0 * M_PI * (rHi * rHi * rHi - rLo * rLo * rLo);
        out.r[b] = rLo + 0.5 * binWidth;
        out.g[b] =
            counts[b] / (framesCount * double(n) * rho * shell);
    }
    return out;
}

std::vector<double> meanSquaredDisplacement(const Trajectory& trajectory,
                                            std::size_t maxLag) {
    COP_REQUIRE(trajectory.numFrames() > maxLag, "trajectory too short");
    const std::size_t n = trajectory.frame(0).positions.size();
    std::vector<double> msd(maxLag + 1, 0.0);
    for (std::size_t k = 1; k <= maxLag; ++k) {
        double sum = 0.0;
        std::size_t samples = 0;
        for (std::size_t t = 0; t + k < trajectory.numFrames(); ++t) {
            const auto& a = trajectory.frame(t).positions;
            const auto& b = trajectory.frame(t + k).positions;
            for (std::size_t i = 0; i < n; ++i) sum += distance2(a[i], b[i]);
            ++samples;
        }
        msd[k] = sum / (double(samples) * double(n));
    }
    return msd;
}

double diffusionCoefficient(const Trajectory& trajectory,
                            std::size_t maxLag, double timePerFrame,
                            std::size_t fitBegin) {
    COP_REQUIRE(timePerFrame > 0.0, "timePerFrame must be positive");
    COP_REQUIRE(fitBegin >= 1 && fitBegin < maxLag, "bad fit range");
    const auto msd = meanSquaredDisplacement(trajectory, maxLag);
    // Least-squares slope of MSD vs t through the origin.
    double num = 0.0, den = 0.0;
    for (std::size_t k = fitBegin; k <= maxLag; ++k) {
        const double t = double(k) * timePerFrame;
        num += t * msd[k];
        den += t * t;
    }
    return num / den / 6.0;
}

std::vector<double> rmsf(const Trajectory& trajectory) {
    COP_REQUIRE(trajectory.numFrames() >= 2, "need at least two frames");
    const std::size_t n = trajectory.frame(0).positions.size();

    // Two-pass: align everything onto the first frame, compute the mean,
    // then align onto the mean and accumulate fluctuations.
    std::vector<std::vector<Vec3>> aligned;
    aligned.reserve(trajectory.numFrames());
    const auto& ref = trajectory.frame(0).positions;
    for (const auto& frame : trajectory.frames()) {
        auto pos = frame.positions;
        superimpose(ref, pos);
        aligned.push_back(std::move(pos));
    }
    std::vector<Vec3> mean(n);
    for (const auto& pos : aligned)
        for (std::size_t i = 0; i < n; ++i) mean[i] += pos[i];
    for (auto& m : mean) m /= double(aligned.size());

    std::vector<double> out(n, 0.0);
    for (auto& pos : aligned) {
        superimpose(mean, pos);
        for (std::size_t i = 0; i < n; ++i)
            out[i] += distance2(pos[i], mean[i]);
    }
    for (auto& v : out) v = std::sqrt(v / double(aligned.size()));
    return out;
}

} // namespace cop::md
