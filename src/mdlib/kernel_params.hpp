#pragma once

/// \file kernel_params.hpp
/// The contract between the force engine and its nonbonded inner loops:
/// the constant block every kernel consumes (SoaParams) and the
/// function-pointer table a kernel implementation exports
/// (NonbondedKernelSet). This header is included both by forcefield.cpp
/// (the scalar SoA kernels and the engine that slices buckets across
/// threads) and by the per-ISA SIMD translation units, so it must stay
/// plain data: no inline functions, no templates — anything with code in
/// it would be compiled under different -m flags in different TUs and
/// tripped over by the linker's pick-one rule.

#include <cstddef>

namespace cop::md {

/// Constants consumed by the SoA/SIMD inner loops. For an open
/// (non-periodic) box the lengths and inverse lengths are zero, which
/// turns the minimum-image fixup into arithmetic no-ops — no branch in
/// the loop. The tab arrays decode per-pair shift codes (0..26) into the
/// three components of the pair's periodic shift vector.
struct SoaParams {
    double cut2 = 0.0, minR2 = 1e-12;
    double Lx = 0.0, Ly = 0.0, Lz = 0.0;
    double iLx = 0.0, iLy = 0.0, iLz = 0.0;
    double sig2 = 0.0, eps4 = 0.0, eps24 = 0.0, ljShift = 0.0;
    double kRF = 0.0, cRF = 0.0;
    double repSig2 = 0.0, repEps = 0.0;
    double tabX[27] = {}, tabY[27] = {}, tabZ[27] = {};
};

/// One nonbonded inner loop over a slice [rLo, rHi) of a bucket's run
/// table (see PairBuckets). All three interaction families share the
/// signature so a kernel set is a uniform table: `qq` is the per-pair
/// charge-product channel (only read by the LJ+Coulomb family), `rs` the
/// per-run shift codes (only read by shifted kernels), and `ecoul` is
/// left untouched by the chargeless families. SoaParams is passed by
/// value on purpose: through a reference the compiler must assume the
/// force scatter stores (double* f) may alias the parameter block's
/// doubles and reload every constant after each store; a by-value copy's
/// address never escapes the kernel, so the constants stay in registers.
using NbPairKernelFn = void (*)(const int* runI, const int* runStart,
                                const int* pj, const unsigned char* rs,
                                const double* qq, std::size_t rLo,
                                std::size_t rHi, const double* xyz, double* f,
                                const SoaParams k, double& enb, double& ecoul,
                                double& evir);

/// The six inner loops one kernel implementation provides:
/// {LJ, LJ+Coulomb-RF, Gō-repulsive} x {unshifted, shifted}, indexed by
/// family field and `shifted ? 1 : 0`. `width` is the SIMD lane count the
/// implementation was compiled for (1 for the scalar SoA reference set);
/// `name` matches the COPERNICUS_SIMD spelling of the ISA.
struct NonbondedKernelSet {
    const char* name = "";
    int width = 1;
    NbPairKernelFn lj[2] = {nullptr, nullptr};
    NbPairKernelFn ljCoul[2] = {nullptr, nullptr};
    NbPairKernelFn go[2] = {nullptr, nullptr};
};

} // namespace cop::md
