#pragma once

/// \file forcefield.hpp
/// Force and energy evaluation. Supports the two interaction models used in
/// this repo:
///   - Gō model: bonded terms + 12-10 native contacts + purely repulsive
///     nonbonded (for non-native pairs), run in vacuum.
///   - Generic Lennard-Jones (+ optional reaction-field Coulomb), run in a
///     periodic box; used to validate integrators/thermostats/neighbour
///     lists against textbook behaviour, mirroring the paper's use of a
///     reaction field for villin electrostatics.
///
/// Forces are accumulated through either a scalar reference kernel or a
/// 4-wide blocked kernel (the "SIMD level" of the paper's Fig. 6); the two
/// are required by tests to agree to tight tolerance.

#include <cstddef>
#include <vector>

#include "mdlib/neighborlist.hpp"
#include "mdlib/pbc.hpp"
#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop {
class ThreadPool;
}

namespace cop::md {

/// Per-term potential energies from one force evaluation.
struct Energies {
    double bond = 0.0;
    double angle = 0.0;
    double dihedral = 0.0;
    double contact = 0.0;
    double nonbonded = 0.0;  ///< repulsive or LJ pair energy
    double coulomb = 0.0;    ///< reaction-field electrostatics
    /// Pairwise virial W = sum over pair interactions of r_ij . f_ij
    /// (bonds, contacts, nonbonded, Coulomb; 3- and 4-body terms excluded
    /// — exact for pair-potential fluids, which is where pressure is
    /// used).
    double pairVirial = 0.0;

    double potential() const {
        return bond + angle + dihedral + contact + nonbonded + coulomb;
    }
};

/// Instantaneous pressure from the pair virial: P = (2K + W) / (3V) in
/// kB = 1 units, with K the kinetic energy.
double pairPressure(const Energies& energies, double kineticEnergy,
                    double volume);

enum class NonbondedKind {
    GoRepulsive,      ///< E = eps * (sigma/r)^12, cut at cutoff
    LennardJonesRF,   ///< 12-6 LJ + reaction-field Coulomb
};

enum class KernelFlavor {
    Scalar,   ///< straightforward reference loop
    Blocked4, ///< 4-wide blocked loop, auto-vectorizer friendly
};

struct ForceFieldParams {
    NonbondedKind kind = NonbondedKind::GoRepulsive;
    KernelFlavor flavor = KernelFlavor::Blocked4;

    double cutoff = 3.0;       ///< nonbonded cutoff (reduced units)
    double neighborSkin = 0.3; ///< Verlet buffer

    // Gō repulsion
    double repEpsilon = 1.0;
    double repSigma = 1.0;

    // Lennard-Jones
    double ljEpsilon = 1.0;
    double ljSigma = 1.0;
    bool shiftLJ = true; ///< shift LJ so E(cutoff) = 0 (energy conservation)

    // Reaction field (paper: epsilon_RF = 78)
    bool useCoulombRF = false;
    double coulombPrefactor = 1.0; ///< 1/(4 pi eps0) in reduced units
    double rfDielectric = 78.0;
};

/// Stateless-ish force engine: owns the neighbour list and scratch buffers,
/// but the positions/forces live in the caller's State.
class ForceField {
public:
    ForceField(const Topology& top, const Box& box, ForceFieldParams params,
               ThreadPool* pool = nullptr);

    /// Recomputes `forces` (overwritten) from `positions`; returns energies.
    /// Updates the neighbour list as needed.
    Energies compute(const std::vector<Vec3>& positions,
                     std::vector<Vec3>& forces);

    const ForceFieldParams& params() const { return params_; }
    const NeighborList& neighborList() const { return neighborList_; }
    const Topology& topology() const { return top_; }
    const Box& box() const { return box_; }

    /// Replaces the box (barostat rescale); invalidates the neighbour
    /// list so the next compute() rebuilds it.
    void setBox(const Box& box) {
        box_ = box;
        neighborList_.invalidate();
    }

private:
    Energies computeBonded(const std::vector<Vec3>& positions,
                           std::vector<Vec3>& forces) const;
    double computeContacts(const std::vector<Vec3>& positions,
                           std::vector<Vec3>& forces,
                           double& virial) const;
    void computeNonbonded(const std::vector<Vec3>& positions,
                          std::vector<Vec3>& forces, Energies& e) const;

    const Topology& top_;
    Box box_;
    ForceFieldParams params_;
    ThreadPool* pool_;
    NeighborList neighborList_;
};

/// Numerical-gradient check helper used by tests: returns the maximum
/// absolute difference between analytic forces and central finite
/// differences of the energy, over all particles and components.
double maxForceError(ForceField& ff, std::vector<Vec3> positions,
                     double h = 1e-6);

} // namespace cop::md
