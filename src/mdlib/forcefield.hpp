#pragma once

/// \file forcefield.hpp
/// Force and energy evaluation. Supports the two interaction models used in
/// this repo:
///   - Gō model: bonded terms + 12-10 native contacts + purely repulsive
///     nonbonded (for non-native pairs), run in vacuum.
///   - Generic Lennard-Jones (+ optional reaction-field Coulomb), run in a
///     periodic box; used to validate integrators/thermostats/neighbour
///     lists against textbook behaviour, mirroring the paper's use of a
///     reaction field for villin electrostatics.
///
/// Forces are accumulated through one of four kernels (the "SIMD level" of
/// the paper's Fig. 6): a scalar reference loop, a 4-wide blocked loop,
/// the default structure-of-arrays engine (branch-free kind-split pair
/// buckets, stored as same-i runs with precomputed periodic shifts, over
/// cache-aligned xyz-interleaved coordinate triplets, with a striped
/// zero-allocation threaded reduction), or the SoA engine driven by
/// runtime-dispatched SIMD kernels (SSE2/AVX2/AVX-512F/NEON selected at
/// startup via simd_dispatch.hpp; same buckets, width-templated inner
/// loops). Scalar/Blocked4/Soa are required by tests to agree within
/// 1e-10; the SIMD flavors within 1e-9 (vector accumulators change only
/// the summation order).

#include <cstddef>
#include <vector>

#include "mdlib/force_workspace.hpp"
#include "mdlib/neighborlist.hpp"
#include "mdlib/pbc.hpp"
#include "mdlib/simd_dispatch.hpp"
#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop {
class ThreadPool;
}

namespace cop::md {

/// Per-term potential energies from one force evaluation.
struct Energies {
    double bond = 0.0;
    double angle = 0.0;
    double dihedral = 0.0;
    double contact = 0.0;
    double nonbonded = 0.0;  ///< repulsive or LJ pair energy
    double coulomb = 0.0;    ///< reaction-field electrostatics
    /// Pairwise virial W = sum over pair interactions of r_ij . f_ij
    /// (bonds, contacts, nonbonded, Coulomb; 3- and 4-body terms excluded
    /// — exact for pair-potential fluids, which is where pressure is
    /// used).
    double pairVirial = 0.0;

    double potential() const {
        return bond + angle + dihedral + contact + nonbonded + coulomb;
    }
};

/// Instantaneous pressure from the pair virial: P = (2K + W) / (3V) in
/// kB = 1 units, with K the kinetic energy.
double pairPressure(const Energies& energies, double kineticEnergy,
                    double volume);

enum class NonbondedKind {
    GoRepulsive,      ///< E = eps * (sigma/r)^12, cut at cutoff
    LennardJonesRF,   ///< 12-6 LJ + reaction-field Coulomb
};

enum class KernelFlavor {
    Scalar,   ///< straightforward reference loop
    Blocked4, ///< 4-wide blocked loop, auto-vectorizer friendly
    Soa,      ///< structure-of-arrays kernel over kind-split pair buckets:
              ///< branch-free inner loops, precomputed charge products,
              ///< striped zero-allocation threaded reduction
    SimdAuto, ///< the Soa engine with explicit-SIMD inner loops, ISA
              ///< picked at startup (ForceFieldParams::simdIsa override >
              ///< COPERNICUS_SIMD env var > CPU detection)
};

struct ForceFieldParams {
    NonbondedKind kind = NonbondedKind::GoRepulsive;
    /// Soa (not SimdAuto) on purpose: the default must produce identical
    /// trajectories on every host, and checkpoints migrate across
    /// heterogeneous workers — ISA-dependent rounding in the default
    /// kernel would make both host-dependent. Opting into SimdAuto is a
    /// per-project throughput decision (see DESIGN.md).
    KernelFlavor flavor = KernelFlavor::Soa;
    /// Which SIMD kernel set SimdAuto uses; Auto defers to the
    /// COPERNICUS_SIMD env var and then CPU detection. Ignored by the
    /// other flavors. Non-runnable explicit choices throw at
    /// construction.
    SimdIsa simdIsa = SimdIsa::Auto;

    double cutoff = 3.0;       ///< nonbonded cutoff (reduced units)
    double neighborSkin = 0.3; ///< Verlet buffer

    // Gō repulsion
    double repEpsilon = 1.0;
    double repSigma = 1.0;

    // Lennard-Jones
    double ljEpsilon = 1.0;
    double ljSigma = 1.0;
    bool shiftLJ = true; ///< shift LJ so E(cutoff) = 0 (energy conservation)

    // Reaction field (paper: epsilon_RF = 78)
    bool useCoulombRF = false;
    double coulombPrefactor = 1.0; ///< 1/(4 pi eps0) in reduced units
    double rfDielectric = 78.0;
};

/// Stateless-ish force engine: owns the neighbour list and scratch buffers,
/// but the positions/forces live in the caller's State.
class ForceField {
public:
    ForceField(const Topology& top, const Box& box, ForceFieldParams params,
               ThreadPool* pool = nullptr);

    /// Recomputes `forces` (overwritten) from `positions`; returns energies.
    /// Updates the neighbour list as needed.
    Energies compute(const std::vector<Vec3>& positions,
                     std::vector<Vec3>& forces);

    const ForceFieldParams& params() const { return params_; }
    const NeighborList& neighborList() const { return neighborList_; }
    const Topology& topology() const { return top_; }
    const Box& box() const { return box_; }

    /// Attaches (or detaches, with nullptr) the thread pool used for the
    /// nonbonded loop and the neighbour-list displacement scan.
    void setPool(ThreadPool* pool) { pool_ = pool; }
    ThreadPool* pool() const { return pool_; }

    /// Persistent scratch state; exposed so tests can assert buffer reuse
    /// (steady-state compute() must not reallocate).
    const ForceWorkspace& workspace() const { return ws_; }

    /// The ISA the nonbonded kernel table was resolved to at
    /// construction: the dispatch result for SimdAuto, SimdIsa::Scalar
    /// for every other flavor (they run width-1 scalar kernels).
    SimdIsa activeSimdIsa() const { return activeIsa_; }
    /// The kernel table the SoA engine calls through (width 1 for the
    /// Soa flavor's scalar reference set).
    const NonbondedKernelSet& kernelSet() const { return kernels_; }

    /// Replaces the box (barostat rescale); invalidates the neighbour
    /// list so the next compute() rebuilds it.
    void setBox(const Box& box) {
        box_ = box;
        neighborList_.invalidate();
    }

private:
    Energies computeBonded(const std::vector<Vec3>& positions,
                           std::vector<Vec3>& forces) const;
    double computeContacts(const std::vector<Vec3>& positions,
                           std::vector<Vec3>& forces,
                           double& virial) const;
    void computeNonbonded(const std::vector<Vec3>& positions,
                          std::vector<Vec3>& forces, Energies& e);
    void computeNonbondedSoa(const std::vector<Vec3>& positions,
                             std::vector<Vec3>& forces, Energies& e);
    /// Re-buckets the neighbour list by interaction kind (with charge
    /// products and, for cell-built lists, per-pair periodic shift codes
    /// precomputed); no-op while the list is unchanged.
    void splitPairBuckets(const std::vector<Vec3>& positions);

    const Topology& top_;
    Box box_;
    ForceFieldParams params_;
    ThreadPool* pool_;
    NeighborList neighborList_;
    ForceWorkspace ws_;
    NonbondedKernelSet kernels_;
    SimdIsa activeIsa_ = SimdIsa::Scalar;
};

/// Numerical-gradient check helper used by tests: returns the maximum
/// absolute difference between analytic forces and central finite
/// differences of the energy, over all particles and components.
double maxForceError(ForceField& ff, std::vector<Vec3> positions,
                     double h = 1e-6);

} // namespace cop::md
