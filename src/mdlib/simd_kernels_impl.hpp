#pragma once

/// \file simd_kernels_impl.hpp
/// The nonbonded inner loops, written once as width-templated kernels
/// over SimdPack and stamped out per ISA. Each kernels_<isa>.cpp TU
/// defines COP_SIMD_ARCH_NS (its private namespace), COP_SIMD_WIDTH (its
/// pack width) and a COP_SIMD_TARGET_<ISA> macro, then includes this
/// header and exports a NonbondedKernelSet factory. Nothing here may be
/// referenced from outside the including TU except through the function
/// pointers in that set — the TUs are compiled with different -m flags
/// and their symbols must never be merged (see simd.hpp).
///
/// Loop shape, mirroring the scalar SoA kernels in forcefield.cpp pair
/// for pair: per run, broadcast the (shift-folded) i position; walk the
/// run's j pairs W at a time with lane-wise triplet loads; compute the
/// minimum image (unshifted lists only), the branch-free cutoff select
/// (out-of-range lanes get keep = 0 and r2 replaced by cut2 so the
/// divide stays finite), and the family's force/energy math on whole
/// packs; accumulate the i force and the energies in vector registers;
/// scatter the j forces through the pack's scatterSub3 (per-lane
/// read-modify-writes; j indices are distinct within a run, so a
/// block's lanes never collide); finish the run's remainder (< W
/// pairs) as one more block with the dead lanes folded into the cutoff
/// mask. Vector accumulators are reduced once per slice, so results
/// differ from the scalar flavors only by summation order and the
/// packs' documented recip/rsqrt refinement — covered by the parity
/// tolerance.

#include <cstddef>

#include "mdlib/kernel_params.hpp"
#include "mdlib/simd.hpp"

#ifndef COP_SIMD_WIDTH
#error "kernels_<isa>.cpp must define COP_SIMD_WIDTH before including simd_kernels_impl.hpp"
#endif

namespace cop::md::simd {
namespace COP_SIMD_ARCH_NS {

enum class Family { Lj, LjCoul, Go };

template <Family F, bool Shifted>
void pairKernel(const int* runI, const int* runStart, const int* pj,
                const unsigned char* rs, const double* qq, std::size_t rLo,
                std::size_t rHi, const double* xyz, double* f,
                const SoaParams k, double& enbOut, double& ecoulOut,
                double& evirOut) {
    using P = SimdPack<COP_SIMD_WIDTH>;
    constexpr int W = COP_SIMD_WIDTH;

    const P vCut2 = P::broadcast(k.cut2);
    const P vMinR2 = P::broadcast(k.minR2);
    const P vOne = P::broadcast(1.0);
    const P vZero = P::zero();
    const P vLx = P::broadcast(k.Lx), vLy = P::broadcast(k.Ly),
            vLz = P::broadcast(k.Lz);
    const P viLx = P::broadcast(k.iLx), viLy = P::broadcast(k.iLy),
            viLz = P::broadcast(k.iLz);
    const P vSig2 = P::broadcast(F == Family::Go ? k.repSig2 : k.sig2);
    const P vEps4 = P::broadcast(k.eps4), vEps24 = P::broadcast(k.eps24);
    const P vLjShift = P::broadcast(k.ljShift);
    const P vTwo = P::broadcast(2.0);
    const P vRepEps = P::broadcast(k.repEps);
    const P vRepEps12 = P::broadcast(12.0 * k.repEps);
    const P vKrf = P::broadcast(k.kRF), vCrf = P::broadcast(k.cRF);
    const P vKrf2 = P::broadcast(2.0 * k.kRF);

    P eAcc = P::zero(), ecAcc = P::zero(), virAcc = P::zero();

    for (std::size_t r = rLo; r < rHi; ++r) {
        const std::size_t i3 = 3 * std::size_t(runI[r]);
        double xi = xyz[i3], yi = xyz[i3 + 1], zi = xyz[i3 + 2];
        if constexpr (Shifted) {
            const unsigned c = rs[r];
            xi += k.tabX[c];
            yi += k.tabY[c];
            zi += k.tabZ[c];
        }
        const P vxi = P::broadcast(xi), vyi = P::broadcast(yi),
                vzi = P::broadcast(zi);
        P fxAcc = P::zero(), fyAcc = P::zero(), fzAcc = P::zero();

        // One block of W pairs at offset p. Tail blocks (the final
        // < W pairs of a run) run the same vector arithmetic with the
        // out-of-run lanes masked off: splitPairBuckets over-allocates
        // the j / qq channels by a vector width of culled sentinel
        // entries, so the full-width channel loads stay in-bounds, and
        // the tail scatter writes back only the live lanes.
        auto block = [&]<bool Tail>(std::size_t p, int tail) {
            P xj, yj, zj;
            P::gather3(xyz, pj + p, xj, yj, zj);
            P dx = vxi - xj, dy = vyi - yj, dz = vzi - zj;
            if constexpr (!Shifted) {
                dx = dx - vLx * P::rint(dx * viLx);
                dy = dy - vLy * P::rint(dy * viLy);
                dz = dz - vLz * P::rint(dz * viLz);
            }
            const P r2 = dx * dx + dy * dy + dz * dz;
            typename P::Mask in =
                P::maskAnd(P::cmpLe(r2, vCut2), P::cmpGe(r2, vMinR2));
            if constexpr (Tail) in = P::maskAnd(in, P::tailMask(tail));
            const P keep = P::select(in, vOne, vZero);
            const P r2s = P::select(in, r2, vCut2);
            const P inv2 = P::recip(r2s);
            const P s2 = vSig2 * inv2;
            const P s6 = s2 * s2 * s2;
            const P s12 = s6 * s6;

            P fOverR;
            if constexpr (F == Family::Go) {
                eAcc += keep * (vRepEps * s12);
                fOverR = keep * (vRepEps12 * s12 * inv2);
            } else {
                eAcc += keep * (vEps4 * (s12 - s6) - vLjShift);
                const P fLj = vEps24 * (vTwo * s12 - s6) * inv2;
                if constexpr (F == Family::LjCoul) {
                    const P vqq = P::load(qq + p);
                    const P invR = P::rsqrt(r2s);
                    ecAcc += keep * (vqq * (invR + vKrf * r2s - vCrf));
                    fOverR = keep * (fLj + vqq * (invR * inv2 - vKrf2));
                } else {
                    fOverR = keep * fLj;
                }
            }
            virAcc += fOverR * r2s;

            const P fxp = dx * fOverR, fyp = dy * fOverR, fzp = dz * fOverR;
            fxAcc += fxp;
            fyAcc += fyp;
            fzAcc += fzp;

            if constexpr (!Tail) {
                P::scatterSub3(f, pj + p, fxp, fyp, fzp);
            } else {
                // Spill and write back the live lanes only: masked lanes
                // may point at sentinel slots (or, in the threaded path,
                // at runs owned by another slice) and must not be touched.
                alignas(64) double sx[W], sy[W], sz[W];
                fxp.store(sx);
                fyp.store(sy);
                fzp.store(sz);
                for (int l = 0; l < tail; ++l) {
                    const std::size_t j3 =
                        3 * std::size_t(pj[p + std::size_t(l)]);
                    f[j3] -= sx[l];
                    f[j3 + 1] -= sy[l];
                    f[j3 + 2] -= sz[l];
                }
            }
        };

        std::size_t p = std::size_t(runStart[r]);
        const std::size_t pEnd = std::size_t(runStart[r + 1]);
        for (; p + W <= pEnd; p += W)
            block.template operator()<false>(p, W);
        if (p < pEnd) block.template operator()<true>(p, int(pEnd - p));

        f[i3] += fxAcc.hsum();
        f[i3 + 1] += fyAcc.hsum();
        f[i3 + 2] += fzAcc.hsum();
    }

    enbOut += eAcc.hsum();
    if constexpr (F == Family::LjCoul) ecoulOut += ecAcc.hsum();
    evirOut += virAcc.hsum();
}

/// Assembles the exported kernel table for this TU's ISA.
inline NonbondedKernelSet makeKernelSet(const char* name) {
    NonbondedKernelSet s;
    s.name = name;
    s.width = COP_SIMD_WIDTH;
    s.lj[0] = &pairKernel<Family::Lj, false>;
    s.lj[1] = &pairKernel<Family::Lj, true>;
    s.ljCoul[0] = &pairKernel<Family::LjCoul, false>;
    s.ljCoul[1] = &pairKernel<Family::LjCoul, true>;
    s.go[0] = &pairKernel<Family::Go, false>;
    s.go[1] = &pairKernel<Family::Go, true>;
    return s;
}

} // namespace COP_SIMD_ARCH_NS
} // namespace cop::md::simd
