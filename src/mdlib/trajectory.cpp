#include "mdlib/trajectory.hpp"

#include "util/error.hpp"

namespace cop::md {

void Trajectory::append(Frame frame) {
    COP_REQUIRE(!frame.positions.empty(), "frame without positions");
    if (!frames_.empty())
        COP_REQUIRE(frame.positions.size() == frames_.front().positions.size(),
                    "frame size mismatch");
    frames_.push_back(std::move(frame));
}

void Trajectory::append(std::int64_t step, double time,
                        std::vector<Vec3> positions) {
    append(Frame{step, time, std::move(positions)});
}

const Frame& Trajectory::frame(std::size_t i) const {
    COP_REQUIRE(i < frames_.size(), "frame index out of range");
    return frames_[i];
}

const Frame& Trajectory::back() const {
    COP_REQUIRE(!frames_.empty(), "empty trajectory");
    return frames_.back();
}

void Trajectory::extend(const Trajectory& other) {
    for (const auto& f : other.frames_) append(f);
}

Trajectory Trajectory::subsampled(std::size_t stride,
                                  std::size_t offset) const {
    COP_REQUIRE(stride > 0, "stride must be positive");
    Trajectory out;
    for (std::size_t i = offset; i < frames_.size(); i += stride)
        out.append(frames_[i]);
    return out;
}

void Trajectory::serialize(BinaryWriter& w) const {
    w.writeHeader("CTRJ", 1);
    w.write(std::uint64_t(frames_.size()));
    for (const auto& f : frames_) {
        w.write(f.step);
        w.write(f.time);
        w.write(f.positions);
    }
}

Trajectory Trajectory::deserialize(BinaryReader& r) {
    const auto version = r.readHeader("CTRJ");
    COP_REQUIRE(version == 1, "unsupported trajectory version");
    Trajectory t;
    const auto n = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
        Frame f;
        f.step = r.read<std::int64_t>();
        f.time = r.read<double>();
        f.positions = r.readVec3Vector();
        t.append(std::move(f));
    }
    return t;
}

} // namespace cop::md
