/// SSE2 kernel TU (x86-64 baseline): width-2 packs. Compiled with -msse2
/// — a no-op on x86-64, but kept explicit so the TU is honest about what
/// it assumes and so 32-bit builds get the flag they need.

#define COP_SIMD_ARCH_NS arch_sse2
#define COP_SIMD_WIDTH 2
#define COP_SIMD_TARGET_SSE2 1

#include "mdlib/simd_kernels_impl.hpp"

#include "mdlib/simd_kernel_sets.hpp"

namespace cop::md::simd {

NonbondedKernelSet sse2Kernels() { return arch_sse2::makeKernelSet("sse2"); }

} // namespace cop::md::simd
