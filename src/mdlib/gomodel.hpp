#pragma once

/// \file gomodel.hpp
/// Structure-based (Gō) model builder: given a native Calpha structure it
/// emits a Topology whose minimum is exactly that structure (Clementi-style
/// 12-10 contact potential). This is the engine-level substitute for the
/// paper's explicit-solvent Amber03 villin system: it preserves the funnel
/// topology, metastable intermediates and two-state folding kinetics that
/// the MSM layer consumes, while being executable on a laptop.

#include <vector>

#include "mdlib/forcefield.hpp"
#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop::md {

struct GoModelParams {
    double bondK = 100.0;        ///< harmonic bond constant (eps/sigma^2)
    double angleK = 20.0;        ///< harmonic angle constant (eps/rad^2)
    double dihedralK1 = 1.0;     ///< 1-fold dihedral amplitude
    double dihedralK3 = 0.5;     ///< 3-fold dihedral amplitude
    double contactEpsilon = 1.0; ///< native-contact well depth (sets eps=1)
    double contactCutoff = 2.4;  ///< native-contact distance cutoff (sigma);
                                 ///< ~9 Angstrom at 3.8 A/sigma
    int minSequenceSeparation = 3; ///< |i-j| >= this for native contacts
    double repulsiveSigma = 1.0;   ///< non-native excluded-volume radius
    double repulsiveEpsilon = 1.0;
    double nonbondedCutoff = 3.0;
    double mass = 1.0;
};

/// A Gō model: topology plus the native structure it was derived from.
struct GoModel {
    Topology topology;
    std::vector<Vec3> native;
    GoModelParams params;

    std::size_t numResidues() const { return native.size(); }
    std::size_t numContacts() const { return topology.contacts().size(); }

    /// Force-field parameters consistent with this model (repulsive
    /// nonbonded kernel, vacuum).
    ForceFieldParams forceFieldParams() const;
};

/// Builds a Gō model from a native Calpha trace. The native structure
/// becomes a stationary point of the resulting potential by construction
/// (all equilibrium values taken from the input coordinates).
GoModel buildGoModel(const std::vector<Vec3>& native,
                     const GoModelParams& params = {});

} // namespace cop::md
