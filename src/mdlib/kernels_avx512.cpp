/// AVX-512F kernel TU: width-8 packs with k-register predication.
/// Compiled with -mavx512f; reached only after
/// __builtin_cpu_supports("avx512f"). Note the compiler also defines
/// __AVX2__ here, which is why simd.hpp's specializations are gated on
/// the COP_SIMD_TARGET_* request macros as well — this TU instantiates
/// the width-8 pack only.

#define COP_SIMD_ARCH_NS arch_avx512
#define COP_SIMD_WIDTH 8
#define COP_SIMD_TARGET_AVX512 1

#include "mdlib/simd_kernels_impl.hpp"

#include "mdlib/simd_kernel_sets.hpp"

namespace cop::md::simd {

NonbondedKernelSet avx512Kernels() {
    return arch_avx512::makeKernelSet("avx512");
}

} // namespace cop::md::simd
