#include "mdlib/pdb.hpp"

#include <cstdio>

#include "mdlib/units.hpp"
#include "util/serialize.hpp"

namespace cop::md {

namespace {

void appendModel(std::string& out, const std::vector<Vec3>& positions,
                 int modelIndex, bool multiModel) {
    char line[96];
    if (multiModel) {
        std::snprintf(line, sizeof(line), "MODEL     %4d\n", modelIndex);
        out += line;
    }
    for (std::size_t i = 0; i < positions.size(); ++i) {
        std::snprintf(line, sizeof(line),
                      "ATOM  %5zu  CA  ALA A%4zu    %8.3f%8.3f%8.3f"
                      "  1.00  0.00           C\n",
                      i + 1, i + 1, toAngstrom(positions[i].x),
                      toAngstrom(positions[i].y),
                      toAngstrom(positions[i].z));
        out += line;
    }
    out += multiModel ? "ENDMDL\n" : "TER\n";
}

} // namespace

std::string pdbString(const std::vector<Vec3>& positions,
                      const std::string& title) {
    return pdbString(std::vector<std::vector<Vec3>>{positions}, title);
}

std::string pdbString(const std::vector<std::vector<Vec3>>& models,
                      const std::string& title) {
    std::string out = "TITLE     " + title + "\n";
    const bool multi = models.size() > 1;
    for (std::size_t m = 0; m < models.size(); ++m)
        appendModel(out, models[m], int(m + 1), multi);
    out += "END\n";
    return out;
}

void writePdb(const std::string& path, const std::vector<Vec3>& positions,
              const std::string& title) {
    const std::string content = pdbString(positions, title);
    writeFile(path, std::span(
                        reinterpret_cast<const std::uint8_t*>(content.data()),
                        content.size()));
}

} // namespace cop::md
