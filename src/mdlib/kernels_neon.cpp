/// NEON kernel TU (AArch64): width-2 packs. NEON with double-precision
/// arithmetic is baseline on AArch64, so no extra flags are needed and
/// the set is always runnable there.

#define COP_SIMD_ARCH_NS arch_neon
#define COP_SIMD_WIDTH 2
#define COP_SIMD_TARGET_NEON 1

#include "mdlib/simd_kernels_impl.hpp"

#include "mdlib/simd_kernel_sets.hpp"

namespace cop::md::simd {

NonbondedKernelSet neonKernels() { return arch_neon::makeKernelSet("neon"); }

} // namespace cop::md::simd
