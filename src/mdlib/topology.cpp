#include "mdlib/topology.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace cop::md {

Topology::Topology(std::size_t nParticles) {
    masses_.assign(nParticles, 1.0);
    charges_.assign(nParticles, 0.0);
}

void Topology::addParticle(double mass, double charge) {
    COP_REQUIRE(mass > 0.0, "particle mass must be positive");
    COP_REQUIRE(!finalized_, "cannot add particles after finalize()");
    masses_.push_back(mass);
    charges_.push_back(charge);
}

void Topology::addBond(Bond b) {
    COP_REQUIRE(b.i != b.j, "bond endpoints must differ");
    COP_REQUIRE(b.r0 > 0.0 && b.k >= 0.0, "invalid bond parameters");
    COP_REQUIRE(!finalized_, "cannot add bonds after finalize()");
    bonds_.push_back(b);
}

void Topology::addAngle(Angle a) {
    COP_REQUIRE(a.i != a.j && a.j != a.k && a.i != a.k,
                "angle particles must be distinct");
    COP_REQUIRE(a.forceK >= 0.0, "invalid angle parameters");
    COP_REQUIRE(!finalized_, "cannot add angles after finalize()");
    angles_.push_back(a);
}

void Topology::addDihedral(Dihedral d) {
    COP_REQUIRE(d.i != d.j && d.j != d.k && d.k != d.l && d.i != d.l,
                "dihedral particles must be distinct");
    COP_REQUIRE(!finalized_, "cannot add dihedrals after finalize()");
    dihedrals_.push_back(d);
}

void Topology::addContact(Contact c) {
    COP_REQUIRE(c.i != c.j, "contact endpoints must differ");
    COP_REQUIRE(c.r0 > 0.0 && c.eps >= 0.0, "invalid contact parameters");
    COP_REQUIRE(!finalized_, "cannot add contacts after finalize()");
    contacts_.push_back(c);
}

bool Topology::isExcluded(int i, int j) const {
    COP_ENSURE(finalized_, "topology not finalized");
    const auto& ex = exclusions_[std::size_t(i)];
    return std::binary_search(ex.begin(), ex.end(), j);
}

void Topology::exclude(int i, int j) {
    exclusions_[std::size_t(i)].push_back(j);
    exclusions_[std::size_t(j)].push_back(i);
}

void Topology::finalize() {
    if (finalized_) return;
    const int n = int(numParticles());
    auto check = [n](int idx) {
        COP_REQUIRE(idx >= 0 && idx < n, "topology index out of range");
    };
    exclusions_.assign(numParticles(), {});
    for (const auto& b : bonds_) {
        check(b.i);
        check(b.j);
        exclude(b.i, b.j);
    }
    for (const auto& a : angles_) {
        check(a.i);
        check(a.j);
        check(a.k);
        exclude(a.i, a.k); // 1-3 pair; 1-2 pairs covered by bonds
    }
    for (const auto& d : dihedrals_) {
        check(d.i);
        check(d.j);
        check(d.k);
        check(d.l);
        exclude(d.i, d.l); // 1-4 pair
    }
    for (const auto& c : contacts_) {
        check(c.i);
        check(c.j);
        exclude(c.i, c.j); // contacts handled by their own kernel
    }
    for (auto& ex : exclusions_) {
        std::sort(ex.begin(), ex.end());
        ex.erase(std::unique(ex.begin(), ex.end()), ex.end());
    }
    finalized_ = true;
}

std::string Topology::summary() const {
    std::ostringstream oss;
    oss << numParticles() << " particles, " << bonds_.size() << " bonds, "
        << angles_.size() << " angles, " << dihedrals_.size()
        << " dihedrals, " << contacts_.size() << " native contacts";
    return oss.str();
}

void Topology::serialize(BinaryWriter& w) const {
    w.writeHeader("CTOP", 1);
    w.write(masses_);
    w.write(charges_);
    w.write(std::uint64_t(bonds_.size()));
    for (const auto& b : bonds_) {
        w.write(std::int32_t(b.i));
        w.write(std::int32_t(b.j));
        w.write(b.r0);
        w.write(b.k);
    }
    w.write(std::uint64_t(angles_.size()));
    for (const auto& a : angles_) {
        w.write(std::int32_t(a.i));
        w.write(std::int32_t(a.j));
        w.write(std::int32_t(a.k));
        w.write(a.theta0);
        w.write(a.forceK);
    }
    w.write(std::uint64_t(dihedrals_.size()));
    for (const auto& d : dihedrals_) {
        w.write(std::int32_t(d.i));
        w.write(std::int32_t(d.j));
        w.write(std::int32_t(d.k));
        w.write(std::int32_t(d.l));
        w.write(d.phi0);
        w.write(d.k1);
        w.write(d.k3);
    }
    w.write(std::uint64_t(contacts_.size()));
    for (const auto& c : contacts_) {
        w.write(std::int32_t(c.i));
        w.write(std::int32_t(c.j));
        w.write(c.r0);
        w.write(c.eps);
    }
}

Topology Topology::deserialize(BinaryReader& r) {
    const auto version = r.readHeader("CTOP");
    COP_REQUIRE(version == 1, "unsupported topology version");
    Topology t;
    t.masses_ = r.readVector<double>();
    t.charges_ = r.readVector<double>();
    const auto nb = r.read<std::uint64_t>();
    for (std::uint64_t x = 0; x < nb; ++x) {
        Bond b{};
        b.i = r.read<std::int32_t>();
        b.j = r.read<std::int32_t>();
        b.r0 = r.read<double>();
        b.k = r.read<double>();
        t.bonds_.push_back(b);
    }
    const auto na = r.read<std::uint64_t>();
    for (std::uint64_t x = 0; x < na; ++x) {
        Angle a{};
        a.i = r.read<std::int32_t>();
        a.j = r.read<std::int32_t>();
        a.k = r.read<std::int32_t>();
        a.theta0 = r.read<double>();
        a.forceK = r.read<double>();
        t.angles_.push_back(a);
    }
    const auto nd = r.read<std::uint64_t>();
    for (std::uint64_t x = 0; x < nd; ++x) {
        Dihedral d{};
        d.i = r.read<std::int32_t>();
        d.j = r.read<std::int32_t>();
        d.k = r.read<std::int32_t>();
        d.l = r.read<std::int32_t>();
        d.phi0 = r.read<double>();
        d.k1 = r.read<double>();
        d.k3 = r.read<double>();
        t.dihedrals_.push_back(d);
    }
    const auto nc = r.read<std::uint64_t>();
    for (std::uint64_t x = 0; x < nc; ++x) {
        Contact c{};
        c.i = r.read<std::int32_t>();
        c.j = r.read<std::int32_t>();
        c.r0 = r.read<double>();
        c.eps = r.read<double>();
        t.contacts_.push_back(c);
    }
    t.finalize();
    return t;
}

} // namespace cop::md
