#include "mdlib/constraints.hpp"

#include <cmath>

#include "util/error.hpp"

namespace cop::md {

ShakeConstraints::ShakeConstraints(std::vector<Constraint> constraints,
                                   double tolerance, int maxIterations)
    : constraints_(std::move(constraints)), tolerance_(tolerance),
      maxIterations_(maxIterations) {
    COP_REQUIRE(tolerance > 0.0, "tolerance must be positive");
    COP_REQUIRE(maxIterations >= 1, "need at least one iteration");
    for (const auto& c : constraints_) {
        COP_REQUIRE(c.i != c.j, "constraint endpoints must differ");
        COP_REQUIRE(c.length > 0.0, "constraint length must be positive");
    }
}

ShakeConstraints ShakeConstraints::fromBonds(const Topology& topology,
                                             double tolerance) {
    std::vector<Constraint> cs;
    cs.reserve(topology.bonds().size());
    for (const auto& b : topology.bonds())
        cs.push_back({b.i, b.j, b.r0});
    return ShakeConstraints(std::move(cs), tolerance);
}

void ShakeConstraints::apply(const Topology& topology,
                             const std::vector<Vec3>& reference,
                             std::vector<Vec3>& positions) const {
    COP_REQUIRE(reference.size() == positions.size(), "size mismatch");
    for (int iter = 0; iter < maxIterations_; ++iter) {
        double worst = 0.0;
        for (const auto& c : constraints_) {
            const auto i = std::size_t(c.i);
            const auto j = std::size_t(c.j);
            const Vec3 d = positions[i] - positions[j];
            const double d2 = norm2(d);
            const double target2 = c.length * c.length;
            const double diff = d2 - target2;
            worst = std::max(worst, std::abs(diff) / target2);
            if (std::abs(diff) <= tolerance_ * target2) continue;
            // Standard SHAKE update along the pre-move bond vector.
            const Vec3 dRef = reference[i] - reference[j];
            const double invMi = 1.0 / topology.mass(i);
            const double invMj = 1.0 / topology.mass(j);
            const double denom =
                2.0 * (invMi + invMj) * dot(d, dRef);
            if (std::abs(denom) < 1e-300) continue;
            const double g = diff / denom;
            positions[i] -= dRef * (g * invMi);
            positions[j] += dRef * (g * invMj);
        }
        if (worst <= tolerance_) return;
    }
    // Final check: if we exit the loop unconverged, report it.
    if (maxViolation(positions) > tolerance_)
        throw NumericalError("SHAKE failed to converge");
}

void ShakeConstraints::applyVelocities(const Topology& topology,
                                       const std::vector<Vec3>& positions,
                                       std::vector<Vec3>& velocities) const {
    COP_REQUIRE(positions.size() == velocities.size(), "size mismatch");
    for (int iter = 0; iter < maxIterations_; ++iter) {
        double worst = 0.0;
        for (const auto& c : constraints_) {
            const auto i = std::size_t(c.i);
            const auto j = std::size_t(c.j);
            const Vec3 d = positions[i] - positions[j];
            const Vec3 dv = velocities[i] - velocities[j];
            const double rv = dot(d, dv);
            worst = std::max(worst,
                             std::abs(rv) / (c.length * c.length));
            const double invMi = 1.0 / topology.mass(i);
            const double invMj = 1.0 / topology.mass(j);
            const double k = rv / (norm2(d) * (invMi + invMj));
            velocities[i] -= d * (k * invMi);
            velocities[j] += d * (k * invMj);
        }
        if (worst <= tolerance_) return;
    }
}

double ShakeConstraints::maxViolation(
    const std::vector<Vec3>& positions) const {
    double worst = 0.0;
    for (const auto& c : constraints_) {
        const double d2 = distance2(positions[std::size_t(c.i)],
                                    positions[std::size_t(c.j)]);
        const double target2 = c.length * c.length;
        worst = std::max(worst, std::abs(d2 - target2) / target2);
    }
    return worst;
}

} // namespace cop::md
