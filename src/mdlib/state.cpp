#include "mdlib/state.hpp"

namespace cop::md {

void State::resize(std::size_t n) {
    positions.resize(n);
    velocities.assign(n, Vec3{});
    forces.assign(n, Vec3{});
}

void State::serialize(BinaryWriter& w) const {
    w.writeHeader("CSTA", 1);
    w.write(positions);
    w.write(velocities);
    w.write(forces);
    w.write(step);
    w.write(time);
    w.write(nhXi);
    w.write(nhEta);
}

State State::deserialize(BinaryReader& r) {
    const auto version = r.readHeader("CSTA");
    COP_REQUIRE(version == 1, "unsupported state version");
    State s;
    s.positions = r.readVec3Vector();
    s.velocities = r.readVec3Vector();
    s.forces = r.readVec3Vector();
    s.step = r.read<std::int64_t>();
    s.time = r.read<double>();
    s.nhXi = r.read<double>();
    s.nhEta = r.read<double>();
    return s;
}

bool State::operator==(const State& other) const {
    return positions == other.positions && velocities == other.velocities &&
           forces == other.forces && step == other.step &&
           time == other.time && nhXi == other.nhXi && nhEta == other.nhEta;
}

} // namespace cop::md
