#pragma once

/// \file evaluators/bond.hpp
/// Harmonic bond: E = 1/2 k (r - r0)^2. Pair term — contributes to the
/// pairwise virial.

#include <vector>

#include "mdlib/pbc.hpp"
#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop::md::evaluators {

struct BondEvaluator {
    static double evaluate(const Bond& b, const std::vector<Vec3>& positions,
                           const Box& box, std::vector<Vec3>& forces,
                           double& virial) {
        const Vec3 d = box.minimumImage(positions[std::size_t(b.i)],
                                        positions[std::size_t(b.j)]);
        const double r = norm(d);
        const double dr = r - b.r0;
        const double energy = 0.5 * b.k * dr * dr;
        if (r > 1e-12) {
            const Vec3 f = d * (-b.k * dr / r);
            forces[std::size_t(b.i)] += f;
            forces[std::size_t(b.j)] -= f;
            virial += dot(d, f);
        }
        return energy;
    }
};

} // namespace cop::md::evaluators
