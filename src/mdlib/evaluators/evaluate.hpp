#pragma once

/// \file evaluators/evaluate.hpp
/// The one templated inner loop every bonded interaction family runs
/// through. An evaluator is a stateless struct with
///
///   static double evaluate(const Term& t, const std::vector<Vec3>& pos,
///                          const Box& box, std::vector<Vec3>& forces,
///                          double& virial);
///
/// returning the term's energy and accumulating forces (and, for pair
/// terms, the virial). The driver below sums terms in container order —
/// the exact order the pre-refactor monolithic computeBonded used, so
/// the refactor is bit-identical on identical inputs (pinned by
/// ForceField.BondedEvaluatorsBitIdenticalToMonolith).
///
/// This split is the backend seam: a GPU backend implements one
/// device loop per family against the same Term types, and the CPU
/// evaluators in bond/angle/dihedral/contact.hpp double as its
/// reference semantics. Keep evaluators header-only and free of state —
/// they are compiled into whatever TU instantiates the loop.

#include <vector>

#include "mdlib/pbc.hpp"
#include "util/vec3.hpp"

namespace cop::md::evaluators {

template <class Evaluator, class Term>
double evaluateFamily(const std::vector<Term>& terms,
                      const std::vector<Vec3>& positions, const Box& box,
                      std::vector<Vec3>& forces, double& virial) {
    double energy = 0.0;
    for (const Term& t : terms)
        energy += Evaluator::evaluate(t, positions, box, forces, virial);
    return energy;
}

} // namespace cop::md::evaluators
