#pragma once

/// \file evaluators/contact.hpp
/// Gō native contact, 12-10 potential:
///   E = eps * (5 (r0/r)^12 - 6 (r0/r)^10)
///   dE/dr = eps * (-60 r0^12 / r^13 + 60 r0^10 / r^11)
///         = (60 eps / r) * ((r0/r)^10 - (r0/r)^12)
/// Pair term — contributes to the pairwise virial.

#include <vector>

#include "mdlib/pbc.hpp"
#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop::md::evaluators {

struct ContactEvaluator {
    static double evaluate(const Contact& c,
                           const std::vector<Vec3>& positions, const Box& box,
                           std::vector<Vec3>& forces, double& virial) {
        const Vec3 d = box.minimumImage(positions[std::size_t(c.i)],
                                        positions[std::size_t(c.j)]);
        const double r2 = norm2(d);
        if (r2 < 1e-12) return 0.0;
        const double inv2 = (c.r0 * c.r0) / r2;
        const double inv10 = inv2 * inv2 * inv2 * inv2 * inv2;
        const double inv12 = inv10 * inv2;
        const double energy = c.eps * (5.0 * inv12 - 6.0 * inv10);
        const double fOverR = 60.0 * c.eps * (inv12 - inv10) / r2;
        const Vec3 f = d * fOverR;
        forces[std::size_t(c.i)] += f;
        forces[std::size_t(c.j)] -= f;
        virial += fOverR * r2;
        return energy;
    }
};

} // namespace cop::md::evaluators
