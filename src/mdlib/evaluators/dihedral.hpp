#pragma once

/// \file evaluators/dihedral.hpp
/// Periodic dihedral: E = k1 (1 - cos(dphi)) + k3 (1 - cos(3 dphi)) with
/// dphi = phi - phi0, phi the signed Blondel & Karplus dihedral angle.
/// Dihedrals use raw positions (Gō models run in open boxes; the four
/// atoms are bonded neighbours, never split across an image). Four-body
/// term — excluded from the pair virial.

#include <cmath>
#include <vector>

#include "mdlib/pbc.hpp"
#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop::md::evaluators {

/// Signed dihedral angle for positions a-b-c-d, plus the four gradient
/// vectors, using the standard textbook formulation (Blondel & Karplus).
struct DihedralGeometry {
    double phi;
    Vec3 fi, fj, fk, fl; ///< -dphi/dr scaled later by dE/dphi
};

inline DihedralGeometry dihedralGeometry(const Vec3& ri, const Vec3& rj,
                                         const Vec3& rk, const Vec3& rl) {
    const Vec3 b1 = rj - ri;
    const Vec3 b2 = rk - rj;
    const Vec3 b3 = rl - rk;
    const Vec3 n1 = cross(b1, b2);
    const Vec3 n2 = cross(b2, b3);
    const double n1sq = norm2(n1);
    const double n2sq = norm2(n2);
    const double b2len = norm(b2);

    DihedralGeometry g{};
    if (n1sq < 1e-12 || n2sq < 1e-12 || b2len < 1e-12) {
        // Degenerate (collinear) geometry: zero force, zero angle.
        g.phi = 0.0;
        return g;
    }
    g.phi = std::atan2(dot(cross(n1, n2), b2) / b2len, dot(n1, n2));

    // dphi/dri = -(b2len / n1sq) * n1 ; dphi/drl = (b2len / n2sq) * n2.
    // The middle-atom projections use s12 = -(b1.b2)/|b2|^2 and
    // s32 = -(b3.b2)/|b2|^2 with our bond-vector convention b1 = rj - ri,
    // b2 = rk - rj, b3 = rl - rk (verified against finite differences).
    const Vec3 dphi_dri = n1 * (-b2len / n1sq);
    const Vec3 dphi_drl = n2 * (b2len / n2sq);
    const double s12 = -dot(b1, b2) / (b2len * b2len);
    const double s32 = -dot(b3, b2) / (b2len * b2len);
    const Vec3 dphi_drj = dphi_dri * (s12 - 1.0) - dphi_drl * s32;
    const Vec3 dphi_drk = dphi_drl * (s32 - 1.0) - dphi_dri * s12;

    g.fi = dphi_dri;
    g.fj = dphi_drj;
    g.fk = dphi_drk;
    g.fl = dphi_drl;
    return g;
}

struct DihedralEvaluator {
    static double evaluate(const Dihedral& d,
                           const std::vector<Vec3>& positions,
                           const Box& /*box*/, std::vector<Vec3>& forces,
                           double& /*virial*/) {
        const auto g = dihedralGeometry(positions[std::size_t(d.i)],
                                        positions[std::size_t(d.j)],
                                        positions[std::size_t(d.k)],
                                        positions[std::size_t(d.l)]);
        const double dphi = g.phi - d.phi0;
        const double energy = d.k1 * (1.0 - std::cos(dphi)) +
                              d.k3 * (1.0 - std::cos(3.0 * dphi));
        const double dEdPhi =
            d.k1 * std::sin(dphi) + 3.0 * d.k3 * std::sin(3.0 * dphi);
        forces[std::size_t(d.i)] -= g.fi * dEdPhi;
        forces[std::size_t(d.j)] -= g.fj * dEdPhi;
        forces[std::size_t(d.k)] -= g.fk * dEdPhi;
        forces[std::size_t(d.l)] -= g.fl * dEdPhi;
        return energy;
    }
};

} // namespace cop::md::evaluators
