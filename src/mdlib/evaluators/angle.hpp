#pragma once

/// \file evaluators/angle.hpp
/// Harmonic angle: E = 1/2 k (theta - theta0)^2 with theta from the
/// clamped cosine. Three-body term — excluded from the pair virial (see
/// Energies::pairVirial), so `virial` is untouched.

#include <algorithm>
#include <cmath>
#include <vector>

#include "mdlib/pbc.hpp"
#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop::md::evaluators {

struct AngleEvaluator {
    static double evaluate(const Angle& a, const std::vector<Vec3>& positions,
                           const Box& box, std::vector<Vec3>& forces,
                           double& /*virial*/) {
        const Vec3 rij = box.minimumImage(positions[std::size_t(a.i)],
                                          positions[std::size_t(a.j)]);
        const Vec3 rkj = box.minimumImage(positions[std::size_t(a.k)],
                                          positions[std::size_t(a.j)]);
        const double nij = norm(rij);
        const double nkj = norm(rkj);
        if (nij < 1e-12 || nkj < 1e-12) return 0.0;
        double cosTheta = dot(rij, rkj) / (nij * nkj);
        cosTheta = std::clamp(cosTheta, -1.0, 1.0);
        const double theta = std::acos(cosTheta);
        const double dTheta = theta - a.theta0;
        const double energy = 0.5 * a.forceK * dTheta * dTheta;

        const double sinTheta =
            std::sqrt(std::max(1e-12, 1.0 - cosTheta * cosTheta));
        // F_i = -dE/dri = -(k dTheta)(dTheta/dcos)(dcos/dri); dTheta/dcos =
        // -1/sin(theta), so the prefactor is +k dTheta / sin(theta).
        const double coeff = a.forceK * dTheta / sinTheta;
        // dcos/dri and dcos/drk
        const Vec3 dcos_dri =
            (rkj / (nij * nkj)) - rij * (cosTheta / (nij * nij));
        const Vec3 dcos_drk =
            (rij / (nij * nkj)) - rkj * (cosTheta / (nkj * nkj));
        const Vec3 fi = dcos_dri * coeff;
        const Vec3 fk = dcos_drk * coeff;
        forces[std::size_t(a.i)] += fi;
        forces[std::size_t(a.k)] += fk;
        forces[std::size_t(a.j)] -= fi + fk;
        return energy;
    }
};

} // namespace cop::md::evaluators
