#pragma once

/// \file pdb.hpp
/// Minimal PDB output for Calpha traces, so folded structures from the
/// examples and benches can be inspected in any molecular viewer.
/// Coordinates are converted from reduced units to Angstrom.

#include <string>
#include <vector>

#include "util/vec3.hpp"

namespace cop::md {

/// Renders a Calpha-only PDB (one ALA residue per bead, chain A), with an
/// optional second MODEL for a reference structure (e.g. the native state
/// for visual superposition).
std::string pdbString(const std::vector<Vec3>& positions,
                      const std::string& title = "copernicus-cpp model");

/// Multi-model PDB (e.g. a trajectory or a predicted-vs-native pair).
std::string pdbString(const std::vector<std::vector<Vec3>>& models,
                      const std::string& title = "copernicus-cpp model");

/// Writes a PDB file; throws cop::IoError on failure.
void writePdb(const std::string& path, const std::vector<Vec3>& positions,
              const std::string& title = "copernicus-cpp model");

} // namespace cop::md
