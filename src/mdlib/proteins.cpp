#include "mdlib/proteins.hpp"

#include <cmath>

#include "mdlib/integrators.hpp"
#include "util/error.hpp"

namespace cop::md {

namespace {

constexpr double kHelixRise = 1.5 / 3.8;    // sigma per residue
constexpr double kHelixRadius = 2.3 / 3.8;  // sigma
constexpr double kHelixTwist = 100.0 * M_PI / 180.0;

/// Builds an orthonormal frame (e1, e2) perpendicular to unit vector u.
void perpendicularFrame(const Vec3& u, Vec3& e1, Vec3& e2) {
    const Vec3 trial = std::abs(u.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
    e1 = normalized(cross(u, trial));
    e2 = cross(u, e1);
}

/// Points on a circular arc from a to b whose length makes consecutive
/// spacing approximately `spacing`; the arc bulges along `bulgeDir`.
/// Returns only the `nIntermediate` interior points.
std::vector<Vec3> arcPoints(const Vec3& a, const Vec3& b, int nIntermediate,
                            double spacing, const Vec3& bulgeDir) {
    const int gaps = nIntermediate + 1;
    const double chord = distance(a, b);
    const double targetLength = gaps * spacing;
    std::vector<Vec3> pts;
    if (targetLength <= chord * 1.001) {
        // Endpoints too far apart for an arc of the requested length:
        // fall back to uniform straight-line placement.
        for (int k = 1; k <= nIntermediate; ++k)
            pts.push_back(a + (b - a) * (double(k) / gaps));
        return pts;
    }
    // Solve sin(alpha)/alpha = chord / targetLength for the half-angle.
    const double ratio = chord / targetLength;
    double lo = 1e-6, hi = M_PI - 1e-6;
    for (int it = 0; it < 200; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (std::sin(mid) / mid > ratio)
            lo = mid;
        else
            hi = mid;
    }
    const double alpha = 0.5 * (lo + hi);
    const double radius = chord / (2.0 * std::sin(alpha));

    const Vec3 mid = (a + b) * 0.5;
    const Vec3 chordDir = normalized(b - a);
    // Bulge direction orthogonalized against the chord.
    Vec3 up = bulgeDir - chordDir * dot(bulgeDir, chordDir);
    if (norm(up) < 1e-9) {
        Vec3 e1, e2;
        perpendicularFrame(chordDir, e1, e2);
        up = e1;
    }
    up = normalized(up);
    const Vec3 center = mid - up * (radius * std::cos(alpha));
    // Sweep from a to b through angles -alpha..alpha about the center in
    // the (up, chordDir) plane.
    for (int k = 1; k <= nIntermediate; ++k) {
        const double t = -alpha + 2.0 * alpha * double(k) / gaps;
        pts.push_back(center + up * (radius * std::cos(t)) +
                      chordDir * (radius * std::sin(t)));
    }
    return pts;
}

} // namespace

std::vector<Vec3> idealHelix(int n, const Vec3& origin, const Vec3& axis,
                             double phase) {
    COP_REQUIRE(n >= 1, "helix needs at least one residue");
    const Vec3 u = normalized(axis);
    Vec3 e1, e2;
    perpendicularFrame(u, e1, e2);
    std::vector<Vec3> pts;
    pts.reserve(std::size_t(n));
    for (int k = 0; k < n; ++k) {
        const double ang = phase + k * kHelixTwist;
        pts.push_back(origin + u * (kHelixRise * k) +
                      e1 * (kHelixRadius * std::cos(ang)) +
                      e2 * (kHelixRadius * std::sin(ang)));
    }
    return pts;
}

std::vector<Vec3> villinNativeStructure() {
    // Three-helix bundle, helix axes at the corners of a triangle with
    // ~10 Angstrom (2.6 sigma) sides; helix 2 is antiparallel.
    const double sep = 10.0 / 3.8;
    const Vec3 c1{0.0, 0.0, 0.0};
    const Vec3 c2{sep, 0.0, 0.0};
    const Vec3 c3{0.5 * sep, 0.87 * sep, 0.0};

    const auto h1 = idealHelix(10, c1, {0, 0, 1}, 0.0);
    // Helix 2 runs downward; its origin is at the top.
    const auto h2 = idealHelix(9, c2 + Vec3{0, 0, 10 * kHelixRise},
                               {0, 0, -1}, 1.2);
    const auto h3 = idealHelix(10, c3, {0, 0, 1}, 2.4);

    const Vec3 bundleCenter = (c1 + c2 + c3) / 3.0 + Vec3{0, 0, 5 * kHelixRise};

    std::vector<Vec3> native;
    native.insert(native.end(), h1.begin(), h1.end()); // residues 0-9
    {
        // Turn 1 (residues 10-12) bridges the top of helix 1 to the top of
        // helix 2, bulging up and away from the bundle center.
        const Vec3 a = h1.back();
        const Vec3 b = h2.front();
        Vec3 bulge = normalized((a + b) * 0.5 - bundleCenter) + Vec3{0, 0, 1.0};
        const auto turn = arcPoints(a, b, 3, 1.0, normalized(bulge));
        native.insert(native.end(), turn.begin(), turn.end());
    }
    native.insert(native.end(), h2.begin(), h2.end()); // residues 13-21
    {
        // Turn 2 (residues 22-24) bridges the bottom of helix 2 to the
        // bottom of helix 3, bulging down and outward.
        const Vec3 a = h2.back();
        const Vec3 b = h3.front();
        Vec3 bulge = normalized((a + b) * 0.5 - bundleCenter) + Vec3{0, 0, -1.0};
        const auto turn = arcPoints(a, b, 3, 1.0, normalized(bulge));
        native.insert(native.end(), turn.begin(), turn.end());
    }
    native.insert(native.end(), h3.begin(), h3.end()); // residues 25-34

    COP_ENSURE(native.size() == 35, "villin bundle must have 35 residues");
    return native;
}

std::vector<Vec3> hairpinNativeStructure() {
    // Two antiparallel 7-residue strands 5 Angstrom apart joined by a
    // 2-residue turn: 16 residues total.
    const double step = 0.95;        // along-strand spacing (sigma)
    const double pleat = 0.20;       // zigzag amplitude
    const double strandSep = 5.0 / 3.8;
    std::vector<Vec3> pts;
    for (int i = 0; i < 7; ++i)
        pts.push_back({i * step, (i % 2 == 0) ? pleat : -pleat, 0.0});
    // Turn residues arc over at the far end.
    pts.push_back({7 * step - 0.2, 0.35, 0.3 * strandSep});
    pts.push_back({7 * step - 0.2, -0.35, 0.7 * strandSep});
    for (int i = 0; i < 7; ++i)
        pts.push_back({(6 - i) * step, (i % 2 == 0) ? -pleat : pleat,
                       strandSep});
    COP_ENSURE(pts.size() == 16, "hairpin must have 16 residues");
    return pts;
}

GoModel villinGoModel() { return buildGoModel(villinNativeStructure()); }

SimulationConfig villinSimulationConfig(std::uint64_t seed) {
    SimulationConfig cfg;
    cfg.integrator.kind = IntegratorKind::LangevinBAOAB;
    cfg.integrator.dt = 0.01;
    cfg.integrator.temperature = 0.60;
    cfg.integrator.friction = 0.2;
    cfg.sampleInterval = 20; // one frame per 0.5 mapped ns
    cfg.seed = seed;
    return cfg;
}

GoModel hairpinGoModel() { return buildGoModel(hairpinNativeStructure()); }

std::vector<Vec3> extendedChain(std::size_t nResidues) {
    std::vector<Vec3> pts;
    pts.reserve(nResidues);
    for (std::size_t i = 0; i < nResidues; ++i)
        pts.push_back({double(i) * 0.95, (i % 2 == 0) ? 0.25 : -0.25, 0.0});
    return pts;
}

std::vector<std::vector<Vec3>> makeUnfoldedConformations(const GoModel& model,
                                                         std::size_t count,
                                                         std::uint64_t seed) {
    std::vector<std::vector<Vec3>> out;
    out.reserve(count);
    Rng master(seed);
    for (std::size_t c = 0; c < count; ++c) {
        ForceField ff(model.topology, Box::open(), model.forceFieldParams());
        State state;
        state.positions = extendedChain(model.numResidues());
        state.resize(model.numResidues());
        state.positions = extendedChain(model.numResidues());

        Rng rng = master.split(c);
        IntegratorParams ip;
        ip.kind = IntegratorKind::LangevinBAOAB;
        ip.dt = 0.005;
        ip.temperature = 2.5; // well above the folding temperature
        ip.friction = 1.0;
        Integrator integrator(ff, ip, rng.split(1));
        assignVelocities(model.topology, state, ip.temperature, rng);
        integrator.run(state, 4000);
        out.push_back(state.positions);
    }
    return out;
}

} // namespace cop::md
