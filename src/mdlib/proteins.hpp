#pragma once

/// \file proteins.hpp
/// Built-in model proteins. The flagship is a 35-residue three-helix bundle
/// with villin's secondary-structure layout (helix 1: residues 1-10, turn,
/// helix 2: 14-22, turn, helix 3: 26-35), constructed from ideal alpha-helix
/// geometry and packed into a compact bundle. A 16-residue beta-hairpin is
/// provided as a fast integration-test system.
///
/// All coordinates are in reduced units (1 sigma = 3.8 Angstrom).

#include <vector>

#include "mdlib/gomodel.hpp"
#include "mdlib/simulation.hpp"
#include "util/random.hpp"
#include "util/vec3.hpp"

namespace cop::md {

/// Ideal alpha-helix Calpha trace: `n` residues, starting near `origin`,
/// winding about the +z axis then rotated so the helix axis points along
/// `axis`. Rise 1.5 A (0.395 sigma) per residue, radius 2.3 A, 100 deg per
/// residue — giving the canonical ~3.8 A consecutive-Calpha distance.
std::vector<Vec3> idealHelix(int n, const Vec3& origin, const Vec3& axis,
                             double phase = 0.0);

/// The villin-like 35-residue three-helix bundle native structure.
std::vector<Vec3> villinNativeStructure();

/// 16-residue beta-hairpin native structure (two strands, 5 A apart).
std::vector<Vec3> hairpinNativeStructure();

/// Gō model for the villin-like bundle with default parameters.
GoModel villinGoModel();

/// Production run settings for the villin folding study, calibrated so the
/// native state is stable (T well below the melting temperature ~0.7) yet
/// folding from unfolded starts happens within a few 50 ns generations:
/// Langevin BAOAB, dt = 0.01 tau, T = 0.60, friction = 0.2/tau, one frame
/// every 20 steps (0.5 mapped ns).
SimulationConfig villinSimulationConfig(std::uint64_t seed = 1);

/// The paper's per-command segment length (50 ns) in engine steps.
constexpr std::int64_t kSegmentSteps = 2000;

/// Paper's folded-state definition: within 3.5 Angstrom Calpha RMSD of
/// native.
constexpr double kFoldedRmsdAngstrom = 3.5;

/// Gō model for the hairpin.
GoModel hairpinGoModel();

/// Fully extended zigzag chain with the same residue count as `model`,
/// far from the native basin (RMSD >> folded cutoff).
std::vector<Vec3> extendedChain(std::size_t nResidues);

/// Generates `count` distinct unfolded conformations by running short
/// high-temperature Langevin trajectories from the extended chain, one per
/// conformation (deterministic in `seed`). Mirrors the paper's nine
/// unfolded villin starting conformations.
std::vector<std::vector<Vec3>> makeUnfoldedConformations(const GoModel& model,
                                                         std::size_t count,
                                                         std::uint64_t seed);

} // namespace cop::md
