#pragma once

/// \file pbc.hpp
/// Periodic boundary conditions. The Gō-model protein runs in vacuum (no
/// box); the generic Lennard-Jones engine used for validating integrators,
/// thermostats and neighbour lists runs in a rectangular periodic box.

#include <cmath>

#include "util/error.hpp"
#include "util/vec3.hpp"

namespace cop::md {

/// Rectangular simulation box. `periodic == false` means open boundaries
/// (vacuum); the lengths are then ignored for imaging but still used to size
/// cell grids.
struct Box {
    Vec3 lengths{0.0, 0.0, 0.0};
    bool periodic = false;

    static Box open() { return Box{}; }

    static Box cubic(double l) {
        COP_REQUIRE(l > 0.0, "box length must be positive");
        return Box{{l, l, l}, true};
    }

    static Box rectangular(double lx, double ly, double lz) {
        COP_REQUIRE(lx > 0.0 && ly > 0.0 && lz > 0.0,
                    "box lengths must be positive");
        return Box{{lx, ly, lz}, true};
    }

    double volume() const {
        return lengths.x * lengths.y * lengths.z;
    }

    /// Minimum-image displacement a - b. Uses rint (round-half-to-even)
    /// rather than round: the two differ only when d/L is an exact half,
    /// where either image is a valid minimum image — and rint inlines to a
    /// two-instruction SSE2 sequence while round is a libm call on
    /// baseline x86-64. The force kernels image the same way, so all
    /// kernel flavors see bit-identical displacements.
    Vec3 minimumImage(const Vec3& a, const Vec3& b) const {
        Vec3 d = a - b;
        if (periodic) {
            d.x -= lengths.x * std::rint(d.x / lengths.x);
            d.y -= lengths.y * std::rint(d.y / lengths.y);
            d.z -= lengths.z * std::rint(d.z / lengths.z);
        }
        return d;
    }

    /// Wraps a position into the primary cell [0, L) per dimension.
    Vec3 wrap(const Vec3& p) const {
        if (!periodic) return p;
        Vec3 w = p;
        w.x -= lengths.x * std::floor(w.x / lengths.x);
        w.y -= lengths.y * std::floor(w.y / lengths.y);
        w.z -= lengths.z * std::floor(w.z / lengths.z);
        return w;
    }
};

} // namespace cop::md
