/// AVX2 kernel TU: width-4 packs with hardware gathers. Compiled with
/// -mavx2 -mfma; must only be reached through the dispatcher after
/// __builtin_cpu_supports("avx2") says yes.

#define COP_SIMD_ARCH_NS arch_avx2
#define COP_SIMD_WIDTH 4
#define COP_SIMD_TARGET_AVX2 1

#include "mdlib/simd_kernels_impl.hpp"

#include "mdlib/simd_kernel_sets.hpp"

namespace cop::md::simd {

NonbondedKernelSet avx2Kernels() { return arch_avx2::makeKernelSet("avx2"); }

} // namespace cop::md::simd
