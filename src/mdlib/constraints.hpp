#pragma once

/// \file constraints.hpp
/// Holonomic bond constraints via SHAKE (position stage) and RATTLE
/// (velocity stage). Gromacs runs villin with constrained bonds to enable
/// the 2 fs timestep the paper quotes; this module provides the same
/// capability for the generic engine (the Gō model normally uses stiff
/// harmonic bonds instead, but can be run constrained).

#include <vector>

#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop::md {

struct Constraint {
    int i;
    int j;
    double length;
};

class ShakeConstraints {
public:
    ShakeConstraints(std::vector<Constraint> constraints,
                     double tolerance = 1e-8, int maxIterations = 500);

    /// Builds one constraint per topology bond, at the bond's r0.
    static ShakeConstraints fromBonds(const Topology& topology,
                                      double tolerance = 1e-8);

    const std::vector<Constraint>& constraints() const {
        return constraints_;
    }

    /// SHAKE: iteratively adjusts `positions` so every constraint is
    /// satisfied, using `reference` (pre-move positions, where the
    /// constraints held) to define the correction directions. Mass
    /// weighting follows the topology. Throws NumericalError if the
    /// iteration fails to converge.
    void apply(const Topology& topology,
               const std::vector<Vec3>& reference,
               std::vector<Vec3>& positions) const;

    /// RATTLE velocity stage: removes relative velocity components along
    /// each constrained bond so d/dt |r_ij|^2 = 0.
    void applyVelocities(const Topology& topology,
                         const std::vector<Vec3>& positions,
                         std::vector<Vec3>& velocities) const;

    /// Max relative constraint violation |r^2 - d^2| / d^2.
    double maxViolation(const std::vector<Vec3>& positions) const;

private:
    std::vector<Constraint> constraints_;
    double tolerance_;
    int maxIterations_;
};

} // namespace cop::md
