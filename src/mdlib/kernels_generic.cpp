/// Portable kernel TU: the width-4 lane-loop SimdPack fallback, compiled
/// with the project's baseline flags only. This is the COPERNICUS_SIMD=
/// "scalar" dispatch target and the set every host can run.

#define COP_SIMD_ARCH_NS arch_generic
#define COP_SIMD_WIDTH 4

#include "mdlib/simd_kernels_impl.hpp"

#include "mdlib/simd_kernel_sets.hpp"

namespace cop::md::simd {

NonbondedKernelSet genericKernels() {
    return arch_generic::makeKernelSet("scalar");
}

} // namespace cop::md::simd
