#pragma once

/// \file topology.hpp
/// Molecular topology: particles, bonded interaction lists, native-contact
/// pair lists and exclusions. This plays the role of Gromacs' .top/.tpr
/// content for our coarse-grained engine.

#include <cstddef>
#include <string>
#include <vector>

#include "util/serialize.hpp"

namespace cop::md {

/// Harmonic bond: E = 0.5 * k * (r - r0)^2.
struct Bond {
    int i, j;
    double r0;
    double k;
};

/// Harmonic angle: E = 0.5 * k * (theta - theta0)^2, theta in radians.
struct Angle {
    int i, j, k;
    double theta0;
    double forceK;
};

/// Dihedral in the standard Gō-model double-cosine form:
/// E = k1 * (1 - cos(phi - phi0)) + k3 * (1 - cos(3 * (phi - phi0))).
struct Dihedral {
    int i, j, k, l;
    double phi0;
    double k1;
    double k3;
};

/// Native contact with a 12-10 Lennard-Jones-like potential:
/// E = eps * (5 * (r0/r)^12 - 6 * (r0/r)^10); minimum of depth -eps at r0.
struct Contact {
    int i, j;
    double r0;
    double eps;
};

/// Full system topology. Invariant: all indices < numParticles().
class Topology {
public:
    Topology() = default;
    explicit Topology(std::size_t nParticles);

    std::size_t numParticles() const { return masses_.size(); }

    void addParticle(double mass, double charge = 0.0);
    double mass(std::size_t i) const { return masses_[i]; }
    double charge(std::size_t i) const { return charges_[i]; }
    const std::vector<double>& masses() const { return masses_; }

    void addBond(Bond b);
    void addAngle(Angle a);
    void addDihedral(Dihedral d);
    void addContact(Contact c);

    const std::vector<Bond>& bonds() const { return bonds_; }
    const std::vector<Angle>& angles() const { return angles_; }
    const std::vector<Dihedral>& dihedrals() const { return dihedrals_; }
    const std::vector<Contact>& contacts() const { return contacts_; }

    /// Pairs excluded from generic nonbonded interactions. Bonds, angle
    /// 1-3 pairs and native contacts are excluded automatically by
    /// finalize().
    bool isExcluded(int i, int j) const;

    /// Builds the exclusion table and validates all indices. Must be called
    /// after the last add*() and before simulation. Idempotent.
    void finalize();
    bool finalized() const { return finalized_; }

    /// Human-readable one-line summary.
    std::string summary() const;

    void serialize(BinaryWriter& w) const;
    static Topology deserialize(BinaryReader& r);

private:
    void exclude(int i, int j);

    std::vector<double> masses_;
    std::vector<double> charges_;
    std::vector<Bond> bonds_;
    std::vector<Angle> angles_;
    std::vector<Dihedral> dihedrals_;
    std::vector<Contact> contacts_;
    // Exclusions as a sorted adjacency list per particle.
    std::vector<std::vector<int>> exclusions_;
    bool finalized_ = false;
};

} // namespace cop::md
