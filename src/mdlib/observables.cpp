#include "mdlib/observables.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace cop::md {

namespace {

/// Jacobi eigenvalue iteration for a symmetric 4x4 matrix. Returns the
/// eigenvector of the largest eigenvalue and stores that eigenvalue.
std::array<double, 4> largestEigenvector4(std::array<std::array<double, 4>, 4> m,
                                          double& lambdaMax) {
    std::array<std::array<double, 4>, 4> v{};
    for (int i = 0; i < 4; ++i) v[i][i] = 1.0;

    for (int sweep = 0; sweep < 64; ++sweep) {
        double off = 0.0;
        for (int p = 0; p < 4; ++p)
            for (int q = p + 1; q < 4; ++q) off += m[p][q] * m[p][q];
        if (off < 1e-24) break;
        for (int p = 0; p < 4; ++p) {
            for (int q = p + 1; q < 4; ++q) {
                if (std::abs(m[p][q]) < 1e-18) continue;
                const double theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (int k = 0; k < 4; ++k) {
                    const double mkp = m[k][p], mkq = m[k][q];
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for (int k = 0; k < 4; ++k) {
                    const double mpk = m[p][k], mqk = m[q][k];
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
                for (int k = 0; k < 4; ++k) {
                    const double vkp = v[k][p], vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    int best = 0;
    for (int i = 1; i < 4; ++i)
        if (m[i][i] > m[best][best]) best = i;
    lambdaMax = m[best][best];
    return {v[0][best], v[1][best], v[2][best], v[3][best]};
}

/// Builds Horn's 4x4 key matrix from the covariance of centered coordinate
/// sets a (target) and b (mobile).
std::array<std::array<double, 4>, 4> hornMatrix(std::span<const Vec3> a,
                                                std::span<const Vec3> b) {
    double sxx = 0, sxy = 0, sxz = 0, syx = 0, syy = 0, syz = 0, szx = 0,
           szy = 0, szz = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        sxx += b[i].x * a[i].x;
        sxy += b[i].x * a[i].y;
        sxz += b[i].x * a[i].z;
        syx += b[i].y * a[i].x;
        syy += b[i].y * a[i].y;
        syz += b[i].y * a[i].z;
        szx += b[i].z * a[i].x;
        szy += b[i].z * a[i].y;
        szz += b[i].z * a[i].z;
    }
    std::array<std::array<double, 4>, 4> k{};
    k[0][0] = sxx + syy + szz;
    k[0][1] = syz - szy;
    k[0][2] = szx - sxz;
    k[0][3] = sxy - syx;
    k[1][1] = sxx - syy - szz;
    k[1][2] = sxy + syx;
    k[1][3] = szx + sxz;
    k[2][2] = -sxx + syy - szz;
    k[2][3] = syz + szy;
    k[3][3] = -sxx - syy + szz;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < i; ++j) k[i][j] = k[j][i];
    return k;
}

Mat3 quaternionToMatrix(const std::array<double, 4>& q) {
    const double w = q[0], x = q[1], y = q[2], z = q[3];
    Mat3 r;
    r(0, 0) = w * w + x * x - y * y - z * z;
    r(0, 1) = 2.0 * (x * y - w * z);
    r(0, 2) = 2.0 * (x * z + w * y);
    r(1, 0) = 2.0 * (x * y + w * z);
    r(1, 1) = w * w - x * x + y * y - z * z;
    r(1, 2) = 2.0 * (y * z - w * x);
    r(2, 0) = 2.0 * (x * z - w * y);
    r(2, 1) = 2.0 * (y * z + w * x);
    r(2, 2) = w * w - x * x - y * y + z * z;
    return r;
}

} // namespace

Vec3 centerCoordinates(std::vector<Vec3>& xs) {
    COP_REQUIRE(!xs.empty(), "empty coordinate set");
    Vec3 c{};
    for (const auto& x : xs) c += x;
    c /= double(xs.size());
    for (auto& x : xs) x -= c;
    return c;
}

double rmsd(std::span<const Vec3> a, std::span<const Vec3> b) {
    COP_REQUIRE(a.size() == b.size(), "coordinate set size mismatch");
    COP_REQUIRE(!a.empty(), "empty coordinate set");
    std::vector<Vec3> ca(a.begin(), a.end());
    std::vector<Vec3> cb(b.begin(), b.end());
    centerCoordinates(ca);
    centerCoordinates(cb);
    double ga = 0.0, gb = 0.0;
    for (std::size_t i = 0; i < ca.size(); ++i) {
        ga += norm2(ca[i]);
        gb += norm2(cb[i]);
    }
    return rmsdCentered(ca, cb, ga, gb);
}

double rmsdCentered(std::span<const Vec3> a, std::span<const Vec3> b,
                    double squaredNormA, double squaredNormB) {
    COP_REQUIRE(a.size() == b.size(), "coordinate set size mismatch");
    COP_REQUIRE(!a.empty(), "empty coordinate set");
    double lambdaMax = 0.0;
    largestEigenvector4(hornMatrix(a, b), lambdaMax);
    const double msd = std::max(
        0.0,
        (squaredNormA + squaredNormB - 2.0 * lambdaMax) / double(a.size()));
    return std::sqrt(msd);
}

Mat3 optimalRotation(std::span<const Vec3> a, std::span<const Vec3> b) {
    COP_REQUIRE(a.size() == b.size() && !a.empty(), "bad coordinate sets");
    double lambdaMax = 0.0;
    const auto q = largestEigenvector4(hornMatrix(a, b), lambdaMax);
    return quaternionToMatrix(q);
}

void superimpose(std::span<const Vec3> target, std::vector<Vec3>& mobile) {
    COP_REQUIRE(target.size() == mobile.size(), "size mismatch");
    std::vector<Vec3> ct(target.begin(), target.end());
    const Vec3 targetCentroid = [&] {
        Vec3 c{};
        for (const auto& x : ct) c += x;
        return c / double(ct.size());
    }();
    for (auto& x : ct) x -= targetCentroid;
    centerCoordinates(mobile);
    const Mat3 r = optimalRotation(ct, mobile);
    for (auto& x : mobile) x = r * x + targetCentroid;
}

double radiusOfGyration(std::span<const Vec3> xs,
                        std::span<const double> masses) {
    COP_REQUIRE(!xs.empty(), "empty coordinate set");
    COP_REQUIRE(masses.empty() || masses.size() == xs.size(),
                "mass array size mismatch");
    Vec3 com{};
    double mTot = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double m = masses.empty() ? 1.0 : masses[i];
        com += xs[i] * m;
        mTot += m;
    }
    com /= mTot;
    double s = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double m = masses.empty() ? 1.0 : masses[i];
        s += m * norm2(xs[i] - com);
    }
    return std::sqrt(s / mTot);
}

double nativeContactFraction(const Topology& top, std::span<const Vec3> xs,
                             double factor) {
    const auto& contacts = top.contacts();
    if (contacts.empty()) return 0.0;
    std::size_t formed = 0;
    for (const auto& c : contacts) {
        const double r = distance(xs[std::size_t(c.i)], xs[std::size_t(c.j)]);
        if (r < factor * c.r0) ++formed;
    }
    return double(formed) / double(contacts.size());
}

} // namespace cop::md
