#pragma once

/// \file observables.hpp
/// Structural observables: optimal-superposition RMSD (quaternion/Kabsch),
/// radius of gyration, and fraction of native contacts Q. RMSD in this
/// engine's reduced length units can be converted to the paper's Angstrom
/// scale with md::toAngstrom().

#include <span>
#include <vector>

#include "mdlib/topology.hpp"
#include "util/vec3.hpp"

namespace cop::md {

/// Centers `xs` on its centroid (in place) and returns the centroid.
Vec3 centerCoordinates(std::vector<Vec3>& xs);

/// Minimal RMSD between two equal-length coordinate sets after optimal
/// translation + rotation (Horn's quaternion method, equivalent to Kabsch).
/// Does not modify its inputs.
double rmsd(std::span<const Vec3> a, std::span<const Vec3> b);

/// RMSD between coordinate sets that are *already centered* on their
/// centroids, with precomputed squared norms (sum of |x_i|^2). Skips the
/// copy/center/norm work of rmsd(); bit-identical to rmsd() on the
/// uncentered originals, since rmsd() derives exactly these quantities
/// with the same accumulation order. This is the hot call of the MSM
/// clustering layer, where one conformation is compared against many.
double rmsdCentered(std::span<const Vec3> a, std::span<const Vec3> b,
                    double squaredNormA, double squaredNormB);

/// Optimal rotation matrix that superimposes centered `b` onto centered
/// `a` (i.e. minimizes |a - R b|). Inputs must already be centered.
Mat3 optimalRotation(std::span<const Vec3> a, std::span<const Vec3> b);

/// Superimposes `mobile` onto `target` in place (translate + rotate).
void superimpose(std::span<const Vec3> target, std::vector<Vec3>& mobile);

/// Radius of gyration (mass-weighted if masses given, else uniform).
double radiusOfGyration(std::span<const Vec3> xs,
                        std::span<const double> masses = {});

/// Fraction of native contacts formed: a contact (i,j,r0) counts as formed
/// when r_ij < factor * r0 (default 1.2, the conventional choice).
double nativeContactFraction(const Topology& top, std::span<const Vec3> xs,
                             double factor = 1.2);

} // namespace cop::md
