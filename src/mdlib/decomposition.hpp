#pragma once

/// \file decomposition.hpp
/// Spatial domain decomposition — the "MPI across nodes" tier of the
/// paper's Fig. 6 hierarchy, realized here as an explicit model: the box
/// is split into slabs along its longest axis, particles are assigned to
/// domains, halo (ghost) regions of one cutoff width are computed, and
/// the per-step communication volume is reported. The communication
/// figures feed the intra-simulation bandwidth tier (500-2900 MB/s for
/// villin on 24-96 cores, §4); forces can also genuinely be evaluated
/// domain-parallel on a thread pool, with results identical to the serial
/// path (tested).

#include <cstddef>
#include <vector>

#include "mdlib/pbc.hpp"
#include "util/vec3.hpp"

namespace cop {
class ThreadPool;
}

namespace cop::md {

class ForceField;

struct Domain {
    /// Indices of particles owned by this domain.
    std::vector<int> owned;
    /// Indices of halo particles (owned by neighbours, within one cutoff
    /// of this domain's boundary) this domain needs for force evaluation.
    std::vector<int> halo;
    double lo = 0.0; ///< slab lower bound along the split axis
    double hi = 0.0; ///< slab upper bound
};

struct DecompositionStats {
    std::size_t domains = 0;
    std::size_t totalOwned = 0;
    std::size_t totalHalo = 0;
    /// Bytes exchanged per MD step: halo positions out + halo forces back
    /// (3 doubles each way per halo particle).
    std::size_t bytesPerStep = 0;
    /// Load imbalance: max owned / mean owned.
    double imbalance = 1.0;
};

class SlabDecomposition {
public:
    /// Splits `box` into `numDomains` slabs along its longest axis. The
    /// box must be periodic (the decomposition wraps around).
    SlabDecomposition(const Box& box, std::size_t numDomains,
                      double cutoff);

    /// Assigns particles to domains and computes halo lists.
    void decompose(const std::vector<Vec3>& positions);

    const std::vector<Domain>& domains() const { return domains_; }
    std::size_t numDomains() const { return domains_.size(); }
    int splitAxis() const { return axis_; }

    DecompositionStats stats() const;

    /// Bandwidth (bytes/s) this decomposition would need at a given MD
    /// step rate — comparable to the paper's intra-simulation numbers.
    double requiredBandwidth(double stepsPerSecond) const;

private:
    Box box_;
    double cutoff_;
    int axis_;
    double slabWidth_;
    std::vector<Domain> domains_;
};

} // namespace cop::md
