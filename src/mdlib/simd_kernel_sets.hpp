#pragma once

/// \file simd_kernel_sets.hpp
/// Declarations of the per-ISA kernel-set factories. Each is defined in
/// exactly one kernels_<isa>.cpp translation unit, compiled with that
/// ISA's -m flags, and present only when CMake found the flags workable
/// (COPERNICUS_SIMD_HAVE_<ISA>). Declarations only — this header is safe
/// to include from TUs compiled with any flags.

#include "mdlib/kernel_params.hpp"

namespace cop::md::simd {

/// Portable width-4 lane-loop pack; compiles everywhere, no -m flags.
NonbondedKernelSet genericKernels();
#ifdef COPERNICUS_SIMD_HAVE_SSE2
NonbondedKernelSet sse2Kernels();
#endif
#ifdef COPERNICUS_SIMD_HAVE_AVX2
NonbondedKernelSet avx2Kernels();
#endif
#ifdef COPERNICUS_SIMD_HAVE_AVX512
NonbondedKernelSet avx512Kernels();
#endif
#ifdef COPERNICUS_SIMD_HAVE_NEON
NonbondedKernelSet neonKernels();
#endif

} // namespace cop::md::simd
