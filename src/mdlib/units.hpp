#pragma once

/// \file units.hpp
/// Reduced-unit system for the Gō-model engine and its mapping to the
/// paper's villin timescales.
///
/// The engine works in standard coarse-grained reduced units:
///   - length:  sigma = 1  (mapped to 3.8 Angstrom, the Calpha-Calpha bond)
///   - energy:  epsilon = 1 (native-contact well depth)
///   - mass:    m = 1 per bead
///   - kB = 1, so temperature is in units of epsilon
///   - time:    tau = sigma * sqrt(m / epsilon) = 1
///
/// Mapping to the paper's villin study (documented in EXPERIMENTS.md):
/// one integration step (dt = 0.01 tau) is declared equivalent to 25 ps of
/// villin dynamics, so the paper's 50 ns command segments correspond to
/// 2,000 engine steps and its 1.5 ns clustering snapshot separation to 60
/// steps. The mapping was calibrated so that the Gō model's folding time
/// in mapped nanoseconds falls in the paper's regime (first folded
/// structures appear within the first one-to-three 50 ns generations,
/// with a heterogeneous slow tail).

namespace cop::md {

/// Length conversion: 1 reduced length unit in Angstrom.
inline constexpr double kAngstromPerSigma = 3.8;

/// Declared time mapping: villin picoseconds per integration step.
inline constexpr double kPicosecondsPerStep = 25.0;

/// Default integration timestep in reduced time units.
inline constexpr double kDefaultTimestep = 0.01;

/// Converts a reduced-unit distance to Angstrom (for RMSD reporting in the
/// paper's units).
constexpr double toAngstrom(double sigma) { return sigma * kAngstromPerSigma; }

/// Converts engine steps to mapped villin nanoseconds.
constexpr double stepsToNs(double steps) {
    return steps * kPicosecondsPerStep * 1e-3;
}

/// Converts mapped villin nanoseconds to engine steps.
constexpr double nsToSteps(double ns) {
    return ns * 1e3 / kPicosecondsPerStep;
}

} // namespace cop::md
